// Package noblsm is a reproduction of "NobLSM: An LSM-tree with
// Non-blocking Writes for SSDs" (Dang, Ye, Hu, Wang — DAC 2022) as a
// self-contained Go library.
//
// The package bundles the full stack the paper builds and evaluates:
//
//   - a LevelDB-architecture LSM-tree engine (WAL, memtable, SSTables,
//     MANIFEST, leveled + seek compactions) — internal/engine;
//   - a faithful simulation of ext4's data=ordered journaling with the
//     paper's two kernel extensions (check_commit / is_committed and
//     the Pending/Committed inode tables) — internal/ext4;
//   - an SSD device model with bandwidth, latency and flush-barrier
//     semantics, calibrated to the paper's Samsung PM883 — internal/ssd;
//   - NobLSM itself: crash-consistent major compactions without fsync,
//     via asynchronous commit tracking and shadow predecessor
//     retention — internal/core;
//   - the compared systems (BoLT, L2SM, HyperLevelDB, PebblesDB, a
//     RocksDB-like configuration, and a volatile LevelDB) as policies
//     over the same engine — internal/policy;
//   - db_bench and YCSB workload generators plus the experiment
//     harness regenerating every table and figure of the paper's
//     evaluation — internal/harness.
//
// Everything runs in virtual time: device transfers, journal commits
// and compaction work are charged to logical timelines, so the paper's
// multi-hour SSD experiments replay deterministically in seconds. Data
// operations are real — files, crashes, and recovery all actually
// happen — only the clock is simulated.
//
// The quickest way in:
//
//	db, err := noblsm.Open(noblsm.NobLSM)
//	db.Put([]byte("k"), []byte("v"))
//	v, err := db.Get([]byte("k"))
//	db.Crash()   // power cut: page cache + uncommitted journal lost
//	db.Reopen()  // recovery; SSTable contents are intact
//
// For experiments, see cmd/dbbench, cmd/ycsbbench, cmd/syncstudy and
// cmd/crashtest, and the benchmarks in bench_test.go.
package noblsm

import (
	"fmt"

	"noblsm/internal/core"
	"noblsm/internal/engine"
	"noblsm/internal/ext4"
	"noblsm/internal/obs"
	"noblsm/internal/policy"
	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
)

// Variant selects which of the paper's systems the store behaves as.
type Variant = policy.Variant

// The available systems (see internal/policy for what each models).
const (
	LevelDB      = policy.LevelDB
	Volatile     = policy.Volatile
	NobLSM       = policy.NobLSM
	BoLT         = policy.BoLT
	L2SM         = policy.L2SM
	HyperLevelDB = policy.HyperLevelDB
	RocksDB      = policy.RocksDB
	PebblesDB    = policy.PebblesDB
)

// ErrNotFound is returned by Get for missing or deleted keys.
var ErrNotFound = engine.ErrNotFound

// Config tunes a store beyond the variant preset. The zero value uses
// the engine defaults (LevelDB 1.23's configuration).
type Config struct {
	// WriteBufferSize is the memtable size triggering a minor
	// compaction (default 4 MiB).
	WriteBufferSize int64
	// TableFileSize is the SSTable cut size (default 2 MiB; the
	// paper standardizes its evaluation on 64 MiB).
	TableFileSize int64
	// BloomBitsPerKey sizes table filters (default 10; 0 keeps the
	// default, negative disables).
	BloomBitsPerKey int
	// CommitInterval is ext4's asynchronous commit period and
	// NobLSM's matching poll interval (default 5 s of virtual time).
	CommitInterval vclock.Duration
	// Seed fixes the run's deterministic randomness.
	Seed int64
}

// DB is a key-value store on its own simulated SSD + ext4 stack, with
// a built-in timeline so simple uses never touch virtual time. All
// methods are safe for concurrent use in the sense the engine defines
// (a global mutex), but the built-in timeline makes this convenience
// type single-logical-threaded; experiments needing parallel clients
// use internal/harness directly.
type DB struct {
	variant Variant
	opts    engine.Options
	tl      *vclock.Timeline
	dev     *ssd.Device
	fs      *ext4.FS
	db      *engine.DB
	reg     *obs.Registry
}

// Open provisions a fresh simulated stack for the variant.
func Open(v Variant, cfg ...Config) (*DB, error) {
	var c Config
	if len(cfg) > 1 {
		return nil, fmt.Errorf("noblsm: pass at most one Config")
	}
	if len(cfg) == 1 {
		c = cfg[0]
	}
	base := engine.DefaultOptions()
	if c.WriteBufferSize > 0 {
		base.WriteBufferSize = c.WriteBufferSize
	}
	if c.TableFileSize > 0 {
		base.TableFileSize = c.TableFileSize
		base.Picker.BaseLevelBytes = 5 * c.TableFileSize
	}
	if c.BloomBitsPerKey != 0 {
		base.BloomBitsPerKey = c.BloomBitsPerKey
		if c.BloomBitsPerKey < 0 {
			base.BloomBitsPerKey = 0
		}
	}
	if c.CommitInterval > 0 {
		base.PollInterval = c.CommitInterval
	}
	if c.Seed != 0 {
		base.Seed = c.Seed
	}
	opts, err := policy.Options(v, base)
	if err != nil {
		return nil, err
	}

	// One registry spans the whole stack, so Property("noblsm.metrics")
	// shows engine, filesystem and device counters side by side.
	reg := obs.NewRegistry()
	opts.Metrics = reg
	d := &DB{variant: v, opts: opts, tl: vclock.NewTimeline(0), reg: reg}
	d.dev = ssd.NewObserved(ssd.PM883(), reg)
	fsCfg := ext4.DefaultConfig()
	if c.CommitInterval > 0 {
		fsCfg.CommitInterval = c.CommitInterval
	}
	d.fs = ext4.NewObserved(fsCfg, d.dev, reg, nil)
	d.db, err = engine.Open(d.tl, d.fs, opts)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// Put stores a key/value pair.
func (d *DB) Put(key, value []byte) error { return d.db.Put(d.tl, key, value) }

// Get returns the newest value of key, or ErrNotFound.
func (d *DB) Get(key []byte) ([]byte, error) { return d.db.Get(d.tl, key) }

// Delete writes a tombstone for key.
func (d *DB) Delete(key []byte) error { return d.db.Delete(d.tl, key) }

// MultiGet looks up a batch of keys against one consistent read view,
// returning values and errors parallel to keys (a missing key yields
// ErrNotFound in its slot). Batching amortizes the per-request
// overhead across the batch and probes tables in sorted-key order.
func (d *DB) MultiGet(keys [][]byte) ([][]byte, []error) {
	return d.db.MultiGet(d.tl, keys)
}

// Scan calls fn for up to limit live keys starting at start (inclusive
// lower bound); fn returning false stops early.
func (d *DB) Scan(start []byte, limit int, fn func(key, value []byte) bool) error {
	it, err := d.db.NewIterator(d.tl)
	if err != nil {
		return err
	}
	if start == nil {
		it.First()
	} else {
		it.Seek(start)
	}
	for n := 0; it.Valid() && n < limit; n++ {
		if !fn(it.Key(), it.Value()) {
			break
		}
		it.Next()
	}
	return it.Err()
}

// Crash simulates a sudden power cut: the page cache and every
// uncommitted journal transaction are lost, and the store must be
// Reopened before further use.
func (d *DB) Crash() {
	d.fs.Crash(d.tl.Now())
}

// Reopen recovers the store after Crash (or a Close), replaying the
// MANIFEST and the surviving write-ahead-log records.
func (d *DB) Reopen() error {
	db, err := engine.Open(d.tl, d.fs, d.opts)
	if err != nil {
		return err
	}
	d.db = db
	return nil
}

// Close releases the store's handles (no implicit sync, as LevelDB).
func (d *DB) Close() error { return d.db.Close(d.tl) }

// Now reports the store's virtual clock.
func (d *DB) Now() vclock.Time { return d.tl.Now() }

// AdvanceTime moves the virtual clock forward — e.g. past a journal
// commit interval, so asynchronous commits become durable.
func (d *DB) AdvanceTime(dur vclock.Duration) { d.tl.Advance(dur) }

// Stats bundles the observability counters of the whole stack.
type Stats struct {
	Engine  engine.Stats
	FS      ext4.Stats
	Device  ssd.Stats
	Tracker core.Stats
}

// Stats snapshots the stack's counters.
func (d *DB) Stats() Stats {
	s := Stats{
		Engine: d.db.Stats(),
		FS:     d.fs.Stats(),
		Device: d.dev.Stats(),
	}
	if tr := d.db.Tracker(); tr != nil {
		s.Tracker = tr.Stats()
	}
	return s
}

// Variant reports which system this store is configured as.
func (d *DB) Variant() Variant { return d.variant }

// Property renders one of the engine's introspection properties
// ("noblsm.stats", "noblsm.sstables", "noblsm.tracker",
// "noblsm.metrics"); ok is false for unknown names.
func (d *DB) Property(name string) (value string, ok bool) {
	return d.db.Property(name)
}
