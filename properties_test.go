package noblsm

import (
	"fmt"
	"strings"
	"testing"
)

// TestProperties exercises the introspection properties on a NobLSM
// store that has flushed and compacted: the per-level table must list
// files and track shadow retention, and every documented name must
// resolve.
func TestProperties(t *testing.T) {
	db, err := Open(NobLSM, Config{WriteBufferSize: 16 << 10, TableFileSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	val := make([]byte, 256)
	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key%06d", i%500)), val); err != nil {
			t.Fatal(err)
		}
	}

	stats, ok := db.Property("noblsm.stats")
	if !ok {
		t.Fatal("noblsm.stats not supported")
	}
	for _, want := range []string{"Level", "Files", "Shadow", "Retained",
		"write amplification", "compaction bytes", "stalls", "shadow tables"} {
		if !strings.Contains(stats, want) {
			t.Errorf("noblsm.stats missing %q:\n%s", want, stats)
		}
	}

	sst, ok := db.Property("noblsm.sstables")
	if !ok {
		t.Fatal("noblsm.sstables not supported")
	}
	if !strings.Contains(sst, "level") {
		t.Errorf("noblsm.sstables lists no levels:\n%s", sst)
	}

	trk, ok := db.Property("noblsm.tracker")
	if !ok {
		t.Fatal("noblsm.tracker not supported")
	}
	if !strings.Contains(trk, "deps registered") {
		t.Errorf("noblsm.tracker missing dependency counts:\n%s", trk)
	}

	met, ok := db.Property("noblsm.metrics")
	if !ok {
		t.Fatal("noblsm.metrics not supported")
	}
	// The shared registry must span all layers of the stack.
	for _, want := range []string{"engine.puts", "ext4.syncs", "ssd.bytes_written", "wal.records"} {
		if !strings.Contains(met, want) {
			t.Errorf("noblsm.metrics missing %q", want)
		}
	}

	if _, ok := db.Property("noblsm.nope"); ok {
		t.Error("unknown property reported ok")
	}
}

// TestPropertyTrackerAbsent checks the tracker property degrades
// gracefully on variants without a tracker.
func TestPropertyTrackerAbsent(t *testing.T) {
	db, err := Open(LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	trk, ok := db.Property("noblsm.tracker")
	if !ok || !strings.Contains(trk, "no tracker") {
		t.Fatalf("tracker property on LevelDB = %q, ok=%v", trk, ok)
	}
}
