#!/usr/bin/env sh
# bench.sh — performance-trajectory snapshot for the concurrent write
# path. Runs the Go micro-benchmarks for the memtable, write queue and
# group commit, then the dbbench trajectory suite (real-time concurrent
# fillrandom/readrandom throughput plus the Fig 4a/5b virtual-time
# micro-runs) and writes the JSON snapshot.
#
# Usage:  scripts/bench.sh [out.json] [ops]
#
# Compare snapshots across PRs: real_time.ops_per_sec should go up,
# fig*_us_per_op must not regress (the virtual numbers are
# deterministic — any drift is a semantics change, not noise).
#
# Also records the PR3 compaction-bound overwrite run (small 2MB-class
# scaled tables, AsyncCompaction, sharded majors) into BENCH_PR3.json,
# the PR6 long-run overwrite stability snapshot (telemetry plane on:
# windowed p99/p999 series, stall ledger, max stall) into
# BENCH_PR6.json, the PR7 read-path run (per-block compression,
# compressed block cache, iterator readahead, per-level bloom sizing,
# MultiGet — baseline side vs tuned side in the same build) into
# BENCH_PR7.json, the PR8 multi-shard server scaling run (the
# same fillrandom at the same client concurrency over loopback TCP at
# 1/4/8/16 shards) into BENCH_PR8.json, the PR9 checkpoint run
# (Checkpoint latency at 1/4/8GB store marks plus the fillrandom
# checkpoint+backup overhead gate) into BENCH_PR9.json, and the PR10
# admission-governor stability comparison (the same overwrite with the
# governor off vs on, gated at ≥10x worst-stall reduction and ≤5%
# mean-throughput cost) into BENCH_PR10.json.
set -eu
cd "$(dirname "$0")/.."

OUT="${1:-bench_snapshot.json}"
OPS="${2:-100000}"

# Before number for the compaction-bound run: a stored measurement of
# the pre-subcompaction build (commit 64a799c) with the identical
# driver — overwrite, ops=200000, value=1024, goroutines=4, seed=42,
# 2MB-class scaled tables, AsyncCompaction. Re-measuring it from this
# tree is impossible (the build changed), so it is pinned here.
PR3_BASELINE_OPS_PER_SEC=5406
PR3_BASELINE_NOTE="measured at commit 64a799c (pre-subcompaction build) with the identical driver: overwrite, ops=200000, value=1024, goroutines=4, seed=42, 2MB-class scaled tables, AsyncCompaction"
PR3_OPS="${PR3_OPS:-200000}"

echo "== micro-benchmarks (memtable / write path / group commit) =="
go test ./internal/memtable ./internal/engine \
	-run NONE -bench . -benchtime 1x

echo
echo "== trajectory suite: real-time concurrent + Fig 4a/5b virtual (ops=$OPS) =="
go run ./cmd/dbbench -bench-json "$OUT" -ops "$OPS"
echo "snapshot: $OUT"

echo
echo "== compaction-bound overwrite: sharded majors vs recorded baseline (ops=$PR3_OPS) =="
go run ./cmd/dbbench -compaction-bench-json BENCH_PR3.json \
	-ops "$PR3_OPS" -subcompactions 4 \
	-baseline-ops-per-sec "$PR3_BASELINE_OPS_PER_SEC" \
	-baseline-note "$PR3_BASELINE_NOTE"
echo "snapshot: BENCH_PR3.json"

# Long-run overwrite stability with the telemetry plane armed: a
# fillrandom preload, then a sustained overwrite measured per commit
# window. The windowed series (p50/p99/p999/max per window, stall
# counts, max stall) is where tail-latency drift shows up; the
# cumulative numbers alone would average it away.
PR6_OPS="${PR6_OPS:-200000}"

echo
echo "== overwrite stability: windowed tail latency + stall ledger (ops=$PR6_OPS) =="
go run ./cmd/dbbench -stability-json BENCH_PR6.json -ops "$PR6_OPS"
echo "snapshot: BENCH_PR6.json"

# Read-path raw speed: the same store measured with the PR7 read
# features off (baseline) and on (tuned) — readrandom hot and cold,
# a cold full scan, and get vs multiget16 warm — so the speedups
# isolate exactly compression + compressed cache + readahead +
# per-level bloom, not unrelated drift between builds.
PR7_OPS="${PR7_OPS:-100000}"

echo
echo "== read path: readrandom hot/cold, scan, multiget16 vs get (ops=$PR7_OPS) =="
go run ./cmd/dbbench -read-bench-json BENCH_PR7.json -ops "$PR7_OPS"
echo "snapshot: BENCH_PR7.json"

# Multi-shard server scaling: the same fillrandom workload at the same
# client concurrency (16 workers, 8 pooled connections) against
# noblsm-server at 1, 4, 8 and 16 shards over real loopback TCP.
# virtual_agg_ops_per_sec is the simulated-hardware aggregate (each
# shard owns a full virtual SSD + ext4 journal and the straggler
# shard's clock defines completion); the acceptance bar is >= 3x from
# 1 to 8 shards. wall_ops_per_sec is this host's Go runtime and
# flattens at its core count — recorded for transparency only.
PR8_OPS="${PR8_OPS:-40000}"

echo
echo "== server scaling: fillrandom over loopback TCP at 1/4/8/16 shards (ops=$PR8_OPS) =="
go run ./cmd/ycsbbench -serverbench -ops "$PR8_OPS" \
	-server-shards 1,4,8,16 -json BENCH_PR8.json
echo "snapshot: BENCH_PR8.json"

# Checkpoint/backup cost: Checkpoint latency at GB-scale store marks
# (the O(manifest) claim — hard links + a manifest snapshot, so
# copied_bytes stays at WAL-tail + manifest size while the store grows
# 8x), and the fillrandom overhead of a checkpoint + incremental-backup
# loop against the identical plain run. The ≤5% overhead gate is
# enforced: the run exits non-zero if the checkpoint loop slows the
# write path beyond it. PR9_GB trims the scale sweep for quick runs
# (e.g. PR9_GB=0.25).
PR9_OPS="${PR9_OPS:-100000}"
PR9_GB="${PR9_GB:-1,4,8}"

echo
echo "== checkpoints: latency at ${PR9_GB}GB marks + fillrandom ckpt/backup loop (ops=$PR9_OPS) =="
go run ./cmd/dbbench -ckpt-bench-json BENCH_PR9.json \
	-ops "$PR9_OPS" -ckpt-gb "$PR9_GB"
echo "snapshot: BENCH_PR9.json"

# Admission-governor stability: the identical overwrite run with the
# governor off (the stock rotation/slowdown cliff) and on (bounded
# admission pacing). The gate is the PR10 contract — the worst single
# stall of any cause shrinks >=10x while mean throughput pays <=5% —
# and the run exits non-zero if either side fails.
PR10_OPS="${PR10_OPS:-200000}"

echo
echo "== admission governor: overwrite worst-stall off vs on (ops=$PR10_OPS) =="
go run ./cmd/dbbench -governor-bench-json BENCH_PR10.json -ops "$PR10_OPS"
echo "snapshot: BENCH_PR10.json"
