#!/usr/bin/env sh
# bench.sh — performance-trajectory snapshot for the concurrent write
# path. Runs the Go micro-benchmarks for the memtable, write queue and
# group commit, then the dbbench trajectory suite (real-time concurrent
# fillrandom/readrandom throughput plus the Fig 4a/5b virtual-time
# micro-runs) and writes the JSON snapshot.
#
# Usage:  scripts/bench.sh [out.json] [ops]
#
# Compare snapshots across PRs: real_time.ops_per_sec should go up,
# fig*_us_per_op must not regress (the virtual numbers are
# deterministic — any drift is a semantics change, not noise).
set -eu
cd "$(dirname "$0")/.."

OUT="${1:-bench_snapshot.json}"
OPS="${2:-100000}"

echo "== micro-benchmarks (memtable / write path / group commit) =="
go test ./internal/memtable ./internal/engine \
	-run NONE -bench . -benchtime 1x

echo
echo "== trajectory suite: real-time concurrent + Fig 4a/5b virtual (ops=$OPS) =="
go run ./cmd/dbbench -bench-json "$OUT" -ops "$OPS"
echo "snapshot: $OUT"
