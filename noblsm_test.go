package noblsm

import (
	"fmt"
	"testing"

	"noblsm/internal/vclock"
)

func TestOpenPutGet(t *testing.T) {
	db, err := Open(NobLSM)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := db.Get([]byte("missing")); err != ErrNotFound {
		t.Fatalf("missing: %v", err)
	}
	if err := db.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k")); err != ErrNotFound {
		t.Fatalf("deleted: %v", err)
	}
	if db.Variant() != NobLSM {
		t.Fatal("variant lost")
	}
}

func TestScan(t *testing.T) {
	db, err := Open(LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("key%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	var got []string
	err = db.Scan([]byte("key050"), 5, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"key050", "key051", "key052", "key053", "key054"}
	if len(got) != len(want) {
		t.Fatalf("scan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v", got)
		}
	}
	// Early stop.
	n := 0
	db.Scan(nil, 100, func(k, v []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop scanned %d", n)
	}
}

func TestCrashReopenKeepsDurableData(t *testing.T) {
	// A short virtual run needs a proportionally short commit
	// interval, or the whole workload fits inside the first (not yet
	// durable) journal window.
	db, err := Open(NobLSM, Config{
		WriteBufferSize: 16 << 10, TableFileSize: 16 << 10, Seed: 3,
		CommitInterval: vclock.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key%06d", i*2654435761%3000)
		db.Put([]byte(k), []byte(fmt.Sprintf("value-%s", k)))
	}
	db.Crash()
	if err := db.Reopen(); err != nil {
		t.Fatal(err)
	}
	survived := 0
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key%06d", i)
		v, err := db.Get([]byte(k))
		if err != nil {
			continue
		}
		if string(v) != "value-"+k {
			t.Fatalf("key %s corrupted: %q", k, v)
		}
		survived++
	}
	if survived == 0 {
		t.Fatal("nothing survived the crash")
	}
}

func TestAdvanceTimeDrivesCommits(t *testing.T) {
	db, err := Open(NobLSM, Config{CommitInterval: vclock.Second})
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("k"), []byte("v"))
	before := db.Stats().FS.AsyncCommits
	db.AdvanceTime(3 * vclock.Second)
	db.Put([]byte("k2"), []byte("v2")) // entry point runs due commits
	if after := db.Stats().FS.AsyncCommits; after <= before {
		t.Fatalf("no async commits after advancing time (%d -> %d)", before, after)
	}
	if db.Now() < vclock.Time(3*vclock.Second) {
		t.Fatalf("clock did not advance: %v", db.Now())
	}
}

func TestStatsExposeStack(t *testing.T) {
	db, err := Open(LevelDB, Config{WriteBufferSize: 8 << 10, TableFileSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("key%06d", i*37%2000)), make([]byte, 64))
	}
	s := db.Stats()
	if s.Engine.Puts != 2000 {
		t.Fatalf("puts = %d", s.Engine.Puts)
	}
	if s.FS.Syncs == 0 || s.Device.BytesWritten == 0 {
		t.Fatalf("stack counters empty: %+v", s)
	}
}

func TestBadConfigRejected(t *testing.T) {
	if _, err := Open(Variant("NopeDB")); err == nil {
		t.Fatal("unknown variant accepted")
	}
	if _, err := Open(NobLSM, Config{}, Config{}); err == nil {
		t.Fatal("two configs accepted")
	}
}

func TestCloseThenReopen(t *testing.T) {
	db, err := Open(LevelDB)
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("persist"), []byte("me"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Reopen(); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("persist"))
	if err != nil || string(v) != "me" {
		t.Fatalf("after reopen: %q, %v", v, err)
	}
}

func TestBloomDisable(t *testing.T) {
	db, err := Open(LevelDB, Config{BloomBitsPerKey: -1})
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("k"), []byte("v"))
	if v, _ := db.Get([]byte("k")); string(v) != "v" {
		t.Fatal("filterless store broken")
	}
}
