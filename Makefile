# Development targets. The module is stdlib-only; everything runs on
# the in-process simulated SSD/ext4 stack (no services, no real disk).

GO ?= go

.PHONY: build test race concurrent compaction-stress faultstress crashstress obsstress readstress serverstress backupstress stallstress fuzz-smoke bench-smoke bench verify

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The concurrent write-path tests (group commit, lock-free reads,
# async compaction, crash atomicity) re-run twice under the race
# detector: interleavings differ between runs.
concurrent:
	$(GO) test ./internal/engine ./internal/memtable ./internal/harness \
		-run Concurrent -race -count=2

# Compaction stress: the sharded-pipeline tests (boundary correctness,
# crash atomicity, metrics) under the race detector. The subcompaction
# engine is the most goroutine-dense part of the tree — read/merge/write
# stages per shard — so it gets its own race pass.
compaction-stress:
	$(GO) test -race -run Compaction ./internal/engine/...

# Fault stress: the randomized fault-schedule explorer (200 seeded
# schedules of injected I/O errors, torn/short WAL appends, at-rest
# bit rot and power cuts) plus the targeted self-healing and
# background-error tests — zero acked-write loss, full read
# availability.
faultstress:
	$(GO) test -race ./internal/harness -run FaultSchedule -count=1
	$(GO) test -race ./internal/engine -run 'SelfHealing|PermanentFlush' -count=1
	$(GO) test ./internal/wal ./internal/vfs -count=1

# Crash stress: the exhaustive crash-point explorer (every journal-
# commit boundary of a NobLSM fill materialized and recovered) capped
# to a ~200-point sample for CI cadence, plus the deterministic-repair
# and recovery-mode tests. Run the explorer uncapped (no env var) for
# the full ≥500-point sweep.
crashstress:
	NOBLSM_CRASH_MAX_POINTS=200 $(GO) test -race ./internal/harness -run CrashExplorer -count=1
	$(GO) test -race ./internal/engine -run 'Repair|RecoveryModes|ShardedCrash' -count=1
	$(GO) test ./internal/vfs -run CrashFS -count=1

# Observability stress: the telemetry plane under the race detector —
# time-series ring rotation and tracer wraparound under concurrent
# load, the exposition endpoints polled against a live benchmark, and
# the attribution-conservation check (per-op phase durations sum to
# the end-to-end latency within 1%).
obsstress:
	$(GO) test -race ./internal/obs -count=2
	$(GO) test -race ./internal/harness -run 'Attribution|Telemetry|LiveExposition' -count=1

# Read-path stress: point reads, 16-key MultiGets and full scans —
# per-block compression, the two-tier block cache (sized tiny so
# eviction races refill) and iterator readahead all on — hammered
# against live writers under the race detector, plus the MultiGet
# equivalence/torn-batch properties.
readstress:
	$(GO) test -race ./internal/engine -run 'ReadStress|MultiGet|SelfHealingReadCompressed' -count=2

# Server stress: the network front-end under the race detector —
# concurrent pipelined connections, administrative shard close/reopen
# mid-traffic, malformed-frame vandals, disconnects mid-pipeline — plus
# the wire protocol round-trip/hostile-input tests and the router
# balance/determinism suite.
serverstress:
	$(GO) test -race ./internal/server -run 'Stress|Malformed|Disconnect|CloseReopen' -count=2
	$(GO) test -race ./internal/server/wire ./internal/server/route -count=1

# Backup/replication stress: the crash-point explorer's checkpoint/
# restore/follower probe at every materialized boundary (the explorer
# itself runs probeReplication, so crashstress covers the capped
# sample; this target adds the dedicated sweeps), the 60-seed
# backup-schedule sweep (followers catching up through injected
# transient faults, incremental backups restored and byte-compared),
# and the checkpoint-vs-GC race tests — all under the race detector.
backupstress:
	$(GO) test -race ./internal/harness -run BackupScheduleSweep -count=1
	$(GO) test -race ./internal/engine -run 'Checkpoint|Backup|ApplyReplicated' -count=1
	$(GO) test -race ./internal/replica -count=1

# Admission-control stress: the governor's control loop under the race
# detector — the token-bucket/debt-model unit tests, the engine-level
# pacing-vs-cliff and deadline fail-fast properties (acked writes
# durable across reopen, zero deadline blocks forever, governor off is
# stock), and the server's busy-backpressure path (StatusBusy sheds
# with client retry absorbing them).
stallstress:
	$(GO) test -race ./internal/governor -count=1
	$(GO) test -race ./internal/engine -run 'Governor|WriteStallDeadline|ZeroDeadline|DoctorGovernor' -count=2
	$(GO) test -race ./internal/server -run 'BusyBackpressure|BusyRetry' -count=1

# Short fuzz smoke of the parsers recovery depends on: WAL records,
# SSTable blocks, manifest edits, the block codec round-trip, and the
# server's frame/request decoder (the surface hostile clients reach).
fuzz-smoke:
	$(GO) test ./internal/wal -fuzz FuzzWALReader -fuzztime 30s
	$(GO) test ./internal/block -fuzz FuzzBlockReader -fuzztime 30s
	$(GO) test ./internal/version -fuzz FuzzManifestDecode -fuzztime 30s
	$(GO) test ./internal/compress -fuzz FuzzCompressRoundTrip -fuzztime 30s
	$(GO) test ./internal/server/wire -fuzz FuzzFrameDecode -fuzztime 30s

# One iteration of every benchmark — exercises the write-queue, arena
# memtable and real-concurrency paths without measuring anything.
bench-smoke:
	$(GO) test ./internal/memtable ./internal/engine ./internal/harness \
		-run NONE -bench . -benchtime 1x

# Full performance-trajectory snapshot (see scripts/bench.sh).
bench:
	scripts/bench.sh

# Tier-1 gate plus the concurrency suite and the bench smoke; this is
# the bar every PR must clear.
verify: build test race concurrent compaction-stress faultstress crashstress obsstress readstress serverstress backupstress stallstress bench-smoke
