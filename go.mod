module noblsm

go 1.22
