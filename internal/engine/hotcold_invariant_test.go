package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"noblsm/internal/ext4"
	"noblsm/internal/keys"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
)

// TestHotColdRecencyInvariant reproduces the hot/cold staleness with
// detailed diagnostics: after the workload, for the failing key it
// dumps every file containing it and the sequence found.
func TestHotColdRecencyInvariant(t *testing.T) {
	o := smallOpts(SyncAll)
	o.HotCold = true
	o.HotThreshold = 2
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, o)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(9))
	expect := map[string]string{}
	for i := 0; i < 20000; i++ {
		var k string
		if rnd.Intn(2) == 0 {
			k = fmt.Sprintf("hot%04d", rnd.Intn(50))
		} else {
			k = fmt.Sprintf("cold%08d", rnd.Intn(8000))
		}
		v := fmt.Sprintf("v%d-%s", i, string(bytes.Repeat([]byte("y"), 60)))
		if err := db.Put(tl, []byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		expect[k] = v
	}
	for k, want := range expect {
		v, err := db.Get(tl, []byte(k))
		if err != nil || string(v) != want {
			// Diagnose: find every version of k in every file.
			t.Logf("key %s: got %.20q want %.20q err=%v", k, v, want, err)
			seek := keys.MakeInternalKey(nil, []byte(k), keys.MaxSeqNum, keys.KindSeek)
			for level := 0; level < version.NumLevels; level++ {
				for _, fm := range db.Version().Files[level] {
					r, err := db.tcache.open(tl, fm)
					if err != nil {
						continue
					}
					it := r.NewIterator(tl)
					for it.Seek(seek); it.Valid(); it.Next() {
						uk, seq, kind, _ := keys.ParseInternalKey(it.Key())
						if string(uk) != k {
							break
						}
						t.Logf("  L%d file %d (hot=%v size=%d): seq=%d kind=%v val=%.15q",
							level, fm.Number, fm.Hot, fm.Size, seq, kind, it.Value())
					}
				}
			}
			mv, deleted, found := db.mem.Get([]byte(k), keys.MaxSeqNum)
			t.Logf("  mem: found=%v deleted=%v val=%.15q", found, deleted, mv)
			t.FailNow()
		}
	}
}
