package engine

// Self-healing reads from retained predecessor SSTables.
//
// NobLSM retains a compaction's input tables (predecessors) on disk as
// shadow backups until every output's (successor's) inode has
// journal-committed — the paper's crash-recoverability argument
// (Section 4.3). This file turns that passive retention into active
// repair: when a read or compaction hits sstable.ErrCorrupt on a
// successor whose dependency is still unresolved, the predecessors
// provably hold every byte of its data, so the engine
//
//  1. atomically claims the dependency from the tracker (CancelFor —
//     fails if the tracker already resolved it and reclaimed the
//     predecessors);
//  2. applies a version edit deleting the whole successor set and
//     re-adding the predecessors at their original levels;
//  3. quarantines the corrupt successor under a ".corrupt" suffix
//     (outside ParseFileName's namespace, so GC ignores it) and lets
//     the healthy siblings age out as ordinary obsolete tables;
//  4. re-serves the read from the shadow predecessors and re-triggers
//     the compaction.
//
// Rolling predecessors back into the version is sound because the
// successor set replaced exactly their key range at exactly their
// levels: recency within a level is decided by sequence numbers, so
// versions the merge had legitimately dropped reappear strictly below
// their supersessors. The rollback is refused if any successor has
// since moved or been compacted away, or if a later compaction slid a
// new table into the predecessors' key range — then the shadow copies
// no longer represent that region and the corruption is surfaced
// instead of healed.

import (
	"errors"
	"sort"

	"noblsm/internal/obs"
	"noblsm/internal/sstable"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
	"noblsm/internal/vfs"
)

// repairFile is one table of a repair plan with the level it occupied
// when the plan was recorded.
type repairFile struct {
	meta  *version.FileMeta
	level int
}

// repairPlan records a compaction's predecessor/successor sets so a
// corrupt successor can be rolled back while the tracker still retains
// the predecessors. One plan is shared by all successors of the
// compaction; plans are pruned lazily once their dependency resolves.
type repairPlan struct {
	preds []repairFile
	succs []repairFile
}

// recordRepairPlan registers the rollback plan for a just-installed
// compaction and prunes plans whose dependencies have resolved.
// Caller holds db.mu.
func (db *DB) recordRepairPlan(c *version.Compaction, outputs []*outputFile) {
	plan := &repairPlan{}
	for _, fm := range c.Inputs[0] {
		plan.preds = append(plan.preds, repairFile{meta: fm, level: c.Level})
	}
	for _, fm := range c.Inputs[1] {
		plan.preds = append(plan.preds, repairFile{meta: fm, level: c.Level + 1})
	}
	if len(plan.preds) == 0 {
		return // nothing retained, nothing to roll back onto
	}
	if db.repairs == nil {
		db.repairs = make(map[uint64]*repairPlan)
	}
	for _, of := range outputs {
		plan.succs = append(plan.succs, repairFile{meta: of.meta, level: of.level})
		db.repairs[of.meta.Number] = plan
	}
	// Lazy pruning: once a plan's dependency resolves the tracker stops
	// protecting its predecessors and the shadow files are reclaimed,
	// so the plan can never be applied again.
	for num, p := range db.repairs {
		if len(p.preds) == 0 || !db.tracker.Protected(p.preds[0].meta.Number) {
			delete(db.repairs, num)
		}
	}
}

// dropPlan forgets a plan under every successor it was indexed by.
// Caller holds db.mu.
func (db *DB) dropPlan(plan *repairPlan) {
	for _, s := range plan.succs {
		if db.repairs[s.meta.Number] == plan {
			delete(db.repairs, s.meta.Number)
		}
	}
}

// fileAtLevel reports whether the version holds table num at level.
func fileAtLevel(v *version.Version, level int, num uint64) bool {
	for _, f := range v.Files[level] {
		if f.Number == num {
			return true
		}
	}
	return false
}

// planApplicableLocked reports whether num's recorded repair plan
// could be applied to the current version — every successor still live
// at its recorded level, and no foreign table inside any predecessor's
// range. Pure check, no state change. Caller holds db.mu.
func (db *DB) planApplicableLocked(num uint64) bool {
	plan := db.repairs[num]
	if plan == nil {
		return false
	}
	// Every successor must still be live at its recorded level: a
	// successor that was compacted away (or trivially moved) means the
	// region has evolved past the shadow copies.
	succSet := make(map[uint64]bool, len(plan.succs))
	for _, s := range plan.succs {
		if !fileAtLevel(db.current, s.level, s.meta.Number) {
			return false
		}
		succSet[s.meta.Number] = true
	}
	// Re-adding a predecessor must not overlap any table other than
	// the successors being deleted (sorted levels stay disjoint). A
	// later compaction can have slid a new table into a gap between
	// the predecessors' range and the narrower successors' range.
	for _, p := range plan.preds {
		if p.level == 0 {
			continue // L0 files may overlap freely
		}
		for _, f := range db.current.Overlapping(p.level, p.meta.SmallestUser(), p.meta.LargestUser()) {
			if !succSet[f.Number] {
				return false
			}
		}
	}
	return true
}

// HealableSuccessors lists the live tables that could, right now, be
// rolled back onto retained shadow predecessors if found corrupt —
// introspection for the fault-schedule explorer and tests.
func (db *DB) HealableSuccessors() []uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.tracker == nil {
		return nil
	}
	var out []uint64
	for num := range db.repairs {
		if db.planApplicableLocked(num) && db.tracker.HasDepFor(num) {
			out = append(out, num)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EvictTable drops the cached reader (and, through it, the cached
// blocks) for table num so subsequent reads return to the medium.
// Fault-injection hook: at-rest corruption is invisible while clean
// copies of the damaged blocks are still cached.
func (db *DB) EvictTable(tl *vclock.Timeline, num uint64) {
	db.tcache.evict(tl, num)
}

// healTableLocked rolls the corrupt successor num back to its retained
// shadow predecessors. It reports whether the heal happened; on false
// the caller surfaces the original corruption error. Caller holds
// db.mu.
func (db *DB) healTableLocked(tl *vclock.Timeline, num uint64) bool {
	if db.tracker == nil {
		return false
	}
	plan := db.repairs[num]
	if plan == nil {
		return false
	}
	if !db.planApplicableLocked(num) {
		db.dropPlan(plan)
		return false
	}
	// Atomically claim the dependency. False means the tracker already
	// resolved it: the predecessors are reclaimed and the corruption
	// is unrecoverable from shadows.
	if !db.tracker.CancelFor(num) {
		db.dropPlan(plan)
		return false
	}

	edit := &version.VersionEdit{}
	for _, s := range plan.succs {
		edit.DeleteFile(s.level, s.meta.Number)
	}
	for _, p := range plan.preds {
		edit.AddFile(p.level, p.meta)
	}
	if err := db.logAndApply(tl, edit); err != nil {
		// recoverManifest already escalated to permanent; the version
		// rollback itself is applied in memory, so reads heal even as
		// writes stop.
		return true
	}

	// Quarantine the damaged successor for post-mortem; the rename
	// takes it out of ParseFileName's namespace so GC skips it. Its
	// healthy siblings are no longer live and age out through the
	// ordinary obsolete-file paths (which respect pinned readers).
	db.fs.Rename(tl, TableName(num), TableName(num)+".corrupt")
	db.tcache.evict(tl, num)
	for _, s := range plan.succs {
		if s.meta.Number == num {
			continue
		}
		db.tcache.evict(tl, s.meta.Number)
	}
	if db.opts.AsyncCompaction {
		for _, s := range plan.succs {
			if s.meta.Number != num {
				db.obsoleteTables = append(db.obsoleteTables, s.meta.Number)
			}
		}
		db.deleteObsoleteAsync(tl)
	} else {
		db.deleteObsoleteFiles(tl)
	}
	db.dropPlan(plan)
	db.m.tablesQuarantined.Inc()
	if db.trace != nil {
		db.trace.Instant(obs.TidForeground, "error", "heal.rollback", tl.Now(),
			obs.KV{K: "quarantined", V: num},
			obs.KV{K: "preds", V: len(plan.preds)})
	}
	return true
}

// healFromRead handles a corruption error surfaced by the read path:
// if it names a healable successor, the version is rolled back onto
// the shadow predecessors and the interrupted compaction re-triggered,
// and the caller retries the read against the repaired version.
func (db *DB) healFromRead(tl *vclock.Timeline, err error) bool {
	if !errors.Is(err, sstable.ErrCorrupt) {
		return false
	}
	var te *tableError
	if !errors.As(err, &te) {
		return false
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.healTableLocked(tl, te.num) {
		return false
	}
	db.m.readsHealed.Inc()
	// Redo the cancelled compaction so the level shape recovers. In
	// async mode this kicks the worker; in the default synchronous
	// engine it runs inline on a background timeline.
	db.maybeScheduleCompaction(tl, false)
	return true
}

// ScrubTables verifies every live table end to end, healing corrupt
// successors from their retained shadow predecessors. It returns how
// many tables were healed and the first unrecoverable error. Transient
// read faults are retried like any read.
func (db *DB) ScrubTables(tl *vclock.Timeline) (healed int, err error) {
	transient := 0
	for {
		serr := db.scrubOnce(tl)
		if serr == nil {
			return healed, nil
		}
		if db.healFromRead(tl, serr) {
			healed++
			continue
		}
		if vfs.IsTransient(serr) && transient < bgMaxRetries {
			transient++
			db.m.readRetries.Inc()
			tl.Advance(bgBackoff(transient - 1))
			continue
		}
		return healed, serr
	}
}

// scrubOnce scans every live table of the current read snapshot,
// returning the first error (tagged with its table).
func (db *DB) scrubOnce(tl *vclock.Timeline) error {
	if db.closed.Load() {
		return ErrClosed
	}
	rs := db.acquireReadState()
	defer db.releaseReadState(rs)
	for level := 0; level < version.NumLevels; level++ {
		for _, fm := range rs.v.Files[level] {
			r, err := db.tcache.open(tl, fm)
			if err != nil {
				return err
			}
			it := r.NewIterator(tl)
			for it.First(); it.Valid(); it.Next() {
			}
			if err := it.Err(); err != nil {
				return &tableError{num: fm.Number, err: err}
			}
		}
	}
	return nil
}
