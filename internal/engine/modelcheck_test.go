package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"noblsm/internal/ext4"
	"noblsm/internal/vclock"
)

// TestModelCheckAgainstMapReference drives a random operation mix —
// puts, deletes, point reads, range scans, snapshot reads, manual
// compactions and clean reopens — against a plain map reference model,
// for every sync mode. Any divergence is a correctness bug in the
// engine, the substrates, or recovery.
func TestModelCheckAgainstMapReference(t *testing.T) {
	for _, mode := range []SyncMode{SyncAll, SyncNobLSM, SyncBoLT} {
		t.Run(mode.String(), func(t *testing.T) {
			modelCheck(t, mode, 12000, int64(mode)+77)
		})
	}
}

func modelCheck(t *testing.T, mode SyncMode, steps int, seed int64) {
	t.Helper()
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	opts := smallOpts(mode)
	db, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(seed))
	model := map[string]string{}
	key := func() string { return fmt.Sprintf("key%05d", rnd.Intn(800)) }

	for i := 0; i < steps; i++ {
		switch op := rnd.Intn(100); {
		case op < 55: // put
			k := key()
			v := fmt.Sprintf("val-%d-%d", i, rnd.Int63())
			if err := db.Put(tl, []byte(k), []byte(v)); err != nil {
				t.Fatalf("step %d put: %v", i, err)
			}
			model[k] = v
		case op < 70: // delete
			k := key()
			if err := db.Delete(tl, []byte(k)); err != nil {
				t.Fatalf("step %d delete: %v", i, err)
			}
			delete(model, k)
		case op < 90: // get
			k := key()
			v, err := db.Get(tl, []byte(k))
			want, ok := model[k]
			if ok && (err != nil || string(v) != want) {
				t.Fatalf("step %d get %s: got %q,%v want %q", i, k, v, err, want)
			}
			if !ok && err != ErrNotFound {
				t.Fatalf("step %d get deleted %s: %q,%v", i, k, v, err)
			}
		case op < 95: // scan a random window
			startKey := key()
			it, err := db.NewIterator(tl)
			if err != nil {
				t.Fatal(err)
			}
			var got []string
			for it.Seek([]byte(startKey)); it.Valid() && len(got) < 10; it.Next() {
				got = append(got, string(it.Key())+"="+string(it.Value()))
			}
			if err := it.Err(); err != nil {
				t.Fatalf("step %d scan: %v", i, err)
			}
			var want []string
			var ks []string
			for k := range model {
				if k >= startKey {
					ks = append(ks, k)
				}
			}
			sort.Strings(ks)
			for _, k := range ks {
				if len(want) == 10 {
					break
				}
				want = append(want, k+"="+model[k])
			}
			if len(got) != len(want) {
				t.Fatalf("step %d scan from %s: %d entries, want %d\n got %v\nwant %v",
					i, startKey, len(got), len(want), got, want)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("step %d scan mismatch at %d: %s vs %s", i, j, got[j], want[j])
				}
			}
		case op < 97: // snapshot consistency probe
			snap := db.GetSnapshot()
			k := key()
			wantV, wantOK := model[k]
			// Mutate after the snapshot; the snapshot must not see it.
			db.Put(tl, []byte(k), []byte("post-snapshot"))
			model[k] = "post-snapshot"
			v, err := db.GetAt(tl, []byte(k), snap)
			if wantOK && (err != nil || string(v) != wantV) {
				t.Fatalf("step %d snapshot get %s: %q,%v want %q", i, k, v, err, wantV)
			}
			if !wantOK && err != ErrNotFound {
				t.Fatalf("step %d snapshot get absent %s: %v", i, k, err)
			}
			db.ReleaseSnapshot(snap)
		case op < 98: // manual compaction
			if err := db.CompactRange(tl, nil, nil); err != nil {
				t.Fatalf("step %d compact: %v", i, err)
			}
		default: // clean close + reopen: nothing may be lost
			if err := db.Close(tl); err != nil {
				t.Fatalf("step %d close: %v", i, err)
			}
			db, err = Open(tl, fs, opts)
			if err != nil {
				t.Fatalf("step %d reopen: %v", i, err)
			}
		}
	}
	// Final full verification.
	for k, want := range model {
		v, err := db.Get(tl, []byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("final: key %s = %q,%v want %q", k, v, err, want)
		}
	}
	it, err := db.NewIterator(tl)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for it.First(); it.Valid(); it.Next() {
		if model[string(it.Key())] != string(it.Value()) {
			t.Fatalf("final scan: %q=%q not in model", it.Key(), it.Value())
		}
		count++
	}
	if count != len(model) {
		t.Fatalf("final scan saw %d keys, model has %d", count, len(model))
	}
}
