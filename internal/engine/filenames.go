package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// FileKind classifies the files a DB directory contains.
type FileKind int

// File kinds, named after LevelDB's.
const (
	KindUnknown FileKind = iota
	KindLog
	KindTable
	KindManifest
	KindCurrent
)

// LogName returns the WAL file name for a number.
func LogName(number uint64) string { return fmt.Sprintf("%06d.log", number) }

// TableName returns the SSTable file name for a number.
func TableName(number uint64) string { return fmt.Sprintf("%06d.ldb", number) }

// ManifestName returns the MANIFEST file name for a number.
func ManifestName(number uint64) string { return fmt.Sprintf("MANIFEST-%06d", number) }

// CurrentName is the pointer file naming the live MANIFEST.
const CurrentName = "CURRENT"

// ParseFileName classifies a directory entry.
func ParseFileName(name string) (kind FileKind, number uint64, ok bool) {
	switch {
	case name == CurrentName:
		return KindCurrent, 0, true
	case strings.HasPrefix(name, "MANIFEST-"):
		n, err := strconv.ParseUint(name[len("MANIFEST-"):], 10, 64)
		if err != nil {
			return KindUnknown, 0, false
		}
		return KindManifest, n, true
	case strings.HasSuffix(name, ".log"):
		n, err := strconv.ParseUint(strings.TrimSuffix(name, ".log"), 10, 64)
		if err != nil {
			return KindUnknown, 0, false
		}
		return KindLog, n, true
	case strings.HasSuffix(name, ".ldb"):
		n, err := strconv.ParseUint(strings.TrimSuffix(name, ".ldb"), 10, 64)
		if err != nil {
			return KindUnknown, 0, false
		}
		return KindTable, n, true
	default:
		return KindUnknown, 0, false
	}
}
