package engine

import (
	"sort"

	"noblsm/internal/keys"
	"noblsm/internal/obs"
	"noblsm/internal/sstable"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
)

// multiGetKeyDiv divides ReadCPU for the marginal per-key charge of a
// batched lookup: a batch pays the fixed per-request overhead
// (dispatch, snapshot pin, tracker poll) once, and each key only its
// share of comparator and probe work — the batching economics RocksDB
// reports for MultiGet.
const multiGetKeyDiv = 4

// MultiGet looks up a batch of keys as of one consistent read view and
// returns values and errors parallel to userKeys (a missing key yields
// ErrNotFound in its error slot; its value slot is nil).
//
// The batch is served from a single refcounted readState pinned once:
// every key sees the same {memtable, version} snapshot, and because
// the visible sequence is clamped once for the whole batch — and
// writers publish it only after a write group is fully applied — the
// batch can never observe a torn write-batch boundary. Keys are probed
// in sorted order so probes group by table within each level.
func (db *DB) MultiGet(tl *vclock.Timeline, userKeys [][]byte) ([][]byte, []error) {
	return db.MultiGetAt(tl, userKeys, keys.MaxSeqNum)
}

// MultiGetAt is MultiGet as of snapSeq (the snapshot batch-read path).
func (db *DB) MultiGetAt(tl *vclock.Timeline, userKeys [][]byte, snapSeq keys.SeqNum) ([][]byte, []error) {
	n := len(userKeys)
	vals := make([][]byte, n)
	errs := make([]error, n)
	if n == 0 {
		return vals, errs
	}
	if db.closed.Load() {
		for i := range errs {
			errs[i] = ErrClosed
		}
		return vals, errs
	}
	// Clamp once for the whole batch: this is the batch's read point.
	if vis := db.visibleSeq.Load(); snapSeq > vis {
		snapSeq = vis
	}

	var span obs.OpSpan
	var sp *obs.OpSpan
	if db.tel != nil {
		sp = &span
		sp.Begin(tl.Now(), obs.PhaseReadMem)
	}
	// Fixed per-request overhead once, marginal cost per key.
	tl.Advance(db.opts.ReadCPU + vclock.Duration(n)*db.opts.ReadCPU/multiGetKeyDiv)
	db.m.multiGetBatches.Inc()
	db.m.multiGetKeys.Add(int64(n))
	if db.tracker != nil {
		db.tracker.MaybePoll(tl)
	}

	// Sort key indices so each level walks tables left to right and
	// consecutive keys landing in one table share its open handle.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return keys.CompareUser(userKeys[order[a]], userKeys[order[b]]) < 0
	})

	rs := db.acquireReadState()
	released := false
	release := func() {
		if !released {
			released = true
			db.releaseReadState(rs)
		}
	}
	defer release()

	// Memtable probes resolve keys without touching any table.
	resolved := make([]bool, n)
	pending := order[:0:len(order)]
	for _, ki := range order {
		key := userKeys[ki]
		v, deleted, found := rs.mem.Get(key, snapSeq)
		if !found && rs.imm != nil {
			v, deleted, found = rs.imm.Get(key, snapSeq)
		}
		if found {
			resolved[ki] = true
			if deleted {
				errs[ki] = ErrNotFound
			} else {
				vals[ki] = append([]byte(nil), v...)
				db.m.getHits.Inc()
			}
			continue
		}
		pending = append(pending, ki)
	}

	// Per-key seek-compaction bookkeeping, applied in one db.mu
	// acquisition after the batch (LevelDB charges the first file
	// examined when a lookup touched more than one).
	examined := make([]int, n)
	firstFile := make([]*version.FileMeta, n)
	firstLevel := make([]int, n)
	var probes, totalExamined int64

	var batchErr error
	seekKey := make([]byte, 0, 64)
	for level := 0; level < version.NumLevels && len(pending) > 0 && batchErr == nil; level++ {
		var curNum uint64
		var curR *sstable.Reader
		next := pending[:0]
		for _, ki := range pending {
			key := userKeys[ki]
			var (
				bestSeq   keys.SeqNum
				bestKind  keys.Kind
				bestVal   []byte
				bestFound bool
			)
			for _, fm := range rs.v.ForLookup(level, key, db.opts.Picker.Fragmented) {
				if curR == nil || fm.Number != curNum {
					sp.To(tl.Now(), obs.PhaseReadTableOpen)
					r, err := db.tcache.open(tl, fm)
					if err != nil {
						batchErr = err
						break
					}
					curNum, curR = fm.Number, r
				}
				examined[ki]++
				totalExamined++
				if firstFile[ki] == nil {
					firstFile[ki], firstLevel[ki] = fm, level
				}
				sp.To(tl.Now(), obs.PhaseReadTableGet)
				if !curR.MayContain(key) {
					continue
				}
				probes++
				seekKey = keys.MakeInternalKey(seekKey[:0], key, snapSeq, keys.KindSeek)
				ikey, val, found, err := curR.Get(tl, seekKey)
				if err != nil {
					batchErr = &tableError{num: fm.Number, err: err}
					break
				}
				if !found {
					continue
				}
				ukey, seq, kind, ok := keys.ParseInternalKey(ikey)
				if !ok || keys.CompareUser(ukey, key) != 0 {
					continue
				}
				if !bestFound || seq > bestSeq {
					bestSeq, bestKind, bestFound = seq, kind, true
					bestVal = append(bestVal[:0], val...)
				}
			}
			if batchErr != nil {
				break
			}
			if bestFound {
				resolved[ki] = true
				if bestKind == keys.KindDelete {
					errs[ki] = ErrNotFound
				} else {
					vals[ki] = bestVal
					db.m.getHits.Inc()
				}
				continue
			}
			next = append(next, ki)
		}
		pending = next
	}
	db.m.multiGetProbes.Add(probes)

	// Values are copied out; drop the pin before seek charging so a
	// triggered compaction sees this batch's version unreferenced.
	release()
	db.m.getFilesExamined.Add(totalExamined)
	db.chargeSeeks(tl, examined, firstFile, firstLevel)

	if batchErr != nil {
		// A table failed mid-batch (injected fault, corruption). Fall
		// back to the per-key path for everything unresolved: it owns
		// the retry/heal machinery and will either serve the key or
		// report its real error.
		sp.To(tl.Now(), obs.PhaseReadHeal)
		for ki := 0; ki < n; ki++ {
			if !resolved[ki] {
				// Keep the batch's read point: the retried keys must
				// not see writes newer than the clamped sequence.
				vals[ki], errs[ki] = db.get(tl, userKeys[ki], snapSeq)
			}
		}
	} else {
		for _, ki := range pending {
			errs[ki] = ErrNotFound
		}
	}
	sp.Finish(tl.Now())
	db.tel.ObserveRead(sp)
	return vals, errs
}

// chargeSeeks applies LevelDB's allowed-seeks accounting for every key
// that examined two or more files, in a single db.mu acquisition.
func (db *DB) chargeSeeks(tl *vclock.Timeline, examined []int, firstFile []*version.FileMeta, firstLevel []int) {
	any := false
	for ki := range examined {
		if examined[ki] >= 2 && firstFile[ki] != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for ki := range examined {
		if examined[ki] < 2 || firstFile[ki] == nil {
			continue
		}
		fm := firstFile[ki]
		fm.AllowedSeeks--
		if fm.AllowedSeeks <= 0 && db.fileToCompact == nil &&
			firstLevel[ki] < version.NumLevels-1 {
			db.fileToCompact = fm
			db.fileToCompactLevel = firstLevel[ki]
			db.maybeScheduleCompaction(tl, false)
		}
	}
}
