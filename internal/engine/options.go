// Package engine implements the LSM-tree key-value store: a LevelDB
// architecture (WAL + memtable + leveled SSTables + MANIFEST) over the
// virtual-time filesystem, parameterized so that the seven systems the
// paper compares — LevelDB, a volatile LevelDB, NobLSM, BoLT, L2SM,
// HyperLevelDB, PebblesDB and a RocksDB-like configuration — are
// configurations of one engine (see internal/policy).
package engine

import (
	"noblsm/internal/governor"
	"noblsm/internal/obs"
	"noblsm/internal/sstable"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
)

// SyncMode selects the durability discipline for SSTables produced by
// compactions. The write-ahead log is never synced in any mode
// (LevelDB's default WriteOptions{sync:false}); its tail is the
// accepted loss window of every system in the paper.
type SyncMode int

const (
	// SyncAll fsyncs every SSTable produced by minor and major
	// compactions and the MANIFEST after every edit — stock LevelDB.
	SyncAll SyncMode = iota
	// SyncNone never syncs: the "volatile" LevelDB of Section 3,
	// fast but not crash-consistent.
	SyncNone
	// SyncNobLSM fsyncs only the L0 table of a minor compaction;
	// major-compaction outputs are written asynchronously and
	// tracked through ext4's commit tables (the paper's design).
	SyncNobLSM
	// SyncBoLT packs all outputs of a compaction into one large
	// factual SSTable and fsyncs it once per compaction (BoLT,
	// Middleware '20) — fewer barriers, but still on the critical
	// path, and KV pairs are re-synced at every future compaction.
	SyncBoLT
)

func (m SyncMode) String() string {
	switch m {
	case SyncAll:
		return "sync-all"
	case SyncNone:
		return "sync-none"
	case SyncNobLSM:
		return "noblsm"
	case SyncBoLT:
		return "bolt"
	default:
		return "sync(?)"
	}
}

// Options configure a DB.
type Options struct {
	// SyncMode is the durability discipline (see SyncMode).
	SyncMode SyncMode
	// WriteBufferSize is the memtable size that triggers a minor
	// compaction (LevelDB: 4 MiB).
	WriteBufferSize int64
	// TableFileSize is the output-file cut size of major compactions
	// (LevelDB default: 2 MiB; the paper standardizes on 64 MiB).
	TableFileSize int64
	// BlockSize and BloomBitsPerKey shape SSTables.
	BlockSize       int
	BloomBitsPerKey int
	// BloomBitsPerKeyByLevel overrides BloomBitsPerKey for tables whose
	// target level indexes into the slice (levels beyond its length use
	// BloomBitsPerKey). The useful shape spends more bits on L0/L1 —
	// every point lookup probes them, so false positives there cost a
	// table read per query — and fewer on the bottom level, where one
	// giant filter set dominates memory and a miss is the query's last
	// stop anyway.
	BloomBitsPerKeyByLevel []int
	// BlockCacheBytes bounds the shared block cache (LevelDB: 8 MiB).
	BlockCacheBytes int64
	// CompressedBlockCacheBytes bounds the warm cache tier holding
	// still-compressed block payloads (RocksDB's block_cache_compressed
	// idea): a hit there pays the decode CPU but no device read, and
	// entries pack 2-3× denser than the parsed blocks in the hot tier.
	// 0 disables the tier.
	CompressedBlockCacheBytes int64
	// Compression selects the SSTable block codec for newly built
	// tables (default NoCompression — the paper-figure variants store
	// raw blocks). Reading is always per-block tag-driven, so changing
	// this never invalidates existing tables.
	Compression sstable.Compression
	// CompressionByLevel overrides Compression for tables whose target
	// level indexes into the slice (levels beyond its length use
	// Compression). The useful shape compresses cold bottom levels
	// harder: their blocks are written once per major compaction and
	// read many times, so the slower codec amortizes.
	CompressionByLevel []sstable.Compression
	// IterReadaheadBlocks caps the per-table iterator readahead window,
	// in blocks (0 or 1 disables). Scans that read blocks sequentially
	// ramp a prefetch window 1→N blocks and fetch it in one device
	// request; a Seek cancels the window and restarts the ramp.
	IterReadaheadBlocks int
	// CodecCostDiv divides per-byte codec CPU charges, mirroring the
	// harness data-scale divisor applied to device bytes (default 1,
	// i.e. unscaled).
	CodecCostDiv int64
	// Picker tunes compaction triggering.
	Picker version.PickerOptions
	// ParallelCompactions is the number of background compaction
	// timelines — how many INDEPENDENTLY PICKED compactions can accrue
	// virtual time concurrently (LevelDB: 1; HyperLevelDB/RocksDB-like
	// variants use more). It does not split a single compaction; that
	// is CompactionSubcompactions.
	ParallelCompactions int
	// CompactionSubcompactions bounds the key-range shards ONE major
	// compaction is split into (RocksDB's max_subcompactions): the
	// picked input range is divided at input-file boundaries into up
	// to this many disjoint shards, each merged by its own pipelined
	// read→merge→write goroutine, and all outputs are installed in a
	// single version edit. Values <= 1 disable sharding; the effective
	// value is capped at 16. Only the async engine shards — the
	// default synchronous engine always merges sequentially so the
	// virtual-time figures stay deterministic — and BoLT's one-
	// factual-SSTable contract exempts it too.
	CompactionSubcompactions int
	// L0SlowdownTrigger and L0StopTrigger are LevelDB's write
	// throttling thresholds (8 and 12).
	L0SlowdownTrigger int
	L0StopTrigger     int
	// SlowdownDelay is the per-write penalty at the slowdown trigger
	// (LevelDB sleeps 1 ms).
	SlowdownDelay vclock.Duration
	// StallGroupCommitBytes caps a commit group while L0 is over the
	// slowdown trigger (default 128 KiB). Small groups keep the
	// per-group throttle biting every few writes instead of being
	// amortized away by megabyte-sized groups; governor experiments
	// tune it against the admission rate.
	StallGroupCommitBytes int
	// GovernorEnabled turns on closed-loop write admission control
	// (internal/governor): a token-bucket limiter whose rate tracks
	// the measured flush/compaction drain rate, converting L0 and
	// memtable pressure into smooth bounded per-write pacing delays
	// (stall cause "admission_pacing") instead of the LevelDB
	// slowdown/stop cliff. Off by default — the paper-figure variants
	// must reproduce stock throttling byte-for-byte.
	GovernorEnabled bool
	// Governor tunes the admission controller when GovernorEnabled is
	// set. Zero fields take the governor's defaults; RampStart and
	// RampStop default to Picker.L0CompactionTrigger and
	// L0StopTrigger.
	Governor governor.Config
	// WriteStallDeadline bounds how long one write may stall on
	// admission pacing or background backlog before failing with
	// ErrWriteStalled, so callers can shed load (and the server can
	// answer StatusBusy) instead of queueing without bound. It only
	// applies when GovernorEnabled is set; 0 preserves the
	// block-until-room behavior.
	WriteStallDeadline vclock.Duration
	// PollInterval is NobLSM's is_committed polling cadence (paper:
	// 5 s, matching the journal commit interval).
	PollInterval vclock.Duration
	// HotCold enables L2SM-style hot/cold separation: keys the
	// update-frequency sketch marks hot are kept at the compaction's
	// input level instead of being pushed down and rewritten.
	HotCold bool
	// HotThreshold is the sketch count at which a key counts as hot.
	HotThreshold uint8

	// CPU cost knobs (virtual time charged per operation, on top of
	// filesystem/device costs).
	WriteCPU      vclock.Duration // per Put/Delete
	ReadCPU       vclock.Duration // per Get
	IterCPU       vclock.Duration // per iterator step
	CompactionCPU vclock.Duration // per entry merged

	// AsyncCompaction runs flushes and major compactions on a real
	// background goroutine (LevelDB's background work thread): a
	// writer that fills the memtable swaps it into the immutable slot
	// and continues, stalling only when the previous flush has not
	// finished. Virtual-time charging is unchanged — the work still
	// accrues on the background timelines — but the REAL-time
	// interleaving of simulated-device calls becomes scheduler-
	// dependent, so deterministic virtual experiments (the figure
	// harnesses) must leave this off. It exists for wall-clock
	// throughput of the Go engine itself under concurrent load.
	AsyncCompaction bool

	// RecoveryMode selects how Open treats damage that in-place
	// recovery cannot absorb (see the constants). The zero value is
	// RecoverSalvage — maximum availability, matching NobLSM's pitch
	// that every post-crash state is recoverable from what is on disk.
	RecoveryMode RecoveryMode

	// Seed makes skiplist shapes and any sampling deterministic.
	Seed int64

	// Metrics is the observability registry the engine (and the
	// components it owns: WAL, MANIFEST, block cache, tracker)
	// publishes counters into. Nil: the engine creates a private
	// registry — the Stats() views work either way.
	Metrics *obs.Registry
	// Events receives structured engine events (memtable rotations,
	// compaction spans, stalls, tracker retention). Nil disables
	// tracing; every emission site guards with a single nil check, so
	// a nil sink costs nothing measurable on the hot path (see
	// BenchmarkWriteNilSink / BenchmarkWriteObserved).
	Events *obs.Tracer
	// Telemetry enables per-operation latency attribution: OpSpans are
	// threaded through the write and read paths, phase timers and the
	// cause-tagged stall ledger are populated, and the windowed
	// time-series accumulates. Nil (the default) disables attribution
	// at one pointer check per operation; attribution only reads the
	// caller's virtual clock, so enabling it never changes an
	// operation's virtual latency. Build with obs.NewTelemetry —
	// usually over the same registry as Metrics.
	Telemetry *obs.Telemetry
}

// RecoveryMode selects Open's posture toward store damage beyond the
// ordinary torn tail of a crash.
type RecoveryMode int

const (
	// RecoverSalvage (the default) recovers everything recoverable:
	// WAL interior corruption is salvaged to the last valid record
	// before the damage, and an unusable MANIFEST — missing, CRC-
	// corrupt in its interior, or unreachable through CURRENT — is
	// rebuilt by Repair from the SSTables on disk and the retained
	// shadow predecessors.
	RecoverSalvage RecoveryMode = iota
	// RecoverStrict fails Open instead: WAL interior corruption
	// surfaces as an error wrapping wal.ErrInteriorCorruption, and an
	// unusable MANIFEST as one wrapping ErrNeedsRepair, leaving the
	// store untouched for forensics or an explicit Repair.
	RecoverStrict
)

// DefaultOptions mirrors stock LevelDB 1.23 with the paper's 64 MiB
// SSTable setting left to the caller (the default here is LevelDB's
// own 2 MiB).
func DefaultOptions() Options {
	return Options{
		SyncMode:              SyncAll,
		WriteBufferSize:       4 << 20,
		TableFileSize:         2 << 20,
		BlockSize:             4096,
		BloomBitsPerKey:       10,
		BlockCacheBytes:       8 << 20,
		Picker:                version.DefaultPickerOptions(),
		ParallelCompactions:   1,
		L0SlowdownTrigger:     8,
		L0StopTrigger:         12,
		SlowdownDelay:         vclock.Millisecond,
		StallGroupCommitBytes: 128 << 10,
		PollInterval:          5 * vclock.Second,
		HotThreshold:          8,
		// Per-operation CPU/syscall costs calibrated to the paper's
		// testbed: its no-sync LevelDB sustains ~12 µs per 1 KB put
		// (Figure 2b: 123 s for 10 M ops at 64 MB tables), which is
		// the foreground path — WAL append, memtable insert, engine
		// overhead — with no device waits. That foreground budget is
		// what gives the background thread slack to hide
		// asynchronous work, the effect NobLSM exploits.
		WriteCPU:      12 * vclock.Microsecond,
		ReadCPU:       3 * vclock.Microsecond,
		IterCPU:       150 * vclock.Nanosecond,
		CompactionCPU: 100 * vclock.Nanosecond,
		Seed:          1,
	}
}

// sanitize fills zero fields with defaults and coerces out-of-range
// values into their valid domains.
func (o Options) sanitize() Options {
	d := DefaultOptions()
	if o.WriteBufferSize <= 0 {
		o.WriteBufferSize = d.WriteBufferSize
	}
	if o.TableFileSize <= 0 {
		o.TableFileSize = d.TableFileSize
	}
	if o.BlockSize <= 0 {
		o.BlockSize = d.BlockSize
	}
	if o.BlockCacheBytes <= 0 {
		o.BlockCacheBytes = d.BlockCacheBytes
	}
	if o.CodecCostDiv < 1 {
		o.CodecCostDiv = 1
	}
	if o.IterReadaheadBlocks < 0 {
		o.IterReadaheadBlocks = 0
	}
	if o.Picker.L0CompactionTrigger <= 0 {
		o.Picker = d.Picker
	}
	if o.ParallelCompactions <= 0 {
		o.ParallelCompactions = 1
	}
	if o.CompactionSubcompactions <= 0 {
		o.CompactionSubcompactions = 1
	}
	if o.CompactionSubcompactions > maxSubcompactions {
		o.CompactionSubcompactions = maxSubcompactions
	}
	if o.L0SlowdownTrigger <= 0 {
		o.L0SlowdownTrigger = d.L0SlowdownTrigger
	}
	if o.L0StopTrigger <= 0 {
		o.L0StopTrigger = d.L0StopTrigger
	}
	if o.SlowdownDelay <= 0 {
		o.SlowdownDelay = d.SlowdownDelay
	}
	if o.StallGroupCommitBytes <= 0 {
		o.StallGroupCommitBytes = d.StallGroupCommitBytes
	}
	if o.WriteStallDeadline < 0 {
		o.WriteStallDeadline = 0
	}
	if o.PollInterval <= 0 {
		o.PollInterval = d.PollInterval
	}
	if o.HotThreshold == 0 {
		o.HotThreshold = d.HotThreshold
	}
	if o.WriteCPU <= 0 {
		o.WriteCPU = d.WriteCPU
	}
	if o.ReadCPU <= 0 {
		o.ReadCPU = d.ReadCPU
	}
	if o.IterCPU <= 0 {
		o.IterCPU = d.IterCPU
	}
	if o.CompactionCPU <= 0 {
		o.CompactionCPU = d.CompactionCPU
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// compressionForLevel resolves the codec for a table targeting level.
func (o Options) compressionForLevel(level int) sstable.Compression {
	if level >= 0 && level < len(o.CompressionByLevel) {
		return o.CompressionByLevel[level]
	}
	return o.Compression
}

// bloomBitsForLevel resolves the filter sizing for a table targeting
// level. A by-level entry applies verbatim (0 disables the filter for
// that level); levels beyond the slice use the global setting.
func (o Options) bloomBitsForLevel(level int) int {
	if level >= 0 && level < len(o.BloomBitsPerKeyByLevel) {
		return o.BloomBitsPerKeyByLevel[level]
	}
	return o.BloomBitsPerKey
}

// syncManifest reports whether MANIFEST edits are fsynced.
func (o Options) syncManifest() bool {
	return o.SyncMode == SyncAll || o.SyncMode == SyncBoLT
}

// syncMinor reports whether L0 tables from minor compactions are
// fsynced.
func (o Options) syncMinor() bool {
	return o.SyncMode != SyncNone
}
