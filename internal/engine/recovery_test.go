package engine

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"noblsm/internal/ext4"
	"noblsm/internal/vclock"
	"noblsm/internal/wal"
)

// findFile returns the highest-numbered file of the given kind in the
// store directory.
func findFile(t *testing.T, fs *ext4.FS, tl *vclock.Timeline, kind FileKind) string {
	t.Helper()
	best, bestNum, found := "", uint64(0), false
	for _, name := range fs.List(tl) {
		if k, num, ok := ParseFileName(name); ok && k == kind {
			if !found || num >= bestNum {
				best, bestNum, found = name, num, true
			}
		}
	}
	if !found {
		t.Fatalf("no file of kind %d in %v", kind, fs.List(tl))
	}
	return best
}

// corruptRecordPayload flips a bit in the first payload byte of the
// idx'th physical record of a log-format file, returning how many
// valid records the file held before the damage.
func corruptRecordPayload(t *testing.T, fs *ext4.FS, tl *vclock.Timeline, name string, idx int) int {
	t.Helper()
	data, err := fs.ReadFile(tl, name)
	if err != nil {
		t.Fatal(err)
	}
	recs := wal.ScanRecords(data)
	valid := 0
	for _, r := range recs {
		if r.Valid {
			valid++
		}
	}
	if idx >= len(recs) || !recs[idx].Valid {
		t.Fatalf("%s: record %d of %d not available for corruption", name, idx, len(recs))
	}
	// Header is 7 bytes (CRC + length + type); +7 lands inside the
	// payload, so the CRC check fails while the framing stays intact.
	if err := fs.CorruptAt(name, int64(recs[idx].Off)+7); err != nil {
		t.Fatal(err)
	}
	return valid
}

// TestWALInteriorCorruptionRecoveryModes damages the interior of a
// live WAL — a valid record region after the flipped bit — and opens
// the store in both recovery postures: strict must refuse with
// wal.ErrInteriorCorruption before mutating anything, salvage must
// come up serving exactly the records before the damage and account
// the rest as recovery drops.
func TestWALInteriorCorruptionRecoveryModes(t *testing.T) {
	const ops = 100
	opts := smallOpts(SyncAll)
	// Keep every record in the WAL: values are ~1 KiB so the log
	// spans several 32 KiB blocks (interior damage needs valid
	// records in LATER blocks), and the write buffer is large enough
	// that no flush rotates the log away.
	opts.WriteBufferSize = 1 << 20
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatal(err)
	}
	val := func(i int) string {
		return fmt.Sprintf("val-%04d-%s", i, bytes.Repeat([]byte{'v'}, 1024))
	}
	for i := 0; i < ops; i++ {
		mustPut(t, db, tl, fmt.Sprintf("key-%04d", i), val(i))
	}
	if err := db.Close(tl); err != nil {
		t.Fatal(err)
	}

	const damaged = 25
	log := findFile(t, fs, tl, KindLog)
	valid := corruptRecordPayload(t, fs, tl, log, damaged)
	if valid != ops {
		t.Fatalf("log %s holds %d valid records, want %d (one per put)", log, valid, ops)
	}

	// Strict: the probe scan must surface the interior damage as an
	// error before replay touches engine state.
	strict := opts
	strict.RecoveryMode = RecoverStrict
	if _, err := Open(tl, fs, strict); !errors.Is(err, wal.ErrInteriorCorruption) {
		t.Fatalf("strict open: got %v, want wrap of wal.ErrInteriorCorruption", err)
	}

	// Drop accounting counts the records a resyncing scan can still
	// individually see past the damage; the records buried in the
	// skipped remainder of the damaged block are accounted as dropped
	// bytes, not records (LevelDB's convention). Derive the expected
	// record count from a post-corruption scan, before salvage
	// recycles the log.
	data, err := fs.ReadFile(tl, log)
	if err != nil {
		t.Fatal(err)
	}
	validAfter := 0
	for _, r := range wal.ScanRecords(data) {
		if r.Valid {
			validAfter++
		}
	}

	// Salvage (the default): recovery halts replay at the damage,
	// keeping every record before it and dropping everything after —
	// the same contract as a torn tail, shifted to the damage point.
	db2, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatalf("salvage open: %v", err)
	}
	defer db2.Close(tl)
	for i := 0; i < damaged; i++ {
		got, err := db2.Get(tl, []byte(fmt.Sprintf("key-%04d", i)))
		if err != nil {
			t.Fatalf("key-%04d before damage: %v", i, err)
		}
		if string(got) != val(i) {
			t.Fatalf("key-%04d: wrong value after salvage", i)
		}
	}
	for i := damaged; i < ops; i++ {
		if _, err := db2.Get(tl, []byte(fmt.Sprintf("key-%04d", i))); err != ErrNotFound {
			t.Fatalf("key-%04d at/after damage: got %v, want ErrNotFound", i, err)
		}
	}
	// +1: the damaged region itself is accounted as one dropped
	// record when the reader halts on it.
	if wantDrops := validAfter - damaged + 1; db2.WALDropsAtRecovery() != wantDrops {
		t.Fatalf("salvage accounted %d dropped records, want %d (of %d truly lost)",
			db2.WALDropsAtRecovery(), wantDrops, ops-damaged)
	}

	// The salvage rewrote durable state; a THIRD open must be clean —
	// no drops, same data.
	if err := db2.Close(tl); err != nil {
		t.Fatal(err)
	}
	db3, err := Open(tl, fs, strict) // strict now passes too
	if err != nil {
		t.Fatalf("reopen after salvage: %v", err)
	}
	defer db3.Close(tl)
	if drops := db3.WALDropsAtRecovery(); drops != 0 {
		t.Fatalf("reopen after salvage dropped %d records, want 0", drops)
	}
	got, err := db3.Get(tl, []byte(fmt.Sprintf("key-%04d", damaged-1)))
	if err != nil || string(got) != val(damaged-1) {
		t.Fatalf("salvaged record did not survive the rewrite: %q, %v", got, err)
	}
}

// TestOpenMissingCurrentRecoveryModes deletes CURRENT from a store
// full of data: strict Open must refuse with ErrNeedsRepair and touch
// nothing, salvage Open must transparently repair and serve the full
// acked keyspace.
func TestOpenMissingCurrentRecoveryModes(t *testing.T) {
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	opts := smallOpts(SyncAll)
	db, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Puts only: repair rebuilds with every surviving table at L0,
	// which preserves put/overwrite semantics exactly (sequence
	// numbers order the versions).
	expected := make(map[string]string)
	for i := 0; i < 4000; i++ {
		k := fmt.Sprintf("key-%05d", i%700)
		v := fmt.Sprintf("%s=val-%05d-%s", k, i, bytes.Repeat([]byte{'p'}, 60))
		mustPut(t, db, tl, k, v)
		expected[k] = v
	}
	if err := db.Close(tl); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(tl, CurrentName); err != nil {
		t.Fatal(err)
	}

	strict := opts
	strict.RecoveryMode = RecoverStrict
	if _, err := Open(tl, fs, strict); !errors.Is(err, ErrNeedsRepair) {
		t.Fatalf("strict open without CURRENT: got %v, want wrap of ErrNeedsRepair", err)
	}
	if fs.Exists(tl, CurrentName) {
		t.Fatal("strict open recreated CURRENT: refusal must leave the store untouched")
	}

	db2, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatalf("salvage open without CURRENT: %v", err)
	}
	defer db2.Close(tl)
	for k, v := range expected {
		got, err := db2.Get(tl, []byte(k))
		if err != nil {
			t.Fatalf("key %q after auto-repair: %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("key %q after auto-repair: got %q want %q", k, got, v)
		}
	}
}
