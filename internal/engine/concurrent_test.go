package engine

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"noblsm/internal/ext4"
	"noblsm/internal/vclock"
)

// TestConcurrentPutGetIterator hammers one DB from parallel writers,
// point readers and full-scan iterators. Under -race this vets the
// lock-free memtable read path, the readState snapshot (mem, imm,
// version) and, in the async subtest, the background flush/compaction
// worker racing the foreground. The invariant checked everywhere: a
// value always belongs to exactly the key it is read under — a torn
// read, a cross-key mixup in a recycled buffer, or a stale readState
// would all surface as a prefix mismatch.
func TestConcurrentPutGetIterator(t *testing.T) {
	for _, async := range []bool{false, true} {
		name := "sync"
		if async {
			name = "asyncCompaction"
		}
		t.Run(name, func(t *testing.T) {
			opts := smallOpts(SyncAll)
			opts.AsyncCompaction = async
			fs := ext4.New(smallFSConfig(), smallDevice())
			tl := vclock.NewTimeline(0)
			db, err := Open(tl, fs, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close(tl)

			const (
				writers       = 3
				readers       = 2
				scanners      = 1
				opsPerWriter  = 1500
				keysPerWriter = 250
			)
			key := func(w, slot int) []byte {
				return []byte(fmt.Sprintf("w%02d-%06d", w, slot))
			}
			var writersDone atomic.Bool
			var writerWG, readerWG sync.WaitGroup
			errs := make(chan error, writers+readers+scanners)

			for w := 0; w < writers; w++ {
				writerWG.Add(1)
				go func(w int) {
					defer writerWG.Done()
					ctl := vclock.NewTimeline(tl.Now())
					for i := 0; i < opsPerWriter; i++ {
						k := key(w, i%keysPerWriter)
						if i%41 == 40 {
							if err := db.Delete(ctl, k); err != nil {
								errs <- fmt.Errorf("writer %d delete: %w", w, err)
								return
							}
							continue
						}
						v := append(append([]byte(nil), k...), fmt.Sprintf("#%06d", i)...)
						if err := db.Put(ctl, k, v); err != nil {
							errs <- fmt.Errorf("writer %d put: %w", w, err)
							return
						}
					}
				}(w)
			}

			checkValue := func(where string, k, v []byte) error {
				if !bytes.HasPrefix(v, k) {
					return fmt.Errorf("%s: key %q carries value %q of another key", where, k, v)
				}
				return nil
			}
			for r := 0; r < readers; r++ {
				readerWG.Add(1)
				go func(r int) {
					defer readerWG.Done()
					ctl := vclock.NewTimeline(tl.Now())
					for i := 0; !writersDone.Load(); i++ {
						k := key((r+i)%writers, i%keysPerWriter)
						v, err := db.Get(ctl, k)
						if err == ErrNotFound {
							continue
						}
						if err != nil {
							errs <- fmt.Errorf("reader %d: %w", r, err)
							return
						}
						if err := checkValue("reader", k, v); err != nil {
							errs <- err
							return
						}
					}
				}(r)
			}
			for s := 0; s < scanners; s++ {
				readerWG.Add(1)
				go func() {
					defer readerWG.Done()
					ctl := vclock.NewTimeline(tl.Now())
					for !writersDone.Load() {
						it, err := db.NewIterator(ctl)
						if err != nil {
							errs <- fmt.Errorf("scanner: %w", err)
							return
						}
						var prev []byte
						for it.First(); it.Valid(); it.Next() {
							if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
								errs <- fmt.Errorf("scanner: keys out of order: %q then %q", prev, it.Key())
								return
							}
							prev = append(prev[:0], it.Key()...)
							if err := checkValue("scanner", it.Key(), it.Value()); err != nil {
								errs <- err
								return
							}
						}
						if err := it.Err(); err != nil {
							errs <- fmt.Errorf("scanner: %w", err)
							return
						}
					}
				}()
			}

			// Writers exit on error too, so this barrier cannot hang;
			// flipping writersDone then winds down readers and scanners.
			writerWG.Wait()
			writersDone.Store(true)
			readerWG.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if t.Failed() {
				t.FailNow()
			}

			// The writers overlapped, so the leader must have coalesced
			// at least some groups; the histogram is the acceptance
			// surface for that (`DB.Property("noblsm.metrics")`).
			metrics, ok := db.Property("noblsm.metrics")
			if !ok || !strings.Contains(metrics, "engine.group_commit_size") {
				t.Fatalf("group-commit histogram missing from noblsm.metrics:\n%s", metrics)
			}
		})
	}
}

// TestConcurrentGroupCommitCrash cuts power under concurrent multi-key
// batch writers and checks the WAL-tail contract: a batch survives
// recovery entirely or not at all. Group commit merges the batches of
// a group into one WAL record, so a torn tail may only ever drop whole
// records — splitting a batch would mean the leader interleaved batch
// payloads or recovery replayed a partial record.
func TestConcurrentGroupCommitCrash(t *testing.T) {
	cfg := smallFSConfig()
	cfg.CommitInterval = 500 * vclock.Microsecond
	opts := smallOpts(SyncAll)
	opts.PollInterval = cfg.CommitInterval
	fs := ext4.New(cfg, smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers      = 4
		batchesPer   = 120
		keysPerBatch = 5
	)
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctl := vclock.NewTimeline(tl.Now())
			for i := 0; i < batchesPer; i++ {
				id := w*batchesPer + i
				var b Batch
				for k := 0; k < keysPerBatch; k++ {
					b.Put([]byte(fmt.Sprintf("batch%05d-key%d", id, k)),
						[]byte(fmt.Sprintf("val%05d", id)))
				}
				if err := db.Write(ctl, &b); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	fs.Crash(tl.Now())

	db2, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	intact, lost := 0, 0
	for id := 0; id < writers*batchesPer; id++ {
		present := 0
		for k := 0; k < keysPerBatch; k++ {
			key := []byte(fmt.Sprintf("batch%05d-key%d", id, k))
			v, err := db2.Get(tl, key)
			if err == ErrNotFound {
				continue
			}
			if err != nil {
				t.Fatalf("batch %d key %d: %v", id, k, err)
			}
			if want := fmt.Sprintf("val%05d", id); string(v) != want {
				t.Fatalf("batch %d key %d corrupted: %q", id, k, v)
			}
			present++
		}
		switch present {
		case 0:
			lost++
		case keysPerBatch:
			intact++
		default:
			t.Errorf("batch %d split by the crash: %d/%d keys survived", id, present, keysPerBatch)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	if intact == 0 {
		t.Fatal("no batch survived the crash; the workload never outran a commit window")
	}
	t.Logf("crash kept %d batches whole, dropped %d whole", intact, lost)
}
