package engine

// Background-error state machine and self-healing reads.
//
// Before this file existed, a failed flush or compaction either killed
// the background worker silently (async mode) or bubbled an opaque
// error to whichever writer happened to trigger the work. Now every
// background failure is classified:
//
//   - transient errors (vfs.IsTransient — the fault-injection plane's
//     recoverable I/O errors) are retried with capped exponential
//     backoff charged to the failing operation's virtual timeline;
//   - permanent errors flip the DB into read-only mode: writes fail
//     fast with ErrReadOnly, reads keep serving, Close reports the
//     error, and DB.Property("noblsm.background-errors") renders the
//     whole state machine;
//   - sstable corruption (sstable.ErrCorrupt) is routed to the
//     self-healing path (heal.go): if the corrupt table is a
//     compaction successor whose dependency has not journal-committed,
//     NobLSM's retained shadow predecessors still hold every byte of
//     its data, so the version is rolled back onto them, the bad
//     successor is quarantined, and the compaction is redone.
//
// A WAL append failure poisons the current log (wal.AddRecord's
// contract: the framing can no longer be trusted), and the next commit
// rotates to a fresh log before appending. A MANIFEST append failure
// is recovered by rewriting the manifest as a snapshot on a fresh file
// (recoverManifest) — retry-in-place is unsound for the same framing
// reason.

import (
	"errors"
	"fmt"

	"noblsm/internal/memtable"
	"noblsm/internal/obs"
	"noblsm/internal/vclock"
	"noblsm/internal/vfs"
)

// ErrReadOnly is returned by writes after a permanent background error
// put the database into read-only mode. The wrapped cause is available
// via DB.BackgroundError and the "noblsm.background-errors" property.
var ErrReadOnly = errors.New("engine: database is read-only after background error")

// ErrWriteStalled is returned by writes when the admission governor is
// saturated past Options.WriteStallDeadline: the write waited out the
// deadline, was NOT applied, and may be retried — it is backpressure,
// not failure. The server maps it to the retryable StatusBusy.
var ErrWriteStalled = errors.New("engine: write stalled past deadline (backpressure; retry)")

const (
	// bgRetryBase is the first retry backoff; each retry doubles it up
	// to bgRetryCap. All delays are virtual time on the failing
	// operation's timeline, so the default deterministic engine stays
	// deterministic under injected faults.
	bgRetryBase = 1 * vclock.Millisecond
	bgRetryCap  = 256 * vclock.Millisecond
	// bgMaxRetries bounds retries of one logical operation before the
	// error escalates to permanent.
	bgMaxRetries = 8
)

// bgBackoff returns the backoff before retry attempt (0-based).
func bgBackoff(attempt int) vclock.Duration {
	d := bgRetryBase
	for i := 0; i < attempt && d < bgRetryCap; i++ {
		d *= 2
	}
	if d > bgRetryCap {
		d = bgRetryCap
	}
	return d
}

// tableError attributes an I/O or corruption error to one table so the
// read path and the compaction scheduler can route it to the
// self-healing machinery.
type tableError struct {
	num uint64
	err error
}

func (e *tableError) Error() string {
	return fmt.Sprintf("engine: table %06d: %v", e.num, e.err)
}

func (e *tableError) Unwrap() error { return e.err }

// setPermanentLocked records the first permanent background error and
// flips the DB read-only. Idempotent; caller holds db.mu.
func (db *DB) setPermanentLocked(tl *vclock.Timeline, err error) {
	if db.bgPermanent != nil {
		return
	}
	db.bgPermanent = err
	db.readOnly.Store(true)
	db.m.bgPermanentErrors.Inc()
	db.m.readOnlyGauge.Set(1)
	if db.bgErr == nil {
		db.bgErr = err
	}
	if db.bgCond != nil {
		// Writers parked on the immutable-memtable slot must observe
		// the error instead of waiting forever.
		db.bgCond.Broadcast()
	}
	if db.trace != nil {
		db.trace.Instant(obs.TidForeground, "error", "bg.permanent", tl.Now(),
			obs.KV{K: "error", V: err.Error()})
	}
}

// noteTransientLocked counts one transient background error and the
// retry it provokes, then charges the backoff to tl. Caller holds
// db.mu.
func (db *DB) noteTransientLocked(tl *vclock.Timeline, attempt int) {
	db.m.bgTransientErrors.Inc()
	db.m.bgRetries.Inc()
	tl.Advance(bgBackoff(attempt))
}

// BackgroundError reports the permanent background error that put the
// database into read-only mode, or nil.
func (db *DB) BackgroundError() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.bgPermanent
}

// ReadOnly reports whether a permanent background error has put the
// database into read-only mode.
func (db *DB) ReadOnly() bool { return db.readOnly.Load() }

// flushWithRetry runs a minor compaction with capped exponential
// backoff on transient errors. On a permanent failure the caller must
// keep the immutable memtable parked: its records survive in the
// rotated-out WAL, so dropping it would silently lose acked writes —
// exactly the failure mode this machinery replaces. Caller holds
// db.mu.
func (db *DB) flushWithRetry(tl *vclock.Timeline, imm *memtable.MemTable, logNumber uint64, unlock bool) error {
	for attempt := 0; ; attempt++ {
		err := db.minorCompaction(tl, imm, logNumber, unlock)
		if err == nil {
			return nil
		}
		if db.bgPermanent != nil {
			return db.bgPermanent
		}
		if !vfs.IsTransient(err) || attempt >= bgMaxRetries {
			err = fmt.Errorf("engine: flush: %w", err)
			db.setPermanentLocked(tl, err)
			return err
		}
		db.noteTransientLocked(tl, attempt)
	}
}

// rotatePoisonedWAL replaces a write-ahead log whose last append
// failed. The failed append may have left a torn record at the log's
// tail; its group was never acked or applied to the memtable, so after
// rotation the damage is a dead tail artifact that recovery truncates
// silently. Caller holds db.mu.
func (db *DB) rotatePoisonedWAL(tl *vclock.Timeline) error {
	for attempt := 0; ; attempt++ {
		err := db.newWAL(tl)
		if err == nil {
			db.walPoisoned = false
			db.m.walPoisonRotations.Inc()
			return nil
		}
		if !vfs.IsTransient(err) || attempt >= bgMaxRetries {
			err = fmt.Errorf("engine: wal rotation after poisoned append: %w", err)
			db.setPermanentLocked(tl, err)
			return err
		}
		db.noteTransientLocked(tl, attempt)
	}
}

// recoverManifest replaces the MANIFEST after a failed append. The
// writer cannot retry in place: the file may hold a partial record, so
// any further append would be misframed against the on-disk block
// phase and the reader would drop every subsequent edit at block
// granularity. The already-applied in-memory version is snapshotted
// onto a fresh manifest file instead (rewriteManifest syncs it and
// durably repoints CURRENT). Caller holds db.mu.
func (db *DB) recoverManifest(tl *vclock.Timeline, cause error) error {
	if errors.Is(cause, vfs.ErrClosed) {
		// The append failed because the handle is gone — a closed DB
		// or a crash-severed filesystem (the fault plane's power-cut
		// model invalidates every open handle). Rewriting here would
		// durably install this process's post-crash in-memory state —
		// a version that may reference never-synced tables — onto the
		// remounted filesystem, racing the recovery that owns it. Go
		// permanently read-only instead; recovery rebuilds from disk.
		err := fmt.Errorf("engine: manifest append on severed handle: %w", cause)
		db.setPermanentLocked(tl, err)
		return err
	}
	for attempt := 0; ; attempt++ {
		err := db.rewriteManifest(tl, db.logNumber)
		if err == nil {
			if db.sys != nil {
				// The fresh manifest begins with a synced snapshot:
				// every edit so far is durable, so all logs below the
				// snapshot's log number are immediately safe to delete.
				db.logGates = append(db.logGates[:0], logGate{Log: db.logNumber, ManifestOff: 0})
			}
			return nil
		}
		if !vfs.IsTransient(err) || attempt >= bgMaxRetries {
			err = fmt.Errorf("engine: manifest rewrite after append failure (%v): %w", cause, err)
			db.setPermanentLocked(tl, err)
			return err
		}
		db.noteTransientLocked(tl, attempt)
	}
}

// retryFileSync retries a file sync on transient errors, escalating to
// permanent on exhaustion. Caller holds db.mu.
func (db *DB) retryFileSync(tl *vclock.Timeline, f vfs.File, what string) error {
	for attempt := 0; ; attempt++ {
		err := f.Sync(tl)
		if err == nil {
			return nil
		}
		if !vfs.IsTransient(err) || attempt >= bgMaxRetries {
			err = fmt.Errorf("engine: %s sync: %w", what, err)
			db.setPermanentLocked(tl, err)
			return err
		}
		db.noteTransientLocked(tl, attempt)
	}
}
