package engine

// Real-time background compaction (Options.AsyncCompaction).
//
// In the default configuration flushes and major compactions execute
// synchronously on the calling goroutine while their cost accrues on
// virtual background timelines — fully deterministic, which the
// virtual-time experiments require (the harness single-steps clients,
// and real-time interleaving of simulated-device calls would otherwise
// perturb virtual outcomes). With AsyncCompaction the same work runs
// on one real background goroutine, LevelDB-style: a writer that
// fills the memtable parks it in the immutable slot, rotates the WAL
// and continues; it stalls only when the previous flush has not
// drained. Reads stay consistent throughout because the published
// read state carries the {mutable, immutable, version} triple.
//
// Version and manifest mutations remain serialized: the worker holds
// db.mu except around the heavy table builds and merge loops, writers
// never compact in async mode, the reader seek path only records
// fileToCompact and kicks the worker, and CompactRange/Close wait for
// the worker to park before touching version state.

import (
	"noblsm/internal/vclock"
	"noblsm/internal/version"
)

// startBgWork launches the background worker if it is not running.
// Caller holds db.mu.
func (db *DB) startBgWork() {
	if db.bgActive || db.opening || db.closed.Load() {
		return
	}
	db.bgActive = true
	go db.bgWork()
}

// bgWork is the background worker loop: flush the immutable memtable
// if one is parked, then run any pending major compactions, then park.
// All state transitions happen under db.mu, so a rotation that races
// with the worker's decision to park is impossible — either the
// worker sees the new imm before parking, or the rotating writer sees
// bgActive==false and starts a fresh worker.
func (db *DB) bgWork() {
	db.mu.Lock()
	defer db.mu.Unlock()
	for db.bgErr == nil {
		if db.imm != nil {
			imm, logNum, at := db.imm, db.flushLogNumber, db.flushStartAt
			// The flush's virtual start is the rotation instant; the
			// trailing maybeScheduleCompaction inside runs pending
			// majors inline (unlocked merges).
			err := db.flushWithRetry(vclock.NewTimeline(at), imm, logNum, true)
			if err != nil {
				// Keep the immutable memtable parked: its records live
				// only in the rotated-out WAL and this memtable, so
				// dropping it here would silently lose acked writes.
				db.bgErr = err
			} else {
				db.imm = nil
			}
			db.publishReadState()
			db.bgCond.Broadcast()
			continue
		}
		if (db.fileToCompact != nil || db.compactionPending()) && !db.closed.Load() {
			// Seek-triggered work recorded by a reader, or a level over
			// pressure left behind when a flush preempted the majors.
			db.maybeScheduleCompaction(db.pickBg(), true)
			continue
		}
		break
	}
	db.bgActive = false
	db.bgCond.Broadcast()
}

// compactionPending reports whether any level is over size pressure —
// a pure Score scan that, unlike PickCompaction, moves no compaction
// pointers. Caller holds db.mu.
func (db *DB) compactionPending() bool {
	for level := 0; level < version.NumLevels-1; level++ {
		if version.Score(db.current, level, db.opts.Picker) > 0.99999 {
			return true
		}
	}
	return false
}

// waitBgIdle blocks until the background worker has parked and any
// pending immutable memtable is gone, surfacing a background error.
// Caller holds db.mu.
func (db *DB) waitBgIdle() error {
	for db.bgActive {
		db.bgCond.Wait()
	}
	if db.bgErr != nil {
		return db.bgErr
	}
	if db.imm != nil {
		// The worker parked between rotations with an error already
		// reported, or was never started; flush inline.
		err := db.flushWithRetry(vclock.NewTimeline(db.flushStartAt), db.imm, db.flushLogNumber, false)
		if err == nil {
			db.imm = nil
		}
		db.publishReadState()
		db.bgCond.Broadcast()
		return err
	}
	return nil
}
