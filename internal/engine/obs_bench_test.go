package engine

import (
	"fmt"
	"testing"

	"noblsm/internal/ext4"
	"noblsm/internal/obs"
	"noblsm/internal/vclock"
)

// These benchmarks demonstrate that the observability hooks cost
// nothing measurable on the write hot path: the nil-sink variant must
// be within noise of the observed one, because metric updates are
// plain atomic adds either way and a nil tracer is one pointer check
// per emission site. Compare:
//
//	go test ./internal/engine/ -bench BenchmarkWrite -benchtime 2s
func benchWrite(b *testing.B, metrics *obs.Registry, events *obs.Tracer) {
	b.Helper()
	opts := smallOpts(SyncNone)
	// A large write buffer keeps rotations (and their compactions)
	// out of the measured loop: this isolates the per-Put overhead.
	opts.WriteBufferSize = 1 << 30
	opts.Metrics = metrics
	opts.Events = events
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close(tl)

	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("key%012d", i)
		if err := db.Put(tl, []byte(key), val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteNilSink is the baseline: no shared registry, no
// tracer — the configuration every non-observed run uses.
func BenchmarkWriteNilSink(b *testing.B) {
	benchWrite(b, nil, nil)
}

// BenchmarkWriteObserved enables both halves of the sink.
func BenchmarkWriteObserved(b *testing.B) {
	benchWrite(b, obs.NewRegistry(), obs.NewTracer(obs.DefaultTraceEvents))
}
