package engine

import (
	"errors"
	"fmt"

	"noblsm/internal/core"
	"noblsm/internal/iterator"
	"noblsm/internal/keys"
	"noblsm/internal/memtable"
	"noblsm/internal/obs"
	"noblsm/internal/sstable"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
	"noblsm/internal/vfs"
)

// memIter adapts a memtable iterator to iterator.Iterator.
type memIter struct{ *memtable.Iterator }

func (memIter) Err() error { return nil }

// taggedIter attributes a merge child's error to its source table so
// the compaction scheduler can route corruption to the self-healing
// path (heal.go).
type taggedIter struct {
	iterator.Iterator
	num uint64
}

func (t taggedIter) Err() error {
	if err := t.Iterator.Err(); err != nil {
		return &tableError{num: t.num, err: err}
	}
	return nil
}

// minorCompaction dumps an immutable memtable to an L0 (or pushed-
// down) SSTable on the background timeline. This is the one place
// NobLSM syncs KV pairs; afterwards the old WAL is deleted.
//
// The compaction executes eagerly (state changes now) while its cost
// accrues on a background timeline; db.minorDoneAt records its virtual
// completion so the foreground can stall on it, as LevelDB's writers
// stall on the immutable memtable.
//
// unlock (async mode, from the background worker only) releases db.mu
// around the table build, so writers and readers proceed while the
// flush runs; version/manifest mutations reacquire it.
func (db *DB) minorCompaction(tl *vclock.Timeline, imm *memtable.MemTable, logNumber uint64, unlock bool) error {
	bg := db.bg[0]
	bg.WaitUntil(tl.Now())
	db.m.minor.Inc()
	start := bg.Now()

	num := db.newFileNumber()
	var meta *version.FileMeta
	var entries int
	build := func() error {
		f, err := db.fs.Create(bg, TableName(num))
		if err != nil {
			return err
		}
		b := sstable.NewBuilder(f, db.buildOptions(0, &sstable.BuildScratch{}))
		it := imm.NewIterator()
		for it.First(); it.Valid(); it.Next() {
			if err := b.Add(bg, it.Key(), it.Value()); err != nil {
				return err
			}
			bg.Advance(db.opts.CompactionCPU)
		}
		if err := b.Finish(bg); err != nil {
			return err
		}
		entries = b.Entries()
		meta = &version.FileMeta{
			Number:   num,
			Size:     b.FileSize(),
			Smallest: append([]byte(nil), b.Smallest()...),
			Largest:  append([]byte(nil), b.Largest()...),
			Ino:      f.Ino(),
		}
		if db.opts.syncMinor() {
			if err := f.Sync(bg); err != nil {
				return err
			}
		}
		f.Close(bg)
		return nil
	}
	var err error
	if unlock {
		db.mu.Unlock()
		err = build()
		db.mu.Lock()
	} else {
		err = build()
	}
	if err != nil {
		return err
	}
	db.m.bytesWritten.Add(meta.Size)

	level := 0
	if entries > 0 {
		level = db.pickLevelForMemTableOutput(meta.SmallestUser(), meta.LargestUser())
	}
	edit := &version.VersionEdit{}
	edit.SetLogNumber(logNumber)
	edit.AddFile(level, meta)
	if err := db.logAndApply(bg, edit); err != nil {
		return err
	}
	if db.opts.AsyncCompaction {
		db.deleteObsoleteAsync(bg)
	} else {
		db.deleteObsoleteFiles(bg)
	}
	db.minorDoneAt = bg.Now()
	// The rotation wait this horizon implies is known now — publish it
	// so the governor paces writers toward it instead of letting them
	// slam into one large memtable_full stall.
	db.governor.SetFlushHorizon(db.minorDoneAt)
	db.m.minorDur.Observe(bg.Now().Sub(start))
	if db.trace != nil {
		db.trace.Span(db.tidFor(bg), "compaction", "compaction.minor", start, bg.Now(),
			obs.KV{K: "output", V: num},
			obs.KV{K: "level", V: level},
			obs.KV{K: "bytes", V: meta.Size})
	}
	// The flush may have tipped a level over its capacity.
	db.maybeScheduleCompaction(bg, unlock)
	return nil
}

// tidFor maps a background timeline to its logical trace thread id.
func (db *DB) tidFor(bg *vclock.Timeline) int {
	for i, tl := range db.bg {
		if tl == bg {
			return obs.TidBackgroundBase + i
		}
	}
	return obs.TidBackgroundBase
}

// pickLevelForMemTableOutput pushes a fresh table past L0 when it
// overlaps nothing there, up to level 2, as LevelDB does to reduce
// L0→L1 churn.
func (db *DB) pickLevelForMemTableOutput(smallest, largest []byte) int {
	const maxMemCompactLevel = 2
	level := 0
	if len(db.current.Overlapping(0, smallest, largest)) == 0 {
		for ; level < maxMemCompactLevel; level++ {
			if len(db.current.Overlapping(level+1, smallest, largest)) > 0 {
				break
			}
			// Avoid creating a file whose eventual compaction with
			// level+2 would be huge.
			var overlap int64
			for _, f := range db.current.Overlapping(level+2, smallest, largest) {
				overlap += f.Size
			}
			if overlap > 10*db.opts.TableFileSize {
				break
			}
		}
	}
	return level
}

// maybeScheduleCompaction runs size- and seek-triggered major
// compactions until no level is over pressure. Each runs eagerly on
// the least-busy background timeline.
//
// In async mode a caller that is not already the background worker
// (unlock=false) only kicks the worker, which picks the work up; the
// worker itself (unlock=true) runs the compactions inline with the
// merge loops unlocked.
func (db *DB) maybeScheduleCompaction(tl *vclock.Timeline, unlock bool) {
	if db.opts.AsyncCompaction && !unlock {
		db.startBgWork()
		return
	}
	failures := 0
	for {
		if db.opts.AsyncCompaction && unlock && db.imm != nil {
			// A fresh immutable memtable parked while majors were
			// running (or is still parked during a flush's trailing
			// call). Flushing is the priority — writers stall on the
			// immutable slot — so yield; the worker loop re-enters the
			// majors once the flush lands.
			return
		}
		var c *version.Compaction
		if db.fileToCompact != nil {
			// The seek-exhausted file may have been compacted away
			// since it was recorded.
			stillLive := false
			for _, f := range db.current.Files[db.fileToCompactLevel] {
				if f == db.fileToCompact {
					stillLive = true
					break
				}
			}
			if stillLive {
				c = version.SeekCompaction(db.current, db.fileToCompactLevel, db.fileToCompact, &db.pointers, db.opts.Picker)
				db.m.seek.Inc()
			}
			db.fileToCompact = nil
		}
		if c.Empty() {
			if db.governor != nil && db.leveledL0Count() >= db.opts.L0SlowdownTrigger {
				// Governed scheduling: once L0 crosses the slowdown
				// trigger, L0→L1 preempts wider deeper-level majors —
				// flush (the imm check above) > L0→L1 > deeper levels —
				// because foreground pacing is keyed to L0 debt and
				// only L0 drain lowers it.
				var preempted bool
				c, preempted = version.PickCompactionL0First(db.current, &db.pointers, db.opts.Picker)
				if preempted {
					db.governor.NotePreempt()
				}
			} else {
				c = version.PickCompaction(db.current, &db.pointers, db.opts.Picker)
			}
		}
		if c.Empty() {
			return
		}
		bg := db.pickBg()
		bg.WaitUntil(tl.Now())
		if err := db.doCompaction(bg, c, unlock); err != nil {
			var te *tableError
			if errors.Is(err, sstable.ErrCorrupt) && errors.As(err, &te) &&
				db.healTableLocked(bg, te.num) {
				// A corrupt input was rolled back onto its retained
				// shadow predecessors; re-pick against the repaired
				// version and redo the work.
				failures = 0
				continue
			}
			failures++
			if db.bgPermanent != nil || !vfs.IsTransient(err) || failures > bgMaxRetries {
				db.setPermanentLocked(bg, fmt.Errorf("engine: compaction: %w", err))
				return
			}
			// Transient injected fault: back off and re-pick. Any
			// orphaned partial outputs are reclaimed by the ordinary
			// obsolete-file scan.
			db.noteTransientLocked(bg, failures-1)
			continue
		}
		failures = 0
	}
}

// doCompaction merges the inputs of c into new tables at level+1
// (level for hot outputs in L2SM mode), applies the edit, and disposes
// of the old tables per the sync policy.
//
// unlock (async mode, background worker only) releases db.mu around
// the merge loop. That is safe because version edits are serialized:
// while the worker is active, writers never compact, the reader seek
// path only records fileToCompact, and CompactRange waits for the
// worker to park. db.current can therefore be read without mu inside
// the merge (isBaseLevelForKey) — no other goroutine can install a
// version meanwhile.
func (db *DB) doCompaction(bg *vclock.Timeline, c *version.Compaction, unlock bool) error {
	if c.IsTrivialMove() {
		db.m.trivial.Inc()
		f := c.Inputs[0][0]
		edit := &version.VersionEdit{}
		edit.DeleteFile(c.Level, f.Number)
		edit.AddFile(c.Level+1, f)
		if db.trace != nil {
			db.trace.Instant(db.tidFor(bg), "compaction", "compaction.trivial_move", bg.Now(),
				obs.KV{K: "file", V: f.Number},
				obs.KV{K: "from_level", V: c.Level},
				obs.KV{K: "bytes", V: f.Size})
		}
		return db.logAndApply(bg, edit)
	}
	db.m.major.Inc()
	start := bg.Now()
	var bytesIn int64
	// The hot-retention sketch is updated by writers without extra
	// synchronization, so L2SM-style stores keep the merge locked.
	unlock = unlock && db.hot == nil

	out := &compactionOutput{db: db, bg: bg, targetLevel: c.Level + 1}
	hotOut := &compactionOutput{db: db, bg: bg, targetLevel: c.Level, hot: true}
	// Hot retention is one-generation: once a hot-retained file is
	// itself compacted, its keys move down. This guarantees progress
	// (no compaction can leave a level's size unchanged forever).
	allowHot := db.hot != nil
	for _, fm := range c.Inputs[0] {
		if fm.Hot {
			allowHot = false
			break
		}
	}
	// Only keys within the Inputs[0] range may be hot-retained:
	// entries outside it necessarily came from the deeper input
	// level, and promoting them up would overlap neighbouring files
	// at this level and invert version recency.
	var in0Lo, in0Hi []byte
	for _, fm := range c.Inputs[0] {
		if in0Lo == nil || keys.CompareUser(fm.SmallestUser(), in0Lo) < 0 {
			in0Lo = fm.SmallestUser()
		}
		if in0Hi == nil || keys.CompareUser(fm.LargestUser(), in0Hi) > 0 {
			in0Hi = fm.LargestUser()
		}
	}

	// LevelDB's version-retention rule: within one user key (versions
	// arrive newest first), an entry is dropped if a newer entry is
	// already visible at the oldest live snapshot; tombstones at or
	// below the oldest snapshot are dropped when no deeper level can
	// hold the key.
	smallestSnapshot := db.smallestSnapshotLocked()

	// Parallel key-range subcompactions (async worker only; see
	// subcompaction.go). BoLT is excluded: it defines a compaction's
	// output as ONE factual SSTable, which cannot be sharded. The
	// default synchronous engine never reaches this branch, keeping
	// the virtual-time figures bit-for-bit reproducible.
	if unlock && db.opts.CompactionSubcompactions > 1 && db.opts.SyncMode != SyncBoLT {
		if boundaries := c.SubcompactionBoundaries(db.opts.CompactionSubcompactions); len(boundaries) > 0 {
			for _, fm := range c.AllInputs() {
				db.m.bytesRead.Add(fm.Size)
				bytesIn += fm.Size
			}
			db.mu.Unlock()
			outputs, err := db.runSubcompactions(bg, c, boundaries, smallestSnapshot)
			db.mu.Lock()
			if err != nil {
				return err
			}
			if db.testBeforeInstall != nil {
				nums := make([]uint64, 0, len(outputs))
				for _, of := range outputs {
					nums = append(nums, of.meta.Number)
				}
				db.testBeforeInstall(nums)
			}
			return db.installCompaction(bg, c, outputs, start, bytesIn)
		}
	}

	merge := func() error {
		var children []iterator.Iterator
		for _, fm := range c.AllInputs() {
			r, err := db.tcache.open(bg, fm)
			if err != nil {
				return err
			}
			if db.opts.AsyncCompaction {
				// Real-time mode: scan without cache insertion
				// (LevelDB's fill_cache=false) — inputs are deleted
				// right after the merge, so filling only evicts the
				// read path's working set. The synchronous engine keeps
				// the historical fill behaviour so the virtual-time
				// figures stay bit-for-bit reproducible.
				children = append(children, taggedIter{r.NewCompactionIterator(bg), fm.Number})
			} else {
				children = append(children, taggedIter{r.NewIterator(bg), fm.Number})
			}
			db.m.bytesRead.Add(fm.Size)
			bytesIn += fm.Size
		}
		merged := iterator.NewMerging(children...)
		ds := newDropState(smallestSnapshot)
		for merged.First(); merged.Valid(); merged.Next() {
			bg.Advance(db.opts.CompactionCPU)
			ikey := merged.Key()
			ukey, seq, kind, ok := keys.ParseInternalKey(ikey)
			if !ok {
				continue
			}
			if ds.drop(db, c.Level+1, ukey, seq, kind) {
				continue
			}
			dst := out
			if allowHot &&
				keys.CompareUser(ukey, in0Lo) >= 0 && keys.CompareUser(ukey, in0Hi) <= 0 &&
				db.hot.hot(ukey, db.opts.HotThreshold) {
				// L2SM-style: frequently updated keys stay in the hot
				// zone at the input level instead of being pushed down
				// and rewritten.
				dst = hotOut
			}
			if err := dst.add(ikey, merged.Value()); err != nil {
				return err
			}
		}
		if err := merged.Err(); err != nil {
			return err
		}
		if err := out.finish(); err != nil {
			return err
		}
		if err := hotOut.finish(); err != nil {
			return err
		}
		return nil
	}
	var err error
	if unlock {
		db.mu.Unlock()
		err = merge()
		db.mu.Lock()
	} else {
		err = merge()
	}
	if err != nil {
		return err
	}

	outputs := append(append([]*outputFile(nil), out.files...), hotOut.files...)
	return db.installCompaction(bg, c, outputs, start, bytesIn)
}

// installCompaction finalizes a merged (non-trivial) compaction's
// outputs and installs them: durability policy, ONE version edit
// covering every input deletion and every output across all shards,
// one tracker registration with the complete p→q set, then obsolete-
// file disposal. The single edit is what makes sharded compactions
// crash-atomic — recovery either sees the whole successor set or none
// of it, never a partial one.
func (db *DB) installCompaction(bg *vclock.Timeline, c *version.Compaction, outputs []*outputFile, start vclock.Time, bytesIn int64) error {
	// Durability policy for the new tables. SyncAll already fsynced
	// each output as it was cut (LevelDB's FinishCompactionOutputFile
	// behaviour); BoLT bundles the compaction's KV pairs into one
	// large factual SSTable and syncs it once here; NobLSM and the
	// volatile mode issue no sync — non-blocking writes.
	if db.opts.SyncMode == SyncBoLT {
		for _, of := range outputs {
			if err := of.f.Sync(bg); err != nil {
				return err
			}
		}
	}
	for _, of := range outputs {
		of.f.Close(bg)
	}

	edit := &version.VersionEdit{}
	for _, fm := range c.Inputs[0] {
		edit.DeleteFile(c.Level, fm.Number)
	}
	for _, fm := range c.Inputs[1] {
		edit.DeleteFile(c.Level+1, fm.Number)
	}
	var bytesOut int64
	for _, of := range outputs {
		edit.AddFile(of.level, of.meta)
		bytesOut += of.meta.Size
		if of.hot {
			db.m.hotBytesRetained.Add(of.meta.Size)
		}
	}
	if err := db.logAndApply(bg, edit); err != nil {
		return err
	}

	if db.tracker != nil {
		// NobLSM: register the p→q dependency. The old tables become
		// shadow backups — out of the version (so they serve no
		// reads), protected from GC until every successor's inode
		// commits.
		preds := make([]core.FileInfo, 0, len(c.Inputs[0])+len(c.Inputs[1]))
		for _, fm := range c.AllInputs() {
			preds = append(preds, core.FileInfo{Number: fm.Number, Name: TableName(fm.Number)})
		}
		succs := make([]core.Succ, 0, len(outputs))
		for _, of := range outputs {
			succs = append(succs, core.Succ{Number: of.meta.Number, Ino: of.meta.Ino})
		}
		db.tracker.RegisterWithManifest(bg, preds, succs,
			db.manifestFile.Ino(), db.manifestFile.Size())
		// While the tracker retains the shadow predecessors, a corrupt
		// successor can be rolled back onto them (heal.go).
		db.recordRepairPlan(c, outputs)
	}
	if db.opts.AsyncCompaction {
		db.noteObsoleteTables(c.AllInputs())
		db.deleteObsoleteAsync(bg)
	} else {
		db.deleteObsoleteFiles(bg)
	}
	dur := bg.Now().Sub(start)
	db.m.majorDur.Observe(dur)
	db.m.majorDurUs.Observe(int64(dur / vclock.Microsecond))
	if db.trace != nil {
		outNums := make([]uint64, 0, len(outputs))
		for _, of := range outputs {
			outNums = append(outNums, of.meta.Number)
		}
		db.trace.Span(db.tidFor(bg), "compaction", "compaction.major", start, bg.Now(),
			obs.KV{K: "level", V: c.Level},
			obs.KV{K: "inputs", V: len(c.AllInputs())},
			obs.KV{K: "bytes_in", V: bytesIn},
			obs.KV{K: "bytes_out", V: bytesOut},
			obs.KV{K: "outputs", V: outNums})
	}
	return nil
}

// isBaseLevelForKey reports whether no level below `below` could hold
// ukey, so tombstones may be dropped.
func (db *DB) isBaseLevelForKey(below int, ukey []byte) bool {
	for level := below + 1; level < version.NumLevels; level++ {
		for _, f := range db.current.Files[level] {
			if !f.AfterFile(ukey) && !f.BeforeFile(ukey) {
				return false
			}
		}
	}
	return true
}

// outputFile is one finished compaction output.
type outputFile struct {
	f     vfs.File
	meta  *version.FileMeta
	level int
	hot   bool
}

// compactionOutput streams merged entries into size-cut tables.
type compactionOutput struct {
	db          *DB
	bg          *vclock.Timeline
	targetLevel int
	hot         bool
	// create overrides output-file creation (the sharded pipeline
	// interposes its write stage here); nil means db.fs.Create.
	create func(tl *vclock.Timeline, name string) (vfs.File, error)

	cur        vfs.File
	curB       *sstable.Builder
	curN       uint64
	files      []*outputFile
	pendingCut bool
	lastUkey   []byte
	// scratch is lazily created and reused across every table this
	// output cuts; each output (and so each subcompaction shard) owns
	// its own, keeping the buffers single-goroutine.
	scratch sstable.BuildScratch
}

func (o *compactionOutput) add(ikey, value []byte) error {
	ukey := keys.UserKey(ikey)
	// A user key must never straddle two output files of one level:
	// the newest visible version could land in the second file while
	// sorted-level lookups only probe the first (LevelDB's boundary-
	// files hazard). Cuts therefore wait for the next user key.
	if o.pendingCut && (o.lastUkey == nil || keys.CompareUser(ukey, o.lastUkey) != 0) {
		if err := o.cut(); err != nil {
			return err
		}
	}
	if o.curB == nil {
		o.curN = o.db.newFileNumber()
		create := o.create
		if create == nil {
			create = o.db.fs.Create
		}
		f, err := create(o.bg, TableName(o.curN))
		if err != nil {
			return err
		}
		o.cur = f
		o.curB = sstable.NewBuilder(f, o.db.buildOptions(o.targetLevel, &o.scratch))
	}
	if err := o.curB.Add(o.bg, ikey, value); err != nil {
		return err
	}
	o.lastUkey = append(o.lastUkey[:0], ukey...)
	// BoLT emits one large factual SSTable per compaction: no cut.
	if o.db.opts.SyncMode != SyncBoLT && o.curB.FileSize() >= o.db.opts.TableFileSize {
		o.pendingCut = true
	}
	return nil
}

func (o *compactionOutput) cut() error {
	if o.curB == nil || o.curB.Entries() == 0 {
		return nil
	}
	if err := o.curB.Finish(o.bg); err != nil {
		return err
	}
	meta := &version.FileMeta{
		Number:   o.curN,
		Size:     o.curB.FileSize(),
		Smallest: append([]byte(nil), o.curB.Smallest()...),
		Largest:  append([]byte(nil), o.curB.Largest()...),
		Ino:      o.cur.Ino(),
	}
	meta.Hot = o.hot
	o.db.m.bytesWritten.Add(meta.Size)
	if o.db.opts.SyncMode == SyncAll && !o.hot {
		// LevelDB fsyncs each compaction output as it is finished,
		// before starting the next one. Hot-zone outputs (the L2SM
		// model) are log-assisted and skip the fsync, like the
		// write-ahead log they stand in for.
		if err := o.cur.Sync(o.bg); err != nil {
			return err
		}
	}
	o.files = append(o.files, &outputFile{f: o.cur, meta: meta, level: o.targetLevel, hot: o.hot})
	o.cur, o.curB = nil, nil
	o.pendingCut = false
	return nil
}

func (o *compactionOutput) finish() error { return o.cut() }
