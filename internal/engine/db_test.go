package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"noblsm/internal/ext4"
	"noblsm/internal/keys"
	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
)

// smallOpts shrinks buffers so compactions trigger quickly in tests.
func smallOpts(mode SyncMode) Options {
	o := DefaultOptions()
	o.SyncMode = mode
	o.WriteBufferSize = 32 << 10
	o.TableFileSize = 16 << 10
	o.Picker.BaseLevelBytes = 64 << 10
	o.Picker.LevelMultiplier = 4
	// Tests run sub-second virtual workloads; scale the commit/poll
	// cadence with them, as the experiment harness does.
	o.PollInterval = 50 * vclock.Millisecond
	return o
}

// smallFSConfig matches smallOpts' scaled journal cadence.
func smallFSConfig() ext4.Config {
	cfg := ext4.DefaultConfig()
	cfg.CommitInterval = 50 * vclock.Millisecond
	return cfg
}

// smallDevice scales the fixed device latencies with the tests' tiny
// tables and compressed commit cadence, as the experiment harness
// does — an unscaled flush barrier would exceed the commit interval
// itself.
func smallDevice() *ssd.Device {
	cfg := ssd.PM883()
	cfg.ReadLatency = 500 * vclock.Nanosecond
	cfg.WriteLatency = 400 * vclock.Nanosecond
	cfg.FlushLatency = 6 * vclock.Microsecond
	return ssd.New(cfg)
}

func newDB(t *testing.T, mode SyncMode) (*DB, *ext4.FS, *vclock.Timeline) {
	t.Helper()
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, smallOpts(mode))
	if err != nil {
		t.Fatal(err)
	}
	return db, fs, tl
}

func mustPut(t *testing.T, db *DB, tl *vclock.Timeline, k, v string) {
	t.Helper()
	if err := db.Put(tl, []byte(k), []byte(v)); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetDelete(t *testing.T) {
	db, _, tl := newDB(t, SyncAll)
	mustPut(t, db, tl, "apple", "red")
	v, err := db.Get(tl, []byte("apple"))
	if err != nil || string(v) != "red" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := db.Get(tl, []byte("missing")); err != ErrNotFound {
		t.Fatalf("missing key: %v", err)
	}
	if err := db.Delete(tl, []byte("apple")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(tl, []byte("apple")); err != ErrNotFound {
		t.Fatalf("deleted key: %v", err)
	}
}

func TestOverwriteReturnsNewest(t *testing.T) {
	db, _, tl := newDB(t, SyncAll)
	for i := 0; i < 5; i++ {
		mustPut(t, db, tl, "k", fmt.Sprintf("v%d", i))
	}
	v, err := db.Get(tl, []byte("k"))
	if err != nil || string(v) != "v4" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

func TestBatchAtomicVisibility(t *testing.T) {
	db, _, tl := newDB(t, SyncAll)
	var b Batch
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("a"))
	if err := db.Write(tl, &b); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(tl, []byte("a")); err != ErrNotFound {
		t.Fatal("delete inside batch not applied last")
	}
	if v, _ := db.Get(tl, []byte("b")); string(v) != "2" {
		t.Fatal("batch put lost")
	}
}

// workload writes n keys (16-byte formatted) in shuffled order — so
// memtable ranges overlap and compactions really merge — with
// deterministic values derived from the key and round.
func workload(t testing.TB, db *DB, tl *vclock.Timeline, n, round int) {
	t.Helper()
	order := rand.New(rand.NewSource(int64(round + 1))).Perm(n)
	for _, i := range order {
		k := fmt.Sprintf("key%013d", i)
		v := fmt.Sprintf("value-%d-%d-%s", round, i, string(bytes.Repeat([]byte("x"), 100)))
		if err := db.Put(tl, []byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
}

func verifyWorkload(t testing.TB, db *DB, tl *vclock.Timeline, n, round int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%013d", i)
		want := fmt.Sprintf("value-%d-%d-%s", round, i, string(bytes.Repeat([]byte("x"), 100)))
		v, err := db.Get(tl, []byte(k))
		if err != nil {
			t.Fatalf("key %s: %v", k, err)
		}
		if string(v) != want {
			t.Fatalf("key %s: got %d bytes, want %d", k, len(v), len(want))
		}
	}
}

func TestCompactionPreservesAllData(t *testing.T) {
	for _, mode := range []SyncMode{SyncAll, SyncNone, SyncNobLSM, SyncBoLT} {
		t.Run(mode.String(), func(t *testing.T) {
			db, _, tl := newDB(t, mode)
			const n = 3000
			workload(t, db, tl, n, 0)
			if db.Stats().MinorCompactions == 0 {
				t.Fatal("no minor compactions happened; test is too small")
			}
			if db.Stats().MajorCompactions == 0 && db.Stats().TrivialMoves == 0 {
				t.Fatal("no major compactions happened; test is too small")
			}
			verifyWorkload(t, db, tl, n, 0)
		})
	}
}

func TestOverwriteAcrossCompactions(t *testing.T) {
	db, _, tl := newDB(t, SyncNobLSM)
	const n = 1500
	workload(t, db, tl, n, 0)
	workload(t, db, tl, n, 1)
	verifyWorkload(t, db, tl, n, 1)
}

func TestDeleteAcrossCompactions(t *testing.T) {
	db, _, tl := newDB(t, SyncAll)
	const n = 1200
	workload(t, db, tl, n, 0)
	for i := 0; i < n; i += 2 {
		if err := db.Delete(tl, []byte(fmt.Sprintf("key%013d", i))); err != nil {
			t.Fatal(err)
		}
	}
	workload(t, db, tl, n/4, 1) // churn to force more compactions
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%013d", i))
		_, err := db.Get(tl, k)
		if i%2 == 0 && i >= n/4 {
			if err != ErrNotFound {
				t.Fatalf("deleted key %s resurfaced: %v", k, err)
			}
		} else if err != nil {
			t.Fatalf("key %s lost: %v", k, err)
		}
	}
}

func TestIteratorScansAllLiveKeys(t *testing.T) {
	db, _, tl := newDB(t, SyncNobLSM)
	const n = 2000
	workload(t, db, tl, n, 0)
	for i := 0; i < n; i += 3 {
		db.Delete(tl, []byte(fmt.Sprintf("key%013d", i)))
	}
	it, err := db.NewIterator(tl)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	var prev []byte
	for it.First(); it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatalf("iterator out of order: %q then %q", prev, it.Key())
		}
		prev = append(prev[:0], it.Key()...)
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	want := n - (n+2)/3
	if count != want {
		t.Fatalf("iterated %d keys, want %d", count, want)
	}
}

func TestIteratorSeek(t *testing.T) {
	db, _, tl := newDB(t, SyncAll)
	workload(t, db, tl, 500, 0)
	it, err := db.NewIterator(tl)
	if err != nil {
		t.Fatal(err)
	}
	it.Seek([]byte("key0000000000250"))
	if !it.Valid() || string(it.Key()) != "key0000000000250" {
		t.Fatalf("seek landed on %q", it.Key())
	}
	it.Seek([]byte("zzz"))
	if it.Valid() {
		t.Fatal("seek past end valid")
	}
}

func TestReopenPreservesData(t *testing.T) {
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, smallOpts(SyncAll))
	if err != nil {
		t.Fatal(err)
	}
	workload(t, db, tl, 1000, 0)
	if err := db.Close(tl); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(tl, fs, smallOpts(SyncAll))
	if err != nil {
		t.Fatal(err)
	}
	verifyWorkload(t, db2, tl, 1000, 0)
}

func TestSyncCountsByMode(t *testing.T) {
	// NobLSM must sync far less than stock LevelDB; the volatile mode
	// must not sync at all. This is the mechanism behind Table 1.
	counts := map[SyncMode]int64{}
	for _, mode := range []SyncMode{SyncAll, SyncNone, SyncNobLSM, SyncBoLT} {
		fs := ext4.New(smallFSConfig(), smallDevice())
		tl := vclock.NewTimeline(0)
		db, err := Open(tl, fs, smallOpts(mode))
		if err != nil {
			t.Fatal(err)
		}
		workload(t, db, tl, 3000, 0)
		counts[mode] = fs.Stats().Syncs
		if db.Stats().MajorCompactions == 0 {
			t.Fatalf("%v: no major compactions", mode)
		}
	}
	if counts[SyncNone] != 0 {
		t.Fatalf("volatile mode synced %d times", counts[SyncNone])
	}
	if counts[SyncNobLSM] >= counts[SyncAll] {
		t.Fatalf("NobLSM syncs (%d) not below LevelDB's (%d)", counts[SyncNobLSM], counts[SyncAll])
	}
	if counts[SyncBoLT] >= counts[SyncAll] {
		t.Fatalf("BoLT syncs (%d) not below LevelDB's (%d)", counts[SyncBoLT], counts[SyncAll])
	}
	if counts[SyncNobLSM] >= counts[SyncBoLT] {
		t.Fatalf("NobLSM syncs (%d) not below BoLT's (%d)", counts[SyncNobLSM], counts[SyncBoLT])
	}
}

func TestNobLSMRetainsShadowsUntilCommit(t *testing.T) {
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, smallOpts(SyncNobLSM))
	if err != nil {
		t.Fatal(err)
	}
	workload(t, db, tl, 2000, 0)
	if db.Tracker().PendingDeps() == 0 {
		t.Fatal("no pending dependencies despite major compactions")
	}
	// Cross a commit interval + poll interval: dependencies resolve
	// and shadow predecessors are reclaimed.
	tl.Advance(11 * vclock.Second)
	db.Put(tl, []byte("tick"), []byte("tock")) // drive MaybePoll
	tl.Advance(11 * vclock.Second)
	db.Put(tl, []byte("tick2"), []byte("tock2"))
	if got := db.Tracker().PendingDeps(); got != 0 {
		t.Fatalf("%d dependencies still pending after commits+polls (%v)", got, db.Tracker())
	}
	st := db.Tracker().Stats()
	if st.Resolved == 0 || st.PredsDeleted == 0 {
		t.Fatalf("tracker never reclaimed: %+v", st)
	}
}

func TestNobLSMShadowFilesInvisibleToReads(t *testing.T) {
	db, _, tl := newDB(t, SyncNobLSM)
	const n = 1500
	workload(t, db, tl, n, 0)
	workload(t, db, tl, n, 1) // overwrites: old values now only in shadow/obsolete tables
	verifyWorkload(t, db, tl, n, 1)
}

func TestCrashRecoveryKeepsSSTablesIntact(t *testing.T) {
	// The paper's consistency test: power off mid-fillrandom; after
	// recovery every key that reached an SSTable must be intact, only
	// unsynced WAL-tail keys may vanish.
	for _, mode := range []SyncMode{SyncAll, SyncNobLSM} {
		t.Run(mode.String(), func(t *testing.T) {
			// NobLSM's loss window is the journal commit interval;
			// scale it with this tiny run (~10 ms of virtual time) so
			// the crash lands tens of commit windows in, as the
			// paper's hours-long run does.
			cfg := smallFSConfig()
			cfg.CommitInterval = 500 * vclock.Microsecond
			opts := smallOpts(mode)
			opts.PollInterval = cfg.CommitInterval
			fs := ext4.New(cfg, smallDevice())
			tl := vclock.NewTimeline(0)
			db, err := Open(tl, fs, opts)
			if err != nil {
				t.Fatal(err)
			}
			const n = 2500
			workload(t, db, tl, n, 0)

			fs.Crash(tl.Now())

			db2, err := Open(tl, fs, opts)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			lost := 0
			for i := 0; i < n; i++ {
				k := []byte(fmt.Sprintf("key%013d", i))
				v, err := db2.Get(tl, k)
				if err == ErrNotFound {
					lost++
					continue
				}
				if err != nil {
					t.Fatalf("key %s: %v", k, err)
				}
				want := fmt.Sprintf("value-%d-%d-%s", 0, i, string(bytes.Repeat([]byte("x"), 100)))
				if string(v) != want {
					t.Fatalf("key %s corrupted after crash", k)
				}
			}
			// Only the unsynced tail (at most a couple of memtables'
			// worth) may be lost; synced SSTables must all survive.
			if lost > 2*int(smallOpts(mode).WriteBufferSize)/100 {
				t.Fatalf("%d/%d keys lost — more than the WAL-tail window", lost, n)
			}
		})
	}
}

func TestVolatileModeLosesDataOnCrash(t *testing.T) {
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, smallOpts(SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	const n = 2500
	workload(t, db, tl, n, 0)
	fs.Crash(tl.Now())
	// Without syncs, nothing forced the tables durable before the
	// first async commit; with the workload finishing well inside the
	// 5 s commit interval, recovery sees (almost) nothing — the
	// "volatile LevelDB" of Section 3.
	db2, err := Open(tl, fs, smallOpts(SyncNone))
	if err != nil {
		// An unopenable store is an acceptable volatile outcome too,
		// but our recovery handles the empty case gracefully.
		t.Fatalf("open after crash: %v", err)
	}
	lost := 0
	for i := 0; i < n; i++ {
		if _, err := db2.Get(tl, []byte(fmt.Sprintf("key%013d", i))); err == ErrNotFound {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("volatile mode lost nothing; sync modes would be pointless")
	}
}

func TestCrashDuringNobLSMDependencyWindow(t *testing.T) {
	// Crash while successors are uncommitted: recovery must land on
	// the predecessor state with every referenced table intact.
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, smallOpts(SyncNobLSM))
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	workload(t, db, tl, n, 0)
	if db.Tracker().PendingDeps() == 0 {
		t.Skip("no dependency window to crash into")
	}
	fs.Crash(tl.Now())
	db2, err := Open(tl, fs, smallOpts(SyncNobLSM))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	// Whatever survives must be uncorrupted.
	it, err := db2.NewIterator(tl)
	if err != nil {
		t.Fatal(err)
	}
	for it.First(); it.Valid(); it.Next() {
	}
	if err := it.Err(); err != nil {
		t.Fatalf("corruption after crash in dependency window: %v", err)
	}
}

func TestSeekCompactionTriggers(t *testing.T) {
	o := smallOpts(SyncAll)
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, o)
	if err != nil {
		t.Fatal(err)
	}
	workload(t, db, tl, 2000, 0)
	// Hammer Gets for absent keys that overlap many files: misses
	// charge allowed_seeks and eventually trigger a seek compaction.
	for i := 0; i < 300000 && db.Stats().SeekCompactions == 0; i++ {
		db.Get(tl, []byte(fmt.Sprintf("key%013d~", i%2000)))
	}
	if db.Stats().SeekCompactions == 0 {
		t.Skip("seek compaction not reached at this scale (structure too flat)")
	}
}

func TestParallelCompactionTimelines(t *testing.T) {
	o := smallOpts(SyncAll)
	o.ParallelCompactions = 4
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, o)
	if err != nil {
		t.Fatal(err)
	}
	workload(t, db, tl, 3000, 0)
	verifyWorkload(t, db, tl, 3000, 0)
	if len(db.bg) != 4 {
		t.Fatalf("expected 4 background timelines, got %d", len(db.bg))
	}
}

func TestFragmentedModePreservesData(t *testing.T) {
	o := smallOpts(SyncAll)
	o.Picker.Fragmented = true
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, o)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2500
	workload(t, db, tl, n, 0)
	workload(t, db, tl, n/2, 1)
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%013d", i))
		v, err := db.Get(tl, k)
		if err != nil {
			t.Fatalf("key %s: %v", k, err)
		}
		round := 0
		if i < n/2 {
			round = 1
		}
		want := fmt.Sprintf("value-%d-%d-%s", round, i, string(bytes.Repeat([]byte("x"), 100)))
		if string(v) != want {
			t.Fatalf("key %s wrong round", k)
		}
	}
}

func TestHotColdModePreservesData(t *testing.T) {
	o := smallOpts(SyncAll)
	o.HotCold = true
	o.HotThreshold = 2
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, o)
	if err != nil {
		t.Fatal(err)
	}
	// Hot keys: a small set updated many times; cold: the rest.
	rnd := rand.New(rand.NewSource(9))
	expect := map[string]string{}
	for i := 0; i < 20000; i++ {
		var k string
		if rnd.Intn(2) == 0 {
			k = fmt.Sprintf("hot%04d", rnd.Intn(50))
		} else {
			k = fmt.Sprintf("cold%08d", rnd.Intn(8000))
		}
		v := fmt.Sprintf("v%d-%s", i, string(bytes.Repeat([]byte("y"), 60)))
		if err := db.Put(tl, []byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		expect[k] = v
	}
	for k, want := range expect {
		v, err := db.Get(tl, []byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("key %s: %q, %v", k, v, err)
		}
	}
	if db.Stats().HotBytesRetained == 0 {
		t.Fatal("hot/cold separation never retained hot bytes")
	}
}

func TestWriteStallAccounting(t *testing.T) {
	db, _, tl := newDB(t, SyncAll)
	workload(t, db, tl, 4000, 0)
	st := db.Stats()
	if st.MinorCompactions == 0 {
		t.Fatal("no rotations")
	}
	// Sync-all mode with frequent rotations must record some stall.
	if st.RotationStall == 0 && st.SlowdownTime == 0 {
		t.Log("no stalls recorded — acceptable if background kept up, but suspicious")
	}
}

func TestNobLSMFasterThanSyncAll(t *testing.T) {
	// The headline claim at miniature scale: identical workload,
	// NobLSM's foreground finishes sooner in virtual time.
	times := map[SyncMode]vclock.Time{}
	for _, mode := range []SyncMode{SyncAll, SyncNobLSM, SyncNone} {
		fs := ext4.New(smallFSConfig(), smallDevice())
		tl := vclock.NewTimeline(0)
		db, err := Open(tl, fs, smallOpts(mode))
		if err != nil {
			t.Fatal(err)
		}
		workload(t, db, tl, 5000, 0)
		times[mode] = tl.Now()
	}
	// At this miniature scale the absolute gap shrinks (fixed costs
	// vanish with the scaled device); the magnitude of the win is
	// asserted at experiment scale in internal/harness. Here: NobLSM
	// must never be materially slower, and the volatile bound holds.
	if float64(times[SyncNobLSM]) > 1.05*float64(times[SyncAll]) {
		t.Fatalf("NobLSM (%v) materially slower than sync-all (%v)", times[SyncNobLSM], times[SyncAll])
	}
	if float64(times[SyncNone]) > 1.05*float64(times[SyncNobLSM]) {
		t.Fatalf("volatile (%v) slower than NobLSM (%v)?", times[SyncNone], times[SyncNobLSM])
	}
}

func TestClosedDBRejectsOps(t *testing.T) {
	db, _, tl := newDB(t, SyncAll)
	db.Close(tl)
	if err := db.Put(tl, []byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("Put after close: %v", err)
	}
	if _, err := db.Get(tl, []byte("k")); err != ErrClosed {
		t.Fatalf("Get after close: %v", err)
	}
	if _, err := db.NewIterator(tl); err != ErrClosed {
		t.Fatalf("NewIterator after close: %v", err)
	}
	if err := db.Close(tl); err != ErrClosed {
		t.Fatalf("double close: %v", err)
	}
}

func TestEmptyBatchIsNoop(t *testing.T) {
	db, _, tl := newDB(t, SyncAll)
	var b Batch
	if err := db.Write(tl, &b); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Puts != 0 {
		t.Fatal("empty batch counted")
	}
}

func TestLevelsFillDownward(t *testing.T) {
	db, _, tl := newDB(t, SyncAll)
	workload(t, db, tl, 6000, 0)
	v := db.Version()
	deep := 0
	for level := 1; level < version.NumLevels; level++ {
		deep += v.NumFiles(level)
	}
	if deep == 0 {
		t.Fatal("no files below L0 after a heavy workload")
	}
	if v.NumFiles(0) > smallOpts(SyncAll).L0StopTrigger {
		t.Fatalf("L0 overfull: %d files", v.NumFiles(0))
	}
}

func TestFileNamesRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		kind FileKind
		num  uint64
	}{
		{"000001.log", KindLog, 1},
		{"000042.ldb", KindTable, 42},
		{"MANIFEST-000007", KindManifest, 7},
		{"CURRENT", KindCurrent, 0},
	}
	for _, c := range cases {
		kind, num, ok := ParseFileName(c.name)
		if !ok || kind != c.kind || num != c.num {
			t.Errorf("ParseFileName(%q) = %v,%d,%v", c.name, kind, num, ok)
		}
	}
	for _, bad := range []string{"LOCK", "foo.txt", "x.log", "MANIFEST-x", ".ldb"} {
		if _, _, ok := ParseFileName(bad); ok && bad != ".ldb" {
			t.Errorf("ParseFileName(%q) accepted", bad)
		}
	}
	if LogName(3) != "000003.log" || TableName(10) != "000010.ldb" || ManifestName(2) != "MANIFEST-000002" {
		t.Error("name formatting wrong")
	}
}

func TestBatchEncodingRoundTrip(t *testing.T) {
	var b Batch
	b.Put([]byte("k1"), []byte("v1"))
	b.Delete([]byte("k2"))
	b.Put([]byte(""), []byte(""))
	b.setSeq(77)
	if b.Count() != 3 || b.Seq() != 77 {
		t.Fatalf("count=%d seq=%d", b.Count(), b.Seq())
	}
	d, err := decodeBatch(b.rep)
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		kind keys.Kind
		k, v string
	}
	var recs []rec
	err = d.forEach(func(kind keys.Kind, k, v []byte, idx uint32) error {
		recs = append(recs, rec{kind, string(k), string(v)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []rec{
		{keys.KindValue, "k1", "v1"},
		{keys.KindDelete, "k2", ""},
		{keys.KindValue, "", ""},
	}
	if len(recs) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
}

func TestBatchDecodeRejectsGarbage(t *testing.T) {
	if _, err := decodeBatch([]byte("short")); err == nil {
		t.Fatal("short batch decoded")
	}
	var b Batch
	b.Put([]byte("k"), []byte("v"))
	b.setSeq(1)
	bad := append([]byte(nil), b.rep...)
	bad = bad[:len(bad)-1] // truncate the value
	d, err := decodeBatch(bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.forEach(func(keys.Kind, []byte, []byte, uint32) error { return nil }); err == nil {
		t.Fatal("truncated batch iterated cleanly")
	}
}

func TestSeekChargeAtBottomLevelDoesNotPanic(t *testing.T) {
	// A file at the bottom level (L6) whose seek budget runs out has
	// nowhere to compact to; charging it must not schedule an
	// out-of-range compaction (regression: panic "index out of range
	// [7] with length 7" in version.Builder.Apply).
	db, _, tl := newDB(t, SyncAll)
	workload(t, db, tl, 800, 0)
	// Force everything to the bottom by compacting range repeatedly.
	if err := db.CompactRange(tl, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Plant the tree's deepest file as a seek victim.
	v := db.Version()
	var deepest *version.FileMeta
	level := -1
	for l := version.NumLevels - 1; l >= 0; l-- {
		if v.NumFiles(l) > 0 {
			deepest, level = v.Files[l][0], l
			break
		}
	}
	if deepest == nil {
		t.Skip("no files after compaction")
	}
	deepest.AllowedSeeks = 1
	// Hammer misses that examine multiple files to charge the seek
	// budget; with everything at one level this needs mem+file probes,
	// so write a shallow overlay first.
	workload(t, db, tl, 100, 1)
	for i := 0; i < 5000; i++ {
		db.Get(tl, []byte(fmt.Sprintf("key%013d~miss", i%800)))
	}
	_ = level
	verifyWorkload(t, db, tl, 100, 1) // still serving correctly
}
