// repair.go rebuilds a consistent store from whatever survives on
// disk when the MANIFEST is missing, truncated, or corrupt. It is the
// offline twin of the tracker's online decision: for every
// predecessor→successor compaction dependency recorded in the
// decodable manifest edits, prefer the successors when the complete
// set is intact on disk, and fall back to the retained shadow
// predecessors otherwise — exactly the choice NobLSM's non-blocking
// design keeps open by not deleting predecessors until their
// successors commit (paper §4.3).
package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"noblsm/internal/keys"
	"noblsm/internal/sstable"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
	"noblsm/internal/vfs"
	"noblsm/internal/wal"
)

// ErrNeedsRepair reports store damage that in-place recovery cannot
// absorb: a missing or unusable CURRENT/MANIFEST chain, or corruption
// in the manifest's interior. With RecoverSalvage (the default) Open
// handles it by running Repair automatically; with RecoverStrict the
// error surfaces, wrapped with detail, and the store is left as-is.
var ErrNeedsRepair = errors.New("engine: store needs repair")

// manifestState classifies the damage of a manifest image.
type manifestState int

const (
	manifestClean manifestState = iota
	// manifestTornTail: the image ends in a damaged or undecodable
	// record with nothing valid after it — the expected shape of an
	// unsynced append interrupted by a crash. The decoded prefix is
	// the whole durable history; in-place recovery keeps it.
	manifestTornTail
	// manifestInterior: damage followed by further valid records.
	// Truncating at the damage would drop committed history, and
	// decoding past it would apply edits with a hole before them, so
	// neither in-place strategy is sound — only Repair is.
	manifestInterior
)

func (s manifestState) String() string {
	switch s {
	case manifestClean:
		return "clean"
	case manifestTornTail:
		return "torn-tail"
	case manifestInterior:
		return "interior"
	}
	return fmt.Sprintf("manifestState(%d)", int(s))
}

// classifyManifest decodes the longest safe edit prefix of a manifest
// image — every record before the first damage or decode failure —
// and classifies the damage, distinguishing the torn tail a crash
// legitimately leaves from interior corruption.
func classifyManifest(data []byte) ([]*version.VersionEdit, manifestState) {
	hr := wal.NewReader(data)
	hr.HaltAtCorruption = true
	var edits []*version.VersionEdit
	recs := 0
	decodeFailed := false
	for {
		rec, ok := hr.Next()
		if !ok {
			break
		}
		recs++
		edit, err := version.DecodeEdit(rec)
		if err != nil {
			decodeFailed = true
			break
		}
		edits = append(edits, edit)
	}
	// Classification pass: only a full non-halting scan can tell
	// whether valid records follow the damage.
	full := wal.NewReader(data)
	total := 0
	for {
		if _, ok := full.Next(); !ok {
			break
		}
		total++
	}
	switch {
	case full.Err() != nil:
		// CRC-level damage with valid records after it.
		return edits, manifestInterior
	case decodeFailed && total > recs:
		// A record with a valid CRC but garbage encoding, followed by
		// further records: interior damage at the edit-encoding layer.
		return edits, manifestInterior
	case decodeFailed || hr.Halted() || hr.Dropped > 0:
		return edits, manifestTornTail
	default:
		return edits, manifestClean
	}
}

// RepairReport describes what Repair found and decided.
type RepairReport struct {
	// ManifestState is the damage taxonomy of the manifest Repair
	// read: "clean", "torn-tail", "interior", "missing" (no manifest
	// file at all) or "unreadable". EditsDecoded counts the manifest
	// records whose edits informed the dependency decisions.
	ManifestState string
	EditsDecoded  int

	// TablesScanned tables were fully iterated (every block CRC
	// checked). Kept survive into the rebuilt version; Quarantined
	// failed validation and were renamed out of the engine namespace
	// (<table>.corrupt); Superseded are intact predecessors excluded
	// because their compaction's complete successor set is intact
	// (the committed-successor preference); Condemned are successors
	// excluded because their install's successor set is incomplete —
	// a member is damaged or missing — AND every predecessor of the
	// install is still recoverable, so the shadow-predecessor fallback
	// genuinely serves in their place. When that fallback is gone (the
	// predecessors were deleted after the install committed), intact
	// successors are Kept instead: they are the only remaining copy of
	// their key ranges. A damaged successor can appear in both
	// Quarantined and Condemned.
	TablesScanned int
	Kept          []uint64
	Quarantined   []uint64
	Superseded    []uint64
	Condemned     []uint64

	// LogsRetained are the WALs left for the subsequent Open to
	// replay (all of them: the rebuilt manifest sets log number 0).
	LogsRetained []uint64

	// ManifestNumber is the rebuilt manifest's file number; NextFile
	// and LastSeq are the counters it records.
	ManifestNumber uint64
	NextFile       uint64
	LastSeq        uint64
}

// Repair rebuilds a consistent MANIFEST/CURRENT pair from the files
// on disk. Every table is fully validated (corrupt ones are
// quarantined as .corrupt), the decodable manifest edits resolve each
// predecessor/successor dependency — successors when the complete set
// is intact, shadow predecessors otherwise — and the surviving tables
// are installed at level 0 of a fresh snapshot manifest, where
// sequence numbers make overlap and staleness resolve correctly on
// read. All on-disk WALs are left in place and replayed by the next
// Open (the snapshot records log number 0); replay is idempotent
// against flushed data because batches carry their original sequence
// numbers.
//
// Repair is offline: it must not run concurrently with an open DB on
// the same filesystem.
func Repair(tl *vclock.Timeline, fs vfs.FS, opts Options) (*RepairReport, error) {
	opts = opts.sanitize()
	rep := &RepairReport{ManifestState: "missing"}

	var tables, logs, manifests []uint64
	maxNum := uint64(1)
	for _, name := range fs.List(tl) {
		kind, num, ok := ParseFileName(name)
		if !ok {
			continue
		}
		if num > maxNum {
			maxNum = num
		}
		switch kind {
		case KindTable:
			tables = append(tables, num)
		case KindLog:
			logs = append(logs, num)
		case KindManifest:
			manifests = append(manifests, num)
		}
	}
	sort.Slice(tables, func(i, j int) bool { return tables[i] < tables[j] })
	sort.Slice(logs, func(i, j int) bool { return logs[i] < logs[j] })
	rep.LogsRetained = logs

	// Best-effort manifest read: prefer the one CURRENT names, fall
	// back to the highest-numbered manifest present. Unlike recovery,
	// repair decodes every intact record — even past interior damage —
	// because each edit's predecessor/successor relation is
	// self-contained and more history only refines the decisions.
	manifestName := ""
	if data, err := fs.ReadFile(tl, CurrentName); err == nil {
		name := strings.TrimSpace(string(data))
		if kind, _, ok := ParseFileName(name); ok && kind == KindManifest && fs.Exists(tl, name) {
			manifestName = name
		}
	}
	if manifestName == "" && len(manifests) > 0 {
		manifestName = ManifestName(manifests[len(manifests)-1])
	}
	var edits []*version.VersionEdit
	if manifestName != "" {
		data, err := fs.ReadFile(tl, manifestName)
		if err != nil {
			rep.ManifestState = "unreadable"
		} else {
			_, state := classifyManifest(data)
			rep.ManifestState = state.String()
			r := wal.NewReader(data)
			for {
				rec, ok := r.Next()
				if !ok {
					break
				}
				if edit, err := version.DecodeEdit(rec); err == nil {
					edits = append(edits, edit)
				}
			}
		}
	}
	rep.EditsDecoded = len(edits)

	// Validate every table end to end: open it, iterate every entry
	// (each block read checks its CRC), and record its key range,
	// highest sequence number, and inode. Damage quarantines the file
	// outside the engine namespace, like the online heal path.
	topts := sstable.Options{BlockSize: opts.BlockSize, RestartInterval: 16,
		BloomBitsPerKey: opts.BloomBitsPerKey}
	valid := make(map[uint64]*version.FileMeta, len(tables))
	var lastSeq keys.SeqNum
	for _, num := range tables {
		rep.TablesScanned++
		meta, maxSeq, err := scanTable(tl, fs, topts, num)
		if err != nil {
			rep.Quarantined = append(rep.Quarantined, num)
			if rerr := fs.Rename(tl, TableName(num), TableName(num)+".corrupt"); rerr != nil {
				return nil, fmt.Errorf("engine: repair: quarantining %06d: %w", num, rerr)
			}
			continue
		}
		if meta == nil {
			continue // empty table: nothing to reference
		}
		valid[num] = meta
		if maxSeq > lastSeq {
			lastSeq = maxSeq
		}
	}

	// Resolve each recorded install's dependency, oldest edit first.
	// An edit whose complete successor set is intact supersedes the
	// predecessors it deleted. A damaged or missing successor condemns
	// the whole set — shadow predecessors serve instead — but ONLY
	// when that fallback actually exists, i.e. every predecessor's
	// content is still recoverable: the predecessor is on disk and
	// intact, or it was itself condemned — and condemnation is granted
	// only under this same coverage rule, so a condemned predecessor's
	// own fallback covers it transitively. Two cases therefore never
	// condemn. A flush or trivial move has no non-self predecessors at
	// all, so its output going missing is just the normal lifecycle (a
	// later compaction consumed it) and proves nothing; without this
	// exclusion every consumed table would be vacuously "condemned"
	// and poison the coverage check for every later edit. And a
	// compaction whose predecessors are simply gone — the install
	// committed long ago and the poller deleted them — leaves its
	// surviving successors as the only copy of their key ranges: they
	// are kept, and only the damaged member's range is lost.
	superseded := make(map[uint64]bool)
	condemned := make(map[uint64]bool)
	for _, e := range edits {
		if len(e.NewFiles) == 0 {
			continue
		}
		newSet := make(map[uint64]bool, len(e.NewFiles))
		allIntact := true
		for _, nf := range e.NewFiles {
			newSet[nf.Meta.Number] = true
			if valid[nf.Meta.Number] == nil || condemned[nf.Meta.Number] {
				allIntact = false
			}
		}
		// Non-self predecessors: a trivial move deletes and re-adds
		// the same number, which is no dependency at all.
		var preds []uint64
		for _, df := range e.DeletedFiles {
			if !newSet[df.Number] {
				preds = append(preds, df.Number)
			}
		}
		if allIntact {
			for _, p := range preds {
				superseded[p] = true
			}
			continue
		}
		if len(preds) == 0 {
			continue // flush/trivial move: no fallback exists or is needed
		}
		covered := true
		for _, p := range preds {
			if valid[p] == nil && !condemned[p] {
				covered = false
				break
			}
		}
		if covered {
			for num := range newSet {
				condemned[num] = true
			}
		}
	}
	// Report only condemnations of files actually on disk (valid or
	// quarantined): an edit whose successors were long since consumed
	// by later compactions condemns nothing that still exists.
	for _, num := range tables {
		if condemned[num] {
			rep.Condemned = append(rep.Condemned, num)
		}
	}

	snap := &version.VersionEdit{}
	// Log number 0: the next Open replays every WAL on disk. Replay
	// over already-flushed data is harmless (original sequence
	// numbers resolve staleness); skipping a log that was gated on a
	// lost manifest edit would not be.
	snap.SetLogNumber(0)
	rep.ManifestNumber = maxNum + 1
	rep.NextFile = maxNum + 2
	snap.SetNextFileNumber(rep.NextFile)
	snap.SetLastSeq(lastSeq)
	rep.LastSeq = uint64(lastSeq)
	for _, num := range tables {
		meta := valid[num]
		switch {
		case meta == nil:
			// quarantined or empty; already reported
		case superseded[num]:
			rep.Superseded = append(rep.Superseded, num)
		case condemned[num]:
			// Already reported above, with its damaged siblings.
		default:
			rep.Kept = append(rep.Kept, num)
			// Level 0: overlap is legal there and per-key sequence
			// numbers pick the newest version, so a flat rebuild is
			// read-correct regardless of what levels the files
			// occupied before; the first compactions re-form the
			// pyramid.
			snap.AddFile(0, meta)
		}
	}

	mf, err := fs.Create(tl, ManifestName(rep.ManifestNumber))
	if err != nil {
		return nil, err
	}
	w := wal.NewWriter(mf)
	if err := w.AddRecord(tl, snap.Encode()); err != nil {
		mf.Close(tl)
		return nil, err
	}
	if err := mf.Sync(tl); err != nil {
		mf.Close(tl)
		return nil, err
	}
	mf.Close(tl)
	if err := fs.WriteFile(tl, CurrentName, []byte(ManifestName(rep.ManifestNumber)+"\n")); err != nil {
		return nil, err
	}
	if err := fs.SyncDir(tl); err != nil {
		return nil, err
	}
	// Retire older manifests out of the engine namespace but keep the
	// bytes for forensics — interior corruption is evidence of a bug
	// or failing media, not something to delete.
	for _, num := range manifests {
		if num != rep.ManifestNumber {
			fs.Rename(tl, ManifestName(num), ManifestName(num)+".pre-repair")
		}
	}
	return rep, nil
}

// scanTable fully validates one table and extracts the metadata the
// rebuilt version needs. A nil meta with nil error means the table is
// empty. The returned maxSeq is the highest sequence number of any
// entry, which bounds the store's LastSeq from below.
func scanTable(tl *vclock.Timeline, fs vfs.FS, topts sstable.Options, num uint64) (*version.FileMeta, keys.SeqNum, error) {
	f, err := fs.Open(tl, TableName(num))
	if err != nil {
		return nil, 0, err
	}
	defer f.Close(tl)
	r, err := sstable.Open(tl, f, topts, num, nil)
	if err != nil {
		return nil, 0, err
	}
	it := r.NewIterator(tl)
	var smallest, largest []byte
	var maxSeq keys.SeqNum
	n := 0
	for it.First(); it.Valid(); it.Next() {
		if n == 0 {
			smallest = append(smallest, it.Key()...)
		}
		largest = append(largest[:0], it.Key()...)
		if _, seq, _, ok := keys.ParseInternalKey(it.Key()); ok {
			if seq > maxSeq {
				maxSeq = seq
			}
		} else {
			return nil, 0, fmt.Errorf("%w: unparseable internal key", sstable.ErrCorrupt)
		}
		n++
	}
	if err := it.Err(); err != nil {
		return nil, 0, err
	}
	if n == 0 {
		return nil, 0, nil
	}
	return &version.FileMeta{
		Number:   num,
		Size:     f.Size(),
		Smallest: smallest,
		Largest:  largest,
		Ino:      f.Ino(),
	}, maxSeq, nil
}
