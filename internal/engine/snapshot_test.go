package engine

import (
	"bytes"
	"fmt"
	"testing"
)

func TestSnapshotPinsView(t *testing.T) {
	db, _, tl := newDB(t, SyncAll)
	mustPut(t, db, tl, "k", "v1")
	snap := db.GetSnapshot()
	mustPut(t, db, tl, "k", "v2")
	mustPut(t, db, tl, "k2", "new")

	if v, err := db.GetAt(tl, []byte("k"), snap); err != nil || string(v) != "v1" {
		t.Fatalf("snapshot read = %q, %v", v, err)
	}
	if _, err := db.GetAt(tl, []byte("k2"), snap); err != ErrNotFound {
		t.Fatalf("snapshot saw a later insert: %v", err)
	}
	if v, _ := db.Get(tl, []byte("k")); string(v) != "v2" {
		t.Fatal("live read stale")
	}
	if err := db.ReleaseSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := db.ReleaseSnapshot(snap); err == nil {
		t.Fatal("double release succeeded")
	}
}

func TestSnapshotSurvivesCompactions(t *testing.T) {
	db, _, tl := newDB(t, SyncNobLSM)
	const n = 1200
	workload(t, db, tl, n, 0)
	snap := db.GetSnapshot()
	// Overwrite everything and churn compactions; the snapshot must
	// still see round 0.
	workload(t, db, tl, n, 1)
	workload(t, db, tl, n/2, 2)
	for i := 0; i < n; i += 7 {
		k := fmt.Sprintf("key%013d", i)
		want := fmt.Sprintf("value-%d-%d-%s", 0, i, string(bytes.Repeat([]byte("x"), 100)))
		v, err := db.GetAt(tl, []byte(k), snap)
		if err != nil {
			t.Fatalf("snapshot lost key %s: %v", k, err)
		}
		if string(v) != want {
			t.Fatalf("snapshot key %s sees a newer round", k)
		}
	}
	db.ReleaseSnapshot(snap)
}

func TestSnapshotDeleteVisibility(t *testing.T) {
	db, _, tl := newDB(t, SyncAll)
	mustPut(t, db, tl, "doomed", "alive")
	snap := db.GetSnapshot()
	db.Delete(tl, []byte("doomed"))
	// Churn so the tombstone gets compacted around.
	workload(t, db, tl, 1500, 0)
	if v, err := db.GetAt(tl, []byte("doomed"), snap); err != nil || string(v) != "alive" {
		t.Fatalf("snapshot read of pre-delete key: %q, %v", v, err)
	}
	if _, err := db.Get(tl, []byte("doomed")); err != ErrNotFound {
		t.Fatal("live read resurrected a deleted key")
	}
	db.ReleaseSnapshot(snap)
}

func TestSnapshotIterator(t *testing.T) {
	db, _, tl := newDB(t, SyncAll)
	for i := 0; i < 50; i++ {
		mustPut(t, db, tl, fmt.Sprintf("k%03d", i), "old")
	}
	snap := db.GetSnapshot()
	for i := 25; i < 75; i++ {
		mustPut(t, db, tl, fmt.Sprintf("k%03d", i), "new")
	}
	it, err := db.NewIteratorAt(tl, snap)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for it.First(); it.Valid(); it.Next() {
		if string(it.Value()) != "old" {
			t.Fatalf("snapshot iterator sees %q at %q", it.Value(), it.Key())
		}
		count++
	}
	if count != 50 {
		t.Fatalf("snapshot iterator saw %d keys, want 50", count)
	}
	db.ReleaseSnapshot(snap)
}

func TestCompactRangeDrainsUpperLevels(t *testing.T) {
	db, _, tl := newDB(t, SyncAll)
	workload(t, db, tl, 3000, 0)
	if err := db.CompactRange(tl, nil, nil); err != nil {
		t.Fatal(err)
	}
	v := db.Version()
	for level := 0; level < 3; level++ {
		if v.NumFiles(level) != 0 {
			t.Fatalf("level %d still has %d files after full CompactRange\n%s",
				level, v.NumFiles(level), v.DebugString())
		}
	}
	verifyWorkload(t, db, tl, 3000, 0)
}

func TestCompactRangePartial(t *testing.T) {
	db, _, tl := newDB(t, SyncAll)
	workload(t, db, tl, 2000, 0)
	begin := []byte(fmt.Sprintf("key%013d", 0))
	end := []byte(fmt.Sprintf("key%013d", 500))
	if err := db.CompactRange(tl, begin, end); err != nil {
		t.Fatal(err)
	}
	verifyWorkload(t, db, tl, 2000, 0)
}

func TestApproximateSize(t *testing.T) {
	db, _, tl := newDB(t, SyncAll)
	workload(t, db, tl, 3000, 0)
	db.CompactRange(tl, nil, nil) // move everything into tables
	all := db.ApproximateSize(tl, nil, nil)
	if all == 0 {
		t.Fatal("no approximate size for full range")
	}
	half := db.ApproximateSize(tl, nil, []byte(fmt.Sprintf("key%013d", 1500)))
	if half <= 0 || half > all {
		t.Fatalf("half-range size %d vs all %d", half, all)
	}
	none := db.ApproximateSize(tl, []byte("zzz"), nil)
	if none != 0 {
		t.Fatalf("empty range sized %d", none)
	}
}

func TestSnapshotReleaseAllowsReclaim(t *testing.T) {
	db, _, tl := newDB(t, SyncAll)
	const n = 1000
	workload(t, db, tl, n, 0)
	snap := db.GetSnapshot()
	workload(t, db, tl, n, 1)
	sizeWithSnap := db.ApproximateSize(tl, nil, nil)
	db.ReleaseSnapshot(snap)
	// Force a full rewrite: superseded round-0 versions may now go.
	if err := db.CompactRange(tl, nil, nil); err != nil {
		t.Fatal(err)
	}
	sizeAfter := db.ApproximateSize(tl, nil, nil)
	if sizeAfter >= sizeWithSnap {
		t.Fatalf("no space reclaimed after release: %d -> %d", sizeWithSnap, sizeAfter)
	}
	verifyWorkload(t, db, tl, n, 1)
}
