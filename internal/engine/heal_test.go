package engine

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"noblsm/internal/ext4"
	"noblsm/internal/keys"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
	"noblsm/internal/vfs"
)

// healValue derives a deterministic ~512-byte value from its key.
func healValue(key string) []byte {
	v := bytes.Repeat([]byte(key+"|"), 512/(len(key)+1)+1)
	return v[:512]
}

// TestSelfHealingRead corrupts a compaction successor at rest while
// its dependency is still unresolved (huge poll interval), then reads
// through it: the engine must detect the CRC failure, roll the version
// back onto the retained shadow predecessors, quarantine the bad
// table, serve every value correctly, and rebuild the level.
func TestSelfHealingRead(t *testing.T) {
	opts := smallOpts(SyncNobLSM)
	// Keep every dependency unresolved so predecessors stay retained.
	opts.PollInterval = vclock.Duration(1) << 50
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Unique keys in shuffled order (no version shadowing: every Get
	// must consult the table that holds its key), until a major
	// compaction leaves behind a currently-healable repair plan.
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(4000)
	var written []string
	var candidate uint64
	var candMeta *version.FileMeta
	for _, i := range perm {
		key := fmt.Sprintf("key%05d", i)
		if err := db.Put(tl, []byte(key), healValue(key)); err != nil {
			t.Fatal(err)
		}
		written = append(written, key)
		if len(written)%25 == 0 && len(written) > 200 {
			if cands := db.HealableSuccessors(); len(cands) > 0 {
				candidate = cands[0]
				db.mu.Lock()
				for _, s := range db.repairs[candidate].succs {
					if s.meta.Number == candidate {
						candMeta = s.meta
					}
				}
				db.mu.Unlock()
			}
			if candidate != 0 {
				break
			}
		}
	}
	if candidate == 0 {
		t.Fatal("no healable repair plan after workload; grow the write count")
	}

	// At-rest bit rot in one of the successor's data blocks, with its
	// cached handle and blocks dropped so reads go back to the medium.
	if err := fs.CorruptAt(TableName(candidate), candMeta.Size/3); err != nil {
		t.Fatal(err)
	}
	db.tcache.evict(tl, candidate)

	// Read keys inside the damaged table's range first: one of them
	// lands in the corrupt block and must come back healed, served
	// from the shadow predecessors.
	var inRange, rest []string
	for _, key := range written {
		if keys.CompareUser([]byte(key), candMeta.SmallestUser()) >= 0 &&
			keys.CompareUser([]byte(key), candMeta.LargestUser()) <= 0 {
			inRange = append(inRange, key)
		} else {
			rest = append(rest, key)
		}
	}
	if len(inRange) == 0 {
		t.Fatal("no written keys inside the corrupted table's range")
	}
	for _, key := range append(inRange, rest...) {
		v, err := db.Get(tl, []byte(key))
		if err != nil {
			t.Fatalf("Get(%s) after corruption: %v", key, err)
		}
		if !bytes.Equal(v, healValue(key)) {
			t.Fatalf("Get(%s) = %d bytes, wrong value", key, len(v))
		}
	}

	if got := db.m.readsHealed.Value(); got < 1 {
		t.Fatalf("reads healed = %d, want >= 1", got)
	}
	if got := db.m.tablesQuarantined.Value(); got < 1 {
		t.Fatalf("tables quarantined = %d, want >= 1", got)
	}
	if !fs.Exists(tl, TableName(candidate)+".corrupt") {
		t.Fatal("corrupt successor not quarantined under .corrupt")
	}
	db.mu.Lock()
	for level := 0; level < version.NumLevels; level++ {
		if fileAtLevel(db.current, level, candidate) {
			db.mu.Unlock()
			t.Fatalf("quarantined table %d still live at level %d", candidate, level)
		}
	}
	db.mu.Unlock()

	// The whole store must still scan clean, end to end.
	it, err := db.NewIterator(tl)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.First(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Value(), healValue(string(it.Key()))) {
			t.Fatalf("scan: wrong value for %s", it.Key())
		}
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(written) {
		t.Fatalf("scan found %d keys, want %d", n, len(written))
	}
	if _, err := db.ScrubTables(tl); err != nil {
		t.Fatalf("scrub after heal: %v", err)
	}
	if err := db.Close(tl); err != nil {
		t.Fatal(err)
	}
}

// TestPermanentFlushErrorGoesReadOnly injects a permanent table-create
// failure under an async engine: the background flush must escalate to
// a permanent error instead of dying silently, writes must fail fast,
// reads must keep serving the parked memtable, and Close/CompactRange
// must report the pending background error.
func TestPermanentFlushErrorGoesReadOnly(t *testing.T) {
	fs := ext4.New(smallFSConfig(), smallDevice())
	ffs, ctl := vfs.NewFaultFS(fs, 1)
	opts := smallOpts(SyncAll)
	opts.AsyncCompaction = true
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, ffs, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctl.AddRule(vfs.Rule{Class: vfs.ClassTable, Op: vfs.OpCreate, Kind: vfs.KindError})

	var writeErr error
	var acked []string
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key%05d", i)
		if err := db.Put(tl, []byte(key), healValue(key)); err != nil {
			writeErr = err
			break
		}
		acked = append(acked, key)
	}
	if writeErr == nil {
		t.Fatal("writes kept succeeding although every flush fails")
	}
	db.mu.Lock()
	db.waitBgIdle()
	db.mu.Unlock()
	if !db.ReadOnly() {
		t.Fatal("database not read-only after permanent flush failure")
	}
	if db.BackgroundError() == nil {
		t.Fatal("no background error recorded")
	}
	if err := db.Put(tl, []byte("late"), []byte("write")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write after permanent error = %v, want ErrReadOnly", err)
	}

	// Acked writes stay readable: the failed flush keeps its memtable
	// parked instead of dropping it.
	for _, key := range acked {
		v, err := db.Get(tl, []byte(key))
		if err != nil || !bytes.Equal(v, healValue(key)) {
			t.Fatalf("Get(%s) after permanent error: %v", key, err)
		}
	}

	prop, ok := db.Property("noblsm.background-errors")
	if !ok || !strings.Contains(prop, "read-only             true") {
		t.Fatalf("background-errors property missing read-only state:\n%s", prop)
	}
	if err := db.CompactRange(tl, nil, nil); err == nil {
		t.Fatal("CompactRange succeeded despite permanent background error")
	}
	if err := db.Close(tl); err == nil {
		t.Fatal("Close did not report the pending background error")
	}
}
