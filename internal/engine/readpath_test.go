package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"noblsm/internal/ext4"
	"noblsm/internal/sstable"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
)

// TestSelfHealingReadCompressedBlock is the compressed twin of
// TestSelfHealingRead: tables are built with the per-block codec and
// served through the two-tier cache, then one compressed data block
// takes at-rest bit rot. The CRC covers the stored (compressed)
// payload, so the flip must be caught before any decode runs, the
// read healed from the retained shadow predecessors, the table
// quarantined — and no reader may ever see a corrupt value.
func TestSelfHealingReadCompressedBlock(t *testing.T) {
	opts := smallOpts(SyncNobLSM)
	opts.PollInterval = vclock.Duration(1) << 50 // keep predecessors retained
	opts.Compression = sstable.FastCompression
	opts.CompressedBlockCacheBytes = 64 << 10
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(4000)
	var written []string
	var candidate uint64
	var candMeta *version.FileMeta
	for _, i := range perm {
		key := fmt.Sprintf("key%05d", i)
		if err := db.Put(tl, []byte(key), healValue(key)); err != nil {
			t.Fatal(err)
		}
		written = append(written, key)
		if len(written)%25 == 0 && len(written) > 200 {
			if cands := db.HealableSuccessors(); len(cands) > 0 {
				candidate = cands[0]
				db.mu.Lock()
				for _, s := range db.repairs[candidate].succs {
					if s.meta.Number == candidate {
						candMeta = s.meta
					}
				}
				db.mu.Unlock()
			}
			if candidate != 0 {
				break
			}
		}
	}
	if candidate == 0 {
		t.Fatal("no healable repair plan after workload; grow the write count")
	}

	// healValue repeats its key, so every data block compresses; a
	// flip a third of the way in lands inside a compressed payload.
	if err := fs.CorruptAt(TableName(candidate), candMeta.Size/3); err != nil {
		t.Fatal(err)
	}
	db.tcache.evict(tl, candidate)

	for _, key := range written {
		v, err := db.Get(tl, []byte(key))
		if err != nil {
			t.Fatalf("Get(%s) after corruption: %v", key, err)
		}
		if !bytes.Equal(v, healValue(key)) {
			t.Fatalf("Get(%s) returned a wrong value through the corrupt block", key)
		}
	}

	if got := db.m.readsHealed.Value(); got < 1 {
		t.Fatalf("reads healed = %d, want >= 1", got)
	}
	if got := db.m.tablesQuarantined.Value(); got < 1 {
		t.Fatalf("tables quarantined = %d, want >= 1", got)
	}
	if !fs.Exists(tl, TableName(candidate)+".corrupt") {
		t.Fatal("corrupt successor not quarantined under .corrupt")
	}

	// Scan end to end: the iterator (readahead path included) must
	// serve every key from intact tables only.
	it, err := db.NewIterator(tl)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.First(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Value(), healValue(string(it.Key()))) {
			t.Fatalf("scan: wrong value for %s", it.Key())
		}
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(written) {
		t.Fatalf("scan found %d keys, want %d", n, len(written))
	}
	if err := db.Close(tl); err != nil {
		t.Fatal(err)
	}
}

// TestMultiGetMatchesGet pins MultiGet to the per-key read path under
// concurrent writers: for any sequence number, MultiGetAt over a batch
// must return exactly what N independent snapshot Gets at the same
// sequence return — same values, same misses — no matter how the batch
// mixes live, deleted and never-written keys. Runs compressed so the
// batched probes exercise the two-tier cache.
func TestMultiGetMatchesGet(t *testing.T) {
	opts := smallOpts(SyncAll)
	opts.Compression = sstable.FastCompression
	opts.CompressedBlockCacheBytes = 64 << 10
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close(tl)

	const (
		writers       = 2
		opsPerWriter  = 1200
		keysPerWriter = 200
	)
	key := func(w, slot int) []byte {
		return []byte(fmt.Sprintf("w%02d-%06d", w, slot))
	}
	var writersDone atomic.Bool
	var writerWG sync.WaitGroup
	werrs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			ctl := vclock.NewTimeline(tl.Now())
			for i := 0; i < opsPerWriter; i++ {
				k := key(w, i%keysPerWriter)
				if i%37 == 36 {
					if err := db.Delete(ctl, k); err != nil {
						werrs <- err
						return
					}
					continue
				}
				v := append(append([]byte(nil), k...), fmt.Sprintf("#%06d", i)...)
				if err := db.Put(ctl, k, v); err != nil {
					werrs <- err
					return
				}
			}
		}(w)
	}

	check := func(ctl *vclock.Timeline, rng *rand.Rand) error {
		// Pin one read point for both paths — through a registered
		// snapshot, not a bare sequence load: compactions drop
		// superseded versions nothing protects, so two reads at an
		// unregistered sequence can straddle a compaction and
		// legitimately disagree.
		snap := db.GetSnapshot()
		defer db.ReleaseSnapshot(snap)
		seq := snap.seq
		batch := make([][]byte, 16)
		for j := range batch {
			switch rng.Intn(8) {
			case 0: // never written
				batch[j] = []byte(fmt.Sprintf("missing-%04d", rng.Intn(1000)))
			case 1: // duplicate inside the batch
				batch[j] = batch[rng.Intn(j+1)]
			default:
				batch[j] = key(rng.Intn(writers), rng.Intn(keysPerWriter))
			}
		}
		vals, errs := db.MultiGetAt(ctl, batch, seq)
		for j, k := range batch {
			want, wantErr := db.get(ctl, k, seq)
			if (errs[j] == nil) != (wantErr == nil) || (wantErr != nil && errs[j] != wantErr) {
				return fmt.Errorf("key %q at seq %d: MultiGet err %v, Get err %v", k, seq, errs[j], wantErr)
			}
			if !bytes.Equal(vals[j], want) {
				return fmt.Errorf("key %q at seq %d: MultiGet %q, Get %q", k, seq, vals[j], want)
			}
		}
		return nil
	}

	var readerWG sync.WaitGroup
	rerrs := make(chan error, 2)
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			ctl := vclock.NewTimeline(tl.Now())
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for !writersDone.Load() {
				if err := check(ctl, rng); err != nil {
					rerrs <- err
					return
				}
			}
		}(r)
	}

	writerWG.Wait()
	writersDone.Store(true)
	readerWG.Wait()
	close(werrs)
	close(rerrs)
	for err := range werrs {
		t.Fatal(err)
	}
	for err := range rerrs {
		t.Fatal(err)
	}

	// Quiescent sweep: the live-head MultiGet agrees with Get for the
	// whole keyspace at once.
	all := make([][]byte, 0, writers*keysPerWriter)
	for w := 0; w < writers; w++ {
		for s := 0; s < keysPerWriter; s++ {
			all = append(all, key(w, s))
		}
	}
	vals, errs := db.MultiGet(tl, all)
	for i, k := range all {
		want, wantErr := db.Get(tl, k)
		if (errs[i] == nil) != (wantErr == nil) {
			t.Fatalf("key %q: MultiGet err %v, Get err %v", k, errs[i], wantErr)
		}
		if !bytes.Equal(vals[i], want) {
			t.Fatalf("key %q: MultiGet %q, Get %q", k, vals[i], want)
		}
	}
}

// TestReadStress hammers the full PR 7 read path — per-block
// compression, the two-tier block cache (kept tiny so eviction and
// refill race), iterator readahead windows and batched MultiGets —
// from parallel readers against live writers. Under -race this vets
// the pooled readahead buffers, the compressed-tier fills and the
// batch read-point clamp; the correctness invariant is the usual one:
// a value always belongs to the key it was read under.
func TestReadStress(t *testing.T) {
	opts := smallOpts(SyncAll)
	opts.AsyncCompaction = true
	opts.Compression = sstable.FastCompression
	opts.CompressionByLevel = []sstable.Compression{sstable.FastCompression, sstable.FastCompression, sstable.MaxCompression}
	opts.CompressedBlockCacheBytes = 16 << 10
	opts.BlockCacheBytes = 16 << 10
	opts.IterReadaheadBlocks = 8
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close(tl)

	const (
		writers       = 2
		opsPerWriter  = 1200
		keysPerWriter = 300
	)
	key := func(w, slot int) []byte {
		return []byte(fmt.Sprintf("rs%02d-%06d", w, slot))
	}
	var writersDone atomic.Bool
	var writerWG, readerWG sync.WaitGroup
	errs := make(chan error, 8)

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			ctl := vclock.NewTimeline(tl.Now())
			for i := 0; i < opsPerWriter; i++ {
				k := key(w, i%keysPerWriter)
				// Compressible values: repeat the key so every data
				// block actually takes the codec path.
				v := bytes.Repeat(k, 8)
				if err := db.Put(ctl, k, v); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}

	checkValue := func(where string, k, v []byte) error {
		if len(v) != 0 && (len(v)%len(k) != 0 || !bytes.HasPrefix(v, k)) {
			return fmt.Errorf("%s: key %q carries foreign value %q", where, k, v)
		}
		return nil
	}

	// Point readers.
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			ctl := vclock.NewTimeline(tl.Now())
			for i := 0; !writersDone.Load(); i++ {
				k := key((r+i)%writers, i%keysPerWriter)
				v, err := db.Get(ctl, k)
				if err == ErrNotFound {
					continue
				}
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if err := checkValue("reader", k, v); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}
	// Batched readers.
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			ctl := vclock.NewTimeline(tl.Now())
			rng := rand.New(rand.NewSource(int64(500 + r)))
			batch := make([][]byte, 16)
			for !writersDone.Load() {
				for j := range batch {
					batch[j] = key(rng.Intn(writers), rng.Intn(keysPerWriter))
				}
				vals, merrs := db.MultiGet(ctl, batch)
				for j := range batch {
					if merrs[j] == ErrNotFound {
						continue
					}
					if merrs[j] != nil {
						errs <- fmt.Errorf("multiget reader %d: %w", r, merrs[j])
						return
					}
					if err := checkValue("multiget", batch[j], vals[j]); err != nil {
						errs <- err
						return
					}
				}
			}
		}(r)
	}
	// Scanners drive the readahead ramp over compressed tables.
	for s := 0; s < 2; s++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			ctl := vclock.NewTimeline(tl.Now())
			for !writersDone.Load() {
				it, err := db.NewIterator(ctl)
				if err != nil {
					errs <- fmt.Errorf("scanner: %w", err)
					return
				}
				var prev []byte
				for it.First(); it.Valid(); it.Next() {
					if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
						errs <- fmt.Errorf("scanner: keys out of order: %q then %q", prev, it.Key())
						return
					}
					prev = append(prev[:0], it.Key()...)
					if err := checkValue("scanner", it.Key(), it.Value()); err != nil {
						errs <- err
						return
					}
				}
				if err := it.Err(); err != nil {
					errs <- fmt.Errorf("scanner: %w", err)
					return
				}
			}
		}()
	}

	writerWG.Wait()
	writersDone.Store(true)
	readerWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMultiGetNeverTornBatch races MultiGet against writers committing
// multi-key atomic batches: every batch writes the same version tag to
// all its sibling keys, so a MultiGet over the siblings must come back
// either all-missing or all carrying one tag. A mixed result would
// mean the batch's read point straddled a write group — exactly what
// clamping the sequence once per batch (against a visibleSeq that
// only advances on whole-group boundaries) forbids.
func TestMultiGetNeverTornBatch(t *testing.T) {
	opts := smallOpts(SyncAll)
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close(tl)

	const (
		writers      = 3
		batchesPer   = 300
		keysPerBatch = 4
	)
	key := func(w, k int) []byte {
		return []byte(fmt.Sprintf("tw%02d-k%d", w, k))
	}
	var writersDone atomic.Bool
	var writerWG sync.WaitGroup
	werrs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			ctl := vclock.NewTimeline(tl.Now())
			for i := 0; i < batchesPer; i++ {
				var b Batch
				for k := 0; k < keysPerBatch; k++ {
					b.Put(key(w, k), []byte(fmt.Sprintf("ver%06d", i)))
				}
				if err := db.Write(ctl, &b); err != nil {
					werrs <- err
					return
				}
			}
		}(w)
	}

	var readerWG sync.WaitGroup
	rerrs := make(chan error, 2)
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			ctl := vclock.NewTimeline(tl.Now())
			batch := make([][]byte, keysPerBatch)
			for i := 0; !writersDone.Load(); i++ {
				w := (r + i) % writers
				for k := 0; k < keysPerBatch; k++ {
					batch[k] = key(w, k)
				}
				vals, errs := db.MultiGet(ctl, batch)
				var tag []byte
				seen := 0
				for k := range batch {
					if errs[k] == ErrNotFound {
						continue
					}
					if errs[k] != nil {
						rerrs <- errs[k]
						return
					}
					if seen == 0 {
						tag = vals[k]
					} else if !bytes.Equal(tag, vals[k]) {
						rerrs <- fmt.Errorf("torn batch: writer %d siblings carry %q and %q", w, tag, vals[k])
						return
					}
					seen++
				}
				if seen != 0 && seen != keysPerBatch {
					rerrs <- fmt.Errorf("torn batch: writer %d shows %d/%d siblings", w, seen, keysPerBatch)
					return
				}
			}
		}(r)
	}

	writerWG.Wait()
	writersDone.Store(true)
	readerWG.Wait()
	close(werrs)
	close(rerrs)
	for err := range werrs {
		t.Fatal(err)
	}
	for err := range rerrs {
		t.Fatal(err)
	}
}
