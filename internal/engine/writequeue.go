package engine

// Leader-based group commit, LevelDB-style. Concurrent Write callers
// enqueue on a writer queue; the front writer is the leader. The
// leader makes room, coalesces the queued batches (up to a byte cap)
// into ONE write-ahead-log record, assigns a contiguous sequence
// range, applies every batch to the memtable, publishes the new
// visible sequence, and wakes the followers. One WAL append — and in
// syncing modes one sync — thus covers the whole group.
//
// Virtual-time semantics: the leader charges the WAL append (and its
// own per-record CPU) to its private timeline exactly as the old
// serialized path did, so a group of one — the only shape the
// deterministic harness produces, since it drives clients one at a
// time — is byte-for-byte identical to the pre-queue engine.
// Followers' clocks jump to the leader's commit-completion instant
// (WaitUntil), mirroring how the harness models stalls, then pay
// their own per-record CPU.
//
// Crash atomicity: because a group is one WAL record, a torn tail
// drops whole groups — never a prefix of one — so batches are lost or
// kept atomically (and never split), strictly stronger than the
// single-batch guarantee the recovery tests assert.

import (
	"encoding/binary"
	"fmt"

	"noblsm/internal/keys"
	"noblsm/internal/obs"
	"noblsm/internal/vclock"
)

const (
	// maxGroupCommitBytes caps a commit group (LevelDB's 1 MB rule).
	maxGroupCommitBytes = 1 << 20
	// smallBatchBytes: when the leader's own batch is small, the
	// group is capped near it so a tiny write's latency is not taxed
	// by megabytes of followers (LevelDB's 128 KB rule).
	smallBatchBytes = 128 << 10
)

// writeReq is one queued Write call.
type writeReq struct {
	batch *Batch
	tl    *vclock.Timeline

	// wake is closed by a leader, after setting either promoted
	// (this writer is the new leader) or err/commitEnd (a leader
	// committed this writer's batch as part of its group).
	wake      chan struct{}
	promoted  bool
	err       error
	commitEnd vclock.Time

	// span is allocated when this op is attributed (telemetry on, or
	// WriteObserved); nil otherwise, so the unobserved path pays
	// nothing. A span is only ever touched by the goroutine that
	// enqueued the request — a leader never touches a follower's
	// span — so no synchronization is needed.
	span *obs.OpSpan
}

// Write applies a batch atomically: WAL append (unsynced, as
// LevelDB's default), then memtable insertion. Write is safe for
// concurrent use; concurrent callers are group-committed.
func (db *DB) Write(tl *vclock.Timeline, b *Batch) error {
	_, err := db.writeObserved(tl, b, db.tel != nil)
	return err
}

// WriteObserved is Write plus the operation's attribution span, for
// callers (and tests) that need per-op phase durations rather than the
// aggregate timers. The span is populated whether or not telemetry is
// enabled; the aggregate plane only accumulates when it is.
func (db *DB) WriteObserved(tl *vclock.Timeline, b *Batch) (obs.OpSpan, error) {
	w, err := db.writeObserved(tl, b, true)
	if w == nil || w.span == nil {
		return obs.OpSpan{}, err
	}
	return *w.span, err
}

// writeObserved enqueues the batch and runs the group-commit protocol,
// threading an attribution span through the op when observed is set.
// It returns the writeReq so WriteObserved can read the finished span
// (nil when the op never reached the queue).
func (db *DB) writeObserved(tl *vclock.Timeline, b *Batch, observed bool) (*writeReq, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if db.readOnly.Load() {
		// Fail-fast rejection: a zero-duration stall with a cause tag.
		db.stalls().Observe(obs.StallReadOnly, tl.Now(), 0)
		return nil, fmt.Errorf("%w: %v", ErrReadOnly, db.BackgroundError())
	}
	if b.Count() == 0 {
		return nil, nil
	}
	// Admission control (governor.go): charge the batch's bytes and
	// pay any pacing delay before taking a queue slot, so backpressure
	// lands on every writer's own timeline instead of stacking up
	// behind the leader.
	if err := db.admitWrite(tl, int64(b.Size())); err != nil {
		return nil, err
	}
	w := &writeReq{batch: b, tl: tl, wake: make(chan struct{})}
	if observed {
		w.span = new(obs.OpSpan)
		w.span.Begin(tl.Now(), obs.PhaseWriteEnqueue)
	}
	db.wqMu.Lock()
	db.writeQ = append(db.writeQ, w)
	isLeader := len(db.writeQ) == 1
	db.wqMu.Unlock()
	if !isLeader {
		<-w.wake
		if !w.promoted {
			// A leader committed this batch for us: jump to the
			// commit's completion and pay our own per-record CPU.
			if w.err != nil {
				w.span.Finish(tl.Now())
				db.tel.ObserveWrite(w.span)
				return w, w.err
			}
			w.span.To(tl.Now(), obs.PhaseWriteGroupWait)
			tl.WaitUntil(w.commitEnd)
			w.span.To(tl.Now(), obs.PhaseWriteApply)
			tl.Advance(db.opts.WriteCPU * vclock.Duration(b.Count()))
			w.span.Finish(tl.Now())
			db.tel.ObserveWrite(w.span)
			return w, nil
		}
	}
	return w, db.commitGroup(w)
}

// commitGroup runs the leader protocol for the writer at the front of
// the queue: make room, build the group, commit it, pop it, wake the
// followers and promote the next leader.
func (db *DB) commitGroup(leader *writeReq) error {
	tl := leader.tl
	db.mu.Lock()
	leader.span.To(tl.Now(), obs.PhaseWriteThrottle)
	var err error
	if db.closed.Load() {
		err = ErrClosed
	} else if db.bgPermanent != nil {
		db.stalls().Observe(obs.StallReadOnly, tl.Now(), 0)
		err = fmt.Errorf("%w: %v", ErrReadOnly, db.bgPermanent)
	} else {
		err = db.makeRoomForWrite(tl, leader.span)
	}
	group := []*writeReq{leader}
	if err == nil {
		group = db.buildGroup(leader)
		err = db.commitBatches(tl, group)
	}
	commitEnd := tl.Now()
	db.mu.Unlock()
	leader.span.Finish(commitEnd)
	db.tel.ObserveWrite(leader.span)

	db.wqMu.Lock()
	db.writeQ = db.writeQ[len(group):]
	var next *writeReq
	if len(db.writeQ) == 0 {
		db.writeQ = nil // release the backing array
	} else {
		next = db.writeQ[0]
	}
	db.wqMu.Unlock()

	for _, w := range group[1:] {
		w.err = err
		w.commitEnd = commitEnd
		close(w.wake)
	}
	if next != nil {
		next.promoted = true
		close(next.wake)
	}
	return err
}

// buildGroup collects the leader's batch plus queued followers up to
// the byte cap. Called with db.mu held (the stall-aware cap reads L0
// state); the queue prefix is stable because only the leader pops.
func (db *DB) buildGroup(leader *writeReq) []*writeReq {
	maxBytes := maxGroupCommitBytes
	if first := leader.batch.Size(); first <= smallBatchBytes {
		maxBytes = first + smallBatchBytes
	}
	// The stall-aware cap (Options.StallGroupCommitBytes): while L0 is
	// over the slowdown trigger every group is kept small, so the
	// per-group throttle keeps biting instead of being amortized away
	// by huge groups.
	if db.leveledL0Count() >= db.opts.L0SlowdownTrigger && maxBytes > db.opts.StallGroupCommitBytes {
		maxBytes = db.opts.StallGroupCommitBytes
	}
	db.wqMu.Lock()
	defer db.wqMu.Unlock()
	group := make([]*writeReq, 0, len(db.writeQ))
	total := 0
	for _, w := range db.writeQ {
		if len(group) > 0 && total+w.batch.Size() > maxBytes {
			break
		}
		group = append(group, w)
		total += w.batch.Size()
	}
	return group
}

// commitBatches performs the group's single WAL append and memtable
// application under db.mu. The leader's timeline pays the WAL and its
// own CPU; the visible sequence is published only after every batch
// of the group is in the memtable, so readers never observe a
// partially applied group.
func (db *DB) commitBatches(tl *vclock.Timeline, group []*writeReq) error {
	group[0].span.To(tl.Now(), obs.PhaseWriteWAL)
	base := db.lastSeq + 1
	rep := group[0].batch.rep
	if len(group) == 1 {
		group[0].batch.setSeq(base)
	} else {
		size := batchHeaderLen
		for _, w := range group {
			size += len(w.batch.rep) - batchHeaderLen
		}
		merged := make([]byte, batchHeaderLen, size)
		var total uint32
		seq := base
		for _, w := range group {
			w.batch.setSeq(seq)
			seq += keys.SeqNum(w.batch.Count())
			total += w.batch.Count()
			merged = append(merged, w.batch.rep[batchHeaderLen:]...)
		}
		binary.LittleEndian.PutUint64(merged[0:8], uint64(base))
		binary.LittleEndian.PutUint32(merged[8:12], total)
		rep = merged
	}
	var totalCount uint32
	for _, w := range group {
		totalCount += w.batch.Count()
	}
	if err := db.wal.AddRecord(tl, rep); err != nil {
		// AddRecord's contract: the writer rewound, but the file may hold
		// a torn record, so the log is poisoned and the next commit
		// rotates it (makeRoomForWrite). lastSeq has not advanced — the
		// group was never acked — so a retry reassigns the same range.
		db.walPoisoned = true
		db.walFailures++
		if db.walFailures > bgMaxRetries {
			db.setPermanentLocked(tl, fmt.Errorf("engine: wal append: %w", err))
		}
		return err
	}
	db.walFailures = 0
	group[0].span.To(tl.Now(), obs.PhaseWriteApply)
	db.lastSeq += keys.SeqNum(totalCount)
	for _, w := range group {
		if err := w.batch.applyTo(db.mem); err != nil {
			return err
		}
	}
	db.visibleSeq.Store(db.lastSeq)
	tl.Advance(db.opts.WriteCPU * vclock.Duration(group[0].batch.Count()))
	db.m.userBytes.Add(int64(len(rep)))
	for _, w := range group {
		w.batch.forEach(func(kind keys.Kind, key, _ []byte, _ uint32) error {
			if kind == keys.KindDelete {
				db.m.deletes.Inc()
			} else {
				db.m.puts.Inc()
			}
			if db.hot != nil {
				db.hot.touch(key)
			}
			return nil
		})
	}
	db.m.groupCommitSize.Observe(int64(len(group)))
	if db.tracker != nil {
		db.tracker.MaybePoll(tl)
	}
	return nil
}
