package engine

// hotSketch is a tiny update-frequency sketch used by the L2SM-style
// hot/cold separation: Put increments a hashed counter; counters are
// periodically halved so hotness decays. It deliberately trades
// accuracy for a fixed footprint, like the hot-key identification of
// log-assisted LSM designs. Hashing is FNV-1a so runs are
// deterministic.
type hotSketch struct {
	counts []uint8
	ops    int
	decay  int
}

func newHotSketch() *hotSketch {
	return &hotSketch{
		counts: make([]uint8, 1<<14),
		decay:  1 << 16,
	}
}

func fnv1a(key []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

func (h *hotSketch) slot(key []byte) *uint8 {
	return &h.counts[fnv1a(key)&uint64(len(h.counts)-1)]
}

// touch records an update of key.
func (h *hotSketch) touch(key []byte) {
	if c := h.slot(key); *c < 255 {
		*c++
	}
	h.ops++
	if h.ops >= h.decay {
		h.ops = 0
		for i := range h.counts {
			h.counts[i] >>= 1
		}
	}
}

// hot reports whether key's update frequency crosses threshold.
func (h *hotSketch) hot(key []byte, threshold uint8) bool {
	return *h.slot(key) >= threshold
}
