package engine

// Admission-control integration (Options.GovernorEnabled): the
// internal/governor token bucket is wired between the public Write
// entry point and the group-commit queue. Every writer charges its
// batch bytes BEFORE enqueueing and pays the returned pacing delay on
// its own timeline, so backpressure lands as many small cause-tagged
// ("admission_pacing") delays spread across writers instead of the
// slowdown/stop cliff the leader would otherwise hit in
// makeRoomForWrite. The governor's debt signal (leveled L0 file count
// plus L0 + parked-memtable bytes) is republished on every version
// change, and its drain signal is the compaction.bytes_written
// counter — bytes the background actually retired per virtual second.

import (
	"noblsm/internal/governor"
	"noblsm/internal/obs"
	"noblsm/internal/vclock"
)

// newGovernor builds the admission controller for opts (nil when
// disabled), deriving ramp geometry from the engine's own throttling
// thresholds unless the caller pinned them.
func (db *DB) newGovernor() *governor.Governor {
	if !db.opts.GovernorEnabled {
		return nil
	}
	cfg := db.opts.Governor
	if cfg.RampStart <= 0 {
		cfg.RampStart = db.opts.Picker.L0CompactionTrigger
	}
	if cfg.RampStop <= cfg.RampStart {
		cfg.RampStop = db.opts.L0StopTrigger
		if cfg.RampStop <= cfg.RampStart {
			cfg.RampStop = cfg.RampStart + 8
		}
	}
	if cfg.MaxDelay <= 0 {
		// The governor's bounded per-write delay doubles the stock
		// slowdown penalty at worst — but is paid smoothly and only
		// under measured debt, not as a per-group cliff.
		cfg.MaxDelay = 2 * db.opts.SlowdownDelay
	}
	if cfg.FillBytes <= 0 {
		cfg.FillBytes = db.opts.WriteBufferSize
	}
	if cfg.BurstBytes == 0 {
		// Likewise the burst: a quarter memtable (floored at 4 KiB) up
		// to the package default. A 1 MiB bucket in front of a scaled
		// 32 KiB memtable would absorb entire runs without pacing.
		if b := db.opts.WriteBufferSize / 4; b < 1<<20 {
			cfg.BurstBytes = b
			if cfg.BurstBytes < 4<<10 {
				cfg.BurstBytes = 4 << 10
			}
		}
	}
	if cfg.MinRateBytesPerSec == 0 {
		// Scale the safety floor with the geometry — one memtable per
		// second, never below 64 KiB/s. The package default (4 MiB/s)
		// assumes the paper's full-size 64 MB memtable; against a
		// scaled-down buffer it would exceed what the background can
		// actually retire and pin the admitted rate above drain.
		cfg.MinRateBytesPerSec = db.opts.WriteBufferSize
		if cfg.MinRateBytesPerSec < 64<<10 {
			cfg.MinRateBytesPerSec = 64 << 10
		}
	}
	return governor.New(db.reg, func() int64 { return db.m.bytesWritten.Value() }, cfg)
}

// updateGovernorDebt republishes the governor's debt signal. Called
// with db.mu held from publishReadState — the single point every
// version install and memtable rotation already flows through.
func (db *DB) updateGovernorDebt() {
	if db.governor == nil {
		return
	}
	l0 := 0
	var debt int64
	for _, f := range db.current.Files[0] {
		if !f.Hot {
			l0++
			debt += f.Size
		}
	}
	if db.imm != nil {
		debt += db.imm.ApproximateMemoryUsage()
	}
	db.governor.SetDebt(l0, debt)
}

// admitWrite runs one write of size bytes through the governor: pay
// the pacing delay on the caller's timeline (cause admission_pacing),
// or — when the implied wait exceeds Options.WriteStallDeadline —
// wait out the deadline and fail with ErrWriteStalled so the caller
// sheds load. No-op without a governor.
func (db *DB) admitWrite(tl *vclock.Timeline, bytes int64) error {
	if db.governor == nil {
		return nil
	}
	delay, ok := db.governor.Admit(tl.Now(), bytes, db.opts.WriteStallDeadline)
	if !ok {
		from := tl.Now()
		if delay > 0 {
			tl.Advance(delay)
		}
		db.stalls().Observe(obs.StallWriteStalled, tl.Now(), delay)
		if db.trace != nil {
			db.trace.Span(obs.TidForeground, "stall", "stall.write_stalled", from, tl.Now(),
				obs.KV{K: "cause", V: obs.StallWriteStalled.String()})
		}
		return ErrWriteStalled
	}
	if delay > 0 {
		from := tl.Now()
		tl.Advance(delay)
		db.stalls().Observe(obs.StallAdmissionPacing, tl.Now(), delay)
		if db.trace != nil {
			db.trace.Span(obs.TidForeground, "stall", "stall.admission", from, tl.Now(),
				obs.KV{K: "cause", V: obs.StallAdmissionPacing.String()})
		}
	}
	return nil
}

// boundedWait is makeRoomForWrite's deadline-aware WaitUntil: without
// a governed deadline it waits to target and reports the stall; with
// one, a wait that would overshoot the remaining budget is truncated
// at the deadline and fails with ErrWriteStalled — the backstop
// fail-fast for the hard rotation/backlog waits the pacing loop
// normally keeps writers away from.
func (db *DB) boundedWait(tl *vclock.Timeline, target vclock.Time, cause obs.StallCause) (vclock.Duration, error) {
	deadline := db.opts.WriteStallDeadline
	if db.governor != nil && deadline > 0 && target.Sub(tl.Now()) > deadline {
		from := tl.Now()
		tl.Advance(deadline)
		db.m.rotationNs.AddDuration(deadline)
		db.governor.NoteShed()
		db.stalls().Observe(obs.StallWriteStalled, tl.Now(), deadline)
		if db.trace != nil {
			db.trace.Span(obs.TidForeground, "stall", "stall.write_stalled", from, tl.Now(),
				obs.KV{K: "cause", V: obs.StallWriteStalled.String()},
				obs.KV{K: "deadline_exceeded", V: cause.String()})
		}
		return deadline, ErrWriteStalled
	}
	d := tl.WaitUntil(target)
	if d > 0 {
		db.m.rotationNs.AddDuration(d)
		db.stalls().Observe(cause, tl.Now(), d)
	}
	return d, nil
}

// GovernorStats reports the admission controller's counters (zero
// when the governor is off).
func (db *DB) GovernorStats() governor.Stats {
	return db.governor.Snapshot()
}
