// tailwal.go is the primary side of WAL streaming (PR 9): TailWAL
// reads complete log records at or after a (log, offset) cursor so a
// follower replica can apply the primary's write stream verbatim.
//
// Correctness leans on two existing invariants. First, the size of
// the active WAL sampled under db.mu is always a whole-group record
// boundary (group commit appends and acknowledges under the same
// lock), so bounding the scan at that size can never expose a torn
// record. Second, obsolete logs are deleted strictly oldest-first, so
// the set of logs still on disk is a contiguous suffix of the log
// sequence — "advance to the smallest existing log above the cursor"
// never skips records, and a missing cursor log means the follower
// fell behind GC and must re-bootstrap from a fresh checkpoint.
package engine

import (
	"sort"

	"noblsm/internal/keys"
	"noblsm/internal/vclock"
	"noblsm/internal/wal"
)

// TailResult is one TailWAL round: complete records in log order plus
// the cursor to resume from. Restart means the cursor's log no longer
// exists (or its contents are unreadable) — the follower's position is
// unrecoverable and it must bootstrap again from a checkpoint.
type TailResult struct {
	Restart bool
	Log     uint64
	NextOff int64
	// LastSeq is the primary's visible sequence number when the tail
	// was served — the follower's staleness bound: after applying
	// Records it is exactly (LastSeq - VisibleSeq) writes behind the
	// primary as of this round.
	LastSeq keys.SeqNum
	Records [][]byte
}

// TailWAL returns complete WAL records starting at the (log, off)
// cursor, up to roughly maxBytes of payload (always at least one
// record when any is available). A fully consumed rotated log advances
// the cursor to the next existing log at offset zero.
func (db *DB) TailWAL(tl *vclock.Timeline, log uint64, off int64, maxBytes int) (TailResult, error) {
	if db.closed.Load() {
		return TailResult{}, ErrClosed
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	cur, curSize := db.WALPosition()
	lastSeq := db.VisibleSeq()
	if log > cur {
		// The follower is ahead of this primary's log sequence — it was
		// tailing a previous incarnation (crash + recovery rewinds to a
		// fresh log). Its cursor is meaningless here.
		return TailResult{Restart: true, LastSeq: lastSeq}, nil
	}
	for {
		data, err := db.fs.ReadFile(tl, LogName(log))
		if err != nil {
			// Cursor log gone: deleted by GC (rotated) or never durable
			// (post-crash). Either way the follower must re-bootstrap.
			return TailResult{Restart: true}, nil
		}
		if log == cur && int64(len(data)) > curSize {
			data = data[:curSize]
		}
		entries := wal.ScanRecords(data)
		res := TailResult{Log: log, NextOff: off, LastSeq: lastSeq}
		budget := 0
		for i, e := range entries {
			if int64(e.Off) < off {
				continue
			}
			if !e.Valid {
				// Damage at or after the cursor in a log we still serve:
				// the stream cannot be continued faithfully.
				return TailResult{Restart: true, LastSeq: lastSeq}, nil
			}
			res.Records = append(res.Records, e.Payload)
			if i+1 < len(entries) {
				res.NextOff = int64(entries[i+1].Off)
			} else {
				res.NextOff = int64(len(data))
			}
			budget += len(e.Payload)
			if budget >= maxBytes {
				break
			}
		}
		if len(res.Records) > 0 || log == cur {
			// Either we have records to ship, or the cursor is at the
			// live tail with nothing new yet.
			return res, nil
		}
		// Rotated log fully consumed: advance to the smallest existing
		// log above it.
		next, ok := db.nextLogAfter(tl, log, cur)
		if !ok {
			return TailResult{Restart: true, LastSeq: lastSeq}, nil
		}
		log, off = next, 0
	}
}

// nextLogAfter scans the filesystem for the smallest log number in
// (log, cur]. ok=false means no such log exists — the namespace
// changed underneath the cursor in a way oldest-first deletion never
// produces without the cursor itself being stale.
func (db *DB) nextLogAfter(tl *vclock.Timeline, log, cur uint64) (uint64, bool) {
	var nums []uint64
	for _, name := range db.fs.List(tl) {
		if kind, num, ok := ParseFileName(name); ok && kind == KindLog && num > log && num <= cur {
			nums = append(nums, num)
		}
	}
	if len(nums) == 0 {
		return 0, false
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	return nums[0], true
}
