package engine

import (
	"encoding/binary"
	"errors"

	"noblsm/internal/keys"
	"noblsm/internal/memtable"
)

// Batch collects writes applied atomically, in LevelDB's WriteBatch
// wire format: an 8-byte little-endian sequence number, a 4-byte
// count, then per record a kind byte, a length-prefixed key and (for
// puts) a length-prefixed value. The same bytes are the WAL record.
type Batch struct {
	rep []byte
}

const batchHeaderLen = 12

// ErrBadBatch reports a malformed batch encoding (e.g. recovered from
// a damaged log).
var ErrBadBatch = errors.New("engine: malformed write batch")

func (b *Batch) init() {
	if len(b.rep) == 0 {
		b.rep = make([]byte, batchHeaderLen, batchHeaderLen+64)
	}
}

// Put queues a key/value insertion.
func (b *Batch) Put(key, value []byte) {
	b.init()
	b.rep = append(b.rep, byte(keys.KindValue))
	b.rep = binary.AppendUvarint(b.rep, uint64(len(key)))
	b.rep = append(b.rep, key...)
	b.rep = binary.AppendUvarint(b.rep, uint64(len(value)))
	b.rep = append(b.rep, value...)
	b.setCount(b.Count() + 1)
}

// Delete queues a tombstone.
func (b *Batch) Delete(key []byte) {
	b.init()
	b.rep = append(b.rep, byte(keys.KindDelete))
	b.rep = binary.AppendUvarint(b.rep, uint64(len(key)))
	b.rep = append(b.rep, key...)
	b.setCount(b.Count() + 1)
}

// Clear empties the batch for reuse.
func (b *Batch) Clear() { b.rep = b.rep[:0] }

// Count reports the queued record count.
func (b *Batch) Count() uint32 {
	if len(b.rep) < batchHeaderLen {
		return 0
	}
	return binary.LittleEndian.Uint32(b.rep[8:12])
}

func (b *Batch) setCount(n uint32) { binary.LittleEndian.PutUint32(b.rep[8:12], n) }

// Seq reports the base sequence number.
func (b *Batch) Seq() keys.SeqNum {
	if len(b.rep) < batchHeaderLen {
		return 0
	}
	return keys.SeqNum(binary.LittleEndian.Uint64(b.rep[0:8]))
}

func (b *Batch) setSeq(s keys.SeqNum) { binary.LittleEndian.PutUint64(b.rep[0:8], uint64(s)) }

// Size reports the encoded byte size.
func (b *Batch) Size() int { return len(b.rep) }

// decodeBatch wraps an encoded representation (e.g. a WAL record).
func decodeBatch(rep []byte) (*Batch, error) {
	if len(rep) < batchHeaderLen {
		return nil, ErrBadBatch
	}
	return &Batch{rep: append([]byte(nil), rep...)}, nil
}

// forEach decodes the records, invoking fn with each (kind, key,
// value, offset-in-batch).
func (b *Batch) forEach(fn func(kind keys.Kind, key, value []byte, idx uint32) error) error {
	p := b.rep[batchHeaderLen:]
	var idx uint32
	for len(p) > 0 {
		kind := keys.Kind(p[0])
		p = p[1:]
		klen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < klen {
			return ErrBadBatch
		}
		key := p[n : n+int(klen)]
		p = p[n+int(klen):]
		var value []byte
		switch kind {
		case keys.KindValue:
			vlen, n := binary.Uvarint(p)
			if n <= 0 || uint64(len(p)-n) < vlen {
				return ErrBadBatch
			}
			value = p[n : n+int(vlen)]
			p = p[n+int(vlen):]
		case keys.KindDelete:
		default:
			return ErrBadBatch
		}
		if err := fn(kind, key, value, idx); err != nil {
			return err
		}
		idx++
	}
	if idx != b.Count() {
		return ErrBadBatch
	}
	return nil
}

// applyTo inserts the batch into a memtable with its sequence numbers.
func (b *Batch) applyTo(m *memtable.MemTable) error {
	base := b.Seq()
	return b.forEach(func(kind keys.Kind, key, value []byte, idx uint32) error {
		m.Add(base+keys.SeqNum(idx), kind, key, value)
		return nil
	})
}
