// checkpoint.go implements zero-copy checkpoints, incremental backup,
// and the replication apply path.
//
// A checkpoint pins the current manifest version plus its file set and
// exports a self-contained store image under a name prefix
// ("ckpt-1/...") of the same filesystem. Tables and rotated logs are
// exported as hard links — no data copy, and the export shares inodes
// with the primary, so even after release-side GC unlinks the primary
// names the bytes survive under the export's names. Only the active
// WAL's acked prefix (captured at a group-commit boundary under db.mu)
// and a fresh manifest snapshot are written out, so checkpoint cost is
// O(manifest + WAL tail), never O(data).
//
// The pin side has two layers. The engine-side registry (ckpts, under
// the leaf lock ckptMu) is consulted by both GC paths so neither the
// full directory scan nor the async candidate queue deletes a pinned
// table or log. In NobLSM mode the tracker additionally pins the
// checkpointed table numbers (core.Tracker.Pin): a checkpointed table
// that a later compaction supersedes becomes a shadow predecessor, and
// without the pin the tracker's release callback would unlink it the
// moment its successors commit — bypassing the GC scans entirely.
// Releasing the last checkpoint reference frees everything retained.
//
// Backup reuses the same capture/export machinery incrementally: only
// tables absent from the destination are linked, stale files are
// pruned, and the manifest + WAL tail are rewritten. RestoreBackup
// funnels through Repair, so a restored store passes the same
// validation as a repaired one (restore ≡ repair).
package engine

import (
	"fmt"
	"sort"
	"strings"

	"noblsm/internal/keys"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
	"noblsm/internal/vfs"
	"noblsm/internal/wal"
)

// CheckpointFile is one exported file of a checkpoint or backup.
type CheckpointFile struct {
	Name string // relative to the checkpoint directory
	Size int64
	// Linked reports the file shares its inode with the primary copy
	// (zero-copy export); false means its bytes were written fresh
	// (the WAL prefix, the manifest snapshot, CURRENT, or a copy
	// fallback on a filesystem without hard links).
	Linked bool
}

// CheckpointInfo describes one live checkpoint reference.
type CheckpointInfo struct {
	ID  uint64
	Dir string

	// WALNumber/WALOff locate the checkpoint's cut in the primary's
	// write-ahead log: the first record a follower bootstrapped from
	// this checkpoint must apply starts at WALOff of WALNumber.
	WALNumber uint64
	WALOff    int64
	// LastSeq is the newest sequence number the checkpoint contains.
	LastSeq   keys.SeqNum
	CreatedAt vclock.Time

	Files []CheckpointFile
	// Tables and Logs are the pinned primary file numbers.
	Tables []uint64
	Logs   []uint64
	// Linked counts files exported zero-copy; CopiedBytes counts the
	// bytes that were actually written (WAL prefix + manifest).
	Linked      int
	CopiedBytes int64
}

// BackupInfo summarizes one incremental Backup run.
type BackupInfo struct {
	Dir       string
	WALNumber uint64
	WALOff    int64
	LastSeq   keys.SeqNum
	At        vclock.Time

	TablesLinked int // tables newly hard-linked this run
	TablesReused int // tables already present from a previous run
	Pruned       int // stale files removed from the destination
	CopiedBytes  int64
}

// checkpointRef is the registry entry backing one checkpoint: the
// pinned file numbers with their sizes (for the retained-bytes gauge)
// plus the public info.
type checkpointRef struct {
	info   CheckpointInfo
	tables map[uint64]int64
	logs   map[uint64]int64
}

// ckptCapture is the consistent cut taken under db.mu: the immutable
// version, the WAL position at a whole-group record boundary (the
// leader appends while holding db.mu, so Size() here never splits a
// record or an acked group), the replay floor, and the rotated logs
// still holding unflushed records.
type ckptCapture struct {
	v       *version.Version
	rotated []uint64
	logSize map[uint64]int64
	walNum  uint64
	walCut  int64
	floor   uint64
	lastSeq keys.SeqNum
	next    uint64
	at      vclock.Time
}

// captureCheckpoint takes the cut and registers the pins — all under
// db.mu, so the capture is atomic against writers, flush installs and
// compaction installs. The export runs after, outside every lock.
func (db *DB) captureCheckpoint(tl *vclock.Timeline) (*ckptCapture, *checkpointRef, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed.Load() {
		return nil, nil, ErrClosed
	}
	cut := &ckptCapture{
		v:       db.current,
		logSize: make(map[uint64]int64),
		walNum:  db.walNumber,
		walCut:  db.walFile.Size(),
		floor:   db.logNumber,
		lastSeq: db.lastSeq,
		next:    db.nextFile.Load(),
		at:      tl.Now(),
	}
	for _, name := range db.fs.List(tl) {
		kind, num, ok := ParseFileName(name)
		if ok && kind == KindLog && num >= cut.floor && num < cut.walNum {
			cut.rotated = append(cut.rotated, num)
			if sz, err := db.fs.Size(tl, name); err == nil {
				cut.logSize[num] = sz
			}
		}
	}
	sort.Slice(cut.rotated, func(i, j int) bool { return cut.rotated[i] < cut.rotated[j] })

	ref := &checkpointRef{tables: make(map[uint64]int64), logs: make(map[uint64]int64)}
	var tables []uint64
	for level := 0; level < version.NumLevels; level++ {
		for _, fm := range cut.v.Files[level] {
			if _, ok := ref.tables[fm.Number]; !ok {
				ref.tables[fm.Number] = fm.Size
				tables = append(tables, fm.Number)
			}
		}
	}
	sort.Slice(tables, func(i, j int) bool { return tables[i] < tables[j] })
	for _, n := range cut.rotated {
		ref.logs[n] = cut.logSize[n]
	}
	if db.tracker != nil {
		db.tracker.Pin(tables...)
	}

	db.ckptMu.Lock()
	db.ckptSeq++
	ref.info = CheckpointInfo{
		ID:        db.ckptSeq,
		WALNumber: cut.walNum,
		WALOff:    cut.walCut,
		LastSeq:   cut.lastSeq,
		CreatedAt: cut.at,
		Tables:    tables,
		Logs:      append([]uint64(nil), cut.rotated...),
	}
	db.ckpts[ref.info.ID] = ref
	db.ckptGaugesLocked()
	db.ckptMu.Unlock()
	return cut, ref, nil
}

// exportResult is the outcome of one export pass.
type exportResult struct {
	files  []CheckpointFile
	linked int
	reused int
	pruned int
	copied int64
}

// exportCheckpoint materializes a capture under dir. It is incremental
// against whatever the directory already holds: present tables and
// rotated logs are reused, absent ones hard-linked, and stale engine
// files pruned; the WAL prefix, manifest snapshot and CURRENT are
// rewritten every time. No file is synced — durability rides the
// journal exactly like the primary's own files (the fresh manifest's
// bytes are appended after every table byte it references, so
// data=ordered commits them no earlier), and a restore funnels through
// Repair regardless.
func (db *DB) exportCheckpoint(tl *vclock.Timeline, cut *ckptCapture, dir string) (*exportResult, error) {
	prefix := dir + "/"
	existing := make(map[string]bool)
	for _, name := range db.fs.List(tl) {
		if strings.HasPrefix(name, prefix) {
			existing[name[len(prefix):]] = true
		}
	}
	res := &exportResult{}
	keep := make(map[string]bool)
	export := func(name string, size int64) error {
		keep[name] = true
		if existing[name] {
			res.reused++
			res.files = append(res.files, CheckpointFile{Name: name, Size: size, Linked: true})
			return nil
		}
		linked, err := vfs.LinkOrCopy(tl, db.fs, name, prefix+name)
		if err != nil {
			return err
		}
		if linked {
			res.linked++
		} else {
			res.copied += size
		}
		res.files = append(res.files, CheckpointFile{Name: name, Size: size, Linked: linked})
		return nil
	}
	for level := 0; level < version.NumLevels; level++ {
		for _, fm := range cut.v.Files[level] {
			name := TableName(fm.Number)
			if keep[name] {
				continue
			}
			if err := export(name, fm.Size); err != nil {
				return nil, err
			}
		}
	}
	for _, num := range cut.rotated {
		if err := export(LogName(num), cut.logSize[num]); err != nil {
			return nil, err
		}
	}

	// The active WAL keeps growing past the cut, so its acked prefix is
	// the one part of the image that must be copied, not linked.
	walName := LogName(cut.walNum)
	keep[walName] = true
	buf := make([]byte, cut.walCut)
	if cut.walCut > 0 {
		f, err := db.fs.Open(tl, walName)
		if err != nil {
			return nil, err
		}
		_, err = f.ReadAt(tl, buf, 0)
		f.Close(tl)
		if err != nil {
			return nil, err
		}
	}
	if err := db.fs.WriteFile(tl, prefix+walName, buf); err != nil {
		return nil, err
	}
	res.copied += cut.walCut
	res.files = append(res.files, CheckpointFile{Name: walName, Size: cut.walCut})

	// Fresh manifest snapshot: one edit describing the captured
	// version, numbered past every file it references so the restored
	// allocator never aliases an exported file.
	mname := ManifestName(cut.next)
	keep[mname] = true
	mf, err := db.fs.Create(tl, prefix+mname)
	if err != nil {
		return nil, err
	}
	w := wal.NewWriter(mf)
	snap := &version.VersionEdit{}
	snap.SetLogNumber(cut.floor)
	snap.SetNextFileNumber(cut.next + 1)
	snap.SetLastSeq(cut.lastSeq)
	for level := 0; level < version.NumLevels; level++ {
		for _, fm := range cut.v.Files[level] {
			snap.AddFile(level, fm)
		}
	}
	if err := w.AddRecord(tl, snap.Encode()); err != nil {
		mf.Close(tl)
		return nil, err
	}
	msize := mf.Size()
	mf.Close(tl)
	res.copied += msize
	res.files = append(res.files, CheckpointFile{Name: mname, Size: msize})

	current := []byte(mname + "\n")
	keep[CurrentName] = true
	if err := db.fs.WriteFile(tl, prefix+CurrentName, current); err != nil {
		return nil, err
	}
	res.copied += int64(len(current))
	res.files = append(res.files, CheckpointFile{Name: CurrentName, Size: int64(len(current))})

	// Prune engine files a previous export left behind that this cut no
	// longer references (superseded tables, rotated-away logs, the old
	// manifest). Foreign names are left alone.
	for name := range existing {
		if keep[name] {
			continue
		}
		if _, _, ok := ParseFileName(name); !ok {
			continue
		}
		db.fs.Remove(tl, prefix+name)
		res.pruned++
	}
	return res, nil
}

// Checkpoint pins the current version and exports it as a
// self-contained store under dir (a name prefix of the store's own
// filesystem). The capture is atomic, the export zero-copy for all
// SSTable bytes, and the foreground never stalls: writers only contend
// on db.mu for the capture itself, which reads a few fields and
// registers pins. The returned reference keeps every captured file —
// including NobLSM shadow predecessors of captured tables — alive
// until ReleaseCheckpoint.
func (db *DB) Checkpoint(tl *vclock.Timeline, dir string) (CheckpointInfo, error) {
	if dir == "" || strings.HasSuffix(dir, "/") {
		return CheckpointInfo{}, fmt.Errorf("engine: invalid checkpoint directory %q", dir)
	}
	prefix := dir + "/"
	for _, name := range db.fs.List(tl) {
		if strings.HasPrefix(name, prefix) {
			return CheckpointInfo{}, fmt.Errorf("engine: checkpoint directory %q not empty", dir)
		}
	}
	cut, ref, err := db.captureCheckpoint(tl)
	if err != nil {
		return CheckpointInfo{}, err
	}
	res, err := db.exportCheckpoint(tl, cut, dir)
	if err != nil {
		// Unpin and sweep the partial export; the primary is untouched.
		db.releaseCheckpointRef(tl, ref.info.ID, false)
		for _, name := range db.fs.List(tl) {
			if strings.HasPrefix(name, prefix) {
				db.fs.Remove(tl, name)
			}
		}
		return CheckpointInfo{}, err
	}
	db.ckptMu.Lock()
	ref.info.Dir = dir
	ref.info.Files = res.files
	ref.info.Linked = res.linked
	ref.info.CopiedBytes = res.copied
	info := ref.info
	db.ckptMu.Unlock()
	db.m.ckptCreated.Inc()
	db.m.ckptLinkedFiles.Add(int64(res.linked))
	db.m.ckptCopiedBytes.Add(res.copied)
	return info, nil
}

// ReleaseCheckpoint drops a checkpoint reference: the export directory
// is deleted, the pins are released (in NobLSM mode freeing any shadow
// predecessors the pin parked), and a GC pass reclaims whatever the
// reference alone was keeping alive.
func (db *DB) ReleaseCheckpoint(tl *vclock.Timeline, id uint64) error {
	if err := db.releaseCheckpointRef(tl, id, true); err != nil {
		return err
	}
	db.m.ckptReleased.Inc()
	return nil
}

func (db *DB) releaseCheckpointRef(tl *vclock.Timeline, id uint64, removeFiles bool) error {
	db.ckptMu.Lock()
	ref, ok := db.ckpts[id]
	if !ok {
		db.ckptMu.Unlock()
		return fmt.Errorf("engine: no such checkpoint %d", id)
	}
	delete(db.ckpts, id)
	db.ckptGaugesLocked()
	db.ckptMu.Unlock()

	if db.tracker != nil {
		db.tracker.Unpin(tl, ref.info.Tables...)
	}
	if removeFiles && ref.info.Dir != "" {
		for _, f := range ref.info.Files {
			db.fs.Remove(tl, ref.info.Dir+"/"+f.Name)
		}
	}
	if !db.closed.Load() {
		// Mop up primary files only the released pin was retaining.
		db.mu.Lock()
		db.deleteObsoleteFiles(tl)
		db.mu.Unlock()
	}
	return nil
}

// Checkpoints lists the live checkpoint references, oldest first.
func (db *DB) Checkpoints() []CheckpointInfo {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	out := make([]CheckpointInfo, 0, len(db.ckpts))
	for _, ref := range db.ckpts {
		out = append(out, ref.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ckptPins snapshots the pinned table and log numbers for a GC pass.
// Nil maps (the common no-checkpoint case) cost one mutex round trip.
func (db *DB) ckptPins() (tables, logs map[uint64]bool) {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	if len(db.ckpts) == 0 {
		return nil, nil
	}
	tables = make(map[uint64]bool)
	logs = make(map[uint64]bool)
	for _, ref := range db.ckpts {
		for num := range ref.tables {
			tables[num] = true
		}
		for num := range ref.logs {
			logs[num] = true
		}
	}
	return tables, logs
}

// ckptGaugesLocked recomputes the checkpoint gauges; caller holds
// ckptMu.
func (db *DB) ckptGaugesLocked() {
	var files, bytes int64
	seen := make(map[uint64]bool)
	for _, ref := range db.ckpts {
		for num, size := range ref.tables {
			if !seen[num] {
				seen[num] = true
				files++
				bytes += size
			}
		}
		for num, size := range ref.logs {
			if !seen[num] {
				seen[num] = true
				files++
				bytes += size
			}
		}
	}
	db.m.ckptActive.Set(int64(len(db.ckpts)))
	db.m.ckptPinnedFiles.Set(files)
	db.m.ckptRetainedBytes.Set(bytes)
}

// Backup incrementally exports the current state under dir: only
// tables the destination lacks are hard-linked, stale files are
// pruned, and the manifest + WAL prefix are rewritten. The capture
// holds a transient pin for the duration of the export; afterward the
// destination's hard links keep the data alive on their own, so a
// backup — unlike a checkpoint — retains nothing on the primary.
func (db *DB) Backup(tl *vclock.Timeline, dir string) (*BackupInfo, error) {
	if dir == "" || strings.HasSuffix(dir, "/") {
		return nil, fmt.Errorf("engine: invalid backup directory %q", dir)
	}
	cut, ref, err := db.captureCheckpoint(tl)
	if err != nil {
		return nil, err
	}
	res, err := db.exportCheckpoint(tl, cut, dir)
	// Transient pin: drop it whether or not the export succeeded. On
	// failure the destination keeps whatever state it had plus any new
	// links — a restore runs Repair, which salvages either way.
	db.releaseCheckpointRef(tl, ref.info.ID, false)
	if err != nil {
		return nil, err
	}
	info := &BackupInfo{
		Dir:          dir,
		WALNumber:    cut.walNum,
		WALOff:       cut.walCut,
		LastSeq:      cut.lastSeq,
		At:           cut.at,
		TablesLinked: res.linked,
		TablesReused: res.reused,
		Pruned:       res.pruned,
		CopiedBytes:  res.copied,
	}
	db.ckptMu.Lock()
	db.lastBackup = info
	db.ckptMu.Unlock()
	db.m.backups.Inc()
	db.m.ckptLinkedFiles.Add(int64(res.linked))
	db.m.ckptCopiedBytes.Add(res.copied)
	db.m.lastBackupSeq.Set(int64(cut.lastSeq))
	db.m.lastBackupAt.Set(int64(cut.at))
	return info, nil
}

// LastBackup reports the most recent successful Backup, or nil.
func (db *DB) LastBackup() *BackupInfo {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	return db.lastBackup
}

// RestoreBackup materializes the store exported under srcDir as a
// fresh store under dstDir ("" restores into the filesystem root) and
// validates it by funneling through Repair — the restore ≡ repair
// invariant: a restored backup passes exactly the checks a repaired
// store does, including full-table scans of every kept SSTable. The
// source is never mutated (Repair renames and writes only destination
// names; linked table bytes are immutable). Open the result with
// vfs.NewPrefix(fs, dstDir).
func RestoreBackup(tl *vclock.Timeline, fs vfs.FS, srcDir, dstDir string, opts Options) (*RepairReport, error) {
	srcPrefix := srcDir + "/"
	n := 0
	for _, name := range fs.List(tl) {
		if !strings.HasPrefix(name, srcPrefix) {
			continue
		}
		rest := name[len(srcPrefix):]
		if _, _, ok := ParseFileName(rest); !ok {
			continue
		}
		dst := rest
		if dstDir != "" {
			dst = dstDir + "/" + rest
		}
		if _, err := vfs.LinkOrCopy(tl, fs, name, dst); err != nil {
			return nil, err
		}
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("engine: restore: no store files under %q", srcDir)
	}
	target := fs
	if dstDir != "" {
		target = vfs.NewPrefix(fs, dstDir)
	}
	return Repair(tl, target, opts)
}

// ApplyReplicated applies one replicated WAL record — a primary's
// whole commit group, sequence numbers included — to a follower.
// The record is re-logged verbatim into the follower's own WAL (so
// follower recovery replays the same bytes) and applied to the
// memtable with the primary's sequences; records at or below the
// follower's lastSeq (bootstrap overlap, retried tails) are skipped
// idempotently. The follower runs its own flushes and compactions;
// only the logical write stream is replicated.
func (db *DB) ApplyReplicated(tl *vclock.Timeline, rec []byte) error {
	b, err := decodeBatch(rec)
	if err != nil {
		return err
	}
	if b.Count() == 0 {
		return nil
	}
	if db.closed.Load() {
		return ErrClosed
	}
	if db.readOnly.Load() {
		return fmt.Errorf("%w: %v", ErrReadOnly, db.BackgroundError())
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	if db.bgPermanent != nil {
		return fmt.Errorf("%w: %v", ErrReadOnly, db.bgPermanent)
	}
	end := b.Seq() + keys.SeqNum(b.Count()) - 1
	if end <= db.lastSeq {
		db.m.replicaSkipped.Inc()
		return nil
	}
	if err := db.makeRoomForWrite(tl, nil); err != nil {
		return err
	}
	if err := db.wal.AddRecord(tl, b.rep); err != nil {
		db.walPoisoned = true
		db.walFailures++
		if db.walFailures > bgMaxRetries {
			db.setPermanentLocked(tl, fmt.Errorf("engine: replica wal append: %w", err))
		}
		return err
	}
	db.walFailures = 0
	if err := b.applyTo(db.mem); err != nil {
		return err
	}
	db.lastSeq = end
	db.visibleSeq.Store(end)
	tl.Advance(db.opts.WriteCPU * vclock.Duration(b.Count()))
	db.m.replicaApplied.Inc()
	db.m.replicaBytes.Add(int64(len(rec)))
	db.m.replicaSeq.Set(int64(end))
	if db.tracker != nil {
		db.tracker.MaybePoll(tl)
	}
	return nil
}

// VisibleSeq reports the newest sequence number readers may observe —
// the follower-lag numerator (primary VisibleSeq − replica VisibleSeq).
func (db *DB) VisibleSeq() keys.SeqNum { return db.visibleSeq.Load() }

// WALPosition reports the active write-ahead log and its size at a
// whole-record boundary — the primary-side replication cut a follower
// tails toward.
func (db *DB) WALPosition() (num uint64, off int64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.walFile == nil {
		return db.walNumber, 0
	}
	return db.walNumber, db.walFile.Size()
}
