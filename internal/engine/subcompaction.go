package engine

// Parallel key-range subcompactions with a pipelined read→merge→write
// engine (Options.CompactionSubcompactions, async mode only).
//
// A picked compaction's user-key range is split into disjoint shards
// at input-file boundaries (version.Compaction.SubcompactionBoundaries
// — RocksDB's scheme), so all versions of a user key stay in one shard
// and the per-user-key retention logic needs no cross-shard state.
// Each shard runs its own three-stage pipeline:
//
//	read stage   one prefetch goroutine per input table walks the
//	             index and streams parsed data blocks (zero-copy
//	             page-cache views where the filesystem supports
//	             vfs.ViewReader, pooled buffers otherwise) over a
//	             bounded channel, charging block loads to the shard's
//	             read timeline;
//	merge stage  the shard goroutine k-way-merges the prefetched
//	             streams, applies the version-retention rules and
//	             feeds surviving entries to the table builder,
//	             charging CompactionCPU to the merge timeline;
//	write stage  a writer goroutine drains the builder's output
//	             through pipeFile — appends and fsyncs execute there,
//	             on the shard's write timeline, so simulated write
//	             latency overlaps merge CPU and block reads.
//
// All shards' outputs are installed by doCompaction in a SINGLE
// VersionEdit followed by a single tracker registration, so the NobLSM
// predecessor/successor set is always complete: a crash anywhere
// before the edit leaves the old version (and every input table)
// intact, never a partial successor set.
//
// The default synchronous engine never enters this path — the
// deterministic virtual-time figures depend on the sequential merge's
// exact event order.

import (
	"sync"

	"noblsm/internal/block"
	"noblsm/internal/iterator"
	"noblsm/internal/keys"
	"noblsm/internal/obs"
	"noblsm/internal/sstable"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
	"noblsm/internal/vfs"
)

// Bounded-channel depths of the pipeline stages. Two in-flight blocks
// per input keep the merge fed without holding a table's worth of
// pooled buffers; the write queue is deeper because appends are small
// and bursty (every ~4 KiB block plus the table epilogue).
const (
	prefetchDepth   = 2
	writeStageDepth = 16
)

// maxSubcompactions caps Options.CompactionSubcompactions; with three
// trace rows per shard the pipeline tids stay below obs.TidJournal.
const maxSubcompactions = 16

// dropState tracks per-user-key version retention across one merge
// stream: within one user key (versions arrive newest first) an entry
// is dropped if a newer one is already visible at the oldest live
// snapshot; tombstones at or below that snapshot are dropped when no
// deeper level can hold the key. Identical to the sequential merge's
// inline logic — shard splitting at user-key granularity is what makes
// the per-shard state sufficient.
type dropState struct {
	smallestSnapshot keys.SeqNum
	lastUserKey      []byte
	haveLast         bool
	lastSeqForKey    keys.SeqNum
}

func newDropState(snap keys.SeqNum) dropState {
	return dropState{smallestSnapshot: snap, lastSeqForKey: keys.MaxSeqNum}
}

func (d *dropState) drop(db *DB, below int, ukey []byte, seq keys.SeqNum, kind keys.Kind) bool {
	if !d.haveLast || keys.CompareUser(ukey, d.lastUserKey) != 0 {
		d.lastUserKey = append(d.lastUserKey[:0], ukey...)
		d.haveLast = true
		d.lastSeqForKey = keys.MaxSeqNum
	}
	drop := false
	if d.lastSeqForKey <= d.smallestSnapshot {
		// A newer version of this key is visible at every live
		// snapshot: this one is shadowed.
		drop = true
	} else if kind == keys.KindDelete && seq <= d.smallestSnapshot &&
		db.isBaseLevelForKey(below, ukey) {
		// Tombstone with nothing underneath and no snapshot that
		// could still need it.
		drop = true
	}
	d.lastSeqForKey = seq
	return drop
}

// fetchedBlock is one prefetched, parsed data block in flight between
// the read and merge stages. owned is the pooled buffer backing it
// (nil for zero-copy views), recycled by whoever consumes the block.
type fetchedBlock struct {
	br    *block.Reader
	owned []byte
}

// prefetchBlocks is the read stage for one input table: it pulls
// blocks from src on its own goroutine and hands them to the merge
// stage over a bounded channel. Closing cancel releases the stage
// early; the terminal error (nil on clean EOF) is delivered on the
// returned error channel just before the block channel closes.
func prefetchBlocks(src *sstable.BlockSource, cancel <-chan struct{}) (<-chan fetchedBlock, <-chan error) {
	ch := make(chan fetchedBlock, prefetchDepth)
	errCh := make(chan error, 1)
	go func() {
		defer close(ch)
		for {
			br, owned, ok := src.Next()
			if !ok {
				errCh <- src.Err()
				return
			}
			select {
			case ch <- fetchedBlock{br: br, owned: owned}:
			case <-cancel:
				if owned != nil {
					sstable.ReleaseBlockBuf(owned)
				}
				errCh <- nil
				return
			}
		}
	}()
	return ch, errCh
}

// prefetchIter adapts one prefetched block stream to
// iterator.Iterator for the shard's k-way merge. It is only ever
// driven by First/Next (the shard seeds the position via the seek
// key, applied inside the first block).
type prefetchIter struct {
	ch    <-chan fetchedBlock
	errCh <-chan error
	seek  []byte
	cur   *block.Iter
	owned []byte
	err   error
}

func (it *prefetchIter) nextBlock() bool {
	if it.owned != nil {
		sstable.ReleaseBlockBuf(it.owned)
		it.owned = nil
	}
	fb, ok := <-it.ch
	if !ok {
		it.cur = nil
		if it.err == nil {
			it.err = <-it.errCh
		}
		return false
	}
	it.cur = fb.br.NewIter()
	it.owned = fb.owned
	return true
}

// First implements iterator.Iterator.
func (it *prefetchIter) First() {
	for it.nextBlock() {
		if it.seek != nil {
			it.cur.Seek(it.seek)
			it.seek = nil
		} else {
			it.cur.First()
		}
		if it.cur.Valid() {
			return
		}
	}
}

// Seek implements iterator.Iterator; the shard merge never uses it.
func (it *prefetchIter) Seek([]byte) {
	panic("prefetchIter: Seek is not supported; position is set by the shard bounds")
}

// Next implements iterator.Iterator.
func (it *prefetchIter) Next() {
	if it.cur == nil || !it.cur.Valid() {
		return
	}
	it.cur.Next()
	for !it.cur.Valid() {
		if !it.nextBlock() {
			return
		}
		it.cur.First()
	}
}

// Valid implements iterator.Iterator.
func (it *prefetchIter) Valid() bool { return it.cur != nil && it.cur.Valid() }

// Key implements iterator.Iterator.
func (it *prefetchIter) Key() []byte { return it.cur.Key() }

// Value implements iterator.Iterator.
func (it *prefetchIter) Value() []byte { return it.cur.Value() }

// Err implements iterator.Iterator.
func (it *prefetchIter) Err() error {
	if it.err != nil {
		return it.err
	}
	if it.cur != nil {
		return it.cur.Err()
	}
	return nil
}

// release recycles the iterator's current block buffer.
func (it *prefetchIter) release() {
	if it.owned != nil {
		sstable.ReleaseBlockBuf(it.owned)
		it.owned = nil
	}
}

var _ iterator.Iterator = (*prefetchIter)(nil)

// appendBufPool recycles the write stage's copies of builder output
// (one per data block plus the table epilogue).
var appendBufPool sync.Pool

func getAppendBuf(p []byte) []byte {
	if v := appendBufPool.Get(); v != nil {
		if b := *(v.(*[]byte)); cap(b) >= len(p) {
			b = b[:len(p)]
			copy(b, p)
			return b
		}
	}
	return append([]byte(nil), p...)
}

func putAppendBuf(b []byte) {
	b = b[:cap(b)]
	appendBufPool.Put(&b)
}

// pipeOp is one queued write-stage operation: an owned append buffer,
// or a sync barrier for the file the durability policy targets.
type pipeOp struct {
	f    vfs.File
	buf  []byte
	sync bool
}

// pipeWriter is the write stage of one shard: a single goroutine
// executing queued appends and fsyncs in order on the shard's write
// timeline. Errors are sticky; after the first one the stage keeps
// draining (recycling buffers) but performs no further I/O.
type pipeWriter struct {
	tl *vclock.Timeline
	ch chan pipeOp
	wg sync.WaitGroup

	mu  sync.Mutex
	err error
}

func newPipeWriter(tl *vclock.Timeline) *pipeWriter {
	pw := &pipeWriter{tl: tl, ch: make(chan pipeOp, writeStageDepth)}
	pw.wg.Add(1)
	go pw.run()
	return pw
}

func (pw *pipeWriter) run() {
	defer pw.wg.Done()
	for op := range pw.ch {
		err := pw.firstErr()
		switch {
		case op.buf != nil:
			if err == nil {
				err = op.f.Append(pw.tl, op.buf)
			}
			putAppendBuf(op.buf)
		case op.sync:
			if err == nil {
				err = op.f.Sync(pw.tl)
			}
		}
		if err != nil {
			pw.setErr(err)
		}
	}
}

func (pw *pipeWriter) setErr(err error) {
	pw.mu.Lock()
	if pw.err == nil {
		pw.err = err
	}
	pw.mu.Unlock()
}

func (pw *pipeWriter) firstErr() error {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	return pw.err
}

// finish closes the queue, waits for it to drain and reports the
// stage's first error.
func (pw *pipeWriter) finish() error {
	close(pw.ch)
	pw.wg.Wait()
	return pw.firstErr()
}

// pipeFile is the vfs.File the shard's table builder writes through:
// Append and Sync are queued to the write stage (charged to the write
// timeline), while Size is tracked locally so the per-entry cut check
// never takes the filesystem lock. Close and ReadAt act on the real
// file directly — the engine only uses them after the stage drained.
type pipeFile struct {
	real vfs.File
	pw   *pipeWriter
	size int64
}

func (p *pipeFile) Append(_ *vclock.Timeline, b []byte) error {
	if err := p.pw.firstErr(); err != nil {
		return err
	}
	p.size += int64(len(b))
	p.pw.ch <- pipeOp{f: p.real, buf: getAppendBuf(b)}
	return nil
}

// Sync queues an fsync barrier behind the file's pending appends; an
// error surfaces at the stage's finish (the sharded path re-checks
// before the compaction installs anything).
func (p *pipeFile) Sync(_ *vclock.Timeline) error {
	if err := p.pw.firstErr(); err != nil {
		return err
	}
	p.pw.ch <- pipeOp{f: p.real, sync: true}
	return nil
}

func (p *pipeFile) ReadAt(tl *vclock.Timeline, b []byte, off int64) (int, error) {
	return p.real.ReadAt(tl, b, off)
}

func (p *pipeFile) Close(tl *vclock.Timeline) error { return p.real.Close(tl) }

func (p *pipeFile) Size() int64 { return p.size }

func (p *pipeFile) Ino() int64 { return p.real.Ino() }

var _ vfs.File = (*pipeFile)(nil)

// shardResult is one subcompaction's outcome.
type shardResult struct {
	files []*outputFile
	end   vclock.Time
	err   error
}

// runSubcompactions executes the sharded merge for c: one pipeline per
// key-range shard, all running concurrently. Called WITHOUT db.mu (the
// background worker released it); version state read here (db.current
// via isBaseLevelForKey) is stable because version edits are
// serialized while the worker is active. On success the returned
// outputs are ordered by shard — ascending, disjoint key ranges. bg
// advances to the virtual completion of the slowest shard stage.
func (db *DB) runSubcompactions(bg *vclock.Timeline, c *version.Compaction, boundaries [][]byte, smallestSnapshot keys.SeqNum) ([]*outputFile, error) {
	n := len(boundaries) + 1
	start := bg.Now()
	db.m.activeSubcompactions.Set(int64(n))
	defer db.m.activeSubcompactions.Set(0)
	results := make([]shardResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		var lo, hi []byte
		if i > 0 {
			lo = boundaries[i-1]
		}
		if i < len(boundaries) {
			hi = boundaries[i]
		}
		wg.Add(1)
		go func(i int, lo, hi []byte) {
			defer wg.Done()
			results[i] = db.runShard(c, i, lo, hi, start, smallestSnapshot)
		}(i, lo, hi)
	}
	wg.Wait()

	var outputs []*outputFile
	var firstErr error
	end := start
	for _, res := range results {
		if res.err != nil && firstErr == nil {
			firstErr = res.err
		}
		if res.end > end {
			end = res.end
		}
		outputs = append(outputs, res.files...)
	}
	bg.WaitUntil(end)
	db.m.subcompactions.Observe(int64(n))
	if firstErr != nil {
		// Abort: close and unlink whatever the shards produced. The
		// compaction installs nothing, so none of these files are
		// referenced anywhere.
		for _, of := range outputs {
			of.f.Close(bg)
			db.fs.Remove(bg, TableName(of.meta.Number))
			db.tcache.evict(bg, of.meta.Number)
		}
		return nil, firstErr
	}
	return outputs, nil
}

// runShard executes one subcompaction over user keys in [lo, hi)
// (nil = unbounded) through the three-stage pipeline.
func (db *DB) runShard(c *version.Compaction, idx int, lo, hi []byte, startAt vclock.Time, smallestSnapshot keys.SeqNum) shardResult {
	readTl := vclock.NewTimeline(startAt)
	mergeTl := vclock.NewTimeline(startAt)
	writeTl := vclock.NewTimeline(startAt)

	var loIkey, hiIkey []byte
	if lo != nil {
		loIkey = keys.MakeInternalKey(nil, lo, keys.MaxSeqNum, keys.KindSeek)
	}
	if hi != nil {
		hiIkey = keys.MakeInternalKey(nil, hi, keys.MaxSeqNum, keys.KindSeek)
	}

	cancel := make(chan struct{})
	var children []iterator.Iterator
	var chans []<-chan fetchedBlock
	finish := func(err error) shardResult {
		close(cancel)
		for _, child := range children {
			child.(*prefetchIter).release()
		}
		// Unblock and retire the prefetch goroutines, recycling any
		// blocks still in flight.
		for _, ch := range chans {
			for fb := range ch {
				if fb.owned != nil {
					sstable.ReleaseBlockBuf(fb.owned)
				}
			}
		}
		end := readTl.Now()
		if mergeTl.Now() > end {
			end = mergeTl.Now()
		}
		if writeTl.Now() > end {
			end = writeTl.Now()
		}
		return shardResult{end: end, err: err}
	}

	pw := newPipeWriter(writeTl)
	out := &compactionOutput{db: db, bg: writeTl, targetLevel: c.Level + 1,
		create: func(tl *vclock.Timeline, name string) (vfs.File, error) {
			f, err := db.fs.Create(tl, name)
			if err != nil {
				return nil, err
			}
			return &pipeFile{real: f, pw: pw}, nil
		}}

	for _, fm := range c.AllInputs() {
		r, err := db.tcache.open(readTl, fm)
		if err != nil {
			res := finish(err)
			pw.finish()
			return res
		}
		ch, errCh := prefetchBlocks(r.NewBlockSource(readTl, loIkey, hiIkey), cancel)
		chans = append(chans, ch)
		children = append(children, &prefetchIter{ch: ch, errCh: errCh, seek: loIkey})
	}

	ds := newDropState(smallestSnapshot)
	merged := iterator.NewMerging(children...)
	var mergeErr error
	for merged.First(); merged.Valid(); merged.Next() {
		mergeTl.Advance(db.opts.CompactionCPU)
		ikey := merged.Key()
		ukey, seq, kind, ok := keys.ParseInternalKey(ikey)
		if !ok {
			continue
		}
		if hi != nil && keys.CompareUser(ukey, hi) >= 0 {
			// The merge emits in key order: everything from here on
			// belongs to the next shard.
			break
		}
		if ds.drop(db, c.Level+1, ukey, seq, kind) {
			continue
		}
		if err := out.add(ikey, merged.Value()); err != nil {
			mergeErr = err
			break
		}
	}
	if mergeErr == nil {
		mergeErr = merged.Err()
	}
	if mergeErr == nil {
		mergeErr = out.finish()
	}

	res := finish(mergeErr)
	if err := pw.finish(); err != nil && res.err == nil {
		res.err = err
	}
	res.files = out.files
	if res.err == nil && db.trace != nil {
		tid := obs.TidSubcompactionBase + idx*3
		db.trace.Span(tid, "compaction", "compaction.shard.read", startAt, readTl.Now(),
			obs.KV{K: "shard", V: idx})
		db.trace.Span(tid+1, "compaction", "compaction.shard.merge", startAt, mergeTl.Now(),
			obs.KV{K: "shard", V: idx}, obs.KV{K: "outputs", V: len(out.files)})
		db.trace.Span(tid+2, "compaction", "compaction.shard.write", startAt, writeTl.Now(),
			obs.KV{K: "shard", V: idx})
	}
	return res
}
