package engine

import (
	"noblsm/internal/iterator"
	"noblsm/internal/keys"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
)

// levelIter is LevelDB's concatenating iterator over one sorted,
// non-overlapping level: it walks the level's files in key order and
// opens each table lazily on first touch, so constructing an iterator
// over a large store does not open (or charge for) every file.
type levelIter struct {
	db    *DB
	tl    *vclock.Timeline
	files []*version.FileMeta
	idx   int
	cur   *tableIterHandle
	err   error
}

// tableIterHandle pairs a table iterator with its file for reuse.
type tableIterHandle struct {
	it iterator.Iterator
}

func newLevelIter(db *DB, tl *vclock.Timeline, files []*version.FileMeta) *levelIter {
	return &levelIter{db: db, tl: tl, files: files, idx: -1}
}

// openIdx opens the table at l.idx; false on error or out of range.
func (l *levelIter) openIdx() bool {
	l.cur = nil
	if l.idx < 0 || l.idx >= len(l.files) {
		return false
	}
	r, err := l.db.tcache.open(l.tl, l.files[l.idx])
	if err != nil {
		l.err = err
		return false
	}
	l.cur = &tableIterHandle{it: r.NewIterator(l.tl)}
	return true
}

// First implements iterator.Iterator.
func (l *levelIter) First() {
	l.idx = 0
	for l.idx < len(l.files) {
		if !l.openIdx() {
			return
		}
		l.cur.it.First()
		if l.cur.it.Valid() {
			return
		}
		l.idx++
	}
	l.cur = nil
}

// Seek implements iterator.Iterator.
func (l *levelIter) Seek(target []byte) {
	// Binary search for the first file whose largest key is >= target.
	tu := keys.UserKey(target)
	lo, hi := 0, len(l.files)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys.CompareUser(l.files[mid].LargestUser(), tu) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	l.idx = lo
	seekInFile := true
	for l.idx < len(l.files) {
		if !l.openIdx() {
			return
		}
		if seekInFile {
			l.cur.it.Seek(target)
			seekInFile = false
		} else {
			l.cur.it.First()
		}
		if l.cur.it.Valid() {
			return
		}
		l.idx++
	}
	l.cur = nil
}

// Next implements iterator.Iterator.
func (l *levelIter) Next() {
	if l.cur == nil {
		return
	}
	l.cur.it.Next()
	for !l.cur.it.Valid() {
		l.idx++
		if l.idx >= len(l.files) {
			l.cur = nil
			return
		}
		if !l.openIdx() {
			return
		}
		l.cur.it.First()
	}
}

// Valid implements iterator.Iterator.
func (l *levelIter) Valid() bool { return l.cur != nil && l.cur.it.Valid() }

// Key implements iterator.Iterator.
func (l *levelIter) Key() []byte { return l.cur.it.Key() }

// Value implements iterator.Iterator.
func (l *levelIter) Value() []byte { return l.cur.it.Value() }

// Err implements iterator.Iterator.
func (l *levelIter) Err() error {
	if l.err != nil {
		return l.err
	}
	if l.cur != nil {
		return l.cur.it.Err()
	}
	return nil
}

var _ iterator.Iterator = (*levelIter)(nil)
