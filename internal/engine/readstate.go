package engine

// A readState is an atomically published {memtable, immutable
// memtable, version} triple: the engine's read snapshot. Get and iterators acquire the current
// readState (a refcount under a leaf mutex, never DB.mu), read
// through it lock-free — the memtable is a single-writer/multi-reader
// skiplist and versions are immutable once built — and release it
// when done. Writers publish a fresh readState whenever the memtable
// rotates or a version edit installs (logAndApply); obsolete-file
// deletion unions the live tables of every still-referenced
// readState so a table cannot be unlinked while a pinned reader can
// still probe it.
//
// Lock order: DB.mu → DB.rsMu. Readers take rsMu alone (never while
// holding it acquire DB.mu); writers hold DB.mu when publishing.

import (
	"noblsm/internal/memtable"
	"noblsm/internal/version"
)

type readState struct {
	mem *memtable.MemTable
	// imm is the parked immutable memtable awaiting its background
	// flush (Options.AsyncCompaction); nil in synchronous mode, where
	// rotation and flush are one atomic step under db.mu.
	imm *memtable.MemTable
	v   *version.Version
	// refs and live are guarded by DB.rsMu. live marks the currently
	// published readState; a superseded one is forgotten when its
	// last reference drops.
	refs int
	live bool
}

// publishReadState installs the current {db.mem, db.imm, db.current}
// triple as the read snapshot. Callers hold db.mu.
func (db *DB) publishReadState() {
	db.rsMu.Lock()
	if db.rs != nil {
		db.rs.live = false
		if db.rs.refs == 0 {
			delete(db.readStates, db.rs)
		}
	}
	rs := &readState{mem: db.mem, imm: db.imm, v: db.current, live: true}
	db.rs = rs
	db.readStates[rs] = struct{}{}
	db.rsMu.Unlock()
	// Every L0/imm change flows through here: refresh the admission
	// governor's debt signal on the same edge.
	db.updateGovernorDebt()
}

// acquireReadState pins and returns the current read snapshot.
func (db *DB) acquireReadState() *readState {
	db.rsMu.Lock()
	rs := db.rs
	rs.refs++
	db.rsMu.Unlock()
	return rs
}

// releaseReadState unpins rs, forgetting it once superseded and
// unreferenced.
func (db *DB) releaseReadState(rs *readState) {
	db.rsMu.Lock()
	rs.refs--
	if rs.refs == 0 && !rs.live {
		delete(db.readStates, rs)
	}
	db.rsMu.Unlock()
}

// pinnedLiveFiles adds the live tables of every readState that still
// references a superseded version into live (the current version's
// set). Called with db.mu held, from deleteObsoleteFiles.
func (db *DB) pinnedLiveFiles(live map[uint64]bool) {
	db.rsMu.Lock()
	for rs := range db.readStates {
		if rs.v == db.current {
			continue
		}
		for num := range rs.v.LiveFiles() {
			live[num] = true
		}
	}
	db.rsMu.Unlock()
}
