package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"noblsm/internal/ext4"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
)

// shardedOpts is smallOpts tuned so a randomized workload produces
// many multi-file majors for the sharded pipeline to chew on.
func shardedOpts(mode SyncMode, shards int) Options {
	opts := smallOpts(mode)
	opts.AsyncCompaction = true
	opts.CompactionSubcompactions = shards
	return opts
}

// applyRandomWorkload drives the same deterministic mix of puts,
// overwrites and deletes into db, returning the expected final state
// (nil value = tombstone).
func applyRandomWorkload(t *testing.T, db *DB, tl *vclock.Timeline, seed int64, ops int) map[string][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	expected := make(map[string][]byte)
	for i := 0; i < ops; i++ {
		k := fmt.Sprintf("key-%05d", rng.Intn(ops/4))
		if rng.Intn(10) == 0 {
			if err := db.Delete(tl, []byte(k)); err != nil {
				t.Fatalf("delete %q: %v", k, err)
			}
			expected[k] = nil
			continue
		}
		v := fmt.Sprintf("%s=val-%07d-%s", k, i, bytes.Repeat([]byte{'x'}, 40+rng.Intn(80)))
		if err := db.Put(tl, []byte(k), []byte(v)); err != nil {
			t.Fatalf("put %q: %v", k, err)
		}
		expected[k] = []byte(v)
	}
	return expected
}

// scanAll drains a full iterator into ordered key/value pairs.
func scanAll(t *testing.T, db *DB, tl *vclock.Timeline) (ks, vs [][]byte) {
	t.Helper()
	it, err := db.NewIterator(tl)
	if err != nil {
		t.Fatal(err)
	}
	for it.First(); it.Valid(); it.Next() {
		ks = append(ks, append([]byte(nil), it.Key()...))
		vs = append(vs, append([]byte(nil), it.Value()...))
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return ks, vs
}

// TestCompactionSubcompactionShards runs one randomized workload
// through the sharded async engine and through the sequential default,
// then requires (1) the merged keyspaces to be identical, (2) every
// expected key to read back exactly, (3) no user key to straddle two
// files of a sorted level — the boundary-files hazard sharding must
// not reintroduce — and (4) the shards-per-major histogram to prove
// subcompactions actually engaged.
func TestCompactionSubcompactionShards(t *testing.T) {
	const seed, ops = 424242, 6000

	tlSharded := vclock.NewTimeline(0)
	sharded, err := Open(tlSharded, ext4.New(smallFSConfig(), smallDevice()), shardedOpts(SyncAll, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close(tlSharded)
	expected := applyRandomWorkload(t, sharded, tlSharded, seed, ops)

	tlRef := vclock.NewTimeline(0)
	ref, err := Open(tlRef, ext4.New(smallFSConfig(), smallDevice()), smallOpts(SyncAll))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close(tlRef)
	applyRandomWorkload(t, ref, tlRef, seed, ops)

	for _, db := range []*DB{sharded, ref} {
		tl := tlSharded
		if db == ref {
			tl = tlRef
		}
		if err := db.CompactRange(tl, nil, nil); err != nil {
			t.Fatal(err)
		}
	}

	for k, want := range expected {
		got, err := sharded.Get(tlSharded, []byte(k))
		if want == nil {
			if err != ErrNotFound {
				t.Fatalf("deleted key %q: got %q, %v; want ErrNotFound", k, got, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("get %q: %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("key %q: got %q want %q", k, got, want)
		}
	}

	ksS, vsS := scanAll(t, sharded, tlSharded)
	ksR, vsR := scanAll(t, ref, tlRef)
	if len(ksS) != len(ksR) {
		t.Fatalf("sharded scan has %d keys, sequential reference has %d", len(ksS), len(ksR))
	}
	for i := range ksS {
		if !bytes.Equal(ksS[i], ksR[i]) || !bytes.Equal(vsS[i], vsR[i]) {
			t.Fatalf("scan diverges at %d: sharded %q=%q, reference %q=%q",
				i, ksS[i], vsS[i], ksR[i], vsR[i])
		}
	}

	v := sharded.Version()
	for level := 1; level < version.NumLevels; level++ {
		files := v.Files[level]
		for i := 1; i < len(files); i++ {
			if bytes.Equal(files[i-1].LargestUser(), files[i].SmallestUser()) {
				t.Fatalf("level %d: user key %q straddles files %d and %d",
					level, files[i].SmallestUser(), files[i-1].Number, files[i].Number)
			}
		}
	}

	h := sharded.m.subcompactions.Snapshot()
	if h.Count() == 0 {
		t.Fatal("no sharded major ran: compaction.subcompactions histogram is empty")
	}
	if int64(h.Max()) < 2 {
		t.Fatalf("subcompactions never split a compaction: max shards %d", int64(h.Max()))
	}
	t.Logf("sharded majors: %d, max shards %d", h.Count(), int64(h.Max()))

	// The compaction metrics must be externally visible, not just
	// internal fields: DB.Property("noblsm.metrics") is the surface
	// dbbench and operators read.
	metrics, ok := sharded.Property("noblsm.metrics")
	if !ok {
		t.Fatal("noblsm.metrics property missing")
	}
	for _, name := range []string{
		"compaction.bytes_read", "compaction.bytes_written",
		"compaction.duration_us", "compaction.subcompactions",
	} {
		if !strings.Contains(metrics, name) {
			t.Fatalf("%s missing from noblsm.metrics:\n%s", name, metrics)
		}
	}
}

// TestCompactionShardedCrashAtomicity crashes a NobLSM store in the
// window between the last subcompaction finishing and the version
// edit being applied. Because all shards install through ONE edit and
// ONE tracker registration, recovery must expose either the complete
// pre-compaction state or the complete successor set — here the edit
// never landed, so none of the shard outputs may be referenced and
// every durably flushed key must still read back through the
// predecessor tables.
func TestCompactionShardedCrashAtomicity(t *testing.T) {
	cfg := smallFSConfig()
	opts := shardedOpts(SyncNobLSM, 4)
	opts.PollInterval = cfg.CommitInterval
	fs := ext4.New(cfg, smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatal(err)
	}

	var (
		crashOnce      sync.Once
		mu             sync.Mutex
		crashedOutputs []uint64
		outputInos     = make(map[uint64]int64)
	)
	db.mu.Lock()
	db.testBeforeInstall = func(outputs []uint64) {
		crashOnce.Do(func() {
			mu.Lock()
			crashedOutputs = append(crashedOutputs, outputs...)
			// Record each output's inode before crashing: recovery may
			// legitimately reuse the bare numbers for fresh files (the
			// crashed allocations were volatile), so identity checks
			// after recovery must be by inode.
			for _, num := range outputs {
				if f, err := fs.Open(tl, TableName(num)); err == nil {
					outputInos[num] = f.Ino()
					f.Close(tl)
				}
			}
			mu.Unlock()
			fs.Crash(tl.Now())
		})
	}
	db.mu.Unlock()

	// Drive the fill until a sharded compaction actually reaches the
	// install window (the hook fires and crashes the store): a fixed
	// op count makes the test hostage to background scheduling, which
	// was one of its historic flake modes.
	crashed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(crashedOutputs) > 0
	}
	written := make(map[string]string)
	for i := 0; i < 400000; i++ {
		if i%1000 == 0 && crashed() {
			break
		}
		k := fmt.Sprintf("key-%06d", i%5000)
		v := fmt.Sprintf("%s#%06d", k, i)
		if err := db.Put(tl, []byte(k), []byte(v)); err != nil {
			// The crash poisoned the engine mid-workload — expected.
			break
		}
		written[k] = v
	}
	db.Close(tl)
	mu.Lock()
	outputs := append([]uint64(nil), crashedOutputs...)
	mu.Unlock()
	if len(outputs) == 0 {
		t.Fatal("no sharded compaction reached the install window before the workload ended")
	}

	db2, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatalf("recovery after mid-compaction crash failed: %v", err)
	}
	defer db2.Close(tl)

	// No crash-window shard output may be referenced by the recovered
	// version. Recovery's own replay flushes can reuse the bare file
	// numbers (the crashed allocations never became durable), so the
	// check is by inode identity: a live file is only a violation if
	// it is the very file the interrupted compaction wrote.
	liveInos := make(map[uint64]int64)
	v := db2.Version()
	for level := range v.Files {
		for _, fm := range v.Files[level] {
			liveInos[fm.Number] = fm.Ino
		}
	}
	for _, num := range outputs {
		ino, ok := liveInos[num]
		if ok && ino == outputInos[num] {
			t.Fatalf("partial successor set recovered: shard output %06d (ino %d) is live "+
				"but its compaction's edit never committed", num, ino)
		}
	}

	// The interrupted compaction's inputs must still serve reads:
	// every key either reads back a value this workload wrote (the
	// newest durable version) or was lost with the unsynced WAL tail.
	found := 0
	for k := range written {
		v, err := db2.Get(tl, []byte(k))
		if err == ErrNotFound {
			continue
		}
		if err != nil {
			t.Fatalf("get %q after recovery: %v", k, err)
		}
		if !bytes.HasPrefix(v, []byte(k+"#")) {
			t.Fatalf("key %q recovered value %q of another key", k, v)
		}
		found++
	}
	if found == 0 {
		t.Fatal("recovery lost every key: predecessor tables did not survive the crash")
	}
	t.Logf("crash window outputs dropped: %v; %d/%d keys recovered", outputs, found, len(written))
}
