package engine

import (
	"fmt"
	"sync"

	"noblsm/internal/cache"
	"noblsm/internal/sstable"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
	"noblsm/internal/vfs"
)

// maxOpenTables bounds the table-handle cache (LevelDB's
// max_open_files). Each cached entry is one open sstable.Reader; the
// charge unit is an entry, not bytes.
const maxOpenTables = 4096

// tableCache keeps open sstable.Readers keyed by file number in a
// sharded LRU, sharing one block cache across all tables, like
// LevelDB's TableCache. Lookups of already-open tables are lock-free
// against each other (per-shard locking inside cache.Cache); only a
// miss serializes on mu while the table is opened, so concurrent
// readers cannot open the same table twice.
type tableCache struct {
	fs      vfs.FS
	opts    sstable.Options
	blocks  *cache.Cache
	cblocks *cache.Cache // warm compressed-payload tier; nil when disabled
	tables  *cache.Cache

	// mu serializes opens (cache misses) only.
	mu sync.Mutex
}

func newTableCache(fs vfs.FS, topts sstable.Options, blockCacheBytes, compressedCacheBytes int64) *tableCache {
	tc := &tableCache{
		fs:     fs,
		opts:   topts,
		blocks: cache.New(blockCacheBytes),
		tables: cache.NewSharded(maxOpenTables, 8),
	}
	if compressedCacheBytes > 0 {
		tc.cblocks = cache.New(compressedCacheBytes)
		tc.opts.CompressedCache = tc.cblocks
	}
	return tc
}

// open returns the reader for a live table, opening it on first use
// (footer + index + filter reads are charged to tl).
func (tc *tableCache) open(tl *vclock.Timeline, meta *version.FileMeta) (*sstable.Reader, error) {
	key := cache.Key{ID: meta.Number}
	if v, ok := tc.tables.Get(key); ok {
		return v.(*sstable.Reader), nil
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if v, ok := tc.tables.Get(key); ok {
		return v.(*sstable.Reader), nil
	}
	f, err := tc.fs.Open(tl, TableName(meta.Number))
	if err != nil {
		return nil, &tableError{num: meta.Number, err: fmt.Errorf("missing: %w", err)}
	}
	r, err := sstable.Open(tl, f, tc.opts, meta.Number, tc.blocks)
	if err != nil {
		return nil, &tableError{num: meta.Number, err: err}
	}
	tc.tables.Put(key, r, 1)
	return r, nil
}

// evict forgets a deleted table and its cached blocks, closing the
// open handle so the filesystem can reclaim the file's page cache.
// Only tables absent from every live and pinned version are evicted,
// so no reader can hold the handle concurrently.
func (tc *tableCache) evict(tl *vclock.Timeline, number uint64) {
	key := cache.Key{ID: number}
	if v, ok := tc.tables.Get(key); ok {
		v.(*sstable.Reader).Close(tl)
	}
	tc.tables.Evict(key)
	tc.blocks.EvictID(number)
	if tc.cblocks != nil {
		tc.cblocks.EvictID(number)
	}
}

// reset drops every handle (after a crash severs them).
func (tc *tableCache) reset() {
	tc.tables = cache.NewSharded(maxOpenTables, 8)
}
