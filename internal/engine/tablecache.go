package engine

import (
	"fmt"

	"noblsm/internal/cache"
	"noblsm/internal/sstable"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
	"noblsm/internal/vfs"
)

// tableCache keeps open sstable.Readers keyed by file number, sharing
// one block cache across all tables, like LevelDB's TableCache.
type tableCache struct {
	fs     vfs.FS
	opts   sstable.Options
	blocks *cache.Cache
	tables map[uint64]*sstable.Reader
}

func newTableCache(fs vfs.FS, topts sstable.Options, blockCacheBytes int64) *tableCache {
	return &tableCache{
		fs:     fs,
		opts:   topts,
		blocks: cache.New(blockCacheBytes),
		tables: make(map[uint64]*sstable.Reader),
	}
}

// open returns the reader for a live table, opening it on first use
// (footer + index + filter reads are charged to tl).
func (tc *tableCache) open(tl *vclock.Timeline, meta *version.FileMeta) (*sstable.Reader, error) {
	if r, ok := tc.tables[meta.Number]; ok {
		return r, nil
	}
	f, err := tc.fs.Open(tl, TableName(meta.Number))
	if err != nil {
		return nil, fmt.Errorf("engine: table %06d missing: %w", meta.Number, err)
	}
	r, err := sstable.Open(tl, f, tc.opts, meta.Number, tc.blocks)
	if err != nil {
		return nil, fmt.Errorf("engine: table %06d: %w", meta.Number, err)
	}
	tc.tables[meta.Number] = r
	return r, nil
}

// evict forgets a deleted table and its cached blocks.
func (tc *tableCache) evict(number uint64) {
	delete(tc.tables, number)
	tc.blocks.EvictID(number)
}

// reset drops every handle (after a crash severs them).
func (tc *tableCache) reset() {
	tc.tables = make(map[uint64]*sstable.Reader)
}
