package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"noblsm/internal/ext4"
	"noblsm/internal/keys"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
)

// TestHotColdTraceKey traces the placement of one key through the
// workload to locate where the per-level recency invariant breaks.
func TestHotColdTraceKey(t *testing.T) {
	const traceKey = "cold00003373"
	o := smallOpts(SyncAll)
	o.HotCold = true
	o.HotThreshold = 2
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, o)
	if err != nil {
		t.Fatal(err)
	}
	check := func(op int) {
		// Find the shallowest level holding the key and its seq; any
		// deeper level must not hold a newer seq.
		best := keys.SeqNum(0)
		bestLevel := -1
		seek := keys.MakeInternalKey(nil, []byte(traceKey), keys.MaxSeqNum, keys.KindSeek)
		for level := 0; level < version.NumLevels; level++ {
			var levelBest keys.SeqNum
			for _, fm := range db.Version().Files[level] {
				r, err := db.tcache.open(tl, fm)
				if err != nil {
					continue
				}
				ik, _, found, _ := r.Get(tl, seek)
				if !found {
					continue
				}
				uk, seq, _, _ := keys.ParseInternalKey(ik)
				if string(uk) != traceKey {
					continue
				}
				if seq > levelBest {
					levelBest = seq
				}
			}
			if levelBest > 0 && levelBest > best {
				if bestLevel >= 0 && level > bestLevel {
					t.Fatalf("op %d: L%d holds seq %d, newer than L%d's seq %d",
						op, level, levelBest, bestLevel, best)
				}
			}
			if levelBest > 0 && bestLevel < 0 {
				best, bestLevel = levelBest, level
			}
		}
	}
	rnd := rand.New(rand.NewSource(9))
	for i := 0; i < 20000; i++ {
		var k string
		if rnd.Intn(2) == 0 {
			k = fmt.Sprintf("hot%04d", rnd.Intn(50))
		} else {
			k = fmt.Sprintf("cold%08d", rnd.Intn(8000))
		}
		v := fmt.Sprintf("v%d-%s", i, string(bytes.Repeat([]byte("y"), 60)))
		if err := db.Put(tl, []byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		if k == traceKey || i%500 == 0 {
			check(i)
		}
	}
}
