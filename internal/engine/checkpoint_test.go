package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"noblsm/internal/ext4"
	"noblsm/internal/vclock"
	"noblsm/internal/vfs"
	"noblsm/internal/wal"
)

// dumpDB snapshots the full visible contents via an iterator.
func dumpDB(t testing.TB, db *DB, tl *vclock.Timeline) map[string]string {
	t.Helper()
	it, err := db.NewIterator(tl)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	out := make(map[string]string)
	for it.First(); it.Valid(); it.Next() {
		out[string(it.Key())] = string(it.Value())
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	return out
}

func diffDumps(t testing.TB, want, got map[string]string, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d keys, want %d", label, len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s: key %q = %q, want %q", label, k, got[k], v)
		}
	}
}

// restoreAndOpen restores a checkpoint/backup export and opens it.
func restoreAndOpen(t *testing.T, tl *vclock.Timeline, fs vfs.FS, src, dst string, opts Options) *DB {
	t.Helper()
	rep, err := RestoreBackup(tl, fs, src, dst, opts)
	if err != nil {
		t.Fatalf("restore %s: %v", src, err)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("restore %s quarantined %v", src, rep.Quarantined)
	}
	db, err := Open(tl, vfs.NewPrefix(fs, dst), opts)
	if err != nil {
		t.Fatalf("open restored %s: %v", dst, err)
	}
	return db
}

func TestCheckpointRestoreEquivalence(t *testing.T) {
	for _, mode := range []SyncMode{SyncAll, SyncNobLSM} {
		t.Run(mode.String(), func(t *testing.T) {
			db, fs, tl := newDB(t, mode)
			workload(t, db, tl, 1200, 0)
			want := dumpDB(t, db, tl)

			info, err := db.Checkpoint(tl, "ckpt")
			if err != nil {
				t.Fatal(err)
			}
			if len(info.Tables) == 0 {
				t.Fatal("checkpoint captured no tables")
			}
			// Keep mutating the primary: the checkpoint must not see it.
			workload(t, db, tl, 1200, 1)

			rdb := restoreAndOpen(t, tl, fs, "ckpt", "restore", smallOpts(mode))
			defer rdb.Close(tl)
			diffDumps(t, want, dumpDB(t, rdb, tl), "restored checkpoint")
			if got := rdb.VisibleSeq(); got != info.LastSeq {
				t.Fatalf("restored seq = %d, want %d", got, info.LastSeq)
			}
			if healed, err := rdb.ScrubTables(tl); err != nil || healed != 0 {
				t.Fatalf("restored scrub: healed=%d err=%v", healed, err)
			}
			if err := db.ReleaseCheckpoint(tl, info.ID); err != nil {
				t.Fatal(err)
			}
			// Release deletes the export but never the restored copy.
			if fs.Exists(tl, "ckpt/CURRENT") {
				t.Fatal("release left the export behind")
			}
			diffDumps(t, want, dumpDB(t, rdb, tl), "restored copy after release")
		})
	}
}

func TestCheckpointZeroCopy(t *testing.T) {
	db, fs, tl := newDB(t, SyncNobLSM)
	workload(t, db, tl, 1500, 0)
	info, err := db.Checkpoint(tl, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range info.Files {
		kind, _, ok := ParseFileName(f.Name)
		if !ok || kind != KindTable {
			continue
		}
		if !f.Linked {
			t.Fatalf("table %s was copied, not linked", f.Name)
		}
		src, err := fs.Open(tl, f.Name)
		if err != nil {
			t.Fatal(err)
		}
		dst, err := fs.Open(tl, "ckpt/"+f.Name)
		if err != nil {
			t.Fatal(err)
		}
		if src.Ino() != dst.Ino() {
			t.Fatalf("%s: export ino %d != primary ino %d (bytes duplicated)",
				f.Name, dst.Ino(), src.Ino())
		}
		src.Close(tl)
		dst.Close(tl)
	}
	if info.Linked == 0 {
		t.Fatal("no files exported zero-copy")
	}
	// A second checkpoint into the same directory must refuse.
	if _, err := db.Checkpoint(tl, "ckpt"); err == nil {
		t.Fatal("checkpoint into non-empty dir succeeded")
	}
	if err := db.ReleaseCheckpoint(tl, info.ID); err != nil {
		t.Fatal(err)
	}
	if err := db.ReleaseCheckpoint(tl, info.ID); err == nil {
		t.Fatal("double release succeeded")
	}
}

func TestBackupIncrementalRestore(t *testing.T) {
	db, fs, tl := newDB(t, SyncNobLSM)
	workload(t, db, tl, 2000, 0)
	b1, err := db.Backup(tl, "bk")
	if err != nil {
		t.Fatal(err)
	}
	if b1.TablesLinked == 0 || b1.TablesReused != 0 {
		t.Fatalf("first backup: linked=%d reused=%d", b1.TablesLinked, b1.TablesReused)
	}
	// A backup holds no reference: nothing stays pinned afterward.
	if n := len(db.Checkpoints()); n != 0 {
		t.Fatalf("backup left %d live checkpoint refs", n)
	}

	// Small delta: the second run must reuse the bulk of the tables.
	for i := 0; i < 100; i++ {
		mustPut(t, db, tl, fmt.Sprintf("key%013d", 9000000+i), "delta")
	}
	want := dumpDB(t, db, tl)
	b2, err := db.Backup(tl, "bk")
	if err != nil {
		t.Fatal(err)
	}
	if b2.TablesReused == 0 {
		t.Fatalf("incremental backup reused no tables (linked=%d)", b2.TablesLinked)
	}
	if b2.LastSeq <= b1.LastSeq {
		t.Fatalf("backup seq did not advance: %d -> %d", b1.LastSeq, b2.LastSeq)
	}
	if lb := db.LastBackup(); lb == nil || lb.LastSeq != b2.LastSeq {
		t.Fatalf("LastBackup = %+v, want seq %d", lb, b2.LastSeq)
	}

	rdb := restoreAndOpen(t, tl, fs, "bk", "bkrst", smallOpts(SyncNobLSM))
	defer rdb.Close(tl)
	diffDumps(t, want, dumpDB(t, rdb, tl), "restored incremental backup")
	if healed, err := rdb.ScrubTables(tl); err != nil || healed != 0 {
		t.Fatalf("restored scrub: healed=%d err=%v", healed, err)
	}
}

func TestApplyReplicatedFollowsPrimary(t *testing.T) {
	db, fs, tl := newDB(t, SyncNobLSM)
	workload(t, db, tl, 600, 0)
	info, err := db.Checkpoint(tl, "boot")
	if err != nil {
		t.Fatal(err)
	}
	rdb := restoreAndOpen(t, tl, fs, "boot", "replica", smallOpts(SyncNobLSM))
	defer rdb.Close(tl)
	if got := rdb.VisibleSeq(); got != info.LastSeq {
		t.Fatalf("bootstrapped replica seq = %d, want %d", got, info.LastSeq)
	}

	// Writes after the cut stay within one WAL (tiny delta).
	for i := 0; i < 60; i++ {
		mustPut(t, db, tl, fmt.Sprintf("key%013d", i), fmt.Sprintf("post-ckpt-%d", i))
	}
	num, off := db.WALPosition()
	if num != info.WALNumber {
		t.Fatalf("WAL rotated under the test: %d -> %d", info.WALNumber, num)
	}
	data, err := fs.ReadFile(tl, LogName(num))
	if err != nil {
		t.Fatal(err)
	}
	// Apply the whole log from offset zero: records at or before the
	// bootstrap cut must be skipped idempotently, the rest applied.
	for _, ri := range wal.ScanRecords(data[:off]) {
		if !ri.Valid {
			t.Fatalf("invalid record at %d in live WAL", ri.Off)
		}
		if err := rdb.ApplyReplicated(tl, ri.Payload); err != nil {
			t.Fatalf("apply at %d: %v", ri.Off, err)
		}
	}
	if got, want := rdb.VisibleSeq(), db.VisibleSeq(); got != want {
		t.Fatalf("replica seq = %d, primary %d", got, want)
	}
	diffDumps(t, dumpDB(t, db, tl), dumpDB(t, rdb, tl), "caught-up follower")
	if skipped := rdb.Registry().Counter("engine.replica.records_skipped").Value(); skipped == 0 {
		t.Fatal("bootstrap-overlap records were not skipped")
	}
	if err := db.ReleaseCheckpoint(tl, info.ID); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRetainsShadowPredecessors drives compactions past a
// checkpoint so captured tables are superseded, verifies the pin keeps
// them on disk (parked as deferred shadow predecessors once their
// successors commit), and verifies the release frees them.
func TestCheckpointRetainsShadowPredecessors(t *testing.T) {
	db, fs, tl := newDB(t, SyncNobLSM)
	workload(t, db, tl, 1500, 0)
	info, err := db.Checkpoint(tl, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 4; round++ {
		workload(t, db, tl, 1500, round)
	}
	// Drive journal commits and tracker polls until every dependency
	// the workload registered has resolved: resolved-but-pinned
	// predecessors are parked instead of deleted.
	ckptTables := make(map[uint64]bool, len(info.Tables))
	for _, n := range info.Tables {
		ckptTables[n] = true
	}
	deferred := 0
	for i := 0; i < 50; i++ {
		tl.Advance(200 * vclock.Millisecond)
		mustPut(t, db, tl, "tick", fmt.Sprintf("%d", i))
		db.Tracker().Poll(tl)
		deferred = 0
		for _, n := range db.Tracker().Inventory().Deferred {
			if ckptTables[n] {
				deferred++
			}
		}
		if deferred > 0 {
			break
		}
	}
	if deferred == 0 {
		t.Fatal("no checkpointed table was parked as a deferred predecessor")
	}
	live := db.Version().LiveFiles()
	superseded := 0
	for _, n := range info.Tables {
		if live[n] {
			continue
		}
		superseded++
		if !fs.Exists(tl, TableName(n)) {
			t.Fatalf("pinned superseded table %d deleted while checkpoint live", n)
		}
	}
	if superseded == 0 {
		t.Fatal("workload superseded no checkpointed tables")
	}
	if err := db.ReleaseCheckpoint(tl, info.ID); err != nil {
		t.Fatal(err)
	}
	// Releasing the last reference frees the retained predecessors.
	db.Tracker().Poll(tl)
	live = db.Version().LiveFiles()
	for _, n := range info.Tables {
		if !live[n] && !db.Tracker().Protected(n) && fs.Exists(tl, TableName(n)) {
			t.Fatalf("table %d still on disk after last release", n)
		}
	}
	if got := len(db.Tracker().Inventory().Deferred); got != 0 {
		t.Fatalf("%d deferred predecessors survived the release", got)
	}
}

// TestCheckpointConcurrentGC races checkpoints against a live writer
// with background flushes, compaction installs and async obsolete-file
// deletion. Every exported file must exist and every export must
// restore cleanly — a pinned file may never be lost to a concurrent
// deleteObsoleteAsync or compaction install (run under -race).
func TestCheckpointConcurrentGC(t *testing.T) {
	opts := smallOpts(SyncNobLSM)
	opts.AsyncCompaction = true
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	db, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wtl := vclock.NewTimeline(0)
		r := rand.New(rand.NewSource(7))
		val := make([]byte, 64)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for j := range val {
				val[j] = byte(i + j)
			}
			k := fmt.Sprintf("key%013d", r.Intn(4000))
			if err := db.Put(wtl, []byte(k), val); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
	}()
	ctl := vclock.NewTimeline(0)
	for round := 0; round < 12; round++ {
		dir := fmt.Sprintf("ckpt-%d", round)
		info, err := db.Checkpoint(ctl, dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range info.Files {
			if !fs.Exists(ctl, dir+"/"+f.Name) {
				t.Fatalf("round %d: exported %s missing", round, f.Name)
			}
		}
		if round%4 == 0 {
			rst := fmt.Sprintf("rst-%d", round)
			rep, err := RestoreBackup(ctl, fs, dir, rst, opts)
			if err != nil {
				t.Fatalf("round %d restore: %v", round, err)
			}
			if len(rep.Quarantined) != 0 {
				t.Fatalf("round %d restore quarantined %v", round, rep.Quarantined)
			}
		}
		if err := db.ReleaseCheckpoint(ctl, info.ID); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := db.Close(ctl); err != nil {
		t.Fatal(err)
	}
}
