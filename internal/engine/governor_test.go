package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"noblsm/internal/ext4"
	"noblsm/internal/obs"
	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
)

// pressureDevice is smallDevice with the write bandwidth squeezed so
// flushes genuinely fall behind a sustained overwrite — the regime the
// governor exists for. (smallDevice drains faster than any foreground
// can fill, so rotation pressure never builds.)
func pressureDevice() *ssd.Device {
	cfg := ssd.PM883()
	cfg.ReadLatency = 500 * vclock.Nanosecond
	cfg.WriteLatency = 2 * vclock.Microsecond
	cfg.FlushLatency = 6 * vclock.Microsecond
	cfg.WriteBandwidth = 64 << 20
	return ssd.New(cfg)
}

// governedOpts is smallOpts with the admission governor on and the
// governor's burst scaled to the shrunken memtable, so a modest
// overwrite run builds real flush/L0 debt against the bucket.
func governedOpts(mode SyncMode) Options {
	o := smallOpts(mode)
	o.GovernorEnabled = true
	o.L0SlowdownTrigger = 4
	o.L0StopTrigger = 8
	o.Picker.L0CompactionTrigger = 2
	// smallOpts shrinks the memtable to 32 KiB; the default 1 MiB
	// burst would absorb the whole run without ever pacing. Likewise
	// the default 4 MiB/s floor exceeds pressureDevice's real drain
	// rate, which would keep the admitted rate pinned above what the
	// background can retire.
	o.Governor.BurstBytes = 8 << 10
	o.Governor.MinRateBytesPerSec = 256 << 10
	return o
}

func openGoverned(t *testing.T, o Options) (*DB, *vclock.Timeline) {
	t.Helper()
	fs := ext4.New(smallFSConfig(), pressureDevice())
	tl := vclock.NewTimeline(0)
	reg := obs.NewRegistry()
	o.Metrics = reg
	o.Telemetry = obs.NewTelemetry(reg, 50*vclock.Millisecond, 0)
	db, err := Open(tl, fs, o)
	if err != nil {
		t.Fatal(err)
	}
	return db, tl
}

func hammer(t *testing.T, db *DB, tl *vclock.Timeline, n int) (stalled, applied int) {
	t.Helper()
	val := make([]byte, 512)
	for i := 0; i < n; i++ {
		err := db.Put(tl, []byte(fmt.Sprintf("key%06d", i%2000)), val)
		switch {
		case err == nil:
			applied++
		case errors.Is(err, ErrWriteStalled):
			stalled++
		default:
			t.Fatalf("write %d: %v", i, err)
		}
	}
	return stalled, applied
}

// worstStall is the largest single stall across every cause — the
// quantity the stability gate measures.
func worstStall(led *obs.StallLedger) vclock.Duration {
	var worst vclock.Duration
	for c := 0; c < obs.NumStallCauses; c++ {
		if m := led.MaxNs(obs.StallCause(c)); m > worst {
			worst = m
		}
	}
	return worst
}

// The governor converts the sync-mode rotation cliff (one large
// memtable_full wait when writers slam into the flush horizon) into
// many bounded admission_pacing delays: pacing accumulates, no single
// stall of ANY cause comes near the ungoverned worst case, and each
// pacing delay respects the configured cap.
func TestGovernorPacesInsteadOfCliff(t *testing.T) {
	// Baseline: identical workload, governor off.
	base := governedOpts(SyncNobLSM)
	base.GovernorEnabled = false
	bdb, btl := openGoverned(t, base)
	hammer(t, bdb, btl, 6000)
	baseWorst := worstStall(bdb.tel.Stalls)
	bdb.Close(btl)
	if baseWorst == 0 {
		t.Fatal("ungoverned baseline never stalled — pressure setup broken")
	}

	db, tl := openGoverned(t, governedOpts(SyncNobLSM))
	defer db.Close(tl)
	hammer(t, db, tl, 6000)

	led := db.tel.Stalls
	if n := led.Count(obs.StallAdmissionPacing); n == 0 {
		t.Fatal("no admission_pacing stalls under sustained overwrite")
	}
	if n := led.Count(obs.StallL0Slowdown); n != 0 {
		t.Fatalf("governed run still hit the slowdown cliff %d times", n)
	}
	gs := db.GovernorStats()
	if gs.PacedWrites == 0 || gs.AdmittedBytes == 0 {
		t.Fatalf("governor idle: %+v", gs)
	}
	// Bounded pacing: no single admission delay above the configured
	// (defaulted) 2×SlowdownDelay cap.
	maxDelay := 2 * db.opts.SlowdownDelay
	if m := led.MaxNs(obs.StallAdmissionPacing); m > maxDelay {
		t.Fatalf("max pacing stall %v exceeds cap %v", m, maxDelay)
	}
	// Degrade gracefully: the governed worst-case stall (any cause)
	// is a small fraction of the ungoverned cliff.
	if w := worstStall(led); w > baseWorst/4 {
		t.Fatalf("governed worst stall %v not well below ungoverned %v\nledger:\n%s", w, baseWorst, led)
	}
}

// ErrWriteStalled fires once the implied wait crosses the configured
// deadline, every acked write survives (including across reopen), and
// shed writes were never applied as phantoms.
func TestWriteStallDeadlineFailFast(t *testing.T) {
	o := governedOpts(SyncNobLSM)
	o.WriteStallDeadline = 200 * vclock.Microsecond
	// A tiny bucket and a pinned 1 MiB/s admitted rate saturate the
	// governor deterministically.
	o.Governor.BurstBytes = 4 << 10
	o.Governor.MinRateBytesPerSec = 1 << 20
	o.Governor.MaxRateBytesPerSec = 1 << 20
	fs := ext4.New(smallFSConfig(), pressureDevice())
	tl := vclock.NewTimeline(0)
	reg := obs.NewRegistry()
	o.Metrics = reg
	o.Telemetry = obs.NewTelemetry(reg, 50*vclock.Millisecond, 0)
	db, err := Open(tl, fs, o)
	if err != nil {
		t.Fatal(err)
	}

	val := make([]byte, 512)
	acked := map[string]bool{}
	var stalled int
	for i := 0; i < 6000; i++ {
		k := fmt.Sprintf("key%06d", i)
		err := db.Put(tl, []byte(k), val)
		switch {
		case err == nil:
			acked[k] = true
		case errors.Is(err, ErrWriteStalled):
			stalled++
		default:
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if stalled == 0 {
		t.Fatal("deadline never fired under saturation")
	}
	led := db.tel.Stalls
	if n := led.Count(obs.StallWriteStalled); int(n) != stalled {
		t.Fatalf("ledger write_stalled count %d != %d returned errors", n, stalled)
	}
	// The bounded wait is exactly the deadline, never more.
	if m := led.MaxNs(obs.StallWriteStalled); m > o.WriteStallDeadline {
		t.Fatalf("write_stalled max %v exceeds deadline %v", m, o.WriteStallDeadline)
	}
	if gs := db.GovernorStats(); int(gs.RejectedWrites) != stalled {
		t.Fatalf("governor rejected %d != %d errors", gs.RejectedWrites, stalled)
	}

	// Every acked write must read back — before and after reopen.
	check := func(db *DB, tl *vclock.Timeline, when string) {
		for k := range acked {
			if _, err := db.Get(tl, []byte(k)); err != nil {
				t.Fatalf("%s: acked key %q: %v", when, k, err)
			}
		}
	}
	check(db, tl, "live")
	if err := db.Close(tl); err != nil {
		t.Fatal(err)
	}
	o.Metrics, o.Telemetry = nil, nil
	db2, err := Open(tl, fs, o)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close(tl)
	check(db2, tl, "reopened")
}

// A zero deadline preserves block-until-room: the same saturating
// workload completes without a single ErrWriteStalled.
func TestZeroDeadlineBlocksForever(t *testing.T) {
	o := governedOpts(SyncNobLSM)
	o.WriteStallDeadline = 0
	o.Governor.BurstBytes = 4 << 10
	o.Governor.MinRateBytesPerSec = 1 << 20
	o.Governor.MaxRateBytesPerSec = 1 << 20
	db, tl := openGoverned(t, o)
	defer db.Close(tl)

	stalled, applied := hammer(t, db, tl, 3000)
	if stalled != 0 {
		t.Fatalf("zero deadline rejected %d writes", stalled)
	}
	if applied != 3000 {
		t.Fatalf("applied %d of 3000", applied)
	}
	if n := db.tel.Stalls.Count(obs.StallWriteStalled); n != 0 {
		t.Fatalf("write_stalled counted %d with zero deadline", n)
	}
}

// With the governor off (the default), behavior is stock: the
// sync-mode rotation cliff (memtable_full) fires, no admission causes
// appear, and the governor surfaces stay zero.
func TestGovernorOffIsStock(t *testing.T) {
	o := governedOpts(SyncNobLSM)
	o.GovernorEnabled = false
	o.WriteStallDeadline = vclock.Millisecond // ignored without governor
	db, tl := openGoverned(t, o)
	defer db.Close(tl)

	stalled, _ := hammer(t, db, tl, 6000)
	if stalled != 0 {
		t.Fatalf("ungoverned run rejected %d writes", stalled)
	}
	led := db.tel.Stalls
	if led.Count(obs.StallMemtableFull) == 0 {
		t.Fatal("stock rotation cliff never fired — pressure setup broken")
	}
	if n := led.Count(obs.StallAdmissionPacing) + led.Count(obs.StallWriteStalled); n != 0 {
		t.Fatalf("admission causes counted %d with governor off", n)
	}
	if gs := db.GovernorStats(); gs.PacedWrites != 0 || gs.RejectedWrites != 0 || gs.AdmittedBytes != 0 {
		t.Fatalf("governor stats nonzero when off: %+v", gs)
	}
}

// The doctor report gains an admission-governor section in both
// states.
func TestDoctorGovernorSection(t *testing.T) {
	db, tl := openGoverned(t, governedOpts(SyncNobLSM))
	doc, ok := db.Property("noblsm.doctor")
	if !ok {
		t.Fatal("no doctor property")
	}
	if want := "-- admission governor --"; !strings.Contains(doc, want) {
		t.Fatalf("doctor report missing %q", want)
	}
	if !strings.Contains(doc, "admitted rate") {
		t.Fatal("governor section missing rate line")
	}
	db.Close(tl)

	db2, _, tl2 := newDB(t, SyncAll)
	doc2, _ := db2.Property("noblsm.doctor")
	if !strings.Contains(doc2, "(admission governor off)") {
		t.Fatal("ungoverned doctor report missing off notice")
	}
	db2.Close(tl2)
}
