package engine

import (
	"bytes"
	"fmt"
	"testing"

	"noblsm/internal/ext4"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
	"noblsm/internal/wal"
)

// fillPutsOnly drives overwrite-heavy puts and returns the expected
// final state. Puts only: repair rebuilds with every kept table at
// level 0, which preserves put/overwrite semantics exactly but (as
// documented on Repair) can resurrect deleted keys, so delete
// workloads are not part of the repair equality contract.
func fillPutsOnly(t *testing.T, db *DB, tl *vclock.Timeline, ops, keyspace int) map[string]string {
	t.Helper()
	expected := make(map[string]string)
	for i := 0; i < ops; i++ {
		k := fmt.Sprintf("key-%05d", i%keyspace)
		v := fmt.Sprintf("%s=val-%05d-%s", k, i, bytes.Repeat([]byte{'r'}, 60))
		mustPut(t, db, tl, k, v)
		expected[k] = v
	}
	return expected
}

// verifyState checks every expected key reads back exactly and a full
// scan surfaces no key outside the expected set.
func verifyState(t *testing.T, db *DB, tl *vclock.Timeline, expected map[string]string) {
	t.Helper()
	for k, v := range expected {
		got, err := db.Get(tl, []byte(k))
		if err != nil {
			t.Fatalf("key %q: %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("key %q: got %q want %q", k, got, v)
		}
	}
	it, err := db.NewIterator(tl)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		if _, ok := expected[string(it.Key())]; !ok {
			t.Fatalf("scan surfaced unexpected key %q", it.Key())
		}
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(expected) {
		t.Fatalf("scan found %d keys, want %d", n, len(expected))
	}
}

// TestRepairManifestDeleted destroys the version metadata completely —
// CURRENT and every MANIFEST gone — and requires Repair to rebuild a
// servable store from the SSTables and WALs alone.
func TestRepairManifestDeleted(t *testing.T) {
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	opts := smallOpts(SyncAll)
	db, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatal(err)
	}
	expected := fillPutsOnly(t, db, tl, 5000, 800)
	if err := db.Close(tl); err != nil {
		t.Fatal(err)
	}

	for _, name := range fs.List(tl) {
		if k, _, ok := ParseFileName(name); ok && (k == KindCurrent || k == KindManifest) {
			if err := fs.Remove(tl, name); err != nil {
				t.Fatal(err)
			}
		}
	}

	rep, err := Repair(tl, fs, opts)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if rep.ManifestState != "missing" {
		t.Fatalf("manifest state %q, want %q", rep.ManifestState, "missing")
	}
	if len(rep.Kept) == 0 {
		t.Fatal("repair kept no tables from a store full of data")
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("repair quarantined intact tables: %v", rep.Quarantined)
	}
	if len(rep.LogsRetained) == 0 {
		t.Fatal("repair dropped the WALs: the unflushed tail would be lost")
	}

	db2, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatalf("open after repair: %v", err)
	}
	defer db2.Close(tl)
	verifyState(t, db2, tl, expected)
}

// TestRepairShadowPredecessorFallback is the NobLSM-specific repair
// path: a major-compaction successor that never journal-committed is
// corrupted on disk AND the manifest's interior is damaged. Repair
// must quarantine the successor, condemn its whole install, fall back
// to the retained shadow predecessors, and still serve the full acked
// keyspace.
func TestRepairShadowPredecessorFallback(t *testing.T) {
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	opts := smallOpts(SyncNobLSM)
	// Polling never fires inside this sub-second workload, so no
	// successor's commit dependency ever resolves: every predecessor
	// stays retained — the repair fallback this test exercises.
	opts.PollInterval = 3600 * vclock.Second
	db, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Run until (a) at least one successor is healable and (b) the
	// manifest spans several 32 KiB log blocks — interior damage needs
	// valid records in blocks AFTER the damaged one, since a corrupt
	// record skips the reader to the next block boundary.
	expected := make(map[string]string)
	var healable []uint64
	manifestBig := false
	for i := 0; i < 400_000; i++ {
		k := fmt.Sprintf("key-%05d", i%800)
		v := fmt.Sprintf("%s=val-%06d-%s", k, i, bytes.Repeat([]byte{'s'}, 60))
		mustPut(t, db, tl, k, v)
		expected[k] = v
		if i%2000 == 0 && i > 0 {
			healable = db.HealableSuccessors()
			for _, name := range fs.List(tl) {
				if kind, _, ok := ParseFileName(name); ok && kind == KindManifest {
					if sz, err := fs.Size(tl, name); err == nil && sz > 80<<10 {
						manifestBig = true
					}
				}
			}
			if len(healable) > 0 && manifestBig {
				break
			}
		}
	}
	if len(healable) == 0 || !manifestBig {
		t.Fatalf("workload did not reach the repair scenario: healable=%v manifestBig=%v", healable, manifestBig)
	}
	if err := db.Close(tl); err != nil {
		t.Fatal(err)
	}

	// Corrupt the middle of an uncommitted successor table, and an
	// early interior record of the manifest (damage with valid
	// records after it): in-place recovery cannot absorb either.
	// The most recent healable successor: its install edit sits near
	// the manifest tail, well clear of the damage injected below.
	victim := healable[len(healable)-1]
	size, err := fs.Size(tl, TableName(victim))
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.CorruptAt(TableName(victim), size/2); err != nil {
		t.Fatal(err)
	}
	manifest := findFile(t, fs, tl, KindManifest)
	corruptRecordPayload(t, fs, tl, manifest, 1)

	rep, err := Repair(tl, fs, opts)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if rep.ManifestState != "interior" {
		t.Fatalf("manifest state %q, want %q", rep.ManifestState, "interior")
	}
	contains := func(nums []uint64, n uint64) bool {
		for _, x := range nums {
			if x == n {
				return true
			}
		}
		return false
	}
	if !contains(rep.Quarantined, victim) {
		t.Fatalf("corrupt successor %d not quarantined: %v", victim, rep.Quarantined)
	}
	if !contains(rep.Condemned, victim) {
		t.Fatalf("corrupt successor %d not condemned: %v", victim, rep.Condemned)
	}
	if !fs.Exists(tl, TableName(victim)+".corrupt") {
		t.Fatal("quarantined table was not renamed out of the engine namespace")
	}

	db2, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatalf("open after repair: %v", err)
	}
	defer db2.Close(tl)
	verifyState(t, db2, tl, expected)
	t.Logf("repair: %d scanned, %d kept, condemned %v, superseded %d",
		rep.TablesScanned, len(rep.Kept), rep.Condemned, len(rep.Superseded))
}

// TestRepairCommittedCompactionSurvivorsKept is the opposite pole from
// the shadow-predecessor fallback: a compaction that committed long
// ago — its predecessors already deleted by the normal lifecycle —
// loses one successor to corruption. No fallback exists any more, so
// Repair must NOT condemn the install: the intact sibling successors
// are the only remaining copy of their key ranges and must be Kept.
// (A vacuously-transitive condemnation bug once marked every consumed
// table "condemned" via its predecessor-free flush edit, which made
// the gone predecessors look covered and discarded the siblings.)
func TestRepairCommittedCompactionSurvivorsKept(t *testing.T) {
	fs := ext4.New(smallFSConfig(), smallDevice())
	tl := vclock.NewTimeline(0)
	// SyncAll: every compaction install commits durably at once and the
	// predecessors are deleted immediately — the committed steady state.
	opts := smallOpts(SyncAll)
	db, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatal(err)
	}
	fillPutsOnly(t, db, tl, 30_000, 2000)
	if err := db.Close(tl); err != nil {
		t.Fatal(err)
	}

	// Decode the manifest history and find a committed multi-output
	// compaction: ≥2 successors all intact on disk, ≥1 real (non-self)
	// predecessor, and every predecessor already deleted.
	manifest := findFile(t, fs, tl, KindManifest)
	data, err := fs.ReadFile(tl, manifest)
	if err != nil {
		t.Fatal(err)
	}
	var candidate *version.VersionEdit
	r := wal.NewReader(data)
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		e, derr := version.DecodeEdit(rec)
		if derr != nil || len(e.NewFiles) < 2 {
			continue
		}
		newSet := make(map[uint64]bool, len(e.NewFiles))
		allOnDisk := true
		for _, nf := range e.NewFiles {
			newSet[nf.Meta.Number] = true
			if !fs.Exists(tl, TableName(nf.Meta.Number)) {
				allOnDisk = false
			}
		}
		predsGone, preds := true, 0
		for _, df := range e.DeletedFiles {
			if newSet[df.Number] {
				continue // trivial move, not a dependency
			}
			preds++
			if fs.Exists(tl, TableName(df.Number)) {
				predsGone = false
			}
		}
		if allOnDisk && preds > 0 && predsGone {
			candidate = e // prefer the newest such edit
		}
	}
	if candidate == nil {
		t.Fatal("workload produced no committed multi-output compaction with deleted predecessors; grow the fill")
	}

	victim := candidate.NewFiles[0].Meta.Number
	size, err := fs.Size(tl, TableName(victim))
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.CorruptAt(TableName(victim), size/2); err != nil {
		t.Fatal(err)
	}

	rep, err := Repair(tl, fs, opts)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	contains := func(nums []uint64, n uint64) bool {
		for _, x := range nums {
			if x == n {
				return true
			}
		}
		return false
	}
	if !contains(rep.Quarantined, victim) {
		t.Fatalf("corrupt successor %d not quarantined: %v", victim, rep.Quarantined)
	}
	// Fully-committed store: no install anywhere still has recoverable
	// predecessors, so nothing may be condemned.
	if len(rep.Condemned) != 0 {
		t.Fatalf("repair condemned %v in a store with no retained predecessors", rep.Condemned)
	}
	for _, nf := range candidate.NewFiles[1:] {
		if !contains(rep.Kept, nf.Meta.Number) {
			t.Fatalf("intact sibling successor %d not kept (kept=%v superseded=%v condemned=%v)",
				nf.Meta.Number, rep.Kept, rep.Superseded, rep.Condemned)
		}
	}

	// The store must reopen and scan cleanly; only the victim's range
	// may be lost.
	db2, err := Open(tl, fs, opts)
	if err != nil {
		t.Fatalf("open after repair: %v", err)
	}
	defer db2.Close(tl)
	it, err := db2.NewIterator(tl)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatalf("post-repair scan: %v", err)
	}
	if n == 0 {
		t.Fatal("post-repair scan surfaced no keys")
	}
	t.Logf("repair: victim %d quarantined, %d siblings kept, %d keys scanned", victim, len(candidate.NewFiles)-1, n)
}
