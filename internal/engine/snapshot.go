package engine

import (
	"container/list"
	"fmt"

	"noblsm/internal/keys"
	"noblsm/internal/memtable"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
)

// Snapshot pins a point-in-time view: reads through it see exactly the
// writes sequenced at or before its creation, and compactions retain
// the versions it can observe until it is released.
type Snapshot struct {
	seq  keys.SeqNum
	elem *list.Element
}

// GetSnapshot pins the current state. Callers must ReleaseSnapshot
// when done, or compactions will retain superseded versions forever.
func (db *DB) GetSnapshot() *Snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	// visibleSeq, not lastSeq: a snapshot must not observe a write
	// group that is still being applied to the memtable.
	s := &Snapshot{seq: db.visibleSeq.Load()}
	s.elem = db.snapshots.PushBack(s)
	return s
}

// ReleaseSnapshot unpins s. Releasing twice is an error.
func (db *DB) ReleaseSnapshot(s *Snapshot) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if s.elem == nil {
		return fmt.Errorf("engine: snapshot already released")
	}
	db.snapshots.Remove(s.elem)
	s.elem = nil
	return nil
}

// smallestSnapshotLocked reports the oldest sequence any live snapshot
// can observe (lastSeq when none are held). Compactions must keep the
// newest version at or below this for every key.
func (db *DB) smallestSnapshotLocked() keys.SeqNum {
	if db.snapshots.Len() == 0 {
		return db.lastSeq
	}
	return db.snapshots.Front().Value.(*Snapshot).seq
}

// GetAt reads key as of the snapshot.
func (db *DB) GetAt(tl *vclock.Timeline, key []byte, snap *Snapshot) ([]byte, error) {
	return db.get(tl, key, snap.seq)
}

// NewIteratorAt returns an iterator over the state as of the snapshot.
func (db *DB) NewIteratorAt(tl *vclock.Timeline, snap *Snapshot) (*Iterator, error) {
	return db.newIterator(tl, snap.seq)
}

// CompactRange forces compaction of all data overlapping [begin, end]
// (nil bounds are unbounded) down the tree, like LevelDB's manual
// compaction: the memtable is flushed first, then every level holding
// overlapping files is compacted into the next.
func (db *DB) CompactRange(tl *vclock.Timeline, begin, end []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	if db.bgPermanent != nil {
		return db.bgPermanent
	}
	// Manual compaction walks and edits version state directly, so the
	// background worker (AsyncCompaction) must be parked first.
	if err := db.waitBgIdle(); err != nil {
		return err
	}
	if !db.mem.Empty() {
		if d := tl.WaitUntil(db.minorDoneAt); d > 0 {
			db.m.rotationNs.AddDuration(d)
		}
		imm := db.mem
		db.memSeed++
		db.mem = memtable.New(db.memSeed)
		if err := db.newWAL(tl); err != nil {
			return err
		}
		if err := db.minorCompaction(tl, imm, db.walNumber, false); err != nil {
			return err
		}
	}
	for level := 0; level < version.NumLevels-1; level++ {
		for {
			files := db.current.Overlapping(level, begin, end)
			if len(files) == 0 {
				break
			}
			c := version.SetupCompaction(db.current, level, files[0], &db.pointers, db.opts.Picker)
			if c.Empty() {
				break
			}
			bg := db.pickBg()
			bg.WaitUntil(tl.Now())
			if err := db.doCompaction(bg, c, false); err != nil {
				return err
			}
		}
	}
	tl.WaitUntil(db.maxBgTime())
	return nil
}

// ApproximateSize estimates the on-disk bytes holding keys in
// [start, end) — whole overlapping files are counted, as in LevelDB's
// coarse GetApproximateSizes.
func (db *DB) ApproximateSize(tl *vclock.Timeline, start, end []byte) int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	var total int64
	for level := 0; level < version.NumLevels; level++ {
		for _, f := range db.current.Files[level] {
			if start != nil && keys.CompareUser(f.LargestUser(), start) < 0 {
				continue
			}
			if end != nil && keys.CompareUser(f.SmallestUser(), end) >= 0 {
				continue
			}
			total += f.Size
		}
	}
	return total
}
