package engine

import (
	"fmt"
	"sort"
	"strings"

	"noblsm/internal/cache"
	"noblsm/internal/obs"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
)

// This file implements LevelDB-style introspection properties. A
// property is a named, human-readable rendering of internal state;
// the stable names are
//
//	noblsm.stats     per-level table (files, bytes, read/write
//	                 amplification) plus shadow/retained tables and
//	                 stall totals
//	noblsm.sstables  every live table per level with its key range
//	noblsm.tracker   the NobLSM tracker's dependency and protected-
//	                 file inventory
//	noblsm.metrics   the full metrics registry, one metric per line
//
//	noblsm.background-errors
//	                 the background-error state machine: read-only
//	                 flag, permanent cause, WAL poisoning, retry and
//	                 self-healing counters
//
//	noblsm.checkpoints
//	                 live checkpoint references: the pinned manifest
//	                 cut, retained files, bytes held back from GC, and
//	                 the last incremental backup
//
//	noblsm.doctor    a one-page health report: level shape, bg-error
//	                 state, stall ledger, top latency phases and the
//	                 most recent time-series windows
//
// lsminspect -props dumps all of them; tests assert on their shape.

// PropertyNames lists every supported property in display order.
var PropertyNames = []string{
	"noblsm.stats",
	"noblsm.sstables",
	"noblsm.tracker",
	"noblsm.background-errors",
	"noblsm.checkpoints",
	"noblsm.metrics",
	"noblsm.doctor",
}

// Property renders the named property, or ok=false for an unknown
// name.
func (db *DB) Property(name string) (value string, ok bool) {
	switch name {
	case "noblsm.stats":
		return db.propertyStats(), true
	case "noblsm.sstables":
		return db.propertySSTables(), true
	case "noblsm.tracker":
		return db.propertyTracker(), true
	case "noblsm.background-errors":
		return db.propertyBackgroundErrors(), true
	case "noblsm.checkpoints":
		return db.propertyCheckpoints(), true
	case "noblsm.metrics":
		return db.propertyMetrics(), true
	case "noblsm.doctor":
		return db.propertyDoctor(), true
	}
	return "", false
}

// propertyMetrics renders the registry plus the observability plane's
// own loss accounting: a truncated trace history or an overwritten
// time-series window must be visible, not silent.
func (db *DB) propertyMetrics() string {
	s := db.reg.String()
	s += db.cacheRatioLines()
	if db.trace != nil {
		s += fmt.Sprintf("%-44s %d\n", "obs.trace.dropped", db.trace.Dropped())
		s += fmt.Sprintf("%-44s %d\n", "obs.trace.retained", db.trace.Len())
	}
	if db.tel != nil {
		s += fmt.Sprintf("%-44s %d\n", "obs.series.dropped_windows", db.tel.Series.Dropped())
	}
	return s
}

// propertyDoctor renders the one-page health report.
func (db *DB) propertyDoctor() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== noblsm doctor ==\n\n")
	fmt.Fprintf(&b, "-- lsm shape --\n%s\n", db.propertyStats())
	fmt.Fprintf(&b, "-- background errors --\n%s\n", db.propertyBackgroundErrors())
	fmt.Fprintf(&b, "-- block caches --\n%s\n", db.cacheReport())
	fmt.Fprintf(&b, "-- checkpoints & replication --\n%s\n", db.propertyCheckpoints())
	fmt.Fprintf(&b, "-- admission governor --\n%s\n", db.governor.String())
	if db.tel == nil {
		fmt.Fprintf(&b, "-- telemetry --\n")
		fmt.Fprintf(&b, "(disabled: Options.Telemetry is nil — per-op attribution,\n")
		fmt.Fprintf(&b, " the stall ledger and windowed percentiles are unavailable)\n")
	} else {
		fmt.Fprintf(&b, "-- stall ledger --\n%s\n", db.tel.Stalls.String())
		fmt.Fprintf(&b, "-- latency phases (by total time) --\n%s\n", db.phaseTable())
		fmt.Fprintf(&b, "-- recent windows (interval %v) --\n%s",
			db.tel.Series.Interval(), db.tel.Series.Tail(8))
	}
	if db.trace != nil {
		fmt.Fprintf(&b, "\n-- trace ring --\nretained=%d dropped=%d\n",
			db.trace.Len(), db.trace.Dropped())
	}
	return b.String()
}

// phaseTable renders the attribution timers: op-class totals first,
// then every populated phase ordered by accumulated time.
func (db *DB) phaseTable() string {
	type row struct {
		name           string
		n              int64
		mean, p99, tot vclock.Duration
	}
	snap := func(name string, t *obs.Timer) (row, bool) {
		h := t.Snapshot()
		if h.Count() == 0 {
			return row{}, false
		}
		return row{name, h.Count(), h.Mean(), h.Percentile(99),
			vclock.Duration(int64(h.Mean()) * h.Count())}, true
	}
	var b strings.Builder
	line := func(r row) {
		fmt.Fprintf(&b, "%-18s n=%-9d mean=%-10v p99=%-10v total=%v\n",
			r.name, r.n, r.mean, r.p99, r.tot)
	}
	for _, t := range []struct {
		name  string
		timer *obs.Timer
	}{{"write.total", db.tel.WriteTotal()}, {"read.total", db.tel.ReadTotal()}} {
		if r, ok := snap(t.name, t.timer); ok {
			line(r)
		}
	}
	var phases []row
	for p := 0; p < obs.NumPhases; p++ {
		if r, ok := snap(obs.Phase(p).String(), db.tel.PhaseTimer(obs.Phase(p))); ok {
			phases = append(phases, r)
		}
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i].tot > phases[j].tot })
	for _, r := range phases {
		line(r)
	}
	if b.Len() == 0 {
		return "(no operations observed)\n"
	}
	return b.String()
}

// cacheRatioLines renders the derived hit ratios of the cache tiers in
// registry style, appended to noblsm.metrics (ratios are views over
// the raw counters, which stay authoritative).
func (db *DB) cacheRatioLines() string {
	var b strings.Builder
	ratio := func(name string, c *cache.Cache) {
		hits, misses := c.Stats()
		if hits+misses == 0 {
			return
		}
		fmt.Fprintf(&b, "%-44s %.4f\n", name, float64(hits)/float64(hits+misses))
	}
	ratio("cache.block.hit_ratio", db.tcache.blocks)
	if db.tcache.cblocks != nil {
		ratio("cache.cblock.hit_ratio", db.tcache.cblocks)
	}
	ratio("cache.table.hit_ratio", db.tcache.tables)
	return b.String()
}

// cacheReport renders the doctor's cache section: one line per tier
// with hits, misses, fills, the hit ratio and current occupancy.
func (db *DB) cacheReport() string {
	var b strings.Builder
	line := func(name string, c *cache.Cache) {
		hits, misses := c.Stats()
		total := hits + misses
		r := 0.0
		if total > 0 {
			r = float64(hits) / float64(total)
		}
		fmt.Fprintf(&b, "%-8s hits=%-9d misses=%-9d fills=%-9d ratio=%.3f used=%d entries=%d\n",
			name, hits, misses, c.Fills(), r, c.Used(), c.Len())
	}
	line("block", db.tcache.blocks)
	if db.tcache.cblocks != nil {
		line("cblock", db.tcache.cblocks)
	} else {
		fmt.Fprintf(&b, "%-8s (disabled: Options.CompressedBlockCacheBytes is 0)\n", "cblock")
	}
	line("table", db.tcache.tables)
	return b.String()
}

// propertyCheckpoints renders the live checkpoint references — the
// state an operator needs to see why GC is holding files back — plus
// the last incremental backup and the replication apply counters.
func (db *DB) propertyCheckpoints() string {
	refs := db.Checkpoints()

	// Pinned tables no longer in the live version are retained solely
	// for their checkpoints; tracker-protected pins are additionally
	// shadow predecessors a compaction has already superseded.
	db.mu.Lock()
	current := db.current
	db.mu.Unlock()
	live := make(map[uint64]bool)
	for level := 0; level < version.NumLevels; level++ {
		for _, f := range current.Files[level] {
			live[f.Number] = true
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "live references       %d\n", len(refs))
	fmt.Fprintf(&b, "created / released    %d / %d\n",
		db.m.ckptCreated.Value(), db.m.ckptReleased.Value())
	fmt.Fprintf(&b, "pinned files          %d (%d bytes retained)\n",
		db.m.ckptPinnedFiles.Value(), db.m.ckptRetainedBytes.Value())
	for _, ref := range refs {
		fmt.Fprintf(&b, "\nref %d: %s/ (created %v)\n", ref.ID, ref.Dir, ref.CreatedAt)
		fmt.Fprintf(&b, "  manifest cut        wal=%06d off=%d seq=%d\n",
			ref.WALNumber, ref.WALOff, ref.LastSeq)
		fmt.Fprintf(&b, "  export              %d files, %d linked, %d bytes copied\n",
			len(ref.Files), ref.Linked, ref.CopiedBytes)
		var gcHeld, shadows []uint64
		for _, num := range ref.Tables {
			if db.tracker != nil && db.tracker.Protected(num) {
				shadows = append(shadows, num)
			} else if !live[num] {
				gcHeld = append(gcHeld, num)
			}
		}
		fmt.Fprintf(&b, "  pins                %d tables, %d logs\n", len(ref.Tables), len(ref.Logs))
		if len(gcHeld) > 0 {
			fmt.Fprintf(&b, "  held back from GC   %v\n", gcHeld)
		}
		if len(shadows) > 0 {
			fmt.Fprintf(&b, "  shadow predecessors %v\n", shadows)
		}
	}
	if bk := db.LastBackup(); bk != nil {
		fmt.Fprintf(&b, "\nlast backup           %s/ at %v (seq %d)\n", bk.Dir, bk.At, bk.LastSeq)
		fmt.Fprintf(&b, "  incremental         %d linked, %d reused, %d pruned, %d bytes copied\n",
			bk.TablesLinked, bk.TablesReused, bk.Pruned, bk.CopiedBytes)
	} else {
		fmt.Fprintf(&b, "\nlast backup           (none)\n")
	}
	if applied := db.m.replicaApplied.Value(); applied > 0 || db.m.replicaSkipped.Value() > 0 {
		fmt.Fprintf(&b, "replication apply     records=%d skipped=%d bytes=%d seq=%d\n",
			applied, db.m.replicaSkipped.Value(), db.m.replicaBytes.Value(),
			db.m.replicaSeq.Value())
	}
	return b.String()
}

// propertyStats renders the per-level table and headline counters.
func (db *DB) propertyStats() string {
	db.mu.Lock()
	current := db.current
	memBytes := db.mem.ApproximateMemoryUsage()
	db.mu.Unlock()

	s := db.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "Level  Files  Bytes      Shadow  Retained\n")
	fmt.Fprintf(&b, "-----  -----  ---------  ------  --------\n")
	var totalFiles int
	var totalBytes int64
	for level := 0; level < version.NumLevels; level++ {
		files := current.Files[level]
		if len(files) == 0 && level > 1 {
			continue
		}
		var bytes, retained int64
		shadow := 0
		for _, f := range files {
			bytes += f.Size
			if f.Hot {
				retained += f.Size
			}
			if db.tracker != nil && db.tracker.Protected(f.Number) {
				shadow++
			}
		}
		totalFiles += len(files)
		totalBytes += bytes
		fmt.Fprintf(&b, "%5d  %5d  %9d  %6d  %8d\n", level, len(files), bytes, shadow, retained)
	}
	fmt.Fprintf(&b, "total  %5d  %9d\n", totalFiles, totalBytes)
	fmt.Fprintf(&b, "\nmemtable bytes        %d\n", memBytes)
	fmt.Fprintf(&b, "user bytes written    %d\n", db.m.userBytes.Value())
	// Write amplification: bytes the storage stack wrote (flush +
	// compaction rewrites) per byte of user data. Read amplification
	// here is the compaction read volume over the same base — the
	// steady-state merge cost, not point-lookup fan-out.
	if ub := db.m.userBytes.Value(); ub > 0 {
		wa := float64(s.CompactionBytesWritten) / float64(ub)
		ra := float64(s.CompactionBytesRead) / float64(ub)
		fmt.Fprintf(&b, "write amplification   %.2f\n", wa)
		fmt.Fprintf(&b, "read amplification    %.2f\n", ra)
	}
	fmt.Fprintf(&b, "compactions           minor=%d major=%d trivial=%d seek=%d\n",
		s.MinorCompactions, s.MajorCompactions, s.TrivialMoves, s.SeekCompactions)
	fmt.Fprintf(&b, "compaction bytes      read=%d written=%d\n",
		s.CompactionBytesRead, s.CompactionBytesWritten)
	fmt.Fprintf(&b, "stalls                slowdown=%d (%v) rotation=%v\n",
		s.SlowdownStalls, s.SlowdownTime, s.RotationStall)
	if db.tracker != nil {
		ts := db.tracker.Stats()
		fmt.Fprintf(&b, "shadow tables         deps=%d protected=%d preds_deleted=%d\n",
			ts.Registered-ts.Resolved, len(db.tracker.Inventory().Protected), ts.PredsDeleted)
	}
	return b.String()
}

// propertyBackgroundErrors renders the background-error state machine
// (bgerror.go) and the self-healing counters (heal.go).
func (db *DB) propertyBackgroundErrors() string {
	db.mu.Lock()
	permanent := db.bgPermanent
	poisoned := db.walPoisoned
	plans := len(db.repairs)
	db.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "read-only             %v\n", db.readOnly.Load())
	if permanent != nil {
		fmt.Fprintf(&b, "permanent error       %v\n", permanent)
	} else {
		fmt.Fprintf(&b, "permanent error       (none)\n")
	}
	fmt.Fprintf(&b, "wal poisoned          %v (rotations %d)\n",
		poisoned, db.m.walPoisonRotations.Value())
	fmt.Fprintf(&b, "bg errors             transient=%d retries=%d permanent=%d\n",
		db.m.bgTransientErrors.Value(), db.m.bgRetries.Value(), db.m.bgPermanentErrors.Value())
	fmt.Fprintf(&b, "read retries          %d\n", db.m.readRetries.Value())
	fmt.Fprintf(&b, "self-healing          healed=%d quarantined=%d plans=%d\n",
		db.m.readsHealed.Value(), db.m.tablesQuarantined.Value(), plans)
	return b.String()
}

// propertySSTables renders every live table with its key range.
func (db *DB) propertySSTables() string {
	db.mu.Lock()
	current := db.current
	db.mu.Unlock()

	var b strings.Builder
	for level := 0; level < version.NumLevels; level++ {
		files := current.Files[level]
		if len(files) == 0 {
			continue
		}
		// The build policy newly cut tables at this level get; existing
		// tables keep whatever they were built with (reads are
		// per-block tag-driven, filters self-describing).
		fmt.Fprintf(&b, "--- level %d (bloom %d bits/key, codec %s) ---\n",
			level, db.opts.bloomBitsForLevel(level), db.opts.compressionForLevel(level))
		for _, f := range files {
			flags := ""
			if f.Hot {
				flags = " hot"
			}
			if db.tracker != nil && db.tracker.Protected(f.Number) {
				flags += " shadow-protected"
			}
			fmt.Fprintf(&b, "%6d: %8d bytes  [%q .. %q]%s\n",
				f.Number, f.Size, f.SmallestUser(), f.LargestUser(), flags)
		}
	}
	if b.Len() == 0 {
		return "(no sstables)\n"
	}
	return b.String()
}

// propertyTracker renders the NobLSM tracker inventory: unresolved
// p→q dependencies and the shadow tables they protect.
func (db *DB) propertyTracker() string {
	if db.tracker == nil {
		return "(no tracker: sync mode is not NobLSM)\n"
	}
	ts := db.tracker.Stats()
	inv := db.tracker.Inventory()
	var b strings.Builder
	fmt.Fprintf(&b, "deps registered       %d\n", ts.Registered)
	fmt.Fprintf(&b, "deps resolved         %d\n", ts.Resolved)
	fmt.Fprintf(&b, "preds safely deleted  %d\n", ts.PredsDeleted)
	fmt.Fprintf(&b, "polls                 %d (syscall checks %d)\n", ts.Polls, ts.SyscallChecks)
	fmt.Fprintf(&b, "pending deps          %d\n", len(inv.Deps))
	for _, d := range inv.Deps {
		fmt.Fprintf(&b, "  preds %v waiting on %d succ inode(s)\n", d.Preds, d.WaitingSuccs)
	}
	fmt.Fprintf(&b, "protected shadows     %d %v\n", len(inv.Protected), inv.Protected)
	return b.String()
}
