package engine

import (
	"noblsm/internal/iterator"
	"noblsm/internal/keys"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
)

// Iterator walks the database's user keys in ascending order, exposing
// the newest visible version of each and skipping tombstones. It pins
// a read snapshot for its lifetime: call Close when done, or the
// snapshot's tables are retained until the database closes.
type Iterator struct {
	db    *DB
	tl    *vclock.Timeline
	rs    *readState
	m     *iterator.Merging
	seq   keys.SeqNum
	key   []byte
	value []byte
	valid bool
	err   error
}

// NewIterator returns an iterator over the state as of the newest
// write. Like LevelDB's, it is a snapshot: writes after creation are
// not observed (the merged children reference the pinned memtable and
// tables at creation time).
func (db *DB) NewIterator(tl *vclock.Timeline) (*Iterator, error) {
	return db.newIterator(tl, keys.MaxSeqNum)
}

// newIterator builds an iterator bounded at snapSeq over a pinned
// read snapshot — it does not take db.mu.
func (db *DB) newIterator(tl *vclock.Timeline, snapSeq keys.SeqNum) (*Iterator, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if vis := db.visibleSeq.Load(); snapSeq > vis {
		snapSeq = vis
	}
	rs := db.acquireReadState()
	var children []iterator.Iterator
	children = append(children, memIter{rs.mem.NewIterator()})
	if rs.imm != nil {
		children = append(children, memIter{rs.imm.NewIterator()})
	}
	for level := 0; level < version.NumLevels; level++ {
		if level == 0 || db.opts.Picker.Fragmented || hasHotFiles(rs.v.Files[level]) {
			// Files may overlap: each gets its own child iterator.
			for _, fm := range rs.v.Files[level] {
				r, err := db.tcache.open(tl, fm)
				if err != nil {
					db.releaseReadState(rs)
					return nil, err
				}
				children = append(children, r.NewIterator(tl))
			}
			continue
		}
		if len(rs.v.Files[level]) > 0 {
			// Sorted, disjoint level: one lazy concatenating child
			// (LevelDB's NewConcatenatingIterator), so iterator
			// construction does not open every table in the store.
			children = append(children, newLevelIter(db, tl, rs.v.Files[level]))
		}
	}
	return &Iterator{
		db:  db,
		tl:  tl,
		rs:  rs,
		m:   iterator.NewMerging(children...),
		seq: snapSeq,
	}, nil
}

// Close releases the iterator's pinned read snapshot. It is safe to
// call more than once; the iterator must not be used afterwards.
func (it *Iterator) Close() error {
	if it.rs != nil {
		it.db.releaseReadState(it.rs)
		it.rs = nil
	}
	return it.err
}

// hasHotFiles reports whether any file at the level is a hot-zone
// output. Hot files keep the level's disjointness invariant, but the
// conservative per-file merge is kept for them since their placement
// follows the L2SM model rather than the plain leveled discipline.
func hasHotFiles(files []*version.FileMeta) bool {
	for _, f := range files {
		if f.Hot {
			return true
		}
	}
	return false
}

// First positions at the smallest live user key.
func (it *Iterator) First() {
	it.m.First()
	it.settle(false)
}

// Seek positions at the first live user key >= ukey.
func (it *Iterator) Seek(ukey []byte) {
	it.m.Seek(keys.MakeInternalKey(nil, ukey, it.seq, keys.KindSeek))
	it.settle(false)
}

// Next advances to the following live user key.
func (it *Iterator) Next() {
	if !it.valid {
		return
	}
	it.m.Next()
	it.settle(true)
}

// settle advances the merged cursor to the newest visible version of
// the next undeleted user key at or after the current position.
// skipCurrent skips remaining (older) versions of the key just
// emitted.
func (it *Iterator) settle(skipCurrent bool) {
	it.valid = false
	var skipKey []byte
	haveSkip := false
	if skipCurrent && it.key != nil {
		skipKey, haveSkip = it.key, true
	}
	for ; it.m.Valid(); it.m.Next() {
		it.tl.Advance(it.db.opts.IterCPU)
		ikey := it.m.Key()
		ukey, seq, kind, ok := keys.ParseInternalKey(ikey)
		if !ok {
			continue
		}
		if seq > it.seq {
			continue // newer than the iterator's snapshot
		}
		if haveSkip && keys.CompareUser(ukey, skipKey) == 0 {
			continue
		}
		if kind == keys.KindDelete {
			skipKey = append(skipKey[:0], ukey...)
			haveSkip = true
			continue
		}
		it.key = append(it.key[:0], ukey...)
		it.value = append(it.value[:0], it.m.Value()...)
		it.valid = true
		return
	}
	it.err = it.m.Err()
}

// Valid reports whether the iterator is at an entry.
func (it *Iterator) Valid() bool { return it.valid }

// Key returns the current user key (valid until the next move).
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value (valid until the next move).
func (it *Iterator) Value() []byte { return it.value }

// Err reports an iteration error.
func (it *Iterator) Err() error { return it.err }
