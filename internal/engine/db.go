package engine

import (
	"container/list"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"noblsm/internal/core"
	"noblsm/internal/governor"
	"noblsm/internal/keys"
	"noblsm/internal/memtable"
	"noblsm/internal/obs"
	"noblsm/internal/sstable"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
	"noblsm/internal/vfs"
	"noblsm/internal/wal"
)

// ErrNotFound is returned by Get for absent or deleted keys.
var ErrNotFound = errors.New("engine: key not found")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("engine: database is closed")

// Stats count engine activity for the experiment harness.
type Stats struct {
	Puts, Deletes, Gets, GetHits int64

	MinorCompactions int64
	MajorCompactions int64
	TrivialMoves     int64
	SeekCompactions  int64

	CompactionBytesRead    int64
	CompactionBytesWritten int64
	HotBytesRetained       int64

	SlowdownStalls int64
	SlowdownTime   vclock.Duration
	// RotationStall is foreground time spent waiting for the
	// background thread before a memtable rotation (LevelDB's "wait
	// for immutable memtable" and L0-stop stalls).
	RotationStall vclock.Duration
}

// DB is the LSM-tree store. All methods take the calling thread's
// virtual timeline. Concurrency follows LevelDB's shape: writers are
// group-committed through a leader-based queue (writequeue.go), reads
// go through atomically published {memtable, version} snapshots
// (readstate.go) without taking DB.mu, and DB.mu itself is narrowed
// to version/manifest state transitions — memtable rotation, version
// edits, compaction scheduling and the seek-compaction bookkeeping.
type DB struct {
	// mu guards version/manifest state: current, lastSeq, pointers,
	// manifest*, wal*, nextFile, mem (the pointer; its contents are
	// single-writer/multi-reader), logGates, bg timelines, snapshots
	// and the compaction trigger fields. The write-path leader holds
	// it for the whole commit; reads do not take it.
	mu   sync.Mutex
	opts Options
	fs   vfs.FS

	// Writer queue (group commit): wqMu guards writeQ only and nests
	// inside mu. visibleSeq is the newest sequence readers may
	// observe, published after a whole group is in the memtable so a
	// group is never read half-applied.
	wqMu       sync.Mutex
	writeQ     []*writeReq
	visibleSeq atomicSeq

	// Read snapshots: rsMu (leaf lock, nests inside mu) guards the
	// readState refcounts; rs is the currently published snapshot.
	rsMu       sync.Mutex
	rs         *readState
	readStates map[*readState]struct{}

	mem       *memtable.MemTable
	wal       *wal.Writer
	walFile   vfs.File
	walNumber uint64

	// Async-compaction state (Options.AsyncCompaction; all under mu).
	// imm is the immutable memtable being flushed by the background
	// worker; bgCond is signaled when imm clears or the worker parks.
	imm            *memtable.MemTable
	bgActive       bool
	bgCond         *sync.Cond
	bgErr          error
	flushLogNumber uint64
	flushStartAt   vclock.Time
	// opening suppresses background-worker startup while Open still
	// owns the DB single-threaded: recovery's inline flushes run
	// without db.mu, so a worker spawned mid-replay would race them.
	// Open clears it and kicks the worker once construction is done.
	opening bool

	current        *version.Version
	manifest       *wal.Writer
	manifestFile   vfs.File
	manifestNumber uint64
	pointers       [version.NumLevels][]byte

	// nextFile is atomic because an unlocked background compaction
	// cuts output files while writers allocate WAL numbers under mu.
	nextFile atomic.Uint64
	lastSeq  keys.SeqNum

	tcache  *tableCache
	tracker *core.Tracker
	sys     core.Syscalls // non-nil in NobLSM mode
	hot     *hotSketch

	// logGates defer write-ahead-log deletion in NobLSM mode: logs
	// below Log become obsolete only once the MANIFEST is durably
	// committed past ManifestOff (the edit that superseded them).
	// Without this, the log's unlink — a metadata operation — can
	// commit ahead of the manifest edit's (delayed-allocation) data
	// and orphan a freshly synced L0 table across a crash.
	logGates []logGate

	// bg are the background compaction timelines; minorDoneAt is
	// when the most recent minor compaction completes in virtual
	// time (the foreground blocks on it when the memtable fills
	// before the previous immutable memtable is flushed).
	bg          []*vclock.Timeline
	minorDoneAt vclock.Time

	fileToCompact      *version.FileMeta
	fileToCompactLevel int

	// Obsolete-file candidates (async mode, under mu): table numbers a
	// merged compaction removed from the version, and rotated-out WAL
	// numbers, pending disposal. The default synchronous engine keeps
	// LevelDB's full directory scan instead (deleteObsoleteFiles), so
	// the virtual-time figures are untouched; the async worker disposes
	// of exactly these candidates without listing the directory.
	obsoleteTables []uint64
	obsoleteLogs   []uint64

	// testBeforeInstall, when set by a test, runs after a sharded
	// compaction's merge completes but before its version edit is
	// applied — the window where a crash must not expose a partial
	// successor set. Called with db.mu held and the would-be output
	// file numbers.
	testBeforeInstall func(outputs []uint64)

	// snapshots holds live Snapshots in creation (= sequence) order.
	snapshots *list.List

	memSeed int64
	closed  atomic.Bool

	// Background-error state machine (bgerror.go). bgPermanent is the
	// first permanent background error (under mu); readOnly mirrors it
	// atomically for lock-free write gating. walPoisoned marks the
	// current WAL as unappendable after a failed AddRecord (the next
	// commit rotates first); walFailures counts consecutive WAL append
	// failures. logNumber tracks the newest log number recorded in a
	// manifest edit — the floor a manifest rewrite snapshots. repairs
	// maps successor tables to their shadow-predecessor rollback plans
	// (heal.go).
	bgPermanent error
	readOnly    atomic.Bool
	walPoisoned bool
	walFailures int
	logNumber   uint64
	repairs     map[uint64]*repairPlan

	// reg is the metrics registry (opts.Metrics or a private one);
	// m are the engine counters resolved from it once at Open, so
	// hot-path updates are single atomic adds. trace is the optional
	// event sink — nil disables tracing at one pointer check per
	// site.
	reg   *obs.Registry
	m     engineMetrics
	trace *obs.Tracer

	// governor is the write admission controller
	// (Options.GovernorEnabled; governor.go). Nil when disabled —
	// every call site is a nil-receiver no-op. The pointer is set once
	// at Open and never mutated, so writers read it without mu.
	governor *governor.Governor

	// tel is the per-op attribution plane (opts.Telemetry): phase
	// timers, the cause-tagged stall ledger and the windowed
	// time-series. Nil disables attribution at one pointer check per
	// operation (see db.stalls and the span threading in
	// writequeue.go / getObserved).
	tel *obs.Telemetry

	// walDropsAtRecovery counts log records lost to the torn tail or
	// corruption during the last recovery — the "broken KV pairs in
	// the logs" of the paper's consistency test.
	walDropsAtRecovery int

	// Checkpoint references (checkpoint.go). ckptMu is a leaf lock
	// (nests inside mu) guarding the registry, so both GC paths can
	// consult the pins whether or not they hold mu. lastBackup is the
	// most recent successful Backup, for the doctor report.
	ckptMu     sync.Mutex
	ckpts      map[uint64]*checkpointRef
	ckptSeq    uint64
	lastBackup *BackupInfo
}

// WALDropsAtRecovery reports how many write-ahead-log records were
// dropped (torn or corrupt) during Open's recovery.
func (db *DB) WALDropsAtRecovery() int { return db.walDropsAtRecovery }

// atomicSeq is an atomically accessed keys.SeqNum.
type atomicSeq struct{ v atomic.Uint64 }

func (a *atomicSeq) Store(s keys.SeqNum) { a.v.Store(uint64(s)) }
func (a *atomicSeq) Load() keys.SeqNum   { return keys.SeqNum(a.v.Load()) }

// engineMetrics are the engine counters, resolved once from the
// registry under the "engine." (and "wal."/"manifest.") prefixes;
// Stats() is a view over them.
type engineMetrics struct {
	puts, deletes, gets, getHits *obs.Counter
	getFilesExamined             *obs.Counter
	userBytes                    *obs.Counter

	// MultiGet batch accounting: probes/keys is the batch's read
	// amplification (table probes per key), batches/keys its mean size.
	multiGetBatches, multiGetKeys, multiGetProbes *obs.Counter

	minor, major, trivial, seek *obs.Counter
	bytesRead, bytesWritten     *obs.Counter
	hotBytesRetained            *obs.Counter

	slowdownStalls         *obs.Counter
	slowdownNs, rotationNs *obs.Counter

	walRecords, walBytes           *obs.Counter
	manifestRecords, manifestBytes *obs.Counter

	minorDur, majorDur *obs.Timer
	// majorDurUs mirrors majorDur as a plain histogram in microseconds
	// so benchmark tooling can read compaction-duration percentiles
	// without knowing the timer encoding.
	majorDurUs *obs.Histogram

	// subcompactions is the shards-per-major distribution (1 = the
	// compaction ran unsharded); activeSubcompactions is the live
	// shard-pipeline count of the in-flight major, 0 between majors.
	subcompactions       *obs.Histogram
	activeSubcompactions *obs.Gauge

	// groupCommitSize is the batches-per-group distribution of the
	// leader-based write queue (1 = no coalescing happened).
	groupCommitSize *obs.Histogram

	// Background-error state machine and self-healing counters
	// (bgerror.go / heal.go).
	bgTransientErrors  *obs.Counter
	bgRetries          *obs.Counter
	bgPermanentErrors  *obs.Counter
	readOnlyGauge      *obs.Gauge
	walPoisonRotations *obs.Counter
	readRetries        *obs.Counter
	readsHealed        *obs.Counter
	tablesQuarantined  *obs.Counter

	// Checkpoint/backup plane (checkpoint.go): live references, the
	// files and bytes their pins retain, zero-copy accounting, and the
	// last-backup watermark.
	ckptActive        *obs.Gauge
	ckptCreated       *obs.Counter
	ckptReleased      *obs.Counter
	ckptPinnedFiles   *obs.Gauge
	ckptRetainedBytes *obs.Gauge
	ckptLinkedFiles   *obs.Counter
	ckptCopiedBytes   *obs.Counter
	backups           *obs.Counter
	lastBackupSeq     *obs.Gauge
	lastBackupAt      *obs.Gauge

	// Replication apply plane (ApplyReplicated): records a follower
	// applied, skipped as duplicates, and its applied-sequence
	// watermark (lag = primary visible seq − this).
	replicaApplied *obs.Counter
	replicaSkipped *obs.Counter
	replicaBytes   *obs.Counter
	replicaSeq     *obs.Gauge
}

func newEngineMetrics(r *obs.Registry) engineMetrics {
	return engineMetrics{
		puts:             r.Counter("engine.puts"),
		deletes:          r.Counter("engine.deletes"),
		gets:             r.Counter("engine.gets"),
		getHits:          r.Counter("engine.get_hits"),
		getFilesExamined: r.Counter("engine.get_files_examined"),
		userBytes:        r.Counter("engine.user_bytes_written"),

		multiGetBatches: r.Counter("engine.multiget.batches"),
		multiGetKeys:    r.Counter("engine.multiget.keys"),
		multiGetProbes:  r.Counter("engine.multiget.probes"),

		minor:            r.Counter("engine.compactions.minor"),
		major:            r.Counter("engine.compactions.major"),
		trivial:          r.Counter("engine.compactions.trivial_moves"),
		seek:             r.Counter("engine.compactions.seek"),
		bytesRead:        r.Counter("compaction.bytes_read"),
		bytesWritten:     r.Counter("compaction.bytes_written"),
		hotBytesRetained: r.Counter("engine.compaction.hot_bytes_retained"),

		slowdownStalls: r.Counter("engine.stall.slowdown_count"),
		slowdownNs:     r.Counter("engine.stall.slowdown_ns"),
		rotationNs:     r.Counter("engine.stall.rotation_ns"),

		walRecords:      r.Counter("wal.records"),
		walBytes:        r.Counter("wal.bytes"),
		manifestRecords: r.Counter("manifest.records"),
		manifestBytes:   r.Counter("manifest.bytes"),

		minorDur:   r.Timer("engine.compaction.minor_duration"),
		majorDur:   r.Timer("engine.compaction.major_duration"),
		majorDurUs: r.Histogram("compaction.duration_us"),

		subcompactions:       r.Histogram("compaction.subcompactions"),
		activeSubcompactions: r.Gauge("compaction.active_subcompactions"),

		groupCommitSize: r.Histogram("engine.group_commit_size"),

		bgTransientErrors:  r.Counter("engine.bg.transient_errors"),
		bgRetries:          r.Counter("engine.bg.retries"),
		bgPermanentErrors:  r.Counter("engine.bg.permanent_errors"),
		readOnlyGauge:      r.Gauge("engine.read_only"),
		walPoisonRotations: r.Counter("engine.wal.poison_rotations"),
		readRetries:        r.Counter("engine.read_retries"),
		readsHealed:        r.Counter("engine.reads_healed"),
		tablesQuarantined:  r.Counter("engine.tables_quarantined"),

		ckptActive:        r.Gauge("engine.ckpt.active"),
		ckptCreated:       r.Counter("engine.ckpt.created"),
		ckptReleased:      r.Counter("engine.ckpt.released"),
		ckptPinnedFiles:   r.Gauge("engine.ckpt.pinned_files"),
		ckptRetainedBytes: r.Gauge("engine.ckpt.retained_bytes"),
		ckptLinkedFiles:   r.Counter("engine.ckpt.files_linked"),
		ckptCopiedBytes:   r.Counter("engine.ckpt.bytes_copied"),
		backups:           r.Counter("engine.ckpt.backups"),
		lastBackupSeq:     r.Gauge("engine.ckpt.last_backup_seq"),
		lastBackupAt:      r.Gauge("engine.ckpt.last_backup_at_ns"),

		replicaApplied: r.Counter("engine.replica.records_applied"),
		replicaSkipped: r.Counter("engine.replica.records_skipped"),
		replicaBytes:   r.Counter("engine.replica.bytes_applied"),
		replicaSeq:     r.Gauge("engine.replica.applied_seq"),
	}
}

// Open opens (or creates) a database on fs. In SyncNobLSM mode fs must
// also implement core.Syscalls (the ext4 simulation does).
func Open(tl *vclock.Timeline, fs vfs.FS, opts Options) (*DB, error) {
	opts = opts.sanitize()
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	db := &DB{
		opts:       opts,
		fs:         fs,
		memSeed:    opts.Seed,
		snapshots:  list.New(),
		readStates: make(map[*readState]struct{}),
		reg:        reg,
		m:          newEngineMetrics(reg),
		trace:      opts.Events,
		tel:        opts.Telemetry,
		ckpts:      make(map[uint64]*checkpointRef),
	}
	db.nextFile.Store(2)
	db.bgCond = sync.NewCond(&db.mu)
	db.mem = memtable.New(db.memSeed)
	db.tcache = newTableCache(fs, db.tableOptions(), opts.BlockCacheBytes, opts.CompressedBlockCacheBytes)
	db.tcache.blocks.Instrument(reg.Counter("cache.block.hits"), reg.Counter("cache.block.misses"), reg.Counter("cache.block.fills"))
	db.tcache.tables.Instrument(reg.Counter("cache.table.hits"), reg.Counter("cache.table.misses"), reg.Counter("cache.table.fills"))
	reg.Gauge("cache.shards").Set(int64(db.tcache.blocks.Shards()))
	reg.Gauge("cache.table.shards").Set(int64(db.tcache.tables.Shards()))
	if db.tcache.cblocks != nil {
		db.tcache.cblocks.Instrument(reg.Counter("cache.cblock.hits"), reg.Counter("cache.cblock.misses"), reg.Counter("cache.cblock.fills"))
		reg.Gauge("cache.cblock.shards").Set(int64(db.tcache.cblocks.Shards()))
	}
	for i := 0; i < opts.ParallelCompactions; i++ {
		db.bg = append(db.bg, vclock.NewTimeline(tl.Now()))
	}
	db.governor = db.newGovernor()
	if opts.HotCold {
		db.hot = newHotSketch()
	}
	if opts.SyncMode == SyncNobLSM {
		sys, ok := fs.(core.Syscalls)
		if !ok {
			return nil, fmt.Errorf("engine: NobLSM mode needs a filesystem with check_commit/is_committed syscalls")
		}
		db.sys = sys
		db.tracker = core.NewTrackerObserved(sys, opts.PollInterval, func(tl *vclock.Timeline, f core.FileInfo) {
			db.fs.Remove(tl, f.Name)
			db.tcache.evict(tl, f.Number)
		}, reg, opts.Events)
	}

	db.opening = true
	hasCurrent := fs.Exists(tl, CurrentName)
	if !hasCurrent && storeHasFiles(tl, fs) {
		// CURRENT is gone but store files exist (a crash can lose
		// CURRENT's namespace op while fsynced tables survive, and
		// operators delete it by accident). Never silently create a
		// fresh DB over existing data.
		if opts.RecoveryMode == RecoverStrict {
			return nil, fmt.Errorf("%w: CURRENT missing but store files present", ErrNeedsRepair)
		}
		if _, err := Repair(tl, fs, opts); err != nil {
			return nil, err
		}
		hasCurrent = true
	}
	if hasCurrent {
		err := db.recover(tl)
		if err != nil && errors.Is(err, ErrNeedsRepair) && opts.RecoveryMode == RecoverSalvage {
			if _, rerr := Repair(tl, fs, opts); rerr != nil {
				return nil, fmt.Errorf("engine: auto-repair after %q failed: %w", err, rerr)
			}
			err = db.recover(tl)
		}
		if err != nil {
			return nil, err
		}
	} else {
		if err := db.createNew(tl); err != nil {
			return nil, err
		}
	}
	db.visibleSeq.Store(db.lastSeq)
	db.publishReadState()
	db.deleteObsoleteFiles(tl)
	db.mu.Lock()
	db.opening = false
	if db.opts.AsyncCompaction && (db.imm != nil || db.fileToCompact != nil || db.compactionPending()) {
		// Work discovered during recovery waits until the DB is fully
		// constructed; pick it up now.
		db.startBgWork()
	}
	db.mu.Unlock()
	return db, nil
}

// storeHasFiles reports whether the directory already holds files of
// an engine store (tables, logs, manifests), ignoring foreign names.
func storeHasFiles(tl *vclock.Timeline, fs vfs.FS) bool {
	for _, name := range fs.List(tl) {
		if _, _, ok := ParseFileName(name); ok && name != CurrentName {
			return true
		}
	}
	return false
}

// tableOptions are the read-side table options shared by every open
// table. Reading is per-block tag-driven, so the level-dependent build
// choices (codec, filter sizing) need no reader counterpart — the
// compressed cache tier is attached by the table cache, which owns it.
func (db *DB) tableOptions() sstable.Options {
	return sstable.Options{
		BlockSize:       db.opts.BlockSize,
		RestartInterval: 16,
		BloomBitsPerKey: db.opts.BloomBitsPerKey,
		ReadaheadBlocks: db.opts.IterReadaheadBlocks,
		CodecCostDiv:    db.opts.CodecCostDiv,
	}
}

// buildOptions shape a Builder for a table targeting level: the codec
// and filter sizing resolve per level, and scratch (may be nil) lends
// reusable buffers — one owner per builder sequence, never shared
// across goroutines.
func (db *DB) buildOptions(level int, scratch *sstable.BuildScratch) sstable.Options {
	o := db.tableOptions()
	o.Compression = db.opts.compressionForLevel(level)
	o.BloomBitsPerKey = db.opts.bloomBitsForLevel(level)
	o.Scratch = scratch
	return o
}

// createNew initializes an empty database: MANIFEST, CURRENT, WAL.
func (db *DB) createNew(tl *vclock.Timeline) error {
	db.current = &version.Version{}
	db.manifestNumber = 1
	mf, err := db.fs.Create(tl, ManifestName(db.manifestNumber))
	if err != nil {
		return err
	}
	db.manifestFile = mf
	db.manifest = wal.NewWriter(mf)
	db.manifest.Instrument(db.m.manifestRecords, db.m.manifestBytes)

	if err := db.newWAL(tl); err != nil {
		return err
	}
	edit := &version.VersionEdit{}
	edit.SetLogNumber(db.walNumber)
	if err := db.logAndApply(tl, edit); err != nil {
		return err
	}
	if err := db.fs.WriteFile(tl, CurrentName, []byte(ManifestName(db.manifestNumber)+"\n")); err != nil {
		return err
	}
	if db.opts.syncManifest() {
		return db.fs.SyncDir(tl)
	}
	return nil
}

// newWAL rotates to a fresh write-ahead log.
func (db *DB) newWAL(tl *vclock.Timeline) error {
	num := db.newFileNumber()
	f, err := db.fs.Create(tl, LogName(num))
	if err != nil {
		return err
	}
	if db.walFile != nil {
		db.walFile.Close(tl)
	}
	if db.opts.AsyncCompaction && db.walNumber != 0 {
		// The rotated-out log becomes a disposal candidate once the
		// flush that supersedes it is durable (safeLogNumber gates).
		db.obsoleteLogs = append(db.obsoleteLogs, db.walNumber)
	}
	db.walFile = f
	db.wal = wal.NewWriter(f)
	db.wal.Instrument(db.m.walRecords, db.m.walBytes)
	if db.tel != nil {
		db.wal.InstrumentTimer(db.reg.Timer("wal.append_duration"))
	}
	db.walNumber = num
	if db.trace != nil {
		db.trace.Instant(obs.TidForeground, "memtable", "wal.rotate", tl.Now(),
			obs.KV{K: "log", V: num})
	}
	return nil
}

func (db *DB) newFileNumber() uint64 {
	return db.nextFile.Add(1) - 1
}

// logAndApply installs a version edit: it applies the edit to the
// in-memory version and appends it to the MANIFEST (synced only in
// sync-all/BoLT modes; NobLSM relies on journal ordering).
//
// logAndApply never returns a transient-retryable error: a failed
// manifest append is recovered internally by snapshotting the applied
// version onto a fresh manifest (recoverManifest), and only a
// permanent failure — which has already flipped the DB read-only —
// propagates.
func (db *DB) logAndApply(tl *vclock.Timeline, edit *version.VersionEdit) error {
	edit.SetNextFileNumber(db.nextFile.Load())
	edit.SetLastSeq(db.lastSeq)
	b := version.NewBuilder(db.current)
	b.Apply(edit)
	db.current = b.Finish()
	if edit.HasLogNumber && edit.LogNumber > db.logNumber {
		db.logNumber = edit.LogNumber
	}
	// Every version change republishes the read snapshot; memtable
	// rotations are always followed by the flush's edit, so this is
	// the single publication point for readers.
	db.publishReadState()
	if err := db.manifest.AddRecord(tl, edit.Encode()); err != nil {
		return db.recoverManifest(tl, err)
	}
	if db.opts.syncManifest() {
		return db.retryFileSync(tl, db.manifestFile, "manifest")
	}
	if db.sys != nil && edit.HasLogNumber {
		db.logGates = append(db.logGates, logGate{
			Log:         edit.LogNumber,
			ManifestOff: db.manifestFile.Size(),
		})
	}
	return nil
}

// logGate gates the deletion of logs below Log on the MANIFEST being
// durably committed past ManifestOff.
type logGate struct {
	Log         uint64
	ManifestOff int64
}

// safeLogNumber reports the newest log number whose predecessors may
// be deleted. With a synced manifest that is simply the current WAL;
// in NobLSM mode it is the highest gate whose manifest edit has become
// durable via asynchronous commit.
func (db *DB) safeLogNumber(tl *vclock.Timeline) uint64 {
	if db.sys == nil {
		return db.walNumber
	}
	committed := db.sys.CommittedSize(tl, db.manifestFile.Ino())
	var safe uint64
	remaining := db.logGates[:0]
	for _, g := range db.logGates {
		if committed >= g.ManifestOff {
			if g.Log > safe {
				safe = g.Log
			}
		} else {
			remaining = append(remaining, g)
		}
	}
	db.logGates = remaining
	if safe == 0 {
		return 0 // nothing provably durable yet: keep all logs
	}
	return safe
}

// Put inserts a key/value pair.
func (db *DB) Put(tl *vclock.Timeline, key, value []byte) error {
	var b Batch
	b.Put(key, value)
	return db.Write(tl, &b)
}

// Delete writes a tombstone for key.
func (db *DB) Delete(tl *vclock.Timeline, key []byte) error {
	var b Batch
	b.Delete(key)
	return db.Write(tl, &b)
}

// leveledL0Count counts L0 files that participate in the leveled
// structure; hot-zone files (the L2SM model) live outside it and must
// not drive write throttling, or every write pays the slowdown
// penalty forever.
func (db *DB) leveledL0Count() int {
	n := 0
	for _, f := range db.current.Files[0] {
		if !f.Hot {
			n++
		}
	}
	return n
}

// stalls returns the cause-tagged stall ledger, or nil when telemetry
// is off (every ledger method is a nil-receiver no-op).
func (db *DB) stalls() *obs.StallLedger {
	if db.tel == nil {
		return nil
	}
	return db.tel.Stalls
}

// makeRoomForWrite applies LevelDB's write throttling and rotates a
// full memtable into a minor compaction. sp is the leader's
// attribution span (nil when telemetry is off): throttling time stays
// in the open PhaseWriteThrottle, an inline flush is reassigned to
// PhaseWriteFlush, and every wait is charged to the stall ledger under
// its cause.
func (db *DB) makeRoomForWrite(tl *vclock.Timeline, sp *obs.OpSpan) error {
	if db.walPoisoned {
		// The previous group's WAL append failed; the log may hold a
		// torn record, so rotate before appending anything else.
		from := tl.Now()
		err := db.rotatePoisonedWAL(tl)
		db.stalls().Observe(obs.StallWALRotate, tl.Now(), tl.Now().Sub(from))
		if err != nil {
			return err
		}
	}
	// With the admission governor on, the per-group slowdown cliff is
	// retired: pacing already slowed every writer in proportion to
	// measured debt, so stacking the fixed penalty on top would
	// re-introduce the latency spike the governor exists to remove.
	// The rotation and L0-stop waits below remain as backstops.
	allowDelay := db.governor == nil
	for {
		l0 := db.leveledL0Count()
		if allowDelay && l0 >= db.opts.L0SlowdownTrigger {
			// Soft limit: penalize each write by 1 ms to let the
			// background catch up.
			from := tl.Now()
			tl.Advance(db.opts.SlowdownDelay)
			db.m.slowdownStalls.Inc()
			db.m.slowdownNs.AddDuration(db.opts.SlowdownDelay)
			db.stalls().Observe(obs.StallL0Slowdown, tl.Now(), db.opts.SlowdownDelay)
			if db.trace != nil {
				db.trace.Span(obs.TidForeground, "stall", "stall.slowdown", from, tl.Now(),
					obs.KV{K: "cause", V: obs.StallL0Slowdown.String()},
					obs.KV{K: "l0_files", V: l0})
			}
			allowDelay = false
			continue
		}
		if db.mem.ApproximateMemoryUsage() <= db.opts.WriteBufferSize {
			return nil
		}
		if db.opts.AsyncCompaction {
			// Real background mode: park the full memtable in the
			// immutable slot and let the worker flush it; block (for
			// real) only while the previous flush is still running.
			for db.imm != nil && db.bgErr == nil {
				db.bgCond.Wait()
			}
			if db.bgErr != nil {
				return db.bgErr
			}
			if _, err := db.boundedWait(tl, db.minorDoneAt, obs.StallMemtableFull); err != nil {
				return err
			}
			if l0 = db.leveledL0Count(); l0 >= db.opts.L0StopTrigger {
				if _, err := db.boundedWait(tl, db.maxBgTime(), obs.StallCompactionBacklog); err != nil {
					return err
				}
			}
			db.imm = db.mem
			db.memSeed++
			db.mem = memtable.New(db.memSeed)
			if err := db.newWAL(tl); err != nil {
				return err
			}
			db.flushLogNumber = db.walNumber
			db.flushStartAt = tl.Now()
			// Readers must see the parked memtable until its table
			// lands in the version.
			db.publishReadState()
			db.startBgWork()
			continue
		}
		// The memtable is full. The previous immutable memtable must
		// finish flushing first (single background thread), and a
		// crowded L0 hard-stops writes until compactions drain.
		d, err := db.boundedWait(tl, db.minorDoneAt, obs.StallMemtableFull)
		if err != nil {
			return err
		}
		if d > 0 && db.trace != nil {
			db.trace.Span(obs.TidForeground, "stall", "stall.rotation", tl.Now().Add(-d), tl.Now(),
				obs.KV{K: "cause", V: obs.StallMemtableFull.String()})
		}
		if l0 >= db.opts.L0StopTrigger {
			d, err := db.boundedWait(tl, db.maxBgTime(), obs.StallCompactionBacklog)
			if err != nil {
				return err
			}
			if d > 0 && db.trace != nil {
				db.trace.Span(obs.TidForeground, "stall", "stall.l0_stop", tl.Now().Add(-d), tl.Now(),
					obs.KV{K: "cause", V: obs.StallCompactionBacklog.String()},
					obs.KV{K: "l0_files", V: l0})
			}
		}
		imm := db.mem
		db.memSeed++
		db.mem = memtable.New(db.memSeed)
		if db.trace != nil {
			db.trace.Instant(obs.TidForeground, "memtable", "memtable.rotate", tl.Now(),
				obs.KV{K: "bytes", V: imm.ApproximateMemoryUsage()})
		}
		// The WAL rotation and the inline minor compaction are the
		// memtable handoff, not throttling.
		sp.To(tl.Now(), obs.PhaseWriteFlush)
		if err := db.newWAL(tl); err != nil {
			return err
		}
		// Logs below the fresh WAL become obsolete once the flush's
		// edit is durable.
		if err := db.flushWithRetry(tl, imm, db.walNumber, false); err != nil {
			// Park the unflushed memtable in the immutable slot so its
			// acked records stay readable; recovery replays them from
			// the rotated-out WAL.
			db.imm = imm
			db.flushLogNumber = db.walNumber
			db.flushStartAt = tl.Now()
			db.publishReadState()
			return err
		}
		sp.To(tl.Now(), obs.PhaseWriteThrottle)
	}
}

func (db *DB) maxBgTime() vclock.Time {
	var m vclock.Time
	for _, bg := range db.bg {
		if bg.Now() > m {
			m = bg.Now()
		}
	}
	return m
}

// pickBg returns the least-busy background timeline.
func (db *DB) pickBg() *vclock.Timeline {
	best := db.bg[0]
	for _, bg := range db.bg[1:] {
		if bg.Now() < best.Now() {
			best = bg
		}
	}
	return best
}

// Get returns the newest visible value of key, or ErrNotFound.
func (db *DB) Get(tl *vclock.Timeline, key []byte) ([]byte, error) {
	v, _, err := db.getObserved(tl, key, keys.MaxSeqNum, db.tel != nil)
	return v, err
}

// GetObserved is Get plus the operation's attribution span, for
// callers (and tests) that need per-op phase durations rather than the
// aggregate timers. The span is populated whether or not telemetry is
// enabled; the aggregate plane only accumulates when it is.
func (db *DB) GetObserved(tl *vclock.Timeline, key []byte) ([]byte, obs.OpSpan, error) {
	return db.getObserved(tl, key, keys.MaxSeqNum, true)
}

// get reads key as of sequence snapSeq (the snapshot read path).
func (db *DB) get(tl *vclock.Timeline, key []byte, snapSeq keys.SeqNum) ([]byte, error) {
	v, _, err := db.getObserved(tl, key, snapSeq, db.tel != nil)
	return v, err
}

// getObserved reads key as of sequence snapSeq, retrying transient
// injected faults with backoff and routing sstable corruption through
// the self-healing path (heal.go): a corrupt successor whose shadow
// predecessors are still retained is rolled back and the read
// re-served from them. Fault-free reads take this wrapper's single
// fall-through iteration, so the deterministic figures are untouched.
// With observed set, an attribution span is threaded through the
// attempt(s): probe time in PhaseReadMem/TableOpen/TableGet, healing
// in PhaseReadHeal, retry backoff in PhaseReadBackoff.
func (db *DB) getObserved(tl *vclock.Timeline, key []byte, snapSeq keys.SeqNum, observed bool) ([]byte, obs.OpSpan, error) {
	var span obs.OpSpan
	var sp *obs.OpSpan
	if observed {
		sp = &span
		sp.Begin(tl.Now(), obs.PhaseReadMem)
	}
	transient, heals := 0, 0
	for {
		v, err := db.getOnce(tl, key, snapSeq, sp)
		if err == nil || errors.Is(err, ErrNotFound) || errors.Is(err, ErrClosed) {
			sp.Finish(tl.Now())
			db.tel.ObserveRead(sp)
			return v, span, err
		}
		if heals <= bgMaxRetries {
			sp.To(tl.Now(), obs.PhaseReadHeal)
			healed := db.healFromRead(tl, err)
			sp.To(tl.Now(), obs.PhaseReadMem)
			if healed {
				heals++
				db.m.readRetries.Inc()
				continue
			}
		}
		if vfs.IsTransient(err) && transient < bgMaxRetries {
			transient++
			db.m.readRetries.Inc()
			sp.To(tl.Now(), obs.PhaseReadBackoff)
			tl.Advance(bgBackoff(transient - 1))
			sp.To(tl.Now(), obs.PhaseReadMem)
			continue
		}
		sp.Finish(tl.Now())
		db.tel.ObserveRead(sp)
		return nil, span, err
	}
}

// getOnce performs one lookup attempt as of sequence snapSeq
// (MaxSeqNum = latest). Reads do not take db.mu: they pin the
// published {memtable, version} snapshot and read through it
// lock-free. Only the seek-compaction bookkeeping — a version-state
// mutation — briefly acquires db.mu. sp (nil when attribution is off)
// enters in PhaseReadMem and is switched to TableOpen/TableGet around
// each table probe.
func (db *DB) getOnce(tl *vclock.Timeline, key []byte, snapSeq keys.SeqNum, sp *obs.OpSpan) ([]byte, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if vis := db.visibleSeq.Load(); snapSeq > vis {
		snapSeq = vis
	}
	tl.Advance(db.opts.ReadCPU)
	db.m.gets.Inc()
	if db.tracker != nil {
		db.tracker.MaybePoll(tl)
	}
	rs := db.acquireReadState()
	released := false
	release := func() {
		if !released {
			released = true
			db.releaseReadState(rs)
		}
	}
	defer release()

	if v, deleted, found := rs.mem.Get(key, snapSeq); found {
		if deleted {
			return nil, ErrNotFound
		}
		db.m.getHits.Inc()
		return append([]byte(nil), v...), nil
	}
	if rs.imm != nil {
		// An immutable memtable parked for a background flush is newer
		// than every table, so it is probed before the levels.
		if v, deleted, found := rs.imm.Get(key, snapSeq); found {
			if deleted {
				return nil, ErrNotFound
			}
			db.m.getHits.Inc()
			return append([]byte(nil), v...), nil
		}
	}

	seek := keys.MakeInternalKey(nil, key, snapSeq, keys.KindSeek)
	var firstExamined *version.FileMeta
	firstLevel := 0
	examined := 0
	charge := func() {
		// The value (if any) is already copied out: drop the read
		// pin first, so a seek compaction triggered below sees this
		// lookup's version as unreferenced and can dispose of its
		// obsolete tables immediately (identical deletion timing to
		// the serialized engine).
		release()
		db.m.getFilesExamined.Add(int64(examined))
		// LevelDB charges the first file examined when a lookup
		// touched more than one file; exhausting its seek budget
		// schedules a seek compaction. That bookkeeping mutates
		// version state, so it is the one part of the read path that
		// takes db.mu.
		if examined < 2 || firstExamined == nil {
			return
		}
		db.mu.Lock()
		defer db.mu.Unlock()
		firstExamined.AllowedSeeks--
		// The bottom level has nowhere to push a seek compaction.
		if firstExamined.AllowedSeeks <= 0 && db.fileToCompact == nil &&
			firstLevel < version.NumLevels-1 {
			db.fileToCompact = firstExamined
			db.fileToCompactLevel = firstLevel
			db.maybeScheduleCompaction(tl, false)
		}
	}
	for level := 0; level < version.NumLevels; level++ {
		// Within a level, several candidate files can hold versions
		// of the key (L0 always; fragmented levels; hot-retained
		// outputs whose file numbers do not track data recency), so
		// the newest version is selected by sequence number, not by
		// file order.
		var (
			bestSeq   keys.SeqNum
			bestKind  keys.Kind
			bestVal   []byte
			bestFound bool
		)
		for _, fm := range rs.v.ForLookup(level, key, db.opts.Picker.Fragmented) {
			sp.To(tl.Now(), obs.PhaseReadTableOpen)
			r, err := db.tcache.open(tl, fm)
			if err != nil {
				return nil, err
			}
			examined++
			if firstExamined == nil {
				firstExamined, firstLevel = fm, level
			}
			sp.To(tl.Now(), obs.PhaseReadTableGet)
			if !r.MayContain(key) {
				continue
			}
			ikey, val, found, err := r.Get(tl, seek)
			if err != nil {
				return nil, &tableError{num: fm.Number, err: err}
			}
			if !found {
				continue
			}
			ukey, seq, kind, ok := keys.ParseInternalKey(ikey)
			if !ok || keys.CompareUser(ukey, key) != 0 {
				continue
			}
			if !bestFound || seq > bestSeq {
				bestSeq, bestKind, bestFound = seq, kind, true
				bestVal = append(bestVal[:0], val...)
			}
		}
		if bestFound {
			charge()
			if bestKind == keys.KindDelete {
				return nil, ErrNotFound
			}
			db.m.getHits.Inc()
			return bestVal, nil
		}
	}
	charge()
	return nil, ErrNotFound
}

// Close flushes nothing (LevelDB semantics): it releases the handles.
// Unsynced state is recovered from the WAL on the next Open, modulo
// crash-loss windows.
func (db *DB) Close(tl *vclock.Timeline) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	// Drain the background worker (AsyncCompaction) before tearing
	// down: a parked immutable memtable is flushed so no goroutine
	// outlives the handle. Its error, if any, is the close result.
	bgErr := db.waitBgIdle()
	if !db.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	if db.walFile != nil {
		db.walFile.Close(tl)
	}
	if db.manifestFile != nil {
		db.manifestFile.Close(tl)
	}
	return bgErr
}

// Stats returns a snapshot of engine counters — a view over the
// metrics registry (see Registry for the full set). It takes no lock:
// each field is an independently atomic counter read, so the snapshot
// is tear-free per field (two fields may straddle a concurrent
// update, which is the usual monitoring contract).
func (db *DB) Stats() Stats {
	return Stats{
		Puts:                   db.m.puts.Value(),
		Deletes:                db.m.deletes.Value(),
		Gets:                   db.m.gets.Value(),
		GetHits:                db.m.getHits.Value(),
		MinorCompactions:       db.m.minor.Value(),
		MajorCompactions:       db.m.major.Value(),
		TrivialMoves:           db.m.trivial.Value(),
		SeekCompactions:        db.m.seek.Value(),
		CompactionBytesRead:    db.m.bytesRead.Value(),
		CompactionBytesWritten: db.m.bytesWritten.Value(),
		HotBytesRetained:       db.m.hotBytesRetained.Value(),
		SlowdownStalls:         db.m.slowdownStalls.Value(),
		SlowdownTime:           db.m.slowdownNs.Duration(),
		RotationStall:          db.m.rotationNs.Duration(),
	}
}

// Registry exposes the metrics registry the engine publishes into —
// the shared one from Options.Metrics, or the private fallback.
func (db *DB) Registry() *obs.Registry { return db.reg }

// Tracker exposes the NobLSM tracker (nil in other modes).
func (db *DB) Tracker() *core.Tracker { return db.tracker }

// Version returns the current version (read-only; for tests and
// tools).
func (db *DB) Version() *version.Version {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.current
}

// WaitBackground stalls tl until all background work completes in
// virtual time (used by experiments that measure total execution
// time including compaction drain).
func (db *DB) WaitBackground(tl *vclock.Timeline) {
	db.mu.Lock()
	defer db.mu.Unlock()
	tl.WaitUntil(db.minorDoneAt)
	tl.WaitUntil(db.maxBgTime())
}

// deleteObsoleteFiles removes files no version references: old WALs,
// old manifests, and tables that are neither live nor protected as
// NobLSM shadow predecessors.
func (db *DB) deleteObsoleteFiles(tl *vclock.Timeline) {
	live := db.current.LiveFiles()
	// Pinned read snapshots (in-flight Gets, open iterators) may still
	// reference superseded versions: their tables stay on disk until
	// the last reference drops.
	db.pinnedLiveFiles(live)
	// Live checkpoint references pin their captured tables and logs;
	// their files outlive every version that drops them until release.
	ckptTables, ckptLogs := db.ckptPins()
	safeLog := db.safeLogNumber(tl)
	for _, name := range db.fs.List(tl) {
		kind, num, ok := ParseFileName(name)
		if !ok {
			continue
		}
		remove := false
		switch kind {
		case KindLog:
			remove = num < safeLog && !ckptLogs[num]
		case KindTable:
			remove = !live[num] && !ckptTables[num] &&
				(db.tracker == nil || !db.tracker.Protected(num))
		case KindManifest:
			remove = num < db.manifestNumber
		}
		if remove {
			db.fs.Remove(tl, name)
			if kind == KindTable {
				db.tcache.evict(tl, num)
			}
		}
	}
}

// noteObsoleteTables records a merged compaction's inputs as disposal
// candidates (async mode). Trivial moves are never noted: their file
// lives on in the version. Caller holds db.mu.
func (db *DB) noteObsoleteTables(fms []*version.FileMeta) {
	for _, fm := range fms {
		db.obsoleteTables = append(db.obsoleteTables, fm.Number)
	}
}

// deleteObsoleteAsync disposes of the recorded candidates without
// scanning the directory — on a compaction-bound workload the full
// List of a large data dir per compaction dominates CPU. Candidates
// the NobLSM tracker protects are dropped outright (its release
// callback unlinks them itself); candidates pinned by read snapshots
// or still-gated logs stay queued for the next call. Caller holds
// db.mu. Open/Close keep the full-scan deleteObsoleteFiles, which
// also mops up anything a crash left behind.
func (db *DB) deleteObsoleteAsync(tl *vclock.Timeline) {
	var ckptTables, ckptLogs map[uint64]bool
	haveCkpts := false
	loadCkpts := func() {
		if !haveCkpts {
			haveCkpts = true
			ckptTables, ckptLogs = db.ckptPins()
		}
	}
	if len(db.obsoleteTables) > 0 {
		var pinned map[uint64]bool
		keep := db.obsoleteTables[:0]
		for _, num := range db.obsoleteTables {
			if db.tracker != nil && db.tracker.Protected(num) {
				continue
			}
			// Checkpoint-pinned candidates stay queued (like
			// read-pinned ones): the release mop-up or a later pass
			// reclaims them once the last reference drops.
			loadCkpts()
			if ckptTables[num] {
				keep = append(keep, num)
				continue
			}
			if pinned == nil {
				pinned = make(map[uint64]bool)
				db.pinnedLiveFiles(pinned)
			}
			if pinned[num] {
				keep = append(keep, num)
				continue
			}
			db.fs.Remove(tl, TableName(num))
			db.tcache.evict(tl, num)
		}
		db.obsoleteTables = keep
	}
	if len(db.obsoleteLogs) > 0 {
		safeLog := db.safeLogNumber(tl)
		keep := db.obsoleteLogs[:0]
		for _, num := range db.obsoleteLogs {
			loadCkpts()
			if num < safeLog && !ckptLogs[num] {
				db.fs.Remove(tl, LogName(num))
			} else {
				keep = append(keep, num)
			}
		}
		db.obsoleteLogs = keep
	}
}

// recover rebuilds state from CURRENT/MANIFEST and replays WALs.
//
// Conditions that in-place recovery cannot handle — CURRENT naming a
// missing or garbage manifest, or corruption in the manifest's
// interior (damage followed by further valid records, which silent
// truncation would misorder) — are reported as errors wrapping
// ErrNeedsRepair before any state is mutated; Open either fails with
// them (RecoverStrict) or rebuilds the store via Repair and retries
// (RecoverSalvage). A torn manifest tail stays an in-place concern:
// the decoded prefix is kept and the manifest rewritten, as before.
func (db *DB) recover(tl *vclock.Timeline) error {
	currentData, err := db.fs.ReadFile(tl, CurrentName)
	if err != nil {
		return fmt.Errorf("%w: reading CURRENT: %v", ErrNeedsRepair, err)
	}
	manifestName := strings.TrimSpace(string(currentData))
	kind, manifestNum, ok := ParseFileName(manifestName)
	if !ok || kind != KindManifest {
		return fmt.Errorf("%w: CURRENT points at %q", ErrNeedsRepair, manifestName)
	}

	manifestData, err := db.fs.ReadFile(tl, manifestName)
	if err != nil {
		return fmt.Errorf("%w: reading %s: %v", ErrNeedsRepair, manifestName, err)
	}
	// Decode every durable manifest record first (a torn tail stops
	// the decode), then find the longest edit prefix whose RESULTING
	// version references only intact tables. A crash can leave the
	// manifest's durable prefix referencing successor tables whose
	// data never fully committed; NobLSM's recovery rolls back past
	// such edits to the last all-valid version — which is exactly
	// what the shadow predecessors it retained make possible (paper
	// §4.3: "transiently retains old SSTables as backup copies for
	// crash recoverability"). Versions in the middle of the history
	// may reference files that later edits legitimately deleted, so
	// validity is judged per resulting version, not per edit.
	edits, state := classifyManifest(manifestData)
	if state == manifestInterior {
		return fmt.Errorf("%w: %s has interior corruption (damage followed by further valid records)",
			ErrNeedsRepair, manifestName)
	}
	decodeTorn := state == manifestTornTail

	validCache := make(map[uint64]bool)
	valid := func(num uint64) bool {
		if v, ok := validCache[num]; ok {
			return v
		}
		ok := false
		if f, err := db.fs.Open(tl, TableName(num)); err == nil {
			if _, err := sstable.Open(tl, f, db.tableOptions(), num, nil); err == nil {
				ok = true
			}
			f.Close(tl)
		}
		validCache[num] = ok
		return ok
	}
	// Recovery proceeds in two stages.
	//
	// Stage 1: find the longest edit prefix whose RESULTING version
	// references only intact tables (versions in the middle of the
	// history legitimately reference long-deleted files, so validity
	// is judged per resulting version, never per edit).
	//
	// Stage 2: re-apply the remaining suffix edit by edit, skipping
	// any edit whose new tables are damaged or missing. A skipped
	// suffix edit's inputs are exactly the files NobLSM's tracker was
	// retaining as shadow predecessors (or whose uncommitted unlinks
	// the crash rolled back), so the resulting version is consistent:
	// that compaction simply never happened (paper §4.3's backup
	// copies doing their job).
	versionValid := func(v *version.Version) bool {
		for level := 0; level < version.NumLevels; level++ {
			for _, fm := range v.Files[level] {
				if !valid(fm.Number) {
					return false
				}
			}
		}
		return true
	}
	applyMeta := func(edit *version.VersionEdit, logNumber *uint64) {
		if edit.HasLogNumber && edit.LogNumber > *logNumber {
			*logNumber = edit.LogNumber
		}
		if edit.HasNextFileNumber && edit.NextFileNumber > db.nextFile.Load() {
			db.nextFile.Store(edit.NextFileNumber)
		}
		if edit.HasLastSeq && edit.LastSeq > db.lastSeq {
			db.lastSeq = edit.LastSeq
		}
	}
	truncated := decodeTorn
	var logNumber uint64
	prefix := len(edits)
	var base *version.Version
	for ; prefix >= 0; prefix-- {
		b := version.NewBuilder(&version.Version{})
		for _, edit := range edits[:prefix] {
			b.Apply(edit)
		}
		v := b.Finish()
		if versionValid(v) {
			base = v
			break
		}
	}
	if base == nil {
		base = &version.Version{}
		prefix = 0
	}
	for _, edit := range edits[:prefix] {
		applyMeta(edit, &logNumber)
	}
	builder := version.NewBuilder(base)
	for _, edit := range edits[prefix:] {
		ok := true
		for _, nf := range edit.NewFiles {
			if !valid(nf.Meta.Number) {
				ok = false
				break
			}
		}
		if !ok {
			truncated = true
			continue
		}
		builder.Apply(edit)
		applyMeta(edit, &logNumber)
	}
	truncated = truncated || prefix < len(edits)
	db.current = builder.Finish()
	db.manifestNumber = manifestNum

	// Never reuse a file number that exists on disk: a crash can leave
	// files (e.g. never-installed compaction outputs) whose numbers lie
	// above the durable NextFileNumber, and re-allocating one of them
	// would alias a fresh file with crash debris — a recovery flush
	// could otherwise recreate a dead shard output's number and make it
	// impossible to tell leftovers from live files.
	for _, name := range db.fs.List(tl) {
		if _, num, ok := ParseFileName(name); ok && num >= db.nextFile.Load() {
			db.nextFile.Store(num + 1)
		}
	}

	if truncated {
		// Rewrite the manifest as a snapshot of the recovered-good
		// version so the dropped tail cannot resurface; recovery
		// syncs it regardless of mode (one-off, off the benchmark
		// path).
		if err := db.rewriteManifest(tl, logNumber); err != nil {
			return err
		}
	} else {
		// Reopen the manifest for appending.
		db.manifestFile, err = db.reopenForAppend(tl, manifestName)
		if err != nil {
			return err
		}
		db.manifest = wal.NewWriter(db.manifestFile)
		db.manifest.Instrument(db.m.manifestRecords, db.m.manifestBytes)
	}

	// Replay WALs with number >= logNumber, oldest first.
	var logs []uint64
	for _, name := range db.fs.List(tl) {
		if kind, num, ok := ParseFileName(name); ok && kind == KindLog && num >= logNumber {
			logs = append(logs, num)
		}
	}
	for i := 0; i < len(logs); i++ {
		for j := i + 1; j < len(logs); j++ {
			if logs[j] < logs[i] {
				logs[i], logs[j] = logs[j], logs[i]
			}
		}
	}
	for _, num := range logs {
		if err := db.replayWAL(tl, num); err != nil {
			return err
		}
		if num >= db.nextFile.Load() {
			db.nextFile.Store(num + 1)
		}
	}

	// Start a fresh WAL; flush any replayed entries so the old logs
	// become disposable.
	if err := db.newWAL(tl); err != nil {
		return err
	}
	if !db.mem.Empty() {
		imm := db.mem
		db.memSeed++
		db.mem = memtable.New(db.memSeed)
		if err := db.minorCompaction(tl, imm, db.walNumber, false); err != nil {
			return err
		}
	} else {
		edit := &version.VersionEdit{}
		edit.SetLogNumber(db.walNumber)
		if err := db.logAndApply(tl, edit); err != nil {
			return err
		}
	}
	return nil
}

// rewriteManifest replaces the MANIFEST with a snapshot of the current
// version under a fresh file number and durably repoints CURRENT.
func (db *DB) rewriteManifest(tl *vclock.Timeline, logNumber uint64) error {
	num := db.newFileNumber()
	mf, err := db.fs.Create(tl, ManifestName(num))
	if err != nil {
		return err
	}
	w := wal.NewWriter(mf)
	snap := &version.VersionEdit{}
	snap.SetLogNumber(logNumber)
	snap.SetNextFileNumber(db.nextFile.Load())
	snap.SetLastSeq(db.lastSeq)
	for level := 0; level < version.NumLevels; level++ {
		for _, fm := range db.current.Files[level] {
			snap.AddFile(level, fm)
			// NobLSM's unsynced manifest appends are crash-safe
			// because journal ordering commits a table's bytes no
			// later than the edit referencing it. This snapshot
			// breaks that ordering — it is synced immediately and
			// CURRENT is durably repointed below — so every table it
			// references must be made durable first, or a crash right
			// after leaves a durable manifest naming tables whose
			// bytes were still in the page cache.
			if db.sys != nil && db.sys.CommittedSize(tl, fm.Ino) < fm.Size {
				tf, err := db.fs.Open(tl, TableName(fm.Number))
				if err != nil {
					return err
				}
				err = tf.Sync(tl)
				tf.Close(tl)
				if err != nil {
					return err
				}
			}
		}
	}
	if err := w.AddRecord(tl, snap.Encode()); err != nil {
		return err
	}
	if err := mf.Sync(tl); err != nil {
		return err
	}
	if err := db.fs.WriteFile(tl, CurrentName, []byte(ManifestName(num)+"\n")); err != nil {
		return err
	}
	if err := db.fs.SyncDir(tl); err != nil {
		return err
	}
	db.manifestFile = mf
	db.manifest = w
	db.manifest.Instrument(db.m.manifestRecords, db.m.manifestBytes)
	db.manifestNumber = num
	return nil
}

// reopenForAppend returns a writable handle positioned at the end of
// an existing file. The ext4 simulation's Create truncates, so this
// copies the contents into a fresh file of the same name via a temp
// name — semantically O_APPEND reopen.
func (db *DB) reopenForAppend(tl *vclock.Timeline, name string) (vfs.File, error) {
	data, err := db.fs.ReadFile(tl, name)
	if err != nil {
		return nil, err
	}
	tmp := name + ".tmp"
	f, err := db.fs.Create(tl, tmp)
	if err != nil {
		return nil, err
	}
	if err := f.Append(tl, data); err != nil {
		return nil, err
	}
	if err := db.fs.Rename(tl, tmp, name); err != nil {
		return nil, err
	}
	return f, nil
}

// replayWAL applies the surviving records of one log file.
func (db *DB) replayWAL(tl *vclock.Timeline, num uint64) error {
	data, err := db.fs.ReadFile(tl, LogName(num))
	if err != nil {
		return err
	}
	if db.opts.RecoveryMode == RecoverStrict {
		// Dry-scan first (pure in-memory decode, no device cost): in
		// strict mode interior corruption must fail the Open before
		// any record is applied, and only a full scan can distinguish
		// interior damage from an ordinary torn tail.
		probe := wal.NewReader(data)
		for {
			if _, ok := probe.Next(); !ok {
				break
			}
		}
		if err := probe.Err(); err != nil {
			return fmt.Errorf("engine: replaying %s: %w", LogName(num), err)
		}
	}
	r := wal.NewReader(data)
	// Salvage-to-last-valid-record: stop at the first damaged record
	// instead of resyncing past it — records that follow a hole must
	// not be applied over their lost predecessors. In strict mode the
	// probe above has established the log has no interior damage, so
	// halting degenerates to the usual torn-tail truncation.
	r.HaltAtCorruption = true
	defer func() { db.walDropsAtRecovery += r.DroppedRecords }()
	applied := 0
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		applied++
		b, err := decodeBatch(rec)
		if err != nil {
			// A torn batch at the tail: stop at the damage, like
			// LevelDB's paranoid-checks-off default.
			db.walDropsAtRecovery++
			break
		}
		if err := b.applyTo(db.mem); err != nil {
			db.walDropsAtRecovery++
			break
		}
		if end := b.Seq() + keys.SeqNum(b.Count()) - 1; end > db.lastSeq {
			db.lastSeq = end
		}
		if db.mem.ApproximateMemoryUsage() > db.opts.WriteBufferSize {
			imm := db.mem
			db.memSeed++
			db.mem = memtable.New(db.memSeed)
			if err := db.minorCompaction(tl, imm, num, false); err != nil {
				return err
			}
		}
	}
	if r.Halted() {
		// Count what the salvage left behind so the drop is visible in
		// recovery accounting, not silently absorbed. The remainder is
		// not block-aligned on its own, so re-scan the whole image
		// without halting and subtract the records that were applied.
		full := wal.NewReader(data)
		total := 0
		for {
			if _, ok := full.Next(); !ok {
				break
			}
			total++
		}
		if total > applied {
			db.walDropsAtRecovery += total - applied
		}
	}
	return nil
}
