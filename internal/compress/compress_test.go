package compress

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"noblsm/internal/dbbench"
)

var levels = []Level{LevelFast, LevelMax}

func roundTrip(t *testing.T, src []byte) {
	t.Helper()
	for _, lv := range levels {
		enc := Encode(nil, src, lv)
		if len(enc) > MaxEncodedLen(len(src)) {
			t.Fatalf("level %d: encoded %d bytes > MaxEncodedLen %d", lv, len(enc), MaxEncodedLen(len(src)))
		}
		if n, err := DecodedLen(enc); err != nil || n != len(src) {
			t.Fatalf("level %d: DecodedLen = %d, %v; want %d", lv, n, err, len(src))
		}
		dec, err := Decode(nil, enc)
		if err != nil {
			t.Fatalf("level %d: Decode: %v", lv, err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatalf("level %d: round trip mismatch: %d bytes in, %d out", lv, len(src), len(dec))
		}
	}
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte{},
		[]byte("a"),
		[]byte("abcd"),
		[]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"),
		[]byte("abcabcabcabcabcabcabcabc"),
		[]byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 100)),
		bytes.Repeat([]byte{0}, 1<<16),
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestRoundTripRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		n := rnd.Intn(1 << 14)
		src := make([]byte, n)
		switch i % 3 {
		case 0: // incompressible
			rnd.Read(src)
		case 1: // low-entropy
			for j := range src {
				src[j] = byte(rnd.Intn(4))
			}
		case 2: // runs, like dbbench values
			for j := 0; j < n; {
				b := byte('a' + rnd.Intn(26))
				r := rnd.Intn(7) + 1
				for k := 0; k < r && j < n; k++ {
					src[j] = b
					j++
				}
			}
		}
		roundTrip(t, src)
	}
}

// TestRoundTripBenchValues pins the codec against the exact value
// stream the read benchmarks compress, and asserts the db_bench-like
// ratio the perf model relies on (db_bench targets ~2×; see
// DESIGN.md §10).
func TestRoundTripBenchValues(t *testing.T) {
	block := benchBlock(8192)
	roundTrip(t, block)
	for _, lv := range levels {
		enc := Encode(nil, block, lv)
		ratio := float64(len(block)) / float64(len(enc))
		t.Logf("level %d: %d -> %d bytes (%.2fx)", lv, len(block), len(enc), ratio)
		if ratio < 2.0 {
			t.Errorf("level %d: ratio %.2f below the 2.0 floor the read path budgets for", lv, ratio)
		}
	}
}

func TestMaxNoWorseThanFast(t *testing.T) {
	block := benchBlock(16384)
	fast := Encode(nil, block, LevelFast)
	max := Encode(nil, block, LevelMax)
	if len(max) > len(fast) {
		t.Errorf("LevelMax produced %d bytes, larger than LevelFast's %d", len(max), len(fast))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},
		{0x80},             // unterminated varint
		{4},                // declares 4 bytes, no tokens
		{4, 0, 'a'},        // zero literal tag
		{4, 2<<1, 'a'},     // literal runs past input
		{4, 1 | 0<<2, 1},   // copy before start of output
		{2, 1 | 10<<2, 1},  // copy past declared length
		append([]byte{255, 255, 255, 255, 8}, make([]byte, 10)...), // huge declared length
	}
	for i, c := range cases {
		if _, err := Decode(nil, c); err == nil {
			t.Errorf("case %d: Decode accepted garbage %v", i, c)
		}
	}
}

// TestDecodeBitFlips flips every bit of a valid encoding in turn: each
// mutation must either fail decode or decode to something (never
// panic, never read out of bounds). Payload integrity end to end is
// the block CRC's job, one layer up.
func TestDecodeBitFlips(t *testing.T) {
	src := benchBlock(2048)
	enc := Encode(nil, src, LevelFast)
	buf := make([]byte, len(enc))
	for i := 0; i < len(enc)*8; i++ {
		copy(buf, enc)
		buf[i/8] ^= 1 << (i % 8)
		dec, err := Decode(nil, buf)
		if err == nil && len(dec) > 1<<31 {
			t.Fatalf("bit %d: absurd decode length %d", i, len(dec))
		}
	}
}

func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("a"))
	f.Add([]byte("abcabcabcabcabcabc"))
	f.Add(bytes.Repeat([]byte("x"), 300))
	f.Add(benchBlock(1024))
	f.Fuzz(func(t *testing.T, src []byte) {
		if len(src) > 1<<20 {
			return
		}
		for _, lv := range levels {
			enc := Encode(nil, src, lv)
			if len(enc) > MaxEncodedLen(len(src)) {
				t.Fatalf("level %d: output %d > MaxEncodedLen %d", lv, len(enc), MaxEncodedLen(len(src)))
			}
			dec, err := Decode(nil, enc)
			if err != nil {
				t.Fatalf("level %d: decode of own encoding failed: %v", lv, err)
			}
			if !bytes.Equal(dec, src) {
				t.Fatalf("level %d: round trip mismatch", lv)
			}
			// The encoding itself fed back as input must never
			// panic the decoder (it may error or decode).
			Decode(nil, src)
		}
	})
}

// benchBlock builds data shaped like an SSTable data block from the
// benchmark workload: 16-byte ascending keys interleaved with
// compressible-ish dbbench values.
func benchBlock(size int) []byte {
	var b []byte
	var v []byte
	for i := int64(0); len(b) < size; i++ {
		b = append(b, dbbench.Key(i)...)
		v = dbbench.CompressibleValue(v, i, 0, 1024)
		b = append(b, v...)
	}
	return b[:size]
}

func BenchmarkEncodeFast(b *testing.B) { benchEncode(b, LevelFast) }
func BenchmarkEncodeMax(b *testing.B)  { benchEncode(b, LevelMax) }

func benchEncode(b *testing.B, lv Level) {
	src := benchBlock(8192)
	dst := make([]byte, MaxEncodedLen(len(src)))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(dst, src, lv)
	}
}

func BenchmarkDecode(b *testing.B) {
	src := benchBlock(8192)
	enc := Encode(nil, src, LevelMax)
	dst := make([]byte, len(src))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(dst, enc); err != nil {
			b.Fatal(err)
		}
	}
}
