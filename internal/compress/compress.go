// Package compress implements the per-block codec used by SSTable
// blocks: a byte-oriented LZ format in the snappy family, written
// against the stdlib only. The format is self-describing — decode
// needs no parameters — while encoding effort is tunable so cold
// levels can spend more CPU for a denser block.
//
// # Wire format
//
//	encoded := uvarint(decodedLen) token*
//	token   := literal | copy
//	literal := byte(L<<1)            L ∈ [1,127] following raw bytes
//	copy    := byte(1 | w<<1 | (m-minMatch)<<2) offset
//	           m ∈ [4,67] is the match length; w selects the offset
//	           width: w=0 → 1 offset byte, w=1 → 2 offset bytes
//	           (little-endian, offset ∈ [1, 65535], within output)
//
// A literal token's length field is never zero, so the zero byte is
// invalid and truncated or bit-flipped inputs fail loudly. The match
// window equals the maximum offset (64 KiB), comfortably wider than
// any SSTable block this tree builds.
package compress

import (
	"encoding/binary"
	"errors"
)

// ErrCorrupt reports an encoded block that cannot have been produced
// by Encode: bad header, token stream running past its bounds, or a
// copy reaching before the start of output.
var ErrCorrupt = errors.New("compress: corrupt input")

const (
	minMatch     = 4
	maxMatch     = minMatch + 63 // 6 length bits per copy token
	maxOffset    = 1 << 16
	maxLiteral   = 127
	minSrcLen    = minMatch + 1 // below this, matching cannot help
	tagLiteral   = 0
	tagCopy      = 1
	shortOffMax  = 255 // offsets that fit the 1-byte copy form
	minSavings   = 8   // Encode-side: don't bother growing dst for less
	headroomDiv  = 16  // require src/16 savings before calling it a win
	maxBlockMiss = 64  // fast level: step acceleration after misses
)

// Level selects encoding effort. Decode is identical for both: the
// format does not record the level.
type Level int

const (
	// LevelFast is the hot-path default: small hash table, skip
	// acceleration over incompressible stretches, greedy matching.
	LevelFast Level = iota
	// LevelMax spends more CPU for ratio: a larger hash table,
	// every position indexed, and a one-step lazy match. Meant for
	// cold levels where blocks are written once and read many times.
	LevelMax
)

const (
	fastBits = 13
	maxBits  = 16
)

// MaxEncodedLen bounds Encode's output for an n-byte input: the
// header, the worst-case literal framing (one tag per 127 bytes) and
// slack for the final short run.
func MaxEncodedLen(n int) int {
	return binary.MaxVarintLen64 + n + n/maxLiteral + 2
}

// DecodedLen reports the decoded size an encoded block declares.
func DecodedLen(src []byte) (int, error) {
	n, sz := binary.Uvarint(src)
	if sz <= 0 || n > 1<<31 {
		return 0, ErrCorrupt
	}
	return int(n), nil
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

func hash(u uint32, bits uint) uint32 {
	return (u * 2654435761) >> (32 - bits)
}

// Encode compresses src, appending nothing: the result is dst[:m] if
// dst has capacity MaxEncodedLen(len(src)), else a fresh slice. The
// output always decodes to exactly src, even when src is
// incompressible (it degrades to literal runs).
func Encode(dst, src []byte, level Level) []byte {
	if cap(dst) < MaxEncodedLen(len(src)) {
		dst = make([]byte, MaxEncodedLen(len(src)))
	}
	dst = dst[:cap(dst)]
	d := binary.PutUvarint(dst, uint64(len(src)))

	if len(src) < minSrcLen {
		d += emitLiteral(dst[d:], src)
		return dst[:d]
	}

	bits := uint(fastBits)
	if level == LevelMax {
		bits = maxBits
	}
	// One table allocation per call keeps Encode goroutine-safe; the
	// builder-side Scratch in internal/sstable amortizes the dst
	// buffer, which profiles showed mattered far more than the table.
	table := make([]int32, 1<<bits)

	s, lit := 0, 0
	limit := len(src) - minMatch
	misses := 0
	for s <= limit {
		h := hash(load32(src, s), bits)
		cand := int(table[h]) - 1
		table[h] = int32(s + 1)
		if cand >= 0 && s-cand < maxOffset && load32(src, cand) == load32(src, s) {
			if level == LevelMax && s < limit {
				// One-step lazy match: prefer a strictly longer
				// match starting at s+1 when it exists.
				h2 := hash(load32(src, s+1), bits)
				cand2 := int(table[h2]) - 1
				if cand2 >= 0 && s+1-cand2 < maxOffset && load32(src, cand2) == load32(src, s+1) &&
					matchLen(src, cand2, s+1) > matchLen(src, cand, s) {
					s++
					table[h2] = int32(s + 1)
					cand = cand2
				}
			}
			// Extend the match backwards into the pending literal:
			// the hash probe lands mid-run more often than not.
			for s > lit && cand > 0 && src[s-1] == src[cand-1] {
				s--
				cand--
			}
			d += emitLiteral(dst[d:], src[lit:s])
			m := matchLen(src, cand, s)
			d += emitCopy(dst[d:], s-cand, m)
			if level == LevelMax {
				for i := s + 1; i < s+m && i <= limit; i++ {
					table[hash(load32(src, i), bits)] = int32(i + 1)
				}
			}
			s += m
			lit = s
			misses = 0
			continue
		}
		if level == LevelFast {
			// Snappy-style acceleration: incompressible stretches
			// step faster instead of hashing every byte.
			misses++
			s += 1 + misses/maxBlockMiss
		} else {
			s++
		}
	}
	d += emitLiteral(dst[d:], src[lit:])
	return dst[:d]
}

// Compressible reports whether enc (an Encode result for an n-byte
// input) saves enough over storing n raw bytes to be worth the decode
// on every future read.
func Compressible(enc []byte, n int) bool {
	save := n - len(enc)
	return save >= minSavings && save >= n/headroomDiv
}

// matchLen extends a candidate match: the length of the common prefix
// of src[cand:] and src[s:]. Long matches are not capped here —
// emitCopy splits them across tokens — so this runs to the input end.
func matchLen(src []byte, cand, s int) int {
	n := 0
	for s+n < len(src) && src[cand+n] == src[s+n] {
		n++
	}
	return n
}

func emitLiteral(dst, lit []byte) int {
	d := 0
	for len(lit) > 0 {
		n := len(lit)
		if n > maxLiteral {
			n = maxLiteral
		}
		dst[d] = byte(n << 1)
		d++
		d += copy(dst[d:], lit[:n])
		lit = lit[n:]
	}
	return d
}

// emitCopy writes copy tokens covering a match of length m at the
// given offset, splitting matches longer than maxMatch.
func emitCopy(dst []byte, offset, m int) int {
	d := 0
	for m > 0 {
		n := m
		if n > maxMatch {
			n = maxMatch
			// Avoid a trailing runt below minMatch: rebalance the
			// final two tokens.
			if m-n < minMatch && m-n > 0 {
				n = m - minMatch
			}
		}
		if offset <= shortOffMax {
			dst[d] = byte(tagCopy | (n-minMatch)<<2)
			dst[d+1] = byte(offset)
			d += 2
		} else {
			dst[d] = byte(tagCopy | 1<<1 | (n-minMatch)<<2)
			binary.LittleEndian.PutUint16(dst[d+1:], uint16(offset))
			d += 3
		}
		m -= n
	}
	return d
}

// Decode decompresses src into dst (reused when it has capacity for
// the declared decoded length) and returns the decoded bytes. Any
// malformed input — including every single-bit corruption of a valid
// encoding that changes the token structure — returns ErrCorrupt;
// corruptions that keep the structure valid are caught by the block
// CRC above this layer.
func Decode(dst, src []byte) ([]byte, error) {
	n, sz := binary.Uvarint(src)
	if sz <= 0 || n > 1<<31 {
		return nil, ErrCorrupt
	}
	if cap(dst) < int(n) {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	d, s := 0, sz
	for s < len(src) {
		tag := src[s]
		s++
		if tag&tagCopy == 0 {
			l := int(tag >> 1)
			if l == 0 || s+l > len(src) || d+l > len(dst) {
				return nil, ErrCorrupt
			}
			copy(dst[d:], src[s:s+l])
			d += l
			s += l
			continue
		}
		m := int(tag>>2) + minMatch
		var off int
		if tag&(1<<1) == 0 {
			if s >= len(src) {
				return nil, ErrCorrupt
			}
			off = int(src[s])
			s++
		} else {
			if s+2 > len(src) {
				return nil, ErrCorrupt
			}
			off = int(binary.LittleEndian.Uint16(src[s:]))
			s += 2
		}
		if off == 0 || off > d || d+m > len(dst) {
			return nil, ErrCorrupt
		}
		if off >= m {
			copy(dst[d:d+m], dst[d-off:])
		} else if off == 1 {
			b := dst[d-1]
			for i := 0; i < m; i++ {
				dst[d+i] = b
			}
		} else {
			for i := 0; i < m; i++ {
				dst[d+i] = dst[d-off+i]
			}
		}
		d += m
	}
	if d != len(dst) {
		return nil, ErrCorrupt
	}
	return dst, nil
}
