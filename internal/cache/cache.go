// Package cache provides a charge-aware sharded LRU cache used for
// SSTable blocks and open-table handles, mirroring LevelDB's
// ShardedLRUCache: keys are spread across independent shards by a
// mixing hash, each shard owns a private mutex and LRU list, so
// concurrent readers on different shards never contend. Capacity is
// split evenly across shards; small caches (the scaled simulation
// configs) collapse to a single shard, which preserves exact global
// LRU order and keeps the deterministic virtual-time experiments
// byte-for-byte identical.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"noblsm/internal/obs"
)

// Key identifies an entry: a cache-holder id (e.g. file number) plus
// an offset or sub-id.
type Key struct {
	ID  uint64
	Off uint64
}

// hash mixes both Key words (splitmix64-style finalizer) so that
// sequential file numbers and block offsets spread evenly over
// shards.
func (k Key) hash() uint64 {
	x := k.ID*0x9e3779b97f4a7c15 + k.Off
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

type entry struct {
	key    Key
	value  any
	charge int64
}

// counterPair groups the hit/miss/fill counters so Instrument can
// swap them atomically with respect to in-flight lookups on other
// shards.
type counterPair struct {
	hits, misses, fills *obs.Counter
}

// shard is one independently locked LRU.
type shard struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List
	table    map[Key]*list.Element
}

// Cache is a thread-safe sharded LRU with byte-charge accounting.
// Hit/miss accounting lives in obs counters (shared across shards —
// they are atomic) so the cache can publish into a shared metrics
// registry (Instrument); standalone caches count into private
// counters.
type Cache struct {
	shards []*shard
	mask   uint64
	ctr    atomic.Pointer[counterPair]
}

// minShardCapacity is the smallest per-shard budget worth splitting
// for: below this, sharding just fragments the capacity (and breaks
// global LRU order for the tiny scaled-run caches), so New falls back
// to fewer shards.
const minShardCapacity = 256 << 10 // 256 KB

// maxShards bounds the automatic shard count (LevelDB uses 16).
const maxShards = 16

// defaultShards picks a power-of-two shard count sized to capacity:
// 1 for small caches, up to maxShards once every shard would still
// hold at least minShardCapacity.
func defaultShards(capacity int64) int {
	n := 1
	for n < maxShards && capacity/int64(n*2) >= minShardCapacity {
		n *= 2
	}
	return n
}

// New returns a cache bounded to capacity charge units (bytes), with
// a shard count derived from the capacity.
func New(capacity int64) *Cache {
	return NewSharded(capacity, defaultShards(capacity))
}

// NewSharded returns a cache bounded to capacity charge units split
// evenly across numShards independently locked shards. numShards is
// rounded up to a power of two; values < 1 mean 1.
func NewSharded(capacity int64, numShards int) *Cache {
	n := 1
	for n < numShards {
		n *= 2
	}
	c := &Cache{
		shards: make([]*shard, n),
		mask:   uint64(n - 1),
	}
	per := capacity / int64(n)
	rem := capacity % int64(n)
	for i := range c.shards {
		cap := per
		if int64(i) < rem {
			cap++
		}
		c.shards[i] = &shard{
			capacity: cap,
			ll:       list.New(),
			table:    make(map[Key]*list.Element),
		}
	}
	c.ctr.Store(&counterPair{hits: &obs.Counter{}, misses: &obs.Counter{}, fills: &obs.Counter{}})
	return c
}

// Shards reports the number of shards.
func (c *Cache) Shards() int { return len(c.shards) }

func (c *Cache) shardFor(key Key) *shard {
	return c.shards[key.hash()&c.mask]
}

// Instrument redirects hit/miss/fill accounting to the given registry
// counters (carrying over any counts already accumulated). Call it
// during setup, before the cache is shared across goroutines:
// lookups in flight during the swap may still land on the old
// counters.
func (c *Cache) Instrument(hits, misses, fills *obs.Counter) {
	old := c.ctr.Load()
	hits.Add(old.hits.Value())
	misses.Add(old.misses.Value())
	fills.Add(old.fills.Value())
	c.ctr.Store(&counterPair{hits: hits, misses: misses, fills: fills})
}

// Get returns the cached value for key, if present.
func (c *Cache) Get(key Key) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.table[key]; ok {
		s.ll.MoveToFront(el)
		v := el.Value.(*entry).value
		s.mu.Unlock()
		c.ctr.Load().hits.Inc()
		return v, true
	}
	s.mu.Unlock()
	c.ctr.Load().misses.Inc()
	return nil, false
}

// Put inserts value with the given charge, evicting LRU entries from
// the key's shard as needed. An existing entry for key is replaced.
func (c *Cache) Put(key Key, value any, charge int64) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.table[key]; ok {
		e := el.Value.(*entry)
		s.used += charge - e.charge
		e.value, e.charge = value, charge
		s.ll.MoveToFront(el)
	} else {
		el := s.ll.PushFront(&entry{key: key, value: value, charge: charge})
		s.table[key] = el
		s.used += charge
	}
	for s.used > s.capacity && s.ll.Len() > 0 {
		s.evictOldest()
	}
	s.mu.Unlock()
	c.ctr.Load().fills.Inc()
}

// Evict removes key if present.
func (c *Cache) Evict(key Key) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.table[key]; ok {
		s.removeElement(el)
	}
}

// EvictID removes every entry whose Key.ID matches id (used when a
// table file is deleted). Entries for one ID may live on any shard
// (the hash mixes Off), so every shard is swept.
func (c *Cache) EvictID(id uint64) {
	for _, s := range c.shards {
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; {
			next := el.Next()
			if el.Value.(*entry).key.ID == id {
				s.removeElement(el)
			}
			el = next
		}
		s.mu.Unlock()
	}
}

func (s *shard) evictOldest() {
	if el := s.ll.Back(); el != nil {
		s.removeElement(el)
	}
}

func (s *shard) removeElement(el *list.Element) {
	e := el.Value.(*entry)
	s.ll.Remove(el)
	delete(s.table, e.key)
	s.used -= e.charge
}

// Used reports the current charge total, aggregated across shards.
func (c *Cache) Used() int64 {
	var total int64
	for _, s := range c.shards {
		s.mu.Lock()
		total += s.used
		s.mu.Unlock()
	}
	return total
}

// Len reports the number of cached entries, aggregated across shards.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats reports cumulative hits and misses — a view over the
// counters, aggregated across all shards (the counters are shared).
func (c *Cache) Stats() (hits, misses int64) {
	p := c.ctr.Load()
	return p.hits.Value(), p.misses.Value()
}

// Fills reports cumulative Put calls — how often the cache was
// populated (inserts plus replacements), the denominator that turns a
// hit ratio into a churn picture.
func (c *Cache) Fills() int64 {
	return c.ctr.Load().fills.Value()
}
