// Package cache provides a charge-aware LRU cache used for SSTable
// blocks and open-table handles, mirroring LevelDB's ShardedLRUCache
// in function (a single shard suffices for the simulation's
// serialized access pattern).
package cache

import (
	"container/list"
	"sync"

	"noblsm/internal/obs"
)

// Key identifies an entry: a cache-holder id (e.g. file number) plus
// an offset or sub-id.
type Key struct {
	ID  uint64
	Off uint64
}

type entry struct {
	key    Key
	value  any
	charge int64
}

// Cache is a thread-safe LRU with byte-charge accounting. Hit/miss
// accounting lives in obs counters so the cache can publish into a
// shared metrics registry (Instrument); standalone caches count into
// private counters.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List
	table    map[Key]*list.Element

	hits, misses *obs.Counter
}

// New returns a cache bounded to capacity charge units (bytes).
func New(capacity int64) *Cache {
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		table:    make(map[Key]*list.Element),
		hits:     &obs.Counter{},
		misses:   &obs.Counter{},
	}
}

// Instrument redirects hit/miss accounting to the given registry
// counters (carrying over any counts already accumulated).
func (c *Cache) Instrument(hits, misses *obs.Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	hits.Add(c.hits.Value())
	misses.Add(c.misses.Value())
	c.hits, c.misses = hits, misses
}

// Get returns the cached value for key, if present.
func (c *Cache) Get(key Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.table[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		return el.Value.(*entry).value, true
	}
	c.misses.Inc()
	return nil, false
}

// Put inserts value with the given charge, evicting LRU entries as
// needed. An existing entry for key is replaced.
func (c *Cache) Put(key Key, value any, charge int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.table[key]; ok {
		e := el.Value.(*entry)
		c.used += charge - e.charge
		e.value, e.charge = value, charge
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&entry{key: key, value: value, charge: charge})
		c.table[key] = el
		c.used += charge
	}
	for c.used > c.capacity && c.ll.Len() > 0 {
		c.evictOldest()
	}
}

// Evict removes key if present.
func (c *Cache) Evict(key Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.table[key]; ok {
		c.removeElement(el)
	}
}

// EvictID removes every entry whose Key.ID matches id (used when a
// table file is deleted).
func (c *Cache) EvictID(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*entry).key.ID == id {
			c.removeElement(el)
		}
		el = next
	}
}

func (c *Cache) evictOldest() {
	if el := c.ll.Back(); el != nil {
		c.removeElement(el)
	}
}

func (c *Cache) removeElement(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.table, e.key)
	c.used -= e.charge
}

// Used reports the current charge total.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats reports cumulative hits and misses — a view over the
// counters.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits.Value(), c.misses.Value()
}
