package cache

import (
	"fmt"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(100)
	k := Key{ID: 1, Off: 2}
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k, "v", 10)
	v, ok := c.Get(k)
	if !ok || v.(string) != "v" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if c.Used() != 10 || c.Len() != 1 {
		t.Fatalf("used=%d len=%d", c.Used(), c.Len())
	}
}

func TestReplaceAdjustsCharge(t *testing.T) {
	c := New(100)
	k := Key{ID: 1}
	c.Put(k, "a", 10)
	c.Put(k, "b", 30)
	if c.Used() != 30 || c.Len() != 1 {
		t.Fatalf("used=%d len=%d after replace", c.Used(), c.Len())
	}
	v, _ := c.Get(k)
	if v.(string) != "b" {
		t.Fatal("replace kept old value")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(30)
	for i := 0; i < 4; i++ {
		c.Put(Key{ID: uint64(i)}, i, 10)
	}
	if c.Used() > 30 {
		t.Fatalf("over capacity: %d", c.Used())
	}
	if _, ok := c.Get(Key{ID: 0}); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := c.Get(Key{ID: 3}); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestGetRefreshesRecency(t *testing.T) {
	c := New(30)
	c.Put(Key{ID: 1}, 1, 10)
	c.Put(Key{ID: 2}, 2, 10)
	c.Put(Key{ID: 3}, 3, 10)
	c.Get(Key{ID: 1}) // refresh 1; 2 becomes LRU
	c.Put(Key{ID: 4}, 4, 10)
	if _, ok := c.Get(Key{ID: 1}); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Get(Key{ID: 2}); ok {
		t.Fatal("LRU entry survived")
	}
}

func TestEvictAndEvictID(t *testing.T) {
	c := New(1000)
	for off := 0; off < 5; off++ {
		c.Put(Key{ID: 7, Off: uint64(off)}, off, 1)
	}
	c.Put(Key{ID: 8}, "other", 1)
	c.Evict(Key{ID: 7, Off: 0})
	if _, ok := c.Get(Key{ID: 7, Off: 0}); ok {
		t.Fatal("evicted key still present")
	}
	c.EvictID(7)
	for off := 0; off < 5; off++ {
		if _, ok := c.Get(Key{ID: 7, Off: uint64(off)}); ok {
			t.Fatalf("EvictID left offset %d", off)
		}
	}
	if _, ok := c.Get(Key{ID: 8}); !ok {
		t.Fatal("EvictID removed an unrelated entry")
	}
	c.Evict(Key{ID: 99}) // no-op must not panic
}

func TestOversizedEntryEvictsEverything(t *testing.T) {
	c := New(10)
	c.Put(Key{ID: 1}, 1, 5)
	c.Put(Key{ID: 2}, 2, 100) // larger than capacity
	if c.Len() != 0 {
		// The oversized entry cannot fit; the cache must not retain
		// more than capacity... it evicts until empty.
		t.Fatalf("len=%d used=%d after oversized insert", c.Len(), c.Used())
	}
}

func TestStats(t *testing.T) {
	c := New(100)
	c.Put(Key{ID: 1}, 1, 1)
	c.Get(Key{ID: 1})
	c.Get(Key{ID: 2})
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	c := New(1 << 20)
	for i := 0; i < 1000; i++ {
		c.Put(Key{ID: uint64(i)}, i, 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(Key{ID: uint64(i % 1000)})
	}
}

func ExampleCache() {
	c := New(1 << 20)
	c.Put(Key{ID: 5, Off: 4096}, []byte("block contents"), 14)
	if v, ok := c.Get(Key{ID: 5, Off: 4096}); ok {
		fmt.Println(string(v.([]byte)))
	}
	// Output:
	// block contents
}
