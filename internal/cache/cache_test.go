package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(100)
	k := Key{ID: 1, Off: 2}
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k, "v", 10)
	v, ok := c.Get(k)
	if !ok || v.(string) != "v" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if c.Used() != 10 || c.Len() != 1 {
		t.Fatalf("used=%d len=%d", c.Used(), c.Len())
	}
}

func TestReplaceAdjustsCharge(t *testing.T) {
	c := New(100)
	k := Key{ID: 1}
	c.Put(k, "a", 10)
	c.Put(k, "b", 30)
	if c.Used() != 30 || c.Len() != 1 {
		t.Fatalf("used=%d len=%d after replace", c.Used(), c.Len())
	}
	v, _ := c.Get(k)
	if v.(string) != "b" {
		t.Fatal("replace kept old value")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(30)
	for i := 0; i < 4; i++ {
		c.Put(Key{ID: uint64(i)}, i, 10)
	}
	if c.Used() > 30 {
		t.Fatalf("over capacity: %d", c.Used())
	}
	if _, ok := c.Get(Key{ID: 0}); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := c.Get(Key{ID: 3}); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestGetRefreshesRecency(t *testing.T) {
	c := New(30)
	c.Put(Key{ID: 1}, 1, 10)
	c.Put(Key{ID: 2}, 2, 10)
	c.Put(Key{ID: 3}, 3, 10)
	c.Get(Key{ID: 1}) // refresh 1; 2 becomes LRU
	c.Put(Key{ID: 4}, 4, 10)
	if _, ok := c.Get(Key{ID: 1}); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Get(Key{ID: 2}); ok {
		t.Fatal("LRU entry survived")
	}
}

func TestEvictAndEvictID(t *testing.T) {
	c := New(1000)
	for off := 0; off < 5; off++ {
		c.Put(Key{ID: 7, Off: uint64(off)}, off, 1)
	}
	c.Put(Key{ID: 8}, "other", 1)
	c.Evict(Key{ID: 7, Off: 0})
	if _, ok := c.Get(Key{ID: 7, Off: 0}); ok {
		t.Fatal("evicted key still present")
	}
	c.EvictID(7)
	for off := 0; off < 5; off++ {
		if _, ok := c.Get(Key{ID: 7, Off: uint64(off)}); ok {
			t.Fatalf("EvictID left offset %d", off)
		}
	}
	if _, ok := c.Get(Key{ID: 8}); !ok {
		t.Fatal("EvictID removed an unrelated entry")
	}
	c.Evict(Key{ID: 99}) // no-op must not panic
}

func TestOversizedEntryEvictsEverything(t *testing.T) {
	c := New(10)
	c.Put(Key{ID: 1}, 1, 5)
	c.Put(Key{ID: 2}, 2, 100) // larger than capacity
	if c.Len() != 0 {
		// The oversized entry cannot fit; the cache must not retain
		// more than capacity... it evicts until empty.
		t.Fatalf("len=%d used=%d after oversized insert", c.Len(), c.Used())
	}
}

func TestStats(t *testing.T) {
	c := New(100)
	c.Put(Key{ID: 1}, 1, 1)
	c.Get(Key{ID: 1})
	c.Get(Key{ID: 2})
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestDefaultShardCount(t *testing.T) {
	// Tiny caches (the scaled simulation configs) must stay single
	// shard so global LRU order is exact; production-sized caches
	// split up to the LevelDB-style maximum.
	cases := []struct {
		capacity int64
		want     int
	}{
		{30, 1},
		{1000, 1},
		{256 << 10, 1},
		{1 << 20, 4},
		{8 << 20, 16},
		{64 << 20, 16},
	}
	for _, tc := range cases {
		if got := New(tc.capacity).Shards(); got != tc.want {
			t.Errorf("New(%d).Shards() = %d, want %d", tc.capacity, got, tc.want)
		}
	}
}

func TestShardedAggregation(t *testing.T) {
	c := NewSharded(1<<20, 8)
	if c.Shards() != 8 {
		t.Fatalf("Shards() = %d, want 8", c.Shards())
	}
	const n = 500
	for i := 0; i < n; i++ {
		c.Put(Key{ID: uint64(i), Off: uint64(i * 4096)}, i, 100)
	}
	if c.Len() != n {
		t.Fatalf("Len() = %d, want %d", c.Len(), n)
	}
	if c.Used() != int64(n*100) {
		t.Fatalf("Used() = %d, want %d", c.Used(), n*100)
	}
	for i := 0; i < n; i++ {
		v, ok := c.Get(Key{ID: uint64(i), Off: uint64(i * 4096)})
		if !ok || v.(int) != i {
			t.Fatalf("Get(%d) = %v, %v", i, v, ok)
		}
	}
	hits, misses := c.Stats()
	if hits != n || misses != 0 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestShardedEvictIDSweepsAllShards(t *testing.T) {
	c := NewSharded(1<<20, 8)
	// Offsets hash one ID's blocks onto many shards; EvictID must
	// find them all.
	for off := 0; off < 64; off++ {
		c.Put(Key{ID: 7, Off: uint64(off * 4096)}, off, 100)
	}
	c.Put(Key{ID: 8}, "other", 100)
	c.EvictID(7)
	for off := 0; off < 64; off++ {
		if _, ok := c.Get(Key{ID: 7, Off: uint64(off * 4096)}); ok {
			t.Fatalf("EvictID left offset %d", off)
		}
	}
	if _, ok := c.Get(Key{ID: 8}); !ok {
		t.Fatal("EvictID removed an unrelated entry")
	}
}

func TestShardedConcurrent(t *testing.T) {
	c := NewSharded(1<<20, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := Key{ID: uint64(i % 128), Off: uint64(g)}
				switch i % 3 {
				case 0:
					c.Put(k, i, 64)
				case 1:
					c.Get(k)
				default:
					c.Evict(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Used() < 0 {
		t.Fatalf("negative Used() = %d", c.Used())
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	c := New(1 << 20)
	for i := 0; i < 1000; i++ {
		c.Put(Key{ID: uint64(i)}, i, 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(Key{ID: uint64(i % 1000)})
	}
}

func ExampleCache() {
	c := New(1 << 20)
	c.Put(Key{ID: 5, Off: 4096}, []byte("block contents"), 14)
	if v, ok := c.Get(Key{ID: 5, Off: 4096}); ok {
		fmt.Println(string(v.([]byte)))
	}
	// Output:
	// block contents
}
