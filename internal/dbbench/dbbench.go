// Package dbbench reproduces LevelDB's db_bench micro-benchmark
// workloads used in the paper's Section 5.2: fillseq, fillrandom
// (random writes), overwrite (random updates), readseq (sequential
// iteration) and readrandom (random point reads), with 16-byte keys
// and configurable value sizes.
package dbbench

import (
	"fmt"
	"math/rand"
)

// Workload names.
const (
	FillSeq    = "fillseq"
	FillRandom = "fillrandom"
	Overwrite  = "overwrite"
	ReadSeq    = "readseq"
	ReadRandom = "readrandom"
)

// Workloads lists the four workloads of Figure 4 in paper order.
var Workloads = []string{FillRandom, Overwrite, ReadSeq, ReadRandom}

// Key renders db_bench's 16-byte key for an index.
func Key(i int64) []byte { return []byte(fmt.Sprintf("%016d", i)) }

// Generator yields the key sequence of one workload.
type Generator struct {
	workload string
	n        int64
	rnd      *rand.Rand
	i        int64
}

// NewGenerator returns a generator issuing n operations over a key
// space of n records, like db_bench's --num.
func NewGenerator(workload string, n int64, seed int64) *Generator {
	return &Generator{workload: workload, n: n, rnd: rand.New(rand.NewSource(seed))}
}

// Next returns the next key index, and done when n operations have
// been issued. readseq ignores the returned key (it iterates).
func (g *Generator) Next() (key int64, done bool) {
	if g.i >= g.n {
		return 0, true
	}
	g.i++
	switch g.workload {
	case FillSeq, ReadSeq:
		return g.i - 1, false
	default:
		// db_bench uses rand % num: duplicates and gaps are part of
		// the workload's character.
		return g.rnd.Int63n(g.n), false
	}
}

// Value produces a deterministic compressible-ish value of size bytes
// for a key index and round, cheap enough to sit on the measured path.
func Value(dst []byte, key int64, round int, size int) []byte {
	dst = dst[:0]
	seed := uint64(key)*2654435761 + uint64(round)*97
	for len(dst) < size {
		seed = seed*6364136223846793005 + 1442695040888963407
		b := byte('a' + (seed>>33)%26)
		run := int(seed>>56)%7 + 1
		for j := 0; j < run && len(dst) < size; j++ {
			dst = append(dst, b)
		}
	}
	return dst
}
