// Package dbbench reproduces LevelDB's db_bench micro-benchmark
// workloads used in the paper's Section 5.2: fillseq, fillrandom
// (random writes), overwrite (random updates), readseq (sequential
// iteration) and readrandom (random point reads), with 16-byte keys
// and configurable value sizes.
package dbbench

import (
	"fmt"
	"math/rand"
)

// Workload names.
const (
	FillSeq    = "fillseq"
	FillRandom = "fillrandom"
	Overwrite  = "overwrite"
	ReadSeq    = "readseq"
	ReadRandom = "readrandom"
)

// Workloads lists the four workloads of Figure 4 in paper order.
var Workloads = []string{FillRandom, Overwrite, ReadSeq, ReadRandom}

// Key renders db_bench's 16-byte key for an index. The common case is
// rendered by hand: fmt.Sprintf showed up at ~6% of CPU in wall-clock
// benchmark profiles.
func Key(i int64) []byte {
	if i < 0 || i >= 1e16 {
		return []byte(fmt.Sprintf("%016d", i))
	}
	b := make([]byte, 16)
	v := i
	for j := 15; j >= 0; j-- {
		b[j] = byte('0' + v%10)
		v /= 10
	}
	return b
}

// Generator yields the key sequence of one workload.
type Generator struct {
	workload string
	n        int64
	rnd      *rand.Rand
	i        int64
}

// NewGenerator returns a generator issuing n operations over a key
// space of n records, like db_bench's --num.
func NewGenerator(workload string, n int64, seed int64) *Generator {
	return &Generator{workload: workload, n: n, rnd: rand.New(rand.NewSource(seed))}
}

// Next returns the next key index, and done when n operations have
// been issued. readseq ignores the returned key (it iterates).
func (g *Generator) Next() (key int64, done bool) {
	if g.i >= g.n {
		return 0, true
	}
	g.i++
	switch g.workload {
	case FillSeq, ReadSeq:
		return g.i - 1, false
	default:
		// db_bench uses rand % num: duplicates and gaps are part of
		// the workload's character.
		return g.rnd.Int63n(g.n), false
	}
}

// Value produces a deterministic compressible-ish value of size bytes
// for a key index and round, cheap enough to sit on the measured path.
func Value(dst []byte, key int64, round int, size int) []byte {
	if cap(dst) < size {
		dst = make([]byte, 0, size)
	}
	dst = dst[:size]
	seed := uint64(key)*2654435761 + uint64(round)*97
	n := 0
	for n < size {
		seed = seed*6364136223846793005 + 1442695040888963407
		b := byte('a' + (seed>>33)%26)
		run := int(seed>>56)%7 + 1
		if run > size-n {
			run = size - n
		}
		for j := 0; j < run; j++ {
			dst[n+j] = b
		}
		n += run
	}
	return dst
}

// CompressibleValue produces a value that compresses to roughly half
// its size, the way db_bench's CompressibleString does for its default
// --compression_ratio=0.5: a deterministic half-size piece repeated to
// fill. The read benchmarks use it so compression-on runs measure the
// workload the paper's tooling measures; Value stays untouched because
// the figure harnesses' byte streams (and so their virtual timings)
// depend on it.
func CompressibleValue(dst []byte, key int64, round int, size int) []byte {
	half := size / 2
	if half < 1 {
		return Value(dst, key, round, size)
	}
	dst = Value(dst, key, round, half)
	dst = dst[:half]
	for len(dst) < size {
		n := size - len(dst)
		if n > half {
			n = half
		}
		dst = append(dst, dst[:n]...)
	}
	return dst
}
