package dbbench

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestKeyFormat(t *testing.T) {
	if got := string(Key(0)); got != "0000000000000000" {
		t.Fatalf("Key(0) = %q", got)
	}
	if got := string(Key(123456)); got != "0000000000123456" {
		t.Fatalf("Key(123456) = %q", got)
	}
	if len(Key(0)) != 16 {
		t.Fatal("db_bench keys must be 16 bytes")
	}
}

func TestSequentialGenerators(t *testing.T) {
	for _, w := range []string{FillSeq, ReadSeq} {
		g := NewGenerator(w, 5, 1)
		for i := int64(0); i < 5; i++ {
			k, done := g.Next()
			if done || k != i {
				t.Fatalf("%s step %d: k=%d done=%v", w, i, k, done)
			}
		}
		if _, done := g.Next(); !done {
			t.Fatalf("%s did not finish", w)
		}
	}
}

func TestRandomGeneratorBoundsAndCount(t *testing.T) {
	g := NewGenerator(FillRandom, 1000, 1)
	n := 0
	for {
		k, done := g.Next()
		if done {
			break
		}
		if k < 0 || k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
		n++
	}
	if n != 1000 {
		t.Fatalf("issued %d ops, want 1000", n)
	}
}

func TestRandomGeneratorHasDuplicates(t *testing.T) {
	// db_bench's rand%num draws with replacement: a 1000-op run over
	// 1000 records statistically must repeat some keys.
	g := NewGenerator(FillRandom, 1000, 1)
	seen := map[int64]bool{}
	dups := 0
	for {
		k, done := g.Next()
		if done {
			break
		}
		if seen[k] {
			dups++
		}
		seen[k] = true
	}
	if dups == 0 {
		t.Fatal("no duplicate keys — not rand%num semantics")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(Overwrite, 500, 9)
	g2 := NewGenerator(Overwrite, 500, 9)
	for {
		k1, d1 := g1.Next()
		k2, d2 := g2.Next()
		if k1 != k2 || d1 != d2 {
			t.Fatal("same seed diverged")
		}
		if d1 {
			break
		}
	}
}

func TestValueProperties(t *testing.T) {
	f := func(key int64, round uint8, sizeRaw uint16) bool {
		size := int(sizeRaw%4096) + 1
		v1 := Value(nil, key, int(round), size)
		v2 := Value(nil, key, int(round), size)
		if len(v1) != size || !bytes.Equal(v1, v2) {
			return false
		}
		// A different round yields a different value (same length).
		v3 := Value(nil, key, int(round)+1, size)
		return len(v3) == size && (size < 8 || !bytes.Equal(v1, v3))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 2048)
	v := Value(buf, 1, 0, 1024)
	if &v[0] != &buf[:1][0] {
		t.Fatal("Value did not reuse the provided buffer")
	}
}

func TestWorkloadsListed(t *testing.T) {
	if len(Workloads) != 4 {
		t.Fatalf("Workloads = %v", Workloads)
	}
}

func BenchmarkValue1KB(b *testing.B) {
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = Value(buf, int64(i), 0, 1024)
	}
}
