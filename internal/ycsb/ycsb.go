// Package ycsb implements the YCSB core workloads (Cooper et al.,
// SoCC '10) used as the paper's macro-benchmark: the Load phases and
// workloads A–F, with zipfian, scrambled-zipfian, latest and uniform
// request distributions, matching the standard parameterization
// (zipfian constant 0.99, scan lengths uniform in [1,100]).
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// OpKind is a YCSB operation type.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpScan:
		return "scan"
	case OpReadModifyWrite:
		return "rmw"
	default:
		return "op(?)"
	}
}

// Op is one generated request.
type Op struct {
	Kind OpKind
	// KeyNum is the logical record number; format with Key().
	KeyNum int64
	// ScanLen is the number of records a scan touches.
	ScanLen int
}

// Key renders a record number as the stored key. YCSB hashes the
// record number so the key space is uniformly spread regardless of
// insertion order.
func Key(keyNum int64) []byte {
	return []byte(fmt.Sprintf("user%019d", fnvHash64(uint64(keyNum))%1e19))
}

func fnvHash64(v uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// distribution selects request keys.
type distribution int

const (
	distZipfian distribution = iota
	distLatest
	distUniform
)

// Workload is a YCSB core workload definition.
type Workload struct {
	Name string
	// Proportions must sum to 1.
	ReadProp, UpdateProp, InsertProp, ScanProp, RMWProp float64
	dist                                                distribution
	MaxScanLen                                          int
}

// The core workloads, parameterized as in the YCSB distribution and
// the paper (Section 5.3).
var (
	// WorkloadA is update-heavy: 50% reads, 50% updates, zipfian.
	WorkloadA = Workload{Name: "A", ReadProp: 0.5, UpdateProp: 0.5, dist: distZipfian}
	// WorkloadB is read-mostly: 95% reads, 5% updates, zipfian.
	WorkloadB = Workload{Name: "B", ReadProp: 0.95, UpdateProp: 0.05, dist: distZipfian}
	// WorkloadC is read-only, zipfian.
	WorkloadC = Workload{Name: "C", ReadProp: 1.0, dist: distZipfian}
	// WorkloadD reads the latest inserts: 95% reads, 5% inserts.
	WorkloadD = Workload{Name: "D", ReadProp: 0.95, InsertProp: 0.05, dist: distLatest}
	// WorkloadE scans: 95% scans, 5% inserts, zipfian start keys.
	WorkloadE = Workload{Name: "E", ScanProp: 0.95, InsertProp: 0.05, dist: distZipfian, MaxScanLen: 100}
	// WorkloadF read-modify-writes: 50% reads, 50% RMW, zipfian.
	WorkloadF = Workload{Name: "F", ReadProp: 0.5, RMWProp: 0.5, dist: distZipfian}
)

// ByName resolves a workload letter.
func ByName(name string) (Workload, error) {
	switch name {
	case "A", "a":
		return WorkloadA, nil
	case "B", "b":
		return WorkloadB, nil
	case "C", "c":
		return WorkloadC, nil
	case "D", "d":
		return WorkloadD, nil
	case "E", "e":
		return WorkloadE, nil
	case "F", "f":
		return WorkloadF, nil
	default:
		return Workload{}, fmt.Errorf("ycsb: unknown workload %q", name)
	}
}

// Generator produces the request stream of one workload over a record
// space of recordCount (which grows as inserts happen).
type Generator struct {
	wl          Workload
	rnd         *rand.Rand
	recordCount int64
	zipf        *zipfian
}

// NewGenerator returns a generator over an initial record space.
func NewGenerator(wl Workload, recordCount int64, seed int64) *Generator {
	g := &Generator{
		wl:          wl,
		rnd:         rand.New(rand.NewSource(seed)),
		recordCount: recordCount,
	}
	g.zipf = newZipfian(recordCount, 0.99, g.rnd)
	return g
}

// RecordCount reports the current record space size.
func (g *Generator) RecordCount() int64 { return g.recordCount }

// Next produces the next request.
func (g *Generator) Next() Op {
	p := g.rnd.Float64()
	switch {
	case p < g.wl.ReadProp:
		return Op{Kind: OpRead, KeyNum: g.chooseKey()}
	case p < g.wl.ReadProp+g.wl.UpdateProp:
		return Op{Kind: OpUpdate, KeyNum: g.chooseKey()}
	case p < g.wl.ReadProp+g.wl.UpdateProp+g.wl.InsertProp:
		k := g.recordCount
		g.recordCount++
		return Op{Kind: OpInsert, KeyNum: k}
	case p < g.wl.ReadProp+g.wl.UpdateProp+g.wl.InsertProp+g.wl.ScanProp:
		n := 1
		if g.wl.MaxScanLen > 1 {
			n = 1 + g.rnd.Intn(g.wl.MaxScanLen)
		}
		return Op{Kind: OpScan, KeyNum: g.chooseKey(), ScanLen: n}
	default:
		return Op{Kind: OpReadModifyWrite, KeyNum: g.chooseKey()}
	}
}

// chooseKey picks a record number per the workload's distribution.
func (g *Generator) chooseKey() int64 {
	switch g.wl.dist {
	case distLatest:
		// Skewed towards the most recent inserts.
		off := g.zipf.next()
		k := g.recordCount - 1 - off
		if k < 0 {
			k = 0
		}
		return k
	case distUniform:
		return g.rnd.Int63n(g.recordCount)
	default:
		// Scrambled zipfian: hash the zipfian rank across the space
		// so the hot set is spread, as YCSB does.
		return int64(fnvHash64(uint64(g.zipf.next())) % uint64(g.recordCount))
	}
}

// zipfian draws ranks in [0, items) with P(rank) ∝ 1/(rank+1)^theta,
// following the Gray et al. algorithm YCSB uses.
type zipfian struct {
	items                        int64
	theta, alpha, zetan, eta, z2 float64
	rnd                          *rand.Rand
}

func newZipfian(items int64, theta float64, rnd *rand.Rand) *zipfian {
	if items < 1 {
		items = 1
	}
	z := &zipfian{items: items, theta: theta, rnd: rnd}
	z.z2 = zeta(2, theta)
	z.zetan = zeta(items, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(items), 1-theta)) / (1 - z.z2/z.zetan)
	return z
}

func zeta(n int64, theta float64) float64 {
	// Exact for small n; for large n use the standard incremental
	// approximation cut-off (the distribution tail is insensitive).
	const maxExact = 1 << 20
	m := n
	if m > maxExact {
		m = maxExact
	}
	var sum float64
	for i := int64(1); i <= m; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	if n > m {
		// Integral approximation of the remaining tail.
		sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(m), 1-theta)) / (1 - theta)
	}
	return sum
}

func (z *zipfian) next() int64 {
	u := z.rnd.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
