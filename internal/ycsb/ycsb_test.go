package ycsb

import (
	"math"
	"math/rand"
	"testing"
)

func TestWorkloadProportions(t *testing.T) {
	for _, wl := range []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF} {
		sum := wl.ReadProp + wl.UpdateProp + wl.InsertProp + wl.ScanProp + wl.RMWProp
		if math.Abs(sum-1.0) > 1e-9 {
			t.Errorf("workload %s proportions sum to %v", wl.Name, sum)
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"A", "b", "C", "d", "E", "f"} {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
	if _, err := ByName("Z"); err == nil {
		t.Error("ByName(Z) succeeded")
	}
}

func TestOperationMixMatchesProportions(t *testing.T) {
	g := NewGenerator(WorkloadA, 10000, 1)
	counts := map[OpKind]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	read := float64(counts[OpRead]) / n
	update := float64(counts[OpUpdate]) / n
	if math.Abs(read-0.5) > 0.02 || math.Abs(update-0.5) > 0.02 {
		t.Fatalf("A mix: read=%.3f update=%.3f", read, update)
	}
}

func TestWorkloadEScanLengths(t *testing.T) {
	g := NewGenerator(WorkloadE, 10000, 1)
	scans := 0
	for i := 0; i < 10000; i++ {
		op := g.Next()
		if op.Kind != OpScan {
			continue
		}
		scans++
		if op.ScanLen < 1 || op.ScanLen > 100 {
			t.Fatalf("scan length %d out of [1,100]", op.ScanLen)
		}
	}
	if scans < 9000 {
		t.Fatalf("only %d scans in workload E", scans)
	}
}

func TestInsertsGrowRecordSpace(t *testing.T) {
	g := NewGenerator(WorkloadD, 1000, 1)
	before := g.RecordCount()
	inserted := int64(0)
	for i := 0; i < 10000; i++ {
		if g.Next().Kind == OpInsert {
			inserted++
		}
	}
	if g.RecordCount() != before+inserted {
		t.Fatalf("record count %d, want %d", g.RecordCount(), before+inserted)
	}
}

func TestInsertKeysAreFresh(t *testing.T) {
	g := NewGenerator(WorkloadD, 1000, 1)
	seen := map[int64]bool{}
	for i := 0; i < 20000; i++ {
		op := g.Next()
		if op.Kind != OpInsert {
			continue
		}
		if op.KeyNum < 1000 {
			t.Fatalf("insert reused key %d", op.KeyNum)
		}
		if seen[op.KeyNum] {
			t.Fatalf("insert repeated key %d", op.KeyNum)
		}
		seen[op.KeyNum] = true
	}
}

func TestZipfianSkew(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	z := newZipfian(100000, 0.99, rnd)
	counts := map[int64]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		r := z.next()
		if r < 0 || r >= 100000 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// Rank 0 must be far more popular than the median rank, and the
	// head must dominate: the top 1% of ranks should absorb a large
	// share of draws under theta=0.99.
	if counts[0] < n/100 {
		t.Fatalf("rank 0 drawn only %d times", counts[0])
	}
	var head int
	for r, c := range counts {
		if r < 1000 {
			head += c
		}
	}
	if float64(head)/n < 0.3 {
		t.Fatalf("top 1%% of ranks got only %.1f%% of draws", 100*float64(head)/n)
	}
}

func TestScrambledZipfianSpreadsHotKeys(t *testing.T) {
	g := NewGenerator(WorkloadC, 100000, 1)
	counts := map[int64]int{}
	for i := 0; i < 50000; i++ {
		counts[g.chooseKey()]++
	}
	// The hottest keys must not be clustered at the low end of the
	// key space (that is the point of scrambling).
	var hottest int64
	best := 0
	for k, c := range counts {
		if c > best {
			best, hottest = c, k
		}
	}
	if hottest < 1000 {
		t.Logf("hottest key %d near origin — acceptable but unusual", hottest)
	}
	if best < 100 {
		t.Fatalf("no hot key emerged (max count %d)", best)
	}
}

func TestLatestDistributionFavorsRecentKeys(t *testing.T) {
	g := NewGenerator(WorkloadD, 10000, 1)
	recent := 0
	const n = 20000
	reads := 0
	for i := 0; i < n; i++ {
		op := g.Next()
		if op.Kind != OpRead {
			continue
		}
		reads++
		if op.KeyNum >= g.RecordCount()-1000 {
			recent++
		}
	}
	if float64(recent)/float64(reads) < 0.3 {
		t.Fatalf("only %.1f%% of latest-dist reads hit the newest 10%%", 100*float64(recent)/float64(reads))
	}
}

func TestKeyFormatting(t *testing.T) {
	k1, k2 := Key(1), Key(2)
	if len(k1) != len(k2) || len(k1) != 23 {
		t.Fatalf("key lengths %d/%d", len(k1), len(k2))
	}
	if string(k1) == string(k2) {
		t.Fatal("distinct records share a key")
	}
	if string(Key(1)) != string(Key(1)) {
		t.Fatal("key not deterministic")
	}
}

func TestDeterministicStreams(t *testing.T) {
	g1 := NewGenerator(WorkloadA, 1000, 5)
	g2 := NewGenerator(WorkloadA, 1000, 5)
	for i := 0; i < 1000; i++ {
		if g1.Next() != g2.Next() {
			t.Fatal("same seed diverged")
		}
	}
	g3 := NewGenerator(WorkloadA, 1000, 6)
	same := 0
	for i := 0; i < 1000; i++ {
		if g1.Next() == g3.Next() {
			same++
		}
	}
	if same > 900 {
		t.Fatal("different seeds produced near-identical streams")
	}
}

func TestOpKindString(t *testing.T) {
	names := map[OpKind]string{
		OpRead: "read", OpUpdate: "update", OpInsert: "insert",
		OpScan: "scan", OpReadModifyWrite: "rmw", OpKind(99): "op(?)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestZetaTailApproximation(t *testing.T) {
	// For n beyond the exact cutoff, zeta must keep increasing and
	// stay finite.
	small := zeta(1<<20, 0.99)
	big := zeta(50_000_000, 0.99)
	if !(big > small) || math.IsInf(big, 0) || math.IsNaN(big) {
		t.Fatalf("zeta: small=%v big=%v", small, big)
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	z := newZipfian(50_000_000, 0.99, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.next()
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g := NewGenerator(WorkloadA, 1_000_000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
