package obs

import (
	"encoding/json"
	"io"
)

// This file exports traces in the Chrome trace_event format (the
// "JSON Array Format" with a traceEvents envelope), loadable in
// chrome://tracing and Perfetto. Virtual nanoseconds map to the
// format's microsecond timestamps, so the viewer displays the virtual
// timeline directly. Several tracers can be combined into one file as
// separate processes — dbbench exports one process per variant.

// chromeEvent is one trace_event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// ChromeExporter accumulates processes (one per tracer) and writes a
// single trace file. Per-process dropped-event counts land in the
// file's otherData header so a truncated history is visible in the
// export itself, not only in live metrics.
type ChromeExporter struct {
	events  []chromeEvent
	dropped map[string]uint64
}

// NewChromeExporter returns an empty exporter.
func NewChromeExporter() *ChromeExporter { return &ChromeExporter{} }

// AddProcess appends a tracer's retained events as process pid named
// name, emitting process/thread metadata so the viewer labels rows.
func (e *ChromeExporter) AddProcess(pid int, name string, t *Tracer) {
	events := t.Events()
	if d := t.Dropped(); d > 0 {
		if e.dropped == nil {
			e.dropped = make(map[string]uint64)
		}
		e.dropped[name] += d
	}
	e.events = append(e.events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name},
	})
	seenTid := map[int]bool{}
	for _, ev := range events {
		if !seenTid[ev.Tid] {
			seenTid[ev.Tid] = true
			e.events = append(e.events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: ev.Tid,
				Args: map[string]any{"name": ThreadName(ev.Tid)},
			})
		}
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ts:   float64(ev.Time) / 1e3, // virtual ns → trace µs
			Pid:  pid,
			Tid:  ev.Tid,
		}
		if ev.Instant {
			ce.Ph, ce.S = "i", "t"
		} else {
			ce.Ph = "X"
			ce.Dur = float64(ev.Dur) / 1e3
			if ce.Dur <= 0 {
				// Perfetto hides zero-width slices; give sub-µs spans
				// a visible floor.
				ce.Dur = 0.001
			}
		}
		if len(ev.Args) > 0 {
			ce.Args = make(map[string]any, len(ev.Args))
			for _, kv := range ev.Args {
				ce.Args[kv.K] = kv.V
			}
		}
		e.events = append(e.events, ce)
	}
}

// Write emits the accumulated trace as JSON.
func (e *ChromeExporter) Write(w io.Writer) error {
	f := chromeFile{TraceEvents: e.events, DisplayTimeUnit: "ms"}
	if len(e.dropped) > 0 {
		var total uint64
		perProc := make(map[string]any, len(e.dropped))
		for name, d := range e.dropped {
			perProc[name] = d
			total += d
		}
		f.OtherData = map[string]any{
			"droppedEvents":          total,
			"droppedEventsByProcess": perProc,
			"droppedEventsNote":      "ring capacity exceeded; oldest events evicted before export",
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
