package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"noblsm/internal/vclock"
)

// TestAggregateSums: counters and gauges sum across registries, and
// latency percentiles are taken over the merged sample population, not
// averaged per registry.
func TestAggregateSums(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("engine.puts").Add(10)
	b.Counter("engine.puts").Add(32)
	b.Counter("engine.gets").Add(5)
	a.Gauge("cache.shards").Set(4)
	b.Gauge("cache.shards").Set(4)

	// 99 fast samples in a, 1 slow sample in b: the aggregate p99.9/max
	// must see the slow one.
	for i := 0; i < 99; i++ {
		a.Timer("server.req_us").Observe(10 * vclock.Microsecond)
	}
	b.Timer("server.req_us").Observe(10 * vclock.Millisecond)

	s := Aggregate(a, b, nil)
	if got := s.Counters["engine.puts"]; got != 42 {
		t.Errorf("puts aggregate = %d, want 42", got)
	}
	if got := s.Counters["engine.gets"]; got != 5 {
		t.Errorf("gets aggregate = %d, want 5", got)
	}
	if got := s.Gauges["cache.shards"]; got != 8 {
		t.Errorf("gauge aggregate = %d, want 8 (sums)", got)
	}
	tm := s.Timers["server.req_us"]
	if tm.Count != 100 {
		t.Errorf("timer count = %d, want 100", tm.Count)
	}
	if tm.MaxUs < 9_000 {
		t.Errorf("timer max %.1fµs lost the slow registry's sample", tm.MaxUs)
	}
	if tm.P50Us > 1_000 {
		t.Errorf("timer p50 %.1fµs should stay near the fast population", tm.P50Us)
	}
}

// TestAggregatedExposition: /metrics over named registries serves the
// summed values, /stats carries per-name sections, and /doctor renders
// each named report.
func TestAggregatedExposition(t *testing.T) {
	s0, s1 := NewRegistry(), NewRegistry()
	s0.Counter("engine.puts").Add(7)
	s1.Counter("engine.puts").Add(3)
	x := Exposition{
		Registries: map[string]*Registry{"shard-0": s0, "shard-1": s1},
		Doctors: map[string]func() string{
			"shard-0": func() string { return "healthy-zero\n" },
			"shard-1": func() string { return "healthy-one\n" },
		},
	}
	srv := httptest.NewServer(NewHandler(x))
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s: %s", path, resp.Status, body)
		}
		return string(body)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "noblsm_engine_puts 10") {
		t.Errorf("/metrics did not aggregate shard counters:\n%s", metrics)
	}
	stats := get("/stats")
	for _, want := range []string{`"registries"`, `"shard-0"`, `"shard-1"`} {
		if !strings.Contains(stats, want) {
			t.Errorf("/stats missing %s:\n%s", want, stats)
		}
	}
	doctor := get("/doctor")
	for _, want := range []string{"== shard-0 ==", "healthy-zero", "== shard-1 ==", "healthy-one"} {
		if !strings.Contains(doctor, want) {
			t.Errorf("/doctor missing %q:\n%s", want, doctor)
		}
	}
}
