package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"noblsm/internal/vclock"
)

// TestRegistryConcurrent hammers get-or-create and updates from many
// goroutines; run under -race this verifies the registry and the
// metric types are safely shareable.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared.counter").Inc()
				r.Counter(fmt.Sprintf("worker.%d", w%4)).Inc()
				r.Gauge("shared.gauge").Set(int64(i))
				r.Timer("shared.timer").Observe(vclock.Duration(i + 1))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != workers*perWorker {
		t.Fatalf("shared counter = %d, want %d", got, workers*perWorker)
	}
	var perWorkerTotal int64
	for i := 0; i < 4; i++ {
		perWorkerTotal += r.Counter(fmt.Sprintf("worker.%d", i)).Value()
	}
	if perWorkerTotal != workers*perWorker {
		t.Fatalf("per-worker counters sum to %d, want %d", perWorkerTotal, workers*perWorker)
	}
	h := r.Timer("shared.timer").Snapshot()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("timer count = %d, want %d", got, workers*perWorker)
	}
	snap := r.Snapshot()
	if snap.Counters["shared.counter"] != workers*perWorker {
		t.Fatalf("snapshot counter = %d", snap.Counters["shared.counter"])
	}
	if !strings.Contains(r.String(), "shared.counter") {
		t.Fatal("String() misses shared.counter")
	}
}

// TestRegistrySameInstance checks get-or-create identity: two lookups
// of one name must return the same metric.
func TestRegistrySameInstance(t *testing.T) {
	r := NewRegistry()
	a, b := r.Counter("x"), r.Counter("x")
	if a != b {
		t.Fatal("Counter(x) returned distinct instances")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatal("aliased counter does not share state")
	}
}

// TestCounterDuration checks the nanosecond-duration idiom.
func TestCounterDuration(t *testing.T) {
	var c Counter
	c.AddDuration(3 * vclock.Millisecond)
	c.AddDuration(2 * vclock.Millisecond)
	if got := c.Duration(); got != 5*vclock.Millisecond {
		t.Fatalf("duration = %v, want 5ms", got)
	}
}

// TestTracerWraparound fills a small ring past capacity and checks
// that the newest events survive, in order, with the overflow counted.
func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 20; i++ {
		tr.Instant(TidForeground, "test", fmt.Sprintf("e%d", i), vclock.Time(i))
	}
	if got := tr.Dropped(); got != 12 {
		t.Fatalf("dropped = %d, want 12", got)
	}
	events := tr.Events()
	if len(events) != 8 {
		t.Fatalf("retained %d events, want 8", len(events))
	}
	for i, e := range events {
		want := fmt.Sprintf("e%d", 12+i)
		if e.Name != want {
			t.Fatalf("event[%d] = %q, want %q", i, e.Name, want)
		}
	}
}

// TestTracerConcurrent emits from many goroutines; under -race this
// verifies the ring's synchronization.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Span(w, "cat", "span", vclock.Time(i), vclock.Time(i+1), KV{"i", i})
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Len(); got != 64 {
		t.Fatalf("retained %d, want 64", got)
	}
	if got := tr.Dropped(); got != 8*500-64 {
		t.Fatalf("dropped %d, want %d", got, 8*500-64)
	}
}

// TestNilTracerIsSafe checks every emission path no-ops on nil.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Instant(0, "c", "n", 0)
	tr.Span(0, "c", "n", 0, 1)
	tr.Emit(Event{})
	if tr.Events() != nil || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer not inert")
	}
}

// TestChromeExport checks the exported file parses as the trace_event
// envelope with span, instant and metadata records.
func TestChromeExport(t *testing.T) {
	tr := NewTracer(16)
	tr.Span(TidBackgroundBase, "compaction", "compaction.major",
		vclock.Time(1*vclock.Millisecond), vclock.Time(3*vclock.Millisecond),
		KV{"level", 1}, KV{"bytes", 4096})
	tr.Instant(TidJournal, "journal", "jbd2.commit", vclock.Time(5*vclock.Millisecond))

	var buf bytes.Buffer
	ex := NewChromeExporter()
	ex.AddProcess(1, "NobLSM", tr)
	if err := ex.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var haveSpan, haveInstant, haveProcMeta bool
	for _, e := range parsed.TraceEvents {
		switch e["ph"] {
		case "X":
			if e["name"] == "compaction.major" && e["ts"].(float64) == 1000 && e["dur"].(float64) == 2000 {
				haveSpan = true
			}
		case "i":
			if e["name"] == "jbd2.commit" {
				haveInstant = true
			}
		case "M":
			if e["name"] == "process_name" {
				haveProcMeta = true
			}
		}
	}
	if !haveSpan || !haveInstant || !haveProcMeta {
		t.Fatalf("export missing records: span=%v instant=%v meta=%v", haveSpan, haveInstant, haveProcMeta)
	}
}
