package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"noblsm/internal/vclock"
)

// This file implements the stall ledger: every instant a foreground
// operation spends blocked on background state is charged to exactly
// one named cause, so "where did the p99 go" has a queryable answer
// instead of a single aggregate stall counter. Luo & Carey's stability
// study (PAPERS.md) shows mean throughput hides exactly this: the
// ledger is the substrate the stall-aware scheduler and p99 governor
// (ROADMAP item 3) will be tuned against.

// StallCause tags one reason a foreground operation stalled.
type StallCause uint8

const (
	// StallL0Slowdown: the L0 soft limit charged its per-write
	// slowdown penalty.
	StallL0Slowdown StallCause = iota
	// StallMemtableFull: the memtable filled while the previous
	// immutable memtable was still flushing (the rotation wait).
	StallMemtableFull
	// StallCompactionBacklog: L0 reached the stop trigger and the
	// write waited for background compactions to drain.
	StallCompactionBacklog
	// StallReadOnly: a write was rejected because a permanent
	// background error flipped the DB read-only (a fail-fast stall:
	// counted with zero duration).
	StallReadOnly
	// StallWALRotate: the write waited while a poisoned write-ahead
	// log was rotated out before its group could append.
	StallWALRotate
	// StallAdmissionPacing: the admission governor paced the write — a
	// small bounded delay matched to the background drain rate,
	// replacing the slowdown/stop cliff (internal/governor).
	StallAdmissionPacing
	// StallWriteStalled: a write waited its Options.WriteStallDeadline
	// and was then failed with ErrWriteStalled so the caller could
	// shed load instead of queueing unboundedly.
	StallWriteStalled

	NumStallCauses int = iota
)

var stallCauseNames = [NumStallCauses]string{
	StallL0Slowdown:        "l0_slowdown",
	StallMemtableFull:      "memtable_full",
	StallCompactionBacklog: "compaction_backlog",
	StallReadOnly:          "read_only",
	StallWALRotate:         "wal_rotate",
	StallAdmissionPacing:   "admission_pacing",
	StallWriteStalled:      "write_stalled",
}

// String returns the cause's metric suffix ("l0_slowdown").
func (c StallCause) String() string {
	if int(c) < len(stallCauseNames) {
		return stallCauseNames[c]
	}
	return "stall(?)"
}

// StallLedger accumulates per-cause stall accounting: occurrence
// count, total stall time, and the largest single stall. Counters are
// registry-backed so the ledger shows up in every metrics surface;
// max tracking is under a small mutex (stalls are rare events, never
// the per-op hot path). All methods are nil-receiver no-ops.
type StallLedger struct {
	mu     sync.Mutex
	counts [NumStallCauses]*Counter
	ns     [NumStallCauses]*Counter
	maxNs  [NumStallCauses]*Gauge
	// series, when set, receives every stall for windowed max-stall
	// reporting (wired by NewTelemetry).
	series *TimeSeries
}

// NewStallLedger registers the ledger's metrics on r under
// "engine.stall.<cause>.{count,ns,max_ns}".
func NewStallLedger(r *Registry) *StallLedger {
	l := &StallLedger{}
	for c := 0; c < NumStallCauses; c++ {
		name := StallCause(c).String()
		l.counts[c] = r.Counter("engine.stall." + name + ".count")
		l.ns[c] = r.Counter("engine.stall." + name + ".ns")
		l.maxNs[c] = r.Gauge("engine.stall." + name + ".max_ns")
	}
	return l
}

// Observe charges one stall of duration d ending at instant at to
// cause c. Zero-duration stalls (fail-fast rejections) count an
// occurrence without stall time.
func (l *StallLedger) Observe(c StallCause, at vclock.Time, d vclock.Duration) {
	if l == nil {
		return
	}
	l.counts[c].Inc()
	if d > 0 {
		l.ns[c].AddDuration(d)
		l.mu.Lock()
		if int64(d) > l.maxNs[c].Value() {
			l.maxNs[c].Set(int64(d))
		}
		l.mu.Unlock()
	}
	l.series.RecordStall(at, d)
}

// Reset zeroes every cause's accounting (not the windowed series).
// Benchmarks call it between a preload phase and the measured phase so
// fill-time stalls don't pollute the measured tail.
func (l *StallLedger) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	for c := 0; c < NumStallCauses; c++ {
		l.counts[c].Store(0)
		l.ns[c].Store(0)
		l.maxNs[c].Set(0)
	}
	l.mu.Unlock()
}

// Count, TotalNs and MaxNs report one cause's accounting.
func (l *StallLedger) Count(c StallCause) int64 {
	if l == nil {
		return 0
	}
	return l.counts[c].Value()
}

// TotalNs reports the cause's accumulated stall time.
func (l *StallLedger) TotalNs(c StallCause) vclock.Duration {
	if l == nil {
		return 0
	}
	return l.ns[c].Duration()
}

// MaxNs reports the cause's largest single stall.
func (l *StallLedger) MaxNs(c StallCause) vclock.Duration {
	if l == nil {
		return 0
	}
	return vclock.Duration(l.maxNs[c].Value())
}

// TotalStallNs sums stall time across every cause.
func (l *StallLedger) TotalStallNs() vclock.Duration {
	if l == nil {
		return 0
	}
	var sum vclock.Duration
	for c := 0; c < NumStallCauses; c++ {
		sum += l.ns[c].Duration()
	}
	return sum
}

// String renders the ledger, worst total first — the stall section of
// the doctor report.
func (l *StallLedger) String() string {
	if l == nil {
		return "(no stall ledger)\n"
	}
	type row struct {
		cause StallCause
		count int64
		total vclock.Duration
		max   vclock.Duration
	}
	rows := make([]row, 0, NumStallCauses)
	for c := 0; c < NumStallCauses; c++ {
		rows = append(rows, row{StallCause(c), l.Count(StallCause(c)),
			l.TotalNs(StallCause(c)), l.MaxNs(StallCause(c))})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		return rows[i].cause < rows[j].cause
	})
	var b strings.Builder
	for _, r := range rows {
		if r.count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-20s count=%-8d total=%-12v max=%v\n",
			r.cause, r.count, r.total, r.max)
	}
	if b.Len() == 0 {
		return "(no stalls observed)\n"
	}
	return b.String()
}
