// Package obs is the unified observability layer of the stack: a
// named metrics registry (counters, gauges, histogram-backed timers),
// a bounded ring-buffer event tracer stamped with virtual-clock time,
// and an exporter to Chrome trace_event JSON so whole benchmark runs
// can be opened in chrome://tracing or Perfetto.
//
// Every layer of the stack — the engine, the NobLSM tracker, the ext4
// and SSD models, the block cache and the write-ahead log — registers
// its counters here instead of hand-rolling a private Stats struct;
// the legacy Stats() methods remain as thin views over the registry.
// Components accept an optional shared *Registry and fall back to a
// private one, so the registry is never nil on a hot path and metric
// updates are single atomic adds. Event tracing is optional: a nil
// *Tracer costs exactly one pointer check at each emission site.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"noblsm/internal/histogram"
	"noblsm/internal/vclock"
)

// Counter is a monotonically increasing (resettable) int64 metric.
// The zero value is ready to use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Store overwrites the count (used by the legacy ResetStats views).
func (c *Counter) Store(n int64) { c.v.Store(n) }

// AddDuration adds a virtual duration, stored as nanoseconds. It is
// the idiom for stall-time counters, paired with Duration().
func (c *Counter) AddDuration(d vclock.Duration) { c.v.Add(int64(d)) }

// Duration reports the count as a virtual duration (nanoseconds).
func (c *Counter) Duration() vclock.Duration { return vclock.Duration(c.v.Load()) }

// Gauge is a point-in-time int64 metric.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the gauge.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reports the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer accumulates a latency distribution (histogram-backed).
type Timer struct {
	mu sync.Mutex
	h  histogram.Histogram
}

// Observe records one duration.
func (t *Timer) Observe(d vclock.Duration) {
	t.mu.Lock()
	t.h.Record(d)
	t.mu.Unlock()
}

// Snapshot returns a copy of the accumulated distribution.
func (t *Timer) Snapshot() histogram.Histogram {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.h
}

// Histogram accumulates a distribution of plain int64 values (sizes,
// counts — not durations; use Timer for latencies). Backed by the
// same exponential-bucket histogram, with values recorded as raw
// units.
type Histogram struct {
	mu sync.Mutex
	h  histogram.Histogram
}

// Observe records one value (negative values count as zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	h.h.Record(vclock.Duration(v))
	h.mu.Unlock()
}

// Snapshot returns a copy of the accumulated distribution (bucket
// boundaries are in raw units despite the Duration type).
func (h *Histogram) Snapshot() histogram.Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h
}

// Registry is a thread-safe, get-or-create store of named metrics.
// Names are dot-separated, component-prefixed ("engine.puts",
// "ext4.syncs", "ssd.bytes_written"); requesting the same name twice
// returns the same metric, which is how several components share one
// registry without coordination.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named value histogram, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// TimerSnapshot is the JSON-friendly summary of one timer.
type TimerSnapshot struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// Snapshot is a point-in-time copy of every metric in a registry,
// shaped for JSON emission (dbbench -metrics-json).
type Snapshot struct {
	Counters map[string]int64         `json:"counters"`
	Gauges   map[string]int64         `json:"gauges,omitempty"`
	Timers   map[string]TimerSnapshot `json:"timers,omitempty"`
	Hists    map[string]HistSnapshot  `json:"hists,omitempty"`
}

// HistSnapshot is the JSON-friendly summary of one value histogram
// (raw units, not microseconds).
type HistSnapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// Snapshot copies out every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	timers := make(map[string]*Timer, len(r.timers))
	for k, v := range r.timers {
		timers[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{Counters: make(map[string]int64, len(counters))}
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]int64, len(gauges))
		for k, g := range gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(timers) > 0 {
		s.Timers = make(map[string]TimerSnapshot, len(timers))
		for k, t := range timers {
			h := t.Snapshot()
			s.Timers[k] = TimerSnapshot{
				Count:  h.Count(),
				MeanUs: h.Mean().Microseconds(),
				P50Us:  h.Percentile(50).Microseconds(),
				P99Us:  h.Percentile(99).Microseconds(),
				P999Us: h.Percentile(99.9).Microseconds(),
				MaxUs:  h.Max().Microseconds(),
			}
		}
	}
	if len(hists) > 0 {
		s.Hists = make(map[string]HistSnapshot, len(hists))
		for k, hg := range hists {
			h := hg.Snapshot()
			s.Hists[k] = HistSnapshot{
				Count: h.Count(),
				Mean:  float64(h.Mean()),
				P50:   int64(h.Percentile(50)),
				P99:   int64(h.Percentile(99)),
				Max:   int64(h.Max()),
			}
		}
	}
	return s
}

// Aggregate merges several registries into one Snapshot: counters and
// gauges sum across registries, and timers/histograms merge at the
// histogram level, so percentiles are computed over the union of the
// recorded samples rather than averaged per registry. This is the
// multi-shard exposition path — N independent shard stacks, each with
// its own registry, rendered as one /metrics page.
func Aggregate(regs ...*Registry) Snapshot {
	counters := make(map[string]int64)
	gauges := make(map[string]int64)
	timers := make(map[string]*histogram.Histogram)
	hists := make(map[string]*histogram.Histogram)
	for _, r := range regs {
		if r == nil {
			continue
		}
		r.mu.Lock()
		cs := make(map[string]*Counter, len(r.counters))
		for k, v := range r.counters {
			cs[k] = v
		}
		gs := make(map[string]*Gauge, len(r.gauges))
		for k, v := range r.gauges {
			gs[k] = v
		}
		ts := make(map[string]*Timer, len(r.timers))
		for k, v := range r.timers {
			ts[k] = v
		}
		hs := make(map[string]*Histogram, len(r.hists))
		for k, v := range r.hists {
			hs[k] = v
		}
		r.mu.Unlock()
		for k, c := range cs {
			counters[k] += c.Value()
		}
		for k, g := range gs {
			gauges[k] += g.Value()
		}
		for k, t := range ts {
			h := t.Snapshot()
			if agg, ok := timers[k]; ok {
				agg.Merge(&h)
			} else {
				timers[k] = &h
			}
		}
		for k, hg := range hs {
			h := hg.Snapshot()
			if agg, ok := hists[k]; ok {
				agg.Merge(&h)
			} else {
				hists[k] = &h
			}
		}
	}
	s := Snapshot{Counters: counters}
	if len(gauges) > 0 {
		s.Gauges = gauges
	}
	if len(timers) > 0 {
		s.Timers = make(map[string]TimerSnapshot, len(timers))
		for k, h := range timers {
			s.Timers[k] = TimerSnapshot{
				Count:  h.Count(),
				MeanUs: h.Mean().Microseconds(),
				P50Us:  h.Percentile(50).Microseconds(),
				P99Us:  h.Percentile(99).Microseconds(),
				P999Us: h.Percentile(99.9).Microseconds(),
				MaxUs:  h.Max().Microseconds(),
			}
		}
	}
	if len(hists) > 0 {
		s.Hists = make(map[string]HistSnapshot, len(hists))
		for k, h := range hists {
			s.Hists[k] = HistSnapshot{
				Count: h.Count(),
				Mean:  float64(h.Mean()),
				P50:   int64(h.Percentile(50)),
				P99:   int64(h.Percentile(99)),
				Max:   int64(h.Max()),
			}
		}
	}
	return s
}

// String renders every metric, sorted by name, one per line — the
// backing of the "noblsm.metrics" property.
func (r *Registry) String() string {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Timers))
	lines := make(map[string]string)
	for k, v := range s.Counters {
		names = append(names, k)
		if strings.HasSuffix(k, "_ns") {
			lines[k] = fmt.Sprintf("%-44s %v", k, vclock.Duration(v))
		} else {
			lines[k] = fmt.Sprintf("%-44s %d", k, v)
		}
	}
	for k, v := range s.Gauges {
		names = append(names, k)
		lines[k] = fmt.Sprintf("%-44s %d (gauge)", k, v)
	}
	for k, t := range s.Timers {
		names = append(names, k)
		lines[k] = fmt.Sprintf("%-44s n=%d mean=%.1fµs p50=%.1fµs p99=%.1fµs p999=%.1fµs max=%.1fµs",
			k, t.Count, t.MeanUs, t.P50Us, t.P99Us, t.P999Us, t.MaxUs)
	}
	for k, h := range s.Hists {
		names = append(names, k)
		lines[k] = fmt.Sprintf("%-44s n=%d mean=%.1f p50=%d p99=%d max=%d",
			k, h.Count, h.Mean, h.P50, h.P99, h.Max)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(lines[n])
		b.WriteByte('\n')
	}
	return b.String()
}

// Sink bundles the halves of the observability layer as the single
// optional hook the engine Options carry. A nil *Sink (or nil fields)
// disables the corresponding half.
type Sink struct {
	Metrics *Registry
	Trace   *Tracer
	// Telemetry enables per-op latency attribution, the stall ledger
	// and the windowed time-series (build with NewTelemetry over the
	// same registry as Metrics).
	Telemetry *Telemetry
}
