package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"noblsm/internal/vclock"
)

// TestOpSpanTransitions drives a span through the write-path phases
// and checks that phase durations sum to the end-to-end total by
// construction.
func TestOpSpanTransitions(t *testing.T) {
	var s OpSpan
	s.Begin(100, PhaseWriteEnqueue)
	s.To(150, PhaseWriteGroupWait) // enqueue: 50
	s.To(400, PhaseWriteApply)     // group_wait: 250
	total := s.Finish(430)         // apply: 30

	if total != 330 {
		t.Fatalf("total = %v, want 330", total)
	}
	if got := s.Phase(PhaseWriteEnqueue); got != 50 {
		t.Fatalf("enqueue = %v, want 50", got)
	}
	if got := s.Phase(PhaseWriteGroupWait); got != 250 {
		t.Fatalf("group_wait = %v, want 250", got)
	}
	if got := s.Phase(PhaseWriteApply); got != 30 {
		t.Fatalf("apply = %v, want 30", got)
	}
	if s.PhaseSum() != s.Total() {
		t.Fatalf("phase sum %v != total %v", s.PhaseSum(), s.Total())
	}
	// Re-begin resets cleanly.
	s.Begin(1000, PhaseReadMem)
	s.Finish(1010)
	if s.PhaseSum() != 10 || s.Phase(PhaseWriteEnqueue) != 0 {
		t.Fatalf("Begin did not reset: sum=%v enqueue=%v", s.PhaseSum(), s.Phase(PhaseWriteEnqueue))
	}
}

// TestOpSpanNilAndUnbegun checks the nil-receiver and never-begun
// no-op paths that make attribution free when disabled.
func TestOpSpanNilAndUnbegun(t *testing.T) {
	var nilSpan *OpSpan
	nilSpan.Begin(0, PhaseReadMem)
	nilSpan.To(10, PhaseReadHeal)
	if nilSpan.Finish(20) != 0 || nilSpan.Total() != 0 || nilSpan.PhaseSum() != 0 {
		t.Fatal("nil span not inert")
	}
	if nilSpan.Phase(PhaseReadMem) != 0 {
		t.Fatal("nil span phase not zero")
	}

	var unbegun OpSpan
	unbegun.To(10, PhaseReadHeal) // To before Begin: opted out
	if unbegun.Finish(20) != 0 || unbegun.PhaseSum() != 0 {
		t.Fatal("unbegun span accumulated time")
	}
}

// TestTelemetryNilIsSafe checks the whole plane no-ops on nil,
// including the ledger and series it carries.
func TestTelemetryNilIsSafe(t *testing.T) {
	var tel *Telemetry
	var s OpSpan
	s.Begin(0, PhaseWriteEnqueue)
	s.Finish(10)
	tel.ObserveWrite(&s)
	tel.ObserveRead(&s)
	tel.ObserveWrite(nil)
	if tel.PhaseTimer(PhaseWriteWAL) != nil || tel.WriteTotal() != nil || tel.ReadTotal() != nil {
		t.Fatal("nil telemetry returned timers")
	}

	var led *StallLedger
	led.Observe(StallL0Slowdown, 0, 10)
	if led.Count(StallL0Slowdown) != 0 || led.TotalNs(StallL0Slowdown) != 0 ||
		led.MaxNs(StallL0Slowdown) != 0 || led.TotalStallNs() != 0 {
		t.Fatal("nil ledger not inert")
	}
	if led.String() == "" {
		t.Fatal("nil ledger String empty")
	}

	var ts *TimeSeries
	ts.Record(0, 10)
	ts.RecordStall(0, 10)
	if ts.Windows() != nil || ts.Dropped() != 0 || ts.MaxStall() != 0 || ts.Interval() != 0 {
		t.Fatal("nil series not inert")
	}
	if _, ok := ts.Current(); ok {
		t.Fatal("nil series has a current window")
	}
	if ts.Tail(3) == "" || ts.String() == "" {
		t.Fatal("nil series renders empty")
	}
}

// TestTelemetryObserve checks spans land in the right timers and the
// series.
func TestTelemetryObserve(t *testing.T) {
	r := NewRegistry()
	tel := NewTelemetry(r, vclock.Second, 8)

	var s OpSpan
	s.Begin(0, PhaseWriteEnqueue)
	s.To(100, PhaseWriteWAL)
	s.Finish(250)
	tel.ObserveWrite(&s)

	var g OpSpan
	g.Begin(300, PhaseReadMem)
	g.Finish(340)
	tel.ObserveRead(&g)

	wt := tel.WriteTotal().Snapshot()
	if n := wt.Count(); n != 1 {
		t.Fatalf("write total count = %d, want 1", n)
	}
	rt := tel.ReadTotal().Snapshot()
	if n := rt.Count(); n != 1 {
		t.Fatalf("read total count = %d, want 1", n)
	}
	wal := tel.PhaseTimer(PhaseWriteWAL).Snapshot()
	if d := wal.Max(); d != 150 {
		t.Fatalf("wal phase max = %v, want 150", d)
	}
	cur, ok := tel.Series.Current()
	if !ok || cur.Ops != 2 {
		t.Fatalf("series current = %+v ok=%v, want 2 ops", cur, ok)
	}
}

// TestStallLedgerAccounting checks per-cause counts, totals, maxima
// and the zero-duration fail-fast path.
func TestStallLedgerAccounting(t *testing.T) {
	r := NewRegistry()
	led := NewStallLedger(r)
	led.Observe(StallL0Slowdown, 10, 100)
	led.Observe(StallL0Slowdown, 20, 300)
	led.Observe(StallMemtableFull, 30, 50)
	led.Observe(StallReadOnly, 40, 0) // fail-fast: counted, no duration

	if got := led.Count(StallL0Slowdown); got != 2 {
		t.Fatalf("slowdown count = %d, want 2", got)
	}
	if got := led.TotalNs(StallL0Slowdown); got != 400 {
		t.Fatalf("slowdown total = %v, want 400", got)
	}
	if got := led.MaxNs(StallL0Slowdown); got != 300 {
		t.Fatalf("slowdown max = %v, want 300", got)
	}
	if got := led.Count(StallReadOnly); got != 1 {
		t.Fatalf("read_only count = %d, want 1", got)
	}
	if got := led.TotalStallNs(); got != 450 {
		t.Fatalf("total stall = %v, want 450", got)
	}
	// The registry carries the same numbers under engine.stall.*.
	snap := r.Snapshot()
	if got := snap.Counters["engine.stall.l0_slowdown.ns"]; got != 400 {
		t.Fatalf("registry slowdown ns = %d, want 400", got)
	}
	if got := snap.Gauges["engine.stall.l0_slowdown.max_ns"]; got != 300 {
		t.Fatalf("registry slowdown max = %d, want 300", got)
	}
	out := led.String()
	if !strings.Contains(out, "l0_slowdown") || !strings.Contains(out, "memtable_full") {
		t.Fatalf("ledger rendering missing causes:\n%s", out)
	}
}

// TestTimeSeriesRotation seals windows on interval boundaries,
// preserves index gaps across idle periods and folds late events into
// the current window.
func TestTimeSeriesRotation(t *testing.T) {
	ts := NewTimeSeries(100, 8)
	ts.Record(10, 1)  // window 0
	ts.Record(50, 3)  // window 0
	ts.Record(120, 5) // seals 0, opens 1
	ts.RecordStall(130, 40)
	ts.Record(710, 7) // seals 1, opens 7 (gap: idle 2..6)

	ws := ts.Windows()
	if len(ws) != 2 {
		t.Fatalf("sealed %d windows, want 2", len(ws))
	}
	if ws[0].Index != 0 || ws[0].Ops != 2 {
		t.Fatalf("window[0] = %+v, want index 0 ops 2", ws[0])
	}
	if ws[1].Index != 1 || ws[1].Ops != 1 || ws[1].Stalls != 1 || ws[1].StallNs != 40 {
		t.Fatalf("window[1] = %+v, want index 1, 1 op, 1 stall of 40ns", ws[1])
	}
	cur, ok := ts.Current()
	if !ok || cur.Index != 7 || cur.Ops != 1 {
		t.Fatalf("current = %+v ok=%v, want index 7 ops 1", cur, ok)
	}
	// An event from a timeline slightly behind the newest window folds
	// into the current window instead of rewinding.
	ts.Record(500, 9)
	cur, _ = ts.Current()
	if cur.Ops != 2 {
		t.Fatalf("late event not folded: current = %+v", cur)
	}
	if ts.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", ts.Dropped())
	}
}

// TestTimeSeriesRingOverwrite fills the ring past capacity and checks
// the retained suffix and the drop accounting.
func TestTimeSeriesRingOverwrite(t *testing.T) {
	ts := NewTimeSeries(10, 4)
	// Seal 10 windows (indices 0..9); an 11th stays open.
	for i := 0; i <= 10; i++ {
		ts.Record(vclock.Time(i*10), vclock.Duration(i+1))
	}
	ws := ts.Windows()
	if len(ws) != 4 {
		t.Fatalf("retained %d windows, want 4", len(ws))
	}
	for i, w := range ws {
		if want := int64(6 + i); w.Index != want {
			t.Fatalf("window[%d].Index = %d, want %d (oldest-first)", i, w.Index, want)
		}
	}
	if got := ts.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
}

// TestTimeSeriesMaxStall spans sealed windows and the open one.
func TestTimeSeriesMaxStall(t *testing.T) {
	ts := NewTimeSeries(vclock.Microsecond, 4)
	ts.RecordStall(0, 5*vclock.Microsecond)
	ts.RecordStall(vclock.Time(2*vclock.Microsecond), 3*vclock.Microsecond) // seals window 0
	if got := ts.MaxStall(); got != 5*vclock.Microsecond {
		t.Fatalf("max stall = %v, want 5µs", got)
	}
}

// TestTimeSeriesConcurrent hammers the series from many goroutines;
// under -race this verifies the ring's synchronization.
func TestTimeSeriesConcurrent(t *testing.T) {
	ts := NewTimeSeries(100, 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				at := vclock.Time(i * (w + 1))
				ts.Record(at, vclock.Duration(i%97+1))
				if i%17 == 0 {
					ts.RecordStall(at, vclock.Duration(i%31+1))
				}
				if i%256 == 0 {
					ts.Windows()
					ts.Current()
					ts.MaxStall()
				}
			}
		}(w)
	}
	wg.Wait()
	ws := ts.Windows()
	var ops int64
	for _, w := range ws {
		ops += w.Ops
	}
	if cur, ok := ts.Current(); ok {
		ops += cur.Ops
	}
	// Overwritten windows take their op counts with them, so the
	// retained view is a lower bound; the ring itself must be full and
	// ordered.
	if ops == 0 || ops > 8*2000 {
		t.Fatalf("retained %d ops, want (0, %d]", ops, 8*2000)
	}
	if len(ws) > 16 {
		t.Fatalf("retained %d windows, ring capacity is 16", len(ws))
	}
	for i := 1; i < len(ws); i++ {
		if ws[i].Index <= ws[i-1].Index {
			t.Fatalf("windows out of order: %d after %d", ws[i].Index, ws[i-1].Index)
		}
	}
}

// TestExpositionEndpoints drives the handler against an in-memory
// registry/telemetry/trace stack and checks each endpoint's payload.
func TestExpositionEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.puts").Add(7)
	tel := NewTelemetry(r, 100, 8)
	var s OpSpan
	s.Begin(0, PhaseWriteEnqueue)
	s.Finish(40)
	tel.ObserveWrite(&s)
	tel.Stalls.Observe(StallL0Slowdown, 50, 20)
	tr := NewTracer(16)
	tr.Instant(TidForeground, "test", "evt", 1)

	x := Exposition{
		Registry:  r,
		Telemetry: tel,
		Traces:    map[string]*Tracer{"NobLSM": tr},
		Doctor:    func() string { return "== noblsm doctor ==\nok\n" },
	}
	h := NewHandler(x)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	if rec := get("/metrics"); rec.Code != 200 ||
		!strings.Contains(rec.Body.String(), "noblsm_engine_puts 7") ||
		!strings.Contains(rec.Body.String(), "noblsm_engine_op_write_total_seconds_count 1") {
		t.Fatalf("/metrics = %d:\n%s", rec.Code, rec.Body.String())
	}

	rec := get("/stats")
	var p struct {
		Stalls map[string]struct {
			Count int64 `json:"count"`
		} `json:"stalls"`
		CurrentWindow *WindowStat `json:"current_window"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("/stats not JSON: %v", err)
	}
	if p.Stalls["l0_slowdown"].Count != 1 {
		t.Fatalf("/stats stalls = %+v, want l0_slowdown count 1", p.Stalls)
	}
	if p.CurrentWindow == nil || p.CurrentWindow.Ops != 1 {
		t.Fatalf("/stats current window = %+v, want 1 op", p.CurrentWindow)
	}

	if rec := get("/trace"); rec.Code != 200 ||
		!strings.Contains(rec.Body.String(), `"traceEvents"`) ||
		!strings.Contains(rec.Header().Get("Content-Disposition"), "noblsm-trace.json") {
		t.Fatalf("/trace = %d", rec.Code)
	}
	if rec := get("/doctor"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "noblsm doctor") {
		t.Fatalf("/doctor = %d:\n%s", rec.Code, rec.Body.String())
	}
	if rec := get("/debug/pprof/"); rec.Code != 200 {
		t.Fatalf("/debug/pprof/ = %d", rec.Code)
	}
	if rec := get("/nosuch"); rec.Code != 404 {
		t.Fatalf("/nosuch = %d, want 404", rec.Code)
	}

	// Missing pieces degrade to explanations, not panics.
	empty := NewHandler(Exposition{})
	for path, wantCode := range map[string]int{"/metrics": 200, "/stats": 200, "/trace": 404, "/doctor": 404} {
		rec := httptest.NewRecorder()
		empty.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != wantCode {
			t.Fatalf("empty exposition %s = %d, want %d", path, rec.Code, wantCode)
		}
	}
}

// TestDynamicHandler re-reads the exposition per request, the way a
// per-variant benchmark repoints one listener at successive stacks.
func TestDynamicHandler(t *testing.T) {
	var mu sync.Mutex
	cur := Exposition{}
	h := NewDynamicHandler(func() Exposition {
		mu.Lock()
		defer mu.Unlock()
		return cur
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/doctor", nil))
	if rec.Code != 404 {
		t.Fatalf("before wiring: /doctor = %d, want 404", rec.Code)
	}
	mu.Lock()
	cur = Exposition{Doctor: func() string { return "healthy" }}
	mu.Unlock()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/doctor", nil))
	if rec.Code != 200 || rec.Body.String() != "healthy" {
		t.Fatalf("after wiring: /doctor = %d %q", rec.Code, rec.Body.String())
	}
}

// TestChromeExportDroppedHeader asserts a wrapped ring's export
// declares its truncation in otherData.
func TestChromeExportDroppedHeader(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Instant(TidForeground, "c", "e", vclock.Time(i))
	}
	exp := NewChromeExporter()
	exp.AddProcess(1, "proc", tr)
	var b strings.Builder
	if err := exp.Write(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.OtherData["droppedEvents"] == nil {
		t.Fatalf("export missing droppedEvents header: %v", doc.OtherData)
	}
}
