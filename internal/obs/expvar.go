package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
)

// This file is the live exposition surface of the telemetry plane: an
// http.Handler that serves the registry, the windowed time-series, the
// stall ledger and the trace ring from a *running* process, so a
// long-run benchmark can be watched (and profiled) while it executes
// instead of only post-mortem. Endpoints:
//
//	/            index of everything below
//	/metrics     Prometheus text exposition (counters, gauges, timers)
//	/stats       JSON: registry snapshot + windows + stall ledger
//	/trace       Chrome trace_event JSON download (chrome://tracing)
//	/doctor      the engine's one-page health report, when wired
//	/debug/pprof the standard net/http/pprof profiles
//
// Everything is read-only and safe to poll while the engine runs.

// Exposition describes what an exposition handler serves. Any field
// may be nil; the corresponding endpoint then reports what is missing
// instead of panicking.
type Exposition struct {
	// Registry backs /metrics and the metrics section of /stats.
	Registry *Registry
	// Registries maps names (e.g. "shard-3", "server") to additional
	// registries. /metrics serves the AGGREGATE of Registry and every
	// named registry (counters/gauges sum, latency distributions merge
	// before percentiles are taken — see Aggregate), and /stats adds a
	// per-name snapshot section. This is how a multi-shard server
	// exposes N independent stacks on one page.
	Registries map[string]*Registry
	// Telemetry, when set, contributes the windowed time-series and
	// the stall ledger to /stats.
	Telemetry *Telemetry
	// Traces maps process names to trace rings; /trace exports them
	// as one Chrome trace file (process ids follow sorted names).
	Traces map[string]*Tracer
	// Doctor, when set, backs /doctor — typically a closure over
	// DB.Property("noblsm.doctor").
	Doctor func() string
	// Doctors maps names to additional doctor reports; /doctor renders
	// each under a "== name ==" header after Doctor's own output (the
	// multi-shard shape: one health report per shard).
	Doctors map[string]func() string
}

// metricsSnapshot resolves what /metrics (and the aggregate section of
// /stats) serves: the single registry's snapshot, or the aggregate
// when named registries are wired.
func (x Exposition) metricsSnapshot() (Snapshot, bool) {
	if len(x.Registries) == 0 {
		if x.Registry == nil {
			return Snapshot{}, false
		}
		return x.Registry.Snapshot(), true
	}
	regs := make([]*Registry, 0, len(x.Registries)+1)
	if x.Registry != nil {
		regs = append(regs, x.Registry)
	}
	for _, r := range x.Registries {
		regs = append(regs, r)
	}
	return Aggregate(regs...), true
}

// NewHandler builds the exposition handler.
func NewHandler(x Exposition) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", x.serveIndex)
	mux.HandleFunc("/metrics", x.serveMetrics)
	mux.HandleFunc("/stats", x.serveStats)
	mux.HandleFunc("/trace", x.serveTrace)
	mux.HandleFunc("/doctor", x.serveDoctor)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// NewDynamicHandler builds an exposition handler that re-reads the
// Exposition from get on every request. Benchmarks that provision one
// stack per variant use this to keep a single listener pointed at
// whichever stack is currently running; get must be safe for
// concurrent use.
func NewDynamicHandler(get func() Exposition) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		NewHandler(get()).ServeHTTP(w, r)
	})
}

// ServeDynamic is Serve for a dynamic exposition: it binds addr and
// serves NewDynamicHandler(get) in a background goroutine.
func ServeDynamic(addr string, get func() Exposition) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: NewDynamicHandler(get)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}

// Serve binds addr (":0" picks a free port), serves the exposition on
// it in a background goroutine, and returns the server plus the bound
// address. Callers own server shutdown (srv.Close).
func Serve(addr string, x Exposition) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: NewHandler(x)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}

func (x Exposition) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "noblsm telemetry\n\n")
	fmt.Fprintf(w, "/metrics       Prometheus text exposition\n")
	fmt.Fprintf(w, "/stats         JSON registry + windows + stall ledger\n")
	fmt.Fprintf(w, "/trace         Chrome trace_event download\n")
	fmt.Fprintf(w, "/doctor        engine health report\n")
	fmt.Fprintf(w, "/debug/pprof/  runtime profiles\n")
}

// promName mangles a dotted metric name into the Prometheus
// identifier charset with a noblsm_ namespace prefix.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("noblsm_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func (x Exposition) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s, ok := x.metricsSnapshot()
	if !ok {
		fmt.Fprintf(w, "# no registry wired\n")
		return
	}

	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[k])
	}

	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[k])
	}

	// Timers render as summaries in seconds, the Prometheus duration
	// convention.
	names = names[:0]
	for k := range s.Timers {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		t := s.Timers[k]
		n := promName(k) + "_seconds"
		fmt.Fprintf(w, "# TYPE %s summary\n", n)
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %g\n", n, t.P50Us/1e6)
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %g\n", n, t.P99Us/1e6)
		fmt.Fprintf(w, "%s{quantile=\"0.999\"} %g\n", n, t.P999Us/1e6)
		fmt.Fprintf(w, "%s_sum %g\n", n, t.MeanUs*float64(t.Count)/1e6)
		fmt.Fprintf(w, "%s_count %d\n", n, t.Count)
	}

	names = names[:0]
	for k := range s.Hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Hists[k]
		n := promName(k)
		fmt.Fprintf(w, "# TYPE %s summary\n", n)
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %d\n", n, h.P50)
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %d\n", n, h.P99)
		fmt.Fprintf(w, "%s_sum %g\n", n, h.Mean*float64(h.Count))
		fmt.Fprintf(w, "%s_count %d\n", n, h.Count)
	}
}

// statsPayload is the /stats JSON document.
type statsPayload struct {
	Metrics *Snapshot `json:"metrics,omitempty"`

	// Registries holds the per-name snapshots behind an aggregated
	// Metrics section (the multi-shard /stats shape).
	Registries map[string]*Snapshot `json:"registries,omitempty"`

	SeriesIntervalNs int64        `json:"series_interval_ns,omitempty"`
	Windows          []WindowStat `json:"windows,omitempty"`
	CurrentWindow    *WindowStat  `json:"current_window,omitempty"`
	DroppedWindows   uint64       `json:"dropped_windows,omitempty"`

	Stalls       map[string]stallStat `json:"stalls,omitempty"`
	TraceDropped map[string]uint64    `json:"trace_dropped,omitempty"`
}

type stallStat struct {
	Count   int64 `json:"count"`
	TotalNs int64 `json:"total_ns"`
	MaxNs   int64 `json:"max_ns"`
}

func (x Exposition) serveStats(w http.ResponseWriter, _ *http.Request) {
	var p statsPayload
	if s, ok := x.metricsSnapshot(); ok {
		p.Metrics = &s
	}
	if len(x.Registries) > 0 {
		p.Registries = make(map[string]*Snapshot, len(x.Registries))
		for name, r := range x.Registries {
			s := r.Snapshot()
			p.Registries[name] = &s
		}
	}
	if t := x.Telemetry; t != nil {
		p.SeriesIntervalNs = int64(t.Series.Interval())
		p.Windows = t.Series.Windows()
		if cur, ok := t.Series.Current(); ok {
			p.CurrentWindow = &cur
		}
		p.DroppedWindows = t.Series.Dropped()
		if t.Stalls != nil {
			p.Stalls = make(map[string]stallStat, NumStallCauses)
			for c := 0; c < NumStallCauses; c++ {
				cause := StallCause(c)
				if t.Stalls.Count(cause) == 0 {
					continue
				}
				p.Stalls[cause.String()] = stallStat{
					Count:   t.Stalls.Count(cause),
					TotalNs: int64(t.Stalls.TotalNs(cause)),
					MaxNs:   int64(t.Stalls.MaxNs(cause)),
				}
			}
		}
	}
	for name, tr := range x.Traces {
		if d := tr.Dropped(); d > 0 {
			if p.TraceDropped == nil {
				p.TraceDropped = make(map[string]uint64)
			}
			p.TraceDropped[name] = d
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(p)
}

func (x Exposition) serveTrace(w http.ResponseWriter, _ *http.Request) {
	if len(x.Traces) == 0 {
		http.Error(w, "no trace ring wired (run with -trace)", http.StatusNotFound)
		return
	}
	names := make([]string, 0, len(x.Traces))
	for name := range x.Traces {
		names = append(names, name)
	}
	sort.Strings(names)
	exp := NewChromeExporter()
	for pid, name := range names {
		exp.AddProcess(pid+1, name, x.Traces[name])
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="noblsm-trace.json"`)
	_ = exp.Write(w)
}

func (x Exposition) serveDoctor(w http.ResponseWriter, _ *http.Request) {
	if x.Doctor == nil && len(x.Doctors) == 0 {
		http.Error(w, "no doctor wired (engine not attached)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if x.Doctor != nil {
		fmt.Fprint(w, x.Doctor())
	}
	names := make([]string, 0, len(x.Doctors))
	for name := range x.Doctors {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "\n== %s ==\n%s", name, x.Doctors[name]())
	}
}
