package obs

import (
	"fmt"
	"strings"
	"sync"

	"noblsm/internal/histogram"
	"noblsm/internal/vclock"
)

// This file implements the windowed time-series: a fixed-size ring of
// per-interval latency snapshots, so tail latency is queryable over
// the last N windows instead of only as a cumulative distribution. A
// cumulative histogram answers "what was p99 since the process
// started"; the ring answers "what was p99 in each of the last N
// intervals, and when did the max stall happen" — the view long-run
// stability work needs (Luo & Carey, PAPERS.md).

// WindowStat is one sealed interval's summary. Windows are aligned to
// interval boundaries of the virtual clock; Index is the window's
// ordinal (Start = Index × interval), so gaps in Index expose idle
// periods instead of hiding them.
type WindowStat struct {
	Index int64       `json:"index"`
	Start vclock.Time `json:"start_ns"`

	Ops    int64   `json:"ops"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`

	// Stalls/StallNs/MaxStallUs summarize the stall ledger's events
	// that ended inside this window.
	Stalls     int64   `json:"stalls"`
	StallNs    int64   `json:"stall_ns"`
	MaxStallUs float64 `json:"max_stall_us"`
}

// TimeSeries accumulates operation latencies (and stalls) into the
// current interval's histogram and seals a WindowStat into a bounded
// ring when the virtual clock crosses an interval boundary. Safe for
// concurrent use; all methods are nil-receiver no-ops.
type TimeSeries struct {
	mu       sync.Mutex
	interval vclock.Duration
	ring     []WindowStat
	sealed   uint64 // total windows sealed (ring wrap accounting)

	cur         histogram.Histogram
	curIndex    int64
	curStarted  bool
	curStalls   int64
	curStallNs  vclock.Duration
	curMaxStall vclock.Duration
}

// DefaultWindows is the default ring capacity: with the default
// interval that covers the most recent minutes of a run.
const DefaultWindows = 120

// NewTimeSeries returns a series sealing one window per interval
// (default 1 virtual second) and retaining up to windows of history
// (DefaultWindows if <= 0).
func NewTimeSeries(interval vclock.Duration, windows int) *TimeSeries {
	if interval <= 0 {
		interval = vclock.Second
	}
	if windows <= 0 {
		windows = DefaultWindows
	}
	return &TimeSeries{interval: interval, ring: make([]WindowStat, 0, windows)}
}

// Interval reports the window length.
func (ts *TimeSeries) Interval() vclock.Duration {
	if ts == nil {
		return 0
	}
	return ts.interval
}

// Record folds one operation latency, observed at instant at, into
// the window containing at.
func (ts *TimeSeries) Record(at vclock.Time, d vclock.Duration) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	ts.rotateTo(at)
	ts.cur.Record(d)
	ts.mu.Unlock()
}

// RecordStall folds one stall ending at instant at into the window
// containing at.
func (ts *TimeSeries) RecordStall(at vclock.Time, d vclock.Duration) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	ts.rotateTo(at)
	ts.curStalls++
	ts.curStallNs += d
	if d > ts.curMaxStall {
		ts.curMaxStall = d
	}
	ts.mu.Unlock()
}

// rotateTo seals the current window if at lies beyond it. Events from
// timelines slightly behind the newest window are folded into the
// current window rather than dropped (windows seal monotonically).
// Caller holds ts.mu.
func (ts *TimeSeries) rotateTo(at vclock.Time) {
	idx := int64(at) / int64(ts.interval)
	if !ts.curStarted {
		ts.curIndex, ts.curStarted = idx, true
		return
	}
	if idx <= ts.curIndex {
		return
	}
	ts.seal()
	ts.curIndex = idx
}

// seal pushes the current window's summary into the ring and resets
// the accumulators. Caller holds ts.mu.
func (ts *TimeSeries) seal() {
	w := ts.snapshotCurrent()
	if len(ts.ring) < cap(ts.ring) {
		ts.ring = append(ts.ring, w)
	} else {
		ts.ring[ts.sealed%uint64(cap(ts.ring))] = w
	}
	ts.sealed++
	ts.cur.Reset()
	ts.curStalls, ts.curStallNs, ts.curMaxStall = 0, 0, 0
}

// snapshotCurrent summarizes the open window. Caller holds ts.mu.
func (ts *TimeSeries) snapshotCurrent() WindowStat {
	return WindowStat{
		Index:      ts.curIndex,
		Start:      vclock.Time(ts.curIndex * int64(ts.interval)),
		Ops:        ts.cur.Count(),
		MeanUs:     ts.cur.Mean().Microseconds(),
		P50Us:      ts.cur.Percentile(50).Microseconds(),
		P99Us:      ts.cur.Percentile(99).Microseconds(),
		P999Us:     ts.cur.Percentile(99.9).Microseconds(),
		MaxUs:      ts.cur.Max().Microseconds(),
		Stalls:     ts.curStalls,
		StallNs:    int64(ts.curStallNs),
		MaxStallUs: ts.curMaxStall.Microseconds(),
	}
}

// Windows returns the sealed windows, oldest first. The open window
// is not included (see Current).
func (ts *TimeSeries) Windows() []WindowStat {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	n, c := ts.sealed, uint64(cap(ts.ring))
	out := make([]WindowStat, 0, len(ts.ring))
	if n > c {
		start := n % c
		out = append(out, ts.ring[start:]...)
		out = append(out, ts.ring[:start]...)
	} else {
		out = append(out, ts.ring[:len(ts.ring)]...)
	}
	return out
}

// Current summarizes the open (unsealed) window; ok is false when
// nothing has been recorded yet.
func (ts *TimeSeries) Current() (w WindowStat, ok bool) {
	if ts == nil {
		return WindowStat{}, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if !ts.curStarted {
		return WindowStat{}, false
	}
	return ts.snapshotCurrent(), true
}

// Dropped reports how many sealed windows the ring overwrote.
func (ts *TimeSeries) Dropped() uint64 {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if c := uint64(cap(ts.ring)); ts.sealed > c {
		return ts.sealed - c
	}
	return 0
}

// MaxStall reports the largest stall across every retained window and
// the open one.
func (ts *TimeSeries) MaxStall() vclock.Duration {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	max := ts.curMaxStall
	for _, w := range ts.ring {
		if d := vclock.Duration(int64(w.MaxStallUs * float64(vclock.Microsecond))); d > max {
			max = d
		}
	}
	return max
}

// String renders every retained window (plus the open one) as an
// aligned table.
func (ts *TimeSeries) String() string { return ts.Tail(0) }

// Tail renders the most recent n windows (all retained when n <= 0),
// plus the open window, as an aligned table.
func (ts *TimeSeries) Tail(n int) string {
	if ts == nil {
		return "(no time-series)\n"
	}
	ws := ts.Windows()
	if n > 0 && len(ws) > n {
		ws = ws[len(ws)-n:]
	}
	if cur, ok := ts.Current(); ok && cur.Ops+cur.Stalls > 0 {
		ws = append(ws, cur)
	}
	if len(ws) == 0 {
		return "(no windows)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "window     ops     p50µs     p99µs    p999µs     maxµs  stalls  max-stall\n")
	for _, w := range ws {
		fmt.Fprintf(&b, "%6d  %6d  %8.1f  %8.1f  %8.1f  %8.1f  %6d  %9.1fµs\n",
			w.Index, w.Ops, w.P50Us, w.P99Us, w.P999Us, w.MaxUs, w.Stalls, w.MaxStallUs)
	}
	return b.String()
}
