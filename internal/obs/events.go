package obs

import (
	"sync"

	"noblsm/internal/vclock"
)

// Logical thread ids used for trace rows. The simulation has no OS
// threads; these name the virtual timelines so traces group spans the
// way the paper describes the system (foreground writers, background
// compaction, kjournald, the writeback flusher, the NobLSM tracker).
const (
	TidForeground     = 0
	TidBackgroundBase = 1 // background compaction worker i → 1+i
	// TidSubcompactionBase starts the subcompaction pipeline rows:
	// shard s stage t → 40 + 3s + t, with stages read=0 merge=1
	// write=2 (shards are clamped to 16, so the rows stay below
	// TidJournal).
	TidSubcompactionBase = 40
	TidJournal           = 90
	TidFlusher           = 91
	TidTracker           = 95
)

// ThreadName labels a tid for trace metadata.
func ThreadName(tid int) string {
	switch {
	case tid == TidForeground:
		return "foreground"
	case tid == TidJournal:
		return "jbd2/journal"
	case tid == TidFlusher:
		return "writeback-flusher"
	case tid == TidTracker:
		return "noblsm-tracker"
	case tid >= TidSubcompactionBase && tid < TidJournal:
		switch (tid - TidSubcompactionBase) % 3 {
		case 0:
			return "subcompaction-read"
		case 1:
			return "subcompaction-merge"
		default:
			return "subcompaction-write"
		}
	case tid >= TidBackgroundBase && tid < TidJournal:
		return "compaction-bg"
	default:
		return "thread"
	}
}

// KV is one structured event argument. Args are a slice, not a map,
// so emission order is deterministic and export is reproducible.
type KV struct {
	K string
	V any
}

// Event is one traced occurrence: an instant (Dur == 0 and Instant
// set) or a completed span. Time is virtual-clock time.
type Event struct {
	Time    vclock.Time
	Dur     vclock.Duration
	Name    string
	Cat     string
	Tid     int
	Instant bool
	Args    []KV
}

// Tracer is a bounded ring buffer of events. When full, the oldest
// events are overwritten — a long fillrandom keeps its most recent
// window, and Dropped reports how much history was lost. All methods
// are safe for concurrent use and safe on a nil receiver (no-ops), so
// call sites need only one pointer check to skip argument building.
type Tracer struct {
	mu    sync.Mutex
	buf   []Event
	total uint64
}

// DefaultTraceEvents is the default ring capacity: enough for every
// compaction, stall and journal tick of a scaled paper run.
const DefaultTraceEvents = 1 << 16

// NewTracer returns a tracer retaining up to capacity events
// (DefaultTraceEvents if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Emit records one event.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf[t.total%uint64(len(t.buf))] = e
	t.total++
	t.mu.Unlock()
}

// Span records a completed [from, to) span on tid.
func (t *Tracer) Span(tid int, cat, name string, from, to vclock.Time, args ...KV) {
	if t == nil {
		return
	}
	t.Emit(Event{Time: from, Dur: to.Sub(from), Name: name, Cat: cat, Tid: tid, Args: args})
}

// Instant records a point event on tid.
func (t *Tracer) Instant(tid int, cat, name string, at vclock.Time, args ...KV) {
	if t == nil {
		return
	}
	t.Emit(Event{Time: at, Name: name, Cat: cat, Tid: tid, Instant: true, Args: args})
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	c := uint64(len(t.buf))
	out := make([]Event, 0, min64(n, c))
	if n > c {
		start := n % c
		out = append(out, t.buf[start:]...)
		out = append(out, t.buf[:start]...)
	} else {
		out = append(out, t.buf[:n]...)
	}
	return out
}

// Len reports how many events are currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return int(min64(t.total, uint64(len(t.buf))))
}

// Dropped reports how many events the ring overwrote.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total > uint64(len(t.buf)) {
		return t.total - uint64(len(t.buf))
	}
	return 0
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
