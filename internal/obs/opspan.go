package obs

import (
	"noblsm/internal/vclock"
)

// This file implements per-operation latency attribution: an OpSpan
// rides along one engine operation (a Write through the group-commit
// queue, a Get through the read path) and splits the op's end-to-end
// virtual latency into named phases. The design is transition-based —
// at every instant of the op exactly one phase is open, and switching
// phases closes the previous one — so the phase durations sum to the
// op's total latency BY CONSTRUCTION. The attribution-sum test
// (internal/harness) then proves the engine's instrumentation covers
// every path: a forgotten transition shows up as time charged to the
// wrong phase, an early return without Finish shows up as a missing
// op.

// Phase names one slice of an operation's latency. Write and read
// phases share one enum so a single timer array covers both.
type Phase uint8

const (
	// Write-path phases (engine/writequeue.go).

	// PhaseWriteEnqueue: from Write entry until the request either
	// becomes the group leader or is woken with its group's result.
	PhaseWriteEnqueue Phase = iota
	// PhaseWriteGroupWait: a follower waiting for its leader's commit
	// to complete (the WaitUntil to the group's commit instant).
	PhaseWriteGroupWait
	// PhaseWriteThrottle: the leader making room — L0 slowdown
	// penalties, waits for the previous flush, L0 stop-trigger waits,
	// poisoned-WAL rotation.
	PhaseWriteThrottle
	// PhaseWriteFlush: an inline minor compaction (the synchronous
	// engine's memtable handoff; async mode parks the memtable
	// instead and charges nothing here).
	PhaseWriteFlush
	// PhaseWriteWAL: the group's single write-ahead-log append.
	PhaseWriteWAL
	// PhaseWriteSync: a write-path WAL fsync. Every current policy
	// leaves the WAL unsynced (LevelDB's default), so this phase is
	// zero; the slot exists so a sync-write policy lands in the
	// taxonomy instead of inside PhaseWriteWAL.
	PhaseWriteSync
	// PhaseWriteApply: memtable application, sequence publication and
	// the per-record CPU charge.
	PhaseWriteApply

	// Read-path phases (engine/db.go Get).

	// PhaseReadMem: per-op CPU plus the memtable and immutable-
	// memtable probes.
	PhaseReadMem
	// PhaseReadTableOpen: table-cache probes — opening a reader,
	// which is a cache hit or a footer/index/filter fetch.
	PhaseReadTableOpen
	// PhaseReadTableGet: data-block fetches through an open reader
	// (block-cache hits and device reads).
	PhaseReadTableGet
	// PhaseReadHeal: self-healing rollback of a corrupt successor
	// onto retained shadow predecessors (heal.go).
	PhaseReadHeal
	// PhaseReadBackoff: transient-fault retry backoff.
	PhaseReadBackoff

	NumPhases int = iota
)

// phaseNames index the metric suffix of each phase.
var phaseNames = [NumPhases]string{
	PhaseWriteEnqueue:   "write.enqueue",
	PhaseWriteGroupWait: "write.group_wait",
	PhaseWriteThrottle:  "write.throttle",
	PhaseWriteFlush:     "write.flush",
	PhaseWriteWAL:       "write.wal_append",
	PhaseWriteSync:      "write.wal_sync",
	PhaseWriteApply:     "write.mem_apply",
	PhaseReadMem:        "read.memtable",
	PhaseReadTableOpen:  "read.table_open",
	PhaseReadTableGet:   "read.table_fetch",
	PhaseReadHeal:       "read.heal",
	PhaseReadBackoff:    "read.backoff",
}

// String returns the phase's metric suffix ("write.wal_append").
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "phase(?)"
}

// WritePhases and ReadPhases list each path's phases in pipeline
// order, for rendering.
var (
	WritePhases = []Phase{PhaseWriteEnqueue, PhaseWriteGroupWait, PhaseWriteThrottle,
		PhaseWriteFlush, PhaseWriteWAL, PhaseWriteSync, PhaseWriteApply}
	ReadPhases = []Phase{PhaseReadMem, PhaseReadTableOpen, PhaseReadTableGet,
		PhaseReadHeal, PhaseReadBackoff}
)

// OpSpan accumulates one operation's phase durations on the calling
// thread's virtual timeline. The zero value is ready; Begin opens the
// first phase, To closes the current phase and opens the next, Finish
// closes the last. All methods are nil-receiver no-ops so call sites
// pay one pointer check when attribution is off. An OpSpan is owned by
// one operation (one goroutine) at a time and is not self-
// synchronizing.
type OpSpan struct {
	start  vclock.Time
	mark   vclock.Time
	cur    Phase
	open   bool
	phases [NumPhases]vclock.Duration
}

// Begin resets the span and opens phase p at instant at.
func (s *OpSpan) Begin(at vclock.Time, p Phase) {
	if s == nil {
		return
	}
	s.phases = [NumPhases]vclock.Duration{}
	s.start, s.mark, s.cur, s.open = at, at, p, true
}

// To closes the current phase at instant at and opens phase p. Calling
// To on an unbegun span is a no-op (the operation opted out).
func (s *OpSpan) To(at vclock.Time, p Phase) {
	if s == nil || !s.open {
		return
	}
	if d := at.Sub(s.mark); d > 0 {
		s.phases[s.cur] += d
	}
	s.mark, s.cur = at, p
}

// Finish closes the open phase at instant at and returns the span's
// end-to-end duration (zero if never begun).
func (s *OpSpan) Finish(at vclock.Time) vclock.Duration {
	if s == nil || !s.open {
		return 0
	}
	if d := at.Sub(s.mark); d > 0 {
		s.phases[s.cur] += d
	}
	s.mark = at
	s.open = false
	return at.Sub(s.start)
}

// Total reports the finished span's end-to-end duration.
func (s *OpSpan) Total() vclock.Duration {
	if s == nil {
		return 0
	}
	return s.mark.Sub(s.start)
}

// Phase reports the accumulated duration of one phase.
func (s *OpSpan) Phase(p Phase) vclock.Duration {
	if s == nil {
		return 0
	}
	return s.phases[p]
}

// PhaseSum reports the sum of every phase duration. For a finished
// span it equals Total by construction; the attribution test asserts
// the two agree within tolerance to catch instrumentation gaps.
func (s *OpSpan) PhaseSum() vclock.Duration {
	if s == nil {
		return 0
	}
	var sum vclock.Duration
	for _, d := range s.phases {
		sum += d
	}
	return sum
}

// Telemetry is the latency-attribution plane: per-phase timers, op-
// class totals, the cause-tagged stall ledger and the windowed time-
// series, all resolved from one registry. A nil *Telemetry disables
// attribution at one pointer check per operation.
type Telemetry struct {
	phases     [NumPhases]*Timer
	writeTotal *Timer
	readTotal  *Timer

	// Stalls is the cause-tagged stall ledger.
	Stalls *StallLedger
	// Series is the windowed latency/stall time-series.
	Series *TimeSeries
}

// NewTelemetry builds the attribution plane over registry r: phase
// timers under "engine.op.<phase>", totals under
// "engine.op.{write,read}.total", the stall ledger under
// "engine.stall.<cause>.*", and a time-series of the given window
// interval and count (see NewTimeSeries for defaults).
func NewTelemetry(r *Registry, interval vclock.Duration, windows int) *Telemetry {
	t := &Telemetry{
		writeTotal: r.Timer("engine.op.write.total"),
		readTotal:  r.Timer("engine.op.read.total"),
		Stalls:     NewStallLedger(r),
		Series:     NewTimeSeries(interval, windows),
	}
	for p := 0; p < NumPhases; p++ {
		t.phases[p] = r.Timer("engine.op." + Phase(p).String())
	}
	t.Stalls.series = t.Series
	return t
}

// ObserveWrite folds a finished write span into the per-phase timers,
// the write-total timer and the time-series.
func (t *Telemetry) ObserveWrite(s *OpSpan) {
	if t == nil {
		return
	}
	t.observe(s, t.writeTotal)
}

// ObserveRead folds a finished read span into the per-phase timers,
// the read-total timer and the time-series.
func (t *Telemetry) ObserveRead(s *OpSpan) {
	if t == nil {
		return
	}
	t.observe(s, t.readTotal)
}

func (t *Telemetry) observe(s *OpSpan, total *Timer) {
	if t == nil || s == nil {
		return
	}
	for p, d := range s.phases {
		if d > 0 {
			t.phases[p].Observe(d)
		}
	}
	total.Observe(s.Total())
	t.Series.Record(s.mark, s.Total())
}

// PhaseTimer exposes the timer backing one phase (for rendering).
func (t *Telemetry) PhaseTimer(p Phase) *Timer {
	if t == nil {
		return nil
	}
	return t.phases[p]
}

// WriteTotal and ReadTotal expose the op-class total timers.
func (t *Telemetry) WriteTotal() *Timer {
	if t == nil {
		return nil
	}
	return t.writeTotal
}

// ReadTotal exposes the read-op total timer.
func (t *Telemetry) ReadTotal() *Timer {
	if t == nil {
		return nil
	}
	return t.readTotal
}
