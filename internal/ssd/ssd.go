// Package ssd models a solid-state drive as a single-queue server in
// virtual time. The model captures the two properties the NobLSM paper
// depends on:
//
//   - bandwidth and per-request latency: a request of n bytes arriving
//     at virtual time t starts service at max(t, device-free-at) and
//     completes after latency + n/bandwidth;
//   - barrier semantics of flush (FLUSH/FUA as issued by fsync): a
//     flush waits for every queued request to drain and then charges
//     the flush latency, so a sync stalls all subsequent I/O.
//
// The default parameters are calibrated so that the raw write study of
// the paper (Figure 2a) reproduces: buffered (page-cache) writes are
// an order of magnitude faster than direct writes, and per-file fsync
// adds roughly a millisecond of barrier cost on top of direct I/O.
package ssd

import (
	"sync"

	"noblsm/internal/obs"
	"noblsm/internal/vclock"
)

// Config holds the device service parameters.
type Config struct {
	// ReadLatency is the fixed setup cost of a read request.
	ReadLatency vclock.Duration
	// WriteLatency is the fixed setup cost of a write request.
	WriteLatency vclock.Duration
	// FlushLatency is the cost of a FLUSH barrier after the queue
	// has drained.
	FlushLatency vclock.Duration
	// ReadBandwidth and WriteBandwidth are sustained transfer rates
	// in bytes per (virtual) second.
	ReadBandwidth  int64
	WriteBandwidth int64
}

// PM883 returns parameters approximating the Samsung PM883 960 GB SATA
// SSD used in the paper's evaluation (sequential ~520 MB/s write,
// ~550 MB/s read, sub-millisecond flush).
func PM883() Config {
	return Config{
		ReadLatency:    80 * vclock.Microsecond,
		WriteLatency:   60 * vclock.Microsecond,
		FlushLatency:   900 * vclock.Microsecond,
		ReadBandwidth:  550 << 20,
		WriteBandwidth: 520 << 20,
	}
}

// Stats are cumulative device counters. They are raw device-side
// totals; sync-attributed accounting (the paper's Table 1) lives in
// the ext4 layer, which knows why a write reached the device.
type Stats struct {
	Reads        int64
	Writes       int64
	Flushes      int64
	BytesRead    int64
	BytesWritten int64
	// BusyTime is the total virtual time the device spent servicing
	// requests, for utilization reporting.
	BusyTime vclock.Duration
}

// Device is a shared SSD. All methods are safe for concurrent use;
// requests serialize in FIFO order of their (virtual) submission under
// the internal lock, which is the queue discipline of the model.
type Device struct {
	mu     sync.Mutex
	cfg    Config
	freeAt vclock.Time
	m      devMetrics
}

// devMetrics are the device counters, resolved once from a registry
// under the "ssd." prefix; Stats() is a view over them.
type devMetrics struct {
	reads, writes, flushes  *obs.Counter
	bytesRead, bytesWritten *obs.Counter
	busyNs                  *obs.Counter
}

func newDevMetrics(r *obs.Registry) devMetrics {
	return devMetrics{
		reads:        r.Counter("ssd.reads"),
		writes:       r.Counter("ssd.writes"),
		flushes:      r.Counter("ssd.flushes"),
		bytesRead:    r.Counter("ssd.bytes_read"),
		bytesWritten: r.Counter("ssd.bytes_written"),
		busyNs:       r.Counter("ssd.busy_ns"),
	}
}

// New returns a device with the given parameters, publishing its
// counters into a private registry.
func New(cfg Config) *Device { return NewObserved(cfg, nil) }

// NewObserved returns a device that registers its counters into r
// (nil: a private registry — Stats() works either way).
func NewObserved(cfg Config, r *obs.Registry) *Device {
	if cfg.ReadBandwidth <= 0 || cfg.WriteBandwidth <= 0 {
		panic("ssd: bandwidth must be positive")
	}
	if r == nil {
		r = obs.NewRegistry()
	}
	return &Device{cfg: cfg, m: newDevMetrics(r)}
}

// Config returns the device parameters.
func (d *Device) Config() Config { return d.cfg }

func transfer(n, bw int64) vclock.Duration {
	if n <= 0 {
		return 0
	}
	return vclock.Duration(n * int64(vclock.Second) / bw)
}

// Write submits a write of n bytes at virtual time at and returns the
// completion time. The caller decides whether to wait for completion
// (direct or sync writes) or to ignore it (background writeback).
func (d *Device) Write(at vclock.Time, n int64) vclock.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	start := vclock.Max(at, d.freeAt)
	dur := d.cfg.WriteLatency + transfer(n, d.cfg.WriteBandwidth)
	d.freeAt = start.Add(dur)
	d.m.writes.Inc()
	d.m.bytesWritten.Add(n)
	d.m.busyNs.AddDuration(dur)
	return d.freeAt
}

// Read submits a read of n bytes at virtual time at and returns the
// completion time.
func (d *Device) Read(at vclock.Time, n int64) vclock.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	start := vclock.Max(at, d.freeAt)
	dur := d.cfg.ReadLatency + transfer(n, d.cfg.ReadBandwidth)
	d.freeAt = start.Add(dur)
	d.m.reads.Inc()
	d.m.bytesRead.Add(n)
	d.m.busyNs.AddDuration(dur)
	return d.freeAt
}

// Flush issues a barrier at virtual time at: it waits for all earlier
// requests to drain, then charges the flush latency. The returned time
// is when the barrier completes; every request submitted afterwards
// starts no earlier than that.
func (d *Device) Flush(at vclock.Time) vclock.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	start := vclock.Max(at, d.freeAt)
	d.freeAt = start.Add(d.cfg.FlushLatency)
	d.m.flushes.Inc()
	d.m.busyNs.AddDuration(d.cfg.FlushLatency)
	return d.freeAt
}

// FreeAt reports when the device queue drains given no further
// submissions.
func (d *Device) FreeAt() vclock.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.freeAt
}

// Stats returns a snapshot of the cumulative counters — a view over
// the registry metrics.
func (d *Device) Stats() Stats {
	return Stats{
		Reads:        d.m.reads.Value(),
		Writes:       d.m.writes.Value(),
		Flushes:      d.m.flushes.Value(),
		BytesRead:    d.m.bytesRead.Value(),
		BytesWritten: d.m.bytesWritten.Value(),
		BusyTime:     d.m.busyNs.Duration(),
	}
}

// ResetStats zeroes the counters (the queue position is kept).
func (d *Device) ResetStats() {
	for _, c := range []*obs.Counter{
		d.m.reads, d.m.writes, d.m.flushes,
		d.m.bytesRead, d.m.bytesWritten, d.m.busyNs,
	} {
		c.Store(0)
	}
}
