package ssd

import (
	"testing"
	"testing/quick"

	"noblsm/internal/vclock"
)

func testConfig() Config {
	return Config{
		ReadLatency:    10 * vclock.Microsecond,
		WriteLatency:   20 * vclock.Microsecond,
		FlushLatency:   1 * vclock.Millisecond,
		ReadBandwidth:  100 << 20,
		WriteBandwidth: 100 << 20,
	}
}

func TestWriteServiceTime(t *testing.T) {
	d := New(testConfig())
	// 100 MiB/s => 1 MiB takes ~10.48 ms plus 20 µs latency.
	done := d.Write(0, 1<<20)
	want := vclock.Time(20*vclock.Microsecond) + vclock.Time((1<<20)*int64(vclock.Second)/(100<<20))
	if done != want {
		t.Fatalf("write completes at %v, want %v", done, want)
	}
}

func TestQueueingDelaysLaterRequests(t *testing.T) {
	d := New(testConfig())
	first := d.Write(0, 10<<20)
	// A request submitted while the device is busy starts when the
	// device frees up, not at its submission time.
	second := d.Write(vclock.Time(1*vclock.Microsecond), 0)
	if second <= first {
		t.Fatalf("queued request completed at %v, not after first at %v", second, first)
	}
	if got, want := second-first, vclock.Time(20*vclock.Microsecond); got != want {
		t.Fatalf("queued zero-byte write took %v, want latency %v", vclock.Duration(got), vclock.Duration(want))
	}
}

func TestIdleDeviceStartsAtSubmission(t *testing.T) {
	d := New(testConfig())
	at := vclock.Time(5 * vclock.Second)
	done := d.Read(at, 0)
	if got, want := done, at.Add(10*vclock.Microsecond); got != want {
		t.Fatalf("idle read completes at %v, want %v", got, want)
	}
}

func TestFlushBarrierDrainsQueue(t *testing.T) {
	d := New(testConfig())
	writeDone := d.Write(0, 50<<20)
	flushDone := d.Flush(0)
	if flushDone != writeDone.Add(1*vclock.Millisecond) {
		t.Fatalf("flush completes at %v, want write completion %v + 1ms", flushDone, writeDone)
	}
	// A write submitted at time zero after the flush cannot start
	// before the barrier completes.
	after := d.Write(0, 0)
	if after < flushDone {
		t.Fatalf("post-barrier write completed at %v, before barrier %v", after, flushDone)
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := New(testConfig())
	d.Write(0, 100)
	d.Write(0, 200)
	d.Read(0, 300)
	d.Flush(0)
	s := d.Stats()
	if s.Writes != 2 || s.BytesWritten != 300 {
		t.Errorf("writes=%d bytes=%d, want 2/300", s.Writes, s.BytesWritten)
	}
	if s.Reads != 1 || s.BytesRead != 300 {
		t.Errorf("reads=%d bytes=%d, want 1/300", s.Reads, s.BytesRead)
	}
	if s.Flushes != 1 {
		t.Errorf("flushes=%d, want 1", s.Flushes)
	}
	if s.BusyTime <= 0 {
		t.Errorf("busy time %v, want positive", s.BusyTime)
	}
	d.ResetStats()
	if s := d.Stats(); s.Writes != 0 || s.BytesWritten != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
}

func TestPM883Shape(t *testing.T) {
	// The calibration must preserve the paper's Figure 2a ordering:
	// buffered writes are much cheaper than direct writes, which are
	// cheaper than synced writes. Here we check the device-side
	// component: bandwidth-dominated transfers plus barrier costs.
	cfg := PM883()
	d := New(cfg)
	const fileSize = 2 << 20
	const files = 64
	var direct vclock.Time
	for i := 0; i < files; i++ {
		direct = d.Write(direct, fileSize)
	}
	d2 := New(cfg)
	var sync vclock.Time
	for i := 0; i < files; i++ {
		sync = d2.Write(sync, fileSize)
		sync = d2.Flush(sync)
	}
	if sync <= direct {
		t.Fatalf("synced writes (%v) not slower than direct (%v)", sync, direct)
	}
	extra := float64(sync-direct) / float64(direct)
	if extra < 0.1 || extra > 1.0 {
		t.Fatalf("sync overhead %.2f outside plausible [0.1,1.0] band", extra)
	}
}

func TestCompletionMonotonic(t *testing.T) {
	// Property: completion times never regress regardless of request
	// mix and submission times.
	f := func(ops []uint8, sizes []uint16) bool {
		d := New(testConfig())
		var last vclock.Time
		for i, op := range ops {
			var n int64
			if i < len(sizes) {
				n = int64(sizes[i])
			}
			var done vclock.Time
			switch op % 3 {
			case 0:
				done = d.Write(vclock.Time(int64(op))*vclock.Time(vclock.Microsecond), n)
			case 1:
				done = d.Read(0, n)
			default:
				done = d.Flush(0)
			}
			if done < last {
				return false
			}
			last = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bandwidth config did not panic")
		}
	}()
	New(Config{})
}
