package governor

import (
	"testing"

	"noblsm/internal/obs"
	"noblsm/internal/vclock"
)

func newTest(drain *int64, cfg Config) (*Governor, *obs.Registry) {
	r := obs.NewRegistry()
	return New(r, func() int64 { return *drain }, cfg), r
}

// Below the ramp the governor admits everything instantly, whatever
// the bucket saw before.
func TestUnlimitedBelowRamp(t *testing.T) {
	var drained int64
	g, _ := newTest(&drained, Config{RampStart: 4, RampStop: 12})
	g.SetDebt(0, 0)
	now := vclock.Time(0)
	for i := 0; i < 1000; i++ {
		now = now.Add(vclock.Microsecond)
		d, ok := g.Admit(now, 1<<20, 0)
		if !ok || d != 0 {
			t.Fatalf("write %d: got delay %v ok=%v, want 0 true", i, d, ok)
		}
	}
	if got := g.Snapshot().PacedWrites; got != 0 {
		t.Fatalf("paced %d writes below the ramp", got)
	}
}

// Inside the ramp, sustained writes are paced to roughly the admitted
// rate: total virtual delay ≈ bytes/rate, and no single delay exceeds
// MaxDelay.
func TestPacingConvergesToRate(t *testing.T) {
	var drained int64
	cfg := Config{
		BurstBytes:         64 << 10,
		MinRateBytesPerSec: 1 << 20, // drain estimate will dominate
		MaxDelay:           2 * vclock.Millisecond,
		EstimateInterval:   10 * vclock.Millisecond,
		RampStart:          4,
		RampStop:           12,
	}
	g, _ := newTest(&drained, cfg)
	// Mid-ramp: factor = MaxFactor - 0.5*(MaxFactor-MinFactor) = 0.75.
	g.SetDebt(8, 1<<20)

	// Simulate a drain of 10 MiB/s by growing the counter as virtual
	// time passes; the writer issues 4 KiB writes back to back,
	// advancing only by the delays the governor returns.
	const drainRate = 10 << 20
	tl := vclock.NewTimeline(0)
	var totalDelay vclock.Duration
	const writeBytes = 4 << 10
	const writes = 4000
	for i := 0; i < writes; i++ {
		drained = int64(float64(tl.Now()) / 1e9 * drainRate)
		d, ok := g.Admit(tl.Now(), writeBytes, 0)
		if !ok {
			t.Fatalf("write %d rejected with no deadline", i)
		}
		if d > cfg.MaxDelay {
			t.Fatalf("write %d: delay %v exceeds MaxDelay %v", i, d, cfg.MaxDelay)
		}
		tl.Advance(d + vclock.Microsecond) // 1µs of CPU per write
		totalDelay += d
	}
	if totalDelay == 0 {
		t.Fatal("sustained overload produced no pacing at all")
	}
	// 16 MiB written at an admitted rate of ~7.5 MiB/s ≈ 2.1s. Allow
	// a wide band: the point is "seconds, smoothly", not exactness.
	sec := totalDelay.Seconds()
	if sec < 0.5 || sec > 10 {
		t.Fatalf("total pacing %.2fs outside the plausible band for 16MiB at ~7.5MiB/s", sec)
	}
	s := g.Snapshot()
	if s.PacedWrites == 0 || s.AdmittedBytes != writeBytes*writes {
		t.Fatalf("snapshot %+v: want paced>0 and admitted=%d", s, writeBytes*writes)
	}
}

// A deadline rejects only when the implied queueing delay exceeds it,
// and a rejected write charges nothing.
func TestDeadlineRejects(t *testing.T) {
	var drained int64
	cfg := Config{
		BurstBytes:         8 << 10,
		MinRateBytesPerSec: 1 << 20,
		MaxDelay:           vclock.Millisecond,
		RampStart:          4,
		RampStop:           12,
	}
	g, _ := newTest(&drained, cfg)
	g.SetDebt(12, 1<<20) // at the stop: MinFactor, rate = floor = 1 MiB/s

	now := vclock.Time(vclock.Second)
	// Drain the burst, then one more write: implied delay for the
	// deficit (56 KiB at 1 MiB/s ≈ 55 ms) exceeds a 5 ms deadline.
	if d, ok := g.Admit(now, 8<<10, 0); !ok || d != 0 {
		t.Fatalf("burst write: delay %v ok=%v", d, ok)
	}
	before := g.Snapshot()
	d, ok := g.Admit(now, 56<<10, 5*vclock.Millisecond)
	if ok {
		t.Fatalf("saturated write admitted with delay %v", d)
	}
	if d != 5*vclock.Millisecond {
		t.Fatalf("rejected write's bounded wait = %v, want the 5ms deadline", d)
	}
	after := g.Snapshot()
	if after.AdmittedBytes != before.AdmittedBytes {
		t.Fatalf("rejected write charged bytes: %d -> %d", before.AdmittedBytes, after.AdmittedBytes)
	}
	if after.RejectedWrites != before.RejectedWrites+1 {
		t.Fatalf("rejected counter %d -> %d", before.RejectedWrites, after.RejectedWrites)
	}
	// Without a deadline the same write is admitted, capped at
	// MaxDelay (block-forever semantics are the engine's, not ours).
	if d, ok := g.Admit(now, 56<<10, 0); !ok || d != cfg.MaxDelay {
		t.Fatalf("no-deadline write: delay %v ok=%v, want MaxDelay %v", d, ok, cfg.MaxDelay)
	}
}

// The drain estimator tracks the counter across estimate intervals.
func TestDrainEstimate(t *testing.T) {
	var drained int64
	cfg := Config{EstimateInterval: 10 * vclock.Millisecond, RampStart: 4, RampStop: 12}
	g, _ := newTest(&drained, cfg)
	g.SetDebt(8, 0)
	now := vclock.Time(0)
	for i := 0; i < 200; i++ {
		now = now.Add(vclock.Millisecond)
		drained += 20 << 10 // 20 KiB/ms = ~20 MiB/s
		g.Admit(now, 1024, 0)
	}
	got := g.Snapshot().DrainBytesPerSec
	want := int64(20 << 20)
	if got < want/2 || got > want*2 {
		t.Fatalf("drain estimate %d, want within 2x of %d", got, want)
	}
}

// A nil governor is inert.
func TestNilGovernor(t *testing.T) {
	var g *Governor
	if d, ok := g.Admit(0, 1<<30, vclock.Millisecond); d != 0 || !ok {
		t.Fatalf("nil governor: %v %v", d, ok)
	}
	g.SetDebt(100, 1<<30)
	g.NotePreempt()
	if s := g.Snapshot(); s != (Stats{}) {
		t.Fatalf("nil snapshot %+v", s)
	}
	if g.String() == "" {
		t.Fatal("nil String empty")
	}
}
