// Package governor implements closed-loop write admission control: a
// token-bucket limiter whose refill rate is continuously re-estimated
// from the measured background drain rate (bytes retired by flushes
// and compactions per virtual second), scaled down as L0/memtable debt
// grows. Writers charge their batch bytes at enqueue time and pay the
// bucket's deficit as a small pacing delay, so compaction pressure
// turns into many bounded per-write delays instead of the LevelDB
// cliff (a fixed slowdown penalty at the L0 soft limit, then a
// hard stop at the L0 stop trigger).
//
// The control loop is the classic delayed-write-rate design Luo &
// Carey catalogue for RocksDB ("On Performance Stability in LSM-based
// Storage Systems", PAPERS.md): while debt sits below the ramp there
// is no limiting at all; inside the ramp the admitted rate is the
// drain rate times a factor that falls linearly from MaxFactor
// (slightly above drain, letting debt shrink slowly) to MinFactor
// (well below drain, forcing debt to fall). Because the admitted rate
// brackets the drain rate, L0 converges to the ramp region instead of
// oscillating between "no throttle" and "stopped".
//
// Everything is virtual time: delays are returned to the caller to
// Advance on its own timeline, never slept, so the governor composes
// with the deterministic harness. All state is behind one small mutex
// — admission is one lock + a handful of float ops per write, off the
// group-commit critical section (no db.mu).
package governor

import (
	"fmt"
	"sync"

	"noblsm/internal/obs"
	"noblsm/internal/vclock"
)

// Config tunes the control loop. The zero value of any field is
// replaced by the listed default in New.
type Config struct {
	// BurstBytes is the token-bucket capacity: how many bytes may be
	// admitted instantly from an idle bucket before pacing starts
	// (default 1 MiB — one group-commit cap).
	BurstBytes int64
	// MinRateBytesPerSec floors the admitted rate so a cold drain
	// estimate (startup, an idle store) can never wedge writers
	// (default 4 MiB/s).
	MinRateBytesPerSec int64
	// MaxRateBytesPerSec optionally caps the admitted rate while
	// pacing is active, even when the drain estimate is higher (0 =
	// no cap). Useful as a static rate limiter and to pin a
	// deterministic saturation point in tests.
	MaxRateBytesPerSec int64
	// MaxDelay caps a single pacing delay. This is the governor's
	// worst-case contribution to any one write's latency — the
	// quantity the stability gate measures (default 2 ms).
	MaxDelay vclock.Duration
	// EstimateInterval is the drain-rate re-estimation cadence
	// (default 50 ms of virtual time).
	EstimateInterval vclock.Duration
	// RampStart and RampStop are the L0 file counts between which
	// pacing ramps from MaxFactor to MinFactor. Below RampStart
	// writes are unlimited; at and above RampStop the admitted rate
	// stays pinned at MinFactor times the drain rate. The engine
	// wires these to the compaction trigger and the stop trigger.
	RampStart, RampStop int
	// FlushLagRef is the second debt axis: how far the flush horizon
	// (the virtual completion instant of the in-flight/last flush,
	// published via SetFlushHorizon) may run ahead of the writers
	// before the admitted rate is pinned at MinFactor. Lag between 0
	// and FlushLagRef ramps the factor exactly like the L0 axis; the
	// tighter of the two axes wins. This is what converts the
	// "memtable filled before the previous flush landed" rotation
	// cliff — the dominant stall of the ungoverned engine — into
	// bounded pacing (default 4×MaxDelay).
	FlushLagRef vclock.Duration
	// MaxFactor and MinFactor bound the admitted-rate multiplier over
	// the drain rate across the ramp (defaults 1.25 and 0.25).
	MaxFactor, MinFactor float64
	// FillBytes is how many foreground bytes fit before the next
	// memtable rotation (the engine wires Options.WriteBufferSize).
	// With a positive flush lag the admitted rate is additionally
	// capped at FillBytes/(4×lag), so writers arrive at the next
	// rotation after the flush horizon has passed — regardless of
	// how stale the drain estimate is. The margin is 4× (not 1×)
	// because the cap re-tracks the shrinking lag as writers pay it
	// down: with margin k the residual at fill end is lag·e^−k, so
	// k=4 retires ~98% of the lag within one fill. 0 disables the
	// cap.
	FillBytes int64
}

func (c Config) withDefaults() Config {
	if c.BurstBytes <= 0 {
		c.BurstBytes = 1 << 20
	}
	if c.MinRateBytesPerSec <= 0 {
		c.MinRateBytesPerSec = 4 << 20
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * vclock.Millisecond
	}
	if c.EstimateInterval <= 0 {
		c.EstimateInterval = 50 * vclock.Millisecond
	}
	if c.RampStart <= 0 {
		c.RampStart = 4
	}
	if c.RampStop <= c.RampStart {
		c.RampStop = c.RampStart + 8
	}
	if c.MaxFactor <= 0 {
		c.MaxFactor = 1.25
	}
	if c.MinFactor <= 0 || c.MinFactor > c.MaxFactor {
		c.MinFactor = 0.25
	}
	if c.FlushLagRef <= 0 {
		c.FlushLagRef = 4 * c.MaxDelay
	}
	return c
}

// Governor is one store's admission controller. Safe for concurrent
// use; all methods are nil-receiver no-ops so an ungoverned engine
// pays a single pointer check.
type Governor struct {
	cfg   Config
	drain func() int64 // cumulative bytes retired by flush+compaction

	mu sync.Mutex
	// tokens is the bucket level in bytes; negative is the deficit
	// writers are paying off, clamped at -BurstBytes.
	tokens float64
	lastAt vclock.Time
	// drainRate is the EWMA drain estimate (bytes per virtual
	// second); rate is the currently admitted rate (0 = unlimited).
	drainRate   float64
	rate        float64
	lastEstAt   vclock.Time
	lastDrained int64
	estPrimed   bool

	// Debt snapshot, published by the engine under db.mu whenever the
	// version or the memtable rotation state changes. flushHorizon is
	// the virtual instant the most recent flush completes; writers
	// behind it are fine, writers ahead of it are outrunning the
	// background and get paced.
	l0Files      int
	debtBytes    int64
	flushHorizon vclock.Time

	// Registry surfaces ("engine.governor.*").
	gRate      *obs.Gauge
	gDrain     *obs.Gauge
	gTokens    *obs.Gauge
	gDebtBytes *obs.Gauge
	gL0        *obs.Gauge
	gLag       *obs.Gauge
	admitted   *obs.Counter
	paced      *obs.Counter
	pacingNs   *obs.Counter
	rejected   *obs.Counter
	preempts   *obs.Counter
}

// New builds a governor over drain, a monotone counter of bytes the
// background has retired (flush + compaction output bytes). Metrics
// register on r under "engine.governor.*"; r must be non-nil.
func New(r *obs.Registry, drain func() int64, cfg Config) *Governor {
	g := &Governor{
		cfg:   cfg.withDefaults(),
		drain: drain,

		gRate:      r.Gauge("engine.governor.rate_bytes_per_sec"),
		gDrain:     r.Gauge("engine.governor.drain_bytes_per_sec"),
		gTokens:    r.Gauge("engine.governor.tokens_bytes"),
		gDebtBytes: r.Gauge("engine.governor.debt_bytes"),
		gL0:        r.Gauge("engine.governor.l0_files"),
		gLag:       r.Gauge("engine.governor.flush_lag_ns"),
		admitted:   r.Counter("engine.governor.admitted_bytes"),
		paced:      r.Counter("engine.governor.paced_writes"),
		pacingNs:   r.Counter("engine.governor.pacing_ns"),
		rejected:   r.Counter("engine.governor.rejected_writes"),
		preempts:   r.Counter("engine.governor.l0_preempts"),
	}
	g.tokens = float64(g.cfg.BurstBytes)
	r.Gauge("engine.governor.enabled").Set(1)
	return g
}

// SetDebt publishes the current backlog: the leveled L0 file count
// and the byte debt behind it (L0 bytes plus any parked immutable
// memtable). The engine calls it whenever either changes.
func (g *Governor) SetDebt(l0Files int, debtBytes int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.l0Files = l0Files
	g.debtBytes = debtBytes
	g.mu.Unlock()
	g.gL0.Set(int64(l0Files))
	g.gDebtBytes.Set(debtBytes)
}

// SetFlushHorizon publishes the virtual completion instant of the
// most recent flush (the engine's minorDoneAt). The governor paces
// writers that run ahead of it — the lag that would otherwise surface
// as one large memtable-rotation stall.
func (g *Governor) SetFlushHorizon(t vclock.Time) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if t > g.flushHorizon {
		g.flushHorizon = t
	}
	g.mu.Unlock()
}

// NoteShed counts one write shed by the deadline backstop outside the
// bucket (the engine's bounded rotation/backlog waits), so
// rejected_writes covers every fail-fast path.
func (g *Governor) NoteShed() {
	if g == nil {
		return
	}
	g.rejected.Inc()
}

// NotePreempt counts one deeper-level compaction deferred in favour of
// an L0→L1 pick while L0 was over the slowdown trigger.
func (g *Governor) NotePreempt() {
	if g == nil {
		return
	}
	g.preempts.Inc()
}

// Admit charges bytes against the bucket at virtual instant now and
// returns the pacing delay the caller must Advance before proceeding
// (0 when the bucket covers the write).
//
// deadline > 0 bounds the wait: when the bucket's implied queueing
// delay (the uncapped deficit drain time) exceeds it, nothing is
// charged, ok is false, and the returned delay is the deadline itself
// — the caller advances by it, then fails the write so load is shed
// instead of queued unboundedly. deadline <= 0 never rejects.
func (g *Governor) Admit(now vclock.Time, bytes int64, deadline vclock.Duration) (delay vclock.Duration, ok bool) {
	if g == nil || bytes <= 0 {
		return 0, true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	// Writers carry independent timelines; the bucket's clock is the
	// max instant it has seen, so a lagging writer never refills with
	// time an advanced writer already spent.
	if now > g.lastAt {
		g.tokens += g.rateLocked() * now.Sub(g.lastAt).Seconds()
		if g.tokens > float64(g.cfg.BurstBytes) {
			g.tokens = float64(g.cfg.BurstBytes)
		}
		g.lastAt = now
	}
	g.estimateLocked(g.lastAt)
	if lag := g.flushHorizon.Sub(g.lastAt); lag > 0 {
		g.gLag.Set(int64(lag))
	} else {
		g.gLag.Set(0)
	}

	factor := g.factorLocked(g.lastAt)
	if factor < 0 {
		// Below the ramp: unlimited. The bucket stays full so the
		// first writes inside the ramp start from a whole burst.
		g.rate = 0
		g.tokens = float64(g.cfg.BurstBytes)
		g.publishLocked()
		g.admitted.Add(bytes)
		return 0, true
	}
	rate := g.drainRate * factor
	if lag := g.flushHorizon.Sub(g.lastAt); lag > 0 && g.cfg.FillBytes > 0 {
		// Pace the fill to outlast the lag (see Config.FillBytes).
		if cap := float64(g.cfg.FillBytes) / (4 * lag.Seconds()); rate > cap {
			rate = cap
		}
	}
	if max := float64(g.cfg.MaxRateBytesPerSec); max > 0 && rate > max {
		rate = max
	}
	// The floor wins last: no estimate or cap may wedge writers.
	if min := float64(g.cfg.MinRateBytesPerSec); rate < min {
		rate = min
	}
	g.rate = rate

	tokensAfter := g.tokens - float64(bytes)
	if tokensAfter >= 0 {
		g.tokens = tokensAfter
		g.publishLocked()
		g.admitted.Add(bytes)
		return 0, true
	}
	implied := vclock.Duration(-tokensAfter / rate * 1e9)
	if deadline > 0 && implied > deadline {
		// Saturated past the caller's patience: reject without
		// charging, so the shed write's bytes don't tax the writers
		// that stayed.
		g.rejected.Inc()
		g.publishLocked()
		return deadline, false
	}
	g.tokens = tokensAfter
	if g.tokens < -float64(g.cfg.BurstBytes) {
		// Clamp the deficit so a capped delay under sustained
		// saturation doesn't bank unbounded debt against the moment
		// pressure clears.
		g.tokens = -float64(g.cfg.BurstBytes)
	}
	delay = implied
	if delay > g.cfg.MaxDelay {
		delay = g.cfg.MaxDelay
	}
	g.paced.Inc()
	g.pacingNs.AddDuration(delay)
	g.admitted.Add(bytes)
	g.publishLocked()
	return delay, true
}

// rateLocked is the refill rate for elapsed-time accounting: the
// admitted rate while limiting, or the burst-refill default when
// unlimited (so an idle bucket recovers instantly anyway via the
// factor<0 branch).
func (g *Governor) rateLocked() float64 {
	if g.rate > 0 {
		return g.rate
	}
	return float64(g.cfg.MinRateBytesPerSec)
}

// factorLocked maps the published debt onto the admitted-rate
// multiplier: <0 for "unlimited", else [MinFactor, MaxFactor]. Two
// debt axes feed it — the leveled L0 file count (the classic RocksDB
// signal, dominant with async compaction) and the flush-horizon lag
// (dominant in sync mode, where inline compaction keeps L0 low and
// all pressure surfaces as the memtable-rotation wait) — and the
// tighter factor wins.
func (g *Governor) factorLocked(now vclock.Time) float64 {
	f := -1.0
	if g.l0Files >= g.cfg.RampStart {
		f = g.rampLocked(float64(g.l0Files-g.cfg.RampStart) / float64(g.cfg.RampStop-g.cfg.RampStart))
	}
	if lag := g.flushHorizon.Sub(now); lag > 0 {
		frac := float64(lag) / float64(g.cfg.FlushLagRef)
		lf := g.rampLocked(frac)
		if frac > 1 {
			// Past the reference lag the factor keeps falling, from
			// MinFactor at 1× to zero at 2× — the admitted rate
			// degrades all the way to the MinRate floor, because a
			// background this far behind means the drain estimate
			// itself is stale-high.
			lf = g.cfg.MinFactor * (2 - frac)
			if lf < 0 {
				lf = 0
			}
		}
		if f < 0 || lf < f {
			f = lf
		}
	}
	return f
}

// rampLocked interpolates the factor over one debt axis, frac in
// [0, 1] clamped.
func (g *Governor) rampLocked(frac float64) float64 {
	if frac > 1 {
		frac = 1
	}
	return g.cfg.MaxFactor - frac*(g.cfg.MaxFactor-g.cfg.MinFactor)
}

// estimateLocked re-samples the drain counter once per
// EstimateInterval of virtual time and folds the instantaneous rate
// into the EWMA.
func (g *Governor) estimateLocked(now vclock.Time) {
	if !g.estPrimed {
		g.estPrimed = true
		g.lastEstAt = now
		g.lastDrained = g.drain()
		return
	}
	dt := now.Sub(g.lastEstAt)
	if dt < g.cfg.EstimateInterval {
		return
	}
	b := g.drain()
	inst := float64(b-g.lastDrained) / dt.Seconds()
	if g.drainRate == 0 {
		g.drainRate = inst
	} else {
		g.drainRate = 0.5*g.drainRate + 0.5*inst
	}
	g.lastEstAt = now
	g.lastDrained = b
}

func (g *Governor) publishLocked() {
	g.gRate.Set(int64(g.rate))
	g.gDrain.Set(int64(g.drainRate))
	g.gTokens.Set(int64(g.tokens))
}

// Stats is a point-in-time snapshot for the doctor report and the
// benchmark JSON documents.
type Stats struct {
	RateBytesPerSec  int64 `json:"rate_bytes_per_sec"`
	DrainBytesPerSec int64 `json:"drain_bytes_per_sec"`
	TokensBytes      int64 `json:"tokens_bytes"`
	DebtBytes        int64 `json:"debt_bytes"`
	L0Files          int64 `json:"l0_files"`
	FlushLagNs       int64 `json:"flush_lag_ns"`
	AdmittedBytes    int64 `json:"admitted_bytes"`
	PacedWrites      int64 `json:"paced_writes"`
	PacingNs         int64 `json:"pacing_ns"`
	RejectedWrites   int64 `json:"rejected_writes"`
	L0Preempts       int64 `json:"l0_preempts"`
}

// Snapshot reads the current stats (zero value from a nil governor).
func (g *Governor) Snapshot() Stats {
	if g == nil {
		return Stats{}
	}
	return Stats{
		RateBytesPerSec:  g.gRate.Value(),
		DrainBytesPerSec: g.gDrain.Value(),
		TokensBytes:      g.gTokens.Value(),
		DebtBytes:        g.gDebtBytes.Value(),
		L0Files:          g.gL0.Value(),
		FlushLagNs:       g.gLag.Value(),
		AdmittedBytes:    g.admitted.Value(),
		PacedWrites:      g.paced.Value(),
		PacingNs:         g.pacingNs.Value(),
		RejectedWrites:   g.rejected.Value(),
		L0Preempts:       g.preempts.Value(),
	}
}

// String renders the snapshot as the doctor report's governor section
// body.
func (g *Governor) String() string {
	if g == nil {
		return "(admission governor off)\n"
	}
	s := g.Snapshot()
	rate := "unlimited"
	if s.RateBytesPerSec > 0 {
		rate = fmt.Sprintf("%d B/s", s.RateBytesPerSec)
	}
	return fmt.Sprintf(
		"admitted rate: %s (drain estimate %d B/s)\n"+
			"debt: %d L0 files, %d bytes, flush lag %v; bucket %d bytes\n"+
			"paced writes: %d (total %v); rejected (fail-fast): %d; L0 preempts: %d\n",
		rate, s.DrainBytesPerSec,
		s.L0Files, s.DebtBytes, vclock.Duration(s.FlushLagNs), s.TokensBytes,
		s.PacedWrites, vclock.Duration(s.PacingNs), s.RejectedWrites, s.L0Preempts)
}
