// Package vclock provides the virtual-time foundation of the NobLSM
// simulation. All storage-stack costs (device service times, journal
// commits, compaction work) are charged against virtual Timelines
// instead of the wall clock, which makes experiments deterministic and
// lets a multi-hour SSD evaluation replay in seconds.
//
// A Timeline represents one logical thread of execution: a benchmark
// client, the background compaction worker, or the kernel writeback
// daemon. Timelines only ever move forward. Interaction between
// timelines is expressed with WaitUntil (a stall: the foreground
// thread waiting for background work) and by sharing resources such as
// the ssd.Device FIFO queue, which serializes requests in virtual
// time.
package vclock

import (
	"fmt"
	"sync/atomic"
)

// Time is an absolute instant in virtual nanoseconds since the start
// of the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration but is a distinct type so that wall-clock and virtual
// quantities cannot be mixed accidentally.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Seconds reports d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds reports d as floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// String formats the duration in the most natural unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", d.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Timeline is a monotonically advancing virtual clock owned by one
// logical thread. It is safe for concurrent use; in practice the
// experiment harness serializes clients, but the engine's background
// worker may advance its timeline while a foreground thread reads it.
type Timeline struct {
	now atomic.Int64
}

// NewTimeline returns a timeline positioned at start.
func NewTimeline(start Time) *Timeline {
	tl := &Timeline{}
	tl.now.Store(int64(start))
	return tl
}

// Now reports the timeline's current instant.
func (tl *Timeline) Now() Time { return Time(tl.now.Load()) }

// Advance moves the timeline forward by d (which must not be negative)
// and returns the new instant.
func (tl *Timeline) Advance(d Duration) Time {
	if d < 0 {
		panic("vclock: negative advance")
	}
	return Time(tl.now.Add(int64(d)))
}

// WaitUntil stalls the timeline until t: the clock jumps to t if t is
// in the future, and is unchanged otherwise. It returns the stall
// duration (zero if no stall happened).
func (tl *Timeline) WaitUntil(t Time) Duration {
	for {
		cur := tl.now.Load()
		if int64(t) <= cur {
			return 0
		}
		if tl.now.CompareAndSwap(cur, int64(t)) {
			return Duration(int64(t) - cur)
		}
	}
}
