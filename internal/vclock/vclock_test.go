package vclock

import (
	"testing"
	"testing/quick"
)

func TestTimelineAdvance(t *testing.T) {
	tl := NewTimeline(0)
	if got := tl.Now(); got != 0 {
		t.Fatalf("fresh timeline at %v, want 0", got)
	}
	tl.Advance(5 * Second)
	if got := tl.Now(); got != Time(5*Second) {
		t.Fatalf("after advance at %v, want 5s", got)
	}
	tl.Advance(0)
	if got := tl.Now(); got != Time(5*Second) {
		t.Fatalf("zero advance moved clock to %v", got)
	}
}

func TestTimelineAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	NewTimeline(0).Advance(-1)
}

func TestTimelineWaitUntil(t *testing.T) {
	tl := NewTimeline(Time(10 * Second))
	if stall := tl.WaitUntil(Time(4 * Second)); stall != 0 {
		t.Fatalf("waiting for the past stalled %v", stall)
	}
	if got := tl.Now(); got != Time(10*Second) {
		t.Fatalf("waiting for the past moved clock to %v", got)
	}
	if stall := tl.WaitUntil(Time(12 * Second)); stall != 2*Second {
		t.Fatalf("stall = %v, want 2s", stall)
	}
	if got := tl.Now(); got != Time(12*Second) {
		t.Fatalf("clock at %v after wait, want 12s", got)
	}
}

func TestTimelineMonotonic(t *testing.T) {
	// Property: no sequence of Advance/WaitUntil calls ever moves a
	// timeline backwards.
	f := func(steps []int64) bool {
		tl := NewTimeline(0)
		prev := tl.Now()
		for _, s := range steps {
			if s >= 0 {
				tl.Advance(Duration(s % int64(Minute)))
			} else {
				tl.WaitUntil(Time(-s % int64(Minute)))
			}
			if tl.Now() < prev {
				return false
			}
			prev = tl.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMax(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 || Max(3, 3) != 3 {
		t.Fatal("Max is broken")
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(3 * Second)
	if got := a.Add(2 * Second); got != Time(5*Second) {
		t.Fatalf("Add: got %v", got)
	}
	if got := a.Sub(Time(1 * Second)); got != 2*Second {
		t.Fatalf("Sub: got %v", got)
	}
	if got := a.Seconds(); got != 3.0 {
		t.Fatalf("Seconds: got %v", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{3 * Microsecond, "3.000µs"},
		{Duration(1.5 * float64(Millisecond)), "1.500ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}
