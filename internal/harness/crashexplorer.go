// crashexplorer.go drives a NobLSM store over a CrashFS-instrumented
// ext4 stack and validates recovery at EVERY journal-commit boundary
// the run produced. Each boundary is exactly one state a power cut
// could leave behind under data=ordered semantics (see vfs.CrashFS),
// so iterating them replaces probabilistic crash testing with an
// exhaustive enumeration: at each point the durable image is
// materialized into a fresh filesystem, reopened through the ordinary
// engine.Open path, and checked for the two invariants the paper's
// design promises — no acked write older than the durability horizon
// is lost, and every surviving table passes a full integrity scrub.
package harness

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"noblsm/internal/engine"
	"noblsm/internal/ext4"
	"noblsm/internal/policy"
	"noblsm/internal/replica"
	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
	"noblsm/internal/vfs"
)

// CrashExplorerConfig sizes the workload and bounds the sweep.
type CrashExplorerConfig struct {
	// Ops is the number of acked puts to drive (default 40 000).
	Ops int64
	// ValueSize is the value payload per put (default 32 bytes —
	// small values maximize the number of ops per commit window, so
	// nearly every boundary has fresh unsynced state to lose).
	ValueSize int
	// Keyspace is the number of distinct keys; ops cycle through it,
	// so most keys are overwritten many times and staleness after
	// recovery is detectable (default 3 000).
	Keyspace int
	// MaxPoints caps how many recorded boundaries are validated; the
	// sweep samples evenly and always keeps the final boundary.
	// Zero validates every boundary.
	MaxPoints int
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// CrashExplorerReport summarizes one exhaustive sweep.
type CrashExplorerReport struct {
	// Boundaries is how many commit boundaries the workload produced.
	Boundaries int
	// Validated is how many distinct post-crash images were
	// materialized, reopened and checked.
	Validated int
	// Duplicates is how many sampled boundaries shared a durable
	// image with an already-validated one (an fsync boundary right
	// after an async commit durably changes nothing, for example).
	Duplicates int
	// Kinds counts validated boundaries by commit kind.
	Kinds map[string]int
	// GuaranteeChecks counts individual key-must-survive assertions
	// made across all points (the "acked before the horizon" checks).
	GuaranteeChecks int64
}

// The explorer's atomic-batch probe: a few sibling-key groups written
// only through multi-key Batches, so every crash image can assert the
// batch boundary survived whole.
const (
	crashBatchGroups   = 8
	crashBatchSiblings = 4
)

func crashBatchKey(group int64, sibling int) string {
	return fmt.Sprintf("bat-%03d-k%d", group, sibling)
}

// ackedWrite is one completed put: the global op index doubles as the
// key's round number, and at is the virtual instant the put returned.
type ackedWrite struct {
	op int64
	at vclock.Time
}

// crashValue renders the self-describing value for op i on key k,
// padded to size: "key-00123#000042xxxx…". Recovery validation parses
// it back and rejects any value the workload never acked.
func crashValue(k string, i int64, size int) []byte {
	v := fmt.Sprintf("%s#%06d", k, i)
	if len(v) < size {
		v += strings.Repeat("x", size-len(v))
	}
	return []byte(v)
}

// parseCrashValue recovers the op index from a value read back for
// key k, reporting ok=false on any byte the workload cannot have
// written for that key.
func parseCrashValue(k string, v []byte, size int) (int64, bool) {
	want := crashValue(k, 0, size)
	if len(v) != len(want) {
		return 0, false
	}
	prefix := len(k) + 1 // "key…#"
	if string(v[:prefix]) != k+"#" {
		return 0, false
	}
	var op int64
	for _, c := range v[prefix : prefix+6] {
		if c < '0' || c > '9' {
			return 0, false
		}
		op = op*10 + int64(c-'0')
	}
	for _, c := range v[prefix+6:] {
		if c != 'x' {
			return 0, false
		}
	}
	return op, true
}

// ExploreCrashPoints runs the workload, then sweeps the recorded
// boundaries. It returns a non-nil error the moment any crash point
// violates recovery's contract; the report describes a completed
// sweep.
func ExploreCrashPoints(cfg CrashExplorerConfig) (*CrashExplorerReport, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 40_000
	}
	if cfg.Ops > 999_999 {
		return nil, fmt.Errorf("harness: crash explorer op index encodes in 6 digits; %d ops exceed it", cfg.Ops)
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 32
	}
	if cfg.Keyspace <= 0 {
		cfg.Keyspace = 3_000
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// The stack mirrors NewStore's NobLSM configuration, with the
	// CrashFS recorder spliced between the engine and ext4. The
	// commit interval follows the scaled poll interval exactly as the
	// figure harnesses configure it.
	base := ScaledOptions(cfg.Ops, cfg.ValueSize, PaperTable64MB)
	opts, err := policy.Options(policy.NobLSM, base)
	if err != nil {
		return nil, err
	}
	fsCfg := ext4.DefaultConfig()
	fsCfg.CommitInterval = base.PollInterval
	inner := ext4.New(fsCfg, ssd.New(ScaledDevice(base)))
	mount, crash := vfs.NewCrashFS(inner)
	tl := vclock.NewTimeline(0)
	db, err := engine.Open(tl, mount, opts)
	if err != nil {
		return nil, fmt.Errorf("harness: opening explorer store: %w", err)
	}

	writes := make(map[string][]ackedWrite, cfg.Keyspace)
	for i := int64(0); i < cfg.Ops; i++ {
		k := fmt.Sprintf("key-%05d", i%int64(cfg.Keyspace))
		if err := db.Put(tl, []byte(k), crashValue(k, i, cfg.ValueSize)); err != nil {
			return nil, fmt.Errorf("harness: explorer put %d: %w", i, err)
		}
		// The ack instant is when Put returned on the client
		// timeline: everything at least one horizon older than a
		// boundary must survive a crash at that boundary.
		writes[k] = append(writes[k], ackedWrite{op: i, at: tl.Now()})
		// Interleave multi-key atomic batches: a group's siblings are
		// always written together with one round tag, so any recovered
		// image must show each group all-missing or all at one round —
		// the torn-batch probe validateCrashPoint runs via MultiGet.
		if i%16 == 15 {
			g := (i / 16) % crashBatchGroups
			var b engine.Batch
			for s := 0; s < crashBatchSiblings; s++ {
				k := crashBatchKey(g, s)
				b.Put([]byte(k), crashValue(k, i, cfg.ValueSize))
			}
			if err := db.Write(tl, &b); err != nil {
				return nil, fmt.Errorf("harness: explorer batch %d: %w", i, err)
			}
			for s := 0; s < crashBatchSiblings; s++ {
				k := crashBatchKey(g, s)
				writes[k] = append(writes[k], ackedWrite{op: i, at: tl.Now()})
			}
		}
	}
	if err := db.Close(tl); err != nil {
		return nil, fmt.Errorf("harness: closing explorer store: %w", err)
	}

	points := crash.Points()
	rep := &CrashExplorerReport{Boundaries: len(points), Kinds: make(map[string]int)}
	logf("crash explorer: %d ops produced %d commit boundaries", cfg.Ops, len(points))

	// The durability horizon: an acked write becomes crash-proof at
	// most one flusher ageing (≤ CommitInterval when unset) plus one
	// commit cadence after its ack, with one extra interval of slack
	// for boundary alignment. Anything acked earlier than that before
	// a boundary MUST be in the boundary's durable image.
	guard := vclock.Duration(3 * int64(fsCfg.CommitInterval))

	sel := points
	if cfg.MaxPoints > 0 && len(points) > cfg.MaxPoints {
		sel = make([]vfs.CommitRecord, 0, cfg.MaxPoints)
		stride := float64(len(points)) / float64(cfg.MaxPoints)
		for i := 0; i < cfg.MaxPoints; i++ {
			sel = append(sel, points[int(float64(i)*stride)])
		}
		sel[len(sel)-1] = points[len(points)-1]
		logf("crash explorer: sampling %d of %d boundaries", len(sel), len(points))
	}

	seen := make(map[string]bool, len(sel))
	for _, p := range sel {
		key := imageKey(p)
		if seen[key] {
			rep.Duplicates++
			continue
		}
		seen[key] = true
		checks, err := validateCrashPoint(crash, p, base, fsCfg, opts, writes, guard, cfg.ValueSize)
		if err != nil {
			return nil, fmt.Errorf("crash point seq=%d kind=%s at=%v: %w", p.Seq, p.Kind, p.At, err)
		}
		rep.Validated++
		rep.Kinds[p.Kind]++
		rep.GuaranteeChecks += checks
		if rep.Validated%100 == 0 {
			logf("crash explorer: %d/%d points validated", rep.Validated, len(sel))
		}
	}
	logf("crash explorer: %d validated (%d duplicate images), %d guarantee checks, kinds=%v",
		rep.Validated, rep.Duplicates, rep.GuaranteeChecks, rep.Kinds)
	return rep, nil
}

// imageKey fingerprints a boundary's durable image. Appends are
// immutable history — a given (ino, size) prefix always has the same
// bytes within one run — so the name/ino/size triple identifies the
// image without hashing content.
func imageKey(p vfs.CommitRecord) string {
	var b strings.Builder
	for _, f := range p.Files {
		fmt.Fprintf(&b, "%s\x00%d\x00%d\x00", f.Name, f.Ino, f.Size)
	}
	return b.String()
}

// validateCrashPoint materializes one boundary into a fresh
// filesystem, reopens it through engine.Open, and asserts the
// recovery contract: every recovered value is a value the workload
// acked for that key, every key acked at least one horizon before the
// boundary survives at no older a round, and a full scrub finds every
// surviving table intact. Returns the number of key-survival checks.
func validateCrashPoint(crash *vfs.CrashFS, p vfs.CommitRecord, base engine.Options,
	fsCfg ext4.Config, opts engine.Options, writes map[string][]ackedWrite,
	guard vclock.Duration, valueSize int) (int64, error) {

	img, err := crash.Materialize(p)
	if err != nil {
		return 0, err
	}
	// The post-crash mount: the image's files are laid down and force-
	// committed so they are plain durable contents — the simulated
	// machine rebooted; only the engine's recovery is under test. The
	// timeline resumes at the crash instant so poll cadences stay
	// meaningful.
	tl := vclock.NewTimeline(p.At)
	fs := ext4.New(fsCfg, ssd.New(ScaledDevice(base)))
	names := make([]string, 0, len(img))
	for name := range img {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := fs.WriteFile(tl, name, img[name]); err != nil {
			return 0, fmt.Errorf("materializing %q: %w", name, err)
		}
	}
	fs.ForceCommit(tl)

	db, err := engine.Open(tl, fs, opts)
	if err != nil {
		return 0, fmt.Errorf("reopen: %w", err)
	}
	defer db.Close(tl)

	// One full scan: every surviving value must be self-consistent —
	// a value this workload acked for this exact key. The raw image is
	// kept for the replication probe's byte-equivalence checks.
	recovered := make(map[string]int64)
	raw := make(map[string]string)
	it, err := db.NewIterator(tl)
	if err != nil {
		return 0, err
	}
	for it.First(); it.Valid(); it.Next() {
		k := string(it.Key())
		op, ok := parseCrashValue(k, it.Value(), valueSize)
		if !ok {
			it.Close()
			return 0, fmt.Errorf("key %q recovered value %q the workload never wrote", k, it.Value())
		}
		if len(writes[k]) == 0 {
			it.Close()
			return 0, fmt.Errorf("recovered key %q was never written", k)
		}
		recovered[k] = op
		raw[k] = string(it.Value())
	}
	if err := it.Err(); err != nil {
		it.Close()
		return 0, fmt.Errorf("scan: %w", err)
	}
	it.Close()

	// Zero acked-write loss behind the horizon: for each key, the
	// newest write acked at least `guard` before this boundary must
	// read back — possibly superseded by a newer acked round, never
	// by an older one, never missing.
	horizon := p.At.Add(-guard)
	var checks int64
	for k, ws := range writes {
		g := sort.Search(len(ws), func(i int) bool { return ws[i].at > horizon })
		if g == 0 {
			continue // nothing old enough to be guaranteed yet
		}
		guaranteed := ws[g-1]
		checks++
		got, ok := recovered[k]
		if !ok {
			return 0, fmt.Errorf("acked write lost: key %q op %d acked at %v (horizon %v) missing after recovery",
				k, guaranteed.op, guaranteed.at, horizon)
		}
		if got < guaranteed.op {
			return 0, fmt.Errorf("stale recovery: key %q came back at op %d but op %d was acked at %v (horizon %v)",
				k, got, guaranteed.op, guaranteed.at, horizon)
		}
	}

	// No torn batch boundaries: each probe group's siblings were only
	// ever written atomically with one shared round, so a MultiGet
	// over the group — the batch read path, one consistent view — must
	// come back all-missing or all at the same round. A mixed result
	// means recovery (or MultiGet's read-point clamp) split a batch.
	for g := int64(0); g < crashBatchGroups; g++ {
		group := make([][]byte, crashBatchSiblings)
		for s := range group {
			group[s] = []byte(crashBatchKey(g, s))
		}
		vals, errs := db.MultiGet(tl, group)
		round, present := int64(-1), 0
		for s := range group {
			if errs[s] != nil {
				if errors.Is(errs[s], engine.ErrNotFound) {
					continue
				}
				return 0, fmt.Errorf("batch group %d: MultiGet: %w", g, errs[s])
			}
			op, ok := parseCrashValue(string(group[s]), vals[s], valueSize)
			if !ok {
				return 0, fmt.Errorf("batch group %d key %q recovered value %q the workload never wrote",
					g, group[s], vals[s])
			}
			if present == 0 {
				round = op
			} else if op != round {
				return 0, fmt.Errorf("torn batch: group %d recovered rounds %d and %d", g, round, op)
			}
			present++
		}
		if present != 0 && present != crashBatchSiblings {
			return 0, fmt.Errorf("torn batch: group %d recovered %d/%d siblings", g, present, crashBatchSiblings)
		}
		checks++
	}

	// Invariant-clean recovery: a full scrub of every live table must
	// find nothing to heal — the durable image contains no table the
	// recovered version references that is torn or corrupt.
	healed, err := db.ScrubTables(tl)
	if err != nil {
		return 0, fmt.Errorf("scrub: %w", err)
	}
	if healed != 0 {
		return 0, fmt.Errorf("scrub healed %d tables: recovered version referenced damaged files", healed)
	}

	// Replication probe (PR 9): at this exact crash boundary, a
	// zero-copy checkpoint of the recovered store must restore
	// byte-equivalently through the repair path, and a follower
	// bootstrapped from a checkpoint must catch up to the recovered
	// store's tail with the same contents and sequence number. Any
	// divergence here means backup or replication can silently lose a
	// crash survivor.
	if err := probeReplication(tl, fs, fsCfg, base, opts, db, raw); err != nil {
		return 0, fmt.Errorf("replication probe: %w", err)
	}
	checks++
	return checks, nil
}

// probeReplication checkpoints the (quiescent) recovered store,
// restores the checkpoint in place, and bootstraps + catches up a
// follower, asserting both are byte-equivalent to the store itself.
func probeReplication(tl *vclock.Timeline, fs *ext4.FS, fsCfg ext4.Config, base engine.Options,
	opts engine.Options, db *engine.DB, want map[string]string) error {

	info, err := db.Checkpoint(tl, "probe-ckpt")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	rep, err := engine.RestoreBackup(tl, fs, "probe-ckpt", "probe-rst", opts)
	if err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	if len(rep.Quarantined) > 0 {
		return fmt.Errorf("restore quarantined %d tables", len(rep.Quarantined))
	}
	rdb, err := engine.Open(tl, vfs.NewPrefix(fs, "probe-rst"), opts)
	if err != nil {
		return fmt.Errorf("opening restored checkpoint: %w", err)
	}
	cmpErr := compareContents(tl, rdb, want, "restored checkpoint")
	if err := rdb.Close(tl); cmpErr == nil && err != nil {
		cmpErr = fmt.Errorf("closing restored checkpoint: %w", err)
	}
	if cmpErr != nil {
		return cmpErr
	}
	if err := db.ReleaseCheckpoint(tl, info.ID); err != nil {
		return fmt.Errorf("releasing checkpoint: %w", err)
	}

	ffs := ext4.New(fsCfg, ssd.New(ScaledDevice(base)))
	fol := replica.New(ffs, opts, &replica.LocalSource{DB: db, FS: fs, TL: tl})
	defer fol.Close(tl)
	if err := fol.CatchUp(tl); err != nil {
		return fmt.Errorf("follower catch-up: %w", err)
	}
	if got, wantSeq := fol.AppliedSeq(), db.VisibleSeq(); got != wantSeq {
		return fmt.Errorf("follower applied seq %d, primary at %d", got, wantSeq)
	}
	return compareContents(tl, fol.DB(), want, "follower")
}

// compareContents asserts a store's full scan equals want exactly.
func compareContents(tl *vclock.Timeline, db *engine.DB, want map[string]string, label string) error {
	it, err := db.NewIterator(tl)
	if err != nil {
		return err
	}
	defer it.Close()
	n := 0
	for it.First(); it.Valid(); it.Next() {
		k := string(it.Key())
		w, ok := want[k]
		if !ok {
			return fmt.Errorf("%s: extra key %q", label, k)
		}
		if w != string(it.Value()) {
			return fmt.Errorf("%s: key %q diverged", label, k)
		}
		n++
	}
	if err := it.Err(); err != nil {
		return fmt.Errorf("%s: scan: %w", label, err)
	}
	if n != len(want) {
		return fmt.Errorf("%s: %d keys, primary has %d", label, n, len(want))
	}
	return nil
}
