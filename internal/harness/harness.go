// Package harness runs the paper's experiments: it provisions a
// simulated SSD + ext4 stack, opens an engine configured as one of the
// compared systems, drives db_bench or YCSB workloads from one or more
// client timelines, and reports execution time per operation plus the
// sync counters of Table 1.
//
// Scaling: the paper's runs move ~10 GB per workload on real hardware
// over hours. The harness scales the LSM-tree geometry (write buffer,
// SSTable size, level capacities, block cache) by the ratio between
// the paper's data volume and the configured one, which preserves the
// event counts that drive the results — e.g. a 10M×1KB fill into 64 MB
// memtables performs ~160 minor compactions in the paper, and a scaled
// 100k×1KB fill into 640 KB memtables performs the same ~160 — so sync
// counts, stall patterns and the relative ordering of systems carry
// over while running in seconds of wall-clock time.
package harness

import (
	"fmt"

	"noblsm/internal/core"
	"noblsm/internal/engine"
	"noblsm/internal/ext4"
	"noblsm/internal/histogram"
	"noblsm/internal/obs"
	"noblsm/internal/policy"
	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
	"noblsm/internal/vfs"
)

// PaperDataBytes is the evaluation's reference volume: 10 million
// requests of ~1 KB KV pairs.
const PaperDataBytes = 10_000_000 * 1040

// PaperTable64MB and PaperTable2MB are the SSTable sizes the paper
// evaluates (Section 3 and Section 5.1).
const (
	PaperTable64MB = int64(64) << 20
	PaperTable2MB  = int64(2) << 20
)

// ScaledOptions derives engine geometry for a run of ops×valueSize
// from the paper's configuration with paperTableBytes SSTables. The
// write buffer equals the SSTable size (the paper's L0 tables are
// memtable-sized, which is how NobLSM's sync count equals its minor-
// compaction count), and level capacities keep LevelDB's 5× ratio to
// the file size.
func ScaledOptions(ops int64, valueSize int, paperTableBytes int64) engine.Options {
	if ops < 1 {
		ops = 1
	}
	if valueSize < 1 {
		valueSize = 1
	}
	data := ops * int64(valueSize+16)
	scale := PaperDataBytes / data
	if scale < 1 {
		scale = 1
	}
	table := paperTableBytes / scale
	if table < 32<<10 {
		table = 32 << 10
	}
	o := engine.DefaultOptions()
	o.TableFileSize = table
	o.WriteBufferSize = table
	// Level capacities follow the file size (5× — LevelDB's stock
	// 10 MiB L1 over 2 MiB files). This lands the fill's write
	// amplification at ~8×, close to the paper's measured ~6×
	// (61.55 GB synced for a 10 GB fill, Table 1); deriving the
	// capacity from the paper's absolute 10 MiB instead degenerates
	// at scale (amp ~27) because every flushed table overflows L1.
	o.Picker.BaseLevelBytes = 5 * table
	o.BlockCacheBytes = (8 << 20) / scale
	if o.BlockCacheBytes < 256<<10 {
		o.BlockCacheBytes = 256 << 10
	}
	// Codec CPU is a per-byte cost, so it scales with the data volume
	// exactly like device bytes do (per-request CPU overheads stay
	// unscaled — see DESIGN.md §10).
	o.CodecCostDiv = scale
	// Virtual time compresses with the op count, so the journal
	// commit cadence — and NobLSM's matching poll interval — scale
	// with it: the paper's ~750 s fill sees ~150 five-second commit
	// windows, and the scaled run sees the same ~150 windows.
	o.PollInterval = vclock.Duration(int64(5*vclock.Second) / scale)
	if o.PollInterval < vclock.Millisecond {
		o.PollInterval = vclock.Millisecond
	}
	return o
}

// ScaledDevice derives the device parameters for a scaled run.
// Bandwidth terms carry over unchanged (bytes per op are unchanged),
// but fixed per-request latencies — above all the flush barrier — must
// shrink with the op count, or a scaled run pays the paper's barrier
// cost over 100× fewer operations and the sync-bound systems look
// arbitrarily worse. The scale is recovered from the commit interval,
// which ScaledOptions compressed by exactly the data ratio.
func ScaledDevice(base engine.Options) ssd.Config {
	cfg := ssd.PM883()
	scale := int64(1)
	if base.PollInterval > 0 {
		scale = int64(5*vclock.Second) / int64(base.PollInterval)
	}
	if scale < 1 {
		scale = 1
	}
	div := func(d vclock.Duration) vclock.Duration {
		d = vclock.Duration(int64(d) / scale)
		if d < 200*vclock.Nanosecond {
			d = 200 * vclock.Nanosecond
		}
		return d
	}
	cfg.ReadLatency = div(cfg.ReadLatency)
	cfg.WriteLatency = div(cfg.WriteLatency)
	cfg.FlushLatency = div(cfg.FlushLatency)
	return cfg
}

// Store is one provisioned system under test.
type Store struct {
	Variant policy.Variant
	Device  *ssd.Device
	FS      *ext4.FS
	DB      *engine.DB
	Opts    engine.Options

	// Metrics is the registry shared by every layer of this store's
	// stack (engine, tracker, ext4, SSD, cache, WAL). Trace is the
	// store's event ring, nil unless requested via NewStoreObserved.
	// Telemetry is the per-op attribution plane, nil unless the sink
	// carried one.
	Metrics   *obs.Registry
	Trace     *obs.Tracer
	Telemetry *obs.Telemetry

	// Faults controls and reports the fault-injection plane, nil
	// unless the store was built with NewStoreFaulted.
	Faults *vfs.FaultFS
}

// NewStore builds a fresh SSD + ext4 + engine stack for a variant. The
// filesystem's commit interval follows the engine's poll interval —
// the paper aligns the two (Section 4.3), and ScaledOptions compresses
// both with the run.
func NewStore(tl *vclock.Timeline, v policy.Variant, base engine.Options) (*Store, error) {
	return NewStoreWithCommit(tl, v, base, base.PollInterval)
}

// NewStoreWithCommit builds a store whose journal commit interval is
// set independently of the engine's poll interval — for ablations of
// the paper's poll-matches-commit design choice (Section 4.3).
func NewStoreWithCommit(tl *vclock.Timeline, v policy.Variant, base engine.Options, commit vclock.Duration) (*Store, error) {
	return NewStoreObserved(tl, v, base, commit, obs.Sink{})
}

// NewStoreObserved builds a store whose whole stack publishes into
// one shared registry and (optionally) one event ring. A zero Sink
// still provisions a registry — dbbench -metrics-json reads it — but
// leaves tracing off.
func NewStoreObserved(tl *vclock.Timeline, v policy.Variant, base engine.Options, commit vclock.Duration, sink obs.Sink) (*Store, error) {
	return NewStoreFaulted(tl, v, base, commit, sink, 0, nil)
}

// NewStoreFaulted builds an observed store whose filesystem sits under
// a fault-injection plane armed with the given rules (the dbbench
// -faults mode). The plane is disarmed while the store opens — a spec
// is aimed at the workload, not at creating an empty directory — and
// armed from the first operation on. The returned Store's Faults field
// controls and reports the plane; it is nil when rules is empty.
func NewStoreFaulted(tl *vclock.Timeline, v policy.Variant, base engine.Options, commit vclock.Duration, sink obs.Sink, seed int64, rules []vfs.Rule) (*Store, error) {
	opts, err := policy.Options(v, base)
	if err != nil {
		return nil, err
	}
	reg := sink.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	opts.Metrics = reg
	opts.Events = sink.Trace
	opts.Telemetry = sink.Telemetry
	dev := ssd.NewObserved(ScaledDevice(base), reg)
	fsCfg := ext4.DefaultConfig()
	if commit > 0 {
		fsCfg.CommitInterval = commit
	}
	fs := ext4.NewObserved(fsCfg, dev, reg, sink.Trace)
	var (
		mount vfs.FS = fs
		ctl   *vfs.FaultFS
	)
	if len(rules) > 0 {
		mount, ctl = vfs.NewFaultFS(fs, seed)
		ctl.SetEnabled(false)
		for _, r := range rules {
			ctl.AddRule(r)
		}
	}
	db, err := engine.Open(tl, mount, opts)
	if err != nil {
		return nil, err
	}
	if ctl != nil {
		ctl.SetEnabled(true)
	}
	return &Store{Variant: v, Device: dev, FS: fs, DB: db, Opts: opts,
		Metrics: reg, Trace: sink.Trace, Telemetry: sink.Telemetry,
		Faults: ctl}, nil
}

// Exposition assembles the store's live exposition surface for
// obs.Serve: registry, telemetry plane, trace ring (under the
// variant's name) and the engine's doctor report.
func (s *Store) Exposition() obs.Exposition {
	x := obs.Exposition{Registry: s.Metrics, Telemetry: s.Telemetry}
	if s.Trace != nil {
		x.Traces = map[string]*obs.Tracer{string(s.Variant): s.Trace}
	}
	db := s.DB
	x.Doctor = func() string {
		v, _ := db.Property("noblsm.doctor")
		return v
	}
	return x
}

// ResetCounters zeroes device, filesystem and (not engine-cumulative)
// counters before a measured phase.
func (s *Store) ResetCounters() {
	s.Device.ResetStats()
	s.FS.ResetStats()
}

// Result is one measured workload phase.
type Result struct {
	Variant  policy.Variant
	Workload string
	Threads  int
	Ops      int64
	// Elapsed is the virtual duration of the phase (max across
	// client threads).
	Elapsed vclock.Duration
	// MicrosPerOp is Elapsed divided by per-thread operations — the
	// paper's metric (average execution time per request).
	MicrosPerOp float64
	// Syncs and BytesSynced are the Table 1 counters.
	Syncs       int64
	BytesSynced int64

	FS      ext4.Stats
	Device  ssd.Stats
	Engine  engine.Stats
	Tracker core.Stats

	// Latency is the per-operation virtual-latency distribution
	// (tail behaviour — the sync stalls — is where the variants
	// differ most).
	Latency histogram.Histogram
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("%-13s %-11s thr=%d ops=%-9d %8.2f µs/op  syncs=%-6d synced=%.2f GB",
		r.Variant, r.Workload, r.Threads, r.Ops, r.MicrosPerOp,
		r.Syncs, float64(r.BytesSynced)/(1<<30))
}

// client is one logical benchmark thread.
type client struct {
	tl   *vclock.Timeline
	ops  int64
	done int64
	hist histogram.Histogram
}

// driver runs per-op work across threads with conservative virtual-
// time scheduling: at each step the client with the smallest clock
// issues its next operation, which is how concurrent load interleaves
// deterministically on the shared device and filesystem.
func drive(start vclock.Time, threads int, totalOps int64, step func(c int, tl *vclock.Timeline, i int64) error) (vclock.Duration, histogram.Histogram, error) {
	clients := make([]*client, threads)
	per := totalOps / int64(threads)
	for i := range clients {
		clients[i] = &client{tl: vclock.NewTimeline(start), ops: per}
	}
	clients[0].ops += totalOps - per*int64(threads)
	remaining := totalOps
	for remaining > 0 {
		// Pick the least-advanced client that still has work.
		var sel *client
		selIdx := -1
		for i, c := range clients {
			if c.done >= c.ops {
				continue
			}
			if sel == nil || c.tl.Now() < sel.tl.Now() {
				sel, selIdx = c, i
			}
		}
		if sel == nil {
			break
		}
		opStart := sel.tl.Now()
		if err := step(selIdx, sel.tl, sel.done); err != nil {
			return 0, histogram.Histogram{}, err
		}
		sel.hist.Record(sel.tl.Now().Sub(opStart))
		sel.done++
		remaining--
	}
	var end vclock.Time
	var hist histogram.Histogram
	for _, c := range clients {
		if c.tl.Now() > end {
			end = c.tl.Now()
		}
		hist.Merge(&c.hist)
	}
	return end.Sub(start), hist, nil
}

// finishResult assembles counters after a measured phase.
func (s *Store) finishResult(workload string, threads int, ops int64, elapsed vclock.Duration) Result {
	fsStats := s.FS.Stats()
	r := Result{
		Variant:     s.Variant,
		Workload:    workload,
		Threads:     threads,
		Ops:         ops,
		Elapsed:     elapsed,
		Syncs:       fsStats.Syncs,
		BytesSynced: fsStats.BytesSynced,
		FS:          fsStats,
		Device:      s.Device.Stats(),
		Engine:      s.DB.Stats(),
	}
	if tr := s.DB.Tracker(); tr != nil {
		r.Tracker = tr.Stats()
	}
	perThread := ops / int64(threads)
	if perThread > 0 {
		r.MicrosPerOp = elapsed.Microseconds() / float64(perThread)
	}
	return r
}
