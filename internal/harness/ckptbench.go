package harness

// Checkpoint benchmark (PR 9, BENCH_PR9.json): two experiments that
// back the zero-copy / non-blocking claims with numbers.
//
// The scale sweep grows one store through GB-scale marks (1, 4, 8 GB
// of live data by default) and measures Checkpoint's virtual latency
// at each mark. The claim is O(manifest): latency tracks the live
// file count (hard links + a manifest snapshot), never the data
// volume — the copied-bytes column stays at WAL-tail + manifest size
// while the store grows by orders of magnitude.
//
// The overhead loop runs the same fillrandom twice — once plain, once
// with a checkpoint + incremental backup every eighth of the run —
// and reports the virtual-time overhead percentage. The acceptance
// gate is ≤5%: checkpoints must not stall the write path.

import (
	"fmt"

	"noblsm/internal/dbbench"
	"noblsm/internal/policy"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
)

// CkptScalePoint is one mark of the scale sweep.
type CkptScalePoint struct {
	TargetGB   float64 `json:"target_gb"`
	LiveBytes  int64   `json:"live_bytes"`
	LiveTables int     `json:"live_tables"`

	Files       int     `json:"files"`        // files in the export
	Linked      int     `json:"linked"`       // exported as hard links
	CopiedBytes int64   `json:"copied_bytes"` // actually written (WAL tail + manifest)
	LatencyUs   float64 `json:"latency_us"`   // virtual Checkpoint latency
}

// CkptBenchResult is the BENCH_PR9 payload.
type CkptBenchResult struct {
	ScalePoints []CkptScalePoint `json:"scale_points"`

	LoopOps         int64   `json:"loop_ops"`
	PlainUsPerOp    float64 `json:"plain_us_per_op"`
	CkptLoopUsPerOp float64 `json:"ckpt_loop_us_per_op"`
	Checkpoints     int     `json:"checkpoints"`
	Backups         int     `json:"backups"`
	OverheadPct     float64 `json:"overhead_pct"`
	GateMaxPct      float64 `json:"gate_max_pct"`
	GateOK          bool    `json:"gate_ok"`
}

// RunCkptBench runs both experiments. gbs are the scale-sweep marks in
// ascending order; loopOps/loopValue size the overhead loop.
func RunCkptBench(v policy.Variant, gbs []float64, loopOps int64, loopValue int, seed int64) (CkptBenchResult, error) {
	var res CkptBenchResult

	// Scale sweep: one growing store, disjoint sequential key ranges
	// per increment so live bytes track what was written.
	const scaleValue = 8192
	maxGB := gbs[len(gbs)-1]
	totalOps := int64(maxGB * float64(1<<30) / scaleValue)
	tl := vclock.NewTimeline(0)
	st, err := NewStore(tl, v, ScaledOptions(totalOps, scaleValue, PaperTable64MB))
	if err != nil {
		return res, err
	}
	val := make([]byte, scaleValue)
	for i := range val {
		val[i] = byte(i * 131)
	}
	var nextKey int64
	for i, gb := range gbs {
		target := int64(gb * float64(1<<30) / scaleValue)
		for ; nextKey < target; nextKey++ {
			if err := st.DB.Put(tl, []byte(fmt.Sprintf("ckpt%012d", nextKey)), val); err != nil {
				return res, fmt.Errorf("scale fill at %d: %w", nextKey, err)
			}
			if nextKey%128 == 0 {
				tl.Advance(vclock.Millisecond)
			}
		}
		// Let in-flight compactions drain so the mark's manifest is a
		// settled shape, not a transient mid-compaction one.
		tl.Advance(10 * st.Opts.PollInterval)

		cur := st.DB.Version()
		live := 0
		for level := 0; level < version.NumLevels; level++ {
			live += len(cur.Files[level])
		}
		t0 := tl.Now()
		info, err := st.DB.Checkpoint(tl, fmt.Sprintf("bench-ckpt-%d", i))
		if err != nil {
			return res, fmt.Errorf("checkpoint at %vGB: %w", gb, err)
		}
		lat := tl.Now().Sub(t0)
		res.ScalePoints = append(res.ScalePoints, CkptScalePoint{
			TargetGB:    gb,
			LiveBytes:   nextKey * scaleValue,
			LiveTables:  live,
			Files:       len(info.Files),
			Linked:      info.Linked,
			CopiedBytes: info.CopiedBytes,
			LatencyUs:   float64(lat) / float64(vclock.Microsecond),
		})
		if err := st.DB.ReleaseCheckpoint(tl, info.ID); err != nil {
			return res, err
		}
	}
	if err := st.DB.Close(tl); err != nil {
		return res, err
	}

	// Overhead loop: identical drivers, the ckpt side additionally
	// checkpointing + backing up every eighth of the run.
	plain, err := runCkptLoop(v, loopOps, loopValue, seed, false, &res)
	if err != nil {
		return res, err
	}
	loop, err := runCkptLoop(v, loopOps, loopValue, seed, true, &res)
	if err != nil {
		return res, err
	}
	res.LoopOps = loopOps
	res.PlainUsPerOp = plain
	res.CkptLoopUsPerOp = loop
	res.OverheadPct = (loop - plain) / plain * 100
	res.GateMaxPct = 5
	res.GateOK = res.OverheadPct <= res.GateMaxPct
	return res, nil
}

// runCkptLoop drives one fillrandom pass and returns its virtual
// µs/op. With ckpt set, a checkpoint (released immediately) and an
// incremental backup land every eighth of the run.
func runCkptLoop(v policy.Variant, ops int64, valueSize int, seed int64, ckpt bool, res *CkptBenchResult) (float64, error) {
	tl := vclock.NewTimeline(0)
	st, err := NewStore(tl, v, ScaledOptions(ops, valueSize, PaperTable64MB))
	if err != nil {
		return 0, err
	}
	defer st.DB.Close(tl)
	gen := dbbench.NewGenerator(dbbench.FillRandom, ops, seed)
	interval := ops / 8
	if interval < 1 {
		interval = 1
	}
	var buf []byte
	start := tl.Now()
	for i := int64(0); i < ops; i++ {
		k, done := gen.Next()
		if done {
			break
		}
		buf = dbbench.Value(buf, k, 0, valueSize)
		if err := st.DB.Put(tl, dbbench.Key(k), buf); err != nil {
			return 0, err
		}
		if ckpt && i > 0 && i%interval == 0 {
			info, err := st.DB.Checkpoint(tl, "bench-loop-ckpt")
			if err != nil {
				return 0, fmt.Errorf("loop checkpoint at op %d: %w", i, err)
			}
			if err := st.DB.ReleaseCheckpoint(tl, info.ID); err != nil {
				return 0, err
			}
			res.Checkpoints++
			if _, err := st.DB.Backup(tl, "bench-loop-backup"); err != nil {
				return 0, fmt.Errorf("loop backup at op %d: %w", i, err)
			}
			res.Backups++
		}
	}
	elapsed := tl.Now().Sub(start)
	return float64(elapsed) / float64(vclock.Microsecond) / float64(ops), nil
}
