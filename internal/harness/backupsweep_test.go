package harness

import (
	"fmt"
	"sync"
	"testing"
)

// TestBackupScheduleSweep drives the backup/replication fault sweep
// over 60 seeded schedules (12 under -short) and asserts the PR 9
// invariants per schedule — a caught-up follower byte-equivalent to
// the primary at the primary's own sequence number, zero acked-write
// loss, and a final incremental backup that restores through the
// repair path to exactly the primary's contents — plus, suite-wide,
// that the fault plane actually fired on the replication paths and
// that at least one follower had to retry through a transient fault.
func TestBackupScheduleSweep(t *testing.T) {
	n := int64(60)
	if testing.Short() {
		n = 12
	}
	var mu sync.Mutex
	var injected int64
	var retries, bootstraps, applied, backups int
	t.Run("schedules", func(t *testing.T) {
		for seed := int64(1); seed <= n; seed++ {
			s := NewBackupSchedule(seed)
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				t.Parallel()
				rep, err := s.Run()
				if err != nil {
					t.Fatalf("invariant violation: %v\n%s", err, rep)
				}
				if rep.Bootstraps < 1 {
					t.Fatalf("follower never bootstrapped: %s", rep)
				}
				if rep.Backups < 2 {
					t.Fatalf("fewer than 2 backups landed: %s", rep)
				}
				mu.Lock()
				injected += rep.Injected
				retries += rep.Retries + rep.BackupTrys
				bootstraps += rep.Bootstraps
				applied += rep.Applied
				backups += rep.Backups
				mu.Unlock()
			})
		}
	})
	t.Logf("schedules=%d injected=%d retries=%d bootstraps=%d applied=%d backups=%d",
		n, injected, retries, bootstraps, applied, backups)
	if injected == 0 {
		t.Fatal("the fault plane never fired across the whole suite")
	}
	if retries == 0 {
		t.Fatal("no follower or backup ever retried through a transient fault")
	}
	if applied == 0 {
		t.Fatal("no WAL records were ever applied by tailing")
	}
}
