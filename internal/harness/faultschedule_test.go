package harness

import (
	"fmt"
	"sync"
	"testing"
)

// TestFaultScheduleExplorer drives the randomized fault-schedule
// explorer over 200 seeded schedules (40 under -short) and asserts
// the robustness invariants per schedule — zero acked-write loss,
// full read availability, clean end-to-end scans — plus, suite-wide,
// that the fault plane actually fired and that at least one schedule
// demonstrably exercised predecessor repair (a corrupt successor
// healed from its retained shadow predecessors and quarantined).
func TestFaultScheduleExplorer(t *testing.T) {
	n := int64(200)
	if testing.Short() {
		n = 40
	}
	var mu sync.Mutex
	var injected, healed, quarantined int64
	var corruptTargets int
	t.Run("schedules", func(t *testing.T) {
		for seed := int64(1); seed <= n; seed++ {
			s := NewFaultSchedule(seed)
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				t.Parallel()
				rep, err := s.Run()
				if err != nil {
					t.Fatalf("invariant violation: %v\n%s", err, rep)
				}
				mu.Lock()
				injected += rep.Injected
				healed += rep.Healed
				quarantined += rep.Quarantined
				if rep.CorruptedAt != 0 {
					corruptTargets++
				}
				mu.Unlock()
			})
		}
	})
	t.Logf("schedules=%d injected=%d corrupt-targets=%d healed=%d quarantined=%d",
		n, injected, corruptTargets, healed, quarantined)
	if injected == 0 {
		t.Fatal("the fault plane never fired across the whole suite")
	}
	if corruptTargets == 0 {
		t.Fatal("no schedule found a healable successor to corrupt")
	}
	if healed < 1 || quarantined < 1 {
		t.Fatalf("predecessor repair never exercised: healed=%d quarantined=%d", healed, quarantined)
	}
}
