package harness

import (
	"fmt"
	"testing"

	"noblsm/internal/dbbench"
	"noblsm/internal/policy"
)

// Wall-clock benchmarks of the Go engine itself (not virtual time).
// These are the numbers the concurrent write-path work moves; run with
//   go test ./internal/harness -bench RealConcurrent -benchtime 1x
// for a smoke check, or higher -benchtime to measure.
func BenchmarkRealConcurrent(b *testing.B) {
	for _, cfg := range []struct {
		workload   string
		goroutines int
	}{
		{dbbench.FillRandom, 1},
		{dbbench.FillRandom, 4},
		{dbbench.ReadRandom, 4},
	} {
		b.Run(fmt.Sprintf("%s/g=%d", cfg.workload, cfg.goroutines), func(b *testing.B) {
			const ops = 100_000
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := RunRealConcurrent(policy.LevelDB, cfg.workload, ops, 1024, cfg.goroutines, 42)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.OpsPerSec, "ops/sec")
			}
		})
	}
}
