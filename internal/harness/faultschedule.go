package harness

// Randomized fault-schedule explorer.
//
// A FaultSchedule is one seeded robustness experiment: a NobLSM store
// is driven through a write-heavy workload while the vfs fault plane
// injects survivable faults (transient read/write/sync errors, short
// and torn WAL appends), optionally followed by at-rest bit rot of a
// live compaction successor whose shadow predecessors are still
// retained, or by a power cut. The schedule then validates the two
// invariants the robustness work claims:
//
//	zero acked-write loss   every Put that returned nil is served with
//	                        exactly its last acknowledged value (after
//	                        a crash, modulo the WAL-tail window that
//	                        the recovery contract already allows);
//	full read availability  every Get succeeds — transient faults are
//	                        retried, corrupt successors are healed from
//	                        their retained predecessors, never surfaced.
//
// Validation order matters. The corruption scenario scrubs (and so
// heals) immediately after the bit flip, while the repair window is
// provably open: point Gets would do seek accounting and could
// trigger a compaction that reshapes the damaged region first, after
// which the engine correctly refuses the now-unsound rollback. Then
// point Gets run with the fault plane still armed (transient-retry
// behaviour fires here), then a second scrub and an end-to-end
// iterator scan with the plane quiesced (the iterator has no retry
// wrapper, and the scrub directly precedes it so any remaining
// corruption has been healed or surfaced). Crashes are final-phase
// only and the plane is disarmed around Open: recovery hardening is
// the crash-point sweep's subject, not this explorer's.

import (
	"fmt"
	"math/rand"

	"noblsm/internal/dbbench"
	"noblsm/internal/engine"
	"noblsm/internal/ext4"
	"noblsm/internal/obs"
	"noblsm/internal/policy"
	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
	"noblsm/internal/vfs"
)

// FaultSchedule is one seeded fault-injection experiment.
type FaultSchedule struct {
	Seed      int64
	Ops       int64
	ValueSize int
	Rules     []vfs.Rule
	// Corrupt flips a bit, after the workload, in a live successor
	// table whose repair plan is applicable — the predecessor-repair
	// scenario. Mutually exclusive with Crash: an unhealed corruption
	// carried across a crash is unrecoverable by design (the repair
	// plans are volatile), so one schedule explores one or the other.
	Corrupt bool
	// Crash power-cuts the store after the workload and validates the
	// recovered state under the WAL-tail window contract.
	Crash bool
}

// FaultReport summarizes one schedule run.
type FaultReport struct {
	Schedule    FaultSchedule
	Injected    int64 // faults the plane actually fired
	Healed      int64 // reads served via predecessor rollback
	Quarantined int64 // corrupt successors renamed .corrupt
	ReadOnly    bool  // a permanent background error occurred
	CorruptedAt uint64
}

func (r FaultReport) String() string {
	return fmt.Sprintf("seed=%d ops=%d rules=%d injected=%d healed=%d quarantined=%d corrupt=%v(target=%06d) crash=%v readonly=%v",
		r.Schedule.Seed, r.Schedule.Ops, len(r.Schedule.Rules), r.Injected,
		r.Healed, r.Quarantined, r.Schedule.Corrupt, r.CorruptedAt, r.Schedule.Crash, r.ReadOnly)
}

// NewFaultSchedule derives a schedule from its seed: a random subset
// of the survivable fault pool plus one of the three final phases
// (none / at-rest successor corruption / power cut).
func NewFaultSchedule(seed int64) FaultSchedule {
	rng := rand.New(rand.NewSource(seed))
	s := FaultSchedule{
		Seed:      seed,
		Ops:       1200 + rng.Int63n(800),
		ValueSize: 256,
	}
	switch rng.Intn(3) {
	case 0:
		s.Corrupt = true
		// The corruption scenario needs several major compactions'
		// worth of data so a healable plan exists when it fires.
		s.Ops += 1200
	case 1:
		s.Crash = true
	}

	// The survivable pool. Everything is bounded (Count) so a
	// schedule's fault budget cannot outlast the retry budgets of the
	// paths it exercises, and transient so the background-error
	// machine retries instead of going read-only.
	pool := []func() vfs.Rule{
		func() vfs.Rule {
			return vfs.Rule{Op: vfs.OpRead, Kind: vfs.KindError, Transient: true,
				P: 0.002 + 0.01*rng.Float64(), Count: 1 + rng.Intn(20)}
		},
		func() vfs.Rule {
			return vfs.Rule{Class: vfs.ClassTable, Op: vfs.OpWrite, Kind: vfs.KindError,
				Transient: true, P: 0.001 + 0.004*rng.Float64(), Count: 1 + rng.Intn(8)}
		},
		func() vfs.Rule {
			return vfs.Rule{Class: vfs.ClassWAL, Op: vfs.OpWrite, Kind: vfs.KindError,
				Transient: true, P: 0.002 + 0.004*rng.Float64(), Count: 1 + rng.Intn(4)}
		},
		func() vfs.Rule {
			return vfs.Rule{Class: vfs.ClassWAL, Op: vfs.OpWrite, Kind: vfs.KindShortWrite,
				Transient: true, P: 0.004, Count: 1 + rng.Intn(3)}
		},
		func() vfs.Rule {
			return vfs.Rule{Class: vfs.ClassWAL, Op: vfs.OpWrite, Kind: vfs.KindTornWrite,
				Transient: true, P: 0.004, Count: 1 + rng.Intn(3)}
		},
		func() vfs.Rule {
			return vfs.Rule{Op: vfs.OpSync, Kind: vfs.KindError, Transient: true,
				P: 0.01 + 0.02*rng.Float64(), Count: 1 + rng.Intn(4)}
		},
		func() vfs.Rule {
			return vfs.Rule{Class: vfs.ClassManifest, Op: vfs.OpWrite, Kind: vfs.KindError,
				Transient: true, P: 0.004, Count: 1 + rng.Intn(2)}
		},
	}
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		s.Rules = append(s.Rules, pool[rng.Intn(len(pool))]())
	}
	return s
}

// Run executes the schedule and returns its report; a non-nil error is
// an invariant violation (acked-write loss, read unavailability, or a
// corrupt scan).
func (s FaultSchedule) Run() (rep FaultReport, err error) {
	rep = FaultReport{Schedule: s}
	rng := rand.New(rand.NewSource(s.Seed ^ 0x5eed))

	base := ScaledOptions(s.Ops, s.ValueSize, PaperTable64MB)
	// The journal commit cadence must track the scaled poll interval
	// (the NewStore contract): with a slower journal, far more than the
	// WAL-tail window is volatile at a power cut.
	commit := base.PollInterval
	if s.Corrupt {
		// Keep every compaction dependency unresolved so shadow
		// predecessors stay retained for the repair.
		base.PollInterval = vclock.Duration(1) << 50
	}
	opts, err := policy.Options(policy.NobLSM, base)
	if err != nil {
		return rep, err
	}
	reg := obs.NewRegistry()
	opts.Metrics = reg
	dev := ssd.New(ScaledDevice(base))
	fsCfg := ext4.DefaultConfig()
	fsCfg.CommitInterval = commit
	fs := ext4.New(fsCfg, dev)
	ffs, ctl := vfs.NewFaultFS(fs, s.Seed)
	// Snapshot the observability counters on every exit path so a
	// failing schedule still reports what actually happened.
	defer func() {
		rep.Injected = ctl.Stats().Injected
		rep.Healed = reg.Counter("engine.reads_healed").Value()
		rep.Quarantined = reg.Counter("engine.tables_quarantined").Value()
	}()

	ctl.SetEnabled(false)
	tl := vclock.NewTimeline(0)
	db, err := engine.Open(tl, ffs, opts)
	if err != nil {
		return rep, fmt.Errorf("open: %w", err)
	}
	for _, r := range s.Rules {
		ctl.AddRule(r)
	}
	ctl.SetEnabled(true)

	// Workload: fillrandom with rounds (latest[k] = last acked round)
	// and a sprinkling of mid-fault point reads.
	gen := dbbench.NewGenerator(dbbench.FillRandom, s.Ops, s.Seed)
	latest := map[int64]int{}
	writeOrder := map[int64]int64{}
	var order []int64
	var buf []byte
	for i := int64(0); i < s.Ops; i++ {
		k, done := gen.Next()
		if done {
			break
		}
		round := latest[k] + 1
		buf = dbbench.Value(buf, k, round, s.ValueSize)
		if err := db.Put(tl, dbbench.Key(k), buf); err != nil {
			// Not acked: the model must not expect it. Injected WAL
			// failures and read-only mode land here.
			continue
		}
		if latest[k] == 0 {
			order = append(order, k)
		}
		latest[k] = round
		writeOrder[k] = i
		if i%7 == 3 && len(order) > 0 {
			// Read availability under an armed fault plane.
			pk := order[rng.Intn(len(order))]
			got, err := db.Get(tl, dbbench.Key(pk))
			if err != nil {
				return rep, fmt.Errorf("mid-workload Get(%d): %w", pk, err)
			}
			buf = dbbench.Value(buf, pk, latest[pk], s.ValueSize)
			if string(got) != string(buf) {
				return rep, fmt.Errorf("mid-workload Get(%d): stale or wrong value", pk)
			}
		}
	}
	rep.ReadOnly = db.ReadOnly()

	// Final phase A: at-rest bit rot of a healable successor, detected
	// and repaired by an immediate scrub. The scrub must come before
	// any point Gets: the repair window is only guaranteed open right
	// now, while the region still matches the shadow predecessors — a
	// read-triggered (seek) compaction can slide a new table into the
	// predecessors' key range, after which the engine correctly
	// surfaces the corruption instead of healing it. Scrub reads do no
	// seek accounting, so nothing closes the window before the corrupt
	// block is reached.
	if s.Corrupt && !db.ReadOnly() {
		if cands := db.HealableSuccessors(); len(cands) > 0 {
			num := cands[rng.Intn(len(cands))]
			name := engine.TableName(num)
			if size, err := fs.Size(tl, name); err == nil && size > 0 {
				// Land in the data-block region (the index and footer
				// sit at the tail).
				off := int64(float64(size) * (0.1 + 0.5*rng.Float64()))
				if err := fs.CorruptAt(name, off); err != nil {
					return rep, err
				}
				rep.CorruptedAt = num
				// Drop the cached clean copies so reads see the rotten
				// medium, then let the scrub's read path trip the CRC
				// check and heal from the retained predecessors. The
				// plane is quiesced for this scrub: a whole-store scan
				// restarts on every transient fault, so probabilistic
				// read errors could outlast its retry budget — injected
				// transients are the point-Get pass's subject, at-rest
				// rot is this one's.
				db.EvictTable(tl, num)
				ctl.SetEnabled(false)
				if _, err := db.ScrubTables(tl); err != nil {
					return rep, fmt.Errorf("scrub after corruption: %w", err)
				}
				ctl.SetEnabled(true)
			}
		}
	}

	validate := func(db *engine.DB, afterCrash bool) error {
		tailOps := 3 * base.WriteBufferSize / int64(s.ValueSize)
		for _, k := range order {
			got, err := db.Get(tl, dbbench.Key(k))
			if err != nil {
				if afterCrash && err == engine.ErrNotFound && writeOrder[k] >= s.Ops-tailOps {
					continue // allowed WAL-tail loss
				}
				return fmt.Errorf("Get(%d): %w", k, err)
			}
			if afterCrash {
				// Any acked round is acceptable; rounds newer than the
				// tail window must not have rolled back further.
				ok := false
				for r := 1; r <= latest[k]; r++ {
					buf = dbbench.Value(buf, k, r, s.ValueSize)
					if string(got) == string(buf) {
						ok = true
						break
					}
				}
				if !ok {
					return fmt.Errorf("Get(%d): value never acked", k)
				}
				continue
			}
			buf = dbbench.Value(buf, k, latest[k], s.ValueSize)
			if string(got) != string(buf) {
				return fmt.Errorf("Get(%d): lost round %d", k, latest[k])
			}
		}
		return nil
	}

	if s.Crash {
		// Final phase B: power cut. The plane is disarmed around
		// recovery — crash hardening is the crash-point sweep's job.
		ctl.SetEnabled(false)
		fs.Crash(tl.Now())
		db2, err := engine.Open(tl, ffs, opts)
		if err != nil {
			return rep, fmt.Errorf("recovery: %w", err)
		}
		if err := validate(db2, true); err != nil {
			return rep, err
		}
		return rep, db2.Close(tl)
	}

	// Pass 1: point reads with the plane still armed — self-healing
	// reads and transient-retry behaviour fire here.
	if err := validate(db, false); err != nil {
		return rep, err
	}
	// Passes 2+3: scrub, then an end-to-end scan, plane quiesced.
	ctl.SetEnabled(false)
	if _, err := db.ScrubTables(tl); err != nil {
		return rep, fmt.Errorf("scrub: %w", err)
	}
	it, err := db.NewIterator(tl)
	if err != nil {
		return rep, err
	}
	seen := 0
	for it.First(); it.Valid(); it.Next() {
		seen++
	}
	if err := it.Err(); err != nil {
		return rep, fmt.Errorf("scan: %w", err)
	}
	if seen != len(order) {
		return rep, fmt.Errorf("scan found %d keys, want %d", seen, len(order))
	}

	if err := db.Close(tl); err != nil && !rep.ReadOnly {
		return rep, fmt.Errorf("close: %w", err)
	}
	return rep, nil
}
