package harness

import (
	"fmt"

	"noblsm/internal/dbbench"
	"noblsm/internal/engine"
	"noblsm/internal/ext4"
	"noblsm/internal/obs"
	"noblsm/internal/policy"
	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
	"noblsm/internal/ycsb"
)

// ---------------------------------------------------------------
// Figure 2a: the cost of write strategies on an SSD (no LSM-tree).
// ---------------------------------------------------------------

// StrategyRow is one bar of Figure 2a.
type StrategyRow struct {
	Strategy string // Async, Direct, Sync
	Total    int64  // bytes written
	Elapsed  vclock.Duration
}

// RunFig2a writes total bytes in fileBytes-sized files with the three
// strategies of Section 3: Async (buffered writes, journal commits in
// the background), Direct (O_DIRECT device writes), and Sync (buffered
// write + fsync per file).
func RunFig2a(total, fileBytes int64) []StrategyRow {
	files := int(total / fileBytes)
	payload := make([]byte, fileBytes)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	var rows []StrategyRow

	// Async: page-cache writes; asynchronous commits absorb the I/O.
	{
		fs := ext4.New(ext4.DefaultConfig(), ssd.New(ssd.PM883()))
		tl := vclock.NewTimeline(0)
		start := tl.Now()
		for i := 0; i < files; i++ {
			f, _ := fs.Create(tl, fmt.Sprintf("async-%05d", i))
			f.Append(tl, payload)
			f.Close(tl)
		}
		rows = append(rows, StrategyRow{"Async", total, tl.Now().Sub(start)})
	}
	// Direct: every write goes straight to the device and the caller
	// waits for it (O_DIRECT), no barriers.
	{
		dev := ssd.New(ssd.PM883())
		tl := vclock.NewTimeline(0)
		start := tl.Now()
		for i := 0; i < files; i++ {
			done := dev.Write(tl.Now(), fileBytes)
			tl.WaitUntil(done)
		}
		rows = append(rows, StrategyRow{"Direct", total, tl.Now().Sub(start)})
	}
	// Sync: buffered write then fsync per file — device transfer plus
	// a journal commit and flush barrier each time.
	{
		fs := ext4.New(ext4.DefaultConfig(), ssd.New(ssd.PM883()))
		tl := vclock.NewTimeline(0)
		start := tl.Now()
		for i := 0; i < files; i++ {
			f, _ := fs.Create(tl, fmt.Sprintf("sync-%05d", i))
			f.Append(tl, payload)
			f.Sync(tl)
			f.Close(tl)
		}
		rows = append(rows, StrategyRow{"Sync", total, tl.Now().Sub(start)})
	}
	return rows
}

// ---------------------------------------------------------------
// Figure 2b: SSTable size and syncs on LevelDB.
// ---------------------------------------------------------------

// Fig2bRow is one bar of Figure 2b.
type Fig2bRow struct {
	Workload   string
	PaperTable int64 // the paper-scale SSTable size this models
	Synced     bool
	Elapsed    vclock.Duration
	Result     Result
}

// RunFig2b measures fillrandom and overwrite on LevelDB with syncs
// enabled vs disabled, at both SSTable sizes of Section 3.
func RunFig2b(ops int64, valueSize, threads int, seed int64) ([]Fig2bRow, error) {
	var rows []Fig2bRow
	for _, tableBytes := range []int64{PaperTable2MB, PaperTable64MB} {
		for _, synced := range []bool{true, false} {
			v := policy.LevelDB
			if !synced {
				v = policy.Volatile
			}
			tl := vclock.NewTimeline(0)
			st, err := NewStore(tl, v, ScaledOptions(ops, valueSize, tableBytes))
			if err != nil {
				return nil, err
			}
			now := tl.Now()
			for _, w := range []string{dbbench.FillRandom, dbbench.Overwrite} {
				st.ResetCounters()
				res, err := RunDBBench(st, now, w, ops, valueSize, threads, seed)
				if err != nil {
					return nil, err
				}
				now = now.Add(res.Elapsed)
				rows = append(rows, Fig2bRow{
					Workload: w, PaperTable: tableBytes, Synced: synced,
					Elapsed: res.Elapsed, Result: res,
				})
			}
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------
// Figure 4 + Table 1: db_bench across the seven systems.
// ---------------------------------------------------------------

// Fig4Row is one point of Figures 4a–4d (and, for fillrandom at 1 KB,
// a row of Table 1).
type Fig4Row struct {
	Variant   policy.Variant
	Workload  string
	ValueSize int
	Result    Result
}

// RunFig4 runs the db_bench sequence — fillrandom, overwrite, readseq,
// readrandom — for each system at one value size, mirroring Section
// 5.2 (10 M requests in the paper; ops here is the scaled count).
func RunFig4(variants []policy.Variant, ops int64, valueSize, threads int, seed int64) ([]Fig4Row, error) {
	var rows []Fig4Row
	for _, v := range variants {
		tl := vclock.NewTimeline(0)
		st, err := NewStore(tl, v, ScaledOptions(ops, valueSize, PaperTable64MB))
		if err != nil {
			return nil, err
		}
		// The phases run back-to-back on one store, like chained
		// db_bench runs; the clock carries over so compaction debt
		// from a phase affects the next, as on real hardware.
		now := tl.Now()
		for _, w := range dbbench.Workloads {
			st.ResetCounters()
			res, err := RunDBBench(st, now, w, ops, valueSize, threads, seed)
			if err != nil {
				return nil, err
			}
			now = now.Add(res.Elapsed)
			rows = append(rows, Fig4Row{Variant: v, Workload: w, ValueSize: valueSize, Result: res})
		}
	}
	return rows, nil
}

// Table1Row reproduces Table 1: syncs and data synced during
// fillrandom with 1 KB values.
type Table1Row struct {
	Variant     policy.Variant
	Syncs       int64
	BytesSynced int64
}

// RunTable1 collects sync counters for every system on fillrandom.
func RunTable1(variants []policy.Variant, ops int64, threads int, seed int64) ([]Table1Row, error) {
	var rows []Table1Row
	for _, v := range variants {
		tl := vclock.NewTimeline(0)
		st, err := NewStore(tl, v, ScaledOptions(ops, 1024, PaperTable64MB))
		if err != nil {
			return nil, err
		}
		st.ResetCounters()
		res, err := RunDBBench(st, tl.Now(), dbbench.FillRandom, ops, 1024, threads, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{Variant: v, Syncs: res.Syncs, BytesSynced: res.BytesSynced})
	}
	return rows, nil
}

// ---------------------------------------------------------------
// Figure 5: YCSB across the seven systems.
// ---------------------------------------------------------------

// Fig5Row is one bar of Figure 5a/5b.
type Fig5Row struct {
	Variant policy.Variant
	Phase   string // Load-A, A, B, C, F, D, Load-E, E
	Threads int
	Result  Result
}

// YCSBPhases is the paper's recommended execution order.
var YCSBPhases = []string{"Load-A", "A", "B", "C", "F", "D", "Load-E", "E"}

// RunFig5 runs the YCSB sequence for one system. records scales the
// paper's 50 M-record loads; ops scales the 10 M-request phases.
func RunFig5(v policy.Variant, records, ops int64, valueSize, threads int, seed int64) ([]Fig5Row, error) {
	return RunFig5Observed(v, records, ops, valueSize, threads, seed, obs.Sink{}, nil)
}

// RunFig5Observed is RunFig5 with an observability sink threaded into
// every store the sequence provisions. The YCSB order rebuilds the
// store at each Load phase, so onStore (when non-nil) is invoked with
// each fresh store — a live exposition endpoint repoints at it.
func RunFig5Observed(v policy.Variant, records, ops int64, valueSize, threads int, seed int64, sink obs.Sink, onStore func(*Store)) ([]Fig5Row, error) {
	var rows []Fig5Row
	run := func(st *Store, now vclock.Time, phase string) (vclock.Time, error) {
		st.ResetCounters()
		var res Result
		var err error
		switch phase {
		case "Load-A", "Load-E":
			res, err = RunYCSBLoad(st, now, phase, records, valueSize, threads, seed)
		default:
			var wl ycsb.Workload
			wl, err = ycsb.ByName(phase)
			if err == nil {
				res, err = RunYCSB(st, now, wl, records, ops, valueSize, threads, seed)
			}
		}
		if err != nil {
			return now, err
		}
		rows = append(rows, Fig5Row{Variant: v, Phase: phase, Threads: threads, Result: res})
		return now.Add(res.Elapsed), nil
	}

	// Load-A clears the data set: fresh store.
	tl := vclock.NewTimeline(0)
	base := ScaledOptions(records, valueSize, PaperTable64MB)
	st, err := NewStoreObserved(tl, v, base, base.PollInterval, sink)
	if err != nil {
		return nil, err
	}
	if onStore != nil {
		onStore(st)
	}
	now := tl.Now()
	for _, phase := range YCSBPhases {
		if phase == "Load-E" {
			// Load-E clears the data set again.
			tl = vclock.NewTimeline(now)
			st, err = NewStoreObserved(tl, v, base, base.PollInterval, sink)
			if err != nil {
				return nil, err
			}
			if onStore != nil {
				onStore(st)
			}
			now = tl.Now()
		}
		if now, err = run(st, now, phase); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------
// Section 5.2 consistency test: sudden power-off.
// ---------------------------------------------------------------

// ConsistencyResult reports one power-cut trial.
type ConsistencyResult struct {
	Variant policy.Variant
	// Recovered is true if the store reopened after the cut.
	Recovered bool
	// SSTablesIntact is true if every table the recovered manifest
	// references opened and iterated without corruption.
	SSTablesIntact bool
	// KeysSurvived and KeysLost count the fill keys after recovery;
	// losses must be confined to the unsynced WAL tail.
	KeysSurvived, KeysLost int64
	// WALRecordsDropped counts broken log records observed by
	// recovery (the paper: "some ones in the logs are broken").
	WALRecordsDropped int
}

// RunConsistencyTest emulates `halt -f -p -n` during fillrandom
// (Section 5.2): it cuts power mid-run, reopens, and verifies that KV
// pairs stored in SSTables are intact.
func RunConsistencyTest(v policy.Variant, ops int64, valueSize int, cutAfter int64, seed int64) (ConsistencyResult, error) {
	tl := vclock.NewTimeline(0)
	base := ScaledOptions(ops, valueSize, PaperTable64MB)
	st, err := NewStore(tl, v, base)
	if err != nil {
		return ConsistencyResult{}, err
	}
	gen := dbbench.NewGenerator(dbbench.FillRandom, ops, seed)
	written := make(map[int64]bool)
	var buf []byte
	for i := int64(0); i < cutAfter; i++ {
		k, done := gen.Next()
		if done {
			break
		}
		buf = dbbench.Value(buf, k, 0, valueSize)
		if err := st.DB.Put(tl, dbbench.Key(k), buf); err != nil {
			return ConsistencyResult{}, err
		}
		written[k] = true
	}

	st.FS.Crash(tl.Now())

	res := ConsistencyResult{Variant: v}
	opts, err := policy.Options(v, base)
	if err != nil {
		return res, err
	}
	db2, err := engine.Open(tl, st.FS, opts)
	if err != nil {
		return res, nil // unrecoverable: Recovered stays false
	}
	res.Recovered = true
	res.SSTablesIntact = true
	res.WALRecordsDropped = db2.WALDropsAtRecovery()
	// Verify every surviving key's value; corruption in a referenced
	// SSTable would surface as a wrong value or an iterator error.
	for k := range written {
		v, err := db2.Get(tl, dbbench.Key(k))
		if err != nil {
			res.KeysLost++
			continue
		}
		buf = dbbench.Value(buf, k, 0, valueSize)
		if string(v) != string(buf) {
			res.SSTablesIntact = false
		}
		res.KeysSurvived++
	}
	it, err := db2.NewIterator(tl)
	if err != nil {
		res.SSTablesIntact = false
	} else {
		for it.First(); it.Valid(); it.Next() {
		}
		if it.Err() != nil {
			res.SSTablesIntact = false
		}
	}
	return res, nil
}
