package harness

import (
	"errors"
	"fmt"

	"noblsm/internal/dbbench"
	"noblsm/internal/engine"
	"noblsm/internal/histogram"
	"noblsm/internal/vclock"
)

// RunDBBench executes one db_bench workload (Section 5.2) on the
// store: fillseq/fillrandom write, overwrite updates, readseq iterates
// every KV pair once, readrandom reads random keys. ops is the total
// request count across threads; the key space is numRecords (db_bench
// uses ops == numRecords for fills).
func RunDBBench(s *Store, start vclock.Time, workload string, ops int64, valueSize, threads int, seed int64) (Result, error) {
	gens := make([]*dbbench.Generator, threads)
	per := ops / int64(threads)
	for i := range gens {
		gens[i] = dbbench.NewGenerator(workload, per, seed+int64(i)*7919)
	}

	var elapsed vclock.Duration
	var hist histogram.Histogram
	var err error
	switch workload {
	case dbbench.FillSeq, dbbench.FillRandom, dbbench.Overwrite:
		round := 0
		if workload == dbbench.Overwrite {
			round = 1
		}
		var bufs = make([][]byte, threads)
		elapsed, hist, err = drive(start, threads, ops, func(c int, tl *vclock.Timeline, _ int64) error {
			k, _ := gens[c].Next()
			bufs[c] = dbbench.Value(bufs[c], k, round, valueSize)
			return s.DB.Put(tl, dbbench.Key(k), bufs[c])
		})
	case dbbench.ReadRandom:
		elapsed, hist, err = drive(start, threads, ops, func(c int, tl *vclock.Timeline, _ int64) error {
			k, _ := gens[c].Next()
			if _, err := s.DB.Get(tl, dbbench.Key(k)); err != nil && !errors.Is(err, engine.ErrNotFound) {
				return err
			}
			return nil
		})
	case dbbench.ReadSeq:
		// Sequential iteration of all KV pairs, split across threads
		// (each thread scans its share of the key space).
		elapsed, err = driveReadSeq(s, start, threads, ops)
	default:
		return Result{}, fmt.Errorf("harness: unknown db_bench workload %q", workload)
	}
	if err != nil {
		return Result{}, err
	}
	res := s.finishResult(workload, threads, ops, elapsed)
	res.Latency = hist
	return res, nil
}

// driveReadSeq iterates sequentially, db_bench style: each thread
// scans its per-thread share of entries from the start of the store.
func driveReadSeq(s *Store, start vclock.Time, threads int, ops int64) (vclock.Duration, error) {
	per := ops / int64(threads)
	var end vclock.Time
	for t := 0; t < threads; t++ {
		tl := vclock.NewTimeline(start)
		it, err := s.DB.NewIterator(tl)
		if err != nil {
			return 0, err
		}
		n := int64(0)
		for it.First(); it.Valid() && n < per; it.Next() {
			n++
		}
		if err := it.Err(); err != nil {
			return 0, err
		}
		if tl.Now() > end {
			end = tl.Now()
		}
	}
	return end.Sub(start), nil
}
