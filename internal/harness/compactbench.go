package harness

import (
	"sync"
	"time"

	"noblsm/internal/dbbench"
	"noblsm/internal/policy"
	"noblsm/internal/vclock"
)

// CompactionBenchResult is one wall-clock measurement of the
// compaction-bound overwrite workload (see RunRealCompactionBound).
type CompactionBenchResult struct {
	Workload        string  `json:"workload"`
	Goroutines      int     `json:"goroutines"`
	Subcompactions  int     `json:"subcompactions"`
	Ops             int64   `json:"ops"`
	ElapsedSec      float64 `json:"elapsed_sec"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	MajorCompaction int64   `json:"major_compactions"`
	// CompactionWriteMBps is major+minor compaction output volume over
	// wall-clock time — the engine's compaction throughput on this run.
	CompactionBytesWritten int64   `json:"compaction_bytes_written"`
	CompactionWriteMBps    float64 `json:"compaction_write_mbps"`
}

// RunRealCompactionBound measures wall-clock overwrite throughput in a
// deliberately compaction-bound configuration: the paper's 2 MiB
// SSTable scaling shrinks tables until nearly every flush triggers a
// cascade of majors, so engine CPU is dominated by the compaction path
// rather than the foreground write path. An unmeasured fillrandom
// phase (value epoch 0) builds the leveled structure; the measured
// overwrite phase (epoch 1) then rewrites random keys across g
// goroutines. subcompactions configures
// Options.CompactionSubcompactions on the store.
func RunRealCompactionBound(v policy.Variant, ops int64, valueSize, goroutines, subcompactions int, seed int64) (CompactionBenchResult, error) {
	tl := vclock.NewTimeline(0)
	opts := ScaledOptions(ops, valueSize, PaperTable2MB)
	opts.AsyncCompaction = true
	opts.CompactionSubcompactions = subcompactions
	st, err := NewStore(tl, v, opts)
	if err != nil {
		return CompactionBenchResult{}, err
	}
	defer st.DB.Close(tl)

	// Unmeasured pre-fill so the overwrite phase compacts against a
	// fully built tree from its first operation.
	gen := dbbench.NewGenerator(dbbench.FillRandom, ops, seed)
	var buf []byte
	for {
		k, done := gen.Next()
		if done {
			break
		}
		buf = dbbench.Value(buf, k, 0, valueSize)
		if err := st.DB.Put(tl, dbbench.Key(k), buf); err != nil {
			return CompactionBenchResult{}, err
		}
	}
	statsBefore := st.DB.Stats()

	per := ops / int64(goroutines)
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	start := time.Now()
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			ctl := vclock.NewTimeline(tl.Now())
			gen := dbbench.NewGenerator(dbbench.Overwrite, per, seed+int64(gi)*7919)
			var buf []byte
			for {
				k, done := gen.Next()
				if done {
					return
				}
				buf = dbbench.Value(buf, k, 1, valueSize)
				if err := st.DB.Put(ctl, dbbench.Key(k), buf); err != nil {
					errs[gi] = err
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return CompactionBenchResult{}, err
		}
	}

	stats := st.DB.Stats()
	total := per * int64(goroutines)
	res := CompactionBenchResult{
		Workload:               dbbench.Overwrite,
		Goroutines:             goroutines,
		Subcompactions:         subcompactions,
		Ops:                    total,
		ElapsedSec:             elapsed.Seconds(),
		MajorCompaction:        stats.MajorCompactions - statsBefore.MajorCompactions,
		CompactionBytesWritten: stats.CompactionBytesWritten - statsBefore.CompactionBytesWritten,
	}
	if elapsed > 0 {
		res.OpsPerSec = float64(total) / elapsed.Seconds()
		res.CompactionWriteMBps = float64(res.CompactionBytesWritten) / (1 << 20) / elapsed.Seconds()
	}
	return res, nil
}
