package harness

import (
	"errors"
	"math/rand"

	"noblsm/internal/dbbench"
	"noblsm/internal/engine"
	"noblsm/internal/policy"
	"noblsm/internal/sstable"
	"noblsm/internal/vclock"
	"noblsm/internal/version"
)

// ReadBenchStep is one measured phase of the read-path benchmark, in
// virtual time.
type ReadBenchStep struct {
	Ops         int64   `json:"ops"`
	MicrosPerOp float64 `json:"micros_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

// ReadBenchConfig summarizes the read-path features one side of the
// benchmark ran with.
type ReadBenchConfig struct {
	Compression         string  `json:"compression"`
	CompressedCacheKB   int64   `json:"compressed_cache_kb"`
	ReadaheadBlocks     int     `json:"readahead_blocks"`
	BloomBitsL0         int     `json:"bloom_bits_l0"`
	BloomBitsBottom     int     `json:"bloom_bits_bottom"`
	BlockCacheKB        int64   `json:"block_cache_kb"`
	BlockSize           int     `json:"block_size"`
	TableBytes          int64   `json:"table_bytes"`
	CacheBlockHitRatio  float64 `json:"cache_block_hit_ratio"`
	CacheCBlockHitRatio float64 `json:"cache_cblock_hit_ratio"`
}

// ReadBenchSide is one full pass (fill + all read phases) of a store
// in one configuration.
type ReadBenchSide struct {
	Config         ReadBenchConfig `json:"config"`
	Fill           ReadBenchStep   `json:"fill"`
	ReadRandomHot  ReadBenchStep   `json:"readrandom_hot"`
	ReadRandomCold ReadBenchStep   `json:"readrandom_cold"`
	ScanCold       ReadBenchStep   `json:"scan_cold"`
	GetSingle      ReadBenchStep   `json:"get_single"`
	MultiGet16     ReadBenchStep   `json:"multiget16"`
	NotFound       int64           `json:"not_found"`
}

// ReadBenchResult compares the read path with its PR 7 features off
// (baseline) and on (tuned) over the identical workload, and reports
// the headline speedups the acceptance gate checks.
type ReadBenchResult struct {
	Variant   string        `json:"variant"`
	Ops       int64         `json:"ops"`
	ValueSize int           `json:"value_size"`
	ReadOps   int64         `json:"read_ops"`
	Batch     int           `json:"batch"`
	Baseline  ReadBenchSide `json:"baseline"`
	Tuned     ReadBenchSide `json:"tuned"`
	// Speedups are baseline µs/op over tuned µs/op (higher is
	// better); MultiGetVsSingle compares the tuned store's per-key
	// cost of batched vs single lookups over the same key sequence.
	SpeedupReadRandomCold float64 `json:"speedup_readrandom_cold"`
	SpeedupScanCold       float64 `json:"speedup_scan_cold"`
	MultiGetVsSingle      float64 `json:"multiget_vs_single"`
}

// readBenchOptions derives the benchmark geometry. Both sides share
// it; tuned additionally switches the PR 7 read-path features on.
func readBenchOptions(ops int64, valueSize int, tuned bool) engine.Options {
	o := ScaledOptions(ops, valueSize, PaperTable64MB)
	// 8 KiB blocks, twice LevelDB's default: compression and readahead
	// are per-block mechanisms, and db_bench's own read benchmarks run
	// larger blocks for the same reason.
	o.BlockSize = 8192
	if tuned {
		o.Compression = sstable.FastCompression
		// Cold levels compress harder: bottom-level blocks are written
		// once per major compaction and read many times.
		byLevel := make([]sstable.Compression, version.NumLevels)
		for l := range byLevel {
			if l < 2 {
				byLevel[l] = sstable.FastCompression
			} else {
				byLevel[l] = sstable.MaxCompression
			}
		}
		o.CompressionByLevel = byLevel
		o.CompressedBlockCacheBytes = 2 * o.BlockCacheBytes
		o.IterReadaheadBlocks = 16
		// More filter bits where every lookup probes (L0/L1), fewer at
		// the bottom where the bulk of the keys (and filter bytes) live.
		o.BloomBitsPerKeyByLevel = []int{14, 12, 10, 10, 8, 8, 6}[:version.NumLevels]
	}
	return o
}

// RunReadBench measures the read path with the PR 7 features off and
// on: fill, warm and cold random reads, a cold full scan, and batched
// (MultiGet, batch=16) versus single lookups over the same keys. All
// timings are virtual; "cold" means after a power cut that empties the
// page cache with every byte previously made durable, so the two
// sides serve identical data and differ only in read-path mechanics.
func RunReadBench(v policy.Variant, ops int64, valueSize int, seed int64) (ReadBenchResult, error) {
	res := ReadBenchResult{
		Variant:   string(v),
		Ops:       ops,
		ValueSize: valueSize,
		ReadOps:   ops / 20,
		Batch:     16,
	}
	if res.ReadOps < 256 {
		res.ReadOps = 256
	}
	var err error
	res.Baseline, err = runReadBenchSide(v, ops, valueSize, res.ReadOps, seed, false)
	if err != nil {
		return res, err
	}
	res.Tuned, err = runReadBenchSide(v, ops, valueSize, res.ReadOps, seed, true)
	if err != nil {
		return res, err
	}
	if t := res.Tuned.ReadRandomCold.MicrosPerOp; t > 0 {
		res.SpeedupReadRandomCold = res.Baseline.ReadRandomCold.MicrosPerOp / t
	}
	if t := res.Tuned.ScanCold.MicrosPerOp; t > 0 {
		res.SpeedupScanCold = res.Baseline.ScanCold.MicrosPerOp / t
	}
	if t := res.Tuned.MultiGet16.MicrosPerOp; t > 0 {
		res.MultiGetVsSingle = res.Tuned.GetSingle.MicrosPerOp / t
	}
	return res, nil
}

func runReadBenchSide(v policy.Variant, ops int64, valueSize int, readOps, seed int64, tuned bool) (ReadBenchSide, error) {
	tl := vclock.NewTimeline(0)
	base := readBenchOptions(ops, valueSize, tuned)
	st, err := NewStore(tl, v, base)
	if err != nil {
		return ReadBenchSide{}, err
	}
	db := st.DB
	defer func() { db.Close(tl) }()

	side := ReadBenchSide{Config: ReadBenchConfig{
		Compression:     st.Opts.Compression.String(),
		ReadaheadBlocks: st.Opts.IterReadaheadBlocks,
		BloomBitsL0:     st.Opts.BloomBitsPerKey,
		BloomBitsBottom: st.Opts.BloomBitsPerKey,
		BlockCacheKB:    st.Opts.BlockCacheBytes >> 10,
		BlockSize:       st.Opts.BlockSize,
		TableBytes:      st.Opts.TableFileSize,
	}}
	side.Config.CompressedCacheKB = st.Opts.CompressedBlockCacheBytes >> 10
	if n := len(st.Opts.BloomBitsPerKeyByLevel); n > 0 {
		side.Config.BloomBitsL0 = st.Opts.BloomBitsPerKeyByLevel[0]
		side.Config.BloomBitsBottom = st.Opts.BloomBitsPerKeyByLevel[n-1]
	}

	step := func(n int64, run func() error) (ReadBenchStep, error) {
		start := tl.Now()
		if err := run(); err != nil {
			return ReadBenchStep{}, err
		}
		dur := tl.Now().Sub(start)
		s := ReadBenchStep{Ops: n}
		if n > 0 && dur > 0 {
			s.MicrosPerOp = float64(dur) / float64(n) / float64(vclock.Microsecond)
			s.OpsPerSec = float64(n) * float64(vclock.Second) / float64(dur)
		}
		return s, nil
	}

	// Fill with the compressible value stream (db_bench's
	// --compression_ratio=0.5 shape) so the codec has something real
	// to chew on; the figure workloads' Value stream is untouched.
	side.Fill, err = step(ops, func() error {
		gen := dbbench.NewGenerator(dbbench.FillRandom, ops, seed)
		var buf []byte
		for {
			k, done := gen.Next()
			if done {
				return nil
			}
			buf = dbbench.CompressibleValue(buf, k, 0, valueSize)
			if err := db.Put(tl, dbbench.Key(k), buf); err != nil {
				return err
			}
		}
	})
	if err != nil {
		return side, err
	}
	db.WaitBackground(tl)

	notFound := func(err error) error {
		if err == nil || errors.Is(err, engine.ErrNotFound) {
			if err != nil {
				side.NotFound++
			}
			return nil
		}
		return err
	}

	// Warm random reads: page cache fully resident, block cache live.
	side.ReadRandomHot, err = step(readOps, func() error {
		rnd := rand.New(rand.NewSource(seed + 1))
		for i := int64(0); i < readOps; i++ {
			_, err := db.Get(tl, dbbench.Key(rnd.Int63n(ops)))
			if err := notFound(err); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return side, err
	}

	// Power cut with everything durable: the page cache empties but no
	// data is lost, so both sides reopen onto identical stores and the
	// cold phases measure pure read-path mechanics.
	reopen := func() error {
		// Drain and close first: a live handle's background compactions
		// would keep mutating the store while the fresh one opens.
		db.Close(tl)
		st.FS.ForceCommit(tl)
		st.FS.Crash(tl.Now())
		db2, err := engine.Open(tl, st.FS, st.Opts)
		if err != nil {
			return err
		}
		db = db2
		return nil
	}
	if err := reopen(); err != nil {
		return side, err
	}

	// Cold random reads: every block read faults 4 KiB pages in from
	// the device; the compressed store moves fewer bytes per miss.
	side.ReadRandomCold, err = step(readOps, func() error {
		rnd := rand.New(rand.NewSource(seed + 2))
		for i := int64(0); i < readOps; i++ {
			_, err := db.Get(tl, dbbench.Key(rnd.Int63n(ops)))
			if err := notFound(err); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return side, err
	}

	// Cold full scan: sequential block access, where readahead ramps
	// its window and one device request fetches many blocks.
	if err := reopen(); err != nil {
		return side, err
	}
	var scanned int64
	side.ScanCold, err = step(1, func() error {
		it, err := db.NewIterator(tl)
		if err != nil {
			return err
		}
		for it.First(); it.Valid(); it.Next() {
			scanned++
		}
		return it.Err()
	})
	if err != nil {
		return side, err
	}
	if scanned > 0 {
		dur := side.ScanCold.MicrosPerOp // µs for the whole scan (n=1)
		side.ScanCold.Ops = scanned
		side.ScanCold.MicrosPerOp = dur / float64(scanned)
		side.ScanCold.OpsPerSec = 1e6 / side.ScanCold.MicrosPerOp
	}

	// Batched versus single lookups over the same key sequence. Both
	// phases run warm (a throwaway pass faults every page in first):
	// batching amortizes the fixed per-request cost, which is exactly
	// the term the device can't hide once data is resident, so warm is
	// where the MultiGet economics are visible rather than drowned by
	// per-block device transfers 16 distinct random keys need anyway.
	batch := 16
	keysPerPhase := (readOps / int64(batch)) * int64(batch)
	if err := reopen(); err != nil {
		return side, err
	}
	warm := func() error {
		rnd := rand.New(rand.NewSource(seed + 3))
		for i := int64(0); i < keysPerPhase; i++ {
			_, err := db.Get(tl, dbbench.Key(rnd.Int63n(ops)))
			if err != nil && !errors.Is(err, engine.ErrNotFound) {
				return err
			}
		}
		return nil
	}
	if err := warm(); err != nil {
		return side, err
	}
	db.WaitBackground(tl)
	side.GetSingle, err = step(keysPerPhase, func() error {
		rnd := rand.New(rand.NewSource(seed + 3))
		for i := int64(0); i < keysPerPhase; i++ {
			_, err := db.Get(tl, dbbench.Key(rnd.Int63n(ops)))
			if err := notFound(err); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return side, err
	}
	side.MultiGet16, err = step(keysPerPhase, func() error {
		rnd := rand.New(rand.NewSource(seed + 3))
		keys := make([][]byte, batch)
		for i := int64(0); i < keysPerPhase; i += int64(batch) {
			for j := 0; j < batch; j++ {
				keys[j] = dbbench.Key(rnd.Int63n(ops))
			}
			_, errs := db.MultiGet(tl, keys)
			for _, err := range errs {
				if err := notFound(err); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return side, err
	}

	if hits, misses := readCacheRatio(db, "cache.block"); hits+misses > 0 {
		side.Config.CacheBlockHitRatio = float64(hits) / float64(hits+misses)
	}
	if hits, misses := readCacheRatio(db, "cache.cblock"); hits+misses > 0 {
		side.Config.CacheCBlockHitRatio = float64(hits) / float64(hits+misses)
	}
	return side, nil
}

// readCacheRatio pulls a cache tier's hit/miss counters out of the
// store registry (prefix "cache.block" or "cache.cblock").
func readCacheRatio(db *engine.DB, prefix string) (hits, misses int64) {
	reg := db.Registry()
	return reg.Counter(prefix + ".hits").Value(), reg.Counter(prefix + ".misses").Value()
}
