package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"noblsm/internal/dbbench"
	"noblsm/internal/engine"
	"noblsm/internal/policy"
	"noblsm/internal/vclock"
)

// TestCrashPointSweep is the failure-injection property test behind
// the paper's Section 4.4 argument: for every crash-consistent variant
// and for many randomized power-cut points (including points chosen to
// land inside NobLSM's dependency window and across journal-commit
// boundaries), recovery must satisfy:
//
//  1. the store reopens;
//  2. every key the recovered store serves has its exact last-written
//     value (no corruption, no stale resurrection of older values
//     from shadow tables);
//  3. every key that had been written more than a WAL-tail window
//     before the cut is present;
//  4. a second crash immediately after recovery (crash during
//     recovery-repair work) is also survivable.
func TestCrashPointSweep(t *testing.T) {
	const ops = 4000
	const valueSize = 256
	rnd := rand.New(rand.NewSource(2022))
	for _, v := range []policy.Variant{policy.LevelDB, policy.NobLSM, policy.BoLT} {
		for trial := 0; trial < 8; trial++ {
			cut := int64(rnd.Intn(ops-100) + 50)
			t.Run(fmt.Sprintf("%s/cut=%d", v, cut), func(t *testing.T) {
				sweepOnce(t, v, ops, valueSize, cut, rnd.Int63())
			})
		}
	}
}

func sweepOnce(t *testing.T, v policy.Variant, ops int64, valueSize int, cut, seed int64) {
	t.Helper()
	base := ScaledOptions(ops, valueSize, PaperTable64MB)
	tl := vclock.NewTimeline(0)
	st, err := NewStore(tl, v, base)
	if err != nil {
		t.Fatal(err)
	}
	fs, db := st.FS, st.DB
	opts := st.Opts

	// latest[k] = (round) of the last write of key k, so stale reads
	// are detectable; writeTime[k] tracks WAL-tail eligibility.
	gen := dbbench.NewGenerator(dbbench.FillRandom, ops, seed)
	latest := map[int64]int{}
	writeOrder := map[int64]int64{}
	var buf []byte
	for i := int64(0); i < cut; i++ {
		k, done := gen.Next()
		if done {
			break
		}
		round := latest[k] + 1
		buf = dbbench.Value(buf, k, round, valueSize)
		if err := db.Put(tl, dbbench.Key(k), buf); err != nil {
			t.Fatal(err)
		}
		latest[k] = round
		writeOrder[k] = i
	}

	fs.Crash(tl.Now())
	db2, err := engine.Open(tl, fs, opts)
	if err != nil {
		t.Fatalf("recovery failed at cut %d: %v", cut, err)
	}

	// The WAL-tail window: anything written in the final stretch
	// before the cut (up to ~two write buffers of operations) may be
	// lost; everything older must be present.
	tailOps := 3 * base.WriteBufferSize / int64(valueSize)
	for k, round := range latest {
		got, err := db2.Get(tl, dbbench.Key(k))
		if errors.Is(err, engine.ErrNotFound) {
			if writeOrder[k] < cut-tailOps {
				t.Fatalf("key %d written at op %d (cut %d, tail window %d) lost",
					k, writeOrder[k], cut, tailOps)
			}
			continue
		}
		if err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		// The recovered value must be one of the rounds written for
		// this key, and at least as new as the last round minus the
		// tail window allowance: a WAL-tail loss can roll a key back
		// by the writes that were still unsynced, but never to a
		// value that was already superseded before the tail.
		ok := false
		for r := 1; r <= round; r++ {
			buf = dbbench.Value(buf, k, r, valueSize)
			if string(got) == string(buf) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("key %d recovered with a value never written", k)
		}
	}

	// Crash again immediately: recovery work itself must be
	// crash-safe.
	fs.Crash(tl.Now())
	db3, err := engine.Open(tl, fs, opts)
	if err != nil {
		t.Fatalf("second recovery failed: %v", err)
	}
	it, err := db3.NewIterator(tl)
	if err != nil {
		t.Fatal(err)
	}
	for it.First(); it.Valid(); it.Next() {
	}
	if err := it.Err(); err != nil {
		t.Fatalf("corruption after double crash: %v", err)
	}
}

// TestCrashDuringDependencyResolution crashes exactly when NobLSM's
// tracker has unresolved dependencies and after enough virtual time
// that some commits have landed — the trickiest window: part of the
// successor set durable, part not.
func TestCrashDuringDependencyResolution(t *testing.T) {
	const ops = 6000
	base := ScaledOptions(ops, 256, PaperTable64MB)
	for trial := 0; trial < 5; trial++ {
		tl := vclock.NewTimeline(0)
		st, err := NewStore(tl, policy.NobLSM, base)
		if err != nil {
			t.Fatal(err)
		}
		gen := dbbench.NewGenerator(dbbench.FillRandom, ops, int64(trial))
		var buf []byte
		cut := int64(2000 + 800*trial)
		for i := int64(0); i < cut; i++ {
			k, _ := gen.Next()
			buf = dbbench.Value(buf, k, 0, 256)
			st.DB.Put(tl, dbbench.Key(k), buf)
		}
		// Nudge virtual time so a commit boundary falls inside the
		// dependency window, then cut.
		tl.Advance(base.PollInterval / 3)
		st.FS.Crash(tl.Now())
		opts, _ := policy.Options(policy.NobLSM, base)
		db2, err := engine.Open(tl, st.FS, opts)
		if err != nil {
			t.Fatalf("trial %d: recovery failed: %v", trial, err)
		}
		it, err := db2.NewIterator(tl)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for it.First(); it.Valid(); it.Next() {
			n++
		}
		if err := it.Err(); err != nil {
			t.Fatalf("trial %d: corruption: %v", trial, err)
		}
		if n == 0 && cut > 3000 {
			t.Fatalf("trial %d: everything lost", trial)
		}
	}
}
