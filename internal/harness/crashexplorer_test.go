package harness

import (
	"os"
	"strconv"
	"testing"

	"noblsm/internal/vfs"
)

// TestCrashExplorerExhaustive is the exhaustive crash sweep: a NobLSM
// fill recorded by CrashFS must yield hundreds of journal-commit
// boundaries, and recovery at EVERY one of them must lose no write
// acked before the durability horizon and reference no damaged table.
// NOBLSM_CRASH_MAX_POINTS caps the sweep for smoke runs (the
// crashstress make target); uncapped runs also assert the boundary
// count the workload is sized to produce.
func TestCrashExplorerExhaustive(t *testing.T) {
	maxPoints := 0
	if s := os.Getenv("NOBLSM_CRASH_MAX_POINTS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("NOBLSM_CRASH_MAX_POINTS=%q: want a positive integer", s)
		}
		maxPoints = n
	}
	rep, err := ExploreCrashPoints(CrashExplorerConfig{MaxPoints: maxPoints, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if maxPoints == 0 && rep.Boundaries < 500 {
		t.Fatalf("workload produced %d commit boundaries, want >= 500", rep.Boundaries)
	}
	if rep.Validated == 0 {
		t.Fatal("no crash point was validated")
	}
	if rep.GuaranteeChecks == 0 {
		t.Fatal("no key-survival guarantee was ever exercised: horizon never engaged")
	}
	// Both boundary families must be swept: periodic async commits
	// (where NobLSM's unsynced compaction outputs become durable) and
	// fsync fast commits (minor-compaction L0 syncs).
	for _, kind := range []string{vfs.CommitAsync, vfs.CommitFsync} {
		if rep.Kinds[kind] == 0 {
			t.Fatalf("no %q boundary validated: kinds=%v", kind, rep.Kinds)
		}
	}
}
