package harness

// Randomized backup/replication fault sweep (PR 9).
//
// A BackupSchedule is one seeded experiment against the checkpoint,
// incremental-backup and follower-replication paths: a NobLSM primary
// runs a fillrandom workload in phases; between phases a follower —
// fed through the primary's fault-injection mount, so checkpoint
// fetches and WAL tails see transient read/write errors — catches up,
// and incremental backups are taken into one reused backup directory.
// The fault plane is armed only around the replication and backup
// operations: the primary's own write path is the fault-schedule
// explorer's subject; this sweep aims every injected fault at the
// paths PR 9 added.
//
// The invariants validated per schedule:
//
//	follower equivalence    after a final catch-up the follower serves
//	                        byte-for-byte the primary's contents at the
//	                        primary's own sequence number — transient
//	                        faults during bootstrap or tailing degrade
//	                        to retry/backoff, never to divergence;
//	zero acked-write loss   the primary (and so the follower) serves
//	                        every acked put at its last acked round;
//	restore ≡ repair        the final incremental backup restores
//	                        through the repair path with nothing
//	                        quarantined and exactly the primary's
//	                        contents at the backup cut.

import (
	"errors"
	"fmt"
	"math/rand"

	"noblsm/internal/dbbench"
	"noblsm/internal/engine"
	"noblsm/internal/ext4"
	"noblsm/internal/policy"
	"noblsm/internal/replica"
	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
	"noblsm/internal/vfs"
)

// BackupSchedule is one seeded backup/replication experiment.
type BackupSchedule struct {
	Seed      int64
	Ops       int64
	ValueSize int
	Phases    int
	Rules     []vfs.Rule
}

// BackupReport summarizes one schedule run.
type BackupReport struct {
	Schedule   BackupSchedule
	Injected   int64 // faults the plane actually fired
	Retries    int   // follower transient-retry rounds
	Bootstraps int   // follower checkpoint restores
	Applied    int   // WAL records the follower applied
	Backups    int   // successful incremental backups
	BackupTrys int   // backup attempts that hit a transient fault
}

func (r BackupReport) String() string {
	return fmt.Sprintf("seed=%d ops=%d rules=%d injected=%d retries=%d bootstraps=%d applied=%d backups=%d(retries=%d)",
		r.Schedule.Seed, r.Schedule.Ops, len(r.Schedule.Rules), r.Injected,
		r.Retries, r.Bootstraps, r.Applied, r.Backups, r.BackupTrys)
}

// NewBackupSchedule derives a schedule from its seed: a random subset
// of transient fault rules aimed at the replication read/write paths.
func NewBackupSchedule(seed int64) BackupSchedule {
	rng := rand.New(rand.NewSource(seed))
	s := BackupSchedule{
		Seed:      seed,
		Ops:       1000 + rng.Int63n(600),
		ValueSize: 256,
		Phases:    4 + rng.Intn(3),
	}
	pool := []func() vfs.Rule{
		func() vfs.Rule {
			// Checkpoint fetches and WAL tails are reads on the primary
			// mount; this is the fault the follower must retry through.
			return vfs.Rule{Op: vfs.OpRead, Kind: vfs.KindError, Transient: true,
				P: 0.02 + 0.08*rng.Float64(), Count: 1 + rng.Intn(12)}
		},
		func() vfs.Rule {
			// Checkpoint/backup exports write manifests, CURRENT and the
			// WAL prefix copy.
			return vfs.Rule{Op: vfs.OpWrite, Kind: vfs.KindError, Transient: true,
				P: 0.01 + 0.04*rng.Float64(), Count: 1 + rng.Intn(6)}
		},
		func() vfs.Rule {
			return vfs.Rule{Op: vfs.OpOpen, Kind: vfs.KindError, Transient: true,
				P: 0.01 + 0.03*rng.Float64(), Count: 1 + rng.Intn(4)}
		},
	}
	n := 1 + rng.Intn(len(pool))
	for i := 0; i < n; i++ {
		s.Rules = append(s.Rules, pool[rng.Intn(len(pool))]())
	}
	return s
}

// Run executes the schedule; a non-nil error is an invariant
// violation or an unrecovered degradation.
func (s BackupSchedule) Run() (rep BackupReport, err error) {
	rep = BackupReport{Schedule: s}

	base := ScaledOptions(s.Ops, s.ValueSize, PaperTable64MB)
	opts, err := policy.Options(policy.NobLSM, base)
	if err != nil {
		return rep, err
	}
	fsCfg := ext4.DefaultConfig()
	fsCfg.CommitInterval = base.PollInterval
	inner := ext4.New(fsCfg, ssd.New(ScaledDevice(base)))
	mount, ctl := vfs.NewFaultFS(inner, s.Seed)
	ctl.SetEnabled(false)
	for _, r := range s.Rules {
		ctl.AddRule(r)
	}
	defer func() { rep.Injected = ctl.Stats().Injected }()

	tl := vclock.NewTimeline(0)
	db, err := engine.Open(tl, mount, opts)
	if err != nil {
		return rep, fmt.Errorf("open: %w", err)
	}
	defer db.Close(tl)

	// The follower reads the primary through the faulted mount, so
	// every injected fault lands on a checkpoint fetch, a WAL tail, or
	// an export write.
	followerFS := ext4.New(fsCfg, ssd.New(ScaledDevice(base)))
	fol := replica.New(followerFS, opts, &replica.LocalSource{DB: db, FS: mount, TL: tl})
	defer fol.Close(tl)

	// backup takes one incremental backup into the reused directory,
	// retrying transient faults the way a real backup daemon would.
	backup := func() error {
		for attempt := 0; ; attempt++ {
			_, err := db.Backup(tl, "bk")
			if err == nil {
				rep.Backups++
				return nil
			}
			if !vfs.IsTransient(err) || attempt >= 8 {
				return err
			}
			rep.BackupTrys++
			tl.Advance(vclock.Duration(1+attempt) * vclock.Millisecond)
		}
	}

	// catchUp layers an outer retry over the follower's own bounded
	// backoff loop: a schedule's whole fault budget (every rule's Count
	// summed) can exceed the follower's consecutive-retry allowance,
	// and an operator facing "retries exhausted" restarts the catch-up,
	// they don't discard the replica. Rule Counts are finite, so each
	// failed round drains budget and the loop terminates.
	catchUp := func() error {
		for attempt := 0; ; attempt++ {
			err := fol.CatchUp(tl)
			if err == nil {
				return nil
			}
			if attempt >= 8 || !(vfs.IsTransient(err) || errors.Is(err, replica.ErrPrimaryUnavailable)) {
				return err
			}
			tl.Advance(vclock.Duration(1+attempt) * vclock.Millisecond)
		}
	}

	gen := dbbench.NewGenerator(dbbench.FillRandom, s.Ops, s.Seed)
	latest := map[int64]int{}
	var order []int64
	var buf []byte
	perPhase := s.Ops / int64(s.Phases)
	for phase := 0; phase < s.Phases; phase++ {
		for i := int64(0); i < perPhase; i++ {
			k, done := gen.Next()
			if done {
				break
			}
			round := latest[k] + 1
			buf = dbbench.Value(buf, k, round, s.ValueSize)
			if err := db.Put(tl, dbbench.Key(k), buf); err != nil {
				return rep, fmt.Errorf("phase %d put: %w", phase, err)
			}
			if latest[k] == 0 {
				order = append(order, k)
			}
			latest[k] = round
		}
		// Replication + backup under an armed plane: this is where the
		// schedule's whole fault budget is spent.
		ctl.SetEnabled(true)
		if err := catchUp(); err != nil {
			ctl.SetEnabled(false)
			return rep, fmt.Errorf("phase %d catch-up: %w", phase, err)
		}
		if phase%2 == 1 {
			if err := backup(); err != nil {
				ctl.SetEnabled(false)
				return rep, fmt.Errorf("phase %d backup: %w", phase, err)
			}
		}
		ctl.SetEnabled(false)
	}

	// Final backup and catch-up with the plane quiesced, then the
	// equivalence checks.
	if err := backup(); err != nil {
		return rep, fmt.Errorf("final backup: %w", err)
	}
	if err := catchUp(); err != nil {
		return rep, fmt.Errorf("final catch-up: %w", err)
	}
	st := fol.Stats()
	rep.Retries = st.Retries
	rep.Bootstraps = st.Bootstraps
	rep.Applied = st.Applied
	if got, want := fol.AppliedSeq(), db.VisibleSeq(); got != want {
		return rep, fmt.Errorf("follower applied seq %d, primary %d", got, want)
	}

	// Primary serves every acked put at its last acked round, and the
	// follower serves byte-for-byte the same.
	primary, err := scanAll(tl, db)
	if err != nil {
		return rep, fmt.Errorf("primary scan: %w", err)
	}
	for _, k := range order {
		buf = dbbench.Value(buf, k, latest[k], s.ValueSize)
		if primary[string(dbbench.Key(k))] != string(buf) {
			return rep, fmt.Errorf("primary lost key %d round %d", k, latest[k])
		}
	}
	if len(primary) != len(order) {
		return rep, fmt.Errorf("primary has %d keys, acked %d", len(primary), len(order))
	}
	followerDump, err := scanAll(tl, fol.DB())
	if err != nil {
		return rep, fmt.Errorf("follower scan: %w", err)
	}
	if err := equalDumps(primary, followerDump, "follower"); err != nil {
		return rep, err
	}

	// Restore the final backup through the repair path: nothing
	// quarantined, contents exactly the primary's at the cut — which
	// is the primary's current state, since the backup was taken after
	// the last write.
	rrep, err := engine.RestoreBackup(tl, mount, "bk", "rst", opts)
	if err != nil {
		return rep, fmt.Errorf("restore: %w", err)
	}
	if len(rrep.Quarantined) > 0 {
		return rep, fmt.Errorf("restore quarantined %d tables", len(rrep.Quarantined))
	}
	rdb, err := engine.Open(tl, vfs.NewPrefix(mount, "rst"), opts)
	if err != nil {
		return rep, fmt.Errorf("opening restore: %w", err)
	}
	restored, err := scanAll(tl, rdb)
	if cerr := rdb.Close(tl); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return rep, fmt.Errorf("restored scan: %w", err)
	}
	if err := equalDumps(primary, restored, "restored backup"); err != nil {
		return rep, err
	}
	return rep, nil
}

// scanAll reads a store's full contents.
func scanAll(tl *vclock.Timeline, db *engine.DB) (map[string]string, error) {
	it, err := db.NewIterator(tl)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	out := make(map[string]string)
	for it.First(); it.Valid(); it.Next() {
		out[string(it.Key())] = string(it.Value())
	}
	return out, it.Err()
}

// equalDumps asserts got equals want byte-for-byte.
func equalDumps(want, got map[string]string, label string) error {
	if len(want) != len(got) {
		return fmt.Errorf("%s: %d keys, primary has %d", label, len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			return fmt.Errorf("%s: key %q diverged", label, k)
		}
	}
	return nil
}
