package harness

import (
	"errors"

	"noblsm/internal/engine"
	"noblsm/internal/vclock"
	"noblsm/internal/ycsb"
)

// RunYCSBLoad fills the store with records (the Load-A / Load-E phases
// clear the data set and insert 50 M 1 KB pairs in the paper; the
// caller scales the count).
func RunYCSBLoad(s *Store, start vclock.Time, name string, records int64, valueSize, threads int, seed int64) (Result, error) {
	bufs := make([][]byte, threads)
	per := records / int64(threads)
	elapsed, hist, err := drive(start, threads, records, func(c int, tl *vclock.Timeline, i int64) error {
		keyNum := int64(c)*per + i
		bufs[c] = ycsbValue(bufs[c], keyNum, valueSize)
		return s.DB.Put(tl, ycsb.Key(keyNum), bufs[c])
	})
	if err != nil {
		return Result{}, err
	}
	res := s.finishResult(name, threads, records, elapsed)
	res.Latency = hist
	return res, nil
}

// RunYCSB executes one core workload phase of ops total requests over
// a store loaded with records.
func RunYCSB(s *Store, start vclock.Time, wl ycsb.Workload, records, ops int64, valueSize, threads int, seed int64) (Result, error) {
	gens := make([]*ycsb.Generator, threads)
	for i := range gens {
		gens[i] = ycsb.NewGenerator(wl, records, seed+int64(i)*104729)
	}
	bufs := make([][]byte, threads)
	elapsed, hist, err := drive(start, threads, ops, func(c int, tl *vclock.Timeline, i int64) error {
		op := gens[c].Next()
		switch op.Kind {
		case ycsb.OpRead:
			if _, err := s.DB.Get(tl, ycsb.Key(op.KeyNum)); err != nil && !errors.Is(err, engine.ErrNotFound) {
				return err
			}
			return nil
		case ycsb.OpUpdate, ycsb.OpInsert:
			bufs[c] = ycsbValue(bufs[c], op.KeyNum+i, valueSize)
			return s.DB.Put(tl, ycsb.Key(op.KeyNum), bufs[c])
		case ycsb.OpScan:
			it, err := s.DB.NewIterator(tl)
			if err != nil {
				return err
			}
			it.Seek(ycsb.Key(op.KeyNum))
			for n := 0; it.Valid() && n < op.ScanLen; n++ {
				it.Next()
			}
			return it.Err()
		case ycsb.OpReadModifyWrite:
			if _, err := s.DB.Get(tl, ycsb.Key(op.KeyNum)); err != nil && !errors.Is(err, engine.ErrNotFound) {
				return err
			}
			bufs[c] = ycsbValue(bufs[c], op.KeyNum+i, valueSize)
			return s.DB.Put(tl, ycsb.Key(op.KeyNum), bufs[c])
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	res := s.finishResult(wl.Name, threads, ops, elapsed)
	res.Latency = hist
	return res, nil
}

// ycsbValue produces a deterministic value of size bytes.
func ycsbValue(dst []byte, seed int64, size int) []byte {
	dst = dst[:0]
	s := uint64(seed)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	for len(dst) < size {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		b := byte('A' + (s>>40)%26)
		run := int(s>>59)%6 + 1
		for j := 0; j < run && len(dst) < size; j++ {
			dst = append(dst, b)
		}
	}
	return dst
}
