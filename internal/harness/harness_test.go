package harness

import (
	"testing"

	"noblsm/internal/dbbench"
	"noblsm/internal/policy"
	"noblsm/internal/vclock"
)

const (
	testOps     = 20000
	testThreads = 1
	testSeed    = 42
)

func TestScaledOptionsPreserveEventCounts(t *testing.T) {
	o := ScaledOptions(100_000, 1024, PaperTable64MB)
	// 100k × 1040 B ≈ 104 MB; scale ≈ 100; table ≈ 640 KB.
	if o.TableFileSize < 512<<10 || o.TableFileSize > 768<<10 {
		t.Fatalf("scaled table size %d out of range", o.TableFileSize)
	}
	if o.WriteBufferSize != o.TableFileSize {
		t.Fatal("write buffer must equal table size (paper setup)")
	}
	// The scaled fill performs ~data/buffer ≈ 160 minor compactions,
	// matching the paper's 10 GB / 64 MB.
	minors := (100_000 * 1040) / o.WriteBufferSize
	if minors < 120 || minors > 220 {
		t.Fatalf("scaled run would do %d minors, want ~160", minors)
	}
	// Tiny runs clamp instead of degenerating.
	tiny := ScaledOptions(100, 64, PaperTable2MB)
	if tiny.TableFileSize < 32<<10 {
		t.Fatalf("tiny table size %d below clamp", tiny.TableFileSize)
	}
}

func TestRunDBBenchFillAndRead(t *testing.T) {
	tl := vclock.NewTimeline(0)
	st, err := NewStore(tl, policy.LevelDB, ScaledOptions(testOps, 256, PaperTable64MB))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDBBench(st, tl.Now(), dbbench.FillRandom, testOps, 256, testThreads, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != testOps || res.MicrosPerOp <= 0 {
		t.Fatalf("fill result: %+v", res)
	}
	if res.Syncs == 0 {
		t.Fatal("LevelDB fill performed no syncs")
	}
	rr, err := RunDBBench(st, tl.Now().Add(res.Elapsed), dbbench.ReadRandom, testOps, 256, testThreads, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Engine.Gets < testOps {
		t.Fatalf("readrandom issued %d gets", rr.Engine.Gets)
	}
	rs, err := RunDBBench(st, tl.Now().Add(res.Elapsed+rr.Elapsed), dbbench.ReadSeq, testOps, 256, testThreads, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if rs.MicrosPerOp <= 0 {
		t.Fatalf("readseq: %+v", rs)
	}
}

func TestHeadlineShapeNobLSMFasterThanLevelDB(t *testing.T) {
	// The paper's core claim (Fig. 4a): NobLSM cuts fillrandom
	// execution time versus LevelDB substantially, approaching the
	// volatile bound; BoLT lands in between.
	micros := map[policy.Variant]float64{}
	for _, v := range []policy.Variant{policy.LevelDB, policy.BoLT, policy.NobLSM, policy.Volatile} {
		tl := vclock.NewTimeline(0)
		st, err := NewStore(tl, v, ScaledOptions(testOps, 1024, PaperTable64MB))
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunDBBench(st, tl.Now(), dbbench.FillRandom, testOps, 1024, testThreads, testSeed)
		if err != nil {
			t.Fatal(err)
		}
		micros[v] = res.MicrosPerOp
		t.Logf("%-10s %8.2f µs/op  syncs=%d synced=%dMB stalls(rot=%v slow=%v barrier=%v)",
			v, res.MicrosPerOp, res.Syncs, res.BytesSynced>>20,
			res.Engine.RotationStall, res.Engine.SlowdownTime, res.FS.BarrierStall)
	}
	if micros[policy.NobLSM] >= micros[policy.LevelDB] {
		t.Fatalf("NobLSM (%.2f) not faster than LevelDB (%.2f)", micros[policy.NobLSM], micros[policy.LevelDB])
	}
	reduction := 1 - micros[policy.NobLSM]/micros[policy.LevelDB]
	volBound := 1 - micros[policy.Volatile]/micros[policy.LevelDB]
	t.Logf("NobLSM reduction %.1f%% (volatile bound %.1f%%)", 100*reduction, 100*volBound)
	if reduction < 0.15 {
		t.Fatalf("NobLSM reduction %.1f%% too small to match the paper's ~44%%", 100*reduction)
	}
	if micros[policy.Volatile] > micros[policy.NobLSM]*1.05 {
		t.Fatalf("volatile (%.2f) slower than NobLSM (%.2f)", micros[policy.Volatile], micros[policy.NobLSM])
	}
}

func TestTable1ShapeNobLSMSyncsLeast(t *testing.T) {
	rows, err := RunTable1([]policy.Variant{policy.LevelDB, policy.BoLT, policy.NobLSM}, testOps, testThreads, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	get := func(v policy.Variant) Table1Row {
		for _, r := range rows {
			if r.Variant == v {
				return r
			}
		}
		t.Fatalf("missing row for %v", v)
		return Table1Row{}
	}
	lev, bolt, nob := get(policy.LevelDB), get(policy.BoLT), get(policy.NobLSM)
	t.Logf("LevelDB: %d syncs %dMB; BoLT: %d syncs %dMB; NobLSM: %d syncs %dMB",
		lev.Syncs, lev.BytesSynced>>20, bolt.Syncs, bolt.BytesSynced>>20, nob.Syncs, nob.BytesSynced>>20)
	if !(nob.Syncs < bolt.Syncs && bolt.Syncs < lev.Syncs) {
		t.Fatalf("sync ordering violated: %d / %d / %d", nob.Syncs, bolt.Syncs, lev.Syncs)
	}
	if !(nob.BytesSynced < lev.BytesSynced) {
		t.Fatalf("NobLSM synced more bytes than LevelDB")
	}
	// Paper: NobLSM's sync count ≈ its minor compactions (160 for the
	// full-scale run), 84.9% less than LevelDB's.
	if float64(nob.Syncs) > 0.5*float64(lev.Syncs) {
		t.Fatalf("NobLSM sync reduction too small: %d vs %d", nob.Syncs, lev.Syncs)
	}
}

func TestFig2aShape(t *testing.T) {
	rows := RunFig2a(256<<20, 2<<20)
	byName := map[string]vclock.Duration{}
	for _, r := range rows {
		byName[r.Strategy] = r.Elapsed
		t.Logf("%-6s %6.2fs", r.Strategy, r.Elapsed.Seconds())
	}
	async, direct, sync := byName["Async"], byName["Direct"], byName["Sync"]
	if !(async < direct && direct < sync) {
		t.Fatalf("strategy ordering violated: %v %v %v", async, direct, sync)
	}
	// Paper: Direct ≈ 9.5× Async; Sync ≈ +36.7% over Direct (4 GB).
	if r := float64(direct) / float64(async); r < 4 || r > 30 {
		t.Fatalf("Direct/Async ratio %.1f outside plausible band", r)
	}
	if r := float64(sync)/float64(direct) - 1; r < 0.1 || r > 1.0 {
		t.Fatalf("Sync overhead over Direct %.2f outside plausible band", r)
	}
}

func TestConsistencyShape(t *testing.T) {
	for _, v := range []policy.Variant{policy.LevelDB, policy.NobLSM} {
		res, err := RunConsistencyTest(v, testOps, 1024, testOps*3/4, testSeed)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%v: recovered=%v intact=%v survived=%d lost=%d walDrops=%d",
			v, res.Recovered, res.SSTablesIntact, res.KeysSurvived, res.KeysLost, res.WALRecordsDropped)
		if !res.Recovered || !res.SSTablesIntact {
			t.Fatalf("%v failed the power-cut test: %+v", v, res)
		}
		if res.KeysSurvived == 0 {
			t.Fatalf("%v lost everything", v)
		}
	}
}

func TestYCSBPhasesRun(t *testing.T) {
	rows, err := RunFig5(policy.NobLSM, 5000, 4000, 256, 1, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(YCSBPhases) {
		t.Fatalf("got %d phases, want %d", len(rows), len(YCSBPhases))
	}
	for _, r := range rows {
		if r.Result.MicrosPerOp <= 0 {
			t.Fatalf("phase %s has no time: %+v", r.Phase, r.Result)
		}
	}
}

func TestLatencyTailsSeparateVariants(t *testing.T) {
	// The paper's mechanism is a tail phenomenon: most puts are fast
	// in every variant, but LevelDB's sync barriers produce a heavy
	// tail that NobLSM lacks. The medians should be comparable while
	// p99.9 differs sharply.
	tails := map[policy.Variant]vclock.Duration{}
	medians := map[policy.Variant]vclock.Duration{}
	for _, v := range []policy.Variant{policy.LevelDB, policy.NobLSM} {
		tl := vclock.NewTimeline(0)
		st, err := NewStore(tl, v, ScaledOptions(testOps, 1024, PaperTable64MB))
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunDBBench(st, tl.Now(), dbbench.FillRandom, testOps, 1024, 1, testSeed)
		if err != nil {
			t.Fatal(err)
		}
		tails[v] = res.Latency.Percentile(99.9)
		medians[v] = res.Latency.Percentile(50)
		t.Logf("%-8s median=%v p99=%v p99.9=%v max=%v", v,
			res.Latency.Percentile(50), res.Latency.Percentile(99),
			res.Latency.Percentile(99.9), res.Latency.Max())
	}
	if tails[policy.NobLSM] >= tails[policy.LevelDB] {
		t.Fatalf("NobLSM p99.9 (%v) not below LevelDB's (%v)",
			tails[policy.NobLSM], tails[policy.LevelDB])
	}
}

func TestMultiThreadDriverBalances(t *testing.T) {
	tl := vclock.NewTimeline(0)
	st, err := NewStore(tl, policy.NobLSM, ScaledOptions(8000, 256, PaperTable64MB))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDBBench(st, tl.Now(), dbbench.FillRandom, 8000, 256, 4, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 4 || res.Ops != 8000 {
		t.Fatalf("result: %+v", res)
	}
	if res.Engine.Puts != 8000 {
		t.Fatalf("puts = %d", res.Engine.Puts)
	}
}
