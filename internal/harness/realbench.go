package harness

import (
	"errors"
	"sync"
	"time"

	"noblsm/internal/dbbench"
	"noblsm/internal/engine"
	"noblsm/internal/policy"
	"noblsm/internal/vclock"
)

// This file measures REAL (wall-clock) throughput, not virtual time:
// the virtual-clock experiments answer "what would the paper's
// hardware do", while these runs answer "how fast does the Go engine
// itself go" — the number the concurrent write-path work optimizes.
// Each goroutine owns a private timeline, so the only shared state is
// the store itself, exactly as a multi-client deployment would stress
// it.

// RealBenchResult is one wall-clock measurement.
type RealBenchResult struct {
	Workload   string  `json:"workload"`
	Goroutines int     `json:"goroutines"`
	Ops        int64   `json:"ops"`
	ElapsedSec float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`
}

// RunRealConcurrent drives ops operations split across g goroutines
// against a fresh store of the given variant and reports wall-clock
// throughput. Workloads: fillrandom issues Puts; readrandom fills the
// store first (unmeasured) and then issues Gets.
func RunRealConcurrent(v policy.Variant, workload string, ops int64, valueSize, goroutines int, seed int64) (RealBenchResult, error) {
	tl := vclock.NewTimeline(0)
	opts := ScaledOptions(ops, valueSize, PaperTable64MB)
	// Wall-clock runs overlap flushes and compactions with the
	// foreground, as a real deployment would; the deterministic virtual
	// experiments never set this.
	opts.AsyncCompaction = true
	st, err := NewStore(tl, v, opts)
	if err != nil {
		return RealBenchResult{}, err
	}
	defer st.DB.Close(tl)
	if workload == dbbench.ReadRandom {
		// Unmeasured fill so the reads have something to find.
		gen := dbbench.NewGenerator(dbbench.FillRandom, ops, seed)
		var buf []byte
		for {
			k, done := gen.Next()
			if done {
				break
			}
			buf = dbbench.Value(buf, k, 0, valueSize)
			if err := st.DB.Put(tl, dbbench.Key(k), buf); err != nil {
				return RealBenchResult{}, err
			}
		}
	}

	per := ops / int64(goroutines)
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	start := time.Now()
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			ctl := vclock.NewTimeline(tl.Now())
			gen := dbbench.NewGenerator(workload, per, seed+int64(gi)*7919)
			var buf []byte
			for {
				k, done := gen.Next()
				if done {
					return
				}
				switch workload {
				case dbbench.ReadRandom:
					if _, err := st.DB.Get(ctl, dbbench.Key(k)); err != nil && !errors.Is(err, engine.ErrNotFound) {
						errs[gi] = err
						return
					}
				default:
					buf = dbbench.Value(buf, k, 0, valueSize)
					if err := st.DB.Put(ctl, dbbench.Key(k), buf); err != nil {
						errs[gi] = err
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return RealBenchResult{}, err
		}
	}
	total := per * int64(goroutines)
	res := RealBenchResult{
		Workload:   workload,
		Goroutines: goroutines,
		Ops:        total,
		ElapsedSec: elapsed.Seconds(),
	}
	if elapsed > 0 {
		res.OpsPerSec = float64(total) / elapsed.Seconds()
	}
	return res, nil
}
