package harness

import (
	"fmt"
	"sync"
	"time"

	"noblsm/internal/dbbench"
	"noblsm/internal/engine"
	"noblsm/internal/histogram"
	"noblsm/internal/policy"
	"noblsm/internal/server"
	srvclient "noblsm/internal/server/client"
	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
)

// ServerScalePoint is one shard count's measurement from the loopback
// scaling experiment.
type ServerScalePoint struct {
	Shards int   `json:"shards"`
	Ops    int64 `json:"ops"`

	// Wall-clock numbers: what this host's Go runtime did. On a small
	// host these flatten at the core count and say nothing about the
	// storage architecture — they are recorded for transparency, not
	// for the scaling claim.
	WallSec       float64 `json:"wall_sec"`
	WallOpsPerSec float64 `json:"wall_ops_per_sec"`

	// Virtual-time numbers: what the paper's hardware would do. Every
	// shard owns a full simulated device + journal, each request is
	// charged its device/journal/CPU costs on virtual clocks, and the
	// run completes when the straggler shard's clock stops — so
	// aggregate throughput is total ops over the slowest shard's
	// virtual busy time, the parallel-completion rule.
	VirtualSec          float64 `json:"virtual_sec"`
	VirtualAggOpsPerSec float64 `json:"virtual_agg_ops_per_sec"`

	// Per-request virtual latency distribution, merged across shards.
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`

	// PerShardOps shows the consistent-hash balance.
	PerShardOps []int64 `json:"per_shard_ops"`
}

// ServerScaleConfig parameterizes RunServerScale.
type ServerScaleConfig struct {
	ShardCounts []int // e.g. 1, 4, 8, 16
	Ops         int64 // total ops per point, split across workers
	ValueSize   int
	Workers     int // concurrent client goroutines (equal at every point)
	Conns       int // client pool size (equal at every point)
	Seed        int64
}

// RunServerScale runs the PR 8 experiment: the same fillrandom
// workload, at the same client concurrency, against servers of
// increasing shard count over real loopback TCP. Engine geometry is
// derived once from the TOTAL op count and reused at every shard
// count, so a shard's per-op costs are identical everywhere and the
// only variable is how many independent shards share the work.
func RunServerScale(cfg ServerScaleConfig) ([]ServerScalePoint, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 16
	}
	if cfg.Conns < 1 {
		cfg.Conns = 8
	}
	if cfg.ValueSize < 1 {
		cfg.ValueSize = 1024
	}
	base := ScaledOptions(cfg.Ops, cfg.ValueSize, PaperTable64MB)
	dev := ScaledDevice(base)
	var out []ServerScalePoint
	for _, shards := range cfg.ShardCounts {
		pt, err := runServerScalePoint(shards, base, dev, cfg)
		if err != nil {
			return nil, fmt.Errorf("serverbench: %d shards: %w", shards, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

func runServerScalePoint(shards int, base engine.Options, dev ssd.Config, cfg ServerScaleConfig) (ServerScalePoint, error) {
	srv, err := server.New(server.Options{
		Shards:  shards,
		Variant: policy.NobLSM,
		Engine:  base,
		Device:  dev,
	})
	if err != nil {
		return ServerScalePoint{}, err
	}
	defer srv.Close()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return ServerScalePoint{}, err
	}
	cl, err := srvclient.Dial(addr.String(), srvclient.Options{Conns: cfg.Conns, Shards: shards})
	if err != nil {
		return ServerScalePoint{}, err
	}
	defer cl.Close()

	perWorker := cfg.Ops / int64(cfg.Workers)
	if perWorker < 1 {
		perWorker = 1
	}
	srv.BeginPhase()
	wallStart := time.Now()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker generator stream, the RunRealConcurrent
			// convention: disjoint deterministic streams per worker.
			g := dbbench.NewGenerator("fillrandom", perWorker, cfg.Seed+int64(w)*7919)
			var vbuf []byte
			for {
				k, done := g.Next()
				if done {
					return
				}
				vbuf = dbbench.Value(vbuf[:0], k, w, cfg.ValueSize)
				if err := cl.Put(dbbench.Key(k), vbuf); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wallSec := time.Since(wallStart).Seconds()
	phases := srv.EndPhase()
	if firstErr != nil {
		return ServerScalePoint{}, firstErr
	}

	pt := ServerScalePoint{Shards: shards, WallSec: wallSec}
	var merged histogram.Histogram
	var vmax vclock.Duration
	for _, ph := range phases {
		pt.Ops += ph.Ops
		pt.PerShardOps = append(pt.PerShardOps, ph.Ops)
		if ph.VirtualElapsed > vmax {
			vmax = ph.VirtualElapsed
		}
		lat := ph.Latency
		merged.Merge(&lat)
	}
	pt.VirtualSec = float64(vmax) / float64(vclock.Second)
	if pt.VirtualSec > 0 {
		pt.VirtualAggOpsPerSec = float64(pt.Ops) / pt.VirtualSec
	}
	if wallSec > 0 {
		pt.WallOpsPerSec = float64(pt.Ops) / wallSec
	}
	us := float64(vclock.Microsecond)
	pt.P50Us = float64(merged.Percentile(50)) / us
	pt.P99Us = float64(merged.Percentile(99)) / us
	pt.P999Us = float64(merged.Percentile(99.9)) / us
	return pt, nil
}
