package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"noblsm/internal/dbbench"
	"noblsm/internal/engine"
	"noblsm/internal/obs"
	"noblsm/internal/policy"
	"noblsm/internal/vclock"
)

// TestAttributionConservation is the telemetry plane's core
// correctness check: on a seeded virtual fillrandom (plus a read
// phase), every operation's summed phase durations must equal its
// end-to-end latency within 1%. The span design makes the two equal
// by construction, so any deviation is an instrumentation gap — a
// code path that returned without Finish or skipped a transition.
func TestAttributionConservation(t *testing.T) {
	const ops = 20_000
	tl := vclock.NewTimeline(0)
	base := ScaledOptions(ops, 1024, PaperTable64MB)
	// Throttle early so the run exercises the stall paths the ledger
	// must tag (the scaled default keeps L0 below the trigger).
	base.L0SlowdownTrigger = 2
	base.L0StopTrigger = 6
	reg := obs.NewRegistry()
	tel := obs.NewTelemetry(reg, base.PollInterval, 0)
	st, err := NewStoreObserved(tl, policy.NobLSM, base, base.PollInterval,
		obs.Sink{Metrics: reg, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}

	check := func(kind string, i int64, sp obs.OpSpan) {
		total, sum := sp.Total(), sp.PhaseSum()
		if total == 0 {
			t.Fatalf("%s op %d: span never finished", kind, i)
		}
		diff := total - sum
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.01*float64(total) {
			t.Fatalf("%s op %d: phases sum to %v but total is %v (diff %v > 1%%)",
				kind, i, sum, total, diff)
		}
	}

	gen := dbbench.NewGenerator(dbbench.FillRandom, ops, 42)
	var buf []byte
	var wrote int64
	for i := int64(0); i < ops; i++ {
		k, _ := gen.Next()
		buf = dbbench.Value(buf, k, 0, 1024)
		var b engine.Batch
		b.Put(dbbench.Key(k), buf)
		sp, err := st.DB.WriteObserved(tl, &b)
		if err != nil {
			t.Fatal(err)
		}
		check("write", i, sp)
		wrote++
	}

	rgen := dbbench.NewGenerator(dbbench.ReadRandom, ops/10, 43)
	var read int64
	for i := int64(0); i < ops/10; i++ {
		k, _ := rgen.Next()
		_, sp, err := st.DB.GetObserved(tl, dbbench.Key(k))
		if err != nil && !errors.Is(err, engine.ErrNotFound) {
			t.Fatal(err)
		}
		check("read", i, sp)
		read++
	}

	// The aggregate plane saw every op.
	wt := tel.WriteTotal().Snapshot()
	if wt.Count() != wrote {
		t.Fatalf("write total timer saw %d ops, want %d", wt.Count(), wrote)
	}
	rt := tel.ReadTotal().Snapshot()
	if rt.Count() != read {
		t.Fatalf("read total timer saw %d ops, want %d", rt.Count(), read)
	}

	// Conservation holds in aggregate too: summed phase-timer time
	// equals summed op-total time within 1%.
	var phaseNs, totalNs int64
	for p := 0; p < obs.NumPhases; p++ {
		h := tel.PhaseTimer(obs.Phase(p)).Snapshot()
		phaseNs += int64(h.Mean()) * h.Count()
	}
	totalNs += int64(wt.Mean())*wt.Count() + int64(rt.Mean())*rt.Count()
	diff := phaseNs - totalNs
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.01*float64(totalNs) {
		t.Fatalf("aggregate phases %dns vs totals %dns (diff beyond 1%%)", phaseNs, totalNs)
	}

	// Every engine stall the legacy counters saw is cause-tagged in
	// the ledger.
	snap := reg.Snapshot()
	if legacy := snap.Counters["engine.stall.slowdown_count"]; legacy > 0 {
		if got := tel.Stalls.Count(obs.StallL0Slowdown); got != legacy {
			t.Fatalf("ledger l0_slowdown count %d != legacy slowdown count %d", got, legacy)
		}
		if got := int64(tel.Stalls.TotalNs(obs.StallL0Slowdown)); got != snap.Counters["engine.stall.slowdown_ns"] {
			t.Fatalf("ledger l0_slowdown ns %d != legacy %d", got, snap.Counters["engine.stall.slowdown_ns"])
		}
	} else {
		t.Fatalf("fill produced no L0 slowdowns — scale the run so stalls are exercised")
	}
	// The paper-aligned sync path stalls on WAL-throttle/memtable
	// waits; whatever the engine accounted must appear under a cause.
	if tel.Stalls.TotalStallNs() == 0 {
		t.Fatal("ledger recorded no stall time")
	}
}

// TestTelemetryMatchesUnobservedRun asserts the attribution plane only
// *reads* clocks: a telemetry-on run's virtual results are identical
// to the plain run's.
func TestTelemetryMatchesUnobservedRun(t *testing.T) {
	const ops = 5_000
	run := func(sink obs.Sink) Result {
		tl := vclock.NewTimeline(0)
		base := ScaledOptions(ops, 1024, PaperTable64MB)
		st, err := NewStoreObserved(tl, policy.NobLSM, base, base.PollInterval, sink)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunDBBench(st, tl.Now(), dbbench.FillRandom, ops, 1024, 1, 42)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(obs.Sink{})
	reg := obs.NewRegistry()
	observed := run(obs.Sink{Metrics: reg, Telemetry: obs.NewTelemetry(reg, 0, 0)})
	if plain.Elapsed != observed.Elapsed || plain.MicrosPerOp != observed.MicrosPerOp {
		t.Fatalf("telemetry changed the run: plain %v/%.3f, observed %v/%.3f",
			plain.Elapsed, plain.MicrosPerOp, observed.Elapsed, observed.MicrosPerOp)
	}
	if plain.Syncs != observed.Syncs || plain.BytesSynced != observed.BytesSynced {
		t.Fatalf("telemetry changed sync counts: %d/%d vs %d/%d",
			plain.Syncs, plain.BytesSynced, observed.Syncs, observed.BytesSynced)
	}
}

// TestLiveExpositionMidBenchmark serves the exposition endpoints from
// a store while a benchmark is actively writing to it, the way
// `dbbench -run ... -listen :8080` does, and asserts every endpoint
// returns correct data both mid-run and after completion.
func TestLiveExpositionMidBenchmark(t *testing.T) {
	const ops = 60_000
	tl := vclock.NewTimeline(0)
	base := ScaledOptions(ops, 1024, PaperTable64MB)
	reg := obs.NewRegistry()
	tel := obs.NewTelemetry(reg, base.PollInterval, 0)
	tr := obs.NewTracer(obs.DefaultTraceEvents)
	st, err := NewStoreObserved(tl, policy.NobLSM, base, base.PollInterval,
		obs.Sink{Metrics: reg, Trace: tr, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}

	srv, addr, err := obs.Serve("127.0.0.1:0", st.Exposition())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := fmt.Sprintf("http://%s", addr)

	get := func(path string) (int, string) {
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	benchErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := RunDBBench(st, tl.Now(), dbbench.FillRandom, ops, 1024, 1, 42)
		benchErr <- err
	}()

	// Poll /stats until the run has visibly progressed (ops recorded
	// in the write-total timer), proving the surface serves while the
	// engine commits. The virtual run takes real wall-clock time, but
	// guard against a fast machine finishing first: mid-run or not,
	// the payloads must be correct.
	type stats struct {
		Metrics *obs.Snapshot `json:"metrics"`
	}
	sawLive := false
	for i := 0; i < 10_000; i++ {
		code, body := get("/stats")
		if code != 200 {
			t.Fatalf("/stats = %d", code)
		}
		var s stats
		if err := json.Unmarshal([]byte(body), &s); err != nil {
			t.Fatalf("/stats not JSON: %v", err)
		}
		if s.Metrics != nil && s.Metrics.Timers["engine.op.write.total"].Count > 0 {
			sawLive = true
			break
		}
	}
	if !sawLive {
		t.Fatal("never observed write ops through /stats")
	}

	// /metrics serves Prometheus text with the attribution timers.
	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, "noblsm_engine_op_write_total_seconds_count") {
		t.Fatalf("/metrics = %d, missing attribution summary", code)
	}
	// /doctor renders the health report from the live engine.
	if code, body := get("/doctor"); code != 200 ||
		!strings.Contains(body, "== noblsm doctor ==") ||
		!strings.Contains(body, "-- stall ledger --") {
		t.Fatalf("/doctor = %d:\n%s", code, body)
	}
	// /trace downloads a Chrome trace file.
	if code, body := get("/trace"); code != 200 ||
		!strings.Contains(body, `"traceEvents"`) {
		t.Fatalf("/trace = %d", code)
	}
	// pprof index answers.
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ = %d", code)
	}

	wg.Wait()
	if err := <-benchErr; err != nil {
		t.Fatal(err)
	}

	// After completion the windows are consistent: sealed windows plus
	// the open one carry every op the total timer saw.
	var ops2 int64
	for _, w := range tel.Series.Windows() {
		ops2 += w.Ops
	}
	if cur, ok := tel.Series.Current(); ok {
		ops2 += cur.Ops
	}
	wt := tel.WriteTotal().Snapshot()
	if tel.Series.Dropped() == 0 && ops2 != wt.Count() {
		t.Fatalf("series accounted %d ops, timer saw %d", ops2, wt.Count())
	}
	code, body := get("/doctor")
	if code != 200 || !strings.Contains(body, "write.total") {
		t.Fatalf("final /doctor missing phase table:\n%s", body)
	}
}
