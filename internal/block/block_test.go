package block

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func buildBlock(t *testing.T, interval int, kvs [][2]string) *Reader {
	t.Helper()
	b := NewBuilder(interval)
	for _, kv := range kvs {
		b.Add([]byte(kv[0]), []byte(kv[1]))
	}
	r, err := NewReader(b.Finish(), bytes.Compare)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestIterateAll(t *testing.T) {
	kvs := [][2]string{{"a", "1"}, {"ab", "2"}, {"abc", "3"}, {"b", "4"}, {"ba", "5"}}
	r := buildBlock(t, 2, kvs)
	it := r.NewIter()
	i := 0
	for it.First(); it.Valid(); it.Next() {
		if string(it.Key()) != kvs[i][0] || string(it.Value()) != kvs[i][1] {
			t.Fatalf("entry %d: %q=%q, want %q=%q", i, it.Key(), it.Value(), kvs[i][0], kvs[i][1])
		}
		i++
	}
	if i != len(kvs) {
		t.Fatalf("iterated %d entries, want %d", i, len(kvs))
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

func TestSeek(t *testing.T) {
	kvs := [][2]string{{"b", "1"}, {"d", "2"}, {"f", "3"}, {"h", "4"}}
	r := buildBlock(t, 1, kvs) // every entry a restart point
	cases := []struct {
		target string
		want   string // "" means invalid
	}{
		{"a", "b"}, {"b", "b"}, {"c", "d"}, {"d", "d"},
		{"e", "f"}, {"h", "h"}, {"i", ""},
	}
	it := r.NewIter()
	for _, c := range cases {
		it.Seek([]byte(c.target))
		if c.want == "" {
			if it.Valid() {
				t.Fatalf("Seek(%q) valid at %q, want invalid", c.target, it.Key())
			}
			continue
		}
		if !it.Valid() || string(it.Key()) != c.want {
			t.Fatalf("Seek(%q) = %q, want %q", c.target, it.Key(), c.want)
		}
	}
}

func TestSeekWithSharedPrefixes(t *testing.T) {
	var kvs [][2]string
	for i := 0; i < 100; i++ {
		kvs = append(kvs, [2]string{fmt.Sprintf("user-key-%04d", i), fmt.Sprintf("v%d", i)})
	}
	r := buildBlock(t, 16, kvs)
	it := r.NewIter()
	for i := 0; i < 100; i++ {
		target := fmt.Sprintf("user-key-%04d", i)
		it.Seek([]byte(target))
		if !it.Valid() || string(it.Key()) != target {
			t.Fatalf("Seek(%q) failed", target)
		}
	}
}

func TestRandomizedAgainstSortedReference(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	keySet := map[string]string{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("%08x", rnd.Uint32())
		keySet[k] = fmt.Sprintf("value-%d", i)
	}
	var sorted []string
	for k := range keySet {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	var kvs [][2]string
	for _, k := range sorted {
		kvs = append(kvs, [2]string{k, keySet[k]})
	}
	for _, interval := range []int{1, 4, 16, 64} {
		r := buildBlock(t, interval, kvs)
		it := r.NewIter()
		// Full scan equals reference.
		i := 0
		for it.First(); it.Valid(); it.Next() {
			if string(it.Key()) != sorted[i] {
				t.Fatalf("interval %d: scan order broke at %d", interval, i)
			}
			i++
		}
		// Seeks to random probes land on lower bound.
		for j := 0; j < 200; j++ {
			probe := fmt.Sprintf("%08x", rnd.Uint32())
			it.Seek([]byte(probe))
			idx := sort.SearchStrings(sorted, probe)
			if idx == len(sorted) {
				if it.Valid() {
					t.Fatalf("seek past end valid at %q", it.Key())
				}
			} else if !it.Valid() || string(it.Key()) != sorted[idx] {
				t.Fatalf("seek(%q) = %q, want %q", probe, it.Key(), sorted[idx])
			}
		}
	}
}

func TestEmptyBlock(t *testing.T) {
	b := NewBuilder(16)
	r, err := NewReader(b.Finish(), bytes.Compare)
	if err != nil {
		t.Fatal(err)
	}
	it := r.NewIter()
	it.First()
	if it.Valid() {
		t.Fatal("empty block iterates")
	}
	it.Seek([]byte("x"))
	if it.Valid() {
		t.Fatal("empty block seek valid")
	}
}

func TestBuilderReset(t *testing.T) {
	b := NewBuilder(4)
	b.Add([]byte("a"), []byte("1"))
	b.Finish()
	b.Reset()
	if !b.Empty() || b.Entries() != 0 {
		t.Fatal("reset builder not empty")
	}
	b.Add([]byte("z"), []byte("26"))
	r, err := NewReader(b.Finish(), bytes.Compare)
	if err != nil {
		t.Fatal(err)
	}
	it := r.NewIter()
	it.First()
	if !it.Valid() || string(it.Key()) != "z" {
		t.Fatal("reused builder produced a bad block")
	}
}

func TestEstimatedSizeGrows(t *testing.T) {
	b := NewBuilder(16)
	prev := b.EstimatedSize()
	for i := 0; i < 50; i++ {
		b.Add([]byte(fmt.Sprintf("key%04d", i)), bytes.Repeat([]byte("v"), 20))
		if sz := b.EstimatedSize(); sz <= prev {
			t.Fatalf("estimated size did not grow at entry %d", i)
		} else {
			prev = sz
		}
	}
}

func TestMalformedBlocksRejected(t *testing.T) {
	if _, err := NewReader([]byte{1, 2}, bytes.Compare); err == nil {
		t.Fatal("2-byte block accepted")
	}
	// Restart count pointing beyond the data.
	bad := []byte{0, 0, 0, 0, 255, 0, 0, 0}
	if _, err := NewReader(bad, bytes.Compare); err == nil {
		t.Fatal("bogus restart count accepted")
	}
}

func TestPrefixCompressionSavesSpace(t *testing.T) {
	long := NewBuilder(16)
	flat := NewBuilder(1)
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("a-very-long-common-prefix-%06d", i))
		long.Add(k, []byte("v"))
		flat.Add(k, []byte("v"))
	}
	if len(long.Finish()) >= len(flat.Finish()) {
		t.Fatal("prefix compression saved nothing")
	}
}

func BenchmarkBlockSeek(b *testing.B) {
	bb := NewBuilder(16)
	var ks [][]byte
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key%06d", i))
		ks = append(ks, k)
		bb.Add(k, []byte("value"))
	}
	r, err := NewReader(bb.Finish(), bytes.Compare)
	if err != nil {
		b.Fatal(err)
	}
	it := r.NewIter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Seek(ks[i%len(ks)])
	}
}
