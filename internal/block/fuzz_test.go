package block

import (
	"bytes"
	"testing"
)

// fuzzSeedBlocks builds representative block images for the corpus:
// valid blocks at both restart intervals, an empty block, and damaged
// variants. Checked-in regressions live in testdata/fuzz/FuzzBlockReader.
func fuzzSeedBlocks() [][]byte {
	var seeds [][]byte
	build := func(interval, n int) []byte {
		b := NewBuilder(interval)
		for i := 0; i < n; i++ {
			key := []byte{'k', byte('0' + i/10), byte('0' + i%10)}
			b.Add(key, bytes.Repeat([]byte{byte(i)}, i%7))
		}
		img := append([]byte(nil), b.Finish()...)
		seeds = append(seeds, img)
		return img
	}
	good := build(16, 40)
	build(1, 5)
	build(16, 0) // empty block: restart trailer only

	truncated := append([]byte(nil), good[:len(good)/2]...)
	seeds = append(seeds, truncated)
	flipped := append([]byte(nil), good...)
	flipped[3] ^= 0x40
	seeds = append(seeds, flipped)
	seeds = append(seeds, nil, []byte{0, 0, 0, 1})
	return seeds
}

// FuzzBlockReader feeds arbitrary bytes through the block decoder and
// checks its safety contract: parsing either fails cleanly with
// ErrBadBlock or yields an iterator that terminates without panicking,
// and whatever entries it does surface survive an encode→decode round
// trip bit-for-bit.
func FuzzBlockReader(f *testing.F) {
	for _, seed := range fuzzSeedBlocks() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(data, bytes.Compare)
		if err != nil {
			return
		}
		it := r.NewIter()
		type kv struct{ k, v []byte }
		var entries []kv
		for it.First(); it.Valid(); it.Next() {
			entries = append(entries, kv{
				append([]byte(nil), it.Key()...),
				append([]byte(nil), it.Value()...),
			})
			if len(entries) > len(data) {
				t.Fatalf("more entries (%d) than bytes (%d)", len(entries), len(data))
			}
		}
		// Seek must not panic on a corrupt image, whatever it lands on.
		if len(data) > 0 {
			it.Seek(data[:len(data)%8])
		}

		// Round trip: re-encoding the surfaced entries and decoding
		// again must reproduce them exactly. (Builder tolerates the
		// arbitrary key order a corrupt image can yield — prefix
		// compression only references the previous key.)
		b := NewBuilder(16)
		for _, e := range entries {
			b.Add(e.k, e.v)
		}
		r2, err := NewReader(b.Finish(), bytes.Compare)
		if err != nil {
			t.Fatalf("re-encoded block unreadable: %v", err)
		}
		it2 := r2.NewIter()
		i := 0
		for it2.First(); it2.Valid(); it2.Next() {
			if i >= len(entries) || !bytes.Equal(it2.Key(), entries[i].k) || !bytes.Equal(it2.Value(), entries[i].v) {
				t.Fatalf("round-trip entry %d mismatch", i)
			}
			i++
		}
		if err := it2.Err(); err != nil {
			t.Fatal(err)
		}
		if i != len(entries) {
			t.Fatalf("round trip lost entries: %d of %d", i, len(entries))
		}
	})
}
