// Package block implements the sorted key/value block format shared by
// SSTable data and index blocks, following LevelDB: entries are
// prefix-compressed against their predecessor, with restart points
// (full keys) every restartInterval entries; the block ends with the
// restart-offset array and its length.
//
// Entry encoding:
//
//	shared   varint  // bytes shared with the previous key
//	unshared varint  // bytes unique to this key
//	vlen     varint  // value length
//	key[shared:]     // unshared key suffix
//	value
package block

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Compare is the key ordering used by a block (internal-key order for
// data/index blocks).
type Compare func(a, b []byte) int

// Builder accumulates sorted entries into the block wire format.
type Builder struct {
	restartInterval int
	buf             []byte
	restarts        []uint32
	counter         int
	lastKey         []byte
	entries         int
}

// NewBuilder returns a builder with the given restart interval
// (LevelDB uses 16 for data blocks and 1 for index blocks).
func NewBuilder(restartInterval int) *Builder {
	if restartInterval < 1 {
		restartInterval = 1
	}
	return &Builder{
		restartInterval: restartInterval,
		restarts:        []uint32{0},
	}
}

// Add appends an entry; keys must arrive in strictly increasing order.
func (b *Builder) Add(key, value []byte) {
	shared := 0
	if b.counter < b.restartInterval {
		n := len(b.lastKey)
		if len(key) < n {
			n = len(key)
		}
		for shared < n && b.lastKey[shared] == key[shared] {
			shared++
		}
	} else {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
		b.counter = 0
	}
	b.buf = binary.AppendUvarint(b.buf, uint64(shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(key)-shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(value)))
	b.buf = append(b.buf, key[shared:]...)
	b.buf = append(b.buf, value...)
	b.lastKey = append(b.lastKey[:0], key...)
	b.counter++
	b.entries++
}

// EstimatedSize reports the current encoded size including the restart
// trailer.
func (b *Builder) EstimatedSize() int {
	return len(b.buf) + 4*len(b.restarts) + 4
}

// Entries reports the number of entries added.
func (b *Builder) Entries() int { return b.entries }

// Empty reports whether nothing has been added.
func (b *Builder) Empty() bool { return b.entries == 0 }

// Finish appends the restart array and returns the completed block.
// The builder must be Reset before reuse.
func (b *Builder) Finish() []byte {
	for _, r := range b.restarts {
		b.buf = binary.LittleEndian.AppendUint32(b.buf, r)
	}
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(len(b.restarts)))
	return b.buf
}

// Reset clears the builder for a new block.
func (b *Builder) Reset() {
	b.buf = b.buf[:0]
	b.restarts = append(b.restarts[:0], 0)
	b.counter = 0
	b.lastKey = b.lastKey[:0]
	b.entries = 0
}

// ErrBadBlock reports a malformed block image.
var ErrBadBlock = errors.New("block: malformed block")

// Reader decodes a block image.
type Reader struct {
	data     []byte // entry region
	restarts []uint32
	cmp      Compare
}

// NewReader parses a block produced by Builder.
func NewReader(data []byte, cmp Compare) (*Reader, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadBlock, len(data))
	}
	n := int(binary.LittleEndian.Uint32(data[len(data)-4:]))
	trailer := 4 * (n + 1)
	if n < 1 || trailer > len(data) {
		return nil, fmt.Errorf("%w: restart count %d", ErrBadBlock, n)
	}
	entryEnd := len(data) - trailer
	restarts := make([]uint32, n)
	for i := 0; i < n; i++ {
		restarts[i] = binary.LittleEndian.Uint32(data[entryEnd+4*i:])
		if int(restarts[i]) > entryEnd {
			return nil, fmt.Errorf("%w: restart offset %d beyond entries", ErrBadBlock, restarts[i])
		}
	}
	return &Reader{data: data[:entryEnd], restarts: restarts, cmp: cmp}, nil
}

// Iter iterates a block. The zero position is before the first entry.
type Iter struct {
	r       *Reader
	off     int // offset of the next entry to decode
	key     []byte
	value   []byte
	valid   bool
	corrupt error
}

// NewIter returns an iterator over the block.
func (r *Reader) NewIter() *Iter { return &Iter{r: r} }

// decodeAt decodes the entry at off, using key as the shared-prefix
// context, and returns the offset past the entry.
func (it *Iter) decodeAt(off int) int {
	data := it.r.data
	shared, n1 := binary.Uvarint(data[off:])
	if n1 <= 0 {
		it.fail(off)
		return -1
	}
	unshared, n2 := binary.Uvarint(data[off+n1:])
	if n2 <= 0 {
		it.fail(off)
		return -1
	}
	vlen, n3 := binary.Uvarint(data[off+n1+n2:])
	if n3 <= 0 {
		it.fail(off)
		return -1
	}
	p := off + n1 + n2 + n3
	if int(shared) > len(it.key) || p+int(unshared)+int(vlen) > len(data) {
		it.fail(off)
		return -1
	}
	it.key = append(it.key[:shared], data[p:p+int(unshared)]...)
	it.value = data[p+int(unshared) : p+int(unshared)+int(vlen)]
	return p + int(unshared) + int(vlen)
}

func (it *Iter) fail(off int) {
	it.valid = false
	it.corrupt = fmt.Errorf("%w: bad entry at %d", ErrBadBlock, off)
}

// First positions at the first entry.
func (it *Iter) First() {
	it.key = it.key[:0]
	it.off = 0
	it.valid = false
	if len(it.r.data) == 0 {
		return
	}
	if next := it.decodeAt(0); next >= 0 {
		it.off = next
		it.valid = true
	}
}

// Seek positions at the first entry with key >= target.
func (it *Iter) Seek(target []byte) {
	// Binary-search restart points for the last restart whose key is
	// < target, then scan forward.
	lo, hi := 0, len(it.r.restarts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		it.key = it.key[:0]
		if it.decodeAt(int(it.r.restarts[mid])) < 0 {
			return
		}
		if it.r.cmp(it.key, target) < 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	it.key = it.key[:0]
	off := int(it.r.restarts[lo])
	for off < len(it.r.data) {
		next := it.decodeAt(off)
		if next < 0 {
			return
		}
		if it.r.cmp(it.key, target) >= 0 {
			it.off = next
			it.valid = true
			return
		}
		off = next
	}
	it.valid = false
}

// Next advances to the following entry.
func (it *Iter) Next() {
	if !it.valid {
		return
	}
	if it.off >= len(it.r.data) {
		it.valid = false
		return
	}
	if next := it.decodeAt(it.off); next >= 0 {
		it.off = next
	}
}

// Valid reports whether the iterator is at an entry.
func (it *Iter) Valid() bool { return it.valid }

// Err reports a corruption encountered while iterating.
func (it *Iter) Err() error { return it.corrupt }

// Key returns the current key; the slice is reused across Next calls.
func (it *Iter) Key() []byte { return it.key }

// Value returns the current value; it aliases the block image.
func (it *Iter) Value() []byte { return it.value }
