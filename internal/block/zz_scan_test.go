package block

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// Round-trip with random keys, verify Seek on every possible target.
func TestScanSeekExhaustive(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rnd.Intn(40) + 1
		ri := []int{1, 2, 3, 16}[rnd.Intn(4)]
		keyset := map[string]string{}
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("%0*d", rnd.Intn(6)+1, rnd.Intn(500))
			keyset[k] = fmt.Sprintf("v%d", i)
		}
		var ks []string
		for k := range keyset {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		b := NewBuilder(ri)
		for _, k := range ks {
			b.Add([]byte(k), []byte(keyset[k]))
		}
		img := b.Finish()
		r, err := NewReader(append([]byte(nil), img...), bytes.Compare)
		if err != nil {
			t.Fatal(err)
		}
		// Full forward scan
		it := r.NewIter()
		i := 0
		for it.First(); it.Valid(); it.Next() {
			if string(it.Key()) != ks[i] || string(it.Value()) != keyset[ks[i]] {
				t.Fatalf("trial %d ri %d scan idx %d: got %q=%q want %q=%q", trial, ri, i, it.Key(), it.Value(), ks[i], keyset[ks[i]])
			}
			i++
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
		if i != len(ks) {
			t.Fatalf("trial %d: scan saw %d of %d", trial, i, len(ks))
		}
		// Seek every target incl. between-keys and beyond
		for probe := 0; probe < 60; probe++ {
			target := fmt.Sprintf("%0*d", rnd.Intn(6)+1, rnd.Intn(520))
			want := sort.SearchStrings(ks, target)
			it.Seek([]byte(target))
			if want == len(ks) {
				if it.Valid() {
					t.Fatalf("trial %d: seek %q: want invalid, got %q", trial, target, it.Key())
				}
				continue
			}
			if !it.Valid() || string(it.Key()) != ks[want] {
				t.Fatalf("trial %d ri %d: seek %q: want %q got valid=%v key=%q", trial, ri, target, ks[want], it.Valid(), it.Key())
			}
			// Next after Seek
			it.Next()
			if want+1 == len(ks) {
				if it.Valid() {
					t.Fatalf("trial %d: next after seek %q: want invalid got %q", trial, target, it.Key())
				}
			} else if !it.Valid() || string(it.Key()) != ks[want+1] {
				t.Fatalf("trial %d: next after seek %q: want %q got %q", trial, target, ks[want+1], it.Key())
			}
		}
	}
}
