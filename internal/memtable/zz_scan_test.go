package memtable

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"noblsm/internal/keys"
)

type mentry struct {
	uk   string
	seq  keys.SeqNum
	kind keys.Kind
	v    string
}

func TestMemtableModel(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		m := New(int64(trial))
		var es []mentry
		seq := keys.SeqNum(1)
		n := rnd.Intn(300) + 1
		for i := 0; i < n; i++ {
			uk := fmt.Sprintf("k%03d", rnd.Intn(60))
			kind := keys.KindValue
			if rnd.Intn(4) == 0 {
				kind = keys.KindDelete
			}
			v := fmt.Sprintf("v%d", i)
			m.Add(seq, kind, []byte(uk), []byte(v))
			es = append(es, mentry{uk, seq, kind, v})
			seq++
		}
		// Model: sorted by internal order
		sorted := append([]mentry(nil), es...)
		sort.Slice(sorted, func(a, b int) bool {
			if sorted[a].uk != sorted[b].uk {
				return sorted[a].uk < sorted[b].uk
			}
			return sorted[a].seq > sorted[b].seq
		})
		it := m.NewIterator()
		i := 0
		for it.First(); it.Valid(); it.Next() {
			uk, s, kd, ok := keys.ParseInternalKey(it.Key())
			if !ok {
				t.Fatal("bad ikey")
			}
			w := sorted[i]
			if string(uk) != w.uk || s != w.seq || kd != w.kind || string(it.Value()) != w.v {
				t.Fatalf("trial %d idx %d: got %q@%d kind %v = %q want %q@%d kind %v = %q",
					trial, i, uk, s, kd, it.Value(), w.uk, w.seq, w.kind, w.v)
			}
			i++
		}
		if i != len(sorted) {
			t.Fatalf("trial %d: iterated %d of %d", trial, i, len(sorted))
		}
		// Get at random snapshots
		for probe := 0; probe < 200; probe++ {
			uk := fmt.Sprintf("k%03d", rnd.Intn(62))
			s := keys.SeqNum(rnd.Intn(int(seq) + 1))
			// model: newest entry for uk with seq <= s
			var best *mentry
			for j := range es {
				e := &es[j]
				if e.uk == uk && e.seq <= s && (best == nil || e.seq > best.seq) {
					best = e
				}
			}
			v, deleted, found := m.Get([]byte(uk), s)
			if best == nil {
				if found {
					t.Fatalf("trial %d: get %q@%d: found=%v want not found", trial, uk, s, found)
				}
				continue
			}
			if !found {
				t.Fatalf("trial %d: get %q@%d: not found, want %q (seq %d kind %v)", trial, uk, s, best.v, best.seq, best.kind)
			}
			if best.kind == keys.KindDelete {
				if !deleted {
					t.Fatalf("trial %d: get %q@%d: want deleted", trial, uk, s)
				}
			} else if deleted || string(v) != best.v {
				t.Fatalf("trial %d: get %q@%d: got %q deleted=%v want %q", trial, uk, s, v, deleted, best.v)
			}
			// Seek consistency
			it.Seek(keys.MakeInternalKey(nil, []byte(uk), s, keys.KindSeek))
			if !it.Valid() {
				t.Fatalf("trial %d: seek invalid but get found", trial)
			}
		}
	}
}
