// Package memtable provides the in-memory mutable table of the
// LSM-tree: a skiplist ordered by internal key. Arriving writes are
// inserted with their sequence numbers; a full memtable is frozen
// (made immutable) and dumped to an L0 SSTable by a minor compaction.
package memtable

import (
	"math/rand"

	"noblsm/internal/keys"
)

const maxHeight = 12

// MemTable is a skiplist keyed by internal key. It is not
// self-synchronizing; the engine serializes access under its mutex,
// matching LevelDB (writers hold the DB lock, readers use a frozen
// reference).
type MemTable struct {
	head   *node
	rnd    *rand.Rand
	height int
	// usage approximates memory consumption for the write-buffer
	// accounting that triggers minor compactions.
	usage int64
	count int
}

type node struct {
	ikey  []byte
	value []byte
	next  []*node
}

// New returns an empty memtable. The seed makes skiplist shapes
// deterministic for reproducible experiments.
func New(seed int64) *MemTable {
	return &MemTable{
		head:   &node{next: make([]*node, maxHeight)},
		rnd:    rand.New(rand.NewSource(seed)),
		height: 1,
	}
}

func (m *MemTable) randomHeight() int {
	h := 1
	for h < maxHeight && m.rnd.Intn(4) == 0 {
		h++
	}
	return h
}

// Add inserts an entry. kind distinguishes values from tombstones. The
// ikey/value bytes are copied.
func (m *MemTable) Add(seq keys.SeqNum, kind keys.Kind, ukey, value []byte) {
	ikey := keys.MakeInternalKey(make([]byte, 0, len(ukey)+keys.TrailerLen), ukey, seq, kind)
	v := append([]byte(nil), value...)

	var prev [maxHeight]*node
	x := m.head
	for level := m.height - 1; level >= 0; level-- {
		for x.next[level] != nil && keys.CompareInternal(x.next[level].ikey, ikey) < 0 {
			x = x.next[level]
		}
		prev[level] = x
	}
	h := m.randomHeight()
	if h > m.height {
		for level := m.height; level < h; level++ {
			prev[level] = m.head
		}
		m.height = h
	}
	n := &node{ikey: ikey, value: v, next: make([]*node, h)}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	m.usage += int64(len(ikey) + len(v) + 16*h)
	m.count++
}

// Get looks up ukey at or below seq. It returns (value, true, true)
// for a live value, (nil, true, true-deleted) semantics as:
// found=false if no entry for ukey is visible; deleted=true if the
// newest visible entry is a tombstone.
func (m *MemTable) Get(ukey []byte, seq keys.SeqNum) (value []byte, deleted, found bool) {
	seek := keys.MakeInternalKey(nil, ukey, seq, keys.KindSeek)
	x := m.head
	for level := m.height - 1; level >= 0; level-- {
		for x.next[level] != nil && keys.CompareInternal(x.next[level].ikey, seek) < 0 {
			x = x.next[level]
		}
	}
	n := x.next[0]
	if n == nil {
		return nil, false, false
	}
	nuk, _, kind, ok := keys.ParseInternalKey(n.ikey)
	if !ok || keys.CompareUser(nuk, ukey) != 0 {
		return nil, false, false
	}
	if kind == keys.KindDelete {
		return nil, true, true
	}
	return n.value, false, true
}

// ApproximateMemoryUsage reports the accumulated entry footprint.
func (m *MemTable) ApproximateMemoryUsage() int64 { return m.usage }

// Len reports the number of entries (including tombstones and
// superseded versions).
func (m *MemTable) Len() int { return m.count }

// Empty reports whether no entries have been added.
func (m *MemTable) Empty() bool { return m.count == 0 }

// Iterator walks the memtable in internal-key order.
type Iterator struct {
	m *MemTable
	n *node
}

// NewIterator returns an iterator positioned before the first entry;
// call First or Seek before use.
func (m *MemTable) NewIterator() *Iterator { return &Iterator{m: m} }

// First positions at the smallest entry.
func (it *Iterator) First() { it.n = it.m.head.next[0] }

// Seek positions at the first entry with internal key >= ikey.
func (it *Iterator) Seek(ikey []byte) {
	x := it.m.head
	for level := it.m.height - 1; level >= 0; level-- {
		for x.next[level] != nil && keys.CompareInternal(x.next[level].ikey, ikey) < 0 {
			x = x.next[level]
		}
	}
	it.n = x.next[0]
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.n != nil }

// Next advances to the following entry.
func (it *Iterator) Next() { it.n = it.n.next[0] }

// Key returns the current internal key. The slice is owned by the
// memtable and valid until the memtable is released.
func (it *Iterator) Key() []byte { return it.n.ikey }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.n.value }
