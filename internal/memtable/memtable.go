// Package memtable provides the in-memory mutable table of the
// LSM-tree: an arena-backed skiplist ordered by internal key.
// Arriving writes are inserted with their sequence numbers; a full
// memtable is frozen (made immutable) and dumped to an L0 SSTable by
// a minor compaction.
//
// Concurrency model (LevelDB's): ONE writer at a time (the engine's
// group-commit leader serializes inserts) and ANY number of lock-free
// readers. Inserts link nodes bottom-up through atomic pointer
// stores; a node's key/value bytes are fully written into the arena
// before the pointer that publishes it, so a reader that observes the
// pointer (atomic load) also observes the bytes. Readers therefore
// run Get and iteration with no mutex at all.
package memtable

import (
	"math/rand"
	"sync/atomic"

	"noblsm/internal/keys"
)

const maxHeight = 12

// arenaBlockSize is the granularity of key/value byte allocation.
// Entries larger than a block get a dedicated block.
const arenaBlockSize = 64 << 10

// arena is a bump allocator for entry bytes. Only the single writer
// allocates; readers never touch it directly (they see arena bytes
// only through published node pointers).
type arena struct {
	cur    []byte // remaining tail of the current block
	blocks int    // blocks allocated (for introspection/tests)
}

// alloc returns a fresh n-byte slice carved from the arena.
func (a *arena) alloc(n int) []byte {
	if n > len(a.cur) {
		size := arenaBlockSize
		if n > size {
			size = n
		}
		a.cur = make([]byte, size)
		a.blocks++
	}
	b := a.cur[:n:n]
	a.cur = a.cur[n:]
	return b
}

// MemTable is a skiplist keyed by internal key: single-writer,
// multi-reader. The engine's write path serializes Add calls (the
// group-commit leader is the only inserter); Get and iterators are
// safe to call concurrently with an in-progress Add and with each
// other, without locks.
type MemTable struct {
	head *node
	rnd  *rand.Rand
	// height, usage and count are atomics so lock-free readers and
	// the unlocked write-buffer accounting see consistent values.
	height atomic.Int32
	// usage approximates memory consumption for the write-buffer
	// accounting that triggers minor compactions. The formula
	// (len(ikey)+len(value)+16*height per entry) is unchanged from
	// the pre-arena implementation so rotation points — and thus
	// every deterministic experiment shape — stay identical.
	usage atomic.Int64
	count atomic.Int64
	ar    arena
}

type node struct {
	ikey  []byte
	value []byte
	next  []atomic.Pointer[node]
}

// loadNext atomically reads the successor at level.
func (n *node) loadNext(level int) *node { return n.next[level].Load() }

// New returns an empty memtable. The seed makes skiplist shapes
// deterministic for reproducible experiments.
func New(seed int64) *MemTable {
	m := &MemTable{
		head: &node{next: make([]atomic.Pointer[node], maxHeight)},
		rnd:  rand.New(rand.NewSource(seed)),
	}
	m.height.Store(1)
	return m
}

func (m *MemTable) randomHeight() int {
	h := 1
	for h < maxHeight && m.rnd.Intn(4) == 0 {
		h++
	}
	return h
}

// Add inserts an entry. kind distinguishes values from tombstones.
// The ikey/value bytes are copied into the memtable's arena. Add is
// NOT safe for concurrent use with itself — the engine's write path
// guarantees a single inserter — but is safe to run concurrently
// with Get and iterators.
func (m *MemTable) Add(seq keys.SeqNum, kind keys.Kind, ukey, value []byte) {
	ikey := keys.MakeInternalKey(m.ar.alloc(len(ukey) + keys.TrailerLen)[:0], ukey, seq, kind)
	var v []byte
	if len(value) > 0 {
		v = m.ar.alloc(len(value))
		copy(v, value)
	}

	var prev [maxHeight]*node
	x := m.head
	height := int(m.height.Load())
	for level := height - 1; level >= 0; level-- {
		for nx := x.loadNext(level); nx != nil && keys.CompareInternal(nx.ikey, ikey) < 0; nx = x.loadNext(level) {
			x = nx
		}
		prev[level] = x
	}
	h := m.randomHeight()
	if h > height {
		for level := height; level < h; level++ {
			prev[level] = m.head
		}
		// Published before linking: a reader that loads the new
		// height early just walks head links that may still be nil
		// at the top, which the search loops tolerate.
		m.height.Store(int32(h))
	}
	n := &node{ikey: ikey, value: v, next: make([]atomic.Pointer[node], h)}
	for level := 0; level < h; level++ {
		// Bottom-up linking: by the time a reader can reach n via an
		// upper level, its lower links are already in place. The
		// store into prev's next is the release that publishes n's
		// bytes to the atomic-loading readers.
		n.next[level].Store(prev[level].loadNext(level))
		prev[level].next[level].Store(n)
	}
	m.usage.Add(int64(len(ikey) + len(v) + 16*h))
	m.count.Add(1)
}

// Get looks up ukey at or below seq. It returns (value, true, true)
// for a live value, (nil, true, true-deleted) semantics as:
// found=false if no entry for ukey is visible; deleted=true if the
// newest visible entry is a tombstone. Safe for concurrent use.
func (m *MemTable) Get(ukey []byte, seq keys.SeqNum) (value []byte, deleted, found bool) {
	seek := keys.MakeInternalKey(nil, ukey, seq, keys.KindSeek)
	x := m.head
	for level := int(m.height.Load()) - 1; level >= 0; level-- {
		for nx := x.loadNext(level); nx != nil && keys.CompareInternal(nx.ikey, seek) < 0; nx = x.loadNext(level) {
			x = nx
		}
	}
	// Re-advance at the bottom level: the final load can observe a
	// node spliced in after the descent passed x — always a newer
	// write, whose larger sequence sorts BEFORE seek — so without
	// this re-check a pinned read could return an entry above its
	// snapshot sequence.
	n := x.loadNext(0)
	for n != nil && keys.CompareInternal(n.ikey, seek) < 0 {
		n = n.loadNext(0)
	}
	if n == nil {
		return nil, false, false
	}
	nuk, _, kind, ok := keys.ParseInternalKey(n.ikey)
	if !ok || keys.CompareUser(nuk, ukey) != 0 {
		return nil, false, false
	}
	if kind == keys.KindDelete {
		return nil, true, true
	}
	return n.value, false, true
}

// ApproximateMemoryUsage reports the accumulated entry footprint
// (arena bytes handed out plus per-entry skiplist overhead).
func (m *MemTable) ApproximateMemoryUsage() int64 { return m.usage.Load() }

// Len reports the number of entries (including tombstones and
// superseded versions).
func (m *MemTable) Len() int { return int(m.count.Load()) }

// Empty reports whether no entries have been added.
func (m *MemTable) Empty() bool { return m.count.Load() == 0 }

// Iterator walks the memtable in internal-key order. Iterators are
// lock-free: one created while writes are still arriving observes
// every entry published before each positioning call, which is
// sufficient because the engine pins reads to a visible sequence
// number.
type Iterator struct {
	m *MemTable
	n *node
}

// NewIterator returns an iterator positioned before the first entry;
// call First or Seek before use.
func (m *MemTable) NewIterator() *Iterator { return &Iterator{m: m} }

// First positions at the smallest entry.
func (it *Iterator) First() { it.n = it.m.head.loadNext(0) }

// Seek positions at the first entry with internal key >= ikey.
func (it *Iterator) Seek(ikey []byte) {
	x := it.m.head
	for level := int(it.m.height.Load()) - 1; level >= 0; level-- {
		for nx := x.loadNext(level); nx != nil && keys.CompareInternal(nx.ikey, ikey) < 0; nx = x.loadNext(level) {
			x = nx
		}
	}
	// Same bottom-level re-advance as Get: the final load can catch a
	// concurrently spliced newer-seq node that sorts before ikey.
	n := x.loadNext(0)
	for n != nil && keys.CompareInternal(n.ikey, ikey) < 0 {
		n = n.loadNext(0)
	}
	it.n = n
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.n != nil }

// Next advances to the following entry.
func (it *Iterator) Next() { it.n = it.n.loadNext(0) }

// Key returns the current internal key. The slice is owned by the
// memtable and valid until the memtable is released.
func (it *Iterator) Key() []byte { return it.n.ikey }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.n.value }
