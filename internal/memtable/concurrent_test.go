package memtable

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"noblsm/internal/keys"
)

// TestConcurrentReadersDuringInserts exercises the single-writer /
// many-reader contract under the race detector: readers must see
// every entry that was published before their lookup, and iterators
// must always observe a strictly ordered, prefix-consistent view,
// even while the writer is mid-insert.
func TestConcurrentReadersDuringInserts(t *testing.T) {
	const n = 20_000
	m := New(11)
	var published atomic.Int64 // highest i whose Add has returned

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Point readers: any key published before the read must be found
	// with its exact value (keys are unique, one version each).
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				hi := published.Load()
				if hi < 0 {
					continue
				}
				i := rnd.Int63n(hi + 1)
				uk := []byte(fmt.Sprintf("key%08d", i))
				v, deleted, found := m.Get(uk, keys.MaxSeqNum)
				if !found || deleted || string(v) != fmt.Sprintf("val%d", i) {
					t.Errorf("reader %d: key %d published but Get = %q,%v,%v", r, i, v, deleted, found)
					return
				}
			}
		}(r)
	}

	// Iterator readers: full scans must be strictly ordered and
	// contain at least every entry published before the scan began.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var prev []byte
			for {
				select {
				case <-stop:
					return
				default:
				}
				before := published.Load() + 1
				it := m.NewIterator()
				count := int64(0)
				prev = prev[:0]
				for it.First(); it.Valid(); it.Next() {
					if len(prev) > 0 && keys.CompareInternal(prev, it.Key()) >= 0 {
						t.Errorf("scanner %d: out-of-order keys during concurrent insert", r)
						return
					}
					prev = append(prev[:0], it.Key()...)
					count++
				}
				if count < before {
					t.Errorf("scanner %d: scan saw %d entries, %d were published before it started", r, count, before)
					return
				}
			}
		}(r)
	}

	published.Store(-1)
	for i := int64(0); i < n; i++ {
		m.Add(keys.SeqNum(i+1), keys.KindValue,
			[]byte(fmt.Sprintf("key%08d", i)), []byte(fmt.Sprintf("val%d", i)))
		published.Store(i)
	}
	close(stop)
	wg.Wait()

	if m.Len() != n {
		t.Fatalf("Len() = %d, want %d", m.Len(), n)
	}
}

// TestArenaAllocation checks the bump allocator carves non-aliasing
// slices and rolls over to fresh blocks for oversized entries.
func TestArenaAllocation(t *testing.T) {
	var a arena
	x := a.alloc(10)
	y := a.alloc(10)
	copy(x, "xxxxxxxxxx")
	copy(y, "yyyyyyyyyy")
	if string(x) != "xxxxxxxxxx" {
		t.Fatal("allocations alias")
	}
	if cap(x) != 10 {
		t.Fatalf("alloc cap = %d, want clamped to 10", cap(x))
	}
	big := a.alloc(arenaBlockSize * 2)
	if len(big) != arenaBlockSize*2 {
		t.Fatalf("oversized alloc len = %d", len(big))
	}
	if a.blocks != 2 {
		t.Fatalf("blocks = %d, want 2", a.blocks)
	}
}
