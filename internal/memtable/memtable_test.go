package memtable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"noblsm/internal/keys"
)

func TestAddGet(t *testing.T) {
	m := New(1)
	m.Add(1, keys.KindValue, []byte("apple"), []byte("red"))
	m.Add(2, keys.KindValue, []byte("banana"), []byte("yellow"))

	v, deleted, found := m.Get([]byte("apple"), keys.MaxSeqNum)
	if !found || deleted || string(v) != "red" {
		t.Fatalf("Get(apple) = %q,%v,%v", v, deleted, found)
	}
	if _, _, found := m.Get([]byte("cherry"), keys.MaxSeqNum); found {
		t.Fatal("found a missing key")
	}
}

func TestGetRespectsSnapshotSeq(t *testing.T) {
	m := New(1)
	m.Add(10, keys.KindValue, []byte("k"), []byte("v10"))
	m.Add(20, keys.KindValue, []byte("k"), []byte("v20"))

	if v, _, _ := m.Get([]byte("k"), keys.MaxSeqNum); string(v) != "v20" {
		t.Fatalf("latest read %q", v)
	}
	if v, _, _ := m.Get([]byte("k"), 15); string(v) != "v10" {
		t.Fatalf("snapshot@15 read %q", v)
	}
	if _, _, found := m.Get([]byte("k"), 5); found {
		t.Fatal("snapshot@5 saw a later write")
	}
}

func TestTombstoneShadowsValue(t *testing.T) {
	m := New(1)
	m.Add(1, keys.KindValue, []byte("k"), []byte("v"))
	m.Add(2, keys.KindDelete, []byte("k"), nil)
	v, deleted, found := m.Get([]byte("k"), keys.MaxSeqNum)
	if !found || !deleted || v != nil {
		t.Fatalf("tombstone read: %q,%v,%v", v, deleted, found)
	}
	// The old version is still visible below the tombstone.
	if v, deleted, _ := m.Get([]byte("k"), 1); deleted || string(v) != "v" {
		t.Fatal("old version hidden by future tombstone")
	}
}

func TestIteratorOrdered(t *testing.T) {
	m := New(7)
	rnd := rand.New(rand.NewSource(7))
	want := map[string]string{}
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key%06d", rnd.Intn(500))
		v := fmt.Sprintf("val%d", i)
		m.Add(keys.SeqNum(i+1), keys.KindValue, []byte(k), []byte(v))
		want[k] = v
	}
	it := m.NewIterator()
	var prev []byte
	seen := map[string]string{}
	for it.First(); it.Valid(); it.Next() {
		if prev != nil && keys.CompareInternal(prev, it.Key()) >= 0 {
			t.Fatal("iterator out of order")
		}
		prev = append(prev[:0], it.Key()...)
		uk := string(keys.UserKey(it.Key()))
		if _, ok := seen[uk]; !ok {
			seen[uk] = string(it.Value()) // first hit = newest version
		}
	}
	if len(seen) != len(want) {
		t.Fatalf("iterated %d user keys, want %d", len(seen), len(want))
	}
	for k, v := range want {
		if seen[k] != v {
			t.Fatalf("key %s: newest = %q, want %q", k, seen[k], v)
		}
	}
}

func TestIteratorSeek(t *testing.T) {
	m := New(1)
	for _, k := range []string{"b", "d", "f"} {
		m.Add(1, keys.KindValue, []byte(k), []byte("v"))
	}
	it := m.NewIterator()
	it.Seek(keys.MakeInternalKey(nil, []byte("c"), keys.MaxSeqNum, keys.KindSeek))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "d" {
		t.Fatalf("seek(c) landed on %q", it.Key())
	}
	it.Seek(keys.MakeInternalKey(nil, []byte("z"), keys.MaxSeqNum, keys.KindSeek))
	if it.Valid() {
		t.Fatal("seek past end is valid")
	}
}

func TestUsageAndLen(t *testing.T) {
	m := New(1)
	if !m.Empty() || m.Len() != 0 || m.ApproximateMemoryUsage() != 0 {
		t.Fatal("fresh memtable not empty")
	}
	m.Add(1, keys.KindValue, []byte("k"), []byte("0123456789"))
	if m.Empty() || m.Len() != 1 {
		t.Fatal("memtable empty after add")
	}
	if m.ApproximateMemoryUsage() < 10 {
		t.Fatalf("usage %d too small", m.ApproximateMemoryUsage())
	}
}

func TestOrderMatchesSortReference(t *testing.T) {
	// Property-style reference check: iterating the skiplist yields
	// exactly sort.Slice order of the inserted internal keys.
	m := New(3)
	rnd := rand.New(rand.NewSource(3))
	var ikeys [][]byte
	for i := 0; i < 2000; i++ {
		k := []byte(fmt.Sprintf("%04d", rnd.Intn(300)))
		seq := keys.SeqNum(i + 1)
		kind := keys.KindValue
		if rnd.Intn(10) == 0 {
			kind = keys.KindDelete
		}
		m.Add(seq, kind, k, []byte("v"))
		ikeys = append(ikeys, keys.MakeInternalKey(nil, k, seq, kind))
	}
	sort.Slice(ikeys, func(i, j int) bool { return keys.CompareInternal(ikeys[i], ikeys[j]) < 0 })
	it := m.NewIterator()
	i := 0
	for it.First(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Key(), ikeys[i]) {
			t.Fatalf("position %d: got %s want %s", i, keys.String(it.Key()), keys.String(ikeys[i]))
		}
		i++
	}
	if i != len(ikeys) {
		t.Fatalf("iterated %d entries, want %d", i, len(ikeys))
	}
}

func BenchmarkAdd(b *testing.B) {
	m := New(1)
	key := make([]byte, 16)
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binaryPut(key, uint64(i))
		m.Add(keys.SeqNum(i+1), keys.KindValue, key, val)
	}
}

func BenchmarkGet(b *testing.B) {
	m := New(1)
	key := make([]byte, 16)
	for i := 0; i < 100000; i++ {
		binaryPut(key, uint64(i))
		m.Add(keys.SeqNum(i+1), keys.KindValue, key, []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binaryPut(key, uint64(i%100000))
		m.Get(key, keys.MaxSeqNum)
	}
}

func binaryPut(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (56 - 8*i))
	}
}

// TestGetSeqBoundUnderConcurrentAdd regression-tests the bottom-level
// re-advance in Get and Iterator.Seek: the descent's final
// next-pointer load can observe a node a concurrent Add spliced in
// after the traversal passed — always a newer write, whose larger
// sequence sorts before the seek key — and without the re-check a
// read pinned at sequence S could return an entry above S. The
// writer publishes each sequence only after Add returns, so every
// pinned probe has a fully linked prefix to read against; any value
// above the pin is the race.
func TestGetSeqBoundUnderConcurrentAdd(t *testing.T) {
	const (
		numKeys = 4
		ops     = 20000
		readers = 4
	)
	m := New(1)
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%02d", i%numKeys)) }
	var published atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= ops; i++ {
			m.Add(keys.SeqNum(i), keys.KindValue, key(i), []byte(fmt.Sprintf("%d", i)))
			published.Store(uint64(i))
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-done:
					return
				default:
				}
				pin := keys.SeqNum(published.Load())
				if pin == 0 {
					continue
				}
				k := key(rng.Intn(numKeys))
				if v, _, found := m.Get(k, pin); found {
					got, err := strconv.Atoi(string(v))
					if err != nil || keys.SeqNum(got) > pin {
						errs <- fmt.Errorf("Get(%q, %d) returned entry at seq %s", k, pin, v)
						return
					}
				}
				it := m.NewIterator()
				seek := keys.MakeInternalKey(nil, k, pin, keys.KindSeek)
				it.Seek(seek)
				if it.Valid() && keys.CompareInternal(it.Key(), seek) < 0 {
					errs <- fmt.Errorf("Seek(%q, %d) positioned before the seek key", k, pin)
					return
				}
			}
		}(r)
	}
	<-done
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
