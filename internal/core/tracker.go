// Package core implements NobLSM's contribution (Section 4 of the
// paper): crash-consistent major compactions without fsync, built on
// ext4's asynchronous journal commits.
//
// After a major compaction produces q new SSTables (successors) from p
// old ones (predecessors), NobLSM does not sync the successors.
// Instead it:
//
//  1. registers the successors' inodes with the kernel via the
//     check_commit syscall;
//  2. records the p→q dependency in a global pair of sets, keeping the
//     predecessors on disk as shadow backups (they are out of the
//     Version, so they serve no reads);
//  3. polls is_committed every poll interval (5 s, matching the
//     journal commit cadence) and, once every successor of a
//     dependency is committed, deletes its predecessors — whose
//     Committed-Table entries the kernel erases on unlink.
//
// A crash before the successors commit rolls the filesystem back to a
// state where the (durable prefix of the) MANIFEST still references
// the predecessors, which are still on disk; a crash after it either
// sees the same, or the new version with durable successors. Either
// way every referenced SSTable is intact — the consistency the paper's
// power-cut test verifies.
package core

import (
	"fmt"
	"sort"
	"sync"

	"noblsm/internal/obs"
	"noblsm/internal/vclock"
)

// Syscalls is the kernel interface the tracker needs — the syscalls
// added to ext4 (implemented by internal/ext4).
type Syscalls interface {
	// CheckCommit registers inodes in the Pending Table.
	CheckCommit(tl *vclock.Timeline, inos ...int64)
	// IsCommitted reports whether an inode reached the Committed
	// Table.
	IsCommitted(tl *vclock.Timeline, ino int64) bool
	// CommittedSize reports the journal-committed (durable) prefix of
	// an inode — the companion query for append-only files such as
	// the MANIFEST, whose edits gate write-ahead-log deletion.
	CommittedSize(tl *vclock.Timeline, ino int64) int64
}

// FileInfo identifies a predecessor SSTable to be reclaimed.
type FileInfo struct {
	// Number is the table's file number.
	Number uint64
	// Name is its filesystem path.
	Name string
}

// Succ identifies a successor whose durability gates reclamation.
type Succ struct {
	Number uint64
	Ino    int64
}

// dep is one p→q mapping between the global predecessor and successor
// sets. Reclamation additionally waits for the MANIFEST edit that
// recorded the compaction to be durable (manifestOff committed), or a
// crash could leave the durable manifest referencing predecessors
// whose unlinks — cheap metadata operations — committed first.
type dep struct {
	preds       []FileInfo
	succs       []uint64       // all successor file numbers, for introspection
	waiting     map[int64]bool // successor inos not yet committed
	manifestIno int64
	manifestOff int64
}

// Stats count tracker activity.
type Stats struct {
	// Registered counts dependencies ever registered.
	Registered int64
	// Resolved counts dependencies fully committed and reclaimed.
	Resolved int64
	// PredsDeleted counts predecessor files reclaimed.
	PredsDeleted int64
	// Polls counts is_committed sweep rounds.
	Polls int64
	// SyscallChecks counts individual is_committed calls.
	SyscallChecks int64
}

// Tracker is the user-space half of NobLSM: the global pair of
// predecessor/successor sets with their p→q dependencies.
type Tracker struct {
	mu           sync.Mutex
	sys          Syscalls
	remove       func(tl *vclock.Timeline, f FileInfo)
	pollInterval vclock.Duration
	lastPoll     vclock.Time
	deps         []*dep
	// protected counts, per predecessor file number, the live
	// dependencies retaining it; the engine's obsolete-file GC must
	// skip protected files.
	protected map[uint64]int
	// pins counts, per file number, the checkpoint references holding
	// it. A pinned predecessor whose dependencies all resolve is not
	// reclaimed but parked in deferred; the last Unpin reclaims it.
	pins map[uint64]int
	// deferred holds predecessors whose reclamation completed
	// logically (all successors committed) while a pin was held.
	deferred map[uint64]FileInfo
	m        trackerMetrics
	trace    *obs.Tracer
}

// trackerMetrics are the tracker counters, resolved once from a
// registry under the "tracker." prefix; Stats() is a view over them.
type trackerMetrics struct {
	registered    *obs.Counter
	resolved      *obs.Counter
	predsDeleted  *obs.Counter
	polls         *obs.Counter
	syscallChecks *obs.Counter
}

func newTrackerMetrics(r *obs.Registry) trackerMetrics {
	return trackerMetrics{
		registered:    r.Counter("tracker.registered"),
		resolved:      r.Counter("tracker.resolved"),
		predsDeleted:  r.Counter("tracker.preds_deleted"),
		polls:         r.Counter("tracker.polls"),
		syscallChecks: r.Counter("tracker.syscall_checks"),
	}
}

// NewTracker returns a tracker using sys for commit inquiries and
// remove to reclaim predecessor files. pollInterval should match the
// journal commit interval (the paper uses 5 s for both). Counters go
// to a private registry; use NewTrackerObserved to share one.
func NewTracker(sys Syscalls, pollInterval vclock.Duration, remove func(tl *vclock.Timeline, f FileInfo)) *Tracker {
	return NewTrackerObserved(sys, pollInterval, remove, nil, nil)
}

// NewTrackerObserved is NewTracker with the tracker's counters
// registered into r (nil: private registry) and retention/poll events
// emitted to trace (nil: no tracing).
func NewTrackerObserved(sys Syscalls, pollInterval vclock.Duration, remove func(tl *vclock.Timeline, f FileInfo), r *obs.Registry, trace *obs.Tracer) *Tracker {
	if pollInterval <= 0 {
		panic("core: poll interval must be positive")
	}
	if r == nil {
		r = obs.NewRegistry()
	}
	return &Tracker{
		sys:          sys,
		remove:       remove,
		pollInterval: pollInterval,
		protected:    make(map[uint64]int),
		pins:         make(map[uint64]int),
		deferred:     make(map[uint64]FileInfo),
		m:            newTrackerMetrics(r),
		trace:        trace,
	}
}

// Register records a compaction's p→q dependency: preds are retained
// as shadow backups until every successor inode is committed. The
// successors are handed to the kernel via check_commit. Registering
// with no predecessors still tracks the successors (nothing to
// reclaim); registering with no successors reclaims preds at the next
// poll only after the empty set trivially resolves — immediately.
func (t *Tracker) Register(tl *vclock.Timeline, preds []FileInfo, succs []Succ) {
	t.RegisterWithManifest(tl, preds, succs, 0, 0)
}

// RegisterWithManifest is Register with the additional condition that
// the MANIFEST (manifestIno) must be durably committed past
// manifestOff — the end of the edit describing this compaction —
// before the predecessors may be reclaimed. A zero ino skips the
// condition.
func (t *Tracker) RegisterWithManifest(tl *vclock.Timeline, preds []FileInfo, succs []Succ, manifestIno int64, manifestOff int64) {
	inos := make([]int64, len(succs))
	for i, s := range succs {
		inos[i] = s.Ino
	}
	if len(inos) > 0 {
		t.sys.CheckCommit(tl, inos...)
	}

	t.mu.Lock()
	t.m.registered.Inc()
	if len(succs) == 0 && manifestIno == 0 {
		// Nothing gates reclamation: delete preds now — except pinned
		// ones, which a checkpoint still references.
		var toDelete []FileInfo
		for _, p := range preds {
			if t.pins[p.Number] > 0 {
				t.deferred[p.Number] = p
			} else {
				toDelete = append(toDelete, p)
			}
		}
		t.mu.Unlock()
		for _, p := range toDelete {
			t.remove(tl, p)
		}
		t.m.resolved.Inc()
		t.m.predsDeleted.Add(int64(len(toDelete)))
		return
	}
	d := &dep{
		preds:       preds,
		waiting:     make(map[int64]bool, len(succs)),
		manifestIno: manifestIno,
		manifestOff: manifestOff,
	}
	for _, s := range succs {
		d.succs = append(d.succs, s.Number)
		d.waiting[s.Ino] = true
	}
	for _, p := range preds {
		t.protected[p.Number]++
	}
	t.deps = append(t.deps, d)
	t.mu.Unlock()
	if t.trace != nil {
		t.trace.Instant(obs.TidTracker, "tracker", "shadow.retain", tl.Now(),
			obs.KV{K: "preds", V: fileNumbers(preds)}, obs.KV{K: "succs", V: len(succs)})
	}
}

// fileNumbers renders predecessor numbers for event args.
func fileNumbers(fs []FileInfo) []uint64 {
	out := make([]uint64, len(fs))
	for i, f := range fs {
		out[i] = f.Number
	}
	return out
}

// Protected reports whether the file number is retained as a shadow
// predecessor and must not be garbage-collected.
func (t *Tracker) Protected(number uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.protected[number] > 0
}

// Pin takes one checkpoint reference on each file number. While any
// pin is held, the tracker never hands a resolved dependency's
// predecessor to remove — it parks the file in the deferred set
// instead — so a checkpoint's hard-link export can proceed without
// racing shadow reclamation.
func (t *Tracker) Pin(nums ...uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, n := range nums {
		t.pins[n]++
	}
}

// Unpin drops one checkpoint reference per file number. Files whose
// last pin is released and whose logical reclamation already happened
// (deferred) are deleted now, unless a live dependency re-protected
// them in the meantime.
func (t *Tracker) Unpin(tl *vclock.Timeline, nums ...uint64) {
	t.mu.Lock()
	var toDelete []FileInfo
	for _, n := range nums {
		t.pins[n]--
		if t.pins[n] > 0 {
			continue
		}
		delete(t.pins, n)
		if fi, ok := t.deferred[n]; ok && t.protected[n] == 0 {
			delete(t.deferred, n)
			toDelete = append(toDelete, fi)
		}
	}
	t.m.predsDeleted.Add(int64(len(toDelete)))
	t.mu.Unlock()
	if t.trace != nil && len(toDelete) > 0 {
		t.trace.Instant(obs.TidTracker, "tracker", "shadow.delete", tl.Now(),
			obs.KV{K: "files", V: fileNumbers(toDelete)}, obs.KV{K: "cause", V: "unpin"})
	}
	for _, p := range toDelete {
		t.remove(tl, p)
	}
}

// Pinned reports whether any checkpoint reference holds the file.
func (t *Tracker) Pinned(number uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pins[number] > 0
}

// CancelFor atomically claims the unresolved dependency that produced
// successor succNum, on behalf of a repair that rolls the version back
// onto the dependency's predecessors. The dependency is dropped and
// the predecessors' protection released WITHOUT reclaiming the files —
// they are being returned to the version, where liveness protects
// them. Reports false if no unresolved dependency names succNum (it
// already resolved and the shadows are gone, or was never tracked):
// then the repair must not proceed.
//
// Safe against a concurrent Poll: Poll re-checks membership in t.deps
// under mu before resolving, so a dependency claimed here can never
// also be resolved there.
func (t *Tracker) CancelFor(succNum uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, d := range t.deps {
		found := false
		for _, s := range d.succs {
			if s == succNum {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		for _, p := range d.preds {
			t.protected[p.Number]--
			if t.protected[p.Number] <= 0 {
				delete(t.protected, p.Number)
			}
			// The file returns to the version, where liveness protects
			// it: a deferred-reclaim entry must not resurface at Unpin.
			delete(t.deferred, p.Number)
		}
		t.deps = append(t.deps[:i], t.deps[i+1:]...)
		return true
	}
	return false
}

// HasDepFor reports whether an unresolved dependency names succNum as
// a successor — i.e. whether CancelFor(succNum) would currently claim
// one.
func (t *Tracker) HasDepFor(succNum uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, d := range t.deps {
		for _, s := range d.succs {
			if s == succNum {
				return true
			}
		}
	}
	return false
}

// PendingDeps reports the number of unresolved dependencies.
func (t *Tracker) PendingDeps() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.deps)
}

// Stats returns a snapshot of the counters — a view over the
// registry metrics.
func (t *Tracker) Stats() Stats {
	return Stats{
		Registered:    t.m.registered.Value(),
		Resolved:      t.m.resolved.Value(),
		PredsDeleted:  t.m.predsDeleted.Value(),
		Polls:         t.m.polls.Value(),
		SyscallChecks: t.m.syscallChecks.Value(),
	}
}

// DepInfo describes one unresolved p→q dependency for introspection.
type DepInfo struct {
	// Preds are the retained shadow predecessor file numbers.
	Preds []uint64
	// Succs are ALL the dependency's successor file numbers — for a
	// sharded compaction, the outputs of every subcompaction, present
	// as one set because registration is a single atomic step.
	Succs []uint64
	// WaitingSuccs counts successor inodes not yet committed.
	WaitingSuccs int
}

// Inventory is a point-in-time view of the tracker's retention state,
// backing the "noblsm.tracker" property.
type Inventory struct {
	// Deps are the unresolved dependencies, oldest first.
	Deps []DepInfo
	// Protected are the shadow-retained predecessor file numbers,
	// sorted ascending.
	Protected []uint64
	// Pinned are the file numbers held by checkpoint references,
	// sorted ascending.
	Pinned []uint64
	// Deferred are shadow predecessors whose reclamation resolved
	// while pinned — files kept on disk purely by checkpoint refs —
	// sorted ascending.
	Deferred []uint64
}

// Inventory snapshots the retention state.
func (t *Tracker) Inventory() Inventory {
	t.mu.Lock()
	defer t.mu.Unlock()
	inv := Inventory{}
	for _, d := range t.deps {
		di := DepInfo{WaitingSuccs: len(d.waiting)}
		for _, p := range d.preds {
			di.Preds = append(di.Preds, p.Number)
		}
		di.Succs = append(di.Succs, d.succs...)
		inv.Deps = append(inv.Deps, di)
	}
	for n := range t.protected {
		inv.Protected = append(inv.Protected, n)
	}
	sort.Slice(inv.Protected, func(i, j int) bool { return inv.Protected[i] < inv.Protected[j] })
	for n := range t.pins {
		inv.Pinned = append(inv.Pinned, n)
	}
	sort.Slice(inv.Pinned, func(i, j int) bool { return inv.Pinned[i] < inv.Pinned[j] })
	for n := range t.deferred {
		inv.Deferred = append(inv.Deferred, n)
	}
	sort.Slice(inv.Deferred, func(i, j int) bool { return inv.Deferred[i] < inv.Deferred[j] })
	return inv
}

// MaybePoll runs a poll if a poll interval elapsed since the last one.
// The engine calls it opportunistically from its operation paths,
// which is how the "every five seconds" background inquiry manifests
// in virtual time.
func (t *Tracker) MaybePoll(tl *vclock.Timeline) {
	t.mu.Lock()
	due := len(t.deps) > 0 && tl.Now() >= t.lastPoll.Add(t.pollInterval)
	t.mu.Unlock()
	if due {
		t.Poll(tl)
	}
}

// Poll sweeps the dependency set: for each, it asks ext4 (via
// is_committed) about successors still waiting; dependencies whose
// successors are all committed have their predecessors deleted and are
// dropped.
func (t *Tracker) Poll(tl *vclock.Timeline) {
	t.mu.Lock()
	t.lastPoll = tl.Now()
	t.m.polls.Inc()
	deps := append([]*dep(nil), t.deps...)
	t.mu.Unlock()
	pollStart := tl.Now()

	var resolved []*dep
	for _, d := range deps {
		for ino := range d.waiting {
			t.m.syscallChecks.Inc()
			if t.sys.IsCommitted(tl, ino) {
				delete(d.waiting, ino)
			}
		}
		if len(d.waiting) > 0 {
			continue
		}
		if d.manifestIno != 0 {
			t.m.syscallChecks.Inc()
			if t.sys.CommittedSize(tl, d.manifestIno) < d.manifestOff {
				continue
			}
		}
		resolved = append(resolved, d)
	}
	if t.trace != nil {
		t.trace.Span(obs.TidTracker, "tracker", "tracker.poll", pollStart, tl.Now(),
			obs.KV{K: "deps", V: len(deps)}, obs.KV{K: "resolved", V: len(resolved)})
	}
	if len(resolved) == 0 {
		return
	}

	t.mu.Lock()
	remaining := t.deps[:0]
	isResolved := make(map[*dep]bool, len(resolved))
	for _, d := range resolved {
		isResolved[d] = true
	}
	var toDelete []FileInfo
	for _, d := range t.deps {
		if !isResolved[d] {
			remaining = append(remaining, d)
			continue
		}
		t.m.resolved.Inc()
		for _, p := range d.preds {
			t.protected[p.Number]--
			if t.protected[p.Number] <= 0 {
				delete(t.protected, p.Number)
				if t.pins[p.Number] > 0 {
					// A checkpoint still references this shadow: park
					// it; the last Unpin reclaims it.
					t.deferred[p.Number] = p
				} else {
					toDelete = append(toDelete, p)
				}
			}
		}
	}
	t.deps = remaining
	t.m.predsDeleted.Add(int64(len(toDelete)))
	t.mu.Unlock()

	if t.trace != nil && len(toDelete) > 0 {
		t.trace.Instant(obs.TidTracker, "tracker", "shadow.delete", tl.Now(),
			obs.KV{K: "files", V: fileNumbers(toDelete)})
	}
	for _, p := range toDelete {
		t.remove(tl, p)
	}
}

// Reset drops all state without reclaiming anything. Used after a
// crash: the user-space sets are volatile, and recovery re-derives
// which files are live from the recovered MANIFEST. Checkpoint pins
// are process state, not durable state, so they die here too.
func (t *Tracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.deps = nil
	t.protected = make(map[uint64]int)
	t.pins = make(map[uint64]int)
	t.deferred = make(map[uint64]FileInfo)
	t.lastPoll = 0
}

// String summarizes the tracker for debugging.
func (t *Tracker) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	waiting := 0
	for _, d := range t.deps {
		waiting += len(d.waiting)
	}
	return fmt.Sprintf("tracker{deps=%d waitingSuccs=%d protectedPreds=%d}", len(t.deps), waiting, len(t.protected))
}
