package core

import (
	"fmt"
	"sync"
	"testing"

	"noblsm/internal/vclock"
)

// fakeSys is a scriptable Syscalls implementation.
type fakeSys struct {
	mu        sync.Mutex
	pending   map[int64]bool
	committed map[int64]bool
	checks    int
}

func newFakeSys() *fakeSys {
	return &fakeSys{pending: map[int64]bool{}, committed: map[int64]bool{}}
}

func (f *fakeSys) CheckCommit(tl *vclock.Timeline, inos ...int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ino := range inos {
		f.pending[ino] = true
	}
}

func (f *fakeSys) IsCommitted(tl *vclock.Timeline, ino int64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.checks++
	return f.committed[ino]
}

func (f *fakeSys) CommittedSize(tl *vclock.Timeline, ino int64) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.committed[ino] {
		return 1 << 40
	}
	return 0
}

func (f *fakeSys) commit(inos ...int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ino := range inos {
		if f.pending[ino] {
			delete(f.pending, ino)
			f.committed[ino] = true
		}
	}
}

type removals struct {
	mu    sync.Mutex
	names []string
}

func (r *removals) fn(tl *vclock.Timeline, f FileInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.names = append(r.names, f.Name)
}

func (r *removals) list() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.names...)
}

func TestRegisterProtectsPredecessors(t *testing.T) {
	sys := newFakeSys()
	var rm removals
	tr := NewTracker(sys, 5*vclock.Second, rm.fn)
	tl := vclock.NewTimeline(0)

	preds := []FileInfo{{Number: 10, Name: "000010.ldb"}, {Number: 11, Name: "000011.ldb"}}
	succs := []Succ{{Number: 20, Ino: 200}, {Number: 21, Ino: 201}}
	tr.Register(tl, preds, succs)

	if !tr.Protected(10) || !tr.Protected(11) {
		t.Fatal("predecessors not protected")
	}
	if tr.Protected(20) {
		t.Fatal("successor spuriously protected")
	}
	if tr.PendingDeps() != 1 {
		t.Fatalf("deps = %d", tr.PendingDeps())
	}
	if !sys.pending[200] || !sys.pending[201] {
		t.Fatal("successors not handed to check_commit")
	}
}

func TestPollResolvesOnlyWhenAllSuccessorsCommit(t *testing.T) {
	sys := newFakeSys()
	var rm removals
	tr := NewTracker(sys, 5*vclock.Second, rm.fn)
	tl := vclock.NewTimeline(0)
	tr.Register(tl,
		[]FileInfo{{Number: 1, Name: "000001.ldb"}},
		[]Succ{{Number: 2, Ino: 20}, {Number: 3, Ino: 30}})

	sys.commit(20) // only one of two successors
	tr.Poll(tl)
	if tr.PendingDeps() != 1 || len(rm.list()) != 0 {
		t.Fatal("dependency resolved with an uncommitted successor")
	}
	if !tr.Protected(1) {
		t.Fatal("protection dropped early")
	}

	sys.commit(30)
	tr.Poll(tl)
	if tr.PendingDeps() != 0 {
		t.Fatal("dependency not resolved after full commit")
	}
	if got := rm.list(); len(got) != 1 || got[0] != "000001.ldb" {
		t.Fatalf("removed %v", got)
	}
	if tr.Protected(1) {
		t.Fatal("protection not dropped")
	}
}

func TestPollDoesNotRecheckCommittedSuccessors(t *testing.T) {
	sys := newFakeSys()
	tr := NewTracker(sys, 5*vclock.Second, func(*vclock.Timeline, FileInfo) {})
	tl := vclock.NewTimeline(0)
	tr.Register(tl, nil, []Succ{{Number: 2, Ino: 20}, {Number: 3, Ino: 30}})
	sys.commit(20)
	tr.Poll(tl) // 20 observed committed, 30 not
	checksAfterFirst := sys.checks
	tr.Poll(tl) // must only ask about 30
	if sys.checks != checksAfterFirst+1 {
		t.Fatalf("second poll made %d checks, want 1", sys.checks-checksAfterFirst)
	}
}

func TestRegisterWithNoSuccessorsReclaimsImmediately(t *testing.T) {
	sys := newFakeSys()
	var rm removals
	tr := NewTracker(sys, 5*vclock.Second, rm.fn)
	tl := vclock.NewTimeline(0)
	tr.Register(tl, []FileInfo{{Number: 9, Name: "000009.ldb"}}, nil)
	if got := rm.list(); len(got) != 1 || got[0] != "000009.ldb" {
		t.Fatalf("removed %v", got)
	}
	if tr.PendingDeps() != 0 {
		t.Fatal("empty dependency left pending")
	}
}

func TestSharedPredecessorAcrossDependencies(t *testing.T) {
	// A file can be predecessor of two concurrent compaction records
	// (e.g. registered again before the first resolves); it must stay
	// protected until both resolve.
	sys := newFakeSys()
	var rm removals
	tr := NewTracker(sys, 5*vclock.Second, rm.fn)
	tl := vclock.NewTimeline(0)
	shared := FileInfo{Number: 5, Name: "000005.ldb"}
	tr.Register(tl, []FileInfo{shared}, []Succ{{Number: 6, Ino: 60}})
	tr.Register(tl, []FileInfo{shared}, []Succ{{Number: 7, Ino: 70}})

	sys.commit(60)
	tr.Poll(tl)
	if !tr.Protected(5) {
		t.Fatal("shared predecessor unprotected while second dep pending")
	}
	if len(rm.list()) != 0 {
		t.Fatal("shared predecessor removed early")
	}
	sys.commit(70)
	tr.Poll(tl)
	if tr.Protected(5) {
		t.Fatal("shared predecessor still protected")
	}
	if got := rm.list(); len(got) != 1 {
		t.Fatalf("removed %v, want exactly once", got)
	}
}

func TestMaybePollHonorsInterval(t *testing.T) {
	sys := newFakeSys()
	tr := NewTracker(sys, 5*vclock.Second, func(*vclock.Timeline, FileInfo) {})
	tl := vclock.NewTimeline(0)
	tr.Register(tl, nil, []Succ{{Number: 1, Ino: 10}})

	tr.MaybePoll(tl) // interval elapsed since lastPoll=0? now=0 >= 0+5s is false... first poll waits
	if sys.checks != 0 {
		t.Fatalf("polled before the interval: %d checks", sys.checks)
	}
	tl.Advance(5 * vclock.Second)
	tr.MaybePoll(tl)
	if sys.checks != 1 {
		t.Fatalf("did not poll after the interval: %d checks", sys.checks)
	}
	tl.Advance(vclock.Second)
	tr.MaybePoll(tl)
	if sys.checks != 1 {
		t.Fatal("polled again before the next interval")
	}
}

func TestMaybePollSkipsWhenIdle(t *testing.T) {
	sys := newFakeSys()
	tr := NewTracker(sys, vclock.Second, func(*vclock.Timeline, FileInfo) {})
	tl := vclock.NewTimeline(0)
	tl.Advance(10 * vclock.Second)
	tr.MaybePoll(tl)
	if st := tr.Stats(); st.Polls != 0 {
		t.Fatal("polled with no dependencies")
	}
}

func TestResetDropsState(t *testing.T) {
	sys := newFakeSys()
	var rm removals
	tr := NewTracker(sys, vclock.Second, rm.fn)
	tl := vclock.NewTimeline(0)
	tr.Register(tl, []FileInfo{{Number: 1, Name: "a"}}, []Succ{{Number: 2, Ino: 20}})
	tr.Reset()
	if tr.PendingDeps() != 0 || tr.Protected(1) {
		t.Fatal("reset left state")
	}
	sys.commit(20)
	tl.Advance(5 * vclock.Second)
	tr.Poll(tl)
	if len(rm.list()) != 0 {
		t.Fatal("reset tracker still reclaimed")
	}
}

func TestStatsAccumulate(t *testing.T) {
	sys := newFakeSys()
	tr := NewTracker(sys, vclock.Second, func(*vclock.Timeline, FileInfo) {})
	tl := vclock.NewTimeline(0)
	for i := int64(0); i < 5; i++ {
		tr.Register(tl, []FileInfo{{Number: uint64(i), Name: fmt.Sprintf("%06d.ldb", i)}},
			[]Succ{{Number: uint64(100 + i), Ino: 100 + i}})
	}
	for i := int64(0); i < 5; i++ {
		sys.commit(100 + i)
	}
	tr.Poll(tl)
	st := tr.Stats()
	if st.Registered != 5 || st.Resolved != 5 || st.PredsDeleted != 5 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Polls != 1 || st.SyscallChecks != 5 {
		t.Fatalf("poll stats: %+v", st)
	}
}

func TestStringSummarizes(t *testing.T) {
	tr := NewTracker(newFakeSys(), vclock.Second, func(*vclock.Timeline, FileInfo) {})
	tl := vclock.NewTimeline(0)
	tr.Register(tl, []FileInfo{{Number: 1, Name: "a"}}, []Succ{{Number: 2, Ino: 20}})
	if got := tr.String(); got != "tracker{deps=1 waitingSuccs=1 protectedPreds=1}" {
		t.Fatalf("String = %q", got)
	}
}

func TestZeroPollIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTracker(newFakeSys(), 0, nil)
}

func TestCancelForClaimsDependency(t *testing.T) {
	sys := newFakeSys()
	var rm removals
	tr := NewTracker(sys, 5*vclock.Second, rm.fn)
	tl := vclock.NewTimeline(0)

	preds := []FileInfo{{Number: 1, Name: "000001.ldb"}, {Number: 2, Name: "000002.ldb"}}
	succs := []Succ{{Number: 10, Ino: 100}, {Number: 11, Ino: 101}}
	tr.Register(tl, preds, succs)

	if !tr.Protected(1) || !tr.Protected(2) {
		t.Fatal("predecessors not protected after Register")
	}
	if tr.CancelFor(99) {
		t.Fatal("CancelFor claimed an unknown successor")
	}
	if !tr.CancelFor(11) {
		t.Fatal("CancelFor failed to claim a live dependency")
	}
	if tr.Protected(1) || tr.Protected(2) {
		t.Fatal("protection not released by CancelFor")
	}
	if got := rm.list(); len(got) != 0 {
		t.Fatalf("CancelFor must not reclaim files, removed %v", got)
	}
	if tr.PendingDeps() != 0 {
		t.Fatal("dependency still pending after CancelFor")
	}
	// The claim is exclusive: a second claim via any successor of the
	// same dependency fails, and a later poll resolves nothing.
	if tr.CancelFor(10) {
		t.Fatal("dependency claimed twice")
	}
	sys.commit(100, 101)
	tr.Poll(tl)
	if got := rm.list(); len(got) != 0 {
		t.Fatalf("poll reclaimed files of a cancelled dependency: %v", got)
	}
}

func TestCancelForSharedPredecessorStaysProtected(t *testing.T) {
	sys := newFakeSys()
	var rm removals
	tr := NewTracker(sys, 5*vclock.Second, rm.fn)
	tl := vclock.NewTimeline(0)

	shared := []FileInfo{{Number: 1, Name: "000001.ldb"}}
	tr.Register(tl, shared, []Succ{{Number: 10, Ino: 100}})
	tr.Register(tl, shared, []Succ{{Number: 11, Ino: 101}})

	if !tr.CancelFor(10) {
		t.Fatal("CancelFor failed")
	}
	if !tr.Protected(1) {
		t.Fatal("predecessor shared with a live dependency lost protection")
	}
	if tr.PendingDeps() != 1 {
		t.Fatalf("pending deps = %d, want 1", tr.PendingDeps())
	}
}
