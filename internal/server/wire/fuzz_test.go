package wire

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// FuzzFrameDecode throws arbitrary bytes at the full server-side
// decode path — framing, then per-opcode request parsing — exactly as
// a connection handler consumes a socket. The properties: no panics,
// no unbounded allocation (enforced by MaxFrameBody and the
// count-vs-remaining checks), and decode always terminates.
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendGet(nil, 1, []byte("key")))
	f.Add(AppendPut(nil, 2, []byte("key"), bytes.Repeat([]byte("v"), 100)))
	f.Add(AppendMultiGet(nil, 3, [][]byte{[]byte("a"), []byte("b")}))
	f.Add(AppendScan(nil, 4, 2, []byte("s"), 10))
	f.Add(AppendStats(nil, 5))
	f.Add(AppendDelete(nil, 6, nil))
	f.Add(AppendCkptBegin(nil, 7, 1))
	f.Add(AppendCkptFetch(nil, 8, 1, 3, []byte("000005.ldb"), 4096, 1<<16))
	f.Add(AppendCkptRelease(nil, 9, 1, 3))
	f.Add(AppendWalTail(nil, 10, 0, 12, 512, 1<<20))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		for i := 0; i < 64; i++ { // bound work per input
			fr, b, err := ReadFrame(br, buf)
			if err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF ||
					err == ErrFrameTooLarge || err == ErrBadOp {
					return
				}
				t.Fatalf("unexpected ReadFrame error class: %v", err)
			}
			buf = b
			_, _ = ParseRequest(fr) // must not panic; error is fine
		}
	})
}

// FuzzResponseParse does the same for the client-side response path.
func FuzzResponseParse(f *testing.F) {
	f.Add(byte(OpGet), AppendGetResponse(nil, 1, []byte("v"))[headerSize:])
	f.Add(byte(OpMultiGet), AppendMultiGetResponse(nil, 2,
		[]MultiGetEntry{{Found: true, Value: []byte("x")}, {}})[headerSize:])
	f.Add(byte(OpScan), AppendScanResponse(nil, 3,
		[]KV{{Key: []byte("k"), Value: []byte("v")}})[headerSize:])
	f.Add(byte(OpStats), []byte{0, '{', '}'})
	f.Add(byte(OpPut), []byte{2, 'e', 'r', 'r'})
	f.Add(byte(OpCkptBegin), []byte{0, '{', '}'})
	f.Add(byte(OpCkptFetch), AppendCkptFetchResponse(nil, 11, []byte("bytes"))[headerSize:])
	f.Add(byte(OpCkptRelease), []byte{0})
	f.Add(byte(OpWalTail), AppendWalTailResponse(nil, 12, false, 12, 700, 42,
		[][]byte{[]byte("rec1"), []byte("rec2")})[headerSize:])

	f.Fuzz(func(t *testing.T, op byte, body []byte) {
		_, _ = ParseResponse(Frame{Op: Op(op), ID: 1, Body: body})
	})
}
