// Package wire defines the length-prefixed binary protocol noblsm's
// network front-end speaks over TCP. It is deliberately small: ten
// request opcodes, one response shape, varint-prefixed byte strings,
// no negotiation. The design constraints, in order:
//
//  1. Pipelining. A connection may have any number of requests in
//     flight; the server executes them in arrival order and responds
//     in the same order, each response echoing its request id. One
//     syscall can carry a whole burst of frames in either direction,
//     which is how thousands of client connections batch naturally
//     into the per-shard group-commit queues.
//  2. Hostile input never crashes the decoder. Every length is
//     bounds-checked against the frame it came from and against
//     MaxFrameBody before any allocation sized by it; FuzzFrameDecode
//     and FuzzRequestParse keep it that way.
//  3. Zero interpretation in the framing layer. A frame is
//     (op, request id, body); the body codecs are separate functions,
//     so a router can move frames without understanding them.
//
// Frame layout (little-endian):
//
//	uint32  body length N (excludes this header)
//	uint8   opcode
//	uint64  request id (echoed verbatim in the response)
//	N bytes body
//
// Response bodies start with a one-byte Status; the rest is
// status-specific (value bytes, per-key results, an error message).
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Op is a frame opcode. Requests and responses share the opcode; the
// direction is implied by who sent it.
type Op uint8

const (
	OpGet      Op = 1
	OpPut      Op = 2
	OpDelete   Op = 3
	OpMultiGet Op = 4
	OpScan     Op = 5
	OpStats    Op = 6
	// Checkpoint/replication ops (PR 9). CKPT_BEGIN pins a shard
	// checkpoint and returns its manifest of files; CKPT_FETCH streams a
	// byte range of one checkpointed file; CKPT_RELEASE drops the pin;
	// WAL_TAIL returns complete WAL records at/after a (log, offset)
	// cursor so a follower can stream the primary's write stream.
	OpCkptBegin   Op = 7
	OpCkptFetch   Op = 8
	OpCkptRelease Op = 9
	OpWalTail     Op = 10
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDelete:
		return "DELETE"
	case OpMultiGet:
		return "MULTIGET"
	case OpScan:
		return "SCAN"
	case OpStats:
		return "STATS"
	case OpCkptBegin:
		return "CKPT_BEGIN"
	case OpCkptFetch:
		return "CKPT_FETCH"
	case OpCkptRelease:
		return "CKPT_RELEASE"
	case OpWalTail:
		return "WAL_TAIL"
	default:
		return fmt.Sprintf("OP(%d)", uint8(o))
	}
}

// valid reports whether o is a known request opcode.
func (o Op) valid() bool { return o >= OpGet && o <= OpWalTail }

// Status is the first body byte of every response.
type Status uint8

const (
	// StatusOK: the operation succeeded; the rest of the body is the
	// op-specific result.
	StatusOK Status = 0
	// StatusNotFound: a Get for an absent or deleted key.
	StatusNotFound Status = 1
	// StatusErr: the operation failed; the rest of the body is a
	// human-readable message.
	StatusErr Status = 2
	// StatusShardClosed: the owning shard is administratively closed
	// (mid-reopen); the request may be retried.
	StatusShardClosed Status = 3
	// StatusBusy: the owning shard's admission governor is saturated
	// (the write's implied wait exceeded the configured stall
	// deadline); the request was NOT applied and may be retried after
	// backing off.
	StatusBusy Status = 4
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not-found"
	case StatusErr:
		return "error"
	case StatusShardClosed:
		return "shard-closed"
	case StatusBusy:
		return "busy"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// MaxFrameBody caps a frame body. Large enough for a full MultiGet
// batch of 1 KB values; small enough that a malicious length prefix
// cannot make the server allocate unboundedly.
const MaxFrameBody = 16 << 20

// headerSize is the fixed frame header: u32 length + u8 op + u64 id.
const headerSize = 4 + 1 + 8

// Protocol errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameBody")
	ErrBadOp         = errors.New("wire: unknown opcode")
	ErrTruncated     = errors.New("wire: truncated body")
)

// Frame is one decoded frame: opcode, request id, raw body. Body
// aliases the read buffer passed to ReadFrame and is only valid until
// the next ReadFrame on that reader.
type Frame struct {
	Op   Op
	ID   uint64
	Body []byte
}

// AppendFrame appends a complete frame to dst and returns the extended
// slice.
func AppendFrame(dst []byte, op Op, id uint64, body []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	hdr[4] = byte(op)
	binary.LittleEndian.PutUint64(hdr[5:13], id)
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// ReadFrame reads one frame from r, reusing buf for the body when it
// fits. It returns the frame, the (possibly grown) buffer for reuse,
// and an error: io.EOF cleanly between frames, io.ErrUnexpectedEOF for
// a torn frame, ErrFrameTooLarge/ErrBadOp for hostile headers.
func ReadFrame(r *bufio.Reader, buf []byte) (Frame, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		// Clean EOF only at a frame boundary's first byte.
		return Frame{}, buf, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxFrameBody {
		return Frame{}, buf, ErrFrameTooLarge
	}
	op := Op(hdr[4])
	if !op.valid() {
		return Frame{}, buf, ErrBadOp
	}
	id := binary.LittleEndian.Uint64(hdr[5:13])
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	body := buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, buf, err
	}
	return Frame{Op: op, ID: id, Body: body}, buf, nil
}

// ---------------------------------------------------------------------
// Body codecs — byte strings are uvarint-length-prefixed. Every reader
// validates lengths against the remaining body before allocating.

// appendBytes appends uvarint(len(b)) + b.
func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// readBytes consumes one length-prefixed byte string from b.
func readBytes(b []byte) (s, rest []byte, err error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)-w) {
		return nil, nil, ErrTruncated
	}
	return b[w : w+int(n)], b[w+int(n):], nil
}

// Request is a decoded request body. Fields are set per opcode:
// Key (GET/DELETE), Key+Value (PUT), Keys (MULTIGET),
// Shard+Start+Limit (SCAN); STATS has no payload;
// Shard (CKPT_BEGIN), Shard+CkptID+Name+Off+Max (CKPT_FETCH),
// Shard+CkptID (CKPT_RELEASE), Shard+Log+Off+Max (WAL_TAIL).
// All byte slices alias the frame body.
type Request struct {
	Op    Op
	ID    uint64
	Key   []byte
	Value []byte
	Keys  [][]byte
	Shard uint32
	Start []byte
	Limit uint32
	// Checkpoint/replication fields.
	CkptID uint64 // checkpoint session id (CKPT_FETCH / CKPT_RELEASE)
	Name   []byte // file name within the checkpoint (CKPT_FETCH)
	Log    uint64 // WAL log number cursor (WAL_TAIL)
	Off    uint64 // byte offset: into the file (CKPT_FETCH) or log (WAL_TAIL)
	Max    uint32 // response byte budget (CKPT_FETCH / WAL_TAIL)
}

// AppendGet appends a GET frame: body = key (raw; the whole body is
// the key, no length prefix needed).
func AppendGet(dst []byte, id uint64, key []byte) []byte {
	return AppendFrame(dst, OpGet, id, key)
}

// AppendDelete appends a DELETE frame: body = key.
func AppendDelete(dst []byte, id uint64, key []byte) []byte {
	return AppendFrame(dst, OpDelete, id, key)
}

// AppendPut appends a PUT frame: body = len(key) key value(rest).
func AppendPut(dst []byte, id uint64, key, value []byte) []byte {
	body := make([]byte, 0, binary.MaxVarintLen64+len(key)+len(value))
	body = appendBytes(body, key)
	body = append(body, value...)
	return AppendFrame(dst, OpPut, id, body)
}

// AppendMultiGet appends a MULTIGET frame: body = uvarint(n) then n
// length-prefixed keys.
func AppendMultiGet(dst []byte, id uint64, keys [][]byte) []byte {
	size := binary.MaxVarintLen64
	for _, k := range keys {
		size += binary.MaxVarintLen64 + len(k)
	}
	body := make([]byte, 0, size)
	body = binary.AppendUvarint(body, uint64(len(keys)))
	for _, k := range keys {
		body = appendBytes(body, k)
	}
	return AppendFrame(dst, OpMultiGet, id, body)
}

// AppendScan appends a SCAN frame targeting one shard: body =
// u32 shard, len(start) start, u32 limit.
func AppendScan(dst []byte, id uint64, shard uint32, start []byte, limit uint32) []byte {
	body := make([]byte, 0, 8+binary.MaxVarintLen64+len(start))
	body = binary.LittleEndian.AppendUint32(body, shard)
	body = appendBytes(body, start)
	body = binary.LittleEndian.AppendUint32(body, limit)
	return AppendFrame(dst, OpScan, id, body)
}

// AppendStats appends a STATS frame (empty body).
func AppendStats(dst []byte, id uint64) []byte {
	return AppendFrame(dst, OpStats, id, nil)
}

// AppendCkptBegin appends a CKPT_BEGIN frame: body = u32 shard.
func AppendCkptBegin(dst []byte, id uint64, shard uint32) []byte {
	body := make([]byte, 0, 4)
	body = binary.LittleEndian.AppendUint32(body, shard)
	return AppendFrame(dst, OpCkptBegin, id, body)
}

// AppendCkptFetch appends a CKPT_FETCH frame: body = u32 shard,
// u64 checkpoint id, len(name) name, u64 offset, u32 max bytes.
func AppendCkptFetch(dst []byte, id uint64, shard uint32, ckptID uint64, name []byte, off uint64, max uint32) []byte {
	body := make([]byte, 0, 24+binary.MaxVarintLen64+len(name))
	body = binary.LittleEndian.AppendUint32(body, shard)
	body = binary.LittleEndian.AppendUint64(body, ckptID)
	body = appendBytes(body, name)
	body = binary.LittleEndian.AppendUint64(body, off)
	body = binary.LittleEndian.AppendUint32(body, max)
	return AppendFrame(dst, OpCkptFetch, id, body)
}

// AppendCkptRelease appends a CKPT_RELEASE frame: body = u32 shard,
// u64 checkpoint id.
func AppendCkptRelease(dst []byte, id uint64, shard uint32, ckptID uint64) []byte {
	body := make([]byte, 0, 12)
	body = binary.LittleEndian.AppendUint32(body, shard)
	body = binary.LittleEndian.AppendUint64(body, ckptID)
	return AppendFrame(dst, OpCkptRelease, id, body)
}

// AppendWalTail appends a WAL_TAIL frame: body = u32 shard, u64 log
// number, u64 offset, u32 max bytes.
func AppendWalTail(dst []byte, id uint64, shard uint32, log, off uint64, max uint32) []byte {
	body := make([]byte, 0, 24)
	body = binary.LittleEndian.AppendUint32(body, shard)
	body = binary.LittleEndian.AppendUint64(body, log)
	body = binary.LittleEndian.AppendUint64(body, off)
	body = binary.LittleEndian.AppendUint32(body, max)
	return AppendFrame(dst, OpWalTail, id, body)
}

// ParseRequest decodes a frame's body by opcode. The returned
// Request's slices alias f.Body.
func ParseRequest(f Frame) (Request, error) {
	req := Request{Op: f.Op, ID: f.ID}
	body := f.Body
	switch f.Op {
	case OpGet, OpDelete:
		req.Key = body
	case OpPut:
		key, rest, err := readBytes(body)
		if err != nil {
			return Request{}, fmt.Errorf("wire: PUT: %w", err)
		}
		req.Key, req.Value = key, rest
	case OpMultiGet:
		n, w := binary.Uvarint(body)
		// A key costs at least one length byte, so n can never exceed
		// the remaining body — reject before allocating n slots.
		if w <= 0 || n > uint64(len(body)-w) {
			return Request{}, fmt.Errorf("wire: MULTIGET count: %w", ErrTruncated)
		}
		body = body[w:]
		req.Keys = make([][]byte, 0, n)
		for i := uint64(0); i < n; i++ {
			k, rest, err := readBytes(body)
			if err != nil {
				return Request{}, fmt.Errorf("wire: MULTIGET key %d: %w", i, err)
			}
			req.Keys = append(req.Keys, k)
			body = rest
		}
	case OpScan:
		if len(body) < 4 {
			return Request{}, fmt.Errorf("wire: SCAN shard: %w", ErrTruncated)
		}
		req.Shard = binary.LittleEndian.Uint32(body[:4])
		start, rest, err := readBytes(body[4:])
		if err != nil {
			return Request{}, fmt.Errorf("wire: SCAN start: %w", err)
		}
		if len(rest) < 4 {
			return Request{}, fmt.Errorf("wire: SCAN limit: %w", ErrTruncated)
		}
		req.Start, req.Limit = start, binary.LittleEndian.Uint32(rest[:4])
	case OpStats:
		// No payload.
	case OpCkptBegin:
		if len(body) < 4 {
			return Request{}, fmt.Errorf("wire: CKPT_BEGIN shard: %w", ErrTruncated)
		}
		req.Shard = binary.LittleEndian.Uint32(body[:4])
	case OpCkptFetch:
		if len(body) < 12 {
			return Request{}, fmt.Errorf("wire: CKPT_FETCH header: %w", ErrTruncated)
		}
		req.Shard = binary.LittleEndian.Uint32(body[:4])
		req.CkptID = binary.LittleEndian.Uint64(body[4:12])
		name, rest, err := readBytes(body[12:])
		if err != nil {
			return Request{}, fmt.Errorf("wire: CKPT_FETCH name: %w", err)
		}
		if len(rest) < 12 {
			return Request{}, fmt.Errorf("wire: CKPT_FETCH range: %w", ErrTruncated)
		}
		req.Name = name
		req.Off = binary.LittleEndian.Uint64(rest[:8])
		req.Max = binary.LittleEndian.Uint32(rest[8:12])
	case OpCkptRelease:
		if len(body) < 12 {
			return Request{}, fmt.Errorf("wire: CKPT_RELEASE: %w", ErrTruncated)
		}
		req.Shard = binary.LittleEndian.Uint32(body[:4])
		req.CkptID = binary.LittleEndian.Uint64(body[4:12])
	case OpWalTail:
		if len(body) < 24 {
			return Request{}, fmt.Errorf("wire: WAL_TAIL: %w", ErrTruncated)
		}
		req.Shard = binary.LittleEndian.Uint32(body[:4])
		req.Log = binary.LittleEndian.Uint64(body[4:12])
		req.Off = binary.LittleEndian.Uint64(body[12:20])
		req.Max = binary.LittleEndian.Uint32(body[20:24])
	default:
		return Request{}, ErrBadOp
	}
	return req, nil
}

// ---------------------------------------------------------------------
// Responses.

// Response is a decoded response body. Value is set for a StatusOK
// GET; Entries for MULTIGET; Pairs for SCAN; Payload for STATS; Msg
// for StatusErr/StatusShardClosed. Slices alias the frame body.
type Response struct {
	Op     Op
	ID     uint64
	Status Status
	Value  []byte
	// Entries are MULTIGET per-key results in request order.
	Entries []MultiGetEntry
	// Pairs are SCAN results in key order.
	Pairs []KV
	// Payload is the STATS or CKPT_BEGIN JSON document.
	Payload []byte
	// Msg is the error message for StatusErr / StatusShardClosed /
	// StatusBusy.
	Msg string
	// WAL_TAIL fields: Restart tells the follower its cursor is gone
	// (log deleted — re-bootstrap from a fresh checkpoint); Log/NextOff
	// are the cursor to resume from; LastSeq is the primary's visible
	// sequence number at serve time (the follower's staleness bound);
	// Records are complete WAL records in log order.
	Restart bool
	Log     uint64
	NextOff uint64
	LastSeq uint64
	Records [][]byte
}

// MultiGetEntry is one MULTIGET result slot.
type MultiGetEntry struct {
	Found bool
	Value []byte
}

// KV is one SCAN result pair.
type KV struct {
	Key   []byte
	Value []byte
}

// AppendStatusResponse appends a response frame carrying only a
// status (PUT/DELETE acks, NotFound GETs) or a status + message
// (errors).
func AppendStatusResponse(dst []byte, op Op, id uint64, st Status, msg string) []byte {
	body := make([]byte, 0, 1+len(msg))
	body = append(body, byte(st))
	body = append(body, msg...)
	return AppendFrame(dst, op, id, body)
}

// AppendGetResponse appends a StatusOK GET response: body = status +
// value (raw).
func AppendGetResponse(dst []byte, id uint64, value []byte) []byte {
	body := make([]byte, 0, 1+len(value))
	body = append(body, byte(StatusOK))
	body = append(body, value...)
	return AppendFrame(dst, OpGet, id, body)
}

// AppendMultiGetResponse appends a StatusOK MULTIGET response: status,
// uvarint(n), then n × (u8 found, len value if found).
func AppendMultiGetResponse(dst []byte, id uint64, entries []MultiGetEntry) []byte {
	size := 1 + binary.MaxVarintLen64
	for _, e := range entries {
		size += 1 + binary.MaxVarintLen64 + len(e.Value)
	}
	body := make([]byte, 0, size)
	body = append(body, byte(StatusOK))
	body = binary.AppendUvarint(body, uint64(len(entries)))
	for _, e := range entries {
		if e.Found {
			body = append(body, 1)
			body = appendBytes(body, e.Value)
		} else {
			body = append(body, 0)
		}
	}
	return AppendFrame(dst, OpMultiGet, id, body)
}

// AppendScanResponse appends a StatusOK SCAN response: status,
// uvarint(n), then n × (len key, len value).
func AppendScanResponse(dst []byte, id uint64, pairs []KV) []byte {
	size := 1 + binary.MaxVarintLen64
	for _, p := range pairs {
		size += 2*binary.MaxVarintLen64 + len(p.Key) + len(p.Value)
	}
	body := make([]byte, 0, size)
	body = append(body, byte(StatusOK))
	body = binary.AppendUvarint(body, uint64(len(pairs)))
	for _, p := range pairs {
		body = appendBytes(body, p.Key)
		body = appendBytes(body, p.Value)
	}
	return AppendFrame(dst, OpScan, id, body)
}

// AppendStatsResponse appends a StatusOK STATS response: status + JSON
// payload (raw).
func AppendStatsResponse(dst []byte, id uint64, payload []byte) []byte {
	body := make([]byte, 0, 1+len(payload))
	body = append(body, byte(StatusOK))
	body = append(body, payload...)
	return AppendFrame(dst, OpStats, id, body)
}

// AppendCkptBeginResponse appends a StatusOK CKPT_BEGIN response:
// status + JSON checkpoint manifest (raw).
func AppendCkptBeginResponse(dst []byte, id uint64, payload []byte) []byte {
	body := make([]byte, 0, 1+len(payload))
	body = append(body, byte(StatusOK))
	body = append(body, payload...)
	return AppendFrame(dst, OpCkptBegin, id, body)
}

// AppendCkptFetchResponse appends a StatusOK CKPT_FETCH response:
// status + raw file bytes. An empty body past the status byte means
// EOF — the requested offset is at or past the file's checkpointed
// size.
func AppendCkptFetchResponse(dst []byte, id uint64, data []byte) []byte {
	body := make([]byte, 0, 1+len(data))
	body = append(body, byte(StatusOK))
	body = append(body, data...)
	return AppendFrame(dst, OpCkptFetch, id, body)
}

// AppendWalTailResponse appends a StatusOK WAL_TAIL response: status,
// u8 restart, u64 next log, u64 next offset, u64 primary last seq,
// uvarint(n), then n length-prefixed complete WAL records.
func AppendWalTailResponse(dst []byte, id uint64, restart bool, log, nextOff, lastSeq uint64, records [][]byte) []byte {
	size := 1 + 1 + 8 + 8 + 8 + binary.MaxVarintLen64
	for _, r := range records {
		size += binary.MaxVarintLen64 + len(r)
	}
	body := make([]byte, 0, size)
	body = append(body, byte(StatusOK))
	if restart {
		body = append(body, 1)
	} else {
		body = append(body, 0)
	}
	body = binary.LittleEndian.AppendUint64(body, log)
	body = binary.LittleEndian.AppendUint64(body, nextOff)
	body = binary.LittleEndian.AppendUint64(body, lastSeq)
	body = binary.AppendUvarint(body, uint64(len(records)))
	for _, r := range records {
		body = appendBytes(body, r)
	}
	return AppendFrame(dst, OpWalTail, id, body)
}

// ParseResponse decodes a response frame's body by opcode.
func ParseResponse(f Frame) (Response, error) {
	if len(f.Body) < 1 {
		return Response{}, fmt.Errorf("wire: response status: %w", ErrTruncated)
	}
	resp := Response{Op: f.Op, ID: f.ID, Status: Status(f.Body[0])}
	body := f.Body[1:]
	switch resp.Status {
	case StatusErr, StatusShardClosed, StatusNotFound, StatusBusy:
		resp.Msg = string(body)
		return resp, nil
	case StatusOK:
	default:
		return Response{}, fmt.Errorf("wire: unknown status %d", f.Body[0])
	}
	switch f.Op {
	case OpGet, OpCkptFetch:
		resp.Value = body
	case OpStats, OpCkptBegin:
		resp.Payload = body
	case OpPut, OpDelete, OpCkptRelease:
		// Status only.
	case OpWalTail:
		if len(body) < 25 {
			return Response{}, fmt.Errorf("wire: WAL_TAIL header: %w", ErrTruncated)
		}
		resp.Restart = body[0] == 1
		resp.Log = binary.LittleEndian.Uint64(body[1:9])
		resp.NextOff = binary.LittleEndian.Uint64(body[9:17])
		resp.LastSeq = binary.LittleEndian.Uint64(body[17:25])
		body = body[25:]
		n, w := binary.Uvarint(body)
		if w <= 0 || n > uint64(len(body)-w) {
			return Response{}, fmt.Errorf("wire: WAL_TAIL record count: %w", ErrTruncated)
		}
		body = body[w:]
		resp.Records = make([][]byte, 0, n)
		for i := uint64(0); i < n; i++ {
			r, rest, err := readBytes(body)
			if err != nil {
				return Response{}, fmt.Errorf("wire: WAL_TAIL record %d: %w", i, err)
			}
			resp.Records = append(resp.Records, r)
			body = rest
		}
	case OpMultiGet:
		n, w := binary.Uvarint(body)
		if w <= 0 || n > uint64(len(body)-w) {
			return Response{}, fmt.Errorf("wire: MULTIGET result count: %w", ErrTruncated)
		}
		body = body[w:]
		resp.Entries = make([]MultiGetEntry, 0, n)
		for i := uint64(0); i < n; i++ {
			if len(body) < 1 {
				return Response{}, fmt.Errorf("wire: MULTIGET entry %d: %w", i, ErrTruncated)
			}
			found := body[0] == 1
			body = body[1:]
			var e MultiGetEntry
			e.Found = found
			if found {
				v, rest, err := readBytes(body)
				if err != nil {
					return Response{}, fmt.Errorf("wire: MULTIGET value %d: %w", i, err)
				}
				e.Value = v
				body = rest
			}
			resp.Entries = append(resp.Entries, e)
		}
	case OpScan:
		n, w := binary.Uvarint(body)
		if w <= 0 || n > uint64(len(body)-w) {
			return Response{}, fmt.Errorf("wire: SCAN result count: %w", ErrTruncated)
		}
		body = body[w:]
		resp.Pairs = make([]KV, 0, n)
		for i := uint64(0); i < n; i++ {
			k, rest, err := readBytes(body)
			if err != nil {
				return Response{}, fmt.Errorf("wire: SCAN key %d: %w", i, err)
			}
			v, rest, err := readBytes(rest)
			if err != nil {
				return Response{}, fmt.Errorf("wire: SCAN value %d: %w", i, err)
			}
			resp.Pairs = append(resp.Pairs, KV{Key: k, Value: v})
			body = rest
		}
	default:
		return Response{}, ErrBadOp
	}
	return resp, nil
}
