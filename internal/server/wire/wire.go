// Package wire defines the length-prefixed binary protocol noblsm's
// network front-end speaks over TCP. It is deliberately small: six
// request opcodes, one response shape, varint-prefixed byte strings,
// no negotiation. The design constraints, in order:
//
//  1. Pipelining. A connection may have any number of requests in
//     flight; the server executes them in arrival order and responds
//     in the same order, each response echoing its request id. One
//     syscall can carry a whole burst of frames in either direction,
//     which is how thousands of client connections batch naturally
//     into the per-shard group-commit queues.
//  2. Hostile input never crashes the decoder. Every length is
//     bounds-checked against the frame it came from and against
//     MaxFrameBody before any allocation sized by it; FuzzFrameDecode
//     and FuzzRequestParse keep it that way.
//  3. Zero interpretation in the framing layer. A frame is
//     (op, request id, body); the body codecs are separate functions,
//     so a router can move frames without understanding them.
//
// Frame layout (little-endian):
//
//	uint32  body length N (excludes this header)
//	uint8   opcode
//	uint64  request id (echoed verbatim in the response)
//	N bytes body
//
// Response bodies start with a one-byte Status; the rest is
// status-specific (value bytes, per-key results, an error message).
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Op is a frame opcode. Requests and responses share the opcode; the
// direction is implied by who sent it.
type Op uint8

const (
	OpGet      Op = 1
	OpPut      Op = 2
	OpDelete   Op = 3
	OpMultiGet Op = 4
	OpScan     Op = 5
	OpStats    Op = 6
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDelete:
		return "DELETE"
	case OpMultiGet:
		return "MULTIGET"
	case OpScan:
		return "SCAN"
	case OpStats:
		return "STATS"
	default:
		return fmt.Sprintf("OP(%d)", uint8(o))
	}
}

// valid reports whether o is a known request opcode.
func (o Op) valid() bool { return o >= OpGet && o <= OpStats }

// Status is the first body byte of every response.
type Status uint8

const (
	// StatusOK: the operation succeeded; the rest of the body is the
	// op-specific result.
	StatusOK Status = 0
	// StatusNotFound: a Get for an absent or deleted key.
	StatusNotFound Status = 1
	// StatusErr: the operation failed; the rest of the body is a
	// human-readable message.
	StatusErr Status = 2
	// StatusShardClosed: the owning shard is administratively closed
	// (mid-reopen); the request may be retried.
	StatusShardClosed Status = 3
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not-found"
	case StatusErr:
		return "error"
	case StatusShardClosed:
		return "shard-closed"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// MaxFrameBody caps a frame body. Large enough for a full MultiGet
// batch of 1 KB values; small enough that a malicious length prefix
// cannot make the server allocate unboundedly.
const MaxFrameBody = 16 << 20

// headerSize is the fixed frame header: u32 length + u8 op + u64 id.
const headerSize = 4 + 1 + 8

// Protocol errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameBody")
	ErrBadOp         = errors.New("wire: unknown opcode")
	ErrTruncated     = errors.New("wire: truncated body")
)

// Frame is one decoded frame: opcode, request id, raw body. Body
// aliases the read buffer passed to ReadFrame and is only valid until
// the next ReadFrame on that reader.
type Frame struct {
	Op   Op
	ID   uint64
	Body []byte
}

// AppendFrame appends a complete frame to dst and returns the extended
// slice.
func AppendFrame(dst []byte, op Op, id uint64, body []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	hdr[4] = byte(op)
	binary.LittleEndian.PutUint64(hdr[5:13], id)
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// ReadFrame reads one frame from r, reusing buf for the body when it
// fits. It returns the frame, the (possibly grown) buffer for reuse,
// and an error: io.EOF cleanly between frames, io.ErrUnexpectedEOF for
// a torn frame, ErrFrameTooLarge/ErrBadOp for hostile headers.
func ReadFrame(r *bufio.Reader, buf []byte) (Frame, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		// Clean EOF only at a frame boundary's first byte.
		return Frame{}, buf, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxFrameBody {
		return Frame{}, buf, ErrFrameTooLarge
	}
	op := Op(hdr[4])
	if !op.valid() {
		return Frame{}, buf, ErrBadOp
	}
	id := binary.LittleEndian.Uint64(hdr[5:13])
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	body := buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, buf, err
	}
	return Frame{Op: op, ID: id, Body: body}, buf, nil
}

// ---------------------------------------------------------------------
// Body codecs — byte strings are uvarint-length-prefixed. Every reader
// validates lengths against the remaining body before allocating.

// appendBytes appends uvarint(len(b)) + b.
func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// readBytes consumes one length-prefixed byte string from b.
func readBytes(b []byte) (s, rest []byte, err error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)-w) {
		return nil, nil, ErrTruncated
	}
	return b[w : w+int(n)], b[w+int(n):], nil
}

// Request is a decoded request body. Fields are set per opcode:
// Key (GET/DELETE), Key+Value (PUT), Keys (MULTIGET),
// Shard+Start+Limit (SCAN); STATS has no payload. All byte slices
// alias the frame body.
type Request struct {
	Op    Op
	ID    uint64
	Key   []byte
	Value []byte
	Keys  [][]byte
	Shard uint32
	Start []byte
	Limit uint32
}

// AppendGet appends a GET frame: body = key (raw; the whole body is
// the key, no length prefix needed).
func AppendGet(dst []byte, id uint64, key []byte) []byte {
	return AppendFrame(dst, OpGet, id, key)
}

// AppendDelete appends a DELETE frame: body = key.
func AppendDelete(dst []byte, id uint64, key []byte) []byte {
	return AppendFrame(dst, OpDelete, id, key)
}

// AppendPut appends a PUT frame: body = len(key) key value(rest).
func AppendPut(dst []byte, id uint64, key, value []byte) []byte {
	body := make([]byte, 0, binary.MaxVarintLen64+len(key)+len(value))
	body = appendBytes(body, key)
	body = append(body, value...)
	return AppendFrame(dst, OpPut, id, body)
}

// AppendMultiGet appends a MULTIGET frame: body = uvarint(n) then n
// length-prefixed keys.
func AppendMultiGet(dst []byte, id uint64, keys [][]byte) []byte {
	size := binary.MaxVarintLen64
	for _, k := range keys {
		size += binary.MaxVarintLen64 + len(k)
	}
	body := make([]byte, 0, size)
	body = binary.AppendUvarint(body, uint64(len(keys)))
	for _, k := range keys {
		body = appendBytes(body, k)
	}
	return AppendFrame(dst, OpMultiGet, id, body)
}

// AppendScan appends a SCAN frame targeting one shard: body =
// u32 shard, len(start) start, u32 limit.
func AppendScan(dst []byte, id uint64, shard uint32, start []byte, limit uint32) []byte {
	body := make([]byte, 0, 8+binary.MaxVarintLen64+len(start))
	body = binary.LittleEndian.AppendUint32(body, shard)
	body = appendBytes(body, start)
	body = binary.LittleEndian.AppendUint32(body, limit)
	return AppendFrame(dst, OpScan, id, body)
}

// AppendStats appends a STATS frame (empty body).
func AppendStats(dst []byte, id uint64) []byte {
	return AppendFrame(dst, OpStats, id, nil)
}

// ParseRequest decodes a frame's body by opcode. The returned
// Request's slices alias f.Body.
func ParseRequest(f Frame) (Request, error) {
	req := Request{Op: f.Op, ID: f.ID}
	body := f.Body
	switch f.Op {
	case OpGet, OpDelete:
		req.Key = body
	case OpPut:
		key, rest, err := readBytes(body)
		if err != nil {
			return Request{}, fmt.Errorf("wire: PUT: %w", err)
		}
		req.Key, req.Value = key, rest
	case OpMultiGet:
		n, w := binary.Uvarint(body)
		// A key costs at least one length byte, so n can never exceed
		// the remaining body — reject before allocating n slots.
		if w <= 0 || n > uint64(len(body)-w) {
			return Request{}, fmt.Errorf("wire: MULTIGET count: %w", ErrTruncated)
		}
		body = body[w:]
		req.Keys = make([][]byte, 0, n)
		for i := uint64(0); i < n; i++ {
			k, rest, err := readBytes(body)
			if err != nil {
				return Request{}, fmt.Errorf("wire: MULTIGET key %d: %w", i, err)
			}
			req.Keys = append(req.Keys, k)
			body = rest
		}
	case OpScan:
		if len(body) < 4 {
			return Request{}, fmt.Errorf("wire: SCAN shard: %w", ErrTruncated)
		}
		req.Shard = binary.LittleEndian.Uint32(body[:4])
		start, rest, err := readBytes(body[4:])
		if err != nil {
			return Request{}, fmt.Errorf("wire: SCAN start: %w", err)
		}
		if len(rest) < 4 {
			return Request{}, fmt.Errorf("wire: SCAN limit: %w", ErrTruncated)
		}
		req.Start, req.Limit = start, binary.LittleEndian.Uint32(rest[:4])
	case OpStats:
		// No payload.
	default:
		return Request{}, ErrBadOp
	}
	return req, nil
}

// ---------------------------------------------------------------------
// Responses.

// Response is a decoded response body. Value is set for a StatusOK
// GET; Entries for MULTIGET; Pairs for SCAN; Payload for STATS; Msg
// for StatusErr/StatusShardClosed. Slices alias the frame body.
type Response struct {
	Op     Op
	ID     uint64
	Status Status
	Value  []byte
	// Entries are MULTIGET per-key results in request order.
	Entries []MultiGetEntry
	// Pairs are SCAN results in key order.
	Pairs []KV
	// Payload is the STATS JSON document.
	Payload []byte
	// Msg is the error message for StatusErr / StatusShardClosed.
	Msg string
}

// MultiGetEntry is one MULTIGET result slot.
type MultiGetEntry struct {
	Found bool
	Value []byte
}

// KV is one SCAN result pair.
type KV struct {
	Key   []byte
	Value []byte
}

// AppendStatusResponse appends a response frame carrying only a
// status (PUT/DELETE acks, NotFound GETs) or a status + message
// (errors).
func AppendStatusResponse(dst []byte, op Op, id uint64, st Status, msg string) []byte {
	body := make([]byte, 0, 1+len(msg))
	body = append(body, byte(st))
	body = append(body, msg...)
	return AppendFrame(dst, op, id, body)
}

// AppendGetResponse appends a StatusOK GET response: body = status +
// value (raw).
func AppendGetResponse(dst []byte, id uint64, value []byte) []byte {
	body := make([]byte, 0, 1+len(value))
	body = append(body, byte(StatusOK))
	body = append(body, value...)
	return AppendFrame(dst, OpGet, id, body)
}

// AppendMultiGetResponse appends a StatusOK MULTIGET response: status,
// uvarint(n), then n × (u8 found, len value if found).
func AppendMultiGetResponse(dst []byte, id uint64, entries []MultiGetEntry) []byte {
	size := 1 + binary.MaxVarintLen64
	for _, e := range entries {
		size += 1 + binary.MaxVarintLen64 + len(e.Value)
	}
	body := make([]byte, 0, size)
	body = append(body, byte(StatusOK))
	body = binary.AppendUvarint(body, uint64(len(entries)))
	for _, e := range entries {
		if e.Found {
			body = append(body, 1)
			body = appendBytes(body, e.Value)
		} else {
			body = append(body, 0)
		}
	}
	return AppendFrame(dst, OpMultiGet, id, body)
}

// AppendScanResponse appends a StatusOK SCAN response: status,
// uvarint(n), then n × (len key, len value).
func AppendScanResponse(dst []byte, id uint64, pairs []KV) []byte {
	size := 1 + binary.MaxVarintLen64
	for _, p := range pairs {
		size += 2*binary.MaxVarintLen64 + len(p.Key) + len(p.Value)
	}
	body := make([]byte, 0, size)
	body = append(body, byte(StatusOK))
	body = binary.AppendUvarint(body, uint64(len(pairs)))
	for _, p := range pairs {
		body = appendBytes(body, p.Key)
		body = appendBytes(body, p.Value)
	}
	return AppendFrame(dst, OpScan, id, body)
}

// AppendStatsResponse appends a StatusOK STATS response: status + JSON
// payload (raw).
func AppendStatsResponse(dst []byte, id uint64, payload []byte) []byte {
	body := make([]byte, 0, 1+len(payload))
	body = append(body, byte(StatusOK))
	body = append(body, payload...)
	return AppendFrame(dst, OpStats, id, body)
}

// ParseResponse decodes a response frame's body by opcode.
func ParseResponse(f Frame) (Response, error) {
	if len(f.Body) < 1 {
		return Response{}, fmt.Errorf("wire: response status: %w", ErrTruncated)
	}
	resp := Response{Op: f.Op, ID: f.ID, Status: Status(f.Body[0])}
	body := f.Body[1:]
	switch resp.Status {
	case StatusErr, StatusShardClosed, StatusNotFound:
		resp.Msg = string(body)
		return resp, nil
	case StatusOK:
	default:
		return Response{}, fmt.Errorf("wire: unknown status %d", f.Body[0])
	}
	switch f.Op {
	case OpGet, OpStats:
		if f.Op == OpGet {
			resp.Value = body
		} else {
			resp.Payload = body
		}
	case OpPut, OpDelete:
		// Status only.
	case OpMultiGet:
		n, w := binary.Uvarint(body)
		if w <= 0 || n > uint64(len(body)-w) {
			return Response{}, fmt.Errorf("wire: MULTIGET result count: %w", ErrTruncated)
		}
		body = body[w:]
		resp.Entries = make([]MultiGetEntry, 0, n)
		for i := uint64(0); i < n; i++ {
			if len(body) < 1 {
				return Response{}, fmt.Errorf("wire: MULTIGET entry %d: %w", i, ErrTruncated)
			}
			found := body[0] == 1
			body = body[1:]
			var e MultiGetEntry
			e.Found = found
			if found {
				v, rest, err := readBytes(body)
				if err != nil {
					return Response{}, fmt.Errorf("wire: MULTIGET value %d: %w", i, err)
				}
				e.Value = v
				body = rest
			}
			resp.Entries = append(resp.Entries, e)
		}
	case OpScan:
		n, w := binary.Uvarint(body)
		if w <= 0 || n > uint64(len(body)-w) {
			return Response{}, fmt.Errorf("wire: SCAN result count: %w", ErrTruncated)
		}
		body = body[w:]
		resp.Pairs = make([]KV, 0, n)
		for i := uint64(0); i < n; i++ {
			k, rest, err := readBytes(body)
			if err != nil {
				return Response{}, fmt.Errorf("wire: SCAN key %d: %w", i, err)
			}
			v, rest, err := readBytes(rest)
			if err != nil {
				return Response{}, fmt.Errorf("wire: SCAN value %d: %w", i, err)
			}
			resp.Pairs = append(resp.Pairs, KV{Key: k, Value: v})
			body = rest
		}
	default:
		return Response{}, ErrBadOp
	}
	return resp, nil
}
