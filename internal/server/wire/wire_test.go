package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func roundTripFrame(t *testing.T, raw []byte) (Frame, error) {
	t.Helper()
	f, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(raw)), nil)
	return f, err
}

func TestFrameRoundTrip(t *testing.T) {
	raw := AppendGet(nil, 7, []byte("the-key"))
	raw = AppendPut(raw, 8, []byte("k2"), []byte("v2"))
	raw = AppendMultiGet(raw, 9, [][]byte{[]byte("a"), nil, []byte("ccc")})
	raw = AppendScan(raw, 10, 3, []byte("start"), 128)
	raw = AppendStats(raw, 11)
	raw = AppendDelete(raw, 12, []byte("gone"))

	br := bufio.NewReader(bytes.NewReader(raw))
	var buf []byte
	var frames []Frame
	for {
		f, b, err := ReadFrame(br, buf)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		buf = b
		// Copy: Body aliases buf which the next ReadFrame reuses.
		f.Body = append([]byte(nil), f.Body...)
		frames = append(frames, f)
	}
	if len(frames) != 6 {
		t.Fatalf("got %d frames, want 6", len(frames))
	}

	get, err := ParseRequest(frames[0])
	if err != nil || string(get.Key) != "the-key" || get.ID != 7 {
		t.Fatalf("GET decoded %+v, %v", get, err)
	}
	put, err := ParseRequest(frames[1])
	if err != nil || string(put.Key) != "k2" || string(put.Value) != "v2" {
		t.Fatalf("PUT decoded %+v, %v", put, err)
	}
	mg, err := ParseRequest(frames[2])
	if err != nil || len(mg.Keys) != 3 || string(mg.Keys[0]) != "a" ||
		len(mg.Keys[1]) != 0 || string(mg.Keys[2]) != "ccc" {
		t.Fatalf("MULTIGET decoded %+v, %v", mg, err)
	}
	sc, err := ParseRequest(frames[3])
	if err != nil || sc.Shard != 3 || string(sc.Start) != "start" || sc.Limit != 128 {
		t.Fatalf("SCAN decoded %+v, %v", sc, err)
	}
	if _, err := ParseRequest(frames[4]); err != nil {
		t.Fatalf("STATS: %v", err)
	}
	del, err := ParseRequest(frames[5])
	if err != nil || string(del.Key) != "gone" {
		t.Fatalf("DELETE decoded %+v, %v", del, err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	// GET value.
	f, err := roundTripFrame(t, AppendGetResponse(nil, 1, []byte("val")))
	if err != nil {
		t.Fatal(err)
	}
	r, err := ParseResponse(f)
	if err != nil || r.Status != StatusOK || string(r.Value) != "val" {
		t.Fatalf("get resp %+v, %v", r, err)
	}

	// NotFound with empty message.
	f, _ = roundTripFrame(t, AppendStatusResponse(nil, OpGet, 2, StatusNotFound, ""))
	r, err = ParseResponse(f)
	if err != nil || r.Status != StatusNotFound {
		t.Fatalf("notfound resp %+v, %v", r, err)
	}

	// Error with message.
	f, _ = roundTripFrame(t, AppendStatusResponse(nil, OpPut, 3, StatusErr, "boom"))
	r, err = ParseResponse(f)
	if err != nil || r.Status != StatusErr || r.Msg != "boom" {
		t.Fatalf("err resp %+v, %v", r, err)
	}

	// Busy (governor shed) with message — retryable, Msg-carrying.
	f, _ = roundTripFrame(t, AppendStatusResponse(nil, OpPut, 7, StatusBusy, "write stalled"))
	r, err = ParseResponse(f)
	if err != nil || r.Status != StatusBusy || r.Msg != "write stalled" {
		t.Fatalf("busy resp %+v, %v", r, err)
	}
	if s := StatusBusy.String(); s != "busy" {
		t.Fatalf("StatusBusy.String() = %q", s)
	}

	// MultiGet entries.
	entries := []MultiGetEntry{{Found: true, Value: []byte("x")}, {Found: false}, {Found: true, Value: nil}}
	f, _ = roundTripFrame(t, AppendMultiGetResponse(nil, 4, entries))
	r, err = ParseResponse(f)
	if err != nil || len(r.Entries) != 3 || !r.Entries[0].Found ||
		string(r.Entries[0].Value) != "x" || r.Entries[1].Found || !r.Entries[2].Found {
		t.Fatalf("multiget resp %+v, %v", r, err)
	}

	// Scan pairs.
	pairs := []KV{{Key: []byte("a"), Value: []byte("1")}, {Key: []byte("b"), Value: []byte("2")}}
	f, _ = roundTripFrame(t, AppendScanResponse(nil, 5, pairs))
	r, err = ParseResponse(f)
	if err != nil || len(r.Pairs) != 2 || string(r.Pairs[1].Key) != "b" {
		t.Fatalf("scan resp %+v, %v", r, err)
	}

	// Stats payload.
	f, _ = roundTripFrame(t, AppendStatsResponse(nil, 6, []byte(`{"ok":1}`)))
	r, err = ParseResponse(f)
	if err != nil || string(r.Payload) != `{"ok":1}` {
		t.Fatalf("stats resp %+v, %v", r, err)
	}
}

// TestMalformedFrames drives the decoder with hostile headers and
// truncated bodies; every case must fail with a protocol error, never
// a panic or a giant allocation.
func TestMalformedFrames(t *testing.T) {
	huge := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(huge[0:4], MaxFrameBody+1)
	huge[4] = byte(OpGet)

	badOp := make([]byte, headerSize)
	badOp[4] = 0xEE

	torn := AppendPut(nil, 1, []byte("k"), []byte("v"))[:headerSize+1]

	cases := map[string][]byte{
		"oversize length": huge,
		"unknown opcode":  badOp,
		"torn body":       torn,
		"bare header":     make([]byte, 3),
	}
	for name, raw := range cases {
		if _, err := roundTripFrame(t, raw); err == nil {
			t.Errorf("%s: decoded successfully", name)
		}
	}

	// Truncated request bodies with a valid frame header.
	reqCases := map[string]Frame{
		"put no key":          {Op: OpPut, Body: []byte{0x05}},
		"multiget count lies": {Op: OpMultiGet, Body: []byte{0xFF, 0x01}},
		"multiget torn key":   {Op: OpMultiGet, Body: []byte{2, 1, 'a', 9}},
		"scan no shard":       {Op: OpScan, Body: []byte{1, 2}},
		"scan torn start":     {Op: OpScan, Body: []byte{1, 0, 0, 0, 9, 'a'}},
		"scan no limit":       {Op: OpScan, Body: []byte{1, 0, 0, 0, 1, 'a'}},
	}
	for name, f := range reqCases {
		if _, err := ParseRequest(f); err == nil {
			t.Errorf("%s: parsed successfully", name)
		}
	}

	// Truncated responses.
	respCases := map[string]Frame{
		"empty body":         {Op: OpGet, Body: nil},
		"bad status":         {Op: OpGet, Body: []byte{99}},
		"multiget count lie": {Op: OpMultiGet, Body: []byte{0, 0xFF, 0x7F}},
		"multiget torn val":  {Op: OpMultiGet, Body: []byte{0, 1, 1, 9}},
		"scan torn pair":     {Op: OpScan, Body: []byte{0, 1, 1, 'a'}},
	}
	for name, f := range respCases {
		if _, err := ParseResponse(f); err == nil {
			t.Errorf("%s: parsed successfully", name)
		}
	}
}

// TestCleanEOF: EOF at a frame boundary is io.EOF; inside a header it
// is unexpected.
func TestCleanEOF(t *testing.T) {
	_, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(nil)), nil)
	if !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
	_, _, err = ReadFrame(bufio.NewReader(bytes.NewReader([]byte{1, 2})), nil)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn header: %v, want io.ErrUnexpectedEOF", err)
	}
}
