package server

import (
	"encoding/json"
	"fmt"

	"noblsm/internal/histogram"
	"noblsm/internal/obs"
	"noblsm/internal/vclock"
)

// ShardStat is one shard's entry in the STATS frame payload.
type ShardStat struct {
	Shard  int     `json:"shard"`
	Closed bool    `json:"closed"`
	Ops    int64   `json:"ops"`
	VSec   float64 `json:"virtual_sec"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// StatsPayload is the STATS frame's JSON document.
type StatsPayload struct {
	Shards  int         `json:"shards"`
	Conns   int64       `json:"conns_open"`
	Frames  int64       `json:"frames"`
	PerSh   []ShardStat `json:"per_shard"`
	TotalOp int64       `json:"total_ops"`
}

const us = float64(vclock.Microsecond)

// statsJSON renders the server-wide stats document served by the
// STATS opcode.
func (s *Server) statsJSON() []byte {
	snap := s.reg.Snapshot()
	p := StatsPayload{
		Shards: len(s.shards),
		Conns:  snap.Gauges["server.conns_open"],
		Frames: snap.Counters["server.frames"],
	}
	for _, sh := range s.shards {
		sh.mu.RLock()
		closed := sh.db == nil
		sh.mu.RUnlock()
		sh.latMu.Lock()
		st := ShardStat{
			Shard:  sh.id,
			Closed: closed,
			Ops:    sh.latCum.Count(),
			VSec:   float64(sh.vnow()) / float64(vclock.Second),
			P50Us:  float64(sh.latCum.Percentile(50)) / us,
			P99Us:  float64(sh.latCum.Percentile(99)) / us,
			P999Us: float64(sh.latCum.Percentile(99.9)) / us,
			MaxUs:  float64(sh.latCum.Max()) / us,
		}
		sh.latMu.Unlock()
		p.TotalOp += st.Ops
		p.PerSh = append(p.PerSh, st)
	}
	b, err := json.Marshal(p)
	if err != nil {
		return []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	return b
}

// ShardPhase is one shard's accumulation since BeginPhase: op count,
// virtual elapsed time, and the virtual latency distribution. The
// loopback benchmark derives per-shard virtual throughput from these
// and aggregates across shards.
type ShardPhase struct {
	Shard          int
	Ops            int64
	VirtualElapsed vclock.Duration
	Latency        histogram.Histogram
}

// BeginPhase marks a measurement epoch: per-shard phase counters and
// latency histograms reset, and each shard's current virtual
// high-water mark becomes the phase origin.
func (s *Server) BeginPhase() {
	for _, sh := range s.shards {
		sh.latMu.Lock()
		sh.latPhase.Reset()
		sh.phaseOps = 0
		sh.vbase = sh.vnow()
		sh.latMu.Unlock()
	}
}

// EndPhase snapshots every shard's accumulation since BeginPhase.
func (s *Server) EndPhase() []ShardPhase {
	out := make([]ShardPhase, len(s.shards))
	for i, sh := range s.shards {
		sh.latMu.Lock()
		out[i] = ShardPhase{
			Shard:          sh.id,
			Ops:            sh.phaseOps,
			VirtualElapsed: sh.vnow().Sub(sh.vbase),
			Latency:        sh.latPhase,
		}
		sh.latMu.Unlock()
	}
	return out
}

// Exposition assembles the HTTP observability surface: /metrics is the
// aggregate across the server registry and every shard registry,
// /stats carries per-shard snapshot sections, /doctor one health
// report per shard.
func (s *Server) Exposition() obs.Exposition {
	regs := map[string]*obs.Registry{"server": s.reg}
	docs := make(map[string]func() string, len(s.shards))
	for _, sh := range s.shards {
		regs[fmt.Sprintf("shard-%d", sh.id)] = sh.reg
		sh := sh
		docs[fmt.Sprintf("shard-%d", sh.id)] = func() string {
			sh.mu.RLock()
			defer sh.mu.RUnlock()
			if sh.db == nil {
				return "shard closed\n"
			}
			rep, _ := sh.db.Property("noblsm.doctor")
			return rep
		}
	}
	return obs.Exposition{Registries: regs, Doctors: docs}
}
