package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"

	"noblsm/internal/engine"
	"noblsm/internal/server/wire"
	"noblsm/internal/vclock"
)

// Response-size guards. A MULTIGET over a huge batch or a SCAN over
// large values could otherwise build a response the peer's own
// MaxFrameBody check would reject; the server refuses (MULTIGET) or
// truncates at a frame-sized budget (SCAN, which is explicitly a
// bounded-window primitive) instead of producing unreadable frames.
const (
	// MaxMultiGetKeys caps one MULTIGET batch.
	MaxMultiGetKeys = 4096
	// maxScanBytes bounds a SCAN response's key+value payload.
	maxScanBytes = 4 << 20
)

// conn is one connection's handler state: buffered reader/writer,
// a reusable frame-body buffer, a reusable response buffer, and one
// lazily created virtual timeline per shard (timelines are
// single-goroutine objects; sharing one across shards would let an
// idle shard inherit a busy shard's clock and inflate its latencies).
type conn struct {
	s   *Server
	c   net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	buf []byte // frame-body read buffer, reused across frames
	out []byte // response build buffer, reused across requests
	tls []*vclock.Timeline
}

// timeline returns this connection's clock for shard i, created at the
// shard's current high-water mark on first use.
func (cn *conn) timeline(i int) *vclock.Timeline {
	if cn.tls[i] == nil {
		cn.tls[i] = vclock.NewTimeline(cn.s.shards[i].vnow())
	}
	return cn.tls[i]
}

// handleConn runs one connection's pipeline: read a frame, execute,
// append the response, and flush only when the read side has no
// buffered frames — so a burst of pipelined requests is answered with
// one write, and a lone request is answered immediately.
func (s *Server) handleConn(c net.Conn) {
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.open.Add(-1)
		s.wg.Done()
	}()
	cn := &conn{
		s:   s,
		c:   c,
		br:  bufio.NewReaderSize(c, 64<<10),
		bw:  bufio.NewWriterSize(c, 64<<10),
		tls: make([]*vclock.Timeline, len(s.shards)),
	}
	for {
		fr, buf, err := wire.ReadFrame(cn.br, cn.buf)
		if err != nil {
			// Clean EOF is the normal goodbye; anything else — torn
			// frame, oversized length, unknown opcode — ends the
			// connection. Framing is unrecoverable mid-stream: after a
			// bad header there is no way to find the next frame
			// boundary, so close rather than guess.
			if !isCleanEOF(err) {
				s.malformed.Inc()
			}
			return
		}
		cn.buf = buf
		s.frames.Inc()
		cn.out = cn.out[:0]
		req, perr := wire.ParseRequest(fr)
		if perr != nil {
			// The frame boundary itself was sound, so the stream is
			// still in sync: report the bad body and keep serving.
			s.malformed.Inc()
			cn.out = wire.AppendStatusResponse(cn.out, fr.Op, fr.ID, wire.StatusErr, perr.Error())
		} else {
			cn.out = cn.dispatch(req, cn.out)
		}
		if _, err := cn.bw.Write(cn.out); err != nil {
			return
		}
		if cn.br.Buffered() == 0 {
			if err := cn.bw.Flush(); err != nil {
				return
			}
		}
	}
}

// isCleanEOF reports whether err is an expected way for a stream to
// end: EOF exactly at a frame boundary, or the socket dying under the
// reader (peer reset, server Close). ReadFrame maps mid-frame EOF to
// io.ErrUnexpectedEOF, which is NOT clean — that peer sent a torn
// frame. A transport-level error is a disconnect, not a protocol
// violation, so it doesn't count as malformed either.
func isCleanEOF(err error) bool {
	if err == io.EOF || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// dispatch executes one request and appends its response frame to out.
func (cn *conn) dispatch(req wire.Request, out []byte) []byte {
	switch req.Op {
	case wire.OpGet:
		return cn.doGet(req, out)
	case wire.OpPut:
		return cn.doPut(req, out)
	case wire.OpDelete:
		return cn.doDelete(req, out)
	case wire.OpMultiGet:
		return cn.doMultiGet(req, out)
	case wire.OpScan:
		return cn.doScan(req, out)
	case wire.OpStats:
		return wire.AppendStatsResponse(out, req.ID, cn.s.statsJSON())
	case wire.OpCkptBegin:
		return cn.doCkptBegin(req, out)
	case wire.OpCkptFetch:
		return cn.doCkptFetch(req, out)
	case wire.OpCkptRelease:
		return cn.doCkptRelease(req, out)
	case wire.OpWalTail:
		return cn.doWalTail(req, out)
	default:
		return wire.AppendStatusResponse(out, req.Op, req.ID, wire.StatusErr, "unhandled op")
	}
}

// withShard runs fn against the shard owning the request key, holding
// the shard's admin lock shared, with this connection's timeline for
// that shard. It returns false (and appends a StatusShardClosed
// response) when the shard is administratively closed.
func (cn *conn) withShard(si int, op wire.Op, id uint64, out *[]byte, fn func(db *engine.DB, tl *vclock.Timeline)) bool {
	sh := cn.s.shards[si]
	sh.mu.RLock()
	db := sh.db
	if db == nil {
		sh.mu.RUnlock()
		*out = wire.AppendStatusResponse(*out, op, id, wire.StatusShardClosed,
			fmt.Sprintf("shard %d closed", si))
		return false
	}
	tl := cn.timeline(si)
	// The shard may have advanced (another connection, a background
	// compaction) since this timeline last ran; catching it up models
	// real wall-clock passing between this client's requests.
	tl.WaitUntil(sh.vnow())
	start := tl.Now()
	fn(db, tl)
	sh.finishOp(start, tl.Now())
	sh.mu.RUnlock()
	return true
}

func (cn *conn) doGet(req wire.Request, out []byte) []byte {
	si := cn.s.ring.Shard(req.Key)
	cn.withShard(si, wire.OpGet, req.ID, &out, func(db *engine.DB, tl *vclock.Timeline) {
		v, err := db.Get(tl, req.Key)
		switch {
		case err == nil:
			out = wire.AppendGetResponse(out, req.ID, v)
		case errors.Is(err, engine.ErrNotFound):
			out = wire.AppendStatusResponse(out, wire.OpGet, req.ID, wire.StatusNotFound, "")
		default:
			out = wire.AppendStatusResponse(out, wire.OpGet, req.ID, wire.StatusErr, err.Error())
		}
	})
	return out
}

// putStatus maps a write error to its wire status: a shed write
// (ErrWriteStalled from the shard's admission governor) is retryable
// and gets StatusBusy so clients back off instead of treating it as a
// hard failure; anything else is StatusErr.
func putStatus(err error) wire.Status {
	if errors.Is(err, engine.ErrWriteStalled) {
		return wire.StatusBusy
	}
	return wire.StatusErr
}

func (cn *conn) doPut(req wire.Request, out []byte) []byte {
	si := cn.s.ring.Shard(req.Key)
	cn.withShard(si, wire.OpPut, req.ID, &out, func(db *engine.DB, tl *vclock.Timeline) {
		if err := db.Put(tl, req.Key, req.Value); err != nil {
			out = wire.AppendStatusResponse(out, wire.OpPut, req.ID, putStatus(err), err.Error())
		} else {
			out = wire.AppendStatusResponse(out, wire.OpPut, req.ID, wire.StatusOK, "")
		}
	})
	return out
}

func (cn *conn) doDelete(req wire.Request, out []byte) []byte {
	si := cn.s.ring.Shard(req.Key)
	cn.withShard(si, wire.OpDelete, req.ID, &out, func(db *engine.DB, tl *vclock.Timeline) {
		if err := db.Delete(tl, req.Key); err != nil {
			out = wire.AppendStatusResponse(out, wire.OpDelete, req.ID, putStatus(err), err.Error())
		} else {
			out = wire.AppendStatusResponse(out, wire.OpDelete, req.ID, wire.StatusOK, "")
		}
	})
	return out
}

// doMultiGet scatters the batch by hash, runs each shard's slice
// through DB.MultiGet (one seqnum snapshot, per-table batching — the
// PR 7 read path), and gathers results back into request order.
func (cn *conn) doMultiGet(req wire.Request, out []byte) []byte {
	if len(req.Keys) > MaxMultiGetKeys {
		return wire.AppendStatusResponse(out, wire.OpMultiGet, req.ID, wire.StatusErr,
			fmt.Sprintf("multiget batch %d exceeds max %d", len(req.Keys), MaxMultiGetKeys))
	}
	// Scatter: per-shard key slices, remembering each key's original
	// slot so the gather can restore request order.
	groups := make(map[int][]int)
	for i, k := range req.Keys {
		si := cn.s.ring.Shard(k)
		groups[si] = append(groups[si], i)
	}
	entries := make([]wire.MultiGetEntry, len(req.Keys))
	size := 0
	for si, idxs := range groups {
		keys := make([][]byte, len(idxs))
		for j, i := range idxs {
			keys[j] = req.Keys[i]
		}
		var vals [][]byte
		var errs []error
		ok := cn.withShard(si, wire.OpMultiGet, req.ID, &out, func(db *engine.DB, tl *vclock.Timeline) {
			vals, errs = db.MultiGet(tl, keys)
		})
		if !ok {
			// withShard already appended StatusShardClosed for the whole
			// frame; a partial MULTIGET result would be ambiguous.
			return out
		}
		for j, i := range idxs {
			switch {
			case errs[j] == nil:
				entries[i] = wire.MultiGetEntry{Found: true, Value: vals[j]}
				size += len(vals[j])
			case errors.Is(errs[j], engine.ErrNotFound):
				entries[i] = wire.MultiGetEntry{}
			default:
				return wire.AppendStatusResponse(out, wire.OpMultiGet, req.ID, wire.StatusErr, errs[j].Error())
			}
		}
	}
	if size > wire.MaxFrameBody-(len(entries)*16+64) {
		return wire.AppendStatusResponse(out, wire.OpMultiGet, req.ID, wire.StatusErr,
			"multiget response exceeds frame limit")
	}
	return wire.AppendMultiGetResponse(out, req.ID, entries)
}

// doScan reads up to Limit pairs from one explicit shard starting at
// Start. Scans are shard-local by design: a global ordered scan over a
// hashed keyspace is meaningless, so the client iterates shards and
// merges if it wants everything.
func (cn *conn) doScan(req wire.Request, out []byte) []byte {
	if int(req.Shard) >= len(cn.s.shards) {
		return wire.AppendStatusResponse(out, wire.OpScan, req.ID, wire.StatusErr,
			fmt.Sprintf("scan shard %d out of range (%d shards)", req.Shard, len(cn.s.shards)))
	}
	var pairs []wire.KV
	var scanErr error
	ok := cn.withShard(int(req.Shard), wire.OpScan, req.ID, &out, func(db *engine.DB, tl *vclock.Timeline) {
		it, err := db.NewIterator(tl)
		if err != nil {
			scanErr = err
			return
		}
		defer it.Close()
		if len(req.Start) == 0 {
			it.First()
		} else {
			it.Seek(req.Start)
		}
		bytes := 0
		for ; it.Valid() && uint32(len(pairs)) < req.Limit; it.Next() {
			k := append([]byte(nil), it.Key()...)
			v := append([]byte(nil), it.Value()...)
			pairs = append(pairs, wire.KV{Key: k, Value: v})
			bytes += len(k) + len(v)
			if bytes > maxScanBytes {
				break
			}
		}
		scanErr = it.Err()
	})
	if !ok {
		return out
	}
	if scanErr != nil {
		return wire.AppendStatusResponse(out, wire.OpScan, req.ID, wire.StatusErr, scanErr.Error())
	}
	return wire.AppendScanResponse(out, req.ID, pairs)
}
