package server_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"noblsm/internal/engine"
	"noblsm/internal/server"
	"noblsm/internal/server/client"
	"noblsm/internal/server/wire"
	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
)

// testOptions shrinks the per-shard engine geometry so flushes and
// compactions trigger inside small tests, mirroring the engine
// package's own smallOpts/smallDevice scaling.
func testOptions(shards int) server.Options {
	eo := engine.DefaultOptions()
	eo.WriteBufferSize = 32 << 10
	eo.TableFileSize = 16 << 10
	eo.Picker.BaseLevelBytes = 64 << 10
	eo.Picker.LevelMultiplier = 4
	eo.PollInterval = 50 * vclock.Millisecond
	dev := ssd.PM883()
	dev.ReadLatency = 500 * vclock.Nanosecond
	dev.WriteLatency = 400 * vclock.Nanosecond
	dev.FlushLatency = 6 * vclock.Microsecond
	return server.Options{Shards: shards, Engine: eo, Device: dev}
}

// startServer boots a server on a loopback port and tears it down with
// the test.
func startServer(t *testing.T, shards int) (*server.Server, string) {
	t.Helper()
	s, err := server.New(testOptions(shards))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, addr.String()
}

func dial(t *testing.T, addr string, opts client.Options) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func key(i int) []byte   { return []byte(fmt.Sprintf("key%06d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("value-%06d-%06d", i, i*7)) }

func TestServerBasicOps(t *testing.T) {
	_, addr := startServer(t, 4)
	c := dial(t, addr, client.Options{})
	if c.Shards() != 4 {
		t.Fatalf("handshake learned %d shards, want 4", c.Shards())
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := c.Put(key(i), value(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		v, err := c.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("Get %d = %q, %v", i, v, err)
		}
	}
	if _, err := c.Get([]byte("no-such-key")); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("missing key: %v, want ErrNotFound", err)
	}
	for i := 0; i < n; i += 2 {
		if err := c.Delete(key(i)); err != nil {
			t.Fatalf("Delete %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		v, err := c.Get(key(i))
		if i%2 == 0 {
			if !errors.Is(err, client.ErrNotFound) {
				t.Fatalf("deleted key %d: %q, %v", i, v, err)
			}
		} else if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("surviving key %d = %q, %v", i, v, err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 || st.TotalOps == 0 {
		t.Fatalf("stats = %+v", st)
	}
	for _, sh := range st.PerShard {
		if sh.Ops > 0 && sh.VSec <= 0 {
			t.Fatalf("shard %d served %d ops but virtual clock never advanced", sh.Shard, sh.Ops)
		}
	}
}

// TestMultiGetEquivalence: a MULTIGET over the wire must return
// exactly what per-key GETs return — same values, same absences —
// regardless of how the batch scatters across shards.
func TestMultiGetEquivalence(t *testing.T) {
	_, addr := startServer(t, 4)
	c := dial(t, addr, client.Options{})
	const n = 300
	for i := 0; i < n; i++ {
		if i%3 == 2 {
			continue // leave a third of the keyspace absent
		}
		if err := c.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		batch := make([][]byte, 0, 64)
		for j := 0; j < 64; j++ {
			batch = append(batch, key(rng.Intn(n+20))) // some beyond the keyspace
		}
		got, err := c.MultiGet(batch)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(batch) {
			t.Fatalf("trial %d: %d results for %d keys", trial, len(got), len(batch))
		}
		for j, k := range batch {
			want, gerr := c.Get(k)
			if errors.Is(gerr, client.ErrNotFound) {
				if got[j] != nil {
					t.Fatalf("trial %d key %q: multiget %q, get says absent", trial, k, got[j])
				}
				continue
			}
			if gerr != nil {
				t.Fatal(gerr)
			}
			if !bytes.Equal(got[j], want) {
				t.Fatalf("trial %d key %q: multiget %q, get %q", trial, k, got[j], want)
			}
		}
	}
}

// TestClientServerRingAgreement: the client's independently built ring
// must route every key to the same shard the server's ring does — the
// property that makes connection affinity and per-shard MULTIGET
// batches line up with the server's own placement.
func TestClientServerRingAgreement(t *testing.T) {
	s, addr := startServer(t, 8)
	c := dial(t, addr, client.Options{})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		k := make([]byte, 1+rng.Intn(32))
		rng.Read(k)
		if cs, ss := c.Ring().Shard(k), s.Ring().Shard(k); cs != ss {
			t.Fatalf("key %x: client shard %d, server shard %d", k, cs, ss)
		}
	}
}

func TestScan(t *testing.T) {
	s, addr := startServer(t, 2)
	c := dial(t, addr, client.Options{})
	const n = 400
	for i := 0; i < n; i++ {
		if err := c.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for sh := 0; sh < s.NumShards(); sh++ {
		var start []byte
		var prev []byte
		for {
			pairs, err := c.Scan(sh, start, 100)
			if err != nil {
				t.Fatal(err)
			}
			if len(pairs) == 0 {
				break
			}
			for _, p := range pairs {
				if prev != nil && bytes.Compare(p.Key, prev) <= 0 {
					t.Fatalf("shard %d scan not strictly ascending: %q after %q", sh, p.Key, prev)
				}
				if s.Ring().Shard(p.Key) != sh {
					t.Fatalf("shard %d returned key %q owned by shard %d", sh, p.Key, s.Ring().Shard(p.Key))
				}
				prev = append(prev[:0], p.Key...)
				total++
			}
			start = append(append([]byte(nil), prev...), 0) // next key after prev
		}
	}
	if total != n {
		t.Fatalf("scanned %d keys across shards, want %d", total, n)
	}
}

// TestMalformedFrames: hostile bytes on the socket must never take the
// server down — the offending connection dies (or gets an error
// response), every other connection keeps working.
func TestMalformedFrames(t *testing.T) {
	_, addr := startServer(t, 2)
	c := dial(t, addr, client.Options{})
	if err := c.Put([]byte("canary"), []byte("alive")); err != nil {
		t.Fatal(err)
	}

	hostile := [][]byte{
		// Oversized length prefix.
		{0xFF, 0xFF, 0xFF, 0xFF, 1, 0, 0, 0, 0, 0, 0, 0, 0},
		// Unknown opcode.
		{0, 0, 0, 0, 99, 0, 0, 0, 0, 0, 0, 0, 0},
		// Torn frame: header promises 100 bytes, delivers 3.
		append([]byte{100, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0}, 'a', 'b', 'c'),
		// Random junk.
		bytes.Repeat([]byte{0xA5, 0x5A, 0x00, 0xFF}, 64),
	}
	for i, payload := range hostile {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(payload); err != nil {
			t.Fatalf("hostile %d write: %v", i, err)
		}
		// The server must hang up on its own; a read should terminate.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		io.Copy(io.Discard, conn)
		conn.Close()
	}

	// A parseable frame with a garbage body keeps the connection alive:
	// the framing is sound, so the server answers StatusErr and keeps
	// reading.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	badPut := wire.AppendFrame(nil, wire.OpPut, 9, []byte{0xFF}) // truncated uvarint key length
	goodGet := wire.AppendGet(nil, 10, []byte("canary"))
	if _, err := conn.Write(append(badPut, goodGet...)); err != nil {
		t.Fatal(err)
	}
	r1 := readResp(t, conn)
	if r1.ID != 9 || r1.Status != wire.StatusErr {
		t.Fatalf("bad body response = %+v, want StatusErr id 9", r1)
	}
	r2 := readResp(t, conn)
	if r2.ID != 10 || r2.Status != wire.StatusOK || string(r2.Value) != "alive" {
		t.Fatalf("follow-up GET = %+v", r2)
	}

	// The original client never noticed any of it.
	v, err := c.Get([]byte("canary"))
	if err != nil || string(v) != "alive" {
		t.Fatalf("canary after hostile traffic = %q, %v", v, err)
	}
}

// readResp reads one raw response frame off a bare socket (the tests
// that bypass the client package to send hand-crafted bytes).
func readResp(t *testing.T, c net.Conn) wire.Response {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	hdr := make([]byte, 13)
	if _, err := io.ReadFull(c, hdr); err != nil {
		t.Fatal(err)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	body := make([]byte, n)
	if _, err := io.ReadFull(c, body); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ParseResponse(wire.Frame{
		Op:   wire.Op(hdr[4]),
		ID:   binary.LittleEndian.Uint64(hdr[5:13]),
		Body: body,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestShardCloseReopen: an administratively closed shard fails its own
// requests with ErrShardClosed while the rest keep serving; reopening
// recovers everything from the shard's WAL and tables.
func TestShardCloseReopen(t *testing.T) {
	s, addr := startServer(t, 4)
	c := dial(t, addr, client.Options{})
	const n = 200
	for i := 0; i < n; i++ {
		if err := c.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	victim := s.Ring().Shard(key(0))
	if err := s.CloseShard(victim); err != nil {
		t.Fatal(err)
	}
	closedKeys, openKeys := 0, 0
	for i := 0; i < n; i++ {
		v, err := c.Get(key(i))
		if s.Ring().Shard(key(i)) == victim {
			closedKeys++
			if !errors.Is(err, client.ErrShardClosed) {
				t.Fatalf("key %d on closed shard: %q, %v", i, v, err)
			}
		} else {
			openKeys++
			if err != nil || !bytes.Equal(v, value(i)) {
				t.Fatalf("key %d on open shard: %q, %v", i, v, err)
			}
		}
	}
	if closedKeys == 0 || openKeys == 0 {
		t.Fatalf("degenerate key split: %d closed, %d open", closedKeys, openKeys)
	}
	// MULTIGET touching the closed shard fails whole-batch with
	// ErrShardClosed (no ambiguous partial results).
	if _, err := c.MultiGet([][]byte{key(0), key(1), key(2), key(3)}); !errors.Is(err, client.ErrShardClosed) {
		t.Fatalf("multiget over closed shard: %v", err)
	}
	if err := s.ReopenShard(victim); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, err := c.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("key %d after reopen: %q, %v", i, v, err)
		}
	}
}

// TestDisconnectMidPipeline: a client that blasts a pipeline of writes
// and vanishes without reading a single response must leave the server
// consistent — every key it managed to write reads back with the full
// correct value (frames are executed atomically or not at all; a torn
// tail frame is discarded, never half-applied).
func TestDisconnectMidPipeline(t *testing.T) {
	_, addr := startServer(t, 4)
	const n = 500
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var blast []byte
	for i := 0; i < n; i++ {
		blast = wire.AppendPut(blast, uint64(i), key(i), value(i))
	}
	// Send most of it plus a torn final frame, then vanish.
	torn := wire.AppendPut(nil, n, key(n), value(n))
	if _, err := conn.Write(append(blast, torn[:len(torn)-3]...)); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	c := dial(t, addr, client.Options{})
	// The server drains the pipeline asynchronously; poll until the
	// tail key settles (present or the server finished discarding).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c.Get(key(n - 1)); err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	applied := 0
	for i := 0; i < n; i++ {
		v, err := c.Get(key(i))
		switch {
		case err == nil:
			if !bytes.Equal(v, value(i)) {
				t.Fatalf("key %d half-applied: %q", i, v)
			}
			applied++
		case errors.Is(err, client.ErrNotFound):
			// Dropped with the connection — acceptable for un-acked writes.
		default:
			t.Fatal(err)
		}
	}
	if applied == 0 {
		t.Fatal("no pipelined writes applied at all")
	}
	// The torn final frame must never materialize.
	if v, err := c.Get(key(n)); err == nil {
		t.Fatalf("torn frame applied: %q", v)
	}
}

// TestServerStress is the `make serverstress` hammer: concurrent
// client connections doing mixed reads/writes/multigets, an admin
// goroutine closing and reopening shards mid-run, and a vandal
// goroutine throwing malformed frames — all under -race in CI.
func TestServerStress(t *testing.T) {
	s, addr := startServer(t, 4)
	const (
		workers = 8
		opsEach = 400
		keys    = 1000
	)
	var bg, workersWG sync.WaitGroup
	stop := make(chan struct{})

	// Admin: toggle one shard at a time closed/open.
	bg.Add(1)
	go func() {
		defer bg.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			sh := rng.Intn(s.NumShards())
			if err := s.CloseShard(sh); err == nil {
				time.Sleep(time.Millisecond)
				if err := s.ReopenShard(sh); err != nil {
					t.Errorf("reopen shard %d: %v", sh, err)
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Vandal: malformed frames on fresh connections.
	bg.Add(1)
	go func() {
		defer bg.Done()
		rng := rand.New(rand.NewSource(5))
		for {
			select {
			case <-stop:
				return
			default:
			}
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			junk := make([]byte, 1+rng.Intn(256))
			rng.Read(junk)
			conn.Write(junk)
			conn.Close()
			time.Sleep(time.Millisecond)
		}
	}()

	// Workers: mixed traffic; ErrShardClosed is expected mid-toggle.
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			c, err := client.Dial(addr, client.Options{Conns: 2})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsEach; i++ {
				k := key(rng.Intn(keys))
				var err error
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					err = c.Put(k, value(w*opsEach+i))
				case 4:
					err = c.Delete(k)
				case 5, 6, 7:
					_, err = c.Get(k)
				default:
					batch := [][]byte{k, key(rng.Intn(keys)), key(rng.Intn(keys))}
					_, err = c.MultiGet(batch)
				}
				if err != nil && !errors.Is(err, client.ErrNotFound) && !errors.Is(err, client.ErrShardClosed) {
					errs <- fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}

	// Workers run to completion, then the background troublemakers are
	// stopped; a watchdog catches a wedged run.
	workersDone := make(chan struct{})
	go func() { workersWG.Wait(); close(workersDone) }()
	select {
	case <-workersDone:
	case <-time.After(120 * time.Second):
		t.Fatal("stress workers wedged")
	}
	close(stop)
	bg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Leave every shard open (the admin may have been stopped
	// mid-toggle), then prove the server still serves.
	for sh := 0; sh < s.NumShards(); sh++ {
		_ = s.ReopenShard(sh) // errors for already-open shards are fine
	}
	c := dial(t, addr, client.Options{})
	if err := c.Put([]byte("post-stress"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Get([]byte("post-stress")); err != nil || string(v) != "ok" {
		t.Fatalf("post-stress get = %q, %v", v, err)
	}
}

// ---------------------------------------------------------------------
// Admission-governor backpressure (PR 10): a saturated shard sheds
// writes with StatusBusy instead of stalling the connection, and the
// client's retry loop absorbs the sheds.

// governedOptions saturates one shard's admission governor
// deterministically: a pinned 1 MiB/s admitted rate, a tiny bucket and
// a short stall deadline, against a device squeezed so flushes
// genuinely fall behind (the engine package's pressureDevice recipe).
func governedOptions(shards int) server.Options {
	o := testOptions(shards)
	o.Engine.GovernorEnabled = true
	o.Engine.WriteStallDeadline = 200 * vclock.Microsecond
	o.Engine.Governor.BurstBytes = 4 << 10
	o.Engine.Governor.MinRateBytesPerSec = 1 << 20
	o.Engine.Governor.MaxRateBytesPerSec = 1 << 20
	o.Device.WriteLatency = 2 * vclock.Microsecond
	o.Device.WriteBandwidth = 64 << 20
	return o
}

// TestServerBusyBackpressure: with client retries disabled, a
// saturating write run surfaces ErrBusy (the StatusBusy wire status)
// for shed writes, never a hard error, and every acked write reads
// back — sheds are clean rejections, not partial applies.
func TestServerBusyBackpressure(t *testing.T) {
	s, err := server.New(governedOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	c := dial(t, addr.String(), client.Options{BusyRetries: -1})
	val := make([]byte, 512)
	acked := map[int]bool{}
	busy := 0
	for i := 0; i < 3000; i++ {
		switch err := c.Put(key(i), val); {
		case err == nil:
			acked[i] = true
		case errors.Is(err, client.ErrBusy):
			busy++
		default:
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if busy == 0 {
		t.Fatal("saturating run never got StatusBusy — governor not engaged over the wire")
	}
	if len(acked) == 0 {
		t.Fatal("every write shed — pacing should admit some")
	}
	if got := c.BusyEvents(); got != int64(busy) {
		t.Fatalf("client counted %d busy events, saw %d errors", got, busy)
	}
	for i := range acked {
		if v, err := c.Get(key(i)); err != nil || !bytes.Equal(v, val) {
			t.Fatalf("acked key %d: %v", i, err)
		}
	}
	// Shed keys must NOT have been applied unless a later overwrite of
	// the same key was acked (keys here are unique, so: not at all).
	for i := 0; i < 3000; i++ {
		if acked[i] {
			continue
		}
		if _, err := c.Get(key(i)); !errors.Is(err, client.ErrNotFound) {
			t.Fatalf("shed key %d present: %v", i, err)
		}
	}
}

// TestClientBusyRetry: with a deep retry budget, the client's capped
// jittered backoff rides out the sheds — every write eventually lands
// even though the server was rejecting under saturation throughout.
func TestClientBusyRetry(t *testing.T) {
	s, err := server.New(governedOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	// Each rejected attempt advances the shard's virtual clock by the
	// stall deadline (the engine charges the bounded wait), so the
	// bucket refills across retries; 64 attempts covers the worst-case
	// deficit by a wide margin.
	c := dial(t, addr.String(), client.Options{
		BusyRetries:     64,
		BusyBackoffBase: 50 * time.Microsecond,
	})
	val := make([]byte, 512)
	for i := 0; i < 1500; i++ {
		if err := c.Put(key(i), val); err != nil {
			t.Fatalf("Put %d not absorbed by retry: %v", i, err)
		}
	}
	if c.BusyEvents() == 0 {
		t.Fatal("run never saturated — retry path untested")
	}
	for i := 0; i < 1500; i += 97 {
		if v, err := c.Get(key(i)); err != nil || !bytes.Equal(v, val) {
			t.Fatalf("key %d after retries: %v", i, err)
		}
	}
}
