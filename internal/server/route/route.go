// Package route implements the consistent-hash ring that maps user
// keys onto DB shards. The SAME ring is constructed on both sides of
// the wire — the server routes every keyed frame through it, and the
// client uses it to scatter MultiGet batches per shard — so routing is
// a pure function of (key, shard count) with no coordination and no
// routing table to exchange.
//
// A plain hash(key) % n would also satisfy that, but the ring keeps
// the property that matters operationally: when the shard count
// changes, only ~1/n of the key space changes owner, so a resharded
// cluster re-warms caches for a slice of the keys instead of all of
// them.
//
// The ring is immutable after New, so lookups are lock-free and safe
// for any number of concurrent connections.
package route

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// VnodesPerShard is the number of points each shard contributes to the
// ring. 1024 points per shard keeps the max/min shard load ratio under
// ~1.2 for uniform keys at every shard count we run (1–16); see
// TestRingBalance. The ring tops out at 16k points (16 shards), so the
// per-lookup binary search stays ~14 comparisons.
const VnodesPerShard = 1024

// Ring is an immutable consistent-hash ring over a fixed shard count.
type Ring struct {
	shards int
	points []uint64 // sorted point hashes
	owner  []int32  // owner[i] is the shard owning points[i]
}

// New builds the ring for n shards. The construction is deterministic:
// the same n always yields the same ring, across processes and
// restarts.
func New(n int) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("route: shard count must be >= 1, got %d", n)
	}
	r := &Ring{
		shards: n,
		points: make([]uint64, 0, n*VnodesPerShard),
		owner:  make([]int32, 0, n*VnodesPerShard),
	}
	var buf [16]byte
	type point struct {
		h uint64
		s int32
	}
	pts := make([]point, 0, n*VnodesPerShard)
	for s := 0; s < n; s++ {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(s))
		for v := 0; v < VnodesPerShard; v++ {
			binary.LittleEndian.PutUint64(buf[8:16], uint64(v))
			pts = append(pts, point{h: Hash(buf[:]), s: int32(s)})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].h < pts[j].h })
	for _, p := range pts {
		r.points = append(r.points, p.h)
		r.owner = append(r.owner, p.s)
	}
	return r, nil
}

// MustNew is New for callers with a validated shard count.
func MustNew(n int) *Ring {
	r, err := New(n)
	if err != nil {
		panic(err)
	}
	return r
}

// Shards reports the ring's shard count.
func (r *Ring) Shards() int { return r.shards }

// Shard maps a user key to its owning shard: the key's hash walks
// clockwise to the first ring point at or after it (wrapping at the
// top).
func (r *Ring) Shard(key []byte) int {
	if r.shards == 1 {
		return 0
	}
	h := Hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		i = 0
	}
	return int(r.owner[i])
}

// Hash is the ring's key hash: FNV-1a 64 strengthened with a
// splitmix64 finalizer. FNV alone clusters short sequential keys
// (db_bench keys differ in their last digits only); the finalizer's
// avalanche spreads them uniformly over the ring.
func Hash(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
