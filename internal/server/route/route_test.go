package route

import (
	"fmt"
	"math/rand"
	"testing"

	"noblsm/internal/dbbench"
)

// TestRingBalance checks key-distribution balance for every shard
// count the benchmarks run: over a uniform key population, the
// loaded-most shard must stay within a small factor of the
// loaded-least one.
func TestRingBalance(t *testing.T) {
	const keys = 200_000
	const maxRatio = 1.25
	for n := 1; n <= 16; n++ {
		r := MustNew(n)
		counts := make([]int, n)
		// Two key shapes: db_bench's 16-digit decimal keys (the
		// benchmark population) and random binary keys.
		for i := int64(0); i < keys/2; i++ {
			counts[r.Shard(dbbench.Key(i))]++
		}
		rnd := rand.New(rand.NewSource(42))
		buf := make([]byte, 24)
		for i := 0; i < keys/2; i++ {
			rnd.Read(buf)
			counts[r.Shard(buf)]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if min == 0 {
			t.Fatalf("shards=%d: a shard received zero keys: %v", n, counts)
		}
		if ratio := float64(max) / float64(min); ratio > maxRatio {
			t.Errorf("shards=%d: max/min load ratio %.3f > %.2f (counts %v)", n, ratio, maxRatio, counts)
		}
	}
}

// TestRingDeterministic pins the routing function across process
// restarts (and across refactors of the hash): the same (key, shard
// count) must route identically in every build, because the on-disk
// shard directories persist while server processes come and go. The
// golden values were recorded from the initial implementation; a
// mismatch means persisted shards would be routed to the wrong DB
// after an upgrade.
func TestRingDeterministic(t *testing.T) {
	// Two independently built rings agree everywhere.
	a, b := MustNew(8), MustNew(8)
	for i := int64(0); i < 10_000; i++ {
		k := dbbench.Key(i)
		if a.Shard(k) != b.Shard(k) {
			t.Fatalf("two rings for the same shard count disagree on key %q", k)
		}
	}

	// Golden routing table: shard of dbbench.Key(i) for i=0..15 at 8
	// shards, recorded once. Changing the hash or ring construction
	// breaks persisted clusters and must fail loudly here.
	golden := []int{}
	r := MustNew(8)
	for i := int64(0); i < 16; i++ {
		golden = append(golden, r.Shard(dbbench.Key(i)))
	}
	want := fmt.Sprint(golden)
	const pinned = "[5 1 7 4 2 5 4 0 1 7 3 3 5 6 5 0]"
	if want != pinned {
		t.Errorf("routing changed: keys 0..15 at 8 shards route %s, pinned %s\n"+
			"(if the hash change is intentional, existing shard directories must be migrated)", want, pinned)
	}
}

// TestRingSingleShard: every key routes to shard 0.
func TestRingSingleShard(t *testing.T) {
	r := MustNew(1)
	for i := int64(0); i < 1000; i++ {
		if s := r.Shard(dbbench.Key(i)); s != 0 {
			t.Fatalf("single-shard ring routed key %d to %d", i, s)
		}
	}
}

// TestRingRejectsBadCount: shard counts below one error.
func TestRingRejectsBadCount(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("New(0) succeeded")
	}
	if _, err := New(-3); err == nil {
		t.Fatal("New(-3) succeeded")
	}
}

// TestRingStability measures how much of the key space moves when one
// shard is added — the property the ring buys over hash%n. Going from
// 8 to 9 shards must move roughly 1/9 of the keys, not all of them.
func TestRingStability(t *testing.T) {
	const keys = 100_000
	r8, r9 := MustNew(8), MustNew(9)
	moved := 0
	for i := int64(0); i < keys; i++ {
		k := dbbench.Key(i)
		if r8.Shard(k) != r9.Shard(k) {
			moved++
		}
	}
	frac := float64(moved) / keys
	if frac > 0.25 {
		t.Errorf("adding a 9th shard moved %.1f%% of keys; a consistent ring should move ~11%%", frac*100)
	}
}
