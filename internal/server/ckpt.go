// ckpt.go is the server side of checkpoint shipping and WAL streaming
// (PR 9). A follower bootstraps a shard replica in three moves:
// CKPT_BEGIN pins a zero-copy checkpoint on the shard (the engine
// hard-links the shard's immutable files under a "netckpt-<n>/" name
// prefix and holds a GC ref) and returns a JSON manifest of the
// exported files; CKPT_FETCH streams byte ranges of those files;
// CKPT_RELEASE drops the pin. From the manifest's (wal_log, wal_off)
// cursor onward, WAL_TAIL serves the primary's complete log records so
// the follower can apply the exact write stream — primary sequence
// numbers included.
//
// Sessions are owned by the engine, not the connection: the pin
// survives the TCP connection that created it (a follower may fetch
// over several connections, or reconnect mid-bootstrap) and is
// enumerable via DB.Checkpoints. The cost of that choice is that an
// abandoned checkpoint holds its pin until released or the shard
// restarts — operators can see leaked refs in lsminspect -checkpoints.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"

	"noblsm/internal/engine"
	"noblsm/internal/server/wire"
	"noblsm/internal/vclock"
)

// Fetch/tail response budgets: defaults when the client passes 0, caps
// so one frame never approaches MaxFrameBody.
const (
	defaultFetchBytes = 256 << 10
	maxFetchBytes     = 4 << 20
	defaultTailBytes  = 1 << 20
	maxTailBytes      = 4 << 20
)

// ckptDirSeq numbers network-requested checkpoint export directories
// per process. Shard filesystems are born with the server, so the
// counter restarting with the process cannot collide with leftovers.
var ckptDirSeq atomic.Uint64

// ckptManifestJSON is the CKPT_BEGIN response document.
type ckptManifestJSON struct {
	ID      uint64         `json:"id"`
	WalLog  uint64         `json:"wal_log"`
	WalOff  int64          `json:"wal_off"`
	LastSeq uint64         `json:"last_seq"`
	Files   []ckptFileJSON `json:"files"`
}

// ckptFileJSON is one exported file: its name within the checkpoint
// directory and its size at checkpoint time.
type ckptFileJSON struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// shardInRange appends an error response and returns false when si is
// not a valid shard index.
func (cn *conn) shardInRange(si uint32, op wire.Op, id uint64, out *[]byte) bool {
	if int(si) >= len(cn.s.shards) {
		*out = wire.AppendStatusResponse(*out, op, id, wire.StatusErr,
			fmt.Sprintf("%s shard %d out of range (%d shards)", op, si, len(cn.s.shards)))
		return false
	}
	return true
}

// doCkptBegin pins a checkpoint on the shard and returns its manifest.
func (cn *conn) doCkptBegin(req wire.Request, out []byte) []byte {
	if !cn.shardInRange(req.Shard, wire.OpCkptBegin, req.ID, &out) {
		return out
	}
	var (
		info engine.CheckpointInfo
		cerr error
	)
	ok := cn.withShard(int(req.Shard), wire.OpCkptBegin, req.ID, &out, func(db *engine.DB, tl *vclock.Timeline) {
		dir := fmt.Sprintf("netckpt-%d", ckptDirSeq.Add(1))
		info, cerr = db.Checkpoint(tl, dir)
	})
	if !ok {
		return out
	}
	if cerr != nil {
		return wire.AppendStatusResponse(out, wire.OpCkptBegin, req.ID, wire.StatusErr, cerr.Error())
	}
	m := ckptManifestJSON{
		ID:      info.ID,
		WalLog:  info.WALNumber,
		WalOff:  info.WALOff,
		LastSeq: uint64(info.LastSeq),
		Files:   make([]ckptFileJSON, 0, len(info.Files)),
	}
	for _, f := range info.Files {
		m.Files = append(m.Files, ckptFileJSON{Name: f.Name, Size: f.Size})
	}
	payload, err := json.Marshal(m)
	if err != nil {
		return wire.AppendStatusResponse(out, wire.OpCkptBegin, req.ID, wire.StatusErr, err.Error())
	}
	return wire.AppendCkptBeginResponse(out, req.ID, payload)
}

// doCkptFetch serves one byte range of one checkpointed file. The name
// must be one the checkpoint's manifest listed — the checkpoint is the
// namespace, not the shard's filesystem — and reads are bounded by the
// file's checkpointed size, so a fetch never observes bytes written
// after the pin.
func (cn *conn) doCkptFetch(req wire.Request, out []byte) []byte {
	if !cn.shardInRange(req.Shard, wire.OpCkptFetch, req.ID, &out) {
		return out
	}
	max := int64(req.Max)
	if max <= 0 {
		max = defaultFetchBytes
	}
	if max > maxFetchBytes {
		max = maxFetchBytes
	}
	var (
		data []byte
		ferr error
	)
	ok := cn.withShard(int(req.Shard), wire.OpCkptFetch, req.ID, &out, func(db *engine.DB, tl *vclock.Timeline) {
		var info *engine.CheckpointInfo
		for _, ci := range db.Checkpoints() {
			if ci.ID == req.CkptID {
				info = &ci
				break
			}
		}
		if info == nil {
			ferr = fmt.Errorf("unknown checkpoint %d", req.CkptID)
			return
		}
		var size int64 = -1
		for _, f := range info.Files {
			if f.Name == string(req.Name) {
				size = f.Size
				break
			}
		}
		if size < 0 {
			ferr = fmt.Errorf("checkpoint %d has no file %q", req.CkptID, req.Name)
			return
		}
		off := int64(req.Off)
		if off >= size {
			return // empty data = EOF
		}
		n := size - off
		if n > max {
			n = max
		}
		fs := cn.s.shards[req.Shard].fs
		f, err := fs.Open(tl, info.Dir+"/"+string(req.Name))
		if err != nil {
			ferr = err
			return
		}
		defer f.Close(tl)
		buf := make([]byte, n)
		got, err := f.ReadAt(tl, buf, off)
		if err != nil && err != io.EOF {
			ferr = err
			return
		}
		data = buf[:got]
	})
	if !ok {
		return out
	}
	if ferr != nil {
		return wire.AppendStatusResponse(out, wire.OpCkptFetch, req.ID, wire.StatusErr, ferr.Error())
	}
	return wire.AppendCkptFetchResponse(out, req.ID, data)
}

// doCkptRelease drops a checkpoint pin and removes its export.
func (cn *conn) doCkptRelease(req wire.Request, out []byte) []byte {
	if !cn.shardInRange(req.Shard, wire.OpCkptRelease, req.ID, &out) {
		return out
	}
	var rerr error
	ok := cn.withShard(int(req.Shard), wire.OpCkptRelease, req.ID, &out, func(db *engine.DB, tl *vclock.Timeline) {
		rerr = db.ReleaseCheckpoint(tl, req.CkptID)
	})
	if !ok {
		return out
	}
	if rerr != nil {
		return wire.AppendStatusResponse(out, wire.OpCkptRelease, req.ID, wire.StatusErr, rerr.Error())
	}
	return wire.AppendStatusResponse(out, wire.OpCkptRelease, req.ID, wire.StatusOK, "")
}

// doWalTail serves complete WAL records at/after the request cursor.
func (cn *conn) doWalTail(req wire.Request, out []byte) []byte {
	if !cn.shardInRange(req.Shard, wire.OpWalTail, req.ID, &out) {
		return out
	}
	max := int(req.Max)
	if max <= 0 {
		max = defaultTailBytes
	}
	if max > maxTailBytes {
		max = maxTailBytes
	}
	var (
		res  engine.TailResult
		terr error
	)
	ok := cn.withShard(int(req.Shard), wire.OpWalTail, req.ID, &out, func(db *engine.DB, tl *vclock.Timeline) {
		res, terr = db.TailWAL(tl, req.Log, int64(req.Off), max)
	})
	if !ok {
		return out
	}
	if terr != nil {
		return wire.AppendStatusResponse(out, wire.OpWalTail, req.ID, wire.StatusErr, terr.Error())
	}
	return wire.AppendWalTailResponse(out, req.ID, res.Restart, res.Log, uint64(res.NextOff), uint64(res.LastSeq), res.Records)
}
