// Package server is noblsm's multi-shard network front-end: one
// process running N fully independent DB shards — each with its own
// simulated SSD, ext4 journal, WAL, memtable, compaction worker and
// metrics registry — behind a consistent-hash router, speaking the
// length-prefixed binary protocol of internal/server/wire over TCP.
//
// The scaling argument is the paper's own, applied one level up: a
// single LSM-tree serializes on its WAL, its memtable swap and its
// journal commits, so once the engine's write path is concurrent
// (group commit, PR 2) the per-tree pipeline itself becomes the
// bottleneck. Shards are entirely share-nothing — no cross-shard
// locks, no shared files, no shared device queue — so aggregate
// throughput scales with the shard count until the host runs out of
// cores (wall-clock) or the workload stops being device-bound
// (virtual time).
//
// Concurrency model: each connection is one goroutine that decodes
// frames in arrival order, executes each against the owning shard,
// and writes responses back in the same order (pipelining, the Redis
// model). Cross-connection concurrency — thousands of connections
// multiplexing onto a shard's group-commit queue and batching into
// single WAL appends — is where parallelism comes from; a single
// connection's pipeline is FIFO by design.
//
// Virtual time: every connection owns one timeline per shard, seeded
// from the shard's high-water mark, so device service times, journal
// commits and group-commit stalls are charged exactly as the
// experiment harness charges them. Wall-clock behaviour is unchanged
// by the clocks (they never sleep); they exist so a loopback benchmark
// can report the aggregate throughput the paper's hardware would
// sustain, per shard, alongside the wall-clock numbers.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"noblsm/internal/engine"
	"noblsm/internal/ext4"
	"noblsm/internal/histogram"
	"noblsm/internal/obs"
	"noblsm/internal/policy"
	"noblsm/internal/server/route"
	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
)

// Options configure a server.
type Options struct {
	// Shards is the number of independent DB shards (default 1).
	Shards int
	// Variant selects the engine policy every shard runs as (default
	// NobLSM).
	Variant policy.Variant
	// Engine is the per-shard engine configuration BEFORE the variant
	// policy is applied (the harness convention). The zero value uses
	// engine defaults. Each shard perturbs Seed by its index so
	// skiplist shapes differ across shards.
	Engine engine.Options
	// Device is the per-shard simulated SSD (zero value: PM883, the
	// paper's device). Benchmarks pass harness.ScaledDevice so device
	// latencies match the scaled geometry.
	Device ssd.Config
	// CommitInterval is each shard's ext4 journal commit period; zero
	// follows Engine.PollInterval (the paper aligns the two).
	CommitInterval vclock.Duration
}

// shard is one independent DB stack plus its admin lock.
type shard struct {
	id   int
	dev  *ssd.Device
	fs   *ext4.FS
	reg  *obs.Registry
	opts engine.Options // post-policy, shard-seeded

	// mu guards db against administrative Close/Reopen. Requests hold
	// it shared for their whole execution, so an admin close waits for
	// in-flight operations and never yanks the engine out from under
	// one.
	mu sync.RWMutex
	db *engine.DB

	// vmax is the shard's virtual high-water mark: the furthest any
	// connection's timeline has advanced. New timelines start here, and
	// the benchmark reads phase elapsed off it.
	vmax atomic.Int64

	// Per-op virtual latency, cumulative and per-benchmark-phase, plus
	// phase op count. The cumulative histogram backs the STATS frame;
	// the phase one backs BeginPhase/EndPhase.
	latMu    sync.Mutex
	latCum   histogram.Histogram
	latPhase histogram.Histogram
	phaseOps int64
	vbase    vclock.Time

	ops *obs.Counter // server.shard_requests, cumulative
}

// vnow reports the shard's virtual high-water mark.
func (sh *shard) vnow() vclock.Time { return vclock.Time(sh.vmax.Load()) }

// noteTime raises the high-water mark to t.
func (sh *shard) noteTime(t vclock.Time) {
	for {
		cur := sh.vmax.Load()
		if int64(t) <= cur || sh.vmax.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// finishOp records one completed operation's virtual latency.
func (sh *shard) finishOp(start, end vclock.Time) {
	sh.noteTime(end)
	sh.ops.Inc()
	d := end.Sub(start)
	sh.latMu.Lock()
	sh.latCum.Record(d)
	sh.latPhase.Record(d)
	sh.phaseOps++
	sh.latMu.Unlock()
}

// Server runs the shards and the listener.
type Server struct {
	opts   Options
	ring   *route.Ring
	shards []*shard
	reg    *obs.Registry // server-level metrics (conns, frames)

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	accepted  *obs.Counter
	open      *obs.Gauge
	frames    *obs.Counter
	malformed *obs.Counter
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("server: closed")

// New provisions the shard stacks. The server owns them until Close.
func New(opts Options) (*Server, error) {
	if opts.Shards == 0 {
		opts.Shards = 1
	}
	if opts.Shards < 1 || opts.Shards > 1024 {
		return nil, fmt.Errorf("server: shard count %d out of range [1,1024]", opts.Shards)
	}
	if opts.Variant == "" {
		opts.Variant = policy.NobLSM
	}
	if opts.Device == (ssd.Config{}) {
		opts.Device = ssd.PM883()
	}
	ring, err := route.New(opts.Shards)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:   opts,
		ring:   ring,
		shards: make([]*shard, opts.Shards),
		reg:    obs.NewRegistry(),
		conns:  make(map[net.Conn]struct{}),
	}
	s.accepted = s.reg.Counter("server.conns_accepted")
	s.open = s.reg.Gauge("server.conns_open")
	s.frames = s.reg.Counter("server.frames")
	s.malformed = s.reg.Counter("server.malformed_frames")

	base := opts.Engine
	if base.Seed == 0 {
		base.Seed = 1
	}
	for i := range s.shards {
		eopts, err := policy.Options(opts.Variant, base)
		if err != nil {
			return nil, err
		}
		// Shards must not share deterministic randomness: identical
		// skiplist towers across shards would be a correlated worst
		// case no real deployment exhibits.
		eopts.Seed = base.Seed + int64(i)*7919
		reg := obs.NewRegistry()
		eopts.Metrics = reg
		sh := &shard{id: i, reg: reg, opts: eopts}
		sh.dev = ssd.NewObserved(opts.Device, reg)
		fsCfg := ext4.DefaultConfig()
		commit := opts.CommitInterval
		if commit == 0 {
			commit = eopts.PollInterval
		}
		if commit > 0 {
			fsCfg.CommitInterval = commit
		}
		sh.fs = ext4.NewObserved(fsCfg, sh.dev, reg, nil)
		sh.ops = reg.Counter("server.shard_requests")
		tl := vclock.NewTimeline(0)
		sh.db, err = engine.Open(tl, sh.fs, eopts)
		if err != nil {
			s.closeShardsUpTo(i)
			return nil, fmt.Errorf("server: opening shard %d: %w", i, err)
		}
		sh.noteTime(tl.Now())
		s.shards[i] = sh
	}
	return s, nil
}

func (s *Server) closeShardsUpTo(n int) {
	for j := 0; j < n; j++ {
		sh := s.shards[j]
		if sh != nil && sh.db != nil {
			_ = sh.db.Close(vclock.NewTimeline(sh.vnow()))
		}
	}
}

// NumShards reports the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// Ring exposes the router (shared with clients for tests asserting
// client/server hash agreement).
func (s *Server) Ring() *route.Ring { return s.ring }

// Start listens on addr (":0" picks a free port) and serves in a
// background goroutine.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = s.Serve(ln) }()
	return ln.Addr(), nil
}

// Serve accepts connections on ln until Close. Each connection gets
// one handler goroutine (the pipelining model — see the package
// comment).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.accepted.Inc()
		s.open.Add(1)
		go s.handleConn(c)
	}
}

// Addr reports the bound listener address, nil before Start/Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close shuts the server down: stop accepting, sever every
// connection, wait for the handlers to drain, then close each shard's
// engine (no implicit sync, as LevelDB). An operation in flight when
// its connection is severed still completes against the engine — the
// handler only notices the dead socket on its next read or write — so
// shard state is always a clean prefix of the acknowledged stream;
// only the un-acked responses are lost, which clients treat as
// retryable.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()

	var first error
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.db != nil {
			tl := vclock.NewTimeline(sh.vnow())
			if err := sh.db.Close(tl); err != nil && first == nil {
				first = err
			}
			sh.noteTime(tl.Now())
			sh.db = nil
		}
		sh.mu.Unlock()
	}
	return first
}

// CloseShard administratively closes one shard's engine. Requests
// routed to it fail with StatusShardClosed until ReopenShard; every
// other shard keeps serving. The close waits for the shard's in-flight
// operations.
func (s *Server) CloseShard(i int) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("server: shard %d out of range", i)
	}
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.db == nil {
		return fmt.Errorf("server: shard %d already closed", i)
	}
	tl := vclock.NewTimeline(sh.vnow())
	err := sh.db.Close(tl)
	sh.noteTime(tl.Now())
	sh.db = nil
	return err
}

// ReopenShard reopens a shard closed by CloseShard, recovering from
// the shard's (still-mounted) filesystem: MANIFEST replay plus the
// surviving WAL records, exactly like a process restart.
func (s *Server) ReopenShard(i int) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("server: shard %d out of range", i)
	}
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.db != nil {
		return fmt.Errorf("server: shard %d already open", i)
	}
	tl := vclock.NewTimeline(sh.vnow())
	db, err := engine.Open(tl, sh.fs, sh.opts)
	if err != nil {
		return err
	}
	sh.noteTime(tl.Now())
	sh.db = db
	return nil
}
