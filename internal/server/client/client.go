// Package client is the Go client for noblsm's network front-end: a
// pooled, pipelining, shard-aware client for the wire protocol.
//
// Topology: the client learns the server's shard count from a STATS
// handshake at dial time (or takes it from Options) and builds the
// same consistent-hash ring the server routes with, so it can keep
// every shard's traffic on a stable connection — shard i always rides
// connection i mod poolsize. That is not required for correctness
// (the server routes every key itself) but it keeps one shard's
// group-commit batching dense instead of smearing each shard's writes
// thinly across every socket.
//
// Pipelining: any number of goroutines may issue requests
// concurrently. Each connection has a writer goroutine that drains a
// send queue and flushes once per burst, and a reader goroutine that
// matches responses to callers by request id — so concurrent callers
// share sockets without waiting for each other's round trips, and a
// burst of requests costs one syscall each way.
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"noblsm/internal/server/route"
	"noblsm/internal/server/wire"
)

// Errors surfaced from response statuses.
var (
	// ErrNotFound: GET/MULTIGET slot for an absent or deleted key.
	ErrNotFound = errors.New("client: not found")
	// ErrShardClosed: the owning shard is administratively closed;
	// the operation may be retried after the shard reopens.
	ErrShardClosed = errors.New("client: shard closed")
	// ErrBusy: the owning shard's admission governor shed the write
	// (StatusBusy). The write was not applied. Put/Delete retry these
	// internally with capped jittered backoff; ErrBusy escapes only
	// once the retry budget is spent (or retries are disabled).
	ErrBusy = errors.New("client: server busy, write shed")
	// ErrClosed: the client (or its connection) was closed with the
	// operation in flight; the operation may or may not have executed.
	ErrClosed = errors.New("client: connection closed")
)

// Options configure Dial.
type Options struct {
	// Conns is the connection-pool size (default 4).
	Conns int
	// Shards, when non-zero, skips the STATS handshake and asserts the
	// server topology. Routing silently disagreeing with the server
	// would still be correct (the server re-routes) but defeats
	// connection affinity, so prefer the handshake.
	Shards int
	// BusyRetries is how many times Put/Delete retry a StatusBusy
	// shed before surfacing ErrBusy (default 4; negative disables
	// retries). Each retry backs off with a jittered, doubling delay —
	// see busyBackoff.
	BusyRetries int
	// BusyBackoffBase is the first retry's mean backoff (default
	// 1ms). Successive retries double it, capped at 64× the base, and
	// each sleep is jittered uniformly over [base/2, 3·base/2) so a
	// fleet of shed writers does not reconverge on the saturated
	// shard in lockstep.
	BusyBackoffBase time.Duration
}

// Client is a pooled, pipelining connection to one noblsm-server.
// Safe for concurrent use.
type Client struct {
	ring        *route.Ring
	conns       []*cconn
	nextID      atomic.Uint64
	closed      atomic.Bool
	busyRetries int
	busyBase    time.Duration
	busyTotal   atomic.Int64 // StatusBusy sheds observed (incl. retried)
}

// Dial connects the pool and learns the server's shard topology.
func Dial(addr string, opts Options) (*Client, error) {
	if opts.Conns <= 0 {
		opts.Conns = 4
	}
	if opts.BusyRetries == 0 {
		opts.BusyRetries = 4
	}
	if opts.BusyRetries < 0 {
		opts.BusyRetries = 0
	}
	if opts.BusyBackoffBase <= 0 {
		opts.BusyBackoffBase = time.Millisecond
	}
	c := &Client{busyRetries: opts.BusyRetries, busyBase: opts.BusyBackoffBase}
	for i := 0; i < opts.Conns; i++ {
		cc, err := dialConn(addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns = append(c.conns, cc)
	}
	shards := opts.Shards
	if shards == 0 {
		st, err := c.Stats()
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("client: topology handshake: %w", err)
		}
		shards = st.Shards
	}
	ring, err := route.New(shards)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.ring = ring
	return c, nil
}

// Shards reports the server's shard count.
func (c *Client) Shards() int { return c.ring.Shards() }

// Ring exposes the client's router for tests asserting client/server
// hash agreement.
func (c *Client) Ring() *route.Ring { return c.ring }

// Close tears down every pooled connection. In-flight operations fail
// with ErrClosed.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	for _, cc := range c.conns {
		cc.close(ErrClosed)
	}
	return nil
}

// connFor pins a shard's traffic to one pooled connection.
func (c *Client) connFor(shard int) *cconn {
	return c.conns[shard%len(c.conns)]
}

// Get fetches key. ErrNotFound for absent keys.
func (c *Client) Get(key []byte) ([]byte, error) {
	si := c.ring.Shard(key)
	id := c.nextID.Add(1)
	resp, err := c.connFor(si).roundTrip(id, wire.AppendGet(nil, id, key))
	if err != nil {
		return nil, err
	}
	if err := statusErr(resp); err != nil {
		return nil, err
	}
	return resp.Value, nil
}

// Put stores key → value. A StatusBusy shed (the shard's admission
// governor is saturated) is retried with capped jittered backoff
// before ErrBusy is surfaced.
func (c *Client) Put(key, value []byte) error {
	si := c.ring.Shard(key)
	return c.retryBusy(func() error {
		id := c.nextID.Add(1)
		resp, err := c.connFor(si).roundTrip(id, wire.AppendPut(nil, id, key, value))
		if err != nil {
			return err
		}
		return statusErr(resp)
	})
}

// Delete removes key. Sheds retry like Put.
func (c *Client) Delete(key []byte) error {
	si := c.ring.Shard(key)
	return c.retryBusy(func() error {
		id := c.nextID.Add(1)
		resp, err := c.connFor(si).roundTrip(id, wire.AppendDelete(nil, id, key))
		if err != nil {
			return err
		}
		return statusErr(resp)
	})
}

// BusyEvents reports how many StatusBusy sheds this client has
// observed, including ones absorbed by retries — the client-side view
// of server saturation.
func (c *Client) BusyEvents() int64 { return c.busyTotal.Load() }

// retryBusy runs op, absorbing up to busyRetries ErrBusy results with
// a jittered, doubling, capped backoff between attempts. Any other
// result — success or failure — returns immediately: only governor
// sheds are known not to have applied the write.
func (c *Client) retryBusy(op func() error) error {
	for attempt := 0; ; attempt++ {
		err := op()
		if !errors.Is(err, ErrBusy) {
			return err
		}
		c.busyTotal.Add(1)
		if attempt >= c.busyRetries {
			return err
		}
		time.Sleep(busyBackoff(c.busyBase, attempt))
	}
}

// busyBackoff is the sleep before retry attempt+1: the base doubled
// per attempt, capped at 64× base, jittered uniformly over
// [d/2, 3d/2) so shed writers desynchronize instead of stampeding the
// saturated shard together.
func busyBackoff(base time.Duration, attempt int) time.Duration {
	d := base << attempt
	if max := base << 6; d > max || d <= 0 {
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// MultiGet fetches a batch: scatter the keys per owning shard, issue
// one MULTIGET frame per shard concurrently on that shard's pinned
// connection, and gather results back into request order. The result
// has one slot per key — the value, or nil for absent keys. The first
// shard-level failure fails the whole batch.
func (c *Client) MultiGet(keys [][]byte) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	groups := make(map[int][]int)
	for i, k := range keys {
		si := c.ring.Shard(k)
		groups[si] = append(groups[si], i)
	}
	vals := make([][]byte, len(keys))
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for si, idxs := range groups {
		wg.Add(1)
		go func(si int, idxs []int) {
			defer wg.Done()
			sub := make([][]byte, len(idxs))
			for j, i := range idxs {
				sub[j] = keys[i]
			}
			id := c.nextID.Add(1)
			resp, err := c.connFor(si).roundTrip(id, wire.AppendMultiGet(nil, id, sub))
			if err == nil {
				err = statusErr(resp)
			}
			if err == nil && len(resp.Entries) != len(idxs) {
				err = fmt.Errorf("client: MULTIGET returned %d entries for %d keys", len(resp.Entries), len(idxs))
			}
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			for j, i := range idxs {
				if resp.Entries[j].Found {
					vals[i] = resp.Entries[j].Value
				}
			}
		}(si, idxs)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return vals, nil
}

// Scan reads up to limit pairs from one shard starting at start (nil
// for the shard's first key). Scans are shard-local; see the server's
// doScan.
func (c *Client) Scan(shard int, start []byte, limit int) ([]wire.KV, error) {
	id := c.nextID.Add(1)
	resp, err := c.connFor(shard).roundTrip(id, wire.AppendScan(nil, id, uint32(shard), start, uint32(limit)))
	if err != nil {
		return nil, err
	}
	if err := statusErr(resp); err != nil {
		return nil, err
	}
	return resp.Pairs, nil
}

// Stats fetches the server's stats document.
func (c *Client) Stats() (*StatsPayload, error) {
	id := c.nextID.Add(1)
	resp, err := c.conns[0].roundTrip(id, wire.AppendStats(nil, id))
	if err != nil {
		return nil, err
	}
	if err := statusErr(resp); err != nil {
		return nil, err
	}
	var p StatsPayload
	if err := json.Unmarshal(resp.Payload, &p); err != nil {
		return nil, fmt.Errorf("client: stats payload: %w", err)
	}
	return &p, nil
}

// StatsPayload mirrors the server's STATS document (decoded loosely so
// the client tolerates server-side additions).
type StatsPayload struct {
	Shards   int   `json:"shards"`
	Conns    int64 `json:"conns_open"`
	Frames   int64 `json:"frames"`
	TotalOps int64 `json:"total_ops"`
	PerShard []struct {
		Shard  int     `json:"shard"`
		Closed bool    `json:"closed"`
		Ops    int64   `json:"ops"`
		VSec   float64 `json:"virtual_sec"`
		P50Us  float64 `json:"p50_us"`
		P99Us  float64 `json:"p99_us"`
		P999Us float64 `json:"p999_us"`
	} `json:"per_shard"`
}

// statusErr maps a response status to a client error.
func statusErr(r wire.Response) error {
	switch r.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusNotFound:
		return ErrNotFound
	case wire.StatusShardClosed:
		return ErrShardClosed
	case wire.StatusBusy:
		return ErrBusy
	default:
		return fmt.Errorf("client: %s: %s", r.Status, r.Msg)
	}
}

// ---------------------------------------------------------------------
// Connection: writer goroutine (batch + flush), reader goroutine
// (match by id), pending map.

type cconn struct {
	c      net.Conn
	sendCh chan []byte
	done   chan struct{}

	mu      sync.Mutex
	pending map[uint64]chan result
	err     error
}

type result struct {
	resp wire.Response
	err  error
}

func dialConn(addr string) (*cconn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	cc := &cconn{
		c:       c,
		sendCh:  make(chan []byte, 128),
		done:    make(chan struct{}),
		pending: make(map[uint64]chan result),
	}
	go cc.writeLoop()
	go cc.readLoop()
	return cc, nil
}

// close fails every pending call with cause and tears the socket down.
func (cc *cconn) close(cause error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = cause
		close(cc.done)
		cc.c.Close()
	}
	pend := cc.pending
	cc.pending = make(map[uint64]chan result)
	cc.mu.Unlock()
	for _, ch := range pend {
		ch <- result{err: cause}
	}
}

// roundTrip registers the caller, enqueues the encoded frame, and
// waits for the matching response.
func (cc *cconn) roundTrip(id uint64, frame []byte) (wire.Response, error) {
	ch := make(chan result, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return wire.Response{}, err
	}
	cc.pending[id] = ch
	cc.mu.Unlock()

	select {
	case cc.sendCh <- frame:
	case <-cc.done:
		cc.mu.Lock()
		delete(cc.pending, id)
		err := cc.err
		cc.mu.Unlock()
		return wire.Response{}, err
	}
	r := <-ch
	return r.resp, r.err
}

// writeLoop drains the send queue, coalescing a burst of frames into
// one flush — the client half of pipelining.
func (cc *cconn) writeLoop() {
	bw := bufio.NewWriterSize(cc.c, 64<<10)
	for {
		select {
		case frame := <-cc.sendCh:
			if _, err := bw.Write(frame); err != nil {
				cc.close(err)
				return
			}
			// Opportunistically drain whatever else queued behind it.
		drain:
			for {
				select {
				case more := <-cc.sendCh:
					if _, err := bw.Write(more); err != nil {
						cc.close(err)
						return
					}
				default:
					break drain
				}
			}
			if err := bw.Flush(); err != nil {
				cc.close(err)
				return
			}
		case <-cc.done:
			return
		}
	}
}

// readLoop decodes response frames and completes callers by request
// id. Response bodies are copied out of the read buffer before being
// handed over, so callers own what they receive.
func (cc *cconn) readLoop() {
	br := bufio.NewReaderSize(cc.c, 64<<10)
	var buf []byte
	for {
		fr, b, err := wire.ReadFrame(br, buf)
		if err != nil {
			cc.close(fmt.Errorf("%w (%v)", ErrClosed, err))
			return
		}
		buf = b
		body := append([]byte(nil), fr.Body...)
		resp, perr := wire.ParseResponse(wire.Frame{Op: fr.Op, ID: fr.ID, Body: body})
		cc.mu.Lock()
		ch, ok := cc.pending[fr.ID]
		delete(cc.pending, fr.ID)
		cc.mu.Unlock()
		if !ok {
			// A response nobody is waiting for means the stream is out
			// of sync — abandon the connection.
			cc.close(fmt.Errorf("%w (unmatched response id %d)", ErrClosed, fr.ID))
			return
		}
		if perr != nil {
			ch <- result{err: perr}
			continue
		}
		ch <- result{resp: resp}
	}
}
