// ckpt.go is the client side of checkpoint shipping and WAL streaming
// (PR 9): thin typed wrappers over the CKPT_BEGIN / CKPT_FETCH /
// CKPT_RELEASE / WAL_TAIL frames. The replication logic itself —
// bootstrapping a replica from a fetched checkpoint and applying
// tailed records — lives in internal/replica, which drives these
// calls through its Source interface.
package client

import (
	"encoding/json"
	"fmt"

	"noblsm/internal/server/wire"
)

// CkptManifest is a pinned checkpoint's description: the files to
// fetch and the WAL cursor to tail from once they are restored.
type CkptManifest struct {
	ID      uint64     `json:"id"`
	WalLog  uint64     `json:"wal_log"`
	WalOff  int64      `json:"wal_off"`
	LastSeq uint64     `json:"last_seq"`
	Files   []CkptFile `json:"files"`
}

// CkptFile is one exported file within a checkpoint.
type CkptFile struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// WalTail is one WAL_TAIL round's result.
type WalTail struct {
	// Restart means the cursor is unrecoverable on the primary (its
	// log was garbage-collected); re-bootstrap from a new checkpoint.
	Restart bool
	// Log and NextOff are the cursor for the next call.
	Log     uint64
	NextOff uint64
	// LastSeq is the primary's visible sequence number at serve time —
	// the follower's staleness bound.
	LastSeq uint64
	// Records are complete WAL records in log order. Each slice is
	// owned by the caller.
	Records [][]byte
}

// CkptBegin pins a checkpoint on one shard and returns its manifest.
// The pin holds the checkpoint's files against garbage collection
// until CkptRelease — callers must pair the two.
func (c *Client) CkptBegin(shard int) (*CkptManifest, error) {
	id := c.nextID.Add(1)
	resp, err := c.connFor(shard).roundTrip(id, wire.AppendCkptBegin(nil, id, uint32(shard)))
	if err != nil {
		return nil, err
	}
	if err := statusErr(resp); err != nil {
		return nil, err
	}
	var m CkptManifest
	if err := json.Unmarshal(resp.Payload, &m); err != nil {
		return nil, fmt.Errorf("client: checkpoint manifest: %w", err)
	}
	return &m, nil
}

// CkptFetch reads up to max bytes of one checkpointed file at off.
// An empty result means EOF at the file's checkpointed size.
func (c *Client) CkptFetch(shard int, ckptID uint64, name string, off uint64, max uint32) ([]byte, error) {
	id := c.nextID.Add(1)
	resp, err := c.connFor(shard).roundTrip(id,
		wire.AppendCkptFetch(nil, id, uint32(shard), ckptID, []byte(name), off, max))
	if err != nil {
		return nil, err
	}
	if err := statusErr(resp); err != nil {
		return nil, err
	}
	return resp.Value, nil
}

// CkptRelease drops a checkpoint pin.
func (c *Client) CkptRelease(shard int, ckptID uint64) error {
	id := c.nextID.Add(1)
	resp, err := c.connFor(shard).roundTrip(id, wire.AppendCkptRelease(nil, id, uint32(shard), ckptID))
	if err != nil {
		return err
	}
	return statusErr(resp)
}

// WalTail fetches complete WAL records at/after the (log, off) cursor,
// up to roughly max payload bytes (0 for the server default).
func (c *Client) WalTail(shard int, log, off uint64, max uint32) (*WalTail, error) {
	id := c.nextID.Add(1)
	resp, err := c.connFor(shard).roundTrip(id, wire.AppendWalTail(nil, id, uint32(shard), log, off, max))
	if err != nil {
		return nil, err
	}
	if err := statusErr(resp); err != nil {
		return nil, err
	}
	return &WalTail{
		Restart: resp.Restart,
		Log:     resp.Log,
		NextOff: resp.NextOff,
		LastSeq: resp.LastSeq,
		Records: resp.Records,
	}, nil
}
