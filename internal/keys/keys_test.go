package keys

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMakeParseRoundTrip(t *testing.T) {
	f := func(ukey []byte, seqRaw uint64, isDelete bool) bool {
		seq := SeqNum(seqRaw) & MaxSeqNum
		kind := KindValue
		if isDelete {
			kind = KindDelete
		}
		ikey := MakeInternalKey(nil, ukey, seq, kind)
		gu, gs, gk, ok := ParseInternalKey(ikey)
		return ok && bytes.Equal(gu, ukey) && gs == seq && gk == kind
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseRejectsShortAndBadKind(t *testing.T) {
	if _, _, _, ok := ParseInternalKey([]byte("short")); ok {
		t.Fatal("parsed a 5-byte key")
	}
	bad := MakeInternalKey(nil, []byte("k"), 1, KindValue)
	bad[len(bad)-8] = 99 // corrupt the kind byte
	if _, _, _, ok := ParseInternalKey(bad); ok {
		t.Fatal("parsed an invalid kind")
	}
}

func TestCompareInternalOrdering(t *testing.T) {
	a1 := MakeInternalKey(nil, []byte("a"), 100, KindValue)
	a2 := MakeInternalKey(nil, []byte("a"), 5, KindValue)
	b1 := MakeInternalKey(nil, []byte("b"), 1, KindValue)
	aDel := MakeInternalKey(nil, []byte("a"), 100, KindDelete)

	if CompareInternal(a1, a2) >= 0 {
		t.Error("newer sequence must sort before older for same user key")
	}
	if CompareInternal(a2, b1) >= 0 {
		t.Error("user key order must dominate")
	}
	if CompareInternal(a1, aDel) >= 0 {
		t.Error("value kind must sort before delete at same seq")
	}
	if CompareInternal(a1, a1) != 0 {
		t.Error("equal keys must compare equal")
	}
}

func TestCompareInternalAgreesWithParsedOrder(t *testing.T) {
	f := func(u1, u2 []byte, s1, s2 uint16) bool {
		k1 := MakeInternalKey(nil, u1, SeqNum(s1), KindValue)
		k2 := MakeInternalKey(nil, u2, SeqNum(s2), KindValue)
		c := CompareInternal(k1, k2)
		uc := bytes.Compare(u1, u2)
		if uc != 0 {
			return c == uc
		}
		switch {
		case s1 > s2:
			return c < 0
		case s1 < s2:
			return c > 0
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUserKeyPanicsOnShortKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	UserKey([]byte("abc"))
}

func TestSeparatorInternalProperties(t *testing.T) {
	f := func(u1, u2 []byte, s1, s2 uint16) bool {
		if bytes.Compare(u1, u2) >= 0 {
			u1, u2 = u2, u1
		}
		if bytes.Equal(u1, u2) {
			u2 = append(append([]byte(nil), u2...), 0)
		}
		a := MakeInternalKey(nil, u1, SeqNum(s1), KindValue)
		b := MakeInternalKey(nil, u2, SeqNum(s2), KindValue)
		sep := SeparatorInternal(a, b)
		// a <= sep < b in internal order.
		return CompareInternal(a, sep) <= 0 && CompareInternal(sep, b) < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeparatorShortens(t *testing.T) {
	a := MakeInternalKey(nil, []byte("apple"), 7, KindValue)
	b := MakeInternalKey(nil, []byte("axe"), 9, KindValue)
	sep := SeparatorInternal(a, b)
	if len(UserKey(sep)) >= len("apple") {
		t.Fatalf("separator %q not shortened", UserKey(sep))
	}
}

func TestSuccessorInternal(t *testing.T) {
	f := func(u []byte, s uint16) bool {
		a := MakeInternalKey(nil, u, SeqNum(s), KindValue)
		suc := SuccessorInternal(a)
		return CompareInternal(a, suc) <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// All-0xff keys cannot shorten.
	a := MakeInternalKey(nil, []byte{0xff, 0xff}, 3, KindValue)
	if got := SuccessorInternal(a); CompareInternal(a, got) > 0 {
		t.Fatal("successor of 0xff-key sorted before it")
	}
}

func TestKindString(t *testing.T) {
	if KindValue.String() != "val" || KindDelete.String() != "del" {
		t.Fatal("Kind.String is wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Fatal("unknown kind formatting wrong")
	}
}

func TestStringFormatting(t *testing.T) {
	k := MakeInternalKey(nil, []byte("key"), 42, KindValue)
	if got := String(k); got != `"key"@42#val` {
		t.Fatalf("String = %q", got)
	}
	if got := String([]byte{1}); got != "badkey(01)" {
		t.Fatalf("String(bad) = %q", got)
	}
}
