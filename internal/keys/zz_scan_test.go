package keys

import (
	"bytes"
	"math/rand"
	"testing"
)

func randKey(rnd *rand.Rand) []byte {
	n := rnd.Intn(6) + 1
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rnd.Intn(4)) + 'a' - 1 // small alphabet incl 'a'-1 to force shared prefixes
	}
	return b
}

func TestSeparatorInvariant(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200000; trial++ {
		au := randKey(rnd)
		bu := randKey(rnd)
		if bytes.Compare(au, bu) > 0 {
			au, bu = bu, au
		}
		sa := SeqNum(rnd.Intn(100))
		sb := SeqNum(rnd.Intn(100))
		a := MakeInternalKey(nil, au, sa, KindValue)
		b := MakeInternalKey(nil, bu, sb, KindValue)
		if CompareInternal(a, b) >= 0 {
			continue // need a < b
		}
		sep := SeparatorInternal(a, b)
		if CompareInternal(a, sep) > 0 {
			t.Fatalf("sep < a: a=%s b=%s sep=%s", String(a), String(b), String(sep))
		}
		if CompareInternal(sep, b) >= 0 {
			t.Fatalf("sep >= b: a=%s b=%s sep=%s", String(a), String(b), String(sep))
		}
		suc := SuccessorInternal(a)
		if CompareInternal(suc, a) < 0 {
			t.Fatalf("successor < a: a=%s suc=%s", String(a), String(suc))
		}
	}
}

func TestShortestSeparatorUserInvariant(t *testing.T) {
	rnd := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200000; trial++ {
		a := randKey(rnd)
		b := randKey(rnd)
		if bytes.Compare(a, b) >= 0 {
			continue
		}
		s := shortestSeparator(a, b)
		if bytes.Compare(a, s) > 0 || bytes.Compare(s, b) >= 0 {
			t.Fatalf("a=%q b=%q sep=%q violates a<=sep<b", a, b, s)
		}
	}
}
