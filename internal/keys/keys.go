// Package keys defines the internal key encoding of the LSM-tree,
// matching LevelDB's format: an internal key is the user key followed
// by an 8-byte little-endian trailer packing a 56-bit sequence number
// and an 8-bit kind (value or deletion tombstone).
//
// Ordering: internal keys sort by user key ascending, then by sequence
// number descending (newer first), then by kind descending. This puts
// the most recent version of a user key first in any sorted stream.
package keys

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Kind discriminates live values from deletion tombstones.
type Kind uint8

const (
	// KindDelete marks a tombstone.
	KindDelete Kind = 0
	// KindValue marks a live key-value pair.
	KindValue Kind = 1
	// KindSeek is the kind used when constructing seek targets: it
	// is the largest kind so that seeking positions at the first
	// entry with sequence <= the snapshot.
	KindSeek = KindValue
)

func (k Kind) String() string {
	switch k {
	case KindDelete:
		return "del"
	case KindValue:
		return "val"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// SeqNum is a 56-bit global write sequence number.
type SeqNum uint64

// MaxSeqNum is the largest representable sequence number, used when
// seeking for the latest visible version.
const MaxSeqNum SeqNum = (1 << 56) - 1

// TrailerLen is the encoded length of the seq/kind trailer.
const TrailerLen = 8

// packTrailer combines a sequence number and kind.
func packTrailer(seq SeqNum, kind Kind) uint64 {
	return uint64(seq)<<8 | uint64(kind)
}

// MakeInternalKey appends the internal encoding of (ukey, seq, kind)
// to dst and returns the extended slice.
func MakeInternalKey(dst []byte, ukey []byte, seq SeqNum, kind Kind) []byte {
	dst = append(dst, ukey...)
	var tr [TrailerLen]byte
	binary.LittleEndian.PutUint64(tr[:], packTrailer(seq, kind))
	return append(dst, tr[:]...)
}

// ParseInternalKey splits an internal key into its components. ok is
// false if ikey is too short or carries an invalid kind.
func ParseInternalKey(ikey []byte) (ukey []byte, seq SeqNum, kind Kind, ok bool) {
	if len(ikey) < TrailerLen {
		return nil, 0, 0, false
	}
	n := len(ikey) - TrailerLen
	tr := binary.LittleEndian.Uint64(ikey[n:])
	kind = Kind(tr & 0xff)
	if kind > KindValue {
		return nil, 0, 0, false
	}
	return ikey[:n], SeqNum(tr >> 8), kind, true
}

// UserKey returns the user-key prefix of an internal key. It panics on
// keys shorter than the trailer.
func UserKey(ikey []byte) []byte {
	if len(ikey) < TrailerLen {
		panic("keys: internal key too short")
	}
	return ikey[:len(ikey)-TrailerLen]
}

// Trailer returns the packed trailer of an internal key.
func Trailer(ikey []byte) uint64 {
	return binary.LittleEndian.Uint64(ikey[len(ikey)-TrailerLen:])
}

// CompareUser compares two user keys bytewise.
func CompareUser(a, b []byte) int { return bytes.Compare(a, b) }

// CompareInternal implements the internal-key ordering.
func CompareInternal(a, b []byte) int {
	if c := bytes.Compare(UserKey(a), UserKey(b)); c != 0 {
		return c
	}
	// Larger trailer (newer sequence) sorts first.
	ta, tb := Trailer(a), Trailer(b)
	switch {
	case ta > tb:
		return -1
	case ta < tb:
		return 1
	default:
		return 0
	}
}

// String renders an internal key for debugging.
func String(ikey []byte) string {
	ukey, seq, kind, ok := ParseInternalKey(ikey)
	if !ok {
		return fmt.Sprintf("badkey(%x)", ikey)
	}
	return fmt.Sprintf("%q@%d#%v", ukey, seq, kind)
}

// SeparatorInternal returns a short internal key k with a <= k < b in
// internal order, used as an index-block separator. a is an internal
// key; b is the first internal key of the next block (may be nil at
// the end of the table).
func SeparatorInternal(a, b []byte) []byte {
	if b == nil {
		return SuccessorInternal(a)
	}
	au, bu := UserKey(a), UserKey(b)
	sep := shortestSeparator(au, bu)
	if len(sep) < len(au) && bytes.Compare(au, sep) < 0 {
		// A strictly shorter user key: pair it with the maximal
		// trailer so it still sorts >= a.
		return MakeInternalKey(nil, sep, MaxSeqNum, KindSeek)
	}
	return append([]byte(nil), a...)
}

// SuccessorInternal returns a short internal key >= a sharing no
// obligations with later keys (used for the last index entry).
func SuccessorInternal(a []byte) []byte {
	au := UserKey(a)
	suc := shortSuccessor(au)
	if len(suc) < len(au) {
		return MakeInternalKey(nil, suc, MaxSeqNum, KindSeek)
	}
	return append([]byte(nil), a...)
}

// shortestSeparator returns the shortest user key k with a <= k < b,
// or a copy of a if none shorter exists.
func shortestSeparator(a, b []byte) []byte {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	if i < n && a[i] < b[i] && a[i]+1 < b[i] {
		sep := append([]byte(nil), a[:i+1]...)
		sep[i]++
		return sep
	}
	return append([]byte(nil), a...)
}

// shortSuccessor returns a short user key >= a: the first byte that
// can be incremented is, and the rest dropped.
func shortSuccessor(a []byte) []byte {
	for i, c := range a {
		if c != 0xff {
			suc := append([]byte(nil), a[:i+1]...)
			suc[i]++
			return suc
		}
	}
	return append([]byte(nil), a...)
}
