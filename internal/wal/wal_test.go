package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"testing"

	"noblsm/internal/ext4"
	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
	"noblsm/internal/vfs"
)

func newLog(t *testing.T) (*ext4.FS, *vclock.Timeline, vfs.File) {
	t.Helper()
	fs := ext4.New(ext4.DefaultConfig(), ssd.New(ssd.PM883()))
	tl := vclock.NewTimeline(0)
	f, err := fs.Create(tl, "000001.log")
	if err != nil {
		t.Fatal(err)
	}
	return fs, tl, f
}

func readAll(t *testing.T, fs *ext4.FS, tl *vclock.Timeline, name string) *Reader {
	t.Helper()
	data, err := fs.ReadFile(tl, name)
	if err != nil {
		t.Fatal(err)
	}
	return NewReader(data)
}

func TestRoundTripSmallRecords(t *testing.T) {
	fs, tl, f := newLog(t)
	w := NewWriter(f)
	want := [][]byte{[]byte("one"), []byte("two"), {}, []byte("four")}
	for _, rec := range want {
		if err := w.AddRecord(tl, rec); err != nil {
			t.Fatal(err)
		}
	}
	r := readAll(t, fs, tl, "000001.log")
	for i, wantRec := range want {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("record %d missing", i)
		}
		if !bytes.Equal(got, wantRec) {
			t.Fatalf("record %d = %q, want %q", i, got, wantRec)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("extra record")
	}
	if r.Dropped != 0 || r.DroppedRecords != 0 {
		t.Fatalf("clean log reported drops: %d bytes, %d records", r.Dropped, r.DroppedRecords)
	}
}

func TestRoundTripLargeRecordsSpanBlocks(t *testing.T) {
	fs, tl, f := newLog(t)
	w := NewWriter(f)
	rnd := rand.New(rand.NewSource(1))
	var want [][]byte
	for _, size := range []int{BlockSize / 2, BlockSize - headerSize, BlockSize, 3*BlockSize + 17, 1} {
		rec := make([]byte, size)
		rnd.Read(rec)
		want = append(want, rec)
		if err := w.AddRecord(tl, rec); err != nil {
			t.Fatal(err)
		}
	}
	r := readAll(t, fs, tl, "000001.log")
	for i, wantRec := range want {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("record %d missing", i)
		}
		if !bytes.Equal(got, wantRec) {
			t.Fatalf("record %d mismatch (len %d vs %d)", i, len(got), len(wantRec))
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("extra record")
	}
}

func TestBlockTailPadding(t *testing.T) {
	fs, tl, f := newLog(t)
	w := NewWriter(f)
	// Leave exactly 3 bytes (< headerSize) before the block boundary.
	first := make([]byte, BlockSize-headerSize-3-headerSize)
	if err := w.AddRecord(tl, first); err != nil {
		t.Fatal(err)
	}
	if err := w.AddRecord(tl, []byte("next-block")); err != nil {
		t.Fatal(err)
	}
	r := readAll(t, fs, tl, "000001.log")
	got1, ok1 := r.Next()
	got2, ok2 := r.Next()
	if !ok1 || !ok2 || len(got1) != len(first) || string(got2) != "next-block" {
		t.Fatalf("padding handling broken: ok1=%v ok2=%v", ok1, ok2)
	}
}

func TestTornTailDropped(t *testing.T) {
	fs, tl, f := newLog(t)
	w := NewWriter(f)
	w.AddRecord(tl, []byte("intact"))
	w.AddRecord(tl, []byte("will-be-torn-by-the-crash"))
	data, _ := fs.ReadFile(tl, "000001.log")
	// Simulate a torn tail: cut mid-way through the second record.
	torn := data[:len(data)-10]
	r := NewReader(torn)
	got, ok := r.Next()
	if !ok || string(got) != "intact" {
		t.Fatalf("first record: %q, %v", got, ok)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("torn record surfaced")
	}
	if r.Dropped == 0 {
		t.Fatal("torn bytes not counted")
	}
}

func TestCorruptChecksumSkipped(t *testing.T) {
	fs, tl, f := newLog(t)
	w := NewWriter(f)
	w.AddRecord(tl, []byte("first"))
	w.AddRecord(tl, []byte("second"))
	data, _ := fs.ReadFile(tl, "000001.log")
	img := append([]byte(nil), data...)
	img[headerSize] ^= 0xff // flip a payload byte of record 1
	r := NewReader(img)
	// Record 1 is corrupt; the resync policy skips to the next block,
	// which also drops record 2 (same block) — matching LevelDB's
	// block-granularity recovery.
	if _, ok := r.Next(); ok {
		t.Fatal("corrupt block yielded a record")
	}
	if r.DroppedRecords == 0 || r.Dropped == 0 {
		t.Fatalf("corruption not accounted: %+v", r)
	}
}

func TestZeroPaddedPreallocation(t *testing.T) {
	w := NewReader(make([]byte, BlockSize))
	if _, ok := w.Next(); ok {
		t.Fatal("zero-filled block yielded a record")
	}
}

func TestReopenAppendContinues(t *testing.T) {
	fs, tl, f := newLog(t)
	w := NewWriter(f)
	w.AddRecord(tl, []byte("before"))
	f.Close(tl)

	f2, err := fs.Open(tl, "000001.log")
	if err != nil {
		t.Fatal(err)
	}
	_ = f2.Close(tl)
	// Writers resume from the recorded size; emulate reopen-for-append
	// by creating a writer over a handle at the same block phase.
	f3, _ := fs.Create(tl, "000002.log")
	w3 := NewWriter(f3)
	w3.AddRecord(tl, []byte("after"))
	r := readAll(t, fs, tl, "000002.log")
	if got, ok := r.Next(); !ok || string(got) != "after" {
		t.Fatalf("fresh log: %q %v", got, ok)
	}
}

func TestManyRandomRecordsRoundTrip(t *testing.T) {
	fs, tl, f := newLog(t)
	w := NewWriter(f)
	rnd := rand.New(rand.NewSource(42))
	var want [][]byte
	for i := 0; i < 500; i++ {
		rec := make([]byte, rnd.Intn(2000))
		rnd.Read(rec)
		want = append(want, rec)
		if err := w.AddRecord(tl, rec); err != nil {
			t.Fatal(err)
		}
	}
	r := readAll(t, fs, tl, "000001.log")
	for i := range want {
		got, ok := r.Next()
		if !ok || !bytes.Equal(got, want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("extra record")
	}
}

func TestWriterSizeTracksFile(t *testing.T) {
	_, tl, f := newLog(t)
	w := NewWriter(f)
	w.AddRecord(tl, make([]byte, 100))
	if w.Size() != f.Size() {
		t.Fatalf("writer size %d, file size %d", w.Size(), f.Size())
	}
	if w.Size() != 107 {
		t.Fatalf("one 100-byte record occupies %d bytes, want 107", w.Size())
	}
}

func TestReaderResyncFindsLaterBlocks(t *testing.T) {
	// Corrupt a record in block 0; a record wholly inside block 1
	// must still be recovered.
	fs, tl, f := newLog(t)
	w := NewWriter(f)
	// Size the first record so that after the second, fewer than
	// headerSize bytes remain in block 0 and the third record starts
	// block 1.
	w.AddRecord(tl, make([]byte, BlockSize-2*headerSize-len("tail-of-block-0")-3))
	w.AddRecord(tl, []byte("tail-of-block-0"))
	w.AddRecord(tl, []byte("block-1-record"))
	data, _ := fs.ReadFile(tl, "000001.log")
	img := append([]byte(nil), data...)
	img[8] ^= 0x01 // corrupt first record's payload
	r := NewReader(img)
	var got []string
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		got = append(got, string(rec))
	}
	if len(got) != 1 || got[0] != "block-1-record" {
		t.Fatalf("resync recovered %q", got)
	}
	if r.DroppedRecords == 0 {
		t.Fatal("drops not reported")
	}
}

// TestScanRecordsOffsetsAfterDamage: a valid record that Next returns
// after skipping a damaged region must be reported at the offset where
// it actually begins, not at the damaged region's start — tools dump
// and target corruption by these offsets (lsminspect -manifest, the
// engine's corruptRecordPayload helper), so a stale offset would point
// them at the wrong bytes on already-damaged logs.
func TestScanRecordsOffsetsAfterDamage(t *testing.T) {
	fs, tl, f := newLog(t)
	w := NewWriter(f)
	rnd := rand.New(rand.NewSource(7))
	const n = 10
	for i := 0; i < n; i++ {
		// ~10 KiB records: three per block, so damage in block 0 leaves
		// valid records in later blocks for the reader to resync onto.
		rec := make([]byte, 10*1024)
		rnd.Read(rec)
		if err := w.AddRecord(tl, rec); err != nil {
			t.Fatal(err)
		}
	}
	data, err := fs.ReadFile(tl, "000001.log")
	if err != nil {
		t.Fatal(err)
	}
	clean := ScanRecords(data)
	if len(clean) != n {
		t.Fatalf("clean scan found %d entries, want %d", len(clean), n)
	}
	// Damage record 1's payload: the reader drops the rest of block 0
	// and resyncs at the block 1 boundary.
	data[clean[1].Off+headerSize] ^= 0x01

	recs := ScanRecords(data)
	validAfterDamage := 0
	sawDamage := false
	for _, e := range recs {
		if !e.Valid {
			sawDamage = true
			continue
		}
		if !sawDamage {
			continue
		}
		validAfterDamage++
		// The entry's offset must frame the very record it reports: a
		// FULL or FIRST header whose CRC covers the payload prefix.
		hdr := data[e.Off : e.Off+headerSize]
		typ := hdr[6]
		length := int(binary.LittleEndian.Uint16(hdr[4:6]))
		if typ != full && typ != first {
			t.Fatalf("valid entry at %d starts with fragment type %d, want FULL or FIRST", e.Off, typ)
		}
		if length > len(e.Payload) {
			t.Fatalf("valid entry at %d frames %d bytes, payload only %d", e.Off, length, len(e.Payload))
		}
		frag := data[e.Off+headerSize : e.Off+headerSize+length]
		if !bytes.Equal(frag, e.Payload[:length]) {
			t.Fatalf("valid entry at %d: framed bytes differ from reported payload", e.Off)
		}
		crc := crc32.New(castagnoli)
		crc.Write([]byte{typ})
		crc.Write(frag)
		if crc.Sum32() != binary.LittleEndian.Uint32(hdr[0:4]) {
			t.Fatalf("valid entry at %d: offset does not point at a real record header (CRC mismatch)", e.Off)
		}
	}
	if !sawDamage || validAfterDamage == 0 {
		t.Fatalf("scenario not reached: damage=%v valid-after=%d", sawDamage, validAfterDamage)
	}
}

func BenchmarkAddRecord1KB(b *testing.B) {
	fs := ext4.New(ext4.DefaultConfig(), ssd.New(ssd.PM883()))
	tl := vclock.NewTimeline(0)
	f, _ := fs.Create(tl, "bench.log")
	w := NewWriter(f)
	rec := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.AddRecord(tl, rec); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleReader() {
	fs := ext4.New(ext4.DefaultConfig(), ssd.New(ssd.PM883()))
	tl := vclock.NewTimeline(0)
	f, _ := fs.Create(tl, "demo.log")
	w := NewWriter(f)
	w.AddRecord(tl, []byte("put k1 v1"))
	w.AddRecord(tl, []byte("put k2 v2"))
	data, _ := fs.ReadFile(tl, "demo.log")
	r := NewReader(data)
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		fmt.Println(string(rec))
	}
	// Output:
	// put k1 v1
	// put k2 v2
}
