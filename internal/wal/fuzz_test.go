package wal

import (
	"bytes"
	"testing"

	"noblsm/internal/vclock"
)

// fuzzSeedImages builds representative log images for the fuzz corpus:
// clean multi-record logs, block-boundary shapes, torn tails, and
// interior damage. Checked-in regressions live in
// testdata/fuzz/FuzzWALReader.
func fuzzSeedImages() [][]byte {
	tl := vclock.NewTimeline(0)
	var seeds [][]byte

	add := func(recs ...[]byte) []byte {
		f := &memFile{}
		w := NewWriter(f)
		for _, rec := range recs {
			_ = w.AddRecord(tl, rec)
		}
		seeds = append(seeds, f.b)
		return f.b
	}

	add([]byte("one"), []byte("two"), nil)
	add(bytes.Repeat([]byte{0xAB}, BlockSize-headerSize)) // exactly one block
	big := add(bytes.Repeat([]byte{0xCD}, 3*BlockSize+17), []byte("tail"))

	// Torn tail and interior flip variants of the multi-block image.
	seeds = append(seeds, big[:len(big)-9])
	flipped := append([]byte(nil), big...)
	flipped[headerSize+1] ^= 0x01
	seeds = append(seeds, flipped)

	seeds = append(seeds,
		nil,
		make([]byte, BlockSize),        // zero-padded preallocation
		[]byte{0, 0, 0, 0, 0xFF, 0xFF}, // truncated garbage header
	)
	return seeds
}

// FuzzWALReader feeds arbitrary bytes through the log reader and
// checks its safety contract: it terminates, never fabricates payload
// bytes beyond the image, accounts drops sanely, and classifies any
// damage as either a silent tail truncate or interior corruption.
// Records it does return must survive a write→read round trip.
func FuzzWALReader(f *testing.F) {
	for _, seed := range fuzzSeedImages() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		var recs [][]byte
		total := 0
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			recs = append(recs, append([]byte(nil), rec...))
			total += len(rec)
		}
		if total+r.Dropped > len(data) {
			t.Fatalf("returned %d + dropped %d bytes from a %d-byte image", total, r.Dropped, len(data))
		}
		if err := r.Err(); err != nil && r.DroppedRecords == 0 {
			t.Fatalf("interior corruption (%v) without any drop", err)
		}

		// Whatever parsed must round-trip through a fresh writer.
		tl := vclock.NewTimeline(0)
		out := &memFile{}
		w := NewWriter(out)
		for _, rec := range recs {
			if err := w.AddRecord(tl, rec); err != nil {
				t.Fatal(err)
			}
		}
		rt := NewReader(out.b)
		for i, want := range recs {
			got, ok := rt.Next()
			if !ok || !bytes.Equal(got, want) {
				t.Fatalf("round-trip record %d mismatch", i)
			}
		}
		if _, ok := rt.Next(); ok {
			t.Fatal("round-trip extra record")
		}
	})
}
