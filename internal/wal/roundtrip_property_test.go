package wal

import (
	"bytes"
	"math/rand"
	"testing"

	"noblsm/internal/vclock"
)

type memFile struct{ b []byte }

func (m *memFile) Append(tl *vclock.Timeline, p []byte) error { m.b = append(m.b, p...); return nil }
func (m *memFile) Sync(tl *vclock.Timeline) error             { return nil }
func (m *memFile) Size() int64                                { return int64(len(m.b)) }
func (m *memFile) Close(tl *vclock.Timeline) error            { return nil }
func (m *memFile) Ino() int64                                 { return 1 }
func (m *memFile) ReadAt(tl *vclock.Timeline, p []byte, off int64) (int, error) {
	return copy(p, m.b[off:]), nil
}

func TestRoundTripSizes(t *testing.T) {
	tl := vclock.NewTimeline(0)
	rnd := rand.New(rand.NewSource(7))
	// Record sizes probing block boundaries
	sizes := []int{0, 1, 7, BlockSize - 7, BlockSize - 8, BlockSize - 6, BlockSize - 14, BlockSize - 13, BlockSize, BlockSize + 1, 3 * BlockSize, 100}
	var recs [][]byte
	f := &memFile{}
	w := &Writer{f: f}
	for i, s := range sizes {
		p := make([]byte, s)
		rnd.Read(p)
		if len(p) > 0 {
			p[0] = byte(i)
		}
		recs = append(recs, p)
		if err := w.AddRecord(tl, p); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(f.b)
	for i := range recs {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("rec %d (size %d): premature end", i, sizes[i])
		}
		if !bytes.Equal(got, recs[i]) {
			t.Fatalf("rec %d (size %d): mismatch got %d bytes want %d", i, sizes[i], len(got), len(recs[i]))
		}
	}
	if got, ok := r.Next(); ok {
		t.Fatalf("extra record of %d bytes", len(got))
	}
	if r.Dropped != 0 || r.DroppedRecords != 0 {
		t.Fatalf("clean log reported dropped=%d records=%d", r.Dropped, r.DroppedRecords)
	}
}

// Truncate the log at every length; reader must return a clean prefix
// of complete records and never a wrong/partial record.
func TestTornTailEveryOffset(t *testing.T) {
	tl := vclock.NewTimeline(0)
	rnd := rand.New(rand.NewSource(9))
	f := &memFile{}
	w := &Writer{f: f}
	var recs [][]byte
	for i := 0; i < 30; i++ {
		p := make([]byte, rnd.Intn(3000))
		rnd.Read(p)
		recs = append(recs, p)
		if err := w.AddRecord(tl, p); err != nil {
			t.Fatal(err)
		}
	}
	full := f.b
	for cut := 0; cut <= len(full); cut += 37 {
		r := NewReader(full[:cut])
		i := 0
		for {
			got, ok := r.Next()
			if !ok {
				break
			}
			if i >= len(recs) || !bytes.Equal(got, recs[i]) {
				t.Fatalf("cut %d: record %d wrong (len %d)", cut, i, len(got))
			}
			i++
		}
	}
}

// A writer resuming on a non-empty file (manifest reuse pattern).
func TestResumeAppend(t *testing.T) {
	tl := vclock.NewTimeline(0)
	f := &memFile{}
	w := NewWriter(f)
	a := bytes.Repeat([]byte("a"), BlockSize-10)
	if err := w.AddRecord(tl, a); err != nil {
		t.Fatal(err)
	}
	w2 := NewWriter(f)
	b := bytes.Repeat([]byte("b"), 50)
	if err := w2.AddRecord(tl, b); err != nil {
		t.Fatal(err)
	}
	r := NewReader(f.b)
	g1, ok1 := r.Next()
	g2, ok2 := r.Next()
	if !ok1 || !ok2 || !bytes.Equal(g1, a) || !bytes.Equal(g2, b) {
		t.Fatalf("resume: ok1=%v ok2=%v len1=%d len2=%d", ok1, ok2, len(g1), len(g2))
	}
}
