package wal

import (
	"bytes"
	"math/rand"
	"testing"

	"noblsm/internal/vclock"
)

// A single flipped byte must only lose records touching the damaged
// block; every record fully contained in other blocks must be
// recovered intact and never returned corrupted.
func TestBitFlipRecovery(t *testing.T) {
	tl := vclock.NewTimeline(0)
	rnd := rand.New(rand.NewSource(21))
	f := &memFile{}
	w := NewWriter(f)
	var recs [][]byte
	type span struct{ start, end int }
	var spans []span
	for i := 0; i < 40; i++ {
		p := make([]byte, rnd.Intn(20000))
		rnd.Read(p)
		start := len(f.b)
		if err := w.AddRecord(tl, p); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, p)
		spans = append(spans, span{start, len(f.b)})
	}
	good := f.b
	for pos := 0; pos < len(good); pos += 131 {
		img := append([]byte(nil), good...)
		img[pos] ^= 0x01
		damagedBlock := pos / BlockSize
		r := NewReader(img)
		got := map[int]bool{}
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			// every returned record must exactly match some original
			matched := -1
			for j := range recs {
				if len(recs[j]) == len(rec) && bytes.Equal(recs[j], rec) {
					matched = j
					break
				}
			}
			if matched < 0 {
				t.Fatalf("flip at %d: reader returned a record matching no original (len %d)", pos, len(rec))
			}
			got[matched] = true
		}
		// records that don't intersect the damaged block must be present
		for j, s := range spans {
			if s.start/BlockSize <= damagedBlock && (s.end-1)/BlockSize >= damagedBlock {
				continue // touches damaged block
			}
			if !got[j] {
				t.Errorf("flip at %d (block %d): lost record %d spanning bytes [%d,%d)", pos, damagedBlock, j, s.start, s.end)
			}
		}
	}
}
