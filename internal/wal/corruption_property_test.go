package wal

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"noblsm/internal/vclock"
)

// A single flipped byte must only lose records touching the damaged
// block; every record fully contained in other blocks must be
// recovered intact and never returned corrupted.
func TestBitFlipRecovery(t *testing.T) {
	tl := vclock.NewTimeline(0)
	rnd := rand.New(rand.NewSource(21))
	f := &memFile{}
	w := NewWriter(f)
	var recs [][]byte
	type span struct{ start, end int }
	var spans []span
	for i := 0; i < 40; i++ {
		p := make([]byte, rnd.Intn(20000))
		rnd.Read(p)
		start := len(f.b)
		if err := w.AddRecord(tl, p); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, p)
		spans = append(spans, span{start, len(f.b)})
	}
	good := f.b
	for pos := 0; pos < len(good); pos += 131 {
		img := append([]byte(nil), good...)
		img[pos] ^= 0x01
		damagedBlock := pos / BlockSize
		r := NewReader(img)
		got := map[int]bool{}
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			// every returned record must exactly match some original
			matched := -1
			for j := range recs {
				if len(recs[j]) == len(rec) && bytes.Equal(recs[j], rec) {
					matched = j
					break
				}
			}
			if matched < 0 {
				t.Fatalf("flip at %d: reader returned a record matching no original (len %d)", pos, len(rec))
			}
			got[matched] = true
		}
		// records that don't intersect the damaged block must be present
		for j, s := range spans {
			if s.start/BlockSize <= damagedBlock && (s.end-1)/BlockSize >= damagedBlock {
				continue // touches damaged block
			}
			if !got[j] {
				t.Errorf("flip at %d (block %d): lost record %d spanning bytes [%d,%d)", pos, damagedBlock, j, s.start, s.end)
			}
		}
	}
}

// The missing half of the corruption taxonomy: a torn/short final
// record must be a silent clean-tail truncate, while corruption
// followed by further valid records must surface the distinct
// ErrInteriorCorruption — a crash can only damage the unsynced tail.
func TestInteriorVsTailCorruption(t *testing.T) {
	tl := vclock.NewTimeline(0)
	rnd := rand.New(rand.NewSource(33))
	f := &memFile{}
	w := NewWriter(f)
	var recs [][]byte
	for i := 0; i < 20; i++ {
		p := make([]byte, 400+rnd.Intn(4000))
		rnd.Read(p)
		recs = append(recs, p)
		if err := w.AddRecord(tl, p); err != nil {
			t.Fatal(err)
		}
	}
	good := f.b

	drain := func(img []byte) (*Reader, int) {
		r := NewReader(img)
		n := 0
		for {
			if _, ok := r.Next(); !ok {
				break
			}
			n++
		}
		return r, n
	}

	// Clean log: no error.
	if r, n := drain(good); r.Err() != nil || n != len(recs) {
		t.Fatalf("clean log: n=%d err=%v", n, r.Err())
	}

	// Torn tail at every truncation point: never an error.
	for cut := 0; cut <= len(good); cut += 211 {
		if r, _ := drain(good[:cut]); r.Err() != nil {
			t.Fatalf("cut %d: torn tail reported %v", cut, r.Err())
		}
	}

	// Corrupt the final record's payload (nothing valid after it):
	// indistinguishable from a torn tail, so still no error.
	img := append([]byte(nil), good...)
	img[len(img)-1] ^= 0x01
	if r, _ := drain(img); r.Err() != nil {
		t.Fatalf("damaged final record reported %v", r.Err())
	}

	// Corrupt an interior record: valid records follow the damage, so
	// the distinct interior-corruption error must fire.
	img = append([]byte(nil), good...)
	img[headerSize+10] ^= 0x01 // first record's payload
	r, _ := drain(img)
	if !errors.Is(r.Err(), ErrInteriorCorruption) {
		t.Fatalf("interior damage reported %v, want ErrInteriorCorruption", r.Err())
	}
}

// A failed append must not advance the writer's framing: after the
// error the writer rewinds, and a rotation to a fresh log leaves the
// damaged file as a cleanly truncatable tail.
func TestWriterRewindsOnAppendError(t *testing.T) {
	tl := vclock.NewTimeline(0)
	f := &failFile{}
	w := NewWriter(f)
	if err := w.AddRecord(tl, []byte("first")); err != nil {
		t.Fatal(err)
	}
	phase := w.blockOffset
	f.failNext = true
	short := []byte("short-write-victim")
	if err := w.AddRecord(tl, short); err == nil {
		t.Fatal("append should have failed")
	}
	if w.blockOffset != phase {
		t.Fatalf("blockOffset advanced across failed append: %d -> %d", phase, w.blockOffset)
	}
	// The landed prefix is a torn tail; recovery sees only record one.
	r := NewReader(f.b)
	got, ok := r.Next()
	if !ok || string(got) != "first" {
		t.Fatalf("first record: %q %v", got, ok)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("failed append surfaced a record")
	}
	if r.Err() != nil {
		t.Fatalf("tail damage reported %v", r.Err())
	}
}

// failFile lands half the buffer then errors, like a short write.
type failFile struct {
	memFile
	failNext bool
}

func (f *failFile) Append(tl *vclock.Timeline, p []byte) error {
	if f.failNext {
		f.failNext = false
		f.b = append(f.b, p[:len(p)/2]...)
		return errors.New("injected append failure")
	}
	return f.memFile.Append(tl, p)
}
