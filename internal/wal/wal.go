// Package wal implements LevelDB's write-ahead-log format: the file is
// a sequence of 32 KiB blocks, each packed with physical records of
// the form
//
//	checksum uint32   // CRC-32C of type byte + payload
//	length   uint16   // payload length
//	type     uint8    // FULL, FIRST, MIDDLE or LAST
//	payload  []byte
//
// A logical record larger than the space left in a block is split into
// FIRST/MIDDLE.../LAST fragments; a block tail smaller than the 7-byte
// header is zero-padded. The same format stores both the write-ahead
// log and the MANIFEST (version-edit log).
//
// The reader recovers gracefully from a torn tail — the expected state
// of an unsynced log after a power cut — by reporting how many clean
// records were read and whether trailing bytes had to be dropped.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"noblsm/internal/obs"
	"noblsm/internal/vclock"
	"noblsm/internal/vfs"
)

const (
	// BlockSize is the physical block size of the log format.
	BlockSize = 32 * 1024
	// headerSize is checksum(4) + length(2) + type(1).
	headerSize = 7
)

// Record fragment types.
const (
	full   = 1
	first  = 2
	middle = 3
	last   = 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a damaged record (bad checksum, impossible
// length, or a fragment sequence that does not parse).
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrInteriorCorruption reports damage in the interior of the log:
// corrupt bytes followed by further valid records. A crash can only
// damage the unsynced tail, so interior corruption is real media or
// software corruption, never a torn-write artifact, and recovery must
// not silently truncate it away.
var ErrInteriorCorruption = errors.New("wal: corruption before log tail")

// Writer appends logical records to a log file.
type Writer struct {
	f           vfs.File
	blockOffset int
	buf         []byte

	// records/bytes are optional registry counters (Instrument); nil
	// costs one pointer check per append.
	records *obs.Counter
	bytes   *obs.Counter
	// appendDur, when set (InstrumentTimer), times each successful
	// AddRecord on the caller's virtual timeline — the write path's
	// wal_append attribution phase, viewed from the log's side.
	appendDur *obs.Timer
}

// Instrument publishes per-append accounting (logical records and
// physical bytes, including framing and padding) into the given
// counters. Nil counters disable the corresponding count.
func (w *Writer) Instrument(records, bytes *obs.Counter) {
	w.records, w.bytes = records, bytes
}

// InstrumentTimer publishes per-append virtual durations into t. A nil
// timer disables the measurement.
func (w *Writer) InstrumentTimer(t *obs.Timer) { w.appendDur = t }

// NewWriter returns a writer appending to f, which must be empty or
// have been written only by a Writer (so the block phase is size %
// BlockSize).
func NewWriter(f vfs.File) *Writer {
	return &Writer{f: f, blockOffset: int(f.Size() % BlockSize)}
}

// AddRecord appends one logical record.
//
// On error nothing is considered written: the writer rewinds its block
// phase so its framing state never runs ahead of a failed append. The
// file itself may still hold a prefix of the record (a short or torn
// write), so after any AddRecord error the caller must stop appending
// to this log and rotate to a fresh one — the damage is then a pure
// tail artifact that the reader truncates cleanly at recovery.
func (w *Writer) AddRecord(tl *vclock.Timeline, payload []byte) error {
	appendFrom := tl.Now()
	startOffset := w.blockOffset
	w.buf = w.buf[:0]
	rest := payload
	begin := true
	for {
		leftover := BlockSize - w.blockOffset
		if leftover < headerSize {
			// Pad the block tail.
			w.buf = append(w.buf, make([]byte, leftover)...)
			w.blockOffset = 0
			leftover = BlockSize
		}
		avail := leftover - headerSize
		frag := rest
		if len(frag) > avail {
			frag = frag[:avail]
		}
		rest = rest[len(frag):]
		end := len(rest) == 0
		var typ byte
		switch {
		case begin && end:
			typ = full
		case begin:
			typ = first
		case end:
			typ = last
		default:
			typ = middle
		}
		var hdr [headerSize]byte
		crc := crc32.New(castagnoli)
		crc.Write([]byte{typ})
		crc.Write(frag)
		binary.LittleEndian.PutUint32(hdr[0:4], crc.Sum32())
		binary.LittleEndian.PutUint16(hdr[4:6], uint16(len(frag)))
		hdr[6] = typ
		w.buf = append(w.buf, hdr[:]...)
		w.buf = append(w.buf, frag...)
		w.blockOffset += headerSize + len(frag)
		begin = false
		if end {
			break
		}
	}
	if err := w.f.Append(tl, w.buf); err != nil {
		w.blockOffset = startOffset
		return err
	}
	if w.records != nil {
		w.records.Inc()
	}
	if w.bytes != nil {
		w.bytes.Add(int64(len(w.buf)))
	}
	if w.appendDur != nil {
		w.appendDur.Observe(tl.Now().Sub(appendFrom))
	}
	return nil
}

// Sync forces the log file durable (used only by sync-writes modes).
func (w *Writer) Sync(tl *vclock.Timeline) error { return w.f.Sync(tl) }

// Size reports the current log file size.
func (w *Writer) Size() int64 { return w.f.Size() }

// Reader reads logical records back from a log file image.
type Reader struct {
	data []byte
	off  int
	// Dropped reports bytes discarded due to corruption or a torn
	// tail after reading is complete.
	Dropped int
	// DroppedRecords counts logical records lost to corruption.
	DroppedRecords int

	// HaltAtCorruption switches the reader from skip-and-resync to
	// salvage-to-last-valid-record: the first damaged physical record
	// ends the scan instead of being skipped. Everything before the
	// damage is served normally; Halted reports that the stop was due
	// to damage rather than a clean end, and Offset points at the
	// damaged record so a second pass can classify the remainder.
	HaltAtCorruption bool

	// pendingCorrupt marks a corruption event not yet known to be
	// interior; if a complete logical record parses after it, the
	// damage provably preceded valid data and is promoted to interior.
	// Corruption that runs to end-of-log stays pending: it is
	// indistinguishable from a torn tail and is truncated silently.
	pendingCorrupt bool
	interior       bool
	halted         bool
	haltOff        int

	// physStart is the offset of the physical record readPhysical last
	// parsed (after any padding skip); recStart is the offset of the
	// first fragment of the logical record Next last returned. They can
	// differ from the pre-Next cursor when damage or padding was
	// skipped on the way to the record.
	physStart int
	recStart  int
}

// NewReader reads from an in-memory image of the log (the engine reads
// the whole file through the filesystem first so device costs are
// charged there).
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// Err reports, once Next has returned false, whether the log showed
// corruption in its interior. A torn or short final record — the
// expected shape of an unsynced log after a crash — is truncated
// silently and is not an error; only damage followed by further valid
// records is. The returned error wraps ErrInteriorCorruption.
func (r *Reader) Err() error {
	if r.interior {
		return fmt.Errorf("%w: %d bytes in %d records dropped",
			ErrInteriorCorruption, r.Dropped, r.DroppedRecords)
	}
	return nil
}

// RecordStart reports the byte offset where the logical record most
// recently returned by Next begins — the header of its FULL or FIRST
// fragment. Unlike the pre-Next cursor, it is exact even when the
// reader skipped damage or block padding before reaching the record.
// Meaningful only immediately after Next returned a record.
func (r *Reader) RecordStart() int { return r.recStart }

// Halted reports whether a HaltAtCorruption reader stopped at a
// damaged record rather than the end of the log. Note that a halted
// reader never promotes the damage to interior (it cannot see whether
// valid records follow), so Err stays nil; callers in salvage mode
// consult Halted, and callers that need the interior/tail distinction
// run a second, non-halting reader.
func (r *Reader) Halted() bool { return r.halted }

// Offset reports the reader's cursor: after Next has returned false it
// is the end of the log, or — for a halted reader — the offset of the
// damaged physical record that stopped the scan.
func (r *Reader) Offset() int {
	if r.halted {
		return r.haltOff
	}
	return r.off
}

// noteValid records that a complete logical record parsed; any
// corruption seen before it was therefore interior, not a tail.
func (r *Reader) noteValid() {
	if r.pendingCorrupt {
		r.pendingCorrupt = false
		r.interior = true
	}
}

// Next returns the next logical record, or an error: io-style usage —
// (nil, false) when the log is exhausted. Corrupt fragments are
// skipped and counted in Dropped/DroppedRecords.
func (r *Reader) Next() ([]byte, bool) {
	var rec []byte
	inFragment := false
	for {
		if r.halted {
			return nil, false
		}
		prev := r.off
		frag, typ, err := r.readPhysical()
		if err != nil {
			if errors.Is(err, errEOF) {
				if inFragment {
					// Torn tail mid-record.
					r.Dropped += len(rec)
					r.DroppedRecords++
				}
				return nil, false
			}
			if r.HaltAtCorruption {
				r.halt(prev, len(rec))
				return nil, false
			}
			// Corruption: drop the damaged physical record plus any
			// accumulated fragments, then resync at the next block.
			r.pendingCorrupt = true
			r.Dropped += len(rec)
			r.DroppedRecords++
			rec = rec[:0]
			inFragment = false
			r.skipToNextBlock()
			continue
		}
		switch typ {
		case full:
			if inFragment {
				r.Dropped += len(rec)
				r.DroppedRecords++
			}
			r.noteValid()
			r.recStart = r.physStart
			return frag, true
		case first:
			if inFragment {
				r.Dropped += len(rec)
				r.DroppedRecords++
			}
			rec = append(rec[:0], frag...)
			r.recStart = r.physStart
			inFragment = true
		case middle:
			if !inFragment {
				r.Dropped += len(frag)
				r.DroppedRecords++
				continue
			}
			rec = append(rec, frag...)
		case last:
			if !inFragment {
				r.Dropped += len(frag)
				r.DroppedRecords++
				continue
			}
			r.noteValid()
			return append(rec, frag...), true
		default:
			if r.HaltAtCorruption {
				r.halt(prev, len(rec))
				return nil, false
			}
			r.pendingCorrupt = true
			r.Dropped += len(frag) + len(rec)
			r.DroppedRecords++
			rec = rec[:0]
			inFragment = false
			r.skipToNextBlock()
		}
	}
}

// halt stops a HaltAtCorruption reader at the damaged record starting
// at off; pending bytes of a partially-assembled logical record plus
// the whole unread remainder count as dropped.
func (r *Reader) halt(off, pending int) {
	r.halted = true
	r.haltOff = off
	r.Dropped += pending + len(r.data) - off
	r.DroppedRecords++
	r.off = len(r.data)
}

// RecordInfo describes one entry of a log's record stream as seen by
// ScanRecords: either a logical record that assembled and passed its
// fragment CRCs (Valid), or a damaged region that the reader skipped.
type RecordInfo struct {
	// Off is the byte offset where the entry starts; Len is the
	// payload length for valid records and the number of damaged
	// bytes skipped for invalid ones.
	Off   int
	Len   int
	Valid bool
	// Payload aliases the scanned image for valid records; nil
	// otherwise.
	Payload []byte
}

// ScanRecords walks a log image and reports every logical record with
// its offset and CRC status, interleaved with entries for damaged
// regions. It never fails: damage is reported in-stream, and a torn
// tail shows up as a final invalid entry. The triple of ScanRecords,
// Err and Dropped gives tools the full corruption taxonomy of a log.
func ScanRecords(data []byte) []RecordInfo {
	r := NewReader(data)
	var out []RecordInfo
	lastDropped := 0
	for {
		start := r.off
		rec, ok := r.Next()
		if d := r.Dropped - lastDropped; d > 0 {
			out = append(out, RecordInfo{Off: start, Len: d})
			lastDropped = r.Dropped
		}
		if !ok {
			return out
		}
		out = append(out, RecordInfo{Off: r.RecordStart(), Len: len(rec), Valid: true, Payload: rec})
	}
}

var errEOF = errors.New("wal: end of log")

func (r *Reader) skipToNextBlock() {
	if r.off%BlockSize == 0 {
		// Already at a block start (the damaged record ended exactly
		// on the boundary): resynchronization point reached, nothing
		// more to skip.
		return
	}
	next := (r.off/BlockSize + 1) * BlockSize
	if next > len(r.data) {
		next = len(r.data)
	}
	r.Dropped += next - r.off
	r.off = next
}

// readPhysical parses one physical record at the cursor.
func (r *Reader) readPhysical() (payload []byte, typ byte, err error) {
	for {
		blockLeft := BlockSize - r.off%BlockSize
		if blockLeft < headerSize {
			// Padding zone.
			pad := blockLeft
			if r.off+pad > len(r.data) {
				return nil, 0, errEOF
			}
			r.off += pad
			continue
		}
		break
	}
	r.physStart = r.off
	if r.off+headerSize > len(r.data) {
		if r.off < len(r.data) {
			r.Dropped += len(r.data) - r.off
			r.off = len(r.data)
		}
		return nil, 0, errEOF
	}
	hdr := r.data[r.off : r.off+headerSize]
	wantCRC := binary.LittleEndian.Uint32(hdr[0:4])
	length := int(binary.LittleEndian.Uint16(hdr[4:6]))
	typ = hdr[6]
	if typ == 0 && length == 0 && wantCRC == 0 {
		// Zero padding (pre-allocated or padded tail): treat as end
		// of valid data in this block.
		return nil, 0, errEOF
	}
	if r.off+headerSize+length > len(r.data) {
		if r.off/BlockSize == (len(r.data)-1)/BlockSize {
			// Final block: a torn write — header present, payload
			// truncated by the crash.
			r.Dropped += len(r.data) - r.off
			r.off = len(r.data)
			return nil, 0, errEOF
		}
		// Not the final block: the length field itself is corrupt
		// (a true tail cannot be followed by more blocks). Resync at
		// the next block instead of abandoning the rest of the log.
		r.off += headerSize
		return nil, 0, fmt.Errorf("%w: record length overruns file", ErrCorrupt)
	}
	if r.off%BlockSize+headerSize+length > BlockSize {
		r.off += headerSize
		return nil, 0, fmt.Errorf("%w: fragment crosses block boundary", ErrCorrupt)
	}
	payload = r.data[r.off+headerSize : r.off+headerSize+length]
	crc := crc32.New(castagnoli)
	crc.Write([]byte{typ})
	crc.Write(payload)
	if crc.Sum32() != wantCRC {
		r.off += headerSize + length
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r.off += headerSize + length
	return payload, typ, nil
}
