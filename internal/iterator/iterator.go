// Package iterator defines the iterator contract shared by memtables,
// SSTables, and merged views, plus a k-way merging iterator used by
// reads and compactions.
package iterator

import "noblsm/internal/keys"

// Iterator walks a sorted sequence of internal-key/value entries.
// Implementations are single-goroutine.
type Iterator interface {
	// Valid reports whether the iterator is positioned at an entry.
	Valid() bool
	// First positions at the smallest entry.
	First()
	// Seek positions at the first entry with internal key >= target.
	Seek(target []byte)
	// Next advances; requires Valid.
	Next()
	// Key returns the current internal key (valid until the next
	// positioning call).
	Key() []byte
	// Value returns the current value (same lifetime as Key).
	Value() []byte
	// Err reports an error encountered while iterating.
	Err() error
}

// Empty is an iterator over nothing.
type Empty struct{ E error }

func (Empty) Valid() bool   { return false }
func (Empty) First()        {}
func (Empty) Seek([]byte)   {}
func (Empty) Next()         {}
func (Empty) Key() []byte   { return nil }
func (Empty) Value() []byte { return nil }
func (e Empty) Err() error  { return e.E }

// Merging merges k child iterators into one sorted stream. Ties (equal
// internal keys cannot happen across well-formed sources, but equal
// user keys with different sequences do) resolve by internal-key
// order; among truly equal keys the lower child index wins, so callers
// should order children newest-first.
type Merging struct {
	children []Iterator
	cur      int // index of current child, -1 if invalid
}

// NewMerging returns a merging iterator over children.
func NewMerging(children ...Iterator) *Merging {
	return &Merging{children: children, cur: -1}
}

func (m *Merging) findSmallest() {
	m.cur = -1
	for i, c := range m.children {
		if !c.Valid() {
			continue
		}
		if m.cur < 0 || keys.CompareInternal(c.Key(), m.children[m.cur].Key()) < 0 {
			m.cur = i
		}
	}
}

// Valid implements Iterator.
func (m *Merging) Valid() bool { return m.cur >= 0 }

// First implements Iterator.
func (m *Merging) First() {
	for _, c := range m.children {
		c.First()
	}
	m.findSmallest()
}

// Seek implements Iterator.
func (m *Merging) Seek(target []byte) {
	for _, c := range m.children {
		c.Seek(target)
	}
	m.findSmallest()
}

// Next implements Iterator.
func (m *Merging) Next() {
	if m.cur < 0 {
		return
	}
	m.children[m.cur].Next()
	m.findSmallest()
}

// Key implements Iterator.
func (m *Merging) Key() []byte { return m.children[m.cur].Key() }

// Value implements Iterator.
func (m *Merging) Value() []byte { return m.children[m.cur].Value() }

// Err implements Iterator.
func (m *Merging) Err() error {
	for _, c := range m.children {
		if err := c.Err(); err != nil {
			return err
		}
	}
	return nil
}
