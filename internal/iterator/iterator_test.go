package iterator

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"noblsm/internal/keys"
)

// sliceIter iterates a pre-sorted list of internal-key/value pairs.
type sliceIter struct {
	ikeys  [][]byte
	values [][]byte
	i      int
	err    error
}

func newSliceIter(pairs map[string]string, seq keys.SeqNum) *sliceIter {
	var ks []string
	for k := range pairs {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	it := &sliceIter{}
	for _, k := range ks {
		it.ikeys = append(it.ikeys, keys.MakeInternalKey(nil, []byte(k), seq, keys.KindValue))
		it.values = append(it.values, []byte(pairs[k]))
	}
	it.i = -1
	return it
}

func (s *sliceIter) Valid() bool { return s.i >= 0 && s.i < len(s.ikeys) }
func (s *sliceIter) First()      { s.i = 0 }
func (s *sliceIter) Next()       { s.i++ }
func (s *sliceIter) Key() []byte { return s.ikeys[s.i] }

func (s *sliceIter) Value() []byte { return s.values[s.i] }
func (s *sliceIter) Err() error    { return s.err }

func (s *sliceIter) Seek(target []byte) {
	s.i = sort.Search(len(s.ikeys), func(i int) bool {
		return keys.CompareInternal(s.ikeys[i], target) >= 0
	})
}

func TestMergingInterleavesSorted(t *testing.T) {
	a := newSliceIter(map[string]string{"a": "1", "c": "3", "e": "5"}, 10)
	b := newSliceIter(map[string]string{"b": "2", "d": "4"}, 10)
	m := NewMerging(a, b)
	var got []string
	for m.First(); m.Valid(); m.Next() {
		got = append(got, string(keys.UserKey(m.Key()))+"="+string(m.Value()))
	}
	want := []string{"a=1", "b=2", "c=3", "d=4", "e=5"}
	if len(got) != len(want) {
		t.Fatalf("merged %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged %v", got)
		}
	}
}

func TestMergingNewestVersionFirst(t *testing.T) {
	newer := newSliceIter(map[string]string{"k": "new"}, 20)
	older := newSliceIter(map[string]string{"k": "old"}, 10)
	// Child order must not matter: internal-key order puts the higher
	// sequence first.
	for _, m := range []*Merging{NewMerging(older, newer), NewMerging(newer, older)} {
		m.First()
		if !m.Valid() || string(m.Value()) != "new" {
			t.Fatalf("first version = %q", m.Value())
		}
		m.Next()
		if !m.Valid() || string(m.Value()) != "old" {
			t.Fatalf("second version = %q", m.Value())
		}
	}
}

func TestMergingSeek(t *testing.T) {
	a := newSliceIter(map[string]string{"b": "1", "f": "2"}, 10)
	b := newSliceIter(map[string]string{"d": "3"}, 10)
	m := NewMerging(a, b)
	m.Seek(keys.MakeInternalKey(nil, []byte("c"), keys.MaxSeqNum, keys.KindSeek))
	if !m.Valid() || string(keys.UserKey(m.Key())) != "d" {
		t.Fatalf("seek landed on %s", keys.String(m.Key()))
	}
	m.Seek(keys.MakeInternalKey(nil, []byte("z"), keys.MaxSeqNum, keys.KindSeek))
	if m.Valid() {
		t.Fatal("seek past end valid")
	}
}

func TestMergingEmptyChildren(t *testing.T) {
	m := NewMerging(Empty{}, Empty{})
	m.First()
	if m.Valid() {
		t.Fatal("empty merge valid")
	}
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	m.Next() // must not panic
}

func TestMergingPropagatesErrors(t *testing.T) {
	bad := Empty{E: errors.New("disk on fire")}
	m := NewMerging(newSliceIter(map[string]string{"a": "1"}, 1), bad)
	m.First()
	if m.Err() == nil {
		t.Fatal("child error swallowed")
	}
}

func TestEmptyIterator(t *testing.T) {
	var e Empty
	e.First()
	e.Seek([]byte("x"))
	e.Next()
	if e.Valid() || e.Key() != nil || e.Value() != nil || e.Err() != nil {
		t.Fatal("Empty is not empty")
	}
}

func TestMergingMatchesSortedUnionProperty(t *testing.T) {
	// Property: merging k disjoint sorted sources yields the sorted
	// union, regardless of how keys are partitioned.
	f := func(keysRaw []uint16, split uint8) bool {
		parts := make([]map[string]string, int(split%4)+1)
		for i := range parts {
			parts[i] = map[string]string{}
		}
		all := map[string]bool{}
		for i, kr := range keysRaw {
			k := string(rune('a'+kr%26)) + string(rune('a'+(kr>>5)%26))
			parts[i%len(parts)][k] = "v"
			all[k] = true
		}
		// Deduplicate across parts (keep in lowest part only).
		seen := map[string]bool{}
		for _, p := range parts {
			for k := range p {
				if seen[k] {
					delete(p, k)
				}
				seen[k] = true
			}
		}
		var children []Iterator
		for _, p := range parts {
			children = append(children, newSliceIter(p, 5))
		}
		m := NewMerging(children...)
		var got []string
		for m.First(); m.Valid(); m.Next() {
			got = append(got, string(keys.UserKey(m.Key())))
		}
		var want []string
		for k := range all {
			want = append(want, k)
		}
		sort.Strings(want)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
