package bloom

import (
	"encoding/binary"
	"fmt"
	"testing"
)

func key(i int) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(i))
	return b
}

func TestNoFalseNegatives(t *testing.T) {
	for _, n := range []int{1, 10, 100, 1000, 10000} {
		f := New(10)
		var ks [][]byte
		for i := 0; i < n; i++ {
			ks = append(ks, key(i))
		}
		filter := f.Build(nil, ks)
		for i := 0; i < n; i++ {
			if !f.MayContain(filter, key(i)) {
				t.Fatalf("n=%d: false negative for key %d", n, i)
			}
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	f := New(10)
	var ks [][]byte
	for i := 0; i < 10000; i++ {
		ks = append(ks, key(i))
	}
	filter := f.Build(nil, ks)
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContain(filter, key(1_000_000+i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// 10 bits/key targets ~1%; allow generous headroom.
	if rate > 0.03 {
		t.Fatalf("false positive rate %.4f too high", rate)
	}
}

func TestEmptyAndTinyFilters(t *testing.T) {
	f := New(10)
	filter := f.Build(nil, nil)
	if f.MayContain(filter, []byte("x")) {
		t.Fatal("empty filter matched")
	}
	if f.MayContain(nil, []byte("x")) {
		t.Fatal("nil filter matched")
	}
	one := f.Build(nil, [][]byte{[]byte("only")})
	if !f.MayContain(one, []byte("only")) {
		t.Fatal("single-key filter missed its key")
	}
}

func TestVaryingBitsPerKey(t *testing.T) {
	var ks [][]byte
	for i := 0; i < 5000; i++ {
		ks = append(ks, key(i))
	}
	prevRate := 1.0
	for _, bits := range []int{2, 6, 10, 16} {
		f := New(bits)
		filter := f.Build(nil, ks)
		fp := 0
		for i := 0; i < 5000; i++ {
			if f.MayContain(filter, key(1_000_000+i)) {
				fp++
			}
		}
		rate := float64(fp) / 5000
		if rate > prevRate+0.02 {
			t.Fatalf("%d bits/key: fp rate %.4f did not improve on %.4f", bits, rate, prevRate)
		}
		prevRate = rate
	}
}

func TestClampAndDefaults(t *testing.T) {
	if f := New(0); f.k < 1 {
		t.Fatal("k below 1")
	}
	if f := New(1000); f.k > 30 {
		t.Fatal("k above 30")
	}
	if New(10).Name() == "" {
		t.Fatal("empty policy name")
	}
}

func TestReservedKEncodingsMatch(t *testing.T) {
	// A filter whose k byte exceeds 30 must conservatively match.
	filter := make([]byte, 9)
	filter[8] = 31
	if !New(10).MayContain(filter, []byte("anything")) {
		t.Fatal("reserved encoding rejected a key")
	}
}

func TestBuildAppendsToDst(t *testing.T) {
	f := New(10)
	prefix := []byte("prefix")
	out := f.Build(prefix, [][]byte{[]byte("k")})
	if string(out[:6]) != "prefix" {
		t.Fatal("Build did not append to dst")
	}
	if !f.MayContain(out[6:], []byte("k")) {
		t.Fatal("appended filter broken")
	}
}

func TestBuildReusedDstMatchesFresh(t *testing.T) {
	// A flush or subcompaction shard builds many tables through one
	// scratch buffer: each Build reuses the previous table's dst via
	// [:0], so the capacity it appends into is full of the previous
	// filter's set bits. The output must be identical to a fresh
	// build — Build must zero (not inherit) every byte it reuses.
	f := New(10)
	tableKeys := make([][][]byte, 4)
	for ti := range tableKeys {
		for i := 0; i < 500; i++ {
			tableKeys[ti] = append(tableKeys[ti], key(ti*10_000+i))
		}
	}
	var reused []byte
	for ti, ks := range tableKeys {
		reused = f.Build(reused[:0], ks)
		fresh := f.Build(nil, ks)
		if string(reused) != string(fresh) {
			t.Fatalf("table %d: reused-dst filter differs from fresh build", ti)
		}
	}
}

func BenchmarkBuild10k(b *testing.B) {
	f := New(10)
	var ks [][]byte
	for i := 0; i < 10000; i++ {
		ks = append(ks, key(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Build(nil, ks)
	}
}

func BenchmarkMayContain(b *testing.B) {
	f := New(10)
	var ks [][]byte
	for i := 0; i < 10000; i++ {
		ks = append(ks, key(i))
	}
	filter := f.Build(nil, ks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(filter, key(i))
	}
}

func ExampleFilter() {
	f := New(10)
	filter := f.Build(nil, [][]byte{[]byte("apple"), []byte("banana")})
	fmt.Println(f.MayContain(filter, []byte("apple")))
	fmt.Println(f.MayContain(filter, []byte("durian")))
	// Output:
	// true
	// false
}
