// Package bloom implements LevelDB's bloom-filter policy: k probe
// positions derived from one 32-bit hash by double hashing, with k
// chosen as bitsPerKey * ln 2 clamped to [1, 30].
package bloom

// Filter builds and queries bloom filters over user keys.
type Filter struct {
	bitsPerKey int
	k          int
}

// New returns a policy with the given bits per key (LevelDB's default
// deployment uses 10).
func New(bitsPerKey int) *Filter {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	k := int(float64(bitsPerKey) * 0.69) // bitsPerKey * ln(2)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &Filter{bitsPerKey: bitsPerKey, k: k}
}

// Name identifies the policy in the SSTable meta-index.
func (f *Filter) Name() string { return "leveldb.BuiltinBloomFilter2" }

// hash is LevelDB's bloom hash (a Murmur-like mix with seed 0xbc9f1d34).
func hash(data []byte) uint32 {
	const (
		seed = 0xbc9f1d34
		m    = 0xc6a4a793
	)
	h := uint32(seed) ^ uint32(len(data))*m
	i := 0
	for ; i+4 <= len(data); i += 4 {
		w := uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16 | uint32(data[i+3])<<24
		h += w
		h *= m
		h ^= h >> 16
	}
	switch len(data) - i {
	case 3:
		h += uint32(data[i+2]) << 16
		fallthrough
	case 2:
		h += uint32(data[i+1]) << 8
		fallthrough
	case 1:
		h += uint32(data[i])
		h *= m
		h ^= h >> 24
	}
	return h
}

// Build appends a filter covering the given keys to dst and returns
// the extended slice. The last byte records k.
func (f *Filter) Build(dst []byte, userKeys [][]byte) []byte {
	bits := len(userKeys) * f.bitsPerKey
	if bits < 64 {
		bits = 64
	}
	nBytes := (bits + 7) / 8
	bits = nBytes * 8
	start := len(dst)
	dst = append(dst, make([]byte, nBytes+1)...)
	array := dst[start : start+nBytes]
	for _, key := range userKeys {
		h := hash(key)
		delta := h>>17 | h<<15
		for j := 0; j < f.k; j++ {
			pos := h % uint32(bits)
			array[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	dst[start+nBytes] = byte(f.k)
	return dst
}

// MayContain reports whether key may be in the set encoded by filter.
// False positives are possible; false negatives are not.
func (f *Filter) MayContain(filter, key []byte) bool {
	if len(filter) < 2 {
		return false
	}
	nBytes := len(filter) - 1
	bits := uint32(nBytes * 8)
	k := filter[nBytes]
	if k > 30 {
		// Reserved for future encodings: err on returning true.
		return true
	}
	h := hash(key)
	delta := h>>17 | h<<15
	for j := byte(0); j < k; j++ {
		pos := h % bits
		if filter[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}
