package replica_test

import (
	"errors"
	"fmt"
	"testing"

	"noblsm/internal/engine"
	"noblsm/internal/ext4"
	"noblsm/internal/replica"
	"noblsm/internal/server"
	"noblsm/internal/server/client"
	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
)

func smallOpts(mode engine.SyncMode) engine.Options {
	o := engine.DefaultOptions()
	o.SyncMode = mode
	o.WriteBufferSize = 32 << 10
	o.TableFileSize = 16 << 10
	o.Picker.BaseLevelBytes = 64 << 10
	o.Picker.LevelMultiplier = 4
	o.PollInterval = 50 * vclock.Millisecond
	return o
}

func smallFS() *ext4.FS {
	cfg := ext4.DefaultConfig()
	cfg.CommitInterval = 50 * vclock.Millisecond
	dev := ssd.PM883()
	dev.ReadLatency = 500 * vclock.Nanosecond
	dev.WriteLatency = 400 * vclock.Nanosecond
	dev.FlushLatency = 6 * vclock.Microsecond
	return ext4.New(cfg, ssd.New(dev))
}

func mustPut(t *testing.T, db *engine.DB, tl *vclock.Timeline, k, v string) {
	t.Helper()
	if err := db.Put(tl, []byte(k), []byte(v)); err != nil {
		t.Fatalf("put %s: %v", k, err)
	}
}

func workload(t *testing.T, db *engine.DB, tl *vclock.Timeline, n, round int) {
	t.Helper()
	for i := 0; i < n; i++ {
		mustPut(t, db, tl, fmt.Sprintf("key%013d", i), fmt.Sprintf("val-r%d-%d", round, i))
		if i%64 == 0 {
			tl.Advance(vclock.Millisecond)
		}
	}
}

func dump(t *testing.T, db *engine.DB, tl *vclock.Timeline) map[string]string {
	t.Helper()
	it, err := db.NewIterator(tl)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	out := make(map[string]string)
	for it.First(); it.Valid(); it.Next() {
		out[string(it.Key())] = string(it.Value())
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func diffDumps(t *testing.T, want, got map[string]string, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: %d keys on primary, %d on follower", label, len(want), len(got))
	}
	for k, v := range want {
		if gv, ok := got[k]; !ok {
			t.Errorf("%s: follower missing %q", label, k)
			return
		} else if gv != v {
			t.Errorf("%s: key %q: primary %q follower %q", label, k, v, gv)
			return
		}
	}
}

// TestFollowerLocal bootstraps a follower from a local primary's
// checkpoint and tails its WAL through two rounds of writes, checking
// byte-equivalence and that the follower carries the primary's own
// sequence numbers.
func TestFollowerLocal(t *testing.T) {
	for _, mode := range []engine.SyncMode{engine.SyncAll, engine.SyncNobLSM} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			pfs := smallFS()
			ptl := vclock.NewTimeline(0)
			opts := smallOpts(mode)
			pdb, err := engine.Open(ptl, pfs, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer pdb.Close(ptl)
			workload(t, pdb, ptl, 800, 0)

			ftl := vclock.NewTimeline(0)
			src := &replica.LocalSource{DB: pdb, FS: pfs, TL: vclock.NewTimeline(ptl.Now())}
			f := replica.New(smallFS(), opts, src)
			defer f.Close(ftl)
			if err := f.CatchUp(ftl); err != nil {
				t.Fatalf("first catch-up: %v", err)
			}
			if got, want := f.AppliedSeq(), pdb.VisibleSeq(); got != want {
				t.Fatalf("applied seq %d, primary visible %d", got, want)
			}
			diffDumps(t, dump(t, pdb, ptl), dump(t, f.DB(), ftl), "after bootstrap")

			workload(t, pdb, ptl, 300, 1)
			if err := f.CatchUp(ftl); err != nil {
				t.Fatalf("second catch-up: %v", err)
			}
			if got, want := f.AppliedSeq(), pdb.VisibleSeq(); got != want {
				t.Fatalf("applied seq %d, primary visible %d after tail", got, want)
			}
			diffDumps(t, dump(t, pdb, ptl), dump(t, f.DB(), ftl), "after tail")
			st := f.Stats()
			if st.Bootstraps != 1 {
				t.Errorf("bootstraps = %d, want 1", st.Bootstraps)
			}
			if st.Applied == 0 {
				t.Errorf("no records applied by tailing")
			}
			if st.Lag != 0 {
				t.Errorf("lag = %d after catch-up, want 0", st.Lag)
			}
		})
	}
}

// TestFollowerRestartOnLostCursor parks a follower, writes through
// enough primary WAL rotations that its cursor log is garbage
// collected, and checks that catch-up degrades to a clean
// re-bootstrap rather than an error or silent divergence.
func TestFollowerRestartOnLostCursor(t *testing.T) {
	pfs := smallFS()
	ptl := vclock.NewTimeline(0)
	opts := smallOpts(engine.SyncAll)
	pdb, err := engine.Open(ptl, pfs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pdb.Close(ptl)
	workload(t, pdb, ptl, 200, 0)

	ftl := vclock.NewTimeline(0)
	src := &replica.LocalSource{DB: pdb, FS: pfs, TL: vclock.NewTimeline(ptl.Now())}
	f := replica.New(smallFS(), opts, src)
	defer f.Close(ftl)
	if err := f.CatchUp(ftl); err != nil {
		t.Fatal(err)
	}
	bootLog, _ := f.Cursor()

	// Rotate the primary's WAL past the follower's cursor until the
	// cursor log is deleted.
	for round := 1; round <= 40; round++ {
		workload(t, pdb, ptl, 200, round)
		ptl.Advance(100 * vclock.Millisecond)
		if !pfs.Exists(ptl, engine.LogName(bootLog)) {
			break
		}
	}
	if pfs.Exists(ptl, engine.LogName(bootLog)) {
		t.Fatalf("cursor log %06d never garbage collected; test geometry too small", bootLog)
	}

	if err := f.CatchUp(ftl); err != nil {
		t.Fatalf("catch-up after cursor loss: %v", err)
	}
	st := f.Stats()
	if st.Restarts == 0 {
		t.Errorf("expected a restart after cursor loss, got %+v", st)
	}
	if got, want := f.AppliedSeq(), pdb.VisibleSeq(); got != want {
		t.Fatalf("applied seq %d, primary visible %d", got, want)
	}
	diffDumps(t, dump(t, pdb, ptl), dump(t, f.DB(), ftl), "after restart")
}

// TestFollowerNet runs the whole stack over TCP: a one-shard server, a
// client-backed NetSource, bootstrap + tail, then an administrative
// shard close to exercise the retryable-degradation path, a reopen,
// and a final catch-up across the primary's recovery boundary.
func TestFollowerNet(t *testing.T) {
	eo := smallOpts(engine.SyncAll)
	srv, err := server.New(server.Options{Shards: 1, Engine: eo})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(addr.String(), client.Options{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 500; i++ {
		if err := c.Put([]byte(fmt.Sprintf("key%013d", i)), []byte(fmt.Sprintf("v0-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	ftl := vclock.NewTimeline(0)
	f := replica.New(smallFS(), eo, &replica.NetSource{C: c, Shard: 0})
	defer f.Close(ftl)
	if err := f.CatchUp(ftl); err != nil {
		t.Fatalf("catch-up over TCP: %v", err)
	}

	pairs, err := c.Scan(0, nil, 10000)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string, len(pairs))
	for _, p := range pairs {
		want[string(p.Key)] = string(p.Value)
	}
	diffDumps(t, want, dump(t, f.DB(), ftl), "net bootstrap")

	// Degrade: close the shard, observe a retryable failure, reopen,
	// write more, and catch back up through the recovery boundary.
	if err := srv.CloseShard(0); err != nil {
		t.Fatal(err)
	}
	_, _, perr := f.Poll(ftl)
	if perr == nil {
		t.Fatal("poll against a closed shard succeeded")
	}
	if !errors.Is(perr, replica.ErrPrimaryUnavailable) {
		t.Fatalf("poll error %v, want ErrPrimaryUnavailable", perr)
	}
	if err := srv.ReopenShard(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := c.Put([]byte(fmt.Sprintf("key%013d", i)), []byte(fmt.Sprintf("v1-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.CatchUp(ftl); err != nil {
		t.Fatalf("catch-up after reopen: %v", err)
	}
	pairs, err = c.Scan(0, nil, 10000)
	if err != nil {
		t.Fatal(err)
	}
	want = make(map[string]string, len(pairs))
	for _, p := range pairs {
		want[string(p.Key)] = string(p.Value)
	}
	diffDumps(t, want, dump(t, f.DB(), ftl), "net after reopen")
}
