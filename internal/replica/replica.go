// Package replica implements a WAL-streaming follower for noblsm
// (PR 9). A follower bootstraps from a primary checkpoint — fetching
// the pinned file set into its own filesystem, validating it with the
// engine's Repair machinery (the restore≡repair invariant: a restored
// checkpoint passes the same scrub a crashed store does), and opening
// a full engine over it — then tails the primary's WAL, applying each
// record verbatim so the replica carries the primary's own sequence
// numbers. Reads served from the follower are bounded-stale: after a
// CatchUp they are exactly as fresh as the last WAL_TAIL round's
// LastSeq watermark.
//
// The primary is reached through the Source interface. LocalSource
// drives an in-process engine directly (the crash explorer's probe and
// unit tests); NetSource speaks the PR 8 wire protocol through the
// server client. Transient failures — injected filesystem faults on
// either side, an administratively closed shard mid-reopen — degrade
// to retry with the same exponential backoff schedule the engine's
// background-error machinery uses, in virtual time; a Restart signal
// (the follower's WAL cursor was garbage-collected on the primary)
// degrades to a full re-bootstrap from a fresh checkpoint.
package replica

import (
	"errors"
	"fmt"

	"noblsm/internal/engine"
	"noblsm/internal/keys"
	"noblsm/internal/vclock"
	"noblsm/internal/vfs"
)

// Manifest describes a pinned checkpoint: the files to fetch and the
// WAL cursor to tail from once they are restored.
type Manifest struct {
	ID      uint64
	WalLog  uint64
	WalOff  int64
	LastSeq uint64
	Files   []FileInfo
}

// FileInfo is one checkpointed file.
type FileInfo struct {
	Name string
	Size int64
}

// TailChunk is one WAL-tail round from the primary.
type TailChunk struct {
	Restart bool
	Log     uint64
	NextOff uint64
	LastSeq uint64
	Records [][]byte
}

// Source is the follower's view of a primary: checkpoint session
// management plus WAL tailing. Implementations must pair every
// successful Begin with a Release even on abandoned bootstraps.
type Source interface {
	// Begin pins a checkpoint and returns its manifest.
	Begin() (*Manifest, error)
	// Fetch reads up to max bytes of one checkpointed file at off.
	// Empty result means EOF at the file's checkpointed size.
	Fetch(ckptID uint64, name string, off uint64, max uint32) ([]byte, error)
	// Release drops the checkpoint pin.
	Release(ckptID uint64) error
	// Tail returns complete WAL records at/after the (log, off) cursor.
	Tail(log, off uint64, max uint32) (*TailChunk, error)
}

// Retry tuning: the engine's background-error schedule (bgerror.go),
// duplicated here because the follower retries against a *remote*
// failure domain, not its own engine.
const (
	retryBase  = 1 * vclock.Millisecond
	retryCap   = 256 * vclock.Millisecond
	maxRetries = 8
	fetchChunk = 256 << 10
)

// backoff returns the delay before retry attempt (0-based).
func backoff(attempt int) vclock.Duration {
	d := retryBase
	for i := 0; i < attempt && d < retryCap; i++ {
		d *= 2
	}
	if d > retryCap {
		d = retryCap
	}
	return d
}

// Stats counts the follower's lifetime events.
type Stats struct {
	Bootstraps int   // successful checkpoint restores
	Restarts   int   // cursor-lost signals that forced a re-bootstrap
	Applied    int   // WAL records applied
	Retries    int   // transient-failure retry rounds
	Lag        int64 // primary LastSeq minus applied seq, at last Tail
}

// Follower is a read replica of one primary (or one shard). Not safe
// for concurrent use — it is a single-threaded state machine driven by
// Bootstrap/Poll/CatchUp; serve reads through DB() between steps.
type Follower struct {
	fs   vfs.FS
	opts engine.Options
	src  Source

	db      *engine.DB
	log     uint64
	off     uint64
	primSeq uint64 // last LastSeq watermark seen from the primary
	stats   Stats
}

// New builds a follower over its own (empty or previously restored)
// filesystem. opts configure the follower's engine; they should match
// the primary's variant so apply costs are charged alike.
func New(fs vfs.FS, opts engine.Options, src Source) *Follower {
	return &Follower{fs: fs, opts: opts, src: src}
}

// DB exposes the follower's engine for reads. Nil before the first
// successful Bootstrap.
func (f *Follower) DB() *engine.DB { return f.db }

// Stats reports lifetime counters.
func (f *Follower) Stats() Stats { return f.stats }

// AppliedSeq is the follower's visible sequence number — the
// primary's own numbering, since records are applied verbatim.
func (f *Follower) AppliedSeq() keys.SeqNum {
	if f.db == nil {
		return 0
	}
	return f.db.VisibleSeq()
}

// Cursor reports the WAL position the next Poll will tail from.
func (f *Follower) Cursor() (log, off uint64) { return f.log, f.off }

// retryable reports whether err is worth retrying after a backoff:
// injected transient filesystem faults (either side) and a shard
// that is administratively closed mid-reopen. Errors carrying a
// "shard closed" status from the wire arrive as typed client errors;
// matching by message would be fragile, so NetSource maps them to
// ErrPrimaryUnavailable.
func retryable(err error) bool {
	return vfs.IsTransient(err) || errors.Is(err, ErrPrimaryUnavailable)
}

// ErrPrimaryUnavailable marks a primary that cannot serve right now
// but is expected back: a closed shard, a faulted connection. Sources
// wrap such failures so the follower retries instead of giving up.
var ErrPrimaryUnavailable = errors.New("replica: primary unavailable")

// Bootstrap (re)builds the follower from a fresh checkpoint: wipe the
// local filesystem, fetch the pinned file set, release the pin,
// validate via Repair, and open the engine. On any error the follower
// keeps no partial state — the next Bootstrap starts clean.
func (f *Follower) Bootstrap(tl *vclock.Timeline) error {
	if f.db != nil {
		if err := f.db.Close(tl); err != nil && !errors.Is(err, engine.ErrClosed) {
			return fmt.Errorf("replica: closing stale engine: %w", err)
		}
		f.db = nil
	}
	// Wipe: the local store is entirely derived state; anything present
	// is a stale or partial restore.
	for _, name := range f.fs.List(tl) {
		if err := f.fs.Remove(tl, name); err != nil {
			return fmt.Errorf("replica: wiping %s: %w", name, err)
		}
	}
	m, err := f.src.Begin()
	if err != nil {
		return err
	}
	// The pin must not outlive the bootstrap whether or not it
	// succeeds; release failures are tolerable (the primary leaks a
	// ref an operator can see and drop) but fetch failures are not.
	fetchErr := f.fetchAll(tl, m)
	if rerr := f.src.Release(m.ID); rerr != nil && fetchErr == nil && !retryable(rerr) {
		fetchErr = rerr
	}
	if fetchErr != nil {
		return fetchErr
	}
	rep, err := engine.Repair(tl, f.fs, f.opts)
	if err != nil {
		return fmt.Errorf("replica: validating restore: %w", err)
	}
	if len(rep.Quarantined) > 0 {
		return fmt.Errorf("replica: restore quarantined %d tables", len(rep.Quarantined))
	}
	db, err := engine.Open(tl, f.fs, f.opts)
	if err != nil {
		return fmt.Errorf("replica: opening restored store: %w", err)
	}
	f.db = db
	f.log, f.off = m.WalLog, uint64(m.WalOff)
	if m.LastSeq > f.primSeq {
		f.primSeq = m.LastSeq
	}
	f.stats.Bootstraps++
	return nil
}

// fetchAll streams every manifest file into the local filesystem.
func (f *Follower) fetchAll(tl *vclock.Timeline, m *Manifest) error {
	for _, fi := range m.Files {
		w, err := f.fs.Create(tl, fi.Name)
		if err != nil {
			return fmt.Errorf("replica: creating %s: %w", fi.Name, err)
		}
		var off int64
		for off < fi.Size {
			chunk, err := f.src.Fetch(m.ID, fi.Name, uint64(off), fetchChunk)
			if err != nil {
				w.Close(tl)
				return fmt.Errorf("replica: fetching %s@%d: %w", fi.Name, off, err)
			}
			if len(chunk) == 0 {
				w.Close(tl)
				return fmt.Errorf("replica: fetching %s@%d: short file (want %d bytes)", fi.Name, off, fi.Size)
			}
			if err := w.Append(tl, chunk); err != nil {
				w.Close(tl)
				return fmt.Errorf("replica: writing %s: %w", fi.Name, err)
			}
			off += int64(len(chunk))
		}
		if err := w.Close(tl); err != nil {
			return fmt.Errorf("replica: closing %s: %w", fi.Name, err)
		}
	}
	return nil
}

// Poll runs one tail round: fetch records at the cursor, apply them,
// advance. atTail reports that the primary had nothing new. A Restart
// signal triggers a full re-bootstrap within the call, and a follower
// with no engine yet (never bootstrapped, or its last re-bootstrap
// failed mid-way) bootstraps first — so Poll/CatchUp are always safe
// to drive, whatever state the previous round left behind.
func (f *Follower) Poll(tl *vclock.Timeline) (applied int, atTail bool, err error) {
	if f.db == nil {
		if err := f.Bootstrap(tl); err != nil {
			return 0, false, err
		}
	}
	chunk, err := f.src.Tail(f.log, f.off, 0)
	if err != nil {
		return 0, false, err
	}
	if chunk.LastSeq > f.primSeq {
		f.primSeq = chunk.LastSeq
	}
	if chunk.Restart {
		f.stats.Restarts++
		if err := f.Bootstrap(tl); err != nil {
			return 0, false, err
		}
		return 0, false, nil
	}
	for _, rec := range chunk.Records {
		if err := f.db.ApplyReplicated(tl, rec); err != nil {
			return applied, false, fmt.Errorf("replica: applying record: %w", err)
		}
		applied++
	}
	f.log, f.off = chunk.Log, chunk.NextOff
	f.stats.Applied += applied
	f.stats.Lag = int64(f.primSeq) - int64(f.AppliedSeq())
	if f.stats.Lag < 0 {
		f.stats.Lag = 0
	}
	return applied, len(chunk.Records) == 0, nil
}

// CatchUp polls until the follower reaches the primary's live tail,
// retrying transient failures with exponential backoff in virtual
// time. It returns the first permanent error, or a retries-exhausted
// error wrapping the last transient one.
func (f *Follower) CatchUp(tl *vclock.Timeline) error {
	attempts := 0
	for {
		_, atTail, err := f.Poll(tl)
		if err != nil {
			if !retryable(err) {
				return err
			}
			if attempts >= maxRetries {
				return fmt.Errorf("replica: catch-up retries exhausted: %w", err)
			}
			tl.Advance(backoff(attempts))
			attempts++
			f.stats.Retries++
			continue
		}
		attempts = 0
		if atTail {
			return nil
		}
	}
}

// Close shuts the follower's engine down.
func (f *Follower) Close(tl *vclock.Timeline) error {
	if f.db == nil {
		return nil
	}
	err := f.db.Close(tl)
	f.db = nil
	return err
}
