// source.go provides the two Source implementations: LocalSource
// drives an in-process primary engine directly (unit tests and the
// crash explorer's checkpoint/follower probe, where no network
// exists), and NetSource speaks the wire protocol to one shard of a
// noblsm-server through the pooled client.
package replica

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"noblsm/internal/engine"
	"noblsm/internal/server/client"
	"noblsm/internal/vclock"
	"noblsm/internal/vfs"
)

// localDirSeq numbers LocalSource export directories per process so
// concurrent followers over one primary never collide.
var localDirSeq atomic.Uint64

// LocalSource serves checkpoints and WAL tails straight from a
// primary engine in the same process. TL is the source's own timeline
// for primary-side filesystem work (timelines are single-goroutine;
// don't share it with the primary's writers).
type LocalSource struct {
	DB *engine.DB
	FS vfs.FS
	TL *vclock.Timeline
}

// Begin pins a checkpoint under a fresh "feedckpt-<n>" prefix.
func (s *LocalSource) Begin() (*Manifest, error) {
	dir := fmt.Sprintf("feedckpt-%d", localDirSeq.Add(1))
	info, err := s.DB.Checkpoint(s.TL, dir)
	if err != nil {
		return nil, wrapLocal(err)
	}
	m := &Manifest{
		ID:      info.ID,
		WalLog:  info.WALNumber,
		WalOff:  info.WALOff,
		LastSeq: uint64(info.LastSeq),
		Files:   make([]FileInfo, 0, len(info.Files)),
	}
	for _, f := range info.Files {
		m.Files = append(m.Files, FileInfo{Name: f.Name, Size: f.Size})
	}
	return m, nil
}

// Fetch reads one byte range of one checkpointed file, bounded by the
// file's checkpointed size.
func (s *LocalSource) Fetch(ckptID uint64, name string, off uint64, max uint32) ([]byte, error) {
	var info *engine.CheckpointInfo
	for _, ci := range s.DB.Checkpoints() {
		if ci.ID == ckptID {
			info = &ci
			break
		}
	}
	if info == nil {
		return nil, fmt.Errorf("replica: unknown checkpoint %d", ckptID)
	}
	var size int64 = -1
	for _, f := range info.Files {
		if f.Name == name {
			size = f.Size
			break
		}
	}
	if size < 0 {
		return nil, fmt.Errorf("replica: checkpoint %d has no file %q", ckptID, name)
	}
	if int64(off) >= size {
		return nil, nil // EOF
	}
	n := size - int64(off)
	if m := int64(max); m > 0 && n > m {
		n = m
	}
	f, err := s.FS.Open(s.TL, info.Dir+"/"+name)
	if err != nil {
		return nil, wrapLocal(err)
	}
	defer f.Close(s.TL)
	buf := make([]byte, n)
	got, err := f.ReadAt(s.TL, buf, int64(off))
	if err != nil && err != io.EOF {
		return nil, wrapLocal(err)
	}
	return buf[:got], nil
}

// Release drops the checkpoint pin.
func (s *LocalSource) Release(ckptID uint64) error {
	return wrapLocal(s.DB.ReleaseCheckpoint(s.TL, ckptID))
}

// Tail serves one WAL-tail round from the primary.
func (s *LocalSource) Tail(log, off uint64, max uint32) (*TailChunk, error) {
	res, err := s.DB.TailWAL(s.TL, log, int64(off), int(max))
	if err != nil {
		return nil, wrapLocal(err)
	}
	// Copy the records out: TailWAL payloads alias the scanned log
	// image, which is fine for an immediate apply but the Source
	// contract hands ownership to the follower.
	recs := make([][]byte, len(res.Records))
	for i, r := range res.Records {
		recs[i] = append([]byte(nil), r...)
	}
	return &TailChunk{
		Restart: res.Restart,
		Log:     res.Log,
		NextOff: uint64(res.NextOff),
		LastSeq: uint64(res.LastSeq),
		Records: recs,
	}, nil
}

// wrapLocal maps primary-side conditions a follower should wait out —
// a closed/read-only primary mid-recovery — to ErrPrimaryUnavailable,
// keeping transient fault markers intact for vfs.IsTransient.
func wrapLocal(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, engine.ErrClosed) || errors.Is(err, engine.ErrReadOnly) {
		return fmt.Errorf("%w: %v", ErrPrimaryUnavailable, err)
	}
	return err
}

// NetSource serves a follower from one shard of a noblsm-server.
type NetSource struct {
	C     *client.Client
	Shard int
}

// Begin pins a checkpoint on the shard.
func (s *NetSource) Begin() (*Manifest, error) {
	cm, err := s.C.CkptBegin(s.Shard)
	if err != nil {
		return nil, wrapNet(err)
	}
	m := &Manifest{
		ID:      cm.ID,
		WalLog:  cm.WalLog,
		WalOff:  cm.WalOff,
		LastSeq: cm.LastSeq,
		Files:   make([]FileInfo, 0, len(cm.Files)),
	}
	for _, f := range cm.Files {
		m.Files = append(m.Files, FileInfo{Name: f.Name, Size: f.Size})
	}
	return m, nil
}

// Fetch reads one byte range of one checkpointed file.
func (s *NetSource) Fetch(ckptID uint64, name string, off uint64, max uint32) ([]byte, error) {
	b, err := s.C.CkptFetch(s.Shard, ckptID, name, off, max)
	return b, wrapNet(err)
}

// Release drops the checkpoint pin.
func (s *NetSource) Release(ckptID uint64) error {
	return wrapNet(s.C.CkptRelease(s.Shard, ckptID))
}

// Tail serves one WAL-tail round.
func (s *NetSource) Tail(log, off uint64, max uint32) (*TailChunk, error) {
	wt, err := s.C.WalTail(s.Shard, log, off, max)
	if err != nil {
		return nil, wrapNet(err)
	}
	return &TailChunk{
		Restart: wt.Restart,
		Log:     wt.Log,
		NextOff: wt.NextOff,
		LastSeq: wt.LastSeq,
		Records: wt.Records,
	}, nil
}

// wrapNet maps a closed shard to ErrPrimaryUnavailable so the
// follower's retry loop waits for the reopen instead of giving up.
func wrapNet(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, client.ErrShardClosed) {
		return fmt.Errorf("%w: %v", ErrPrimaryUnavailable, err)
	}
	return err
}
