package policy

import (
	"testing"

	"noblsm/internal/engine"
)

func TestAllVariantsResolve(t *testing.T) {
	base := engine.DefaultOptions()
	for _, v := range All {
		o, err := Options(v, base)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if o.ParallelCompactions < 1 {
			t.Fatalf("%v: no background timelines", v)
		}
	}
	if _, err := Options(Variant("Cassandra"), base); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestSyncModes(t *testing.T) {
	base := engine.DefaultOptions()
	want := map[Variant]engine.SyncMode{
		LevelDB:      engine.SyncAll,
		Volatile:     engine.SyncNone,
		NobLSM:       engine.SyncNobLSM,
		BoLT:         engine.SyncBoLT,
		L2SM:         engine.SyncAll,
		HyperLevelDB: engine.SyncAll,
		RocksDB:      engine.SyncAll,
		PebblesDB:    engine.SyncAll,
	}
	for v, mode := range want {
		o, err := Options(v, base)
		if err != nil {
			t.Fatal(err)
		}
		if o.SyncMode != mode {
			t.Errorf("%v sync mode = %v, want %v", v, o.SyncMode, mode)
		}
	}
}

func TestVariantMechanisms(t *testing.T) {
	base := engine.DefaultOptions()
	if o := MustOptions(L2SM, base); !o.HotCold {
		t.Error("L2SM without hot/cold separation")
	}
	if o := MustOptions(PebblesDB, base); !o.Picker.Fragmented {
		t.Error("PebblesDB without fragmented levels")
	}
	if o := MustOptions(HyperLevelDB, base); o.ParallelCompactions < 2 || !o.Picker.MinOverlapPick {
		t.Error("HyperLevelDB without parallel/min-overlap compactions")
	}
	if o := MustOptions(HyperLevelDB, base); o.TableFileSize >= base.TableFileSize {
		t.Error("HyperLevelDB did not hardcode a smaller table size")
	}
	if o := MustOptions(RocksDB, base); o.WriteBufferSize <= base.WriteBufferSize {
		t.Error("RocksDB-like without a larger write buffer")
	}
	if o := MustOptions(NobLSM, base); o.HotCold || o.Picker.Fragmented {
		t.Error("NobLSM must not inherit other variants' mechanisms")
	}
}

func TestMustOptionsPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustOptions(Variant("nope"), engine.DefaultOptions())
}

func TestAllHasSevenPaperSystems(t *testing.T) {
	if len(All) != 7 {
		t.Fatalf("All lists %d systems, the paper compares 7", len(All))
	}
	for _, v := range All {
		if v == Volatile {
			t.Fatal("the volatile store is not one of the paper's seven compared systems")
		}
	}
}
