// Package policy defines the seven LSM-tree systems the paper
// evaluates as configurations of the shared engine. Each variant is a
// preset of engine.Options implementing the mechanism the paper
// credits for that system's behaviour — the same experimental framing
// as the paper, where every competitor is a LevelDB descendant:
//
//   - LevelDB: stock configuration; fsyncs every SSTable and MANIFEST
//     edit.
//   - Volatile: LevelDB with all syncs disabled (Section 3's upper
//     bound; not crash-consistent).
//   - NobLSM: syncs only minor-compaction (L0) outputs; major
//     compactions rely on ext4 asynchronous commit + the
//     check_commit/is_committed syscalls, with shadow predecessor
//     retention (the paper's contribution).
//   - BoLT: one large factual SSTable per compaction, synced once
//     (barrier-optimized, but syncs remain on the critical path).
//   - L2SM: hot/cold separation — frequently updated keys are kept at
//     their level instead of being pushed down and rewritten.
//   - HyperLevelDB: parallel background compactions and
//     lowest-overlap input picking.
//   - RocksDB: parallel compactions, larger write buffer, deeper L0
//     tolerance (a leveled RocksDB-like configuration).
//   - PebblesDB: fragmented (guarded) levels — compactions never
//     rewrite the next level's resident files; reads consult all
//     overlapping fragments.
//
// These are models, not ports: each implements the specific
// sync/compaction discipline that drives the paper's comparisons
// (Table 1, Figures 4 and 5), on identical substrate code.
package policy

import (
	"fmt"

	"noblsm/internal/engine"
)

// Variant names a configured system.
type Variant string

// The systems of the paper's evaluation (Section 5.1).
const (
	LevelDB      Variant = "LevelDB"
	Volatile     Variant = "Volatile"
	NobLSM       Variant = "NobLSM"
	BoLT         Variant = "BoLT"
	L2SM         Variant = "L2SM"
	HyperLevelDB Variant = "HyperLevelDB"
	RocksDB      Variant = "RocksDB"
	PebblesDB    Variant = "PebblesDB"
)

// All lists the seven compared systems in the paper's legend order
// (the volatile configuration is extra, used by Figure 2b).
var All = []Variant{LevelDB, BoLT, L2SM, RocksDB, HyperLevelDB, PebblesDB, NobLSM}

// Options returns the engine configuration for a variant, starting
// from base (typically engine.DefaultOptions() with the experiment's
// SSTable size applied).
func Options(v Variant, base engine.Options) (engine.Options, error) {
	o := base
	switch v {
	case LevelDB:
		o.SyncMode = engine.SyncAll
	case Volatile:
		o.SyncMode = engine.SyncNone
	case NobLSM:
		o.SyncMode = engine.SyncNobLSM
	case BoLT:
		o.SyncMode = engine.SyncBoLT
	case L2SM:
		o.SyncMode = engine.SyncAll
		o.HotCold = true
	case HyperLevelDB:
		o.SyncMode = engine.SyncAll
		o.ParallelCompactions = 4
		o.Picker.MinOverlapPick = true
		// HyperLevelDB hardcodes its (small) SSTable size in source
		// (paper Section 5.1), so it emits — and syncs — many more
		// output files than the 64 MB-configured systems.
		o.TableFileSize = base.TableFileSize / 4
		if o.TableFileSize < 32<<10 {
			o.TableFileSize = 32 << 10
		}
	case RocksDB:
		o.SyncMode = engine.SyncAll
		o.ParallelCompactions = 2
		o.WriteBufferSize = base.WriteBufferSize * 4
		o.L0SlowdownTrigger = 20
		o.L0StopTrigger = 36
	case PebblesDB:
		o.SyncMode = engine.SyncAll
		o.Picker.Fragmented = true
	default:
		return o, fmt.Errorf("policy: unknown variant %q", v)
	}
	return o, nil
}

// MustOptions is Options for known-good variants (panics otherwise).
func MustOptions(v Variant, base engine.Options) engine.Options {
	o, err := Options(v, base)
	if err != nil {
		panic(err)
	}
	return o
}
