// prefixfs.go implements PrefixFS, a namespace view that maps a flat
// filesystem's "dir/NAME" entries to plain "NAME". The simulated ext4
// has no directories, so checkpoints and backups live as name prefixes
// ("ckpt-1/000005.ldb") in the store's own filesystem; PrefixFS lets
// the engine open such an export in place — Open, Repair, ScrubTables
// all work unchanged — while the primary's file scans ignore the
// prefixed names (they don't parse as engine files).
package vfs

import "noblsm/internal/vclock"

// PrefixFS presents the subset of an inner FS whose names start with
// "dir/" as a root namespace. It is a pure name mapping: files,
// costs, and durability semantics are the inner filesystem's.
type PrefixFS struct {
	inner  FS
	prefix string
}

// prefixSyscallFS adds NobLSM syscall forwarding, returned only when
// the inner filesystem has the syscall surface (same pattern as
// faultSyscallFS) so a prefixed view of a plain FS never falsely
// satisfies the engine's NobLSM-mode type assertion.
type prefixSyscallFS struct {
	*PrefixFS
	sys syscallFS
}

func (p prefixSyscallFS) CheckCommit(tl *vclock.Timeline, inos ...int64) {
	p.sys.CheckCommit(tl, inos...)
}
func (p prefixSyscallFS) IsCommitted(tl *vclock.Timeline, ino int64) bool {
	return p.sys.IsCommitted(tl, ino)
}
func (p prefixSyscallFS) CommittedSize(tl *vclock.Timeline, ino int64) int64 {
	return p.sys.CommittedSize(tl, ino)
}

// NewPrefix returns a view of inner rooted at dir (no trailing slash).
func NewPrefix(inner FS, dir string) FS {
	p := &PrefixFS{inner: inner, prefix: dir + "/"}
	if sys, ok := inner.(syscallFS); ok {
		return prefixSyscallFS{p, sys}
	}
	return p
}

func (p *PrefixFS) Create(tl *vclock.Timeline, name string) (File, error) {
	return p.inner.Create(tl, p.prefix+name)
}

func (p *PrefixFS) Open(tl *vclock.Timeline, name string) (File, error) {
	return p.inner.Open(tl, p.prefix+name)
}

func (p *PrefixFS) ReadFile(tl *vclock.Timeline, name string) ([]byte, error) {
	return p.inner.ReadFile(tl, p.prefix+name)
}

func (p *PrefixFS) WriteFile(tl *vclock.Timeline, name string, data []byte) error {
	return p.inner.WriteFile(tl, p.prefix+name, data)
}

func (p *PrefixFS) Remove(tl *vclock.Timeline, name string) error {
	return p.inner.Remove(tl, p.prefix+name)
}

func (p *PrefixFS) Rename(tl *vclock.Timeline, oldName, newName string) error {
	return p.inner.Rename(tl, p.prefix+oldName, p.prefix+newName)
}

// Link implements Linker when the inner filesystem does.
func (p *PrefixFS) Link(tl *vclock.Timeline, oldName, newName string) error {
	if l, ok := p.inner.(Linker); ok {
		return l.Link(tl, p.prefix+oldName, p.prefix+newName)
	}
	return ErrUnsupported
}

func (p *PrefixFS) Exists(tl *vclock.Timeline, name string) bool {
	return p.inner.Exists(tl, p.prefix+name)
}

// List returns the inner names under the prefix, with it stripped.
func (p *PrefixFS) List(tl *vclock.Timeline) []string {
	var out []string
	for _, name := range p.inner.List(tl) {
		if len(name) > len(p.prefix) && name[:len(p.prefix)] == p.prefix {
			out = append(out, name[len(p.prefix):])
		}
	}
	return out
}

func (p *PrefixFS) Size(tl *vclock.Timeline, name string) (int64, error) {
	return p.inner.Size(tl, p.prefix+name)
}

func (p *PrefixFS) SyncDir(tl *vclock.Timeline) error { return p.inner.SyncDir(tl) }
