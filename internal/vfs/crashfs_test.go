package vfs_test

import (
	"bytes"
	"testing"

	"noblsm/internal/ext4"
	"noblsm/internal/ssd"
	"noblsm/internal/vclock"
	"noblsm/internal/vfs"
)

// TestCrashFSRecordsBoundaries drives a scripted sequence of appends,
// fsyncs, renames and async commits and checks that every commit
// boundary is recorded with a monotone sequence and that the durable
// image only ever reflects journaled state.
func TestCrashFSRecordsBoundaries(t *testing.T) {
	cfg := ext4.DefaultConfig()
	cfg.CommitInterval = 10 * vclock.Millisecond
	inner := ext4.New(cfg, ssd.New(ssd.PM883()))
	mount, crash := vfs.NewCrashFS(inner)
	tl := vclock.NewTimeline(0)

	f, err := mount.Create(tl, "a.log")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append(tl, []byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(tl); err != nil { // fsync boundary
		t.Fatal(err)
	}
	pts := crash.Points()
	if len(pts) == 0 {
		t.Fatal("fsync recorded no commit boundary")
	}
	p := pts[len(pts)-1]
	if p.Kind != vfs.CommitFsync {
		t.Fatalf("boundary kind = %q, want %q", p.Kind, vfs.CommitFsync)
	}
	img, err := crash.Materialize(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := img["a.log"]; !bytes.Equal(got, []byte("hello ")) {
		t.Fatalf("materialized a.log = %q, want %q", got, "hello ")
	}

	// Unsynced tail: append more, plus a second file, with no commit —
	// the recorded image must not change until the next boundary.
	if err := f.Append(tl, []byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := mount.WriteFile(tl, "b.tmp", []byte("bbb")); err != nil {
		t.Fatal(err)
	}
	if err := mount.Rename(tl, "b.tmp", "b.dat"); err != nil {
		t.Fatal(err)
	}
	if n := len(crash.Points()); n != len(pts) {
		t.Fatalf("un-journaled mutations recorded %d new boundaries", n-len(pts))
	}

	// Let the journal age past several commit intervals; the flusher's
	// writeback delay means the data becomes durable on a later
	// boundary, and the rename commits as a namespace op.
	for i := 0; i < 6; i++ {
		tl.WaitUntil(tl.Now().Add(cfg.CommitInterval))
		mount.Exists(tl, "a.log") // entering the FS runs due commits
	}
	pts = crash.Points()
	lastImg, err := crash.Materialize(pts[len(pts)-1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lastImg["a.log"], []byte("hello world")) {
		t.Fatalf("a.log after async commits = %q, want %q", lastImg["a.log"], "hello world")
	}
	if !bytes.Equal(lastImg["b.dat"], []byte("bbb")) {
		t.Fatalf("b.dat after async commits = %q, want %q", lastImg["b.dat"], "bbb")
	}
	if _, ok := lastImg["b.tmp"]; ok {
		t.Fatal("renamed-away b.tmp still present in durable image")
	}
	for i, p := range pts {
		if p.Seq != pts[0].Seq+i {
			t.Fatalf("boundary sequence not monotone: %d follows %d", p.Seq, pts[i-1].Seq)
		}
	}
	f.Close(tl)
}

// TestCrashFSMatchesCrash cross-checks the recorder against the
// filesystem's own crash semantics: the image materialized from the
// final recorded boundary must byte-for-byte equal what ext4.Crash —
// the ground truth used by the fault-schedule explorer — leaves on
// disk at the same instant.
func TestCrashFSMatchesCrash(t *testing.T) {
	cfg := ext4.DefaultConfig()
	cfg.CommitInterval = 5 * vclock.Millisecond
	inner := ext4.New(cfg, ssd.New(ssd.PM883()))
	mount, crash := vfs.NewCrashFS(inner)
	tl := vclock.NewTimeline(0)

	// A little filesystem life: rotating logs, a synced table, removes.
	var files []vfs.File
	for i := 0; i < 8; i++ {
		name := string(rune('a'+i)) + ".dat"
		f, err := mount.Create(tl, name)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 50; j++ {
			if err := f.Append(tl, bytes.Repeat([]byte{byte('0' + i)}, 64)); err != nil {
				t.Fatal(err)
			}
			tl.WaitUntil(tl.Now().Add(200 * vclock.Microsecond))
		}
		if i%3 == 0 {
			if err := f.Sync(tl); err != nil {
				t.Fatal(err)
			}
		}
		files = append(files, f)
	}
	if err := mount.Remove(tl, "b.dat"); err != nil {
		t.Fatal(err)
	}
	if err := mount.SyncDir(tl); err != nil {
		t.Fatal(err)
	}

	pts := crash.Points()
	if len(pts) < 3 {
		t.Fatalf("only %d boundaries recorded", len(pts))
	}
	img, err := crash.Materialize(pts[len(pts)-1])
	if err != nil {
		t.Fatal(err)
	}

	// Crash the real filesystem now: no commit has run since the last
	// boundary, so the surviving state must equal the recorded image.
	inner.Crash(tl.Now())
	survivors := inner.List(tl)
	if len(survivors) != len(img) {
		t.Fatalf("crash left %d files %v, recorder says %d %v",
			len(survivors), survivors, len(img), imgNames(img))
	}
	for _, name := range survivors {
		data, err := inner.ReadFile(tl, name)
		if err != nil {
			t.Fatalf("read %s after crash: %v", name, err)
		}
		if !bytes.Equal(data, img[name]) {
			t.Fatalf("%s: crash image %d bytes, recorder image %d bytes", name, len(data), len(img[name]))
		}
	}
	for _, f := range files {
		f.Close(tl)
	}
}

func imgNames(img map[string][]byte) []string {
	names := make([]string, 0, len(img))
	for n := range img {
		names = append(names, n)
	}
	return names
}
