package vfs

// FaultFS is a deterministic fault-injection wrapper around any vfs.FS.
// It injects transient and permanent I/O errors, short writes, torn
// multi-block appends, silent bit-flips and sync failures on any
// path-matched file class (WAL, SSTable, MANIFEST, CURRENT), driven by
// a seeded PRNG (probabilistic rules) or an explicit trigger API
// (one-shot rules). Injection work — the bytes a short or torn write
// actually lands — is charged to the caller's virtual timeline through
// the wrapped filesystem, exactly as a real partial write would be.
//
// The wrapper is the test bench for the engine's background-error
// state machine and self-healing read path: it never corrupts state
// the inner filesystem considers committed (that is ext4's CorruptAt
// bit-rot hook), it damages data in flight.

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"noblsm/internal/vclock"
)

// ErrInjected is the sentinel every injected fault wraps; test code
// can distinguish injected failures from real ones with errors.Is.
var ErrInjected = errors.New("vfs: injected fault")

// faultError is an injected failure. It reports its own retryability
// through the TransientFault marker method, which IsTransient checks
// anywhere in a wrapped error chain.
type faultError struct {
	transient bool
	msg       string
}

func (e *faultError) Error() string {
	if e.transient {
		return "vfs: injected fault (transient): " + e.msg
	}
	return "vfs: injected fault (permanent): " + e.msg
}

func (e *faultError) Unwrap() error        { return ErrInjected }
func (e *faultError) TransientFault() bool { return e.transient }

// IsTransient reports whether err (anywhere in its chain) marks itself
// as a transient, retryable I/O failure. The engine's background-error
// state machine retries transient failures with backoff and treats
// everything else as permanent.
func IsTransient(err error) bool {
	var t interface{ TransientFault() bool }
	return errors.As(err, &t) && t.TransientFault()
}

// FileClass groups files by their role in the LSM directory layout,
// mirroring engine/filenames.go without importing it (vfs sits below
// the engine).
type FileClass int

// File classes a rule can match.
const (
	ClassAny FileClass = iota
	ClassWAL
	ClassTable
	ClassManifest
	ClassCurrent
	ClassOther
)

func (c FileClass) String() string {
	switch c {
	case ClassAny:
		return "any"
	case ClassWAL:
		return "wal"
	case ClassTable:
		return "table"
	case ClassManifest:
		return "manifest"
	case ClassCurrent:
		return "current"
	default:
		return "other"
	}
}

// Classify maps a file name to its class by the engine's naming
// conventions (NNNNNN.log, NNNNNN.ldb, MANIFEST-NNNNNN, CURRENT).
func Classify(name string) FileClass {
	switch {
	case name == "CURRENT":
		return ClassCurrent
	case strings.HasPrefix(name, "MANIFEST-"):
		return ClassManifest
	case strings.HasSuffix(name, ".log"):
		return ClassWAL
	case strings.HasSuffix(name, ".ldb"):
		return ClassTable
	default:
		return ClassOther
	}
}

// Op is the operation a rule matches.
type Op int

// Operations a rule can match.
const (
	OpAny Op = iota
	OpOpen
	OpCreate
	OpRead
	OpWrite
	OpSync
)

func (o Op) String() string {
	switch o {
	case OpAny:
		return "any"
	case OpOpen:
		return "open"
	case OpCreate:
		return "create"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	default:
		return "op(?)"
	}
}

// Kind is the failure mode a rule injects.
type Kind int

// Failure modes.
const (
	// KindError fails the operation outright with no side effect.
	KindError Kind = iota
	// KindShortWrite lands a strict prefix of the append, then fails.
	KindShortWrite
	// KindTornWrite lands a prefix whose final sector is corrupted —
	// the torn multi-block append of a powerless disk cache — then
	// fails.
	KindTornWrite
	// KindBitFlip lands the whole append with one bit flipped and
	// reports success: silent in-flight corruption.
	KindBitFlip
	// KindReadBitFlip serves the read but flips one bit in the
	// returned buffer, leaving the file itself intact.
	KindReadBitFlip
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindShortWrite:
		return "short"
	case KindTornWrite:
		return "torn"
	case KindBitFlip:
		return "bitflip"
	case KindReadBitFlip:
		return "readbitflip"
	default:
		return "kind(?)"
	}
}

// tornSector is the corruption granule of a torn write.
const tornSector = 512

// Rule arms one fault. Zero-valued fields are wildcards where that
// makes sense: Class/Op default to any, P to 1.0 (see AddRule), Count
// to unlimited.
type Rule struct {
	// Class and Op restrict which operations are eligible.
	Class FileClass
	Op    Op
	// Kind is the failure mode. Write-only kinds (short, torn,
	// bitflip) never match reads and vice versa.
	Kind Kind
	// Transient marks the injected error retryable (meaningful for
	// KindError and sync failures).
	Transient bool
	// P is the injection probability per eligible operation; AddRule
	// treats 0 as 1.0 (always).
	P float64
	// Count caps how many times the rule fires; 0 means unlimited.
	Count int
	// Match optionally restricts the rule to specific file names.
	Match func(name string) bool

	fired int
}

// FaultStats counts injected faults by mode.
type FaultStats struct {
	Injected     int64
	Errors       int64
	ShortWrites  int64
	TornWrites   int64
	BitFlips     int64
	ReadBitFlips int64
	SyncErrors   int64
}

// FaultFS wraps an FS with fault injection. Construct with NewFaultFS;
// the returned FS preserves the inner filesystem's NobLSM syscall
// surface (check_commit/is_committed) when it has one.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	rnd     *rand.Rand
	rules   []*Rule
	enabled bool
	stats   FaultStats
}

// syscallFS mirrors core.Syscalls structurally (vfs sits below core,
// so it cannot import the interface).
type syscallFS interface {
	CheckCommit(tl *vclock.Timeline, inos ...int64)
	IsCommitted(tl *vclock.Timeline, ino int64) bool
	CommittedSize(tl *vclock.Timeline, ino int64) int64
}

// faultSyscallFS adds syscall forwarding; it is only returned when the
// inner filesystem implements the syscalls, so a FaultFS over a plain
// FS never falsely satisfies the engine's NobLSM-mode type assertion.
type faultSyscallFS struct {
	*FaultFS
	sys syscallFS
}

func (f faultSyscallFS) CheckCommit(tl *vclock.Timeline, inos ...int64) {
	f.sys.CheckCommit(tl, inos...)
}
func (f faultSyscallFS) IsCommitted(tl *vclock.Timeline, ino int64) bool {
	return f.sys.IsCommitted(tl, ino)
}
func (f faultSyscallFS) CommittedSize(tl *vclock.Timeline, ino int64) int64 {
	return f.sys.CommittedSize(tl, ino)
}

// NewFaultFS wraps inner with a fault plane seeded by seed. The first
// return value is the filesystem to mount the engine on (it forwards
// the NobLSM syscalls iff inner provides them); the second is the
// controller for arming rules and reading stats. Injection starts
// enabled with no rules armed — a no-op until the first AddRule or
// Trigger.
func NewFaultFS(inner FS, seed int64) (FS, *FaultFS) {
	f := &FaultFS{
		inner:   inner,
		rnd:     rand.New(rand.NewSource(seed)),
		enabled: true,
	}
	if sys, ok := inner.(syscallFS); ok {
		return faultSyscallFS{f, sys}, f
	}
	return f, f
}

// Inner returns the wrapped filesystem.
func (f *FaultFS) Inner() FS { return f.inner }

// SetEnabled pauses (false) or resumes (true) all injection; armed
// rules are kept. Recovery-time Opens in fault schedules disable the
// plane so the crash under test is the only damage.
func (f *FaultFS) SetEnabled(on bool) {
	f.mu.Lock()
	f.enabled = on
	f.mu.Unlock()
}

// AddRule arms a probabilistic rule. A zero P is normalized to 1.0.
func (f *FaultFS) AddRule(r Rule) {
	if r.P == 0 {
		r.P = 1.0
	}
	f.mu.Lock()
	f.rules = append(f.rules, &r)
	f.mu.Unlock()
}

// Trigger arms a one-shot rule: the next eligible operation fails
// with the given mode, then the rule disarms itself.
func (f *FaultFS) Trigger(class FileClass, op Op, kind Kind, transient bool) {
	f.AddRule(Rule{Class: class, Op: op, Kind: kind, Transient: transient, P: 1.0, Count: 1})
}

// ClearRules disarms everything.
func (f *FaultFS) ClearRules() {
	f.mu.Lock()
	f.rules = nil
	f.mu.Unlock()
}

// Stats returns a snapshot of the injection counters.
func (f *FaultFS) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// kindMatchesOp reports whether a rule's failure mode applies to op.
func kindMatchesOp(k Kind, op Op) bool {
	switch k {
	case KindShortWrite, KindTornWrite, KindBitFlip:
		return op == OpWrite
	case KindReadBitFlip:
		return op == OpRead
	default:
		return true
	}
}

// decide picks the fault (if any) to inject for an operation. It
// consumes PRNG state only for armed probabilistic rules, keeping
// schedules deterministic for a fixed seed and operation sequence.
func (f *FaultFS) decide(name string, op Op) *Rule {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.enabled || len(f.rules) == 0 {
		return nil
	}
	class := Classify(name)
	for _, r := range f.rules {
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Class != ClassAny && r.Class != class {
			continue
		}
		if r.Op != OpAny && r.Op != op {
			continue
		}
		if !kindMatchesOp(r.Kind, op) {
			continue
		}
		if r.Match != nil && !r.Match(name) {
			continue
		}
		if r.P < 1.0 && f.rnd.Float64() >= r.P {
			continue
		}
		r.fired++
		f.stats.Injected++
		return r
	}
	return nil
}

// note counts one injected fault of the given mode (Injected itself is
// counted in decide).
func (f *FaultFS) note(c *int64) {
	f.mu.Lock()
	*c++
	f.mu.Unlock()
}

// randIntn draws from the fault plane's PRNG under its lock.
func (f *FaultFS) randIntn(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		return 0
	}
	return f.rnd.Intn(n)
}

func (f *FaultFS) injectedErr(r *Rule, op Op, name string) error {
	return &faultError{transient: r.Transient, msg: fmt.Sprintf("%s %s (%s)", op, name, Classify(name))}
}

// Create implements FS.
func (f *FaultFS) Create(tl *vclock.Timeline, name string) (File, error) {
	if r := f.decide(name, OpCreate); r != nil {
		f.note(&f.stats.Errors)
		return nil, f.injectedErr(r, OpCreate, name)
	}
	inner, err := f.inner.Create(tl, name)
	if err != nil {
		return nil, err
	}
	return &FaultFile{fs: f, name: name, inner: inner}, nil
}

// Open implements FS.
func (f *FaultFS) Open(tl *vclock.Timeline, name string) (File, error) {
	if r := f.decide(name, OpOpen); r != nil {
		f.note(&f.stats.Errors)
		return nil, f.injectedErr(r, OpOpen, name)
	}
	inner, err := f.inner.Open(tl, name)
	if err != nil {
		return nil, err
	}
	return &FaultFile{fs: f, name: name, inner: inner}, nil
}

// ReadFile implements FS. Whole-file reads (recovery) are subject to
// read-error rules but not bit-flip rules: at-rest corruption is the
// inner filesystem's CorruptAt hook, not the fault plane's job.
func (f *FaultFS) ReadFile(tl *vclock.Timeline, name string) ([]byte, error) {
	if r := f.decide(name, OpRead); r != nil && r.Kind == KindError {
		f.note(&f.stats.Errors)
		return nil, f.injectedErr(r, OpRead, name)
	}
	return f.inner.ReadFile(tl, name)
}

// WriteFile implements FS.
func (f *FaultFS) WriteFile(tl *vclock.Timeline, name string, data []byte) error {
	if r := f.decide(name, OpWrite); r != nil && r.Kind == KindError {
		f.note(&f.stats.Errors)
		return f.injectedErr(r, OpWrite, name)
	}
	return f.inner.WriteFile(tl, name, data)
}

// Remove implements FS.
func (f *FaultFS) Remove(tl *vclock.Timeline, name string) error {
	return f.inner.Remove(tl, name)
}

// Rename implements FS.
func (f *FaultFS) Rename(tl *vclock.Timeline, oldName, newName string) error {
	return f.inner.Rename(tl, oldName, newName)
}

// Link implements Linker by forwarding without injection — namespace
// operations, like Remove and Rename, are outside the fault plane's
// scope (their durability is the journal's business).
func (f *FaultFS) Link(tl *vclock.Timeline, oldName, newName string) error {
	if l, ok := f.inner.(Linker); ok {
		return l.Link(tl, oldName, newName)
	}
	return fmt.Errorf("%w: link %s", ErrUnsupported, newName)
}

// Exists implements FS.
func (f *FaultFS) Exists(tl *vclock.Timeline, name string) bool {
	return f.inner.Exists(tl, name)
}

// List implements FS.
func (f *FaultFS) List(tl *vclock.Timeline) []string { return f.inner.List(tl) }

// Size implements FS.
func (f *FaultFS) Size(tl *vclock.Timeline, name string) (int64, error) {
	return f.inner.Size(tl, name)
}

// SyncDir implements FS.
func (f *FaultFS) SyncDir(tl *vclock.Timeline) error {
	if r := f.decide("CURRENT", OpSync); r != nil {
		f.note(&f.stats.SyncErrors)
		return f.injectedErr(r, OpSync, "CURRENT")
	}
	return f.inner.SyncDir(tl)
}

// FaultFile wraps one open handle. It deliberately does not forward
// the optional ViewReader extension: every read goes through ReadAt so
// read-fault rules see all traffic (the engine transparently falls
// back to the copy path).
type FaultFile struct {
	fs    *FaultFS
	name  string
	inner File
}

var _ File = (*FaultFile)(nil)

// flipBit flips one PRNG-chosen bit in p.
func (f *FaultFile) flipBit(p []byte) {
	if len(p) == 0 {
		return
	}
	i := f.fs.randIntn(len(p))
	bit := f.fs.randIntn(8)
	p[i] ^= 1 << bit
}

// Append implements File with write-fault injection.
func (f *FaultFile) Append(tl *vclock.Timeline, p []byte) error {
	r := f.fs.decide(f.name, OpWrite)
	if r == nil {
		return f.inner.Append(tl, p)
	}
	switch r.Kind {
	case KindShortWrite:
		f.fs.note(&f.fs.stats.ShortWrites)
		// A strict prefix lands; the cost of those bytes is charged
		// to the caller like any append.
		n := 0
		if len(p) > 0 {
			n = f.fs.randIntn(len(p))
		}
		if n > 0 {
			if err := f.inner.Append(tl, p[:n]); err != nil {
				return err
			}
		}
		return f.fs.injectedErr(r, OpWrite, f.name)
	case KindTornWrite:
		f.fs.note(&f.fs.stats.TornWrites)
		// A prefix lands with its final sector corrupted — the shape
		// of a multi-block append cut down mid-flight.
		n := 0
		if len(p) > 0 {
			n = 1 + f.fs.randIntn(len(p))
		}
		if n > 0 {
			torn := append([]byte(nil), p[:n]...)
			lo := n - tornSector
			if lo < 0 {
				lo = 0
			}
			f.flipBit(torn[lo:])
			if err := f.inner.Append(tl, torn); err != nil {
				return err
			}
		}
		return f.fs.injectedErr(r, OpWrite, f.name)
	case KindBitFlip:
		f.fs.note(&f.fs.stats.BitFlips)
		flipped := append([]byte(nil), p...)
		f.flipBit(flipped)
		return f.inner.Append(tl, flipped)
	default:
		f.fs.note(&f.fs.stats.Errors)
		return f.fs.injectedErr(r, OpWrite, f.name)
	}
}

// ReadAt implements File with read-fault injection.
func (f *FaultFile) ReadAt(tl *vclock.Timeline, p []byte, off int64) (int, error) {
	r := f.fs.decide(f.name, OpRead)
	if r == nil {
		return f.inner.ReadAt(tl, p, off)
	}
	if r.Kind == KindReadBitFlip {
		f.fs.note(&f.fs.stats.ReadBitFlips)
		n, err := f.inner.ReadAt(tl, p, off)
		if n > 0 {
			f.flipBit(p[:n])
		}
		return n, err
	}
	f.fs.note(&f.fs.stats.Errors)
	return 0, f.fs.injectedErr(r, OpRead, f.name)
}

// Sync implements File with sync-fault injection: an injected sync
// failure has no durability effect (the fsync never reached the
// journal).
func (f *FaultFile) Sync(tl *vclock.Timeline) error {
	if r := f.fs.decide(f.name, OpSync); r != nil {
		f.fs.note(&f.fs.stats.SyncErrors)
		return f.fs.injectedErr(r, OpSync, f.name)
	}
	return f.inner.Sync(tl)
}

// Close implements File.
func (f *FaultFile) Close(tl *vclock.Timeline) error { return f.inner.Close(tl) }

// Size implements File.
func (f *FaultFile) Size() int64 { return f.inner.Size() }

// Ino implements File.
func (f *FaultFile) Ino() int64 { return f.inner.Ino() }

// ParseFaultSpec parses the dbbench -faults mini-language: rules are
// separated by ';', fields by ',':
//
//	class=wal|table|manifest|current|any
//	op=open|create|read|write|sync|any
//	kind=error|short|torn|bitflip|readbitflip
//	p=<float>        injection probability (default 1)
//	count=<int>      max injections (default unlimited)
//	transient        mark the error retryable
//
// Example: "class=table,op=read,kind=error,transient,p=0.001;class=wal,op=write,kind=short,count=1".
func ParseFaultSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r := Rule{P: 1.0}
		for _, field := range strings.Split(part, ",") {
			field = strings.TrimSpace(field)
			key, val, hasVal := strings.Cut(field, "=")
			switch key {
			case "class":
				switch val {
				case "wal":
					r.Class = ClassWAL
				case "table":
					r.Class = ClassTable
				case "manifest":
					r.Class = ClassManifest
				case "current":
					r.Class = ClassCurrent
				case "any", "":
					r.Class = ClassAny
				default:
					return nil, fmt.Errorf("vfs: fault spec: unknown class %q", val)
				}
			case "op":
				switch val {
				case "open":
					r.Op = OpOpen
				case "create":
					r.Op = OpCreate
				case "read":
					r.Op = OpRead
				case "write":
					r.Op = OpWrite
				case "sync":
					r.Op = OpSync
				case "any", "":
					r.Op = OpAny
				default:
					return nil, fmt.Errorf("vfs: fault spec: unknown op %q", val)
				}
			case "kind":
				switch val {
				case "error", "":
					r.Kind = KindError
				case "short":
					r.Kind = KindShortWrite
				case "torn":
					r.Kind = KindTornWrite
				case "bitflip":
					r.Kind = KindBitFlip
				case "readbitflip":
					r.Kind = KindReadBitFlip
				default:
					return nil, fmt.Errorf("vfs: fault spec: unknown kind %q", val)
				}
			case "p":
				p, err := strconv.ParseFloat(val, 64)
				if err != nil || p <= 0 || p > 1 {
					return nil, fmt.Errorf("vfs: fault spec: bad probability %q", val)
				}
				r.P = p
			case "count":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("vfs: fault spec: bad count %q", val)
				}
				r.Count = n
			case "transient":
				if hasVal {
					return nil, fmt.Errorf("vfs: fault spec: transient takes no value")
				}
				r.Transient = true
			default:
				return nil, fmt.Errorf("vfs: fault spec: unknown field %q", field)
			}
		}
		rules = append(rules, r)
	}
	return rules, nil
}
