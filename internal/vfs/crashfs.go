// crashfs.go implements CrashFS, a deterministic crash-point recorder
// layered over a journaling filesystem. The inner filesystem announces
// every journal-commit boundary (CommitNotifier); CrashFS mirrors all
// appended bytes and, at each boundary, records the exact durable
// image — which names exist and how many bytes of each survive — under
// ext4 data=ordered semantics. After the workload, every recorded
// boundary can be materialized as a standalone post-crash directory
// and re-opened, which turns "random power cuts" into an exhaustive
// enumeration of every state a real crash could leave behind.
package vfs

import (
	"fmt"
	"sync"

	"noblsm/internal/vclock"
)

// Commit kinds, mirroring the journaling filesystem's boundary types.
const (
	// CommitAsync is a periodic journal commit (the data=ordered
	// cadence): all writeback-aged data plus all namespace operations
	// become durable together.
	CommitAsync = "commit"
	// CommitSyncDir is a synchronous directory commit (SyncDir).
	CommitSyncDir = "dirsync"
	// CommitFsync is a single-file fast commit (fsync): the target
	// file's bytes and its own namespace operations become durable.
	CommitFsync = "fsync"
)

// DurableFile is one surviving file of a crash point: its name in the
// durable namespace and the length of the prefix that survives.
type DurableFile struct {
	Name string
	Ino  int64
	Size int64
}

// CommitRecord describes the durable image at one journal-commit
// boundary. A crash strictly between commit N and commit N+1 leaves
// exactly commit N's image on disk, so the sequence of CommitRecords
// enumerates every distinct post-crash state of the run.
type CommitRecord struct {
	// Seq numbers boundaries in execution order (monotone; the
	// durable image only grows-or-changes forward in this order).
	Seq int
	// Kind is one of CommitAsync, CommitSyncDir, CommitFsync.
	Kind string
	// At is the boundary's virtual instant on the committing
	// timeline. Timelines interleave, so At is not guaranteed
	// monotone in Seq; Seq is the authoritative order.
	At vclock.Time
	// Files is the full durable namespace after this commit.
	Files []DurableFile
}

// CommitNotifier is the optional inner-filesystem extension CrashFS
// subscribes to. The hook is invoked at every journal-commit boundary
// with the filesystem's internal lock held: it must be fast and must
// not call back into the filesystem.
type CommitNotifier interface {
	SetCommitHook(func(CommitRecord))
}

// CrashFS wraps a journaling FS, mirrors every appended byte, and
// records the durable image at every commit boundary. It is a test
// and tooling facility: the mirror doubles the memory footprint of
// written data and is never used on benchmark paths.
type CrashFS struct {
	inner FS

	mu     sync.Mutex
	shadow map[int64][]byte // ino -> every byte ever appended, in order
	points []CommitRecord
}

// crashSyscallFS adds syscall forwarding; like faultSyscallFS it is
// only returned when the inner filesystem implements the NobLSM
// syscall surface, so wrapping a plain FS never falsely satisfies the
// engine's type assertion.
type crashSyscallFS struct {
	*CrashFS
	sys syscallFS
}

func (c crashSyscallFS) CheckCommit(tl *vclock.Timeline, inos ...int64) {
	c.sys.CheckCommit(tl, inos...)
}

func (c crashSyscallFS) IsCommitted(tl *vclock.Timeline, ino int64) bool {
	return c.sys.IsCommitted(tl, ino)
}

func (c crashSyscallFS) CommittedSize(tl *vclock.Timeline, ino int64) int64 {
	return c.sys.CommittedSize(tl, ino)
}

// NewCrashFS wraps inner and subscribes to its commit boundaries. The
// returned FS must be the mount the workload runs on: only appends
// made through it are mirrored, so a file written directly to inner
// cannot be materialized later.
func NewCrashFS(inner FS) (FS, *CrashFS) {
	c := &CrashFS{inner: inner, shadow: make(map[int64][]byte)}
	if n, ok := inner.(CommitNotifier); ok {
		n.SetCommitHook(c.onCommit)
	}
	if sys, ok := inner.(syscallFS); ok {
		return crashSyscallFS{c, sys}, c
	}
	return c, c
}

// Inner returns the wrapped filesystem.
func (c *CrashFS) Inner() FS { return c.inner }

// onCommit runs inside the inner filesystem's lock; it only touches
// CrashFS state.
func (c *CrashFS) onCommit(rec CommitRecord) {
	c.mu.Lock()
	c.points = append(c.points, rec)
	c.mu.Unlock()
}

// Points returns a snapshot of every commit boundary recorded so far,
// in execution order.
func (c *CrashFS) Points() []CommitRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CommitRecord, len(c.points))
	copy(out, c.points)
	return out
}

// Materialize reconstructs the post-crash directory for one recorded
// boundary: each durable name maps to the prefix of its bytes that
// the journal had made durable. The contents are fresh copies, safe
// to write into a new filesystem.
//
// Limitation: the mirror sees bytes at Append time, so out-of-band
// mutation of the inner filesystem (ext4.CorruptAt) is not reflected.
func (c *CrashFS) Materialize(p CommitRecord) (map[string][]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	img := make(map[string][]byte, len(p.Files))
	for _, f := range p.Files {
		buf := c.shadow[f.Ino]
		if int64(len(buf)) < f.Size {
			return nil, fmt.Errorf("vfs: crash point %d: %q ino %d durable to %d but only %d bytes mirrored",
				p.Seq, f.Name, f.Ino, f.Size, len(buf))
		}
		cp := make([]byte, f.Size)
		copy(cp, buf[:f.Size])
		img[f.Name] = cp
	}
	return img, nil
}

// noteAppend mirrors appended bytes before they reach the inner file,
// guaranteeing the shadow always holds at least as many bytes as any
// durable prefix a later commit boundary can report.
func (c *CrashFS) noteAppend(ino int64, p []byte) {
	c.mu.Lock()
	c.shadow[ino] = append(c.shadow[ino], p...)
	c.mu.Unlock()
}

func (c *CrashFS) Create(tl *vclock.Timeline, name string) (File, error) {
	f, err := c.inner.Create(tl, name)
	if err != nil {
		return nil, err
	}
	return &crashFile{inner: f, fs: c}, nil
}

func (c *CrashFS) Open(tl *vclock.Timeline, name string) (File, error) {
	f, err := c.inner.Open(tl, name)
	if err != nil {
		return nil, err
	}
	return &crashFile{inner: f, fs: c}, nil
}

func (c *CrashFS) ReadFile(tl *vclock.Timeline, name string) ([]byte, error) {
	return c.inner.ReadFile(tl, name)
}

// WriteFile routes through Create/Append/Close so the bytes are
// mirrored like any other append.
func (c *CrashFS) WriteFile(tl *vclock.Timeline, name string, data []byte) error {
	f, err := c.Create(tl, name)
	if err != nil {
		return err
	}
	if err := f.Append(tl, data); err != nil {
		f.Close(tl)
		return err
	}
	return f.Close(tl)
}

func (c *CrashFS) Remove(tl *vclock.Timeline, name string) error {
	// The shadow is retained: earlier crash points may still
	// reference the removed file's inode.
	return c.inner.Remove(tl, name)
}

func (c *CrashFS) Rename(tl *vclock.Timeline, oldName, newName string) error {
	return c.inner.Rename(tl, oldName, newName)
}

// Link forwards hard-link creation. No extra mirroring is needed: the
// shadow is keyed by inode, and commit boundaries list every durable
// name with its ino, so a linked name materializes from the same
// mirrored bytes as its source.
func (c *CrashFS) Link(tl *vclock.Timeline, oldName, newName string) error {
	if l, ok := c.inner.(Linker); ok {
		return l.Link(tl, oldName, newName)
	}
	return fmt.Errorf("%w: link %s", ErrUnsupported, newName)
}

func (c *CrashFS) Exists(tl *vclock.Timeline, name string) bool {
	return c.inner.Exists(tl, name)
}

func (c *CrashFS) List(tl *vclock.Timeline) []string { return c.inner.List(tl) }

func (c *CrashFS) Size(tl *vclock.Timeline, name string) (int64, error) {
	return c.inner.Size(tl, name)
}

func (c *CrashFS) SyncDir(tl *vclock.Timeline) error { return c.inner.SyncDir(tl) }

// crashFile mirrors appends into the CrashFS shadow before forwarding
// them. Reads forward directly, including the zero-copy ReadView path.
type crashFile struct {
	inner File
	fs    *CrashFS
}

func (f *crashFile) Append(tl *vclock.Timeline, p []byte) error {
	f.fs.noteAppend(f.inner.Ino(), p)
	return f.inner.Append(tl, p)
}

func (f *crashFile) ReadAt(tl *vclock.Timeline, p []byte, off int64) (int, error) {
	return f.inner.ReadAt(tl, p, off)
}

func (f *crashFile) ReadView(tl *vclock.Timeline, n int, off int64) ([]byte, bool, error) {
	if vr, ok := f.inner.(ViewReader); ok {
		return vr.ReadView(tl, n, off)
	}
	return nil, false, nil
}

func (f *crashFile) Sync(tl *vclock.Timeline) error  { return f.inner.Sync(tl) }
func (f *crashFile) Close(tl *vclock.Timeline) error { return f.inner.Close(tl) }
func (f *crashFile) Size() int64                     { return f.inner.Size() }
func (f *crashFile) Ino() int64                      { return f.inner.Ino() }
