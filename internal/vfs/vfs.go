// Package vfs defines the filesystem interface the LSM-tree engine
// writes through. The production implementation is the ext4 journaling
// simulation (internal/ext4); tests may substitute simpler fakes.
//
// Every operation takes the calling thread's virtual timeline so the
// filesystem can charge page-cache, device, and journal costs to the
// right clock.
package vfs

import (
	"errors"

	"noblsm/internal/vclock"
)

// ErrNotExist is returned when a named file is absent.
var ErrNotExist = errors.New("vfs: file does not exist")

// ErrExist is returned when creating a file that already exists and
// the implementation forbids truncation.
var ErrExist = errors.New("vfs: file already exists")

// ErrClosed is returned for operations on a closed file handle.
var ErrClosed = errors.New("vfs: file is closed")

// ErrUnsupported is returned by optional operations (Link) when a
// wrapper implements the method but its inner filesystem does not;
// LinkOrCopy treats it as "fall back to copying".
var ErrUnsupported = errors.New("vfs: operation not supported")

// FS is a flat-namespace filesystem. Implementations must be safe for
// concurrent use.
type FS interface {
	// Create makes a new writable file, truncating any existing one.
	Create(tl *vclock.Timeline, name string) (File, error)
	// Open returns a read-only handle on an existing file.
	Open(tl *vclock.Timeline, name string) (File, error)
	// ReadFile reads an entire file.
	ReadFile(tl *vclock.Timeline, name string) ([]byte, error)
	// WriteFile creates name with the given contents (no sync).
	WriteFile(tl *vclock.Timeline, name string, data []byte) error
	// Remove unlinks a file.
	Remove(tl *vclock.Timeline, name string) error
	// Rename atomically moves old to new, replacing new.
	Rename(tl *vclock.Timeline, oldName, newName string) error
	// Exists reports whether name is present.
	Exists(tl *vclock.Timeline, name string) bool
	// List returns the names of all files, in unspecified order.
	List(tl *vclock.Timeline) []string
	// Size reports the current length of name.
	Size(tl *vclock.Timeline, name string) (int64, error)
	// SyncDir persists the directory metadata (namespace ops), as
	// LevelDB does after installing a new CURRENT file.
	SyncDir(tl *vclock.Timeline) error
}

// File is an append-only, random-read file handle.
type File interface {
	// Append writes p at the end of the file.
	Append(tl *vclock.Timeline, p []byte) error
	// ReadAt fills p from offset off, returning the bytes read. It
	// returns io.EOF if fewer than len(p) bytes are available.
	ReadAt(tl *vclock.Timeline, p []byte, off int64) (int, error)
	// Sync makes the file's current contents and metadata durable
	// (fsync): it blocks the caller's timeline until the device
	// barrier completes.
	Sync(tl *vclock.Timeline) error
	// Close releases the handle. Closing never syncs.
	Close(tl *vclock.Timeline) error
	// Size reports the current file length.
	Size() int64
	// Ino reports the file's inode number, the handle NobLSM passes
	// to the check_commit/is_committed syscalls.
	Ino() int64
}

// Linker is an optional FS extension for hard links. Link adds
// newName as a second directory entry for oldName's inode — no data
// copy, no writeback; both names share contents from then on (the
// engine only ever links immutable files, so aliasing is safe).
// Filesystems without link support simply don't implement it; callers
// go through LinkOrCopy, which falls back to a full copy.
type Linker interface {
	Link(tl *vclock.Timeline, oldName, newName string) error
}

// LinkOrCopy exports oldName as newName: a hard link when fs supports
// it (zero-copy), otherwise a read+write copy. It reports whether the
// zero-copy path was taken, so callers can account bytes duplicated.
func LinkOrCopy(tl *vclock.Timeline, fs FS, oldName, newName string) (linked bool, err error) {
	if l, ok := fs.(Linker); ok {
		err := l.Link(tl, oldName, newName)
		if err == nil {
			return true, nil
		}
		if !errors.Is(err, ErrUnsupported) {
			return false, err
		}
	}
	data, err := fs.ReadFile(tl, oldName)
	if err != nil {
		return false, err
	}
	return false, fs.WriteFile(tl, newName, data)
}

// ViewReader is an optional File extension for zero-copy reads.
// ReadView returns a read-only view of n bytes at off when the
// implementation can produce one without copying — typically when the
// range is page-cache resident and physically contiguous. ok=false
// means the caller must fall back to ReadAt; it is not an error. The
// same virtual-time cost as a resident ReadAt is charged on success.
//
// The view aliases the file's cached contents: it stays valid until
// this handle is closed (implementations guarantee the viewed range is
// immutable while any handle is open) and must never be written to.
type ViewReader interface {
	ReadView(tl *vclock.Timeline, n int, off int64) (p []byte, ok bool, err error)
}
