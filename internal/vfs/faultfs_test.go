package vfs

import (
	"bytes"
	"errors"
	"io"
	"sort"
	"sync"
	"testing"

	"noblsm/internal/vclock"
)

// memFS is a minimal in-memory FS for exercising the fault plane
// without the full ext4 simulation.
type memFS struct {
	mu    sync.Mutex
	files map[string]*memData
	next  int64
}

type memData struct {
	ino  int64
	data []byte
}

func newMemFS() *memFS { return &memFS{files: map[string]*memData{}, next: 1} }

func (m *memFS) Create(tl *vclock.Timeline, name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := &memData{ino: m.next}
	m.next++
	m.files[name] = d
	return &memFile{fs: m, d: d}, nil
}

func (m *memFS) Open(tl *vclock.Timeline, name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.files[name]
	if !ok {
		return nil, ErrNotExist
	}
	return &memFile{fs: m, d: d}, nil
}

func (m *memFS) ReadFile(tl *vclock.Timeline, name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.files[name]
	if !ok {
		return nil, ErrNotExist
	}
	return append([]byte(nil), d.data...), nil
}

func (m *memFS) WriteFile(tl *vclock.Timeline, name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = &memData{ino: m.next, data: append([]byte(nil), data...)}
	m.next++
	return nil
}

func (m *memFS) Remove(tl *vclock.Timeline, name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return ErrNotExist
	}
	delete(m.files, name)
	return nil
}

func (m *memFS) Rename(tl *vclock.Timeline, oldName, newName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.files[oldName]
	if !ok {
		return ErrNotExist
	}
	delete(m.files, oldName)
	m.files[newName] = d
	return nil
}

func (m *memFS) Exists(tl *vclock.Timeline, name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.files[name]
	return ok
}

func (m *memFS) List(tl *vclock.Timeline) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for name := range m.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (m *memFS) Size(tl *vclock.Timeline, name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.files[name]
	if !ok {
		return 0, ErrNotExist
	}
	return int64(len(d.data)), nil
}

func (m *memFS) SyncDir(tl *vclock.Timeline) error { return nil }

type memFile struct {
	fs *memFS
	d  *memData
}

func (f *memFile) Append(tl *vclock.Timeline, p []byte) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.d.data = append(f.d.data, p...)
	return nil
}

func (f *memFile) ReadAt(tl *vclock.Timeline, p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off >= int64(len(f.d.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.d.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Sync(tl *vclock.Timeline) error  { return nil }
func (f *memFile) Close(tl *vclock.Timeline) error { return nil }
func (f *memFile) Size() int64                     { return int64(len(f.d.data)) }
func (f *memFile) Ino() int64                      { return f.d.ino }

// memSyscallFS adds the NobLSM syscall surface to memFS so the
// forwarding path can be tested.
type memSyscallFS struct {
	*memFS
	committed map[int64]bool
}

func (m *memSyscallFS) CheckCommit(tl *vclock.Timeline, inos ...int64) {
	for _, ino := range inos {
		m.committed[ino] = true
	}
}
func (m *memSyscallFS) IsCommitted(tl *vclock.Timeline, ino int64) bool { return m.committed[ino] }
func (m *memSyscallFS) CommittedSize(tl *vclock.Timeline, ino int64) int64 {
	return 0
}

func TestClassify(t *testing.T) {
	cases := map[string]FileClass{
		"000007.log":      ClassWAL,
		"000042.ldb":      ClassTable,
		"MANIFEST-000003": ClassManifest,
		"CURRENT":         ClassCurrent,
		"LOCK":            ClassOther,
		"000042.ldb.corrupt": ClassOther,
	}
	for name, want := range cases {
		if got := Classify(name); got != want {
			t.Errorf("Classify(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestTriggerOneShot(t *testing.T) {
	tl := vclock.NewTimeline(0)
	fs, faults := NewFaultFS(newMemFS(), 1)
	f, err := fs.Create(tl, "000001.log")
	if err != nil {
		t.Fatal(err)
	}
	faults.Trigger(ClassWAL, OpWrite, KindError, true)
	err = f.Append(tl, []byte("hello"))
	if err == nil {
		t.Fatal("expected injected error")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error %v not ErrInjected", err)
	}
	if !IsTransient(err) {
		t.Fatalf("error %v should be transient", err)
	}
	// One-shot: the rule disarmed itself.
	if err := f.Append(tl, []byte("hello")); err != nil {
		t.Fatalf("second append: %v", err)
	}
	if got := f.Size(); got != 5 {
		t.Fatalf("size = %d, want 5 (failed append must land nothing)", got)
	}
	st := faults.Stats()
	if st.Injected != 1 || st.Errors != 1 {
		t.Fatalf("stats = %+v, want Injected=1 Errors=1", st)
	}
}

func TestPermanentNotTransient(t *testing.T) {
	tl := vclock.NewTimeline(0)
	fs, faults := NewFaultFS(newMemFS(), 1)
	f, _ := fs.Create(tl, "000001.ldb")
	faults.Trigger(ClassTable, OpSync, KindError, false)
	err := f.Sync(tl)
	if err == nil || !errors.Is(err, ErrInjected) || IsTransient(err) {
		t.Fatalf("want permanent injected error, got %v", err)
	}
}

func TestClassAndOpFiltering(t *testing.T) {
	tl := vclock.NewTimeline(0)
	fs, faults := NewFaultFS(newMemFS(), 1)
	wal, _ := fs.Create(tl, "000001.log")
	tbl, _ := fs.Create(tl, "000002.ldb")
	faults.Trigger(ClassWAL, OpWrite, KindError, true)
	if err := tbl.Append(tl, []byte("x")); err != nil {
		t.Fatalf("table append must not match WAL rule: %v", err)
	}
	if err := wal.Sync(tl); err != nil {
		t.Fatalf("sync must not match write rule: %v", err)
	}
	if err := wal.Append(tl, []byte("x")); err == nil {
		t.Fatal("WAL append should have failed")
	}
}

func TestShortWriteLandsPrefix(t *testing.T) {
	tl := vclock.NewTimeline(0)
	inner := newMemFS()
	fs, faults := NewFaultFS(inner, 7)
	f, _ := fs.Create(tl, "000001.log")
	payload := bytes.Repeat([]byte{0xAA}, 4096)
	faults.Trigger(ClassWAL, OpWrite, KindShortWrite, false)
	err := f.Append(tl, payload)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	got, _ := inner.ReadFile(tl, "000001.log")
	if len(got) >= len(payload) {
		t.Fatalf("short write landed %d bytes, want a strict prefix of %d", len(got), len(payload))
	}
	if !bytes.Equal(got, payload[:len(got)]) {
		t.Fatal("short write landed non-prefix bytes")
	}
}

func TestTornWriteCorruptsTailSector(t *testing.T) {
	tl := vclock.NewTimeline(0)
	inner := newMemFS()
	fs, faults := NewFaultFS(inner, 11)
	f, _ := fs.Create(tl, "000001.log")
	payload := bytes.Repeat([]byte{0x55}, 8192)
	faults.Trigger(ClassWAL, OpWrite, KindTornWrite, false)
	err := f.Append(tl, payload)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	got, _ := inner.ReadFile(tl, "000001.log")
	if len(got) == 0 || len(got) > len(payload) {
		t.Fatalf("torn write landed %d bytes, want 1..%d", len(got), len(payload))
	}
	// Exactly one bit differs, and it is within the final sector of
	// the landed prefix.
	diffAt := -1
	for i := range got {
		if got[i] != payload[i] {
			if diffAt >= 0 {
				t.Fatalf("more than one corrupted byte (%d and %d)", diffAt, i)
			}
			diffAt = i
		}
	}
	if diffAt < 0 {
		t.Fatal("torn write landed an intact prefix (want a corrupted sector)")
	}
	if diffAt < len(got)-tornSector {
		t.Fatalf("corruption at %d outside final %d-byte sector of %d-byte prefix", diffAt, tornSector, len(got))
	}
}

func TestBitFlipIsSilent(t *testing.T) {
	tl := vclock.NewTimeline(0)
	inner := newMemFS()
	fs, faults := NewFaultFS(inner, 13)
	f, _ := fs.Create(tl, "000001.ldb")
	payload := bytes.Repeat([]byte{0xFF}, 1024)
	faults.Trigger(ClassTable, OpWrite, KindBitFlip, false)
	if err := f.Append(tl, payload); err != nil {
		t.Fatalf("bit-flip must report success, got %v", err)
	}
	got, _ := inner.ReadFile(tl, "000001.ldb")
	if len(got) != len(payload) {
		t.Fatalf("bit-flip landed %d bytes, want %d", len(got), len(payload))
	}
	diffs := 0
	for i := range got {
		if got[i] != payload[i] {
			diffs++
		}
	}
	if diffs != 1 {
		t.Fatalf("bit-flip corrupted %d bytes, want exactly 1", diffs)
	}
}

func TestReadBitFlipLeavesFileIntact(t *testing.T) {
	tl := vclock.NewTimeline(0)
	inner := newMemFS()
	fs, faults := NewFaultFS(inner, 17)
	f, _ := fs.Create(tl, "000001.ldb")
	payload := bytes.Repeat([]byte{0x00}, 256)
	if err := f.Append(tl, payload); err != nil {
		t.Fatal(err)
	}
	faults.Trigger(ClassTable, OpRead, KindReadBitFlip, false)
	buf := make([]byte, 256)
	if _, err := f.ReadAt(tl, buf, 0); err != nil {
		t.Fatalf("read-bit-flip must report success, got %v", err)
	}
	if bytes.Equal(buf, payload) {
		t.Fatal("read buffer not corrupted")
	}
	// The file itself is intact: a second read returns clean bytes.
	buf2 := make([]byte, 256)
	if _, err := f.ReadAt(tl, buf2, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2, payload) {
		t.Fatal("underlying file was corrupted by a read fault")
	}
}

func TestProbabilisticDeterminism(t *testing.T) {
	run := func(seed int64) FaultStats {
		tl := vclock.NewTimeline(0)
		fs, faults := NewFaultFS(newMemFS(), seed)
		faults.AddRule(Rule{Class: ClassTable, Op: OpRead, Kind: KindError, Transient: true, P: 0.3})
		f, _ := fs.Create(tl, "000001.ldb")
		_ = f.Append(tl, bytes.Repeat([]byte{1}, 64))
		buf := make([]byte, 8)
		for i := 0; i < 200; i++ {
			_, _ = f.ReadAt(tl, buf, 0)
		}
		return faults.Stats()
	}
	a, b := run(99), run(99)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.Injected == 0 || a.Injected == 200 {
		t.Fatalf("p=0.3 injected %d/200 — rule not probabilistic", a.Injected)
	}
}

func TestCountCap(t *testing.T) {
	tl := vclock.NewTimeline(0)
	fs, faults := NewFaultFS(newMemFS(), 3)
	faults.AddRule(Rule{Class: ClassWAL, Op: OpWrite, Kind: KindError, Transient: true, Count: 3})
	f, _ := fs.Create(tl, "000001.log")
	fails := 0
	for i := 0; i < 10; i++ {
		if err := f.Append(tl, []byte("x")); err != nil {
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("count=3 rule fired %d times", fails)
	}
}

func TestSetEnabledPausesInjection(t *testing.T) {
	tl := vclock.NewTimeline(0)
	fs, faults := NewFaultFS(newMemFS(), 3)
	faults.AddRule(Rule{Kind: KindError})
	faults.SetEnabled(false)
	if _, err := fs.Create(tl, "000001.log"); err != nil {
		t.Fatalf("disabled plane injected: %v", err)
	}
	faults.SetEnabled(true)
	if _, err := fs.Create(tl, "000002.log"); err == nil {
		t.Fatal("re-enabled plane did not inject")
	}
}

func TestMatchRestrictsRule(t *testing.T) {
	tl := vclock.NewTimeline(0)
	fs, faults := NewFaultFS(newMemFS(), 3)
	faults.AddRule(Rule{Op: OpCreate, Kind: KindError, Match: func(name string) bool { return name == "000002.ldb" }})
	if _, err := fs.Create(tl, "000001.ldb"); err != nil {
		t.Fatalf("unmatched name injected: %v", err)
	}
	if _, err := fs.Create(tl, "000002.ldb"); err == nil {
		t.Fatal("matched name did not inject")
	}
}

func TestSyscallForwarding(t *testing.T) {
	tl := vclock.NewTimeline(0)
	inner := &memSyscallFS{memFS: newMemFS(), committed: map[int64]bool{}}
	fs, _ := NewFaultFS(inner, 1)
	sys, ok := fs.(interface {
		CheckCommit(tl *vclock.Timeline, inos ...int64)
		IsCommitted(tl *vclock.Timeline, ino int64) bool
		CommittedSize(tl *vclock.Timeline, ino int64) int64
	})
	if !ok {
		t.Fatal("FaultFS over a syscall FS must forward the syscall surface")
	}
	sys.CheckCommit(tl, 7)
	if !sys.IsCommitted(tl, 7) {
		t.Fatal("CheckCommit not forwarded")
	}

	// A plain FS must NOT grow a syscall surface through the wrapper.
	plain, _ := NewFaultFS(newMemFS(), 1)
	if _, ok := plain.(interface {
		IsCommitted(tl *vclock.Timeline, ino int64) bool
	}); ok {
		t.Fatal("FaultFS over a plain FS must not claim the syscall surface")
	}
}

func TestParseFaultSpec(t *testing.T) {
	rules, err := ParseFaultSpec("class=table,op=read,kind=error,transient,p=0.25,count=5; class=wal,op=write,kind=torn")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rules))
	}
	r := rules[0]
	if r.Class != ClassTable || r.Op != OpRead || r.Kind != KindError || !r.Transient || r.P != 0.25 || r.Count != 5 {
		t.Fatalf("rule 0 = %+v", r)
	}
	r = rules[1]
	if r.Class != ClassWAL || r.Op != OpWrite || r.Kind != KindTornWrite || r.Transient || r.P != 1.0 {
		t.Fatalf("rule 1 = %+v", r)
	}
	for _, bad := range []string{
		"class=nope", "op=nope", "kind=nope", "p=2", "p=x", "count=-1", "transient=yes", "bogus=1",
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("ParseFaultSpec(%q) accepted", bad)
		}
	}
}

func TestNoRulesNoOverheadPath(t *testing.T) {
	tl := vclock.NewTimeline(0)
	fs, _ := NewFaultFS(newMemFS(), 1)
	f, err := fs.Create(tl, "a.ldb")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append(tl, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(tl); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := f.ReadAt(tl, buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "data" {
		t.Fatalf("read %q", buf)
	}
	if err := f.Close(tl); err != nil {
		t.Fatal(err)
	}
}
