// Package histogram records operation latencies in exponentially
// sized buckets (like db_bench's histogram) and reports averages and
// percentiles. It works on virtual durations, so the experiment
// harness can print tail latencies alongside the paper's averages.
package histogram

import (
	"fmt"
	"math"

	"noblsm/internal/vclock"
)

// numBuckets covers 1 ns .. ~18 h with ~4% resolution (4 buckets per
// power of two up to 2^62 ns).
const (
	bucketsPerOctave = 4
	numBuckets       = 62 * bucketsPerOctave
)

// Histogram accumulates durations. The zero value is ready to use; it
// is not self-synchronizing (the harness drives it single-threaded).
type Histogram struct {
	counts [numBuckets + 1]int64
	n      int64
	sum    vclock.Duration
	min    vclock.Duration
	max    vclock.Duration
}

// bucketFor maps a duration to a bucket index.
func bucketFor(d vclock.Duration) int {
	if d < 1 {
		d = 1
	}
	// index = bucketsPerOctave * log2(d), linearized within octaves.
	oct := 63 - leadingZeros(uint64(d))
	base := oct * bucketsPerOctave
	if oct == 0 {
		return 0
	}
	frac := (uint64(d) - 1<<oct) * bucketsPerOctave >> oct
	idx := base + int(frac)
	if idx > numBuckets {
		idx = numBuckets
	}
	return idx
}

func leadingZeros(v uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

// bucketUpper is the inclusive upper bound of bucket idx.
func bucketUpper(idx int) vclock.Duration {
	oct := idx / bucketsPerOctave
	frac := idx % bucketsPerOctave
	lo := uint64(1) << uint(oct)
	ub := vclock.Duration(lo + (lo*uint64(frac+1))/bucketsPerOctave - 1)
	if ub < vclock.Duration(lo) {
		// Sub-octave rounding can push the bound below the bucket's
		// own floor in the lowest octaves (bucket 0 spans exactly
		// 1 ns); the bound is never less than the floor.
		ub = vclock.Duration(lo)
	}
	return ub
}

// Record adds one observation.
func (h *Histogram) Record(d vclock.Duration) {
	h.counts[bucketFor(d)]++
	h.n++
	h.sum += d
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Mean reports the average observation.
func (h *Histogram) Mean() vclock.Duration {
	if h.n == 0 {
		return 0
	}
	return vclock.Duration(int64(h.sum) / h.n)
}

// Min and Max report the extremes.
func (h *Histogram) Min() vclock.Duration { return h.min }

// Max reports the largest observation.
func (h *Histogram) Max() vclock.Duration { return h.max }

// Percentile reports the approximate p-th percentile (0 < p <= 100):
// a linear interpolation of the rank's position inside its bucket,
// clamped to the observed [min, max]. The clamp matters at the edges —
// a single-sample histogram reports the sample itself at every
// percentile, and close quantiles (p99.9 vs p100) that land in the
// same bucket still order correctly.
func (h *Histogram) Percentile(p float64) vclock.Duration {
	if h.n == 0 {
		return 0
	}
	if p >= 100 {
		return h.max
	}
	// Nearest-rank target. The epsilon keeps float rounding from
	// bumping an exact product to the next rank (99.9% of n=1000 is
	// rank 999, but 0.999*1000 can evaluate to 999.0000…1).
	rank := int64(math.Ceil(p*float64(h.n)/100 - 1e-9))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var seen int64
	for i := range h.counts {
		c := h.counts[i]
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			// Interpolate across the bucket's (exclusive-lower,
			// inclusive-upper] value range by the rank's position
			// among the bucket's samples.
			hi := float64(bucketUpper(i))
			lo := hi
			if i > 0 {
				if l := float64(bucketUpper(i - 1)); l < hi {
					lo = l
				}
			} else {
				lo = 0
			}
			v := vclock.Duration(lo + (hi-lo)*float64(rank-seen)/float64(c) + 0.5)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
		seen += c
	}
	return h.max
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// String summarizes count/mean/median/p99/max.
func (h *Histogram) String() string {
	if h.n == 0 {
		return "histogram{empty}"
	}
	return fmt.Sprintf("histogram{n=%d mean=%v p50=%v p99=%v max=%v}",
		h.n, h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}
